// Command synth lowers an FSM to a mapped gate-level netlist with an
// explicit reset line, reproducing the paper's SIS synthesis flow.
//
// Usage:
//
//	synth -fsm dk16 -alg ji -script sd -o dk16.net
//	synth -kiss machine.kiss2 -alg jc -script sr -o out.net
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"seqatpg/internal/encode"
	"seqatpg/internal/fsm"
	"seqatpg/internal/netlist"
	"seqatpg/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("synth: ")
	fsmName := flag.String("fsm", "", "benchmark FSM name (dk16, pma, s510, s820, s832, scf)")
	kiss := flag.String("kiss", "", "KISS2 file to synthesize instead of a benchmark FSM")
	alg := flag.String("alg", "jc", "state assignment: ji (input dominant), jo (output dominant), jc (combined)")
	script := flag.String("script", "sr", "synthesis script: sr (rugged/area) or sd (delay)")
	noDC := flag.Bool("nodc", false, "disable unreachable-state don't-cares (ablation)")
	minimize := flag.Bool("minimize", true, "run state minimization before synthesis")
	out := flag.String("o", "", "output netlist path (default: stdout)")
	dot := flag.String("dot", "", "also write the state transition graph in Graphviz DOT format")
	flag.Parse()

	var m *fsm.FSM
	var err error
	switch {
	case *kiss != "":
		f, ferr := os.Open(*kiss)
		if ferr != nil {
			log.Fatal(ferr)
		}
		m, err = fsm.ReadKISS2(f)
		f.Close()
	case *fsmName != "":
		for _, b := range fsm.Suite() {
			if b.Spec.Name == *fsmName {
				m, err = fsm.Generate(b.Spec)
				break
			}
		}
		if m == nil && err == nil {
			err = fmt.Errorf("unknown benchmark FSM %q", *fsmName)
		}
	default:
		log.Fatal("one of -fsm or -kiss is required")
	}
	if err != nil {
		log.Fatal(err)
	}
	if *minimize {
		if m, err = fsm.Minimize(m); err != nil {
			log.Fatal(err)
		}
	}

	var algorithm encode.Algorithm
	switch *alg {
	case "ji":
		algorithm = encode.InputDominant
	case "jo":
		algorithm = encode.OutputDominant
	case "jc":
		algorithm = encode.Combined
	default:
		log.Fatalf("unknown -alg %q", *alg)
	}
	var sc synth.Script
	switch *script {
	case "sr":
		sc = synth.Rugged
	case "sd":
		sc = synth.Delay
	default:
		log.Fatalf("unknown -script %q", *script)
	}

	r, err := synth.Synthesize(m, synth.Options{
		Algorithm: algorithm, Script: sc, UseUnreachableDC: !*noDC,
	})
	if err != nil {
		log.Fatal(err)
	}
	stats, err := r.Circuit.ComputeStats(netlist.DefaultLibrary())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "synth: %s: %d gates, %d DFFs, area %.0f, delay %.2f, depth %d\n",
		r.Circuit.Name, stats.Gates, stats.DFFs, stats.Area, stats.Delay, stats.MaxLvl)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := netlist.Write(w, r.Circuit); err != nil {
		log.Fatal(err)
	}
	if *dot != "" {
		f, err := os.Create(*dot)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := fsm.WriteDOT(f, m); err != nil {
			log.Fatal(err)
		}
	}
}
