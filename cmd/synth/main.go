// Command synth lowers an FSM to a mapped gate-level netlist with an
// explicit reset line, reproducing the paper's SIS synthesis flow.
//
// Usage:
//
//	synth -fsm dk16 -alg ji -script sd -o dk16.net
//	synth -kiss machine.kiss2 -alg jc -script sr -o out.net
//
// Exit codes:
//
//	0  synthesis completed
//	1  setup or synthesis failed
//	2  usage error
//	4  interrupted (signal) before the netlist was written
//	5  netlist written but the DOT dump failed
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"seqatpg/internal/encode"
	"seqatpg/internal/fsm"
	"seqatpg/internal/netlist"
	"seqatpg/internal/service"
	"seqatpg/internal/synth"
)

const (
	exitOK          = 0
	exitSetup       = 1
	exitUsage       = 2
	exitInterrupted = 4
	exitPostRun     = 5
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("synth: ")
	os.Exit(run())
}

func run() int {
	fsmName := flag.String("fsm", "", "benchmark FSM name (dk16, pma, s510, s820, s832, scf)")
	kiss := flag.String("kiss", "", "KISS2 file to synthesize instead of a benchmark FSM")
	alg := flag.String("alg", "jc", "state assignment: ji (input dominant), jo (output dominant), jc (combined)")
	script := flag.String("script", "sr", "synthesis script: sr (rugged/area) or sd (delay)")
	noDC := flag.Bool("nodc", false, "disable unreachable-state don't-cares (ablation)")
	minimize := flag.Bool("minimize", true, "run state minimization before synthesis")
	out := flag.String("o", "", "output netlist path (default: stdout)")
	dot := flag.String("dot", "", "also write the state transition graph in Graphviz DOT format")
	showVersion := flag.Bool("version", false, "print the build identity (the /version handshake) and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(service.Version())
		return exitOK
	}

	var m *fsm.FSM
	var err error
	switch {
	case *kiss != "":
		var f *os.File
		if f, err = os.Open(*kiss); err == nil {
			m, err = fsm.ReadKISS2(f)
			f.Close()
		}
	case *fsmName != "":
		for _, b := range fsm.Suite() {
			if b.Spec.Name == *fsmName {
				m, err = fsm.Generate(b.Spec)
				break
			}
		}
		if m == nil && err == nil {
			err = fmt.Errorf("unknown benchmark FSM %q", *fsmName)
		}
	default:
		fmt.Fprintln(os.Stderr, "synth: one of -fsm or -kiss is required")
		flag.Usage()
		return exitUsage
	}
	if err != nil {
		log.Print(err)
		return exitSetup
	}
	if *minimize {
		if m, err = fsm.Minimize(m); err != nil {
			log.Print(err)
			return exitSetup
		}
	}

	var algorithm encode.Algorithm
	switch *alg {
	case "ji":
		algorithm = encode.InputDominant
	case "jo":
		algorithm = encode.OutputDominant
	case "jc":
		algorithm = encode.Combined
	default:
		fmt.Fprintf(os.Stderr, "synth: unknown -alg %q\n", *alg)
		return exitUsage
	}
	var sc synth.Script
	switch *script {
	case "sr":
		sc = synth.Rugged
	case "sd":
		sc = synth.Delay
	default:
		fmt.Fprintf(os.Stderr, "synth: unknown -script %q\n", *script)
		return exitUsage
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	r, err := synth.Synthesize(m, synth.Options{
		Algorithm: algorithm, Script: sc, UseUnreachableDC: !*noDC,
	})
	if err != nil {
		log.Print(err)
		return exitSetup
	}
	// Don't write a result the caller asked to abandon mid-synthesis.
	if ctx.Err() != nil {
		log.Print("interrupted; no output written")
		return exitInterrupted
	}
	stats, err := r.Circuit.ComputeStats(netlist.DefaultLibrary())
	if err != nil {
		log.Print(err)
		return exitSetup
	}
	fmt.Fprintf(os.Stderr, "synth: %s: %d gates, %d DFFs, area %.0f, delay %.2f, depth %d\n",
		r.Circuit.Name, stats.Gates, stats.DFFs, stats.Area, stats.Delay, stats.MaxLvl)

	if err := writeNetlist(*out, r.Circuit); err != nil {
		log.Print(err)
		return exitSetup
	}
	if *dot != "" {
		// The netlist is already written; a DOT failure must not hide it.
		if err := writeDOT(*dot, m); err != nil {
			log.Print(err)
			return exitPostRun
		}
	}
	return exitOK
}

func writeNetlist(path string, c *netlist.Circuit) error {
	if path == "" {
		return netlist.Write(os.Stdout, c)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := netlist.Write(f, c); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeDOT(path string, m *fsm.FSM) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fsm.WriteDOT(f, m); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
