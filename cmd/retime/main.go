// Command retime applies the Leiserson-Saxe retiming transformation to
// a netlist: either minimum-period graph retiming or the paper's
// register-multiplying backward atomic-move sweeps.
//
// Usage:
//
//	retime -in a.net -rounds 2 -o a.re.net     # backward sweeps
//	retime -in a.net -minperiod -o a.re.net    # min-period retiming
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"seqatpg/internal/netlist"
	"seqatpg/internal/retime"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("retime: ")
	in := flag.String("in", "", "input netlist")
	out := flag.String("o", "", "output netlist path (default: stdout)")
	rounds := flag.Int("rounds", 2, "backward atomic-move sweeps")
	minPeriod := flag.Bool("minperiod", false, "minimum-period graph retiming instead of backward sweeps")
	flag.Parse()
	if *in == "" {
		log.Fatal("-in is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	c, err := netlist.Read(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	lib := netlist.DefaultLibrary()
	before, err := retime.CurrentPeriod(c, lib)
	if err != nil {
		log.Fatal(err)
	}

	var res *retime.Result
	if *minPeriod {
		res, err = retime.MinPeriod(c, lib)
	} else {
		res, err = retime.Backward(c, lib, *rounds)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "retime: %s: period %.2f -> %.2f, DFFs %d -> %d, flush %d cycles\n",
		res.Circuit.Name, before, res.Period, c.NumDFFs(), res.Circuit.NumDFFs(), res.FlushCycles)

	w := os.Stdout
	if *out != "" {
		file, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer file.Close()
		w = file
	}
	if err := netlist.Write(w, res.Circuit); err != nil {
		log.Fatal(err)
	}
}
