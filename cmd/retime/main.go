// Command retime applies the Leiserson-Saxe retiming transformation to
// a netlist: either minimum-period graph retiming or the paper's
// register-multiplying backward atomic-move sweeps.
//
// Usage:
//
//	retime -in a.net -rounds 2 -o a.re.net     # backward sweeps
//	retime -in a.net -minperiod -o a.re.net    # min-period retiming
//
// Exit codes:
//
//	0  retiming completed
//	1  setup or retiming failed
//	2  usage error
//	4  interrupted (signal) before the output was written
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"seqatpg/internal/netlist"
	"seqatpg/internal/retime"
	"seqatpg/internal/service"
)

const (
	exitOK          = 0
	exitSetup       = 1
	exitUsage       = 2
	exitInterrupted = 4
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("retime: ")
	os.Exit(run())
}

func run() int {
	in := flag.String("in", "", "input netlist")
	out := flag.String("o", "", "output netlist path (default: stdout)")
	rounds := flag.Int("rounds", 2, "backward atomic-move sweeps")
	minPeriod := flag.Bool("minperiod", false, "minimum-period graph retiming instead of backward sweeps")
	showVersion := flag.Bool("version", false, "print the build identity (the /version handshake) and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(service.Version())
		return exitOK
	}
	if *in == "" {
		fmt.Fprintln(os.Stderr, "retime: -in is required")
		flag.Usage()
		return exitUsage
	}
	if *rounds < 1 {
		fmt.Fprintf(os.Stderr, "retime: -rounds %d, want >= 1\n", *rounds)
		return exitUsage
	}
	f, err := os.Open(*in)
	if err != nil {
		log.Print(err)
		return exitSetup
	}
	c, err := netlist.Read(f)
	f.Close()
	if err != nil {
		log.Print(err)
		return exitSetup
	}
	lib := netlist.DefaultLibrary()
	before, err := retime.CurrentPeriod(c, lib)
	if err != nil {
		log.Print(err)
		return exitSetup
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var res *retime.Result
	if *minPeriod {
		res, err = retime.MinPeriod(c, lib)
	} else {
		res, err = retime.Backward(c, lib, *rounds)
	}
	if err != nil {
		log.Print(err)
		return exitSetup
	}
	// Don't write a result the caller asked to abandon mid-transform.
	if ctx.Err() != nil {
		log.Print("interrupted; no output written")
		return exitInterrupted
	}
	fmt.Fprintf(os.Stderr, "retime: %s: period %.2f -> %.2f, DFFs %d -> %d, flush %d cycles\n",
		res.Circuit.Name, before, res.Period, c.NumDFFs(), res.Circuit.NumDFFs(), res.FlushCycles)

	if *out == "" {
		if err := netlist.Write(os.Stdout, res.Circuit); err != nil {
			log.Print(err)
			return exitSetup
		}
		return exitOK
	}
	file, err := os.Create(*out)
	if err != nil {
		log.Print(err)
		return exitSetup
	}
	if err := netlist.Write(file, res.Circuit); err != nil {
		file.Close()
		log.Print(err)
		return exitSetup
	}
	if err := file.Close(); err != nil {
		log.Print(err)
		return exitSetup
	}
	return exitOK
}
