// Command fsim fault-simulates a test-vector file against a netlist
// with the PROOFS-style bit-parallel simulator, reporting fault
// coverage — the standalone analog of the paper's PROOFS experiments
// (e.g. grading one circuit's test set on another circuit, Table 8).
//
// Usage:
//
//	fsim -in circuit.net -t tests.vec
//	fsim -in retimed.net -t orig_tests.vec -vcd first.vcd
//
// The vector format is one line of 0/1/X per cycle (one character per
// primary input), blank lines between sequences, '#' comments.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"seqatpg/internal/fault"
	"seqatpg/internal/netlist"
	"seqatpg/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fsim: ")
	in := flag.String("in", "", "input netlist")
	tf := flag.String("t", "", "test vector file")
	vcd := flag.String("vcd", "", "dump a VCD waveform of the first sequence to this path")
	flag.Parse()
	if *in == "" || *tf == "" {
		log.Fatal("-in and -t are required")
	}
	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	c, err := netlist.Read(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	tv, err := os.Open(*tf)
	if err != nil {
		log.Fatal(err)
	}
	seqs, err := sim.ReadVectors(tv, len(c.PIs))
	tv.Close()
	if err != nil {
		log.Fatal(err)
	}
	if len(seqs) == 0 {
		log.Fatal("no test sequences in the vector file")
	}

	faults := fault.CollapsedUniverse(c)
	fs, err := fault.NewSimulator(c)
	if err != nil {
		log.Fatal(err)
	}
	detected := make([]bool, len(faults))
	states := map[uint64]bool{}
	cycles := 0
	for _, seq := range seqs {
		cycles += len(seq)
		det, err := fs.Detects(seq, faults)
		if err != nil {
			log.Fatal(err)
		}
		for i, d := range det {
			detected[i] = detected[i] || d
		}
		trace, err := fault.StateTrace(c, seq)
		if err != nil {
			log.Fatal(err)
		}
		for st := range trace {
			states[st] = true
		}
	}
	cov := fault.Summarize(detected)
	fmt.Printf("circuit:   %s (%d gates, %d DFFs)\n", c.Name, c.NumGates(), c.NumDFFs())
	fmt.Printf("tests:     %d sequences, %d cycles total\n", len(seqs), cycles)
	fmt.Printf("faults:    %d collapsed, %d detected\n", cov.Total, cov.Detected)
	fmt.Printf("coverage:  FC %.2f%%\n", cov.FC())
	fmt.Printf("states:    %d distinct states traversed\n", len(states))

	if *vcd != "" {
		out, err := os.Create(*vcd)
		if err != nil {
			log.Fatal(err)
		}
		defer out.Close()
		if err := sim.DumpVCD(out, c, seqs[0]); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("vcd:       %s (first sequence)\n", *vcd)
	}
}
