// Command fsim fault-simulates a test-vector file against a netlist
// with the PROOFS-style bit-parallel simulator, reporting fault
// coverage — the standalone analog of the paper's PROOFS experiments
// (e.g. grading one circuit's test set on another circuit, Table 8).
//
// Usage:
//
//	fsim -in circuit.net -t tests.vec
//	fsim -in retimed.net -t orig_tests.vec -vcd first.vcd
//
// The vector format is one line of 0/1/X per cycle (one character per
// primary input), blank lines between sequences, '#' comments.
//
// Exit codes:
//
//	0  simulation completed
//	1  setup or simulation failed
//	2  usage error
//	4  interrupted (signal) between sequences
//	5  simulation completed but the VCD dump failed
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"syscall"

	"seqatpg/internal/fault"
	"seqatpg/internal/netlist"
	"seqatpg/internal/service"
	"seqatpg/internal/sim"
)

const (
	exitOK          = 0
	exitSetup       = 1
	exitUsage       = 2
	exitInterrupted = 4
	exitPostRun     = 5
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fsim: ")
	os.Exit(run())
}

func run() int {
	in := flag.String("in", "", "input netlist")
	tf := flag.String("t", "", "test vector file")
	vcd := flag.String("vcd", "", "dump a VCD waveform of the first sequence to this path")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "fault-simulation worker count (results are identical for every value)")
	width := flag.Int("width", fault.WidthAuto, "faults per kernel pass: 63, 127, 255, or -1 to adapt to measured activity (results are identical for every value)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memprofile := flag.String("memprofile", "", "write a heap profile to this path on exit")
	showVersion := flag.Bool("version", false, "print the build identity (the /version handshake) and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(service.Version())
		return exitOK
	}
	if *in == "" || *tf == "" {
		fmt.Fprintln(os.Stderr, "fsim: -in and -t are required")
		flag.Usage()
		return exitUsage
	}
	f, err := os.Open(*in)
	if err != nil {
		log.Print(err)
		return exitSetup
	}
	c, err := netlist.Read(f)
	f.Close()
	if err != nil {
		log.Print(err)
		return exitSetup
	}
	tv, err := os.Open(*tf)
	if err != nil {
		log.Print(err)
		return exitSetup
	}
	seqs, err := sim.ReadVectors(tv, len(c.PIs))
	tv.Close()
	if err != nil {
		log.Print(err)
		return exitSetup
	}
	if len(seqs) == 0 {
		log.Print("no test sequences in the vector file")
		return exitSetup
	}

	if *cpuprofile != "" {
		pf, err := os.Create(*cpuprofile)
		if err != nil {
			log.Print(err)
			return exitSetup
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			pf.Close()
			log.Print(err)
			return exitSetup
		}
		defer func() {
			pprof.StopCPUProfile()
			pf.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			pf, err := os.Create(*memprofile)
			if err != nil {
				log.Print(err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(pf); err != nil {
				log.Print(err)
			}
			pf.Close()
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	faults := fault.CollapsedUniverse(c)
	fs, err := fault.NewSimulator(c)
	if err != nil {
		log.Print(err)
		return exitSetup
	}
	fs.Width = *width
	detected := make([]bool, len(faults))
	states := map[uint64]bool{}
	cycles := 0
	for i, seq := range seqs {
		if ctx.Err() != nil {
			log.Printf("interrupted after %d of %d sequences", i, len(seqs))
			return exitInterrupted
		}
		cycles += len(seq)
		det, err := fs.DetectsParallel(ctx, seq, faults, *workers)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				log.Printf("interrupted after %d of %d sequences", i, len(seqs))
				return exitInterrupted
			}
			log.Print(err)
			return exitSetup
		}
		for i, d := range det {
			detected[i] = detected[i] || d
		}
		trace, err := fault.StateTrace(c, seq)
		if err != nil {
			log.Print(err)
			return exitSetup
		}
		for st := range trace {
			states[st] = true
		}
	}
	cov := fault.Summarize(detected)
	st := fs.Stats()
	fmt.Printf("circuit:   %s (%d gates, %d DFFs)\n", c.Name, c.NumGates(), c.NumDFFs())
	fmt.Printf("tests:     %d sequences, %d cycles total\n", len(seqs), cycles)
	fmt.Printf("faults:    %d collapsed, %d detected\n", cov.Total, cov.Detected)
	fmt.Printf("coverage:  FC %.2f%%\n", cov.FC())
	fmt.Printf("states:    %d distinct states traversed\n", len(states))
	widthStr := strconv.Itoa(*width)
	if *width == fault.WidthAuto {
		widthStr = "auto"
	}
	fmt.Printf("kernel:    %d workers, width %s: %d events, %d gate evals (%d avoided), %d early batch exits\n",
		*workers, widthStr, st.Events, st.GateEvals, st.GateEvalsAvoided, st.EarlyExits)

	if *vcd != "" {
		// The report above already holds the results; a VCD failure must
		// not discard it.
		if err := dumpVCD(*vcd, c, seqs[0]); err != nil {
			log.Print(err)
			return exitPostRun
		}
		fmt.Printf("vcd:       %s (first sequence)\n", *vcd)
	}
	return exitOK
}

func dumpVCD(path string, c *netlist.Circuit, seq [][]sim.Val) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := sim.DumpVCD(out, c, seq); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}
