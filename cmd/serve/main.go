// Command serve runs the ATPG job service: an HTTP JSON API over a
// bounded worker pool that executes submitted campaigns with live
// progress, per-job checkpoints and resume-after-restart (see
// internal/service for the API and on-disk layout).
//
// Usage:
//
//	serve -dir ./jobs -addr :8080 -workers 4
//
// A SIGINT/SIGTERM drains the server: running campaigns are
// interrupted so they write their checkpoints, queued jobs stay queued
// on disk, and the next `serve -dir ./jobs` resumes all of them.
//
// Exit codes:
//
//	0  drained cleanly
//	1  setup failed (bad directory, listen failure)
//	2  usage error
//	4  drain did not finish within -drain-timeout
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on http.DefaultServeMux for the ops listener
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"seqatpg/internal/rescache"
	"seqatpg/internal/service"
)

const (
	exitOK      = 0
	exitSetup   = 1
	exitUsage   = 2
	exitTimeout = 4
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serve: ")
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":8080", "listen address")
	dir := flag.String("dir", "", "job directory (created if missing; holds specs, checkpoints and results)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker pool size")
	every := flag.Duration("checkpoint-every", 30*time.Second, "minimum gap between periodic per-job checkpoint writes")
	drainTimeout := flag.Duration("drain-timeout", time.Minute, "how long a shutdown signal may wait for running jobs to checkpoint")
	queueCap := flag.Int("queue-cap", 256, "pending-job queue bound; submissions past it get HTTP 429 (negative = unbounded)")
	stuckTimeout := flag.Duration("stuck-timeout", 0, "fail a running job making no campaign progress for this long (0 = off)")
	predictBudgets := flag.Bool("predict", false, "derive each job's stuck-watchdog budget from its predicted hardest fault instead of the flat -stuck-timeout (never below it)")
	readHeaderTimeout := flag.Duration("read-header-timeout", 10*time.Second, "http.Server ReadHeaderTimeout (slowloris guard)")
	readTimeout := flag.Duration("read-timeout", time.Minute, "http.Server ReadTimeout: full request including body")
	writeTimeout := flag.Duration("write-timeout", 2*time.Minute, "http.Server WriteTimeout: response deadline")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout for keep-alive connections")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics and /debug/pprof on this side address (empty = off; metrics stay on the API listener regardless)")
	cacheDir := flag.String("cache-dir", "", "content-addressed result cache directory (empty = cache off)")
	cacheCap := flag.Int64("cache-cap", rescache.DefaultCap, "result cache capacity in payload bytes; LRU eviction past it (negative = unbounded)")
	showVersion := flag.Bool("version", false, "print the build identity (the /version handshake) and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(service.Version())
		return exitOK
	}
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "serve: -dir is required")
		flag.Usage()
		return exitUsage
	}
	if *workers < 1 {
		fmt.Fprintf(os.Stderr, "serve: -workers %d, want >= 1\n", *workers)
		return exitUsage
	}

	var cache *rescache.Cache
	if *cacheDir != "" {
		var err error
		cache, err = rescache.Open(rescache.Options{Dir: *cacheDir, CapBytes: *cacheCap, Logf: log.Printf})
		if err != nil {
			log.Print(err)
			return exitSetup
		}
		st := cache.Stats()
		log.Printf("result cache in %s: %d entries, %d bytes (cap %d)", *cacheDir, st.Entries, st.Bytes, *cacheCap)
	}

	srv, err := service.New(*dir, service.Options{
		Workers:         *workers,
		CheckpointEvery: *every,
		QueueCap:        *queueCap,
		StuckTimeout:    *stuckTimeout,
		PredictBudgets:  *predictBudgets,
		Logf:            log.Printf,
		Cache:           cache,
	})
	if err != nil {
		log.Print(err)
		return exitSetup
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The timeouts are the self-protection layer: without them one
	// client trickling bytes (or never reading its response) pins a
	// connection's goroutine forever, and enough of them starve the
	// service.
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}
	listenErr := make(chan error, 1)
	go func() {
		if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			listenErr <- err
		}
	}()

	// The ops listener carries the observability surface — Prometheus
	// scrapes and the net/http/pprof profiles — on its own address, so
	// profiling a wedged service never competes with (or is blocked by)
	// the job API's timeouts and queue pressure. pprof registers on
	// http.DefaultServeMux at import; mounting that mux under
	// /debug/pprof/ picks the handlers up without touching the API mux.
	if *metricsAddr != "" {
		ops := http.NewServeMux()
		ops.Handle("GET /metrics", srv.MetricsHandler())
		ops.Handle("/debug/pprof/", http.DefaultServeMux)
		ohs := &http.Server{Addr: *metricsAddr, Handler: ops, ReadHeaderTimeout: *readHeaderTimeout}
		go func() {
			if err := ohs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				log.Printf("metrics listener: %v", err)
			}
		}()
		defer ohs.Close()
		log.Printf("metrics and pprof on %s", *metricsAddr)
	}
	// The handshake identity goes in the startup log so an operator can
	// spot a skewed fleet from the logs alone, without curling /version.
	v := service.Version()
	log.Printf("%s worker build %s (%s): api v%d, checkpoint format v%d, result wire v%d",
		v.Service, v.Build, v.Go, v.API, v.CheckpointFormat, v.ResultWire)
	log.Printf("listening on %s, %d workers, jobs in %s", *addr, *workers, *dir)

	select {
	case err := <-listenErr:
		log.Print(err)
		// The listener is gone; still park running jobs resumably.
		dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		srv.Close(dctx)
		return exitSetup
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way
	log.Printf("draining: interrupting running jobs so they checkpoint (timeout %v)", *drainTimeout)

	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := srv.Close(dctx); err != nil {
		log.Printf("drain incomplete: %v", err)
		return exitTimeout
	}
	log.Print("drained; restart with the same -dir to resume interrupted jobs")
	return exitOK
}
