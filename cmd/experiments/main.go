// Command experiments regenerates the tables and figures of "Complexity
// of Sequential ATPG" (Marchok, El-Maleh, Maly, Rajski; DATE 1995) on
// the synthetic reproduction suite.
//
// Usage:
//
//	experiments -all            # every table and figure (full budget)
//	experiments -table 2        # a single table
//	experiments -figure 3       # the figure
//	experiments -quick -all     # smoke-test budgets
//	experiments -all -deadline 6h
//
// A SIGINT/SIGTERM or an expired -deadline stops the current run at the
// next effort charge; completed tables have already been printed. Exit
// codes: 0 everything succeeded, 1 at least one table failed, 2 usage
// error, 4 interrupted.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"seqatpg/internal/bench"
	"seqatpg/internal/service"
)

func main() {
	table := flag.Int("table", 0, "regenerate one table (1-8)")
	figure := flag.Int("figure", 0, "regenerate one figure (3)")
	all := flag.Bool("all", false, "regenerate everything")
	ablations := flag.Bool("ablations", false, "run the design-choice ablations")
	quick := flag.Bool("quick", false, "use small smoke-test budgets")
	deadline := flag.Duration("deadline", 0, "stop cooperatively after this wall-clock budget (0 = none)")
	showVersion := flag.Bool("version", false, "print the build identity (the /version handshake) and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(service.Version())
		return
	}

	budget := bench.FullBudget()
	if *quick {
		budget = bench.QuickBudget()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}
	s := bench.NewSuiteCtx(ctx, budget)

	interrupted := false
	failed := false
	run := func(name string, f func() (string, error)) {
		if interrupted {
			return
		}
		start := time.Now()
		out, err := f()
		switch {
		case err == nil:
			fmt.Printf("== %s (%.1fs) ==\n%s\n", name, time.Since(start).Seconds(), out)
		case errors.Is(err, bench.ErrInterrupted) || ctx.Err() != nil:
			fmt.Fprintf(os.Stderr, "%s interrupted after %.1fs: %v\n", name, time.Since(start).Seconds(), err)
			interrupted = true
		default:
			// A single broken table must not cost the remaining ones.
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			failed = true
		}
	}

	tables := map[int]func() (string, error){
		1: s.Table1,
		2: func() (string, error) { _, out, err := s.Table2(); return out, err },
		3: func() (string, error) { _, out, err := s.Table3(); return out, err },
		4: func() (string, error) { _, out, err := s.Table4(); return out, err },
		5: func() (string, error) { _, out, err := s.Table5(); return out, err },
		6: func() (string, error) { _, out, err := s.Table6(); return out, err },
		7: func() (string, error) { _, out, err := s.Table7(); return out, err },
		8: func() (string, error) { _, out, err := s.Table8(); return out, err },
	}

	switch {
	case *all:
		for i := 1; i <= 8; i++ {
			run(fmt.Sprintf("Table %d", i), tables[i])
		}
		run("Figure 3", func() (string, error) { _, out, err := s.Figure3(); return out, err })
	case *table >= 1 && *table <= 8:
		run(fmt.Sprintf("Table %d", *table), tables[*table])
	case *figure == 3:
		run("Figure 3", func() (string, error) { _, out, err := s.Figure3(); return out, err })
	case *ablations:
		run("Ablation: unreachable-state don't-cares", s.AblationDC)
		run("Ablation: SEST search-state learning", s.AblationLearning)
	default:
		flag.Usage()
		os.Exit(2)
	}
	switch {
	case interrupted:
		os.Exit(4)
	case failed:
		os.Exit(1)
	}
}
