// Command experiments regenerates the tables and figures of "Complexity
// of Sequential ATPG" (Marchok, El-Maleh, Maly, Rajski; DATE 1995) on
// the synthetic reproduction suite.
//
// Usage:
//
//	experiments -all            # every table and figure (full budget)
//	experiments -table 2        # a single table
//	experiments -figure 3       # the figure
//	experiments -quick -all     # smoke-test budgets
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"seqatpg/internal/bench"
)

func main() {
	table := flag.Int("table", 0, "regenerate one table (1-8)")
	figure := flag.Int("figure", 0, "regenerate one figure (3)")
	all := flag.Bool("all", false, "regenerate everything")
	ablations := flag.Bool("ablations", false, "run the design-choice ablations")
	quick := flag.Bool("quick", false, "use small smoke-test budgets")
	flag.Parse()

	budget := bench.FullBudget()
	if *quick {
		budget = bench.QuickBudget()
	}
	s := bench.NewSuite(budget)

	run := func(name string, f func() (string, error)) {
		start := time.Now()
		out, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("== %s (%.1fs) ==\n%s\n", name, time.Since(start).Seconds(), out)
	}

	tables := map[int]func() (string, error){
		1: s.Table1,
		2: func() (string, error) { _, out, err := s.Table2(); return out, err },
		3: func() (string, error) { _, out, err := s.Table3(); return out, err },
		4: func() (string, error) { _, out, err := s.Table4(); return out, err },
		5: func() (string, error) { _, out, err := s.Table5(); return out, err },
		6: func() (string, error) { _, out, err := s.Table6(); return out, err },
		7: func() (string, error) { _, out, err := s.Table7(); return out, err },
		8: func() (string, error) { _, out, err := s.Table8(); return out, err },
	}

	switch {
	case *all:
		for i := 1; i <= 8; i++ {
			run(fmt.Sprintf("Table %d", i), tables[i])
		}
		run("Figure 3", func() (string, error) { _, out, err := s.Figure3(); return out, err })
	case *table >= 1 && *table <= 8:
		run(fmt.Sprintf("Table %d", *table), tables[*table])
	case *figure == 3:
		run("Figure 3", func() (string, error) { _, out, err := s.Figure3(); return out, err })
	case *ablations:
		run("Ablation: unreachable-state don't-cares", s.AblationDC)
		run("Ablation: SEST search-state learning", s.AblationLearning)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
