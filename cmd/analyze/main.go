// Command analyze reports a netlist's structural attributes (maximum
// sequential depth, cycle statistics) and its state-space profile
// (valid states, density of encoding) — the paper's Table 5 and Table
// 6/7 instrumentation for a single circuit.
//
// Usage:
//
//	analyze -in a.net
//
// Exit codes:
//
//	0  analysis completed
//	1  setup or analysis failed
//	2  usage error
//	4  interrupted (signal) before the reachability phase
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"seqatpg/internal/analyze"
	"seqatpg/internal/netlist"
	"seqatpg/internal/reach"
	"seqatpg/internal/retime"
	"seqatpg/internal/service"
)

const (
	exitOK          = 0
	exitSetup       = 1
	exitUsage       = 2
	exitInterrupted = 4
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("analyze: ")
	os.Exit(run())
}

func run() int {
	in := flag.String("in", "", "input netlist")
	skipReach := flag.Bool("noreach", false, "skip the symbolic reachability analysis")
	showVersion := flag.Bool("version", false, "print the build identity (the /version handshake) and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(service.Version())
		return exitOK
	}
	if *in == "" {
		fmt.Fprintln(os.Stderr, "analyze: -in is required")
		flag.Usage()
		return exitUsage
	}
	f, err := os.Open(*in)
	if err != nil {
		log.Print(err)
		return exitSetup
	}
	c, err := netlist.Read(f)
	f.Close()
	if err != nil {
		log.Print(err)
		return exitSetup
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	stats, err := c.ComputeStats(netlist.DefaultLibrary())
	if err != nil {
		log.Print(err)
		return exitSetup
	}
	fmt.Printf("circuit:        %s\n", c.Name)
	fmt.Printf("gates:          %d comb, %d DFFs, %d PIs, %d POs\n",
		stats.Gates, stats.DFFs, stats.PIs, stats.POs)
	fmt.Printf("area / delay:   %.0f / %.2f\n", stats.Area, stats.Delay)

	attr, err := analyze.Analyze(c)
	if err != nil {
		log.Print(err)
		return exitSetup
	}
	note := ""
	if attr.Truncated {
		note = " (lower bounds; enumeration truncated)"
	}
	fmt.Printf("seq depth:      %d\n", attr.MaxSeqDepth)
	fmt.Printf("max cycle len:  %d\n", attr.MaxCycleLength)
	fmt.Printf("cycles (Lioy):  %d%s\n", attr.NumCycles, note)

	if !*skipReach {
		// Reachability is the expensive phase; honor a signal that
		// arrived during the structural analysis before starting it.
		if ctx.Err() != nil {
			log.Print("interrupted before reachability (structural report above is complete)")
			return exitInterrupted
		}
		if c.ResetPI < 0 {
			log.Print("circuit has no reset line; cannot run reachability (use -noreach)")
			return exitSetup
		}
		flush, err := retime.FlushLength(c)
		if err != nil {
			log.Print(err)
			return exitSetup
		}
		ra, err := reach.Analyze(c, reach.Options{FlushCycles: flush})
		if err != nil {
			log.Print(err)
			return exitSetup
		}
		fmt.Printf("valid states:   %.0f of %.0f\n", ra.ValidStates, ra.TotalStates)
		fmt.Printf("density:        %.3g\n", ra.Density)
	}
	return exitOK
}
