// Command analyze reports a netlist's structural attributes (maximum
// sequential depth, cycle statistics) and its state-space profile
// (valid states, density of encoding) — the paper's Table 5 and Table
// 6/7 instrumentation for a single circuit.
//
// Usage:
//
//	analyze -in a.net
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"seqatpg/internal/analyze"
	"seqatpg/internal/netlist"
	"seqatpg/internal/reach"
	"seqatpg/internal/retime"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("analyze: ")
	in := flag.String("in", "", "input netlist")
	skipReach := flag.Bool("noreach", false, "skip the symbolic reachability analysis")
	flag.Parse()
	if *in == "" {
		log.Fatal("-in is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	c, err := netlist.Read(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}

	stats, err := c.ComputeStats(netlist.DefaultLibrary())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit:        %s\n", c.Name)
	fmt.Printf("gates:          %d comb, %d DFFs, %d PIs, %d POs\n",
		stats.Gates, stats.DFFs, stats.PIs, stats.POs)
	fmt.Printf("area / delay:   %.0f / %.2f\n", stats.Area, stats.Delay)

	attr, err := analyze.Analyze(c)
	if err != nil {
		log.Fatal(err)
	}
	note := ""
	if attr.Truncated {
		note = " (lower bounds; enumeration truncated)"
	}
	fmt.Printf("seq depth:      %d\n", attr.MaxSeqDepth)
	fmt.Printf("max cycle len:  %d\n", attr.MaxCycleLength)
	fmt.Printf("cycles (Lioy):  %d%s\n", attr.NumCycles, note)

	if !*skipReach {
		if c.ResetPI < 0 {
			log.Fatal("circuit has no reset line; cannot run reachability (use -noreach)")
		}
		flush, err := retime.FlushLength(c)
		if err != nil {
			log.Fatal(err)
		}
		ra, err := reach.Analyze(c, reach.Options{FlushCycles: flush})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("valid states:   %.0f of %.0f\n", ra.ValidStates, ra.TotalStates)
		fmt.Printf("density:        %.3g\n", ra.Density)
	}
}
