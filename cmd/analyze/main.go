// Command analyze reports a netlist's structural attributes (maximum
// sequential depth, cycle statistics) and its state-space profile
// (valid states, density of encoding) — the paper's Table 5 and Table
// 6/7 instrumentation for a single circuit.
//
// Usage:
//
//	analyze -in a.net
//	analyze -in a.net -predict      # per-fault hardness table
//
// Exit codes:
//
//	0  analysis completed
//	1  setup or analysis failed
//	2  usage error
//	4  interrupted (signal) before the reachability phase
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"text/tabwriter"

	"seqatpg/internal/analyze"
	"seqatpg/internal/fault"
	"seqatpg/internal/netlist"
	"seqatpg/internal/predict"
	"seqatpg/internal/reach"
	"seqatpg/internal/retime"
	"seqatpg/internal/service"
)

const (
	exitOK          = 0
	exitSetup       = 1
	exitUsage       = 2
	exitInterrupted = 4
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("analyze: ")
	os.Exit(run())
}

func run() int {
	in := flag.String("in", "", "input netlist")
	skipReach := flag.Bool("noreach", false, "skip the symbolic reachability analysis")
	predictTable := flag.Bool("predict", false, "print the per-fault hardness table: testability features, predicted cost, scheduling queue")
	budget := flag.Int64("budget", 0, "per-fault effort budget the rung assignment assumes (default: 8000 x gates, matching atpg)")
	retries := flag.Int("retries", 2, "retry-ladder passes the rung assignment assumes (matching atpg)")
	showVersion := flag.Bool("version", false, "print the build identity (the /version handshake) and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(service.Version())
		return exitOK
	}
	if *in == "" {
		fmt.Fprintln(os.Stderr, "analyze: -in is required")
		flag.Usage()
		return exitUsage
	}
	f, err := os.Open(*in)
	if err != nil {
		log.Print(err)
		return exitSetup
	}
	c, err := netlist.Read(f)
	f.Close()
	if err != nil {
		log.Print(err)
		return exitSetup
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	stats, err := c.ComputeStats(netlist.DefaultLibrary())
	if err != nil {
		log.Print(err)
		return exitSetup
	}
	fmt.Printf("circuit:        %s\n", c.Name)
	fmt.Printf("gates:          %d comb, %d DFFs, %d PIs, %d POs\n",
		stats.Gates, stats.DFFs, stats.PIs, stats.POs)
	fmt.Printf("area / delay:   %.0f / %.2f\n", stats.Area, stats.Delay)

	attr, err := analyze.Analyze(c)
	if err != nil {
		log.Print(err)
		return exitSetup
	}
	note := ""
	if attr.Truncated {
		note = " (lower bounds; enumeration truncated)"
	}
	fmt.Printf("seq depth:      %d\n", attr.MaxSeqDepth)
	fmt.Printf("max cycle len:  %d\n", attr.MaxCycleLength)
	fmt.Printf("cycles (Lioy):  %d%s\n", attr.NumCycles, note)

	if !*skipReach {
		// Reachability is the expensive phase; honor a signal that
		// arrived during the structural analysis before starting it.
		if ctx.Err() != nil {
			log.Print("interrupted before reachability (structural report above is complete)")
			return exitInterrupted
		}
		if c.ResetPI < 0 {
			log.Print("circuit has no reset line; cannot run reachability (use -noreach)")
			return exitSetup
		}
		flush, err := retime.FlushLength(c)
		if err != nil {
			log.Print(err)
			return exitSetup
		}
		ra, err := reach.Analyze(c, reach.Options{FlushCycles: flush})
		if err != nil {
			log.Print(err)
			return exitSetup
		}
		fmt.Printf("valid states:   %.0f of %.0f\n", ra.ValidStates, ra.TotalStates)
		fmt.Printf("density:        %.3g\n", ra.Density)
	}

	if *predictTable {
		if err := printPredictTable(c, *budget, *retries); err != nil {
			log.Print(err)
			return exitSetup
		}
	}
	return exitOK
}

// printPredictTable reports each collapsed fault's testability features
// next to the predictor's verdict on them — the predicted cost in gate
// evaluations, the retry-ladder rung a scheduled campaign would start
// it at, and the queue it would run in (queue 0 is the easy-first
// stream; higher queues are the concurrent big-budget ones). The rung
// and queue mirror campaign.RunScheduled exactly, so this table is the
// dry-run view of what -schedule would do.
func printPredictTable(c *netlist.Circuit, budget int64, retries int) error {
	if budget == 0 {
		budget = 8000 * int64(c.NumGates())
	}
	if retries < 0 {
		retries = 0
	}
	faults := fault.CollapsedUniverse(c)
	flush, err := retime.FlushLength(c)
	if err != nil {
		return err
	}
	fs, err := predict.Extract(c, faults, predict.Options{WithDensity: true, FlushCycles: flush})
	if err != nil {
		return err
	}
	plan := predict.NewPlan(fs, nil, budget, retries)

	hard := 0
	for _, h := range plan.Hard {
		if h {
			hard++
		}
	}
	density := "unknown"
	if fs.Density.Known {
		density = fmt.Sprintf("%.3g", fs.Density.Value)
	}
	fmt.Printf("\npredictor:      %s (budget %d, retries %d)\n", plan.Predictor, budget, retries)
	fmt.Printf("predicted hard: %d of %d faults, density %s, scoap converged %v (%d passes)\n",
		hard, len(faults), density, fs.SCOAPConverged, fs.SCOAPPasses)

	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "fault\tcc0\tcc1\tact\tobs\tseq\tffr\tfan\tscore\trung\tqueue\t")
	for i, f := range fs.Faults {
		fmt.Fprintf(w, "%v\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.4g\t%d\t%d\t\n",
			faults[i], f.CC0, f.CC1, f.CCAct, f.Obs, f.SeqDepth, f.FFRSize, f.Fanout,
			plan.Scores[i], plan.Rungs[i], queueOf(plan, i))
	}
	return w.Flush()
}

// queueOf mirrors campaign.RunScheduled's queue assignment: the ladder
// rung when rung budgets are in play, else the easy/hard split.
func queueOf(plan *predict.Plan, i int) int {
	if plan.Rungs[i] > 0 {
		return plan.Rungs[i]
	}
	if plan.Hard[i] {
		return 1
	}
	return 0
}
