// Command atpg runs one of the three structural sequential test
// generators over a netlist as a resilient campaign: deadline-aware,
// checkpointable, crash-isolating, with retry escalation for aborted
// faults.
//
// Usage:
//
//	atpg -in a.net -engine hitec -budget 3000000
//	atpg -in a.net -deadline 2h -checkpoint a.ckpt   # long run
//	atpg -in a.net -checkpoint a.ckpt -resume        # pick it back up
//
// Exit codes:
//
//	0  run completed
//	1  setup failed (bad input, bad config, foreign checkpoint)
//	2  usage error
//	3  run completed but fault efficiency is below -min-fe
//	4  run interrupted (signal or -deadline); checkpoint written if configured
//	5  run completed but post-processing (compaction, vector output) failed
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"

	"seqatpg/internal/atpg"
	"seqatpg/internal/atpg/attest"
	"seqatpg/internal/atpg/hitec"
	"seqatpg/internal/atpg/sest"
	"seqatpg/internal/campaign"
	"seqatpg/internal/fault"
	"seqatpg/internal/netlist"
	"seqatpg/internal/retime"
	"seqatpg/internal/service"
	"seqatpg/internal/sim"
)

const (
	exitOK          = 0
	exitSetup       = 1
	exitUsage       = 2
	exitCoverage    = 3
	exitInterrupted = 4
	exitPostRun     = 5
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("atpg: ")
	os.Exit(run())
}

func run() int {
	in := flag.String("in", "", "input netlist")
	engine := flag.String("engine", "hitec", "engine: hitec, attest, sest")
	budget := flag.Int64("budget", 0, "per-fault effort budget in gate evaluations (default: 8000 x gates)")
	flush := flag.Int("flush", 0, "reset-hold cycles (default: measured from the circuit)")
	showAborts := flag.Bool("aborts", false, "list the aborted faults")
	relaxed := flag.Bool("relaxed", false, "retry failed state justifications on the good machine (recovers some aborts at extra effort)")
	compact := flag.Bool("compact", false, "apply static compaction to the test set")
	out := flag.String("o", "", "write the generated test vectors to this file")
	deadline := flag.Duration("deadline", 0, "stop cooperatively after this wall-clock budget (0 = none)")
	checkpoint := flag.String("checkpoint", "", "checkpoint file: written periodically and on interruption, removed on success")
	resume := flag.Bool("resume", false, "resume from -checkpoint if it exists")
	retries := flag.Int("retries", 2, "escalation passes re-attacking aborted faults at 2x, 4x, ... budget (0 = off)")
	minFE := flag.Float64("min-fe", 0, "exit with status 3 if final fault efficiency is below this percentage")
	fsimWorkers := flag.Int("fsim-workers", 0, "fault-simulation worker count (0 = all CPUs; results are identical for every value)")
	sharedLearn := flag.Bool("shared-learn", false, "share the justification cache across faults (implies learning; verdict-preserving under generous budgets)")
	learnCap := flag.Int("learn-cap", 0, "size bound per learning store, oldest evicted first (0 = default 4096)")
	obliviousSim := flag.Bool("oblivious-sim", false, "verification mode: re-derive every window simulation with a full oblivious sweep (identical results, slower)")
	cdcl := flag.Bool("cdcl", false, "conflict-driven search: learn blocking cubes from conflicts, backjump non-chronologically, restart on a Luby schedule (verdict-preserving)")
	schedule := flag.Bool("schedule", false, "testability-aware scheduling: order faults easy-first by predicted cost, run predicted-hard faults on concurrent big-budget queues starting at their predicted ladder rung (verdict-preserving)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memprofile := flag.String("memprofile", "", "write a heap profile to this path on exit")
	showVersion := flag.Bool("version", false, "print the build identity (the /version handshake) and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(service.Version())
		return exitOK
	}
	if *in == "" {
		fmt.Fprintln(os.Stderr, "atpg: -in is required")
		flag.Usage()
		return exitUsage
	}
	if *minFE < 0 || *minFE > 100 {
		fmt.Fprintf(os.Stderr, "atpg: -min-fe %v is not a percentage\n", *minFE)
		return exitUsage
	}

	f, err := os.Open(*in)
	if err != nil {
		log.Print(err)
		return exitSetup
	}
	c, err := netlist.Read(f)
	f.Close()
	if err != nil {
		log.Print(err)
		return exitSetup
	}
	if *budget == 0 {
		*budget = 8000 * int64(c.NumGates())
	}
	if *flush == 0 {
		n, err := retime.FlushLength(c)
		if err != nil {
			log.Print(err)
			return exitSetup
		}
		*flush = n
		if *flush < 1 {
			*flush = 1
		}
	}

	var cfg atpg.Config
	switch *engine {
	case "hitec":
		cfg = hitec.DefaultConfig(*flush, *budget)
	case "attest":
		cfg = attest.DefaultConfig(*flush, *budget)
	case "sest":
		cfg = sest.DefaultConfig(*flush, *budget)
	default:
		log.Printf("unknown engine %q", *engine)
		return exitUsage
	}
	cfg.RelaxedJustify = *relaxed
	if *sharedLearn {
		cfg.Learning = true
		cfg.SharedLearning = true
	}
	if *learnCap != 0 {
		cfg.LearnCap = *learnCap
	}
	cfg.ObliviousSim = *obliviousSim
	if *cdcl {
		cfg.ConflictLearning = true
		cfg.Backjump = true
		cfg.Restarts = true
	}

	if *cpuprofile != "" {
		pf, err := os.Create(*cpuprofile)
		if err != nil {
			log.Print(err)
			return exitSetup
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			pf.Close()
			log.Print(err)
			return exitSetup
		}
		defer func() {
			pprof.StopCPUProfile()
			pf.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			pf, err := os.Create(*memprofile)
			if err != nil {
				log.Print(err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(pf); err != nil {
				log.Print(err)
			}
			pf.Close()
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}

	faults := fault.CollapsedUniverse(c)
	ccfg := campaign.Config{
		Engine:         cfg,
		Retries:        *retries,
		FsimWorkers:    *fsimWorkers,
		CheckpointPath: *checkpoint,
		Resume:         *resume,
		Log:            log.Printf,
	}
	var res *campaign.Result
	if *schedule {
		res, err = campaign.RunScheduled(ctx, c, faults, ccfg, campaign.SchedConfig{
			WithDensity: true,
			RungBudgets: true,
		})
	} else {
		res, err = campaign.Run(ctx, c, faults, ccfg)
	}
	if err != nil {
		log.Print(err)
		return exitSetup
	}

	s := res.Stats
	fmt.Printf("circuit:   %s (%d gates, %d DFFs)\n", c.Name, c.NumGates(), c.NumDFFs())
	fmt.Printf("engine:    %s (%d passes", *engine, res.Passes)
	if res.Resumed {
		fmt.Printf(", resumed")
	}
	fmt.Printf(")\n")
	fmt.Printf("faults:    %d total, %d detected, %d redundant, %d aborted",
		s.Total, s.Detected, s.Redundant, s.Aborted)
	if s.Crashed > 0 {
		fmt.Printf(", %d crashed", s.Crashed)
	}
	fmt.Printf("\n")
	fmt.Printf("coverage:  FC %.2f%%  FE %.2f%%\n", s.FC(), s.FE())
	fmt.Printf("effort:    %d gate evaluations, %d backtracks\n", s.Effort, s.Backtracks)
	effWorkers := *fsimWorkers
	if effWorkers <= 0 {
		effWorkers = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("fsim:      %d workers, width auto (throughput knobs; results identical for every value)\n",
		effWorkers)
	fmt.Printf("tests:     %d sequences\n", len(res.Tests))
	fmt.Printf("states:    %d distinct states traversed\n", len(s.StatesTraversed))
	if s.LearnHits+s.LearnPrunes > 0 {
		fmt.Printf("learning:  %d cache hits, %d prunes\n", s.LearnHits, s.LearnPrunes)
	}
	if *cdcl || s.LearnedCubes+s.Backjumps+s.Restarts > 0 {
		fmt.Printf("cdcl:      %d learned cubes, %d backjumps, %d restarts\n",
			s.LearnedCubes, s.Backjumps, s.Restarts)
	}
	for _, cr := range res.Crashes {
		log.Printf("%v", cr.Error())
	}
	if res.Degraded {
		log.Printf("WARNING: %d checkpoint write(s) failed during the run; "+
			"the verdicts above are unaffected, but an interruption would have lost more progress than -checkpoint-every promises",
			res.CheckpointFailures)
	}
	if *showAborts {
		for i, o := range res.Outcomes {
			if o == atpg.Aborted {
				fmt.Printf("  aborted: %v\n", faults[i])
			}
		}
	}

	if res.Interrupted {
		// The report above is the partial progress; the run itself did
		// not finish, so skip post-processing and coverage gating.
		if *checkpoint != "" {
			log.Printf("interrupted; resume with -checkpoint %s -resume", *checkpoint)
		} else {
			log.Print("interrupted; rerun with -checkpoint to make runs resumable")
		}
		return exitInterrupted
	}

	// Post-processing: the campaign is done, so failures here must not
	// discard the report (no log.Fatal past this point).
	tests := res.Tests
	if *compact {
		kept, err := atpg.CompactTests(c, tests, faults)
		if err != nil {
			log.Printf("compaction failed: %v", err)
			return exitPostRun
		}
		fmt.Printf("compacted: %d sequences (reverse-order static compaction)\n", len(kept))
		tests = kept
	}
	if *out != "" {
		if err := writeVectors(*out, tests); err != nil {
			log.Printf("writing vectors failed: %v", err)
			return exitPostRun
		}
		fmt.Printf("written:   %s\n", *out)
	}

	if *minFE > 0 && s.FE() < *minFE {
		log.Printf("fault efficiency %.2f%% is below the -min-fe gate of %.2f%%", s.FE(), *minFE)
		return exitCoverage
	}
	return exitOK
}

func writeVectors(path string, tests [][][]sim.Val) error {
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := sim.WriteVectors(file, tests); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}
