// Command atpg runs one of the three structural sequential test
// generators over a netlist and reports coverage, efficiency, effort
// and the traversed-state count.
//
// Usage:
//
//	atpg -in a.net -engine hitec -budget 3000000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"seqatpg/internal/atpg"
	"seqatpg/internal/atpg/attest"
	"seqatpg/internal/atpg/hitec"
	"seqatpg/internal/atpg/sest"
	"seqatpg/internal/fault"
	"seqatpg/internal/netlist"
	"seqatpg/internal/retime"
	"seqatpg/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("atpg: ")
	in := flag.String("in", "", "input netlist")
	engine := flag.String("engine", "hitec", "engine: hitec, attest, sest")
	budget := flag.Int64("budget", 0, "per-fault effort budget in gate-frame evaluations (default: 8000 x gates)")
	flush := flag.Int("flush", 0, "reset-hold cycles (default: measured from the circuit)")
	showAborts := flag.Bool("aborts", false, "list the aborted faults")
	relaxed := flag.Bool("relaxed", false, "retry failed state justifications on the good machine (recovers some aborts at extra effort)")
	compact := flag.Bool("compact", false, "apply static compaction to the test set")
	out := flag.String("o", "", "write the generated test vectors to this file")
	flag.Parse()
	if *in == "" {
		log.Fatal("-in is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	c, err := netlist.Read(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	if *budget == 0 {
		*budget = 8000 * int64(c.NumGates())
	}
	if *flush == 0 {
		n, err := retime.FlushLength(c)
		if err != nil {
			log.Fatal(err)
		}
		*flush = n
		if *flush < 1 {
			*flush = 1
		}
	}

	var cfg atpg.Config
	switch *engine {
	case "hitec":
		cfg = hitec.DefaultConfig(*flush, *budget)
	case "attest":
		cfg = attest.DefaultConfig(*flush, *budget)
	case "sest":
		cfg = sest.DefaultConfig(*flush, *budget)
	default:
		log.Fatalf("unknown engine %q", *engine)
	}
	cfg.RelaxedJustify = *relaxed
	e, err := atpg.New(c, cfg)
	if err != nil {
		log.Fatal(err)
	}
	faults := fault.CollapsedUniverse(c)
	res, err := e.RunFaults(faults)
	if err != nil {
		log.Fatal(err)
	}
	s := res.Stats
	fmt.Printf("circuit:   %s (%d gates, %d DFFs)\n", c.Name, c.NumGates(), c.NumDFFs())
	fmt.Printf("engine:    %s\n", *engine)
	fmt.Printf("faults:    %d total, %d detected, %d redundant, %d aborted\n",
		s.Total, s.Detected, s.Redundant, s.Aborted)
	fmt.Printf("coverage:  FC %.2f%%  FE %.2f%%\n", s.FC(), s.FE())
	fmt.Printf("effort:    %d gate-frame evaluations, %d backtracks\n", s.Effort, s.Backtracks)
	fmt.Printf("tests:     %d sequences\n", len(res.Tests))
	tests := res.Tests
	if *compact {
		kept, err := atpg.CompactTests(c, tests, faults)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("compacted: %d sequences (reverse-order static compaction)\n", len(kept))
		tests = kept
	}
	if *out != "" {
		file, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer file.Close()
		if err := sim.WriteVectors(file, tests); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("written:   %s\n", *out)
	}
	fmt.Printf("states:    %d distinct states traversed\n", len(s.StatesTraversed))
	if s.LearnHits+s.LearnPrunes > 0 {
		fmt.Printf("learning:  %d cache hits, %d prunes\n", s.LearnHits, s.LearnPrunes)
	}
	if *showAborts {
		for i, o := range res.Outcomes {
			if o == atpg.Aborted {
				fmt.Printf("  aborted: %v\n", faults[i])
			}
		}
	}
}
