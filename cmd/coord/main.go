// Command coord runs a federated ATPG campaign across a fleet of
// `serve` workers: it splits the collapsed fault universe into the
// same deterministic shards campaign.RunSharded uses, dispatches each
// shard as a job over the workers' JSON API, holds dispatched shards
// under heartbeat-renewed leases, re-dispatches lost shards from their
// last durable checkpoint, and merges the shard results into a global
// report identical to a single-node run (see internal/fabric).
//
// Usage:
//
//	coord -in a.bench -workers http://n1:8080,http://n2:8080
//	coord -in a.bench -workers ... -shards 8 -dir ./coord-state
//
// With -dir, shard checkpoints and finished shard results are durable:
// a restarted coordinator re-dispatches only the unfinished shards.
//
// Exit codes:
//
//	0  campaign completed
//	1  setup or dispatch failed (bad input, incompatible fleet, shard exhausted)
//	2  usage error
//	3  campaign completed but fault efficiency is below -min-fe
//	4  campaign interrupted (signal or -deadline)
//	5  campaign completed but post-processing (vector output) failed
//	6  campaign completed degraded (worker checkpoint persistence failed
//	   mid-run; verdicts are unaffected, resume coverage had gaps)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on http.DefaultServeMux for the ops listener
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"seqatpg/internal/fabric"
	"seqatpg/internal/rescache"
	"seqatpg/internal/service"
	"seqatpg/internal/sim"
)

const (
	exitOK          = 0
	exitSetup       = 1
	exitUsage       = 2
	exitCoverage    = 3
	exitInterrupted = 4
	exitPostRun     = 5
	exitDegraded    = 6
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("coord: ")
	os.Exit(run())
}

func run() int {
	in := flag.String("in", "", "input netlist")
	format := flag.String("format", "", "netlist format: bench, net (default: by extension, .net = net)")
	engine := flag.String("engine", "hitec", "engine: hitec, attest, sest")
	budget := flag.Int64("budget", 0, "per-fault effort budget in gate evaluations (default: 8000 x gates)")
	retries := flag.Int("retries", 2, "escalation passes re-attacking aborted faults at 2x, 4x, ... budget (0 = off)")
	seed := flag.Int64("seed", 0, "seed for the engine's randomized phases")
	maxFaults := flag.Int("max-faults", 0, "truncate the collapsed fault universe (0 = all)")
	flush := flag.Int("flush", 0, "reset-hold cycles (default: measured from the circuit)")
	name := flag.String("name", "", "job label echoed in worker status output")

	workers := flag.String("workers", "", "comma-separated worker base URLs (required)")
	shards := flag.Int("shards", 0, "shard count (0 = one per worker)")
	balance := flag.Bool("balance", false, "pack shards balanced by predicted fault cost instead of round-robin (verdict-preserving; whole fleet must run the same API version)")
	lease := flag.Duration("lease", 30*time.Second, "shard lease: re-dispatch after this long without observable progress")
	heartbeat := flag.Duration("heartbeat", 0, "status-poll interval renewing leases (0 = lease/5)")
	redispatchMax := flag.Int("redispatch-max", 8, "dispatch attempts per shard before giving up")
	retryMax := flag.Int("retry-max", 3, "HTTP retries per call (negative = off)")
	reqTimeout := flag.Duration("request-timeout", 10*time.Second, "per-attempt HTTP timeout")
	backoff := flag.Duration("backoff", 100*time.Millisecond, "base retry backoff (exponential, jittered)")
	backoffMax := flag.Duration("backoff-max", 5*time.Second, "retry backoff cap")
	breakerFails := flag.Int("breaker-fails", 8, "consecutive failures that eject a worker (negative = breaker off)")
	probation := flag.Duration("probation", 15*time.Second, "how long an ejected worker sits out before a re-admission probe")

	dir := flag.String("dir", "", "durable coordinator state (shard checkpoints, results, journal); empty = in-memory only")
	out := flag.String("o", "", "write the generated test vectors to this file")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus /metrics and /debug/pprof on this address (empty = off)")
	minFE := flag.Float64("min-fe", 0, "exit with status 3 if final fault efficiency is below this percentage")
	deadline := flag.Duration("deadline", 0, "stop cooperatively after this wall-clock budget (0 = none)")
	fsimWorkers := flag.Int("fsim-workers", 0, "merge fault-simulation worker count (0 = 1; results are identical for every value)")
	cacheDir := flag.String("cache-dir", "", "content-addressed shard-result cache directory (empty = cache off)")
	cacheCap := flag.Int64("cache-cap", rescache.DefaultCap, "shard-result cache capacity in payload bytes; LRU eviction past it (negative = unbounded)")
	showVersion := flag.Bool("version", false, "print the build identity (the /version handshake) and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(service.Version())
		return exitOK
	}
	if *in == "" {
		fmt.Fprintln(os.Stderr, "coord: -in is required")
		flag.Usage()
		return exitUsage
	}
	if *workers == "" {
		fmt.Fprintln(os.Stderr, "coord: -workers is required")
		flag.Usage()
		return exitUsage
	}
	if *minFE < 0 || *minFE > 100 {
		fmt.Fprintf(os.Stderr, "coord: -min-fe %v is not a percentage\n", *minFE)
		return exitUsage
	}
	var fleet []string
	for _, w := range strings.Split(*workers, ",") {
		if w = strings.TrimSpace(w); w != "" {
			fleet = append(fleet, w)
		}
	}
	if len(fleet) == 0 {
		fmt.Fprintln(os.Stderr, "coord: -workers lists no URLs")
		return exitUsage
	}

	text, err := os.ReadFile(*in)
	if err != nil {
		log.Print(err)
		return exitSetup
	}
	if *format == "" {
		if strings.HasSuffix(*in, ".net") {
			*format = "net"
		} else {
			*format = "bench"
		}
	}
	spec := service.Spec{
		Name:        *name,
		Netlist:     string(text),
		Format:      *format,
		Engine:      *engine,
		FaultBudget: *budget,
		Retries:     *retries,
		Seed:        *seed,
		MaxFaults:   *maxFaults,
		FlushCycles: *flush,
	}

	var cache *rescache.Cache
	if *cacheDir != "" {
		cache, err = rescache.Open(rescache.Options{Dir: *cacheDir, CapBytes: *cacheCap, Logf: log.Printf})
		if err != nil {
			log.Print(err)
			return exitSetup
		}
		st := cache.Stats()
		log.Printf("shard-result cache in %s: %d entries, %d bytes (cap %d)", *cacheDir, st.Entries, st.Bytes, *cacheCap)
	}

	coord, err := fabric.NewCoordinator(fabric.Options{
		Workers:       fleet,
		Shards:        *shards,
		Balance:       *balance,
		Lease:         *lease,
		Heartbeat:     *heartbeat,
		MaxRedispatch: *redispatchMax,
		Dir:           *dir,
		FsimWorkers:   *fsimWorkers,
		Cache:         cache,
		Logf:          log.Printf,
		Client: fabric.ClientOptions{
			RetryMax:         *retryMax,
			RequestTimeout:   *reqTimeout,
			BackoffBase:      *backoff,
			BackoffMax:       *backoffMax,
			BreakerThreshold: *breakerFails,
			Probation:        *probation,
		},
	})
	if err != nil {
		log.Print(err)
		return exitSetup
	}

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", coord.MetricsHandler())
		// net/http/pprof registers on http.DefaultServeMux at import;
		// mounting it here keeps profiles on the ops address, off the
		// coordination listener.
		mux.Handle("/debug/pprof/", http.DefaultServeMux)
		ms := &http.Server{Addr: *metricsAddr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			if err := ms.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				log.Printf("metrics listener: %v", err)
			}
		}()
		defer ms.Close()
		log.Printf("metrics and pprof on %s", *metricsAddr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}

	res, err := coord.Run(ctx, spec)
	snap := coord.Metrics()
	if err != nil {
		if ctx.Err() != nil {
			log.Printf("interrupted: %v", err)
			if *dir != "" {
				log.Printf("restart with the same -dir to resume from %d finished shard(s) and the cached checkpoints", snap.ShardsRestoredTotal)
			}
			return exitInterrupted
		}
		log.Print(err)
		return exitSetup
	}

	s := res.Stats
	fmt.Printf("fleet:     %d worker(s), %d shard(s), %d re-dispatch(es), %d ejection(s), %d restored, %d cached\n",
		len(fleet), shardCount(*shards, len(fleet)), snap.RedispatchTotal, snap.WorkerEjectedTotal, snap.ShardsRestoredTotal, snap.ShardsCachedTotal)
	fmt.Printf("engine:    %s (%d passes", *engine, res.Passes)
	if res.Resumed {
		fmt.Printf(", resumed")
	}
	fmt.Printf(")\n")
	fmt.Printf("faults:    %d total, %d detected, %d redundant, %d aborted",
		s.Total, s.Detected, s.Redundant, s.Aborted)
	if s.Crashed > 0 {
		fmt.Printf(", %d crashed", s.Crashed)
	}
	fmt.Printf("\n")
	fmt.Printf("coverage:  FC %.2f%%  FE %.2f%%\n", s.FC(), s.FE())
	fmt.Printf("effort:    %d gate evaluations, %d backtracks\n", s.Effort, s.Backtracks)
	fmt.Printf("tests:     %d sequences\n", len(res.Tests))

	if *out != "" {
		if err := writeVectors(*out, res.Tests); err != nil {
			log.Printf("writing vectors failed: %v", err)
			return exitPostRun
		}
		fmt.Printf("written:   %s\n", *out)
	}
	if *minFE > 0 && s.FE() < *minFE {
		log.Printf("fault efficiency %.2f%% is below the -min-fe gate of %.2f%%", s.FE(), *minFE)
		return exitCoverage
	}
	if res.Degraded {
		log.Printf("completed DEGRADED: %d worker checkpoint write(s) failed mid-run; "+
			"the verdicts above are unaffected, but re-dispatch would have lost more progress than promised",
			res.CheckpointFailures)
		return exitDegraded
	}
	return exitOK
}

func shardCount(shards, workers int) int {
	if shards > 0 {
		return shards
	}
	return workers
}

func writeVectors(path string, tests [][][]sim.Val) error {
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := sim.WriteVectors(file, tests); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}
