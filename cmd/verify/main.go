// Command verify checks two netlists for sequential I/O equivalence by
// symbolic product-machine reachability (both circuits are flushed by
// holding their shared reset line first). Exit status 0 = equivalent,
// 1 = counterexample found, 2 = usage or analysis error.
//
// Usage:
//
//	verify -a orig.net -b retimed.net [-flush N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"seqatpg/internal/netlist"
	"seqatpg/internal/retime"
	"seqatpg/internal/verify"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("verify: ")
	aPath := flag.String("a", "", "first netlist")
	bPath := flag.String("b", "", "second netlist")
	flush := flag.Int("flush", 0, "reset-hold cycles (default: measured from the circuits)")
	flag.Parse()
	if *aPath == "" || *bPath == "" {
		log.Println("-a and -b are required")
		os.Exit(2)
	}
	read := func(path string) *netlist.Circuit {
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		c, err := netlist.Read(f)
		if err != nil {
			log.Fatal(err)
		}
		return c
	}
	a, b := read(*aPath), read(*bPath)
	if *flush == 0 {
		for _, c := range []*netlist.Circuit{a, b} {
			if c.ResetPI < 0 {
				continue
			}
			n, err := retime.FlushLength(c)
			if err != nil {
				log.Fatal(err)
			}
			if n > *flush {
				*flush = n
			}
		}
		if *flush < 1 {
			*flush = 1
		}
	}
	ok, ce, err := verify.Equivalent(a, b, verify.Options{FlushCycles: *flush})
	if err != nil {
		log.Println(err)
		os.Exit(2)
	}
	if !ok {
		fmt.Printf("NOT equivalent: %v\n", ce)
		os.Exit(1)
	}
	fmt.Printf("equivalent (flush %d cycles): %s == %s\n", *flush, a.Name, b.Name)
}
