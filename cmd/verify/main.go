// Command verify checks two netlists for sequential I/O equivalence by
// symbolic product-machine reachability (both circuits are flushed by
// holding their shared reset line first).
//
// Usage:
//
//	verify -a orig.net -b retimed.net [-flush N]
//
// Exit codes:
//
//	0  equivalent
//	1  counterexample found
//	2  usage or analysis error
//	4  interrupted (signal) before the analysis started
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"seqatpg/internal/netlist"
	"seqatpg/internal/retime"
	"seqatpg/internal/service"
	"seqatpg/internal/verify"
)

const (
	exitEquivalent     = 0
	exitCounterexample = 1
	exitError          = 2
	exitInterrupted    = 4
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("verify: ")
	os.Exit(run())
}

func run() int {
	aPath := flag.String("a", "", "first netlist")
	bPath := flag.String("b", "", "second netlist")
	flush := flag.Int("flush", 0, "reset-hold cycles (default: measured from the circuits)")
	showVersion := flag.Bool("version", false, "print the build identity (the /version handshake) and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(service.Version())
		return exitEquivalent
	}
	if *aPath == "" || *bPath == "" {
		fmt.Fprintln(os.Stderr, "verify: -a and -b are required")
		flag.Usage()
		return exitError
	}
	read := func(path string) (*netlist.Circuit, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return netlist.Read(f)
	}
	a, err := read(*aPath)
	if err != nil {
		log.Print(err)
		return exitError
	}
	b, err := read(*bPath)
	if err != nil {
		log.Print(err)
		return exitError
	}
	if *flush == 0 {
		for _, c := range []*netlist.Circuit{a, b} {
			if c.ResetPI < 0 {
				continue
			}
			n, err := retime.FlushLength(c)
			if err != nil {
				log.Print(err)
				return exitError
			}
			if n > *flush {
				*flush = n
			}
		}
		if *flush < 1 {
			*flush = 1
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if ctx.Err() != nil {
		log.Print("interrupted")
		return exitInterrupted
	}

	ok, ce, err := verify.Equivalent(a, b, verify.Options{FlushCycles: *flush})
	if err != nil {
		log.Print(err)
		return exitError
	}
	if !ok {
		fmt.Printf("NOT equivalent: %v\n", ce)
		return exitCounterexample
	}
	fmt.Printf("equivalent (flush %d cycles): %s == %s\n", *flush, a.Name, b.Name)
	return exitEquivalent
}
