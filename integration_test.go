package seqatpg

import (
	"bytes"
	"math/rand"
	"testing"

	"seqatpg/internal/analyze"
	"seqatpg/internal/atpg/hitec"
	"seqatpg/internal/encode"
	"seqatpg/internal/fault"
	"seqatpg/internal/fsm"
	"seqatpg/internal/netlist"
	"seqatpg/internal/reach"
	"seqatpg/internal/retime"
	"seqatpg/internal/scan"
	"seqatpg/internal/sim"
	"seqatpg/internal/synth"
	"seqatpg/internal/verify"
)

// TestFullPipeline drives the complete reproduction pipeline on one
// machine: generate FSM → minimize → synthesize → retime → check
// equivalence symbolically → analyze structure and density → run ATPG
// on both → cross-validate the coverage claims with the fault
// simulator → confirm full scan repairs the retimed circuit.
func TestFullPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	lib := netlist.DefaultLibrary()

	// 1. FSM substrate.
	raw, err := fsm.Generate(fsm.GenSpec{Name: "pipe", Inputs: 4, Outputs: 3, States: 14, Redundant: 2, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	m, err := fsm.Minimize(raw)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumStates() != 12 {
		t.Fatalf("minimized to %d states, want 12", m.NumStates())
	}

	// 2. Synthesis.
	r, err := synth.Synthesize(m, synth.Options{
		Algorithm: encode.Combined, Script: synth.Rugged, UseUnreachableDC: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	orig := r.Circuit

	// 3. Retiming.
	re, err := retime.Backward(orig, lib, 2)
	if err != nil {
		t.Fatal(err)
	}
	if re.Circuit.NumDFFs() <= orig.NumDFFs() {
		t.Fatal("retiming did not grow registers")
	}

	// 4. Formal equivalence (Theorem 1 behavioural core).
	ok, ce, err := verify.Equivalent(orig, re.Circuit, verify.Options{FlushCycles: re.FlushCycles})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("retimed circuit not equivalent: %v", ce)
	}

	// 5. Structural invariants (Theorems 2 and 4).
	ao, err := analyze.Analyze(orig)
	if err != nil {
		t.Fatal(err)
	}
	ar, err := analyze.Analyze(re.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	if ao.MaxSeqDepth != ar.MaxSeqDepth || ao.MaxCycleLength != ar.MaxCycleLength {
		t.Fatalf("structural invariants broken: %v vs %v", ao, ar)
	}

	// 6. Density of encoding collapse.
	do, err := reach.Analyze(orig, reach.Options{FlushCycles: 1})
	if err != nil {
		t.Fatal(err)
	}
	dr, err := reach.Analyze(re.Circuit, reach.Options{FlushCycles: re.FlushCycles})
	if err != nil {
		t.Fatal(err)
	}
	if dr.Density >= do.Density {
		t.Fatalf("density did not drop: %.3g -> %.3g", do.Density, dr.Density)
	}

	// 7. ATPG on both; the original must do better per unit effort.
	// The per-fault budget is calibrated to the incremental engine's
	// effort unit (gate evaluations actually performed — several times
	// cheaper per probe than the old whole-window sweeps), so the
	// retimed circuit still runs out of budget on its hard faults.
	runATPG := func(c *netlist.Circuit, flush int) (fc float64, eff int64, tests [][][]sim.Val) {
		e, err := hitec.New(c, flush, 300_000)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.FC(), res.Stats.Effort, res.Tests
	}
	fcO, effO, testsO := runATPG(orig, 1)
	fcR, effR, _ := runATPG(re.Circuit, re.FlushCycles)
	// With a generous budget the retimed circuit may still reach high
	// coverage (the paper's dk16.ji.sd.re reached 99.7% — after 323x
	// the CPU time); the robust claims are the effort blow-up and that
	// coverage never improves.
	if fcR > fcO {
		t.Errorf("retimed FC %.1f > original FC %.1f", fcR, fcO)
	}
	if effR <= effO {
		t.Errorf("retimed effort %d <= original effort %d", effR, effO)
	}

	// 8. Cross-validate the original's coverage claim by re-simulating
	// its test set from scratch.
	faults := fault.CollapsedUniverse(orig)
	fs, err := fault.NewSimulator(orig)
	if err != nil {
		t.Fatal(err)
	}
	detected := make([]bool, len(faults))
	for _, seq := range testsO {
		det, err := fs.Detects(seq, faults)
		if err != nil {
			t.Fatal(err)
		}
		for i, d := range det {
			detected[i] = detected[i] || d
		}
	}
	cov := fault.Summarize(detected)
	if cov.FC() < fcO-0.5 {
		t.Errorf("re-simulated FC %.1f below claimed %.1f", cov.FC(), fcO)
	}

	// 9. Full scan rescues the retimed circuit.
	sm, err := scan.FullScan(re.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	fcScan, _, _ := runATPG(sm.Comb, 1)
	if fcScan <= fcR {
		t.Errorf("scan FC %.1f did not improve on sequential %.1f", fcScan, fcR)
	}

	// 10. Netlist round-trips through both exchange formats.
	var buf bytes.Buffer
	if err := netlist.Write(&buf, re.Circuit); err != nil {
		t.Fatal(err)
	}
	back, err := netlist.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ok, _, err = verify.Equivalent(re.Circuit, back, verify.Options{FlushCycles: re.FlushCycles})
	if err != nil || !ok {
		t.Fatalf("netlist round trip broke equivalence: %v", err)
	}
	buf.Reset()
	if err := netlist.WriteBench(&buf, re.Circuit); err != nil {
		t.Fatal(err)
	}
	back2, err := netlist.ReadBench(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ok, ce, err = verify.Equivalent(re.Circuit, back2, verify.Options{FlushCycles: re.FlushCycles})
	if err != nil || !ok {
		t.Fatalf("bench round trip broke equivalence: %v %v", err, ce)
	}

	t.Logf("pipeline: density %.3g -> %.3g | FC %.1f -> %.1f (scan %.1f) | effort %d -> %d",
		do.Density, dr.Density, fcO, fcR, fcScan, effO, effR)
}

// TestRandomMachinesPipeline fuzzes the front half of the pipeline
// (generate → synthesize → retime → simulate-equivalence) over random
// machine shapes.
func TestRandomMachinesPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("integration fuzz")
	}
	lib := netlist.DefaultLibrary()
	rng := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 6; trial++ {
		spec := fsm.GenSpec{
			Name:    "fuzz",
			Inputs:  2 + rng.Intn(4),
			Outputs: 1 + rng.Intn(4),
			States:  5 + rng.Intn(12),
			Seed:    rng.Int63(),
		}
		m, err := fsm.Generate(spec)
		if err != nil {
			t.Fatalf("%+v: %v", spec, err)
		}
		r, err := synth.Synthesize(m, synth.Options{
			Algorithm:        encode.Algorithm(rng.Intn(3)),
			Script:           synth.Script(rng.Intn(2)),
			UseUnreachableDC: rng.Intn(2) == 0,
		})
		if err != nil {
			t.Fatalf("%+v: %v", spec, err)
		}
		rounds := 1 + rng.Intn(2)
		re, err := retime.Backward(r.Circuit, lib, rounds)
		if err != nil {
			t.Fatalf("%+v rounds=%d: %v", spec, rounds, err)
		}
		ok, ce, err := verify.Equivalent(r.Circuit, re.Circuit, verify.Options{FlushCycles: re.FlushCycles})
		if err != nil {
			t.Fatalf("%+v: %v", spec, err)
		}
		if !ok {
			t.Fatalf("%+v rounds=%d: retiming broke behaviour: %v", spec, rounds, ce)
		}
	}
}
