// Preservation demonstrates the paper's Theorem 1: retiming preserves
// single stuck-at testability. A test set generated for the original
// circuit, prefixed with a register-flush sequence P (the paper's P∪T
// construction), detects the corresponding faults of the retimed
// circuit — even when the ATPG, given the retimed circuit directly,
// fails to reach comparable coverage.
package main

import (
	"fmt"
	"log"

	"seqatpg/internal/atpg/hitec"
	"seqatpg/internal/encode"
	"seqatpg/internal/fault"
	"seqatpg/internal/fsm"
	"seqatpg/internal/netlist"
	"seqatpg/internal/retime"
	"seqatpg/internal/sim"
	"seqatpg/internal/synth"
)

func main() {
	log.SetFlags(0)
	lib := netlist.DefaultLibrary()

	raw := fsm.MustGenerate(fsm.GenSpec{Name: "pma", Inputs: 7, Outputs: 8, States: 24, Seed: 2402})
	m, err := fsm.Minimize(raw)
	if err != nil {
		log.Fatal(err)
	}
	r, err := synth.Synthesize(m, synth.Options{
		Algorithm: encode.OutputDominant, Script: synth.Delay, UseUnreachableDC: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	orig := r.Circuit
	re, err := retime.Backward(orig, lib, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original %s: %d DFFs;  retimed: %d DFFs, flush prefix %d cycles\n",
		orig.Name, orig.NumDFFs(), re.Circuit.NumDFFs(), re.FlushCycles)

	// 1. Generate a test set for the ORIGINAL circuit.
	e, err := hitec.New(orig, 1, 3_000_000)
	if err != nil {
		log.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original test set: %d sequences, FC %.1f%% on the original\n",
		len(res.Tests), res.Stats.FC())

	// 2. Adapt each test for the retimed circuit: replace the single
	//    reset cycle with the flush prefix P (arbitrary vectors with
	//    reset held), then the original vectors T.
	flush := make([][]sim.Val, re.FlushCycles)
	for k := range flush {
		vec := make([]sim.Val, len(re.Circuit.PIs))
		for i, id := range re.Circuit.PIs {
			if id == re.Circuit.ResetPI {
				vec[i] = sim.V1
			}
		}
		flush[k] = vec
	}

	// 3. Fault-simulate the adapted set on the RETIMED circuit.
	faults := fault.CollapsedUniverse(re.Circuit)
	fs, err := fault.NewSimulator(re.Circuit)
	if err != nil {
		log.Fatal(err)
	}
	detected := make([]bool, len(faults))
	for _, seq := range res.Tests {
		adapted := append(append([][]sim.Val{}, flush...), seq[1:]...)
		det, err := fs.Detects(adapted, faults)
		if err != nil {
			log.Fatal(err)
		}
		for i, d := range det {
			detected[i] = detected[i] || d
		}
	}
	cov := fault.Summarize(detected)
	fmt.Printf("P∪T on the retimed circuit: FC %.1f%% of %d faults\n", cov.FC(), cov.Total)

	// 4. Contrast: the ATPG working on the retimed circuit directly.
	e2, err := hitec.New(re.Circuit, re.FlushCycles, 3_000_000)
	if err != nil {
		log.Fatal(err)
	}
	res2, err := e2.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ATPG directly on the retimed circuit: FC %.1f%% (same per-fault budget)\n",
		res2.Stats.FC())
	fmt.Println("\nTheorem 1 in action: the retimed circuit is perfectly testable —")
	fmt.Println("the original circuit's tests prove it — but its sparse encoding")
	fmt.Println("defeats the structural generator that must find tests from scratch.")
}
