// Dftadvisor is the paper's motivating application: without an
// understanding of what makes sequential ATPG expensive, designers
// cannot tell which blocks need design-for-testability hardware. This
// example computes the density of encoding for a set of circuits and
// flags the ones where structural ATPG is predicted to struggle — the
// low-density circuits that deserve scan insertion.
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"seqatpg/internal/encode"
	"seqatpg/internal/fsm"
	"seqatpg/internal/netlist"
	"seqatpg/internal/reach"
	"seqatpg/internal/retime"
	"seqatpg/internal/synth"
)

// block is one circuit under triage.
type block struct {
	name    string
	dffs    int
	density float64
}

func main() {
	log.SetFlags(0)
	lib := netlist.DefaultLibrary()

	// Build a portfolio: three benchmark controllers, each in an
	// as-synthesized and a retimed variant.
	var blocks []block
	for _, name := range []string{"dk16", "pma", "s820"} {
		var spec fsm.GenSpec
		for _, b := range fsm.Suite() {
			if b.Spec.Name == name {
				spec = b.Spec
			}
		}
		raw := fsm.MustGenerate(spec)
		m, err := fsm.Minimize(raw)
		if err != nil {
			log.Fatal(err)
		}
		r, err := synth.Synthesize(m, synth.Options{
			Algorithm: encode.Combined, Script: synth.Rugged, UseUnreachableDC: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		ra, err := reach.Analyze(r.Circuit, reach.Options{FlushCycles: 1})
		if err != nil {
			log.Fatal(err)
		}
		blocks = append(blocks, block{r.Circuit.Name, r.Circuit.NumDFFs(), ra.Density})

		re, err := retime.Backward(r.Circuit, lib, 2)
		if err != nil {
			log.Fatal(err)
		}
		rr, err := reach.Analyze(re.Circuit, reach.Options{FlushCycles: re.FlushCycles})
		if err != nil {
			log.Fatal(err)
		}
		blocks = append(blocks, block{re.Circuit.Name, re.Circuit.NumDFFs(), rr.Density})
	}

	// Rank by density: the paper's evidence says ATPG effort explodes
	// as density falls, so the advisor triages lowest-density first.
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].density < blocks[j].density })

	fmt.Printf("%-18s %6s %12s %8s  %s\n", "block", "#DFF", "density", "-log10", "advice")
	for _, b := range blocks {
		advice := "sequential ATPG fine"
		switch {
		case b.density < 1e-3:
			advice = "FULL SCAN: structural ATPG will not converge"
		case b.density < 0.2:
			advice = "partial scan: expect long ATPG runtimes"
		}
		fmt.Printf("%-18s %6d %12.3g %8.1f  %s\n",
			b.name, b.dffs, b.density, -math.Log10(b.density), advice)
	}

	fmt.Println("\nrationale: density of encoding = valid states / 2^#DFF.")
	fmt.Println("Structural test generators know nothing of the state transition")
	fmt.Println("graph; in a sparse encoding nearly every state-justification")
	fmt.Println("objective lands in invalid state space and backtracks (the paper's")
	fmt.Println("Section 5). Scan converts state bits into pins, restoring density 1.")
}
