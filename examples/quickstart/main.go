// Quickstart: define a small FSM, synthesize it to gates, run the
// HITEC-style sequential ATPG, and print the resulting test set and
// coverage. This walks the library's core pipeline end to end.
package main

import (
	"fmt"
	"log"
	"strings"

	"seqatpg/internal/atpg/hitec"
	"seqatpg/internal/encode"
	"seqatpg/internal/fsm"
	"seqatpg/internal/logic"
	"seqatpg/internal/netlist"
	"seqatpg/internal/synth"
)

func main() {
	log.SetFlags(0)

	// A 4-state sequence detector: output fires after input pattern 1,1,0.
	m := &fsm.FSM{
		Name:       "det110",
		NumInputs:  1,
		NumOutputs: 1,
		States:     []string{"idle", "got1", "got11", "fire"},
		Reset:      0,
	}
	add := func(in string, from, to int, out string) {
		m.Trans = append(m.Trans, fsm.Transition{
			Input:  logic.MustParseCube(in),
			From:   from,
			To:     to,
			Output: logic.MustParseCube(out),
		})
	}
	add("0", 0, 0, "0")
	add("1", 0, 1, "0")
	add("0", 1, 0, "0")
	add("1", 1, 2, "0")
	add("0", 2, 3, "1")
	add("1", 2, 2, "0")
	add("0", 3, 0, "0")
	add("1", 3, 1, "0")
	if err := m.Validate(); err != nil {
		log.Fatal(err)
	}

	// Synthesize with the combined (jc) state assignment and the rugged
	// script, using unreachable-state don't-cares like SIS extract_seq_dc.
	r, err := synth.Synthesize(m, synth.Options{
		Algorithm:        encode.Combined,
		Script:           synth.Rugged,
		UseUnreachableDC: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	stats, err := r.Circuit.ComputeStats(netlist.DefaultLibrary())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesized %s: %d gates, %d DFFs, area %.0f, delay %.2f\n",
		r.Circuit.Name, stats.Gates, stats.DFFs, stats.Area, stats.Delay)
	for s, code := range r.Encoding.Code {
		fmt.Printf("  state %-6s -> code %0*b\n", m.States[s], r.Encoding.Bits, code)
	}

	// Run the HITEC-style ATPG (flush = 1 reset cycle, generous budget).
	e, err := hitec.New(r.Circuit, 1, 5_000_000)
	if err != nil {
		log.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		log.Fatal(err)
	}
	st := res.Stats
	fmt.Printf("\nATPG: %d faults, FC %.1f%%, FE %.1f%%, %d tests, %d states traversed\n",
		st.Total, st.FC(), st.FE(), len(res.Tests), len(st.StatesTraversed))

	// Show the first few test sequences. Input order is [reset, in0].
	fmt.Println("\nfirst test sequences (reset, in):")
	for i, seq := range res.Tests {
		if i == 3 {
			fmt.Printf("  ... and %d more\n", len(res.Tests)-3)
			break
		}
		var steps []string
		for _, vec := range seq {
			var b strings.Builder
			for _, v := range vec {
				b.WriteString(v.String())
			}
			steps = append(steps, b.String())
		}
		fmt.Printf("  test %d: %s\n", i+1, strings.Join(steps, " -> "))
	}
}
