// Retimingcost reproduces the paper's headline observation on a single
// benchmark: retiming a control circuit multiplies its registers,
// leaves its sequential depth and cycle lengths untouched, collapses
// its density of encoding, and makes structural sequential ATPG
// dramatically more expensive and less effective.
package main

import (
	"fmt"
	"log"

	"seqatpg/internal/analyze"
	"seqatpg/internal/atpg/hitec"
	"seqatpg/internal/encode"
	"seqatpg/internal/fsm"
	"seqatpg/internal/netlist"
	"seqatpg/internal/reach"
	"seqatpg/internal/retime"
	"seqatpg/internal/synth"
)

func main() {
	log.SetFlags(0)
	lib := netlist.DefaultLibrary()

	// dk16: the paper's first Table 2 row.
	raw := fsm.MustGenerate(fsm.GenSpec{Name: "dk16", Inputs: 3, Outputs: 3, States: 27, Seed: 1601})
	m, err := fsm.Minimize(raw)
	if err != nil {
		log.Fatal(err)
	}
	r, err := synth.Synthesize(m, synth.Options{
		Algorithm: encode.InputDominant, Script: synth.Delay, UseUnreachableDC: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	orig := r.Circuit

	re, err := retime.Backward(orig, lib, 2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-22s %14s %14s\n", "", orig.Name, re.Circuit.Name)
	fmt.Printf("%-22s %14d %14d\n", "D flip-flops", orig.NumDFFs(), re.Circuit.NumDFFs())

	// Structural attributes: the traditional complexity predictors.
	ao, err := analyze.Analyze(orig)
	if err != nil {
		log.Fatal(err)
	}
	ar, err := analyze.Analyze(re.Circuit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s %14d %14d   (Theorem 2: unchanged)\n", "max seq depth", ao.MaxSeqDepth, ar.MaxSeqDepth)
	fmt.Printf("%-22s %14d %14d   (Theorem 4: unchanged)\n", "max cycle length", ao.MaxCycleLength, ar.MaxCycleLength)

	// Density of encoding: the paper's key attribute.
	ro, err := reach.Analyze(orig, reach.Options{FlushCycles: 1})
	if err != nil {
		log.Fatal(err)
	}
	rr, err := reach.Analyze(re.Circuit, reach.Options{FlushCycles: re.FlushCycles})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s %14.0f %14.0f\n", "valid states", ro.ValidStates, rr.ValidStates)
	fmt.Printf("%-22s %14.0f %14.0f\n", "total states", ro.TotalStates, rr.TotalStates)
	fmt.Printf("%-22s %14.2g %14.2g   (the collapse)\n", "density of encoding", ro.Density, rr.Density)

	// ATPG under identical per-fault budgets.
	run := func(c *netlist.Circuit, flush int) (fc, fe float64, effort int64) {
		e, err := hitec.New(c, flush, 2_500_000)
		if err != nil {
			log.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			log.Fatal(err)
		}
		return res.Stats.FC(), res.Stats.FE(), res.Stats.Effort
	}
	fmt.Println("\nrunning HITEC-style ATPG on both (same per-fault budget)...")
	fcO, feO, efO := run(orig, 1)
	fcR, feR, efR := run(re.Circuit, re.FlushCycles)
	fmt.Printf("%-22s %13.1f%% %13.1f%%\n", "fault coverage", fcO, fcR)
	fmt.Printf("%-22s %13.1f%% %13.1f%%\n", "fault efficiency", feO, feR)
	fmt.Printf("%-22s %14d %14d   (ratio %.1fx)\n", "effort", efO, efR, float64(efR)/float64(efO))
}
