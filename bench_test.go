// Package seqatpg's top-level benchmarks regenerate each table and
// figure of the reproduced paper under the quick budget (one benchmark
// per experiment, as required by the reproduction harness). Run the
// full-budget versions with:
//
//	go run ./cmd/experiments -all
package seqatpg

import (
	"sync"
	"testing"

	"seqatpg/internal/bench"
)

// sharedSuite memoizes circuits and ATPG runs across benchmarks so
// repeated tables do not redo identical work within one bench process.
var (
	suiteOnce   sync.Once
	sharedSuite *bench.Suite
)

func suite() *bench.Suite {
	suiteOnce.Do(func() {
		sharedSuite = bench.NewSuite(bench.QuickBudget())
	})
	return sharedSuite
}

func BenchmarkTable1(b *testing.B) {
	s := suite()
	for i := 0; i < b.N; i++ {
		if _, err := s.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	s := suite()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	s := suite()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Table3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	s := suite()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Table4(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5(b *testing.B) {
	s := suite()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Table5(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable6(b *testing.B) {
	s := suite()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Table6(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable7(b *testing.B) {
	s := suite()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Table7(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable8(b *testing.B) {
	s := suite()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Table8(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3(b *testing.B) {
	s := suite()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Figure3(); err != nil {
			b.Fatal(err)
		}
	}
}
