module seqatpg

go 1.22
