#!/bin/sh
# Replays a Zipf-skewed stream of campaign submissions against a
# cache-backed service and records the dedupe numbers in
# BENCH_cache.json at the repo root: hit rate, submit-to-done latency
# percentiles split by cold runs vs cache hits, and the eviction count
# under the capacity bound. The replay is the TestCacheReplay harness,
# which also asserts the >= 50% hit rate and that the cache never
# exceeds its byte cap mid-replay.
#
#   scripts/bench_cache.sh          # full replay (60 requests)
#   SHORT=1 scripts/bench_cache.sh  # -short replay (36 requests)
set -eu
cd "$(dirname "$0")/.."

short=""
[ "${SHORT:-}" != "" ] && short="-short"

BENCH_CACHE_OUT="$(pwd)/BENCH_cache.json" \
	go test -run='^TestCacheReplay$' -v -count=1 $short ./internal/service/

cat BENCH_cache.json
