#!/bin/sh
# Runs the fault-simulation kernel benchmarks and records the results
# in BENCH_fsim.json at the repo root, so kernel perf changes leave a
# reviewable trail next to the code.
#
#   scripts/bench_fsim.sh               # default -benchtime=20x
#   BENCHTIME=200x scripts/bench_fsim.sh
set -eu
cd "$(dirname "$0")/.."

out=$(go test -run='^$' -bench=. -benchtime="${BENCHTIME:-20x}" ./internal/fault/)
printf '%s\n' "$out"

printf '%s\n' "$out" | awk \
	-v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
	-v gover="$(go env GOVERSION)" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	sub(/^Benchmark/, "", name)
	metrics = ""
	for (i = 3; i + 1 <= NF; i += 2) {
		if (metrics != "") metrics = metrics ", "
		metrics = metrics "\"" $(i + 1) "\": " $i
	}
	rec[n++] = "    {\"name\": \"" name "\", \"iterations\": " $2 ", " metrics "}"
}
END {
	print "{"
	print "  \"generated\": \"" date "\","
	print "  \"go\": \"" gover "\","
	print "  \"benchmarks\": ["
	for (i = 0; i < n; i++) print rec[i] (i < n - 1 ? "," : "")
	print "  ]"
	print "}"
}' >BENCH_fsim.json

echo "wrote BENCH_fsim.json"
