#!/bin/sh
# Runs the fault-simulation kernel benchmarks and records the results
# in BENCH_fsim.json at the repo root, so kernel perf changes leave a
# reviewable trail next to the code.
#
#   scripts/bench_fsim.sh                 # default -benchtime=20x
#   BENCHTIME=200x scripts/bench_fsim.sh  # steadier numbers
#   BENCH_GATE=1 scripts/bench_fsim.sh    # also enforce the regression
#                                         # gate (used by CI)
#
# Besides the raw per-benchmark numbers the JSON carries derived
# ratios:
#
#   speedup_vs_seed   ParallelFaultSim (narrow serial headline) against
#                     the seed kernel's recorded 5046183 ns/pass on the
#                     reference container — >1 means faster than the
#                     kernel this PR replaced. Only meaningful on
#                     comparable hardware; cross-machine it is noise.
#   speedup_w8        Workers/w1 over Workers/w8 wall time — the real
#                     parallel speedup on this host. Bounded by the
#                     host's core count: 1.0 on a single-CPU container.
#   wide_vs_narrow    WideWord/w63 over WideWord/w255 — >1 where the
#                     wide kernel wins (high-activity circuits), <1
#                     where the active region feeds on narrow batches.
#   active_vs_obliv   oblivious over active — how much the event-driven
#                     active region saves over full per-frame sweeps.
#
# The gate intentionally checks hardware-independent *relative* ratios,
# not absolute times:
#   - w8 must not be slower than 1.5x w1 (worker fan-out must never add
#     overhead; the seed's flat scaling bug would trip this on any
#     multi-core host and a dispatch-overhead regression trips it
#     everywhere);
#   - active must beat oblivious (the active-region machinery must pay
#     for itself);
#   - w255 must stay within 1.75x of w63 (wide-kernel sanity — a
#     broken wide path regresses far past that).
set -eu
cd "$(dirname "$0")/.."

seed_baseline_ns=5046183

out=$(go test -run='^$' -bench=. -benchtime="${BENCHTIME:-20x}" ./internal/fault/)
printf '%s\n' "$out"

printf '%s\n' "$out" | awk \
	-v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
	-v gover="$(go env GOVERSION)" \
	-v seed="$seed_baseline_ns" \
	-v gate="${BENCH_GATE:-0}" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	sub(/^Benchmark/, "", name)
	metrics = ""
	for (i = 3; i + 1 <= NF; i += 2) {
		if (metrics != "") metrics = metrics ", "
		metrics = metrics "\"" $(i + 1) "\": " $i
	}
	rec[n++] = "    {\"name\": \"" name "\", \"iterations\": " $2 ", " metrics "}"
	ns[name] = $3
}
function ratio(a, b) { return (a in ns && b in ns && ns[b] > 0) ? ns[a] / ns[b] : 0 }
END {
	speedup_vs_seed = ("ParallelFaultSim" in ns && ns["ParallelFaultSim"] > 0) ? seed / ns["ParallelFaultSim"] : 0
	speedup_w8 = ratio("ParallelFaultSimWorkers/w1", "ParallelFaultSimWorkers/w8")
	wide_vs_narrow = ratio("WideWord/w63", "WideWord/w255")
	active_vs_obliv = ratio("ActiveRegionVsOblivious/oblivious", "ActiveRegionVsOblivious/active")
	print "{" > "BENCH_fsim.json"
	print "  \"generated\": \"" date "\"," > "BENCH_fsim.json"
	print "  \"go\": \"" gover "\"," > "BENCH_fsim.json"
	print "  \"seed_baseline_ns\": " seed "," > "BENCH_fsim.json"
	printf "  \"derived\": {\"speedup_vs_seed\": %.3f, \"speedup_w8\": %.3f, \"wide_vs_narrow\": %.3f, \"active_vs_obliv\": %.3f},\n", \
		speedup_vs_seed, speedup_w8, wide_vs_narrow, active_vs_obliv > "BENCH_fsim.json"
	print "  \"benchmarks\": [" > "BENCH_fsim.json"
	for (i = 0; i < n; i++) print rec[i] (i < n - 1 ? "," : "") > "BENCH_fsim.json"
	print "  ]" > "BENCH_fsim.json"
	print "}" > "BENCH_fsim.json"
	if (gate + 0) {
		fails = 0
		if (speedup_w8 > 0 && speedup_w8 < 1 / 1.5) {
			printf "GATE FAIL: w8 is %.2fx slower than w1 (limit 1.5x)\n", 1 / speedup_w8
			fails++
		}
		if (active_vs_obliv > 0 && active_vs_obliv < 1.0) {
			printf "GATE FAIL: active-region kernel slower than oblivious (%.2fx)\n", 1 / active_vs_obliv
			fails++
		}
		if (wide_vs_narrow > 0 && wide_vs_narrow < 1 / 1.75) {
			printf "GATE FAIL: w255 is %.2fx slower than w63 (limit 1.75x)\n", 1 / wide_vs_narrow
			fails++
		}
		if (fails) exit 1
		printf "GATE OK: speedup_w8 %.2f, active/oblivious %.2f, w255/w63 %.2f\n", \
			speedup_w8, active_vs_obliv, 1 / (wide_vs_narrow ? wide_vs_narrow : 1)
	}
}'

echo "wrote BENCH_fsim.json"
