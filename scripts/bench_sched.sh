#!/bin/sh
# Runs the testability-aware scheduling benchmarks and records the
# results in BENCH_sched.json at the repo root: effort-based makespans
# and per-fault completion latencies (P50/P95/max) on the retimed
# benchmark for three variants — unscheduled (canonical order, one
# queue), easyfirst (one queue ordered by predicted score; no hard
# queue) and hardqueue (the full RunScheduled plan: per-rung concurrent
# queues with rung budgets) — plus the Spearman rank correlation of
# predicted score against measured per-fault effort.
#
#   scripts/bench_sched.sh               # default -benchtime=1x
#   BENCHTIME=5x scripts/bench_sched.sh
#   BENCH_GATE=1 scripts/bench_sched.sh  # also enforce the regression
#                                        # gate (used by CI)
#
# Everything the gate checks is hardware-independent effort accounting,
# not wall time, so it cannot flake on a loaded machine:
#
#   - hardqueue's modeled makespan must be strictly below unscheduled's
#     (concurrent big-budget queues must actually shorten the campaign);
#   - every variant's verdicts must equal the baseline's (prediction
#     may reorder and budget, never decide);
#   - easyfirst must charge exactly the baseline's gate evaluations (a
#     pure reordering) and hardqueue no more than them (rung budgets
#     only skip low rungs that were going to out-budget anyway);
#   - the predictor's Spearman rank correlation must be positive
#     (scores that anti-correlate with real effort would invert every
#     scheduling decision).
set -eu
cd "$(dirname "$0")/.."

out=$(go test -run='^$' -bench='BenchmarkSched' \
	-benchtime="${BENCHTIME:-1x}" ./internal/campaign/)
printf '%s\n' "$out"

printf '%s\n' "$out" | awk \
	-v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
	-v gover="$(go env GOVERSION)" \
	-v gate="${BENCH_GATE:-0}" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	sub(/^BenchmarkSched\//, "", name)
	metrics = ""
	for (i = 3; i + 1 <= NF; i += 2) {
		if (metrics != "") metrics = metrics ", "
		metrics = metrics "\"" $(i + 1) "\": " $i
		if ($(i + 1) == "makespan-evals/op") mk[name] = $i
		if ($(i + 1) == "lat-p50-evals/op") p50[name] = $i
		if ($(i + 1) == "lat-p95-evals/op") p95[name] = $i
		if ($(i + 1) == "gate-evals/op") ge[name] = $i
		if ($(i + 1) == "verdict-match/op") vm[name] = $i
		if ($(i + 1) == "spearman-x1000/op") sp[name] = $i
	}
	rec[n++] = "    {\"name\": \"" name "\", \"iterations\": " $2 ", " metrics "}"
}
function ratio(a, b, arr) { return (a in arr && b in arr && arr[a] > 0) ? arr[b] / arr[a] : 0 }
END {
	u = "retimed/unscheduled"; e = "retimed/easyfirst"; h = "retimed/hardqueue"
	makespan_speedup = ratio(h, u, mk)
	p50_speedup = ratio(h, u, p50)
	p95_speedup = ratio(h, u, p95)
	easyfirst_p50_speedup = ratio(e, u, p50)
	evals_saved = (u in ge && h in ge) ? ge[u] - ge[h] : 0
	spearman = (u in sp) ? sp[u] / 1000 : 0
	print "{" > "BENCH_sched.json"
	print "  \"generated\": \"" date "\"," > "BENCH_sched.json"
	print "  \"go\": \"" gover "\"," > "BENCH_sched.json"
	printf "  \"derived\": {\"makespan_speedup\": %.3f, \"p50_latency_speedup\": %.3f, \"p95_latency_speedup\": %.3f, \"easyfirst_p50_speedup\": %.3f, \"evals_saved\": %d, \"spearman\": %.3f},\n", \
		makespan_speedup, p50_speedup, p95_speedup, easyfirst_p50_speedup, evals_saved, spearman > "BENCH_sched.json"
	print "  \"benchmarks\": [" > "BENCH_sched.json"
	for (i = 0; i < n; i++) print rec[i] (i < n - 1 ? "," : "") > "BENCH_sched.json"
	print "  ]" > "BENCH_sched.json"
	print "}" > "BENCH_sched.json"
	if (gate + 0) {
		fails = 0
		if (!(u in mk) || !(e in mk) || !(h in mk)) {
			print "GATE FAIL: missing benchmark rows"
			fails++
		} else {
			if (mk[h] >= mk[u]) {
				printf "GATE FAIL: hardqueue makespan %d did not beat unscheduled %d\n", mk[h], mk[u]
				fails++
			}
			if (vm[e] != 1 || vm[h] != 1) {
				printf "GATE FAIL: scheduling changed verdicts (easyfirst %d, hardqueue %d)\n", vm[e], vm[h]
				fails++
			}
			if (ge[e] != ge[u]) {
				printf "GATE FAIL: easyfirst charged %d gate-evals, baseline %d (pure reordering must be exact)\n", ge[e], ge[u]
				fails++
			}
			if (ge[h] > ge[u]) {
				printf "GATE FAIL: hardqueue charged %d gate-evals, baseline %d\n", ge[h], ge[u]
				fails++
			}
			if (sp[u] <= 0) {
				printf "GATE FAIL: spearman x1000 = %d, predictor anti-correlates with real effort\n", sp[u]
				fails++
			}
		}
		if (fails) exit 1
		printf "GATE OK: makespan %.2fx, p50 latency %.2fx, %d evals saved, spearman %.2f\n", \
			makespan_speedup, p50_speedup, evals_saved, spearman
	}
}'

echo "wrote BENCH_sched.json"
