#!/bin/sh
# Runs the ATPG search benchmarks and records the results in
# BENCH_atpg.json at the repo root: the per-probe window cost (full
# sweep vs event-driven incremental) and end-to-end generation on the
# original/retimed pair in incremental, oblivious (the pre-incremental
# full-sweep baseline), shared-cache and cdcl (conflict-driven search:
# learned blocking cubes + non-chronological backjumping + restarts on
# top of the shared cache) modes.
#
#   scripts/bench_atpg.sh               # default -benchtime=5x
#   BENCHTIME=20x scripts/bench_atpg.sh
#   BENCH_GATE=1 scripts/bench_atpg.sh  # also enforce the regression
#                                       # gate (used by CI)
#
# Besides the raw per-benchmark numbers the JSON carries derived
# ratios, all on the retimed circuit (the hard half of the pair):
#
#   incr_vs_obliv    oblivious over incremental wall time — what the
#                    event-driven window saves over full re-sweeps at
#                    byte-identical search trajectories.
#   shared_vs_incr   incremental over shared-cache wall time — the
#                    cross-fault justification cache's win.
#   cdcl_vs_shared   shared-cache over cdcl wall time — the
#                    conflict-driven stack's win on top of the cache.
#   cdcl_vs_incr     incremental over cdcl wall time — the combined
#                    cache + conflict-driven win.
#   cdcl_evals_ratio shared-cache over cdcl charged gate-evals — >1
#                    means cdcl charged less search effort for the
#                    same fault list.
#   aborted_delta    shared-cache aborted minus cdcl aborted — faults
#                    the conflict-driven search completes within the
#                    budget that the cache-only search gives up on.
#
# The gate checks hardware-independent *search-effort* invariants, not
# wall times: on both circuits the cdcl rows must charge no more gate
# evaluations than shared-cache, detect no fewer faults, and abort no
# more — learned cubes only cover refuted regions, so any violation is
# a real regression in the conflict analyzer, not noise.
set -eu
cd "$(dirname "$0")/.."

out=$(go test -run='^$' -bench='BenchmarkWindow|BenchmarkSearch' \
	-benchtime="${BENCHTIME:-5x}" ./internal/atpg/)
printf '%s\n' "$out"

printf '%s\n' "$out" | awk \
	-v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
	-v gover="$(go env GOVERSION)" \
	-v gate="${BENCH_GATE:-0}" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	sub(/^Benchmark/, "", name)
	metrics = ""
	for (i = 3; i + 1 <= NF; i += 2) {
		if (metrics != "") metrics = metrics ", "
		metrics = metrics "\"" $(i + 1) "\": " $i
		if ($(i + 1) == "ns/op") ns[name] = $i
		if ($(i + 1) == "gate-evals/op") ge[name] = $i
		if ($(i + 1) == "detected/op") det[name] = $i
		if ($(i + 1) == "aborted/op") ab[name] = $i
	}
	rec[n++] = "    {\"name\": \"" name "\", \"iterations\": " $2 ", " metrics "}"
}
function ratio(a, b) { return (a in ns && b in ns && ns[b] > 0) ? ns[a] / ns[b] : 0 }
END {
	incr_vs_obliv = ratio("Search/retimed/oblivious", "Search/retimed/incremental")
	shared_vs_incr = ratio("Search/retimed/incremental", "Search/retimed/shared-cache")
	cdcl_vs_shared = ratio("Search/retimed/shared-cache", "Search/retimed/cdcl")
	cdcl_vs_incr = ratio("Search/retimed/incremental", "Search/retimed/cdcl")
	cdcl_evals_ratio = ("Search/retimed/cdcl" in ge && ge["Search/retimed/cdcl"] > 0) ? \
		ge["Search/retimed/shared-cache"] / ge["Search/retimed/cdcl"] : 0
	aborted_delta = ("Search/retimed/cdcl" in ab) ? \
		ab["Search/retimed/shared-cache"] - ab["Search/retimed/cdcl"] : 0
	print "{" > "BENCH_atpg.json"
	print "  \"generated\": \"" date "\"," > "BENCH_atpg.json"
	print "  \"go\": \"" gover "\"," > "BENCH_atpg.json"
	printf "  \"derived\": {\"incr_vs_obliv\": %.3f, \"shared_vs_incr\": %.3f, \"cdcl_vs_shared\": %.3f, \"cdcl_vs_incr\": %.3f, \"cdcl_evals_ratio\": %.3f, \"aborted_delta\": %.3f},\n", \
		incr_vs_obliv, shared_vs_incr, cdcl_vs_shared, cdcl_vs_incr, cdcl_evals_ratio, aborted_delta > "BENCH_atpg.json"
	print "  \"benchmarks\": [" > "BENCH_atpg.json"
	for (i = 0; i < n; i++) print rec[i] (i < n - 1 ? "," : "") > "BENCH_atpg.json"
	print "  ]" > "BENCH_atpg.json"
	print "}" > "BENCH_atpg.json"
	if (gate + 0) {
		fails = 0
		split("Search/orig Search/retimed", pre, " ")
		for (p in pre) {
			s = pre[p] "/shared-cache"; c = pre[p] "/cdcl"
			if (!(s in ge) || !(c in ge)) {
				print "GATE FAIL: missing " pre[p] " shared-cache/cdcl rows"
				fails++
				continue
			}
			if (ge[c] > ge[s]) {
				printf "GATE FAIL: %s charged %d gate-evals, shared-cache %d\n", c, ge[c], ge[s]
				fails++
			}
			if (det[c] < det[s]) {
				printf "GATE FAIL: %s detected %d faults, shared-cache %d\n", c, det[c], det[s]
				fails++
			}
			if (ab[c] > ab[s]) {
				printf "GATE FAIL: %s aborted %d faults, shared-cache %d\n", c, ab[c], ab[s]
				fails++
			}
		}
		if (fails) exit 1
		printf "GATE OK: cdcl evals ratio %.2f, aborted delta %d, cdcl/shared wall %.2fx\n", \
			cdcl_evals_ratio, aborted_delta, cdcl_vs_shared
	}
}'

echo "wrote BENCH_atpg.json"
