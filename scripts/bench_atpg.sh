#!/bin/sh
# Runs the ATPG search benchmarks and records the results in
# BENCH_atpg.json at the repo root: the per-probe window cost (full
# sweep vs event-driven incremental) and end-to-end generation on the
# original/retimed pair in incremental, oblivious (the pre-incremental
# full-sweep baseline) and shared-cache modes.
#
#   scripts/bench_atpg.sh               # default -benchtime=5x
#   BENCHTIME=20x scripts/bench_atpg.sh
set -eu
cd "$(dirname "$0")/.."

out=$(go test -run='^$' -bench='BenchmarkWindow|BenchmarkSearch' \
	-benchtime="${BENCHTIME:-5x}" ./internal/atpg/)
printf '%s\n' "$out"

printf '%s\n' "$out" | awk \
	-v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
	-v gover="$(go env GOVERSION)" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	sub(/^Benchmark/, "", name)
	metrics = ""
	for (i = 3; i + 1 <= NF; i += 2) {
		if (metrics != "") metrics = metrics ", "
		metrics = metrics "\"" $(i + 1) "\": " $i
	}
	rec[n++] = "    {\"name\": \"" name "\", \"iterations\": " $2 ", " metrics "}"
}
END {
	print "{"
	print "  \"generated\": \"" date "\","
	print "  \"go\": \"" gover "\","
	print "  \"benchmarks\": ["
	for (i = 0; i < n; i++) print rec[i] (i < n - 1 ? "," : "")
	print "  ]"
	print "}"
}' >BENCH_atpg.json

echo "wrote BENCH_atpg.json"
