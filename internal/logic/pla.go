package logic

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// PLA is a multi-output two-level function in the espresso exchange
// format: shared input cubes with per-output values (1 = in ON-set,
// 0/~ = not, - = don't care).
type PLA struct {
	NumInputs  int
	NumOutputs int
	// Rows pair an input cube with an output cube; output position j
	// uses One for ON, Zero for OFF, Dash for don't care.
	Rows []PLARow
}

// PLARow is one product line of a PLA file.
type PLARow struct {
	Input  Cube
	Output Cube
}

// OnSet extracts the ON-set cover of output j.
func (p *PLA) OnSet(j int) *Cover {
	f := NewCover(p.NumInputs)
	for _, r := range p.Rows {
		if r.Output[j] == One {
			f.Add(r.Input.Clone())
		}
	}
	return f
}

// DCSet extracts the don't-care cover of output j.
func (p *PLA) DCSet(j int) *Cover {
	f := NewCover(p.NumInputs)
	for _, r := range p.Rows {
		if r.Output[j] == Dash {
			f.Add(r.Input.Clone())
		}
	}
	return f
}

// WritePLA serializes the PLA in espresso format.
func WritePLA(w io.Writer, p *PLA) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, ".i %d\n.o %d\n.p %d\n", p.NumInputs, p.NumOutputs, len(p.Rows))
	for _, r := range p.Rows {
		out := make([]byte, p.NumOutputs)
		for j, v := range r.Output {
			switch v {
			case One:
				out[j] = '1'
			case Zero:
				out[j] = '0'
			default:
				out[j] = '-'
			}
		}
		fmt.Fprintf(bw, "%s %s\n", r.Input, out)
	}
	fmt.Fprintln(bw, ".e")
	return bw.Flush()
}

// ReadPLA parses an espresso-format PLA. The .i/.o headers are
// required; .p is advisory. Output characters accepted: 1, 0, ~, -.
func ReadPLA(r io.Reader) (*PLA, error) {
	p := &PLA{NumInputs: -1, NumOutputs: -1}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case ".i", ".o", ".p":
			if len(fields) < 2 {
				return nil, fmt.Errorf("pla line %d: missing value", line)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("pla line %d: %v", line, err)
			}
			switch fields[0] {
			case ".i":
				p.NumInputs = n
			case ".o":
				p.NumOutputs = n
			}
		case ".e", ".end":
			// terminator
		case ".ilb", ".ob", ".type":
			// label/type annotations are accepted and ignored
		default:
			if p.NumInputs < 0 || p.NumOutputs < 0 {
				return nil, fmt.Errorf("pla line %d: cube before .i/.o headers", line)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("pla line %d: expected 'input output'", line)
			}
			in, err := ParseCube(fields[0])
			if err != nil {
				return nil, fmt.Errorf("pla line %d: %v", line, err)
			}
			if len(in) != p.NumInputs {
				return nil, fmt.Errorf("pla line %d: input width %d, want %d", line, len(in), p.NumInputs)
			}
			if len(fields[1]) != p.NumOutputs {
				return nil, fmt.Errorf("pla line %d: output width %d, want %d", line, len(fields[1]), p.NumOutputs)
			}
			out := make(Cube, p.NumOutputs)
			for j, ch := range fields[1] {
				switch ch {
				case '1', '4':
					out[j] = One
				case '0', '~':
					out[j] = Zero
				case '-', '2':
					out[j] = Dash
				default:
					return nil, fmt.Errorf("pla line %d: bad output char %q", line, ch)
				}
			}
			p.Rows = append(p.Rows, PLARow{Input: in, Output: out})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if p.NumInputs < 0 || p.NumOutputs < 0 {
		return nil, fmt.Errorf("pla: missing .i/.o headers")
	}
	return p, nil
}

// MinimizePLA minimizes every output of the PLA against its per-output
// don't-care set and returns a new PLA with one row per product term
// (outputs are not shared between terms; sharing is the synthesizer's
// job downstream).
func MinimizePLA(p *PLA) *PLA {
	out := &PLA{NumInputs: p.NumInputs, NumOutputs: p.NumOutputs}
	for j := 0; j < p.NumOutputs; j++ {
		min := Minimize(p.OnSet(j), p.DCSet(j))
		for _, c := range min.Cubes {
			ov := NewCube(p.NumOutputs)
			for k := range ov {
				ov[k] = Zero
			}
			ov[j] = One
			out.Rows = append(out.Rows, PLARow{Input: c.Clone(), Output: ov})
		}
	}
	return out
}
