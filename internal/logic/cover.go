package logic

import (
	"sort"
	"strings"
)

// Cover is a sum of product terms over a fixed number of variables.
type Cover struct {
	NumVars int
	Cubes   []Cube
}

// NewCover returns an empty cover (the constant-0 function) over n vars.
func NewCover(n int) *Cover { return &Cover{NumVars: n} }

// Universe returns the constant-1 cover over n variables.
func Universe(n int) *Cover {
	return &Cover{NumVars: n, Cubes: []Cube{NewCube(n)}}
}

// ParseCover parses newline- or space-separated PLA-style cube strings.
func ParseCover(n int, s string) (*Cover, error) {
	c := NewCover(n)
	for _, f := range strings.Fields(s) {
		cube, err := ParseCube(f)
		if err != nil {
			return nil, err
		}
		c.Cubes = append(c.Cubes, cube)
	}
	return c, nil
}

// MustParseCover is ParseCover that panics on error.
func MustParseCover(n int, s string) *Cover {
	c, err := ParseCover(n, s)
	if err != nil {
		panic(err)
	}
	return c
}

// String renders one cube per line in PLA notation.
func (f *Cover) String() string {
	lines := make([]string, len(f.Cubes))
	for i, c := range f.Cubes {
		lines[i] = c.String()
	}
	return strings.Join(lines, "\n")
}

// Clone deep-copies the cover.
func (f *Cover) Clone() *Cover {
	g := &Cover{NumVars: f.NumVars, Cubes: make([]Cube, len(f.Cubes))}
	for i, c := range f.Cubes {
		g.Cubes[i] = c.Clone()
	}
	return g
}

// Add appends a cube to the cover.
func (f *Cover) Add(c Cube) { f.Cubes = append(f.Cubes, c) }

// IsEmpty reports whether the cover has no cubes (constant 0).
func (f *Cover) IsEmpty() bool { return len(f.Cubes) == 0 }

// Literals returns the total literal count across all cubes.
func (f *Cover) Literals() int {
	n := 0
	for _, c := range f.Cubes {
		n += c.Literals()
	}
	return n
}

// Eval evaluates the cover on a complete assignment bit vector.
func (f *Cover) Eval(assign uint64) bool {
	for _, c := range f.Cubes {
		if c.EvalBits(assign) {
			return true
		}
	}
	return false
}

// Covers reports whether the cover contains cube d entirely, i.e. the
// cofactor of the cover with respect to d is a tautology.
func (f *Cover) Covers(d Cube) bool {
	return f.CofactorCube(d).Tautology()
}

// ContainsCoverOf reports whether every cube of g is covered by f.
func (f *Cover) ContainsCoverOf(g *Cover) bool {
	for _, c := range g.Cubes {
		if !f.Covers(c) {
			return false
		}
	}
	return true
}

// Cofactor returns the cover's cofactor with respect to variable i at
// value v (the Shannon cofactor).
func (f *Cover) Cofactor(i int, v Value) *Cover {
	out := NewCover(f.NumVars)
	for _, c := range f.Cubes {
		if cf, ok := c.Cofactor(i, v); ok {
			out.Cubes = append(out.Cubes, cf)
		}
	}
	return out
}

// CofactorCube returns the generalized cofactor of the cover with
// respect to cube d.
func (f *Cover) CofactorCube(d Cube) *Cover {
	out := NewCover(f.NumVars)
	for _, c := range f.Cubes {
		if c.Distance(d) > 0 {
			continue
		}
		cf := c.Clone()
		for i, v := range d {
			if v != Dash {
				cf[i] = Dash
			}
		}
		out.Cubes = append(out.Cubes, cf)
	}
	return out
}

// Or returns the union of two covers over the same variable set.
func (f *Cover) Or(g *Cover) *Cover {
	out := &Cover{NumVars: f.NumVars}
	out.Cubes = append(out.Cubes, f.Cubes...)
	out.Cubes = append(out.Cubes, g.Cubes...)
	return out
}

// And returns the product of two covers (pairwise cube intersection).
func (f *Cover) And(g *Cover) *Cover {
	out := NewCover(f.NumVars)
	for _, a := range f.Cubes {
		for _, b := range g.Cubes {
			if p, ok := a.Intersect(b); ok {
				out.Cubes = append(out.Cubes, p)
			}
		}
	}
	out.SingleCubeContain()
	return out
}

// SingleCubeContain removes cubes contained in another single cube of
// the cover (cheap redundancy removal).
func (f *Cover) SingleCubeContain() {
	// Wider cubes first so the quadratic scan removes contained cubes
	// in one pass.
	sort.SliceStable(f.Cubes, func(i, j int) bool {
		return f.Cubes[i].Literals() < f.Cubes[j].Literals()
	})
	kept := f.Cubes[:0]
	for i, c := range f.Cubes {
		contained := false
		for j := 0; j < len(kept); j++ {
			if kept[j].Contains(c) {
				contained = true
				break
			}
		}
		if !contained {
			kept = append(kept, f.Cubes[i])
		}
	}
	f.Cubes = kept
}

// binateSelect picks the most binate variable of the cover: the one
// appearing in both phases most often; ties break toward the variable
// with the most total literal occurrences. Returns -1 when the cover is
// unate in every variable.
func (f *Cover) binateSelect() int {
	n := f.NumVars
	pos := make([]int, n)
	neg := make([]int, n)
	for _, c := range f.Cubes {
		for i, v := range c {
			switch v {
			case One:
				pos[i]++
			case Zero:
				neg[i]++
			}
		}
	}
	best, bestScore := -1, -1
	for i := 0; i < n; i++ {
		if pos[i] == 0 || neg[i] == 0 {
			continue
		}
		score := min(pos[i], neg[i])*1000 + pos[i] + neg[i]
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// mostFrequentVar returns the variable with the most literal
// occurrences, or -1 if the cover has no literals.
func (f *Cover) mostFrequentVar() int {
	counts := make([]int, f.NumVars)
	for _, c := range f.Cubes {
		for i, v := range c {
			if v != Dash {
				counts[i]++
			}
		}
	}
	best, bestN := -1, 0
	for i, n := range counts {
		if n > bestN {
			best, bestN = i, n
		}
	}
	return best
}

// Tautology reports whether the cover is the constant-1 function, using
// unate reduction plus Shannon expansion on the most binate variable.
func (f *Cover) Tautology() bool {
	for _, c := range f.Cubes {
		if c.IsUniverse() {
			return true
		}
	}
	if len(f.Cubes) == 0 {
		return false
	}
	b := f.binateSelect()
	if b < 0 {
		// Unate cover: tautology iff some cube is the universe, which
		// was already checked above.
		return false
	}
	return f.Cofactor(b, Zero).Tautology() && f.Cofactor(b, One).Tautology()
}

// Complement returns a cover of the complement function, via recursive
// Shannon expansion.
func (f *Cover) Complement() *Cover {
	return complementRec(f)
}

func complementRec(f *Cover) *Cover {
	if len(f.Cubes) == 0 {
		return Universe(f.NumVars)
	}
	for _, c := range f.Cubes {
		if c.IsUniverse() {
			return NewCover(f.NumVars)
		}
	}
	if len(f.Cubes) == 1 {
		return complementCube(f.NumVars, f.Cubes[0])
	}
	v := f.binateSelect()
	if v < 0 {
		v = f.mostFrequentVar()
	}
	c0 := complementRec(f.Cofactor(v, Zero))
	c1 := complementRec(f.Cofactor(v, One))
	out := NewCover(f.NumVars)
	for _, c := range c0.Cubes {
		d := c.Clone()
		if d[v] == Dash {
			d[v] = Zero
		}
		out.Cubes = append(out.Cubes, d)
	}
	for _, c := range c1.Cubes {
		d := c.Clone()
		if d[v] == Dash {
			d[v] = One
		}
		out.Cubes = append(out.Cubes, d)
	}
	out.SingleCubeContain()
	return out
}

// complementCube is De Morgan on a single product term.
func complementCube(n int, c Cube) *Cover {
	out := NewCover(n)
	for i, v := range c {
		if v == Dash {
			continue
		}
		d := NewCube(n)
		if v == One {
			d[i] = Zero
		} else {
			d[i] = One
		}
		out.Cubes = append(out.Cubes, d)
	}
	return out
}

// CountMinterms returns the exact number of minterms of the cover
// (inclusion-free via disjoint sharp of successive cubes). Suitable for
// the variable counts used in this project (≤ 40 variables would
// overflow; callers stay far below that for counting purposes).
func (f *Cover) CountMinterms() uint64 {
	var total uint64
	var seen []Cube
	for _, c := range f.Cubes {
		total += disjointCount(c, seen)
		seen = append(seen, c)
	}
	return total
}

// disjointCount counts minterms of c not covered by any cube in prior.
func disjointCount(c Cube, prior []Cube) uint64 {
	frontier := []Cube{c}
	for _, p := range prior {
		var next []Cube
		for _, q := range frontier {
			next = append(next, sharpCube(q, p)...)
		}
		frontier = next
		if len(frontier) == 0 {
			return 0
		}
	}
	var n uint64
	for _, q := range frontier {
		n += q.CountMinterms()
	}
	return n
}

// sharpCube returns a disjoint cover of q \ p.
func sharpCube(q, p Cube) []Cube {
	if q.Distance(p) > 0 {
		return []Cube{q}
	}
	var out []Cube
	rem := q.Clone()
	for i, v := range p {
		if v == Dash || rem[i] != Dash {
			continue
		}
		piece := rem.Clone()
		if v == One {
			piece[i] = Zero
		} else {
			piece[i] = One
		}
		out = append(out, piece)
		rem[i] = v
	}
	// rem is now q ∩ p; if p had no dash positions free in q the whole
	// of q is covered and out already holds the difference.
	return out
}
