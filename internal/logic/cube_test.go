package logic

import (
	"testing"
	"testing/quick"
)

func TestParseCubeRoundTrip(t *testing.T) {
	cases := []string{"01-", "----", "1", "0", "10-1-0"}
	for _, s := range cases {
		c, err := ParseCube(s)
		if err != nil {
			t.Fatalf("ParseCube(%q): %v", s, err)
		}
		if got := c.String(); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
}

func TestParseCubeRejectsGarbage(t *testing.T) {
	if _, err := ParseCube("01a"); err == nil {
		t.Error("expected error for invalid character")
	}
}

func TestCubeContains(t *testing.T) {
	tests := []struct {
		a, b string
		want bool
	}{
		{"1--", "10-", true},
		{"10-", "1--", false},
		{"---", "010", true},
		{"010", "010", true},
		{"01-", "00-", false},
	}
	for _, tc := range tests {
		a, b := MustParseCube(tc.a), MustParseCube(tc.b)
		if got := a.Contains(b); got != tc.want {
			t.Errorf("%s.Contains(%s) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestCubeDistanceAndIntersect(t *testing.T) {
	a := MustParseCube("10-")
	b := MustParseCube("11-")
	if d := a.Distance(b); d != 1 {
		t.Errorf("distance = %d, want 1", d)
	}
	if _, ok := a.Intersect(b); ok {
		t.Error("disjoint cubes reported as intersecting")
	}
	c := MustParseCube("1--")
	p, ok := a.Intersect(c)
	if !ok || p.String() != "10-" {
		t.Errorf("intersect = %v,%v want 10-", p, ok)
	}
}

func TestSupercube(t *testing.T) {
	a := MustParseCube("101")
	b := MustParseCube("001")
	if got := a.Supercube(b).String(); got != "-01" {
		t.Errorf("supercube = %s, want -01", got)
	}
}

func TestCofactorCube(t *testing.T) {
	c := MustParseCube("10-")
	cf, ok := c.Cofactor(0, One)
	if !ok || cf.String() != "-0-" {
		t.Errorf("cofactor = %v,%v", cf, ok)
	}
	if _, ok := c.Cofactor(0, Zero); ok {
		t.Error("cofactor against opposing literal should be empty")
	}
}

func TestEvalBits(t *testing.T) {
	c := MustParseCube("1-0")
	// var0=1, var2=0 required.
	if !c.EvalBits(0b001) {
		t.Error("0b001 should satisfy 1-0")
	}
	if c.EvalBits(0b100) {
		t.Error("0b100 should not satisfy 1-0")
	}
	if !c.EvalBits(0b011) {
		t.Error("0b011 should satisfy 1-0")
	}
}

func TestCountMinterms(t *testing.T) {
	if n := MustParseCube("1--").CountMinterms(); n != 4 {
		t.Errorf("minterms = %d, want 4", n)
	}
	if n := MustParseCube("101").CountMinterms(); n != 1 {
		t.Errorf("minterms = %d, want 1", n)
	}
}

// Property: supercube always contains both inputs.
func TestSupercubeContainsBoth(t *testing.T) {
	f := func(av, bv [6]byte) bool {
		a, b := make(Cube, 6), make(Cube, 6)
		for i := 0; i < 6; i++ {
			a[i] = Value(av[i] % 3)
			b[i] = Value(bv[i] % 3)
		}
		s := a.Supercube(b)
		return s.Contains(a) && s.Contains(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: distance 0 iff a shared minterm exists (checked by brute
// force over all assignments of 6 variables).
func TestDistanceZeroMeansSharedMinterm(t *testing.T) {
	f := func(av, bv [6]byte) bool {
		a, b := make(Cube, 6), make(Cube, 6)
		for i := 0; i < 6; i++ {
			a[i] = Value(av[i] % 3)
			b[i] = Value(bv[i] % 3)
		}
		shared := false
		for m := uint64(0); m < 64; m++ {
			if a.EvalBits(m) && b.EvalBits(m) {
				shared = true
				break
			}
		}
		return shared == a.Intersects(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
