package logic

import (
	"math/rand"
	"testing"
)

// onOffPreserved checks the minimization contract: result covers all ON
// minterms and no OFF minterms (DC minterms may go either way).
func onOffPreserved(t *testing.T, on, dc, got *Cover) {
	t.Helper()
	n := on.NumVars
	for m := uint64(0); m < 1<<uint(n); m++ {
		inOn := on.Eval(m)
		inDC := dc != nil && dc.Eval(m)
		inGot := got.Eval(m)
		if inOn && !inGot {
			t.Fatalf("minterm %0*b in ON-set dropped", n, m)
		}
		if !inOn && !inDC && inGot {
			t.Fatalf("minterm %0*b in OFF-set covered", n, m)
		}
	}
}

func TestMinimizeClassic(t *testing.T) {
	// f = a'b + ab + ab' should minimize to a + b.
	on := MustParseCover(2, "01 11 10")
	got := Minimize(on, nil)
	onOffPreserved(t, on, nil, got)
	if len(got.Cubes) != 2 {
		t.Errorf("expected 2 cubes (a + b), got %d:\n%s", len(got.Cubes), got)
	}
	if got.Literals() != 2 {
		t.Errorf("expected 2 literals, got %d", got.Literals())
	}
}

func TestMinimizeWithDontCares(t *testing.T) {
	// ON = {000}, DC = everything with var0 = 0 except 000's complement
	// structure: the DC set lets the single minterm expand.
	on := MustParseCover(3, "000")
	dc := MustParseCover(3, "0-1 01-")
	got := Minimize(on, dc)
	onOffPreserved(t, on, dc, got)
	if len(got.Cubes) != 1 || got.Cubes[0].Literals() != 1 {
		t.Errorf("DC expansion failed, got:\n%s", got)
	}
}

func TestMinimizeEmptyAndUniverse(t *testing.T) {
	if got := Minimize(NewCover(3), nil); !got.IsEmpty() {
		t.Error("empty ON-set must minimize to empty cover")
	}
	got := Minimize(Universe(3), nil)
	if len(got.Cubes) != 1 || !got.Cubes[0].IsUniverse() {
		t.Errorf("universe must stay a single universe cube, got:\n%s", got)
	}
}

func TestMinimizeRandomFunctions(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 150; iter++ {
		nvars := 3 + rng.Intn(3)
		on := randomCover(rng, nvars, 1+rng.Intn(8))
		var dc *Cover
		if rng.Intn(2) == 1 {
			dc = randomCover(rng, nvars, rng.Intn(3))
			// DC must not overlap ON for a well-posed spec; carve it out.
			carved := NewCover(nvars)
			offOn := on.Complement()
			for _, c := range dc.Cubes {
				for _, o := range offOn.Cubes {
					if p, ok := c.Intersect(o); ok {
						carved.Cubes = append(carved.Cubes, p)
					}
				}
			}
			dc = carved
		}
		got := Minimize(on, dc)
		onOffPreserved(t, on, dc, got)
		if got.Literals() > on.Literals()+nvars {
			t.Errorf("minimized cover much larger than input: %d vs %d", got.Literals(), on.Literals())
		}
	}
}

func TestMinimizeNeverGrowsCubeCount(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 100; iter++ {
		on := randomCover(rng, 5, 2+rng.Intn(10))
		before := len(on.Cubes)
		got := Minimize(on, nil)
		if len(got.Cubes) > before {
			t.Fatalf("cube count grew: %d -> %d", before, len(got.Cubes))
		}
	}
}

func TestEquivalent(t *testing.T) {
	f := MustParseCover(2, "01 11 10")
	g := MustParseCover(2, "1- -1")
	if !Equivalent(f, g, nil) {
		t.Error("a'b+ab+ab' must equal a+b")
	}
	h := MustParseCover(2, "1-")
	if Equivalent(f, h, nil) {
		t.Error("a+b must differ from a")
	}
	// With DC covering the difference they become equivalent.
	dc := MustParseCover(2, "01")
	if !Equivalent(f, h, dc) {
		t.Error("a+b ~ a modulo dc=a'b")
	}
}
