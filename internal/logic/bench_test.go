package logic

import (
	"math/rand"
	"testing"
)

// BenchmarkMinimize measures espresso-style minimization on random
// 10-variable, 40-cube covers.
func BenchmarkMinimize(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	covers := make([]*Cover, 16)
	for i := range covers {
		covers[i] = randomCover(rng, 10, 40)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Minimize(covers[i%len(covers)], nil)
	}
}

// BenchmarkTautology measures the unate-recursion tautology check.
func BenchmarkTautology(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	covers := make([]*Cover, 16)
	for i := range covers {
		covers[i] = randomCover(rng, 12, 60)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = covers[i%len(covers)].Tautology()
	}
}
