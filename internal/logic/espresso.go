package logic

import "sort"

// Minimize runs an espresso-style heuristic two-level minimization of
// the ON-set on against the don't-care set dc (dc may be nil). It
// returns a cover equivalent to on over the care space: the result
// covers every ON minterm, never intersects the OFF-set, and may absorb
// DC minterms. The loop is the classic EXPAND → IRREDUNDANT → REDUCE
// iteration, stopping when the cost (cubes, then literals) no longer
// improves.
func Minimize(on, dc *Cover) *Cover {
	if on == nil {
		panic("logic: Minimize with nil ON-set")
	}
	if dc == nil {
		dc = NewCover(on.NumVars)
	}
	if len(on.Cubes) == 0 {
		return NewCover(on.NumVars)
	}
	// care = ON ∪ DC is the region any expanded cube must stay inside.
	// Working with containment against care avoids ever computing the
	// OFF-set complement, which can blow up at the variable counts the
	// synthesis flow reaches (≈35 variables for the scf benchmark).
	care := on.Or(dc)

	f := on.Clone()
	f.SingleCubeContain()
	expand(f, care)
	irredundant(f, dc)

	bestCubes, bestLits := len(f.Cubes), f.Literals()
	for iter := 0; iter < 12; iter++ {
		reduce(f, dc)
		expand(f, care)
		irredundant(f, dc)
		c, l := len(f.Cubes), f.Literals()
		if c > bestCubes || (c == bestCubes && l >= bestLits) {
			break
		}
		bestCubes, bestLits = c, l
	}
	return f
}

// expand raises literals of each cube to Dash as long as the expanded
// cube stays inside the care region (ON ∪ DC), then drops cubes that
// became covered by a single other cube.
func expand(f *Cover, care *Cover) {
	// Process cubes with many literals first: they have the most to gain.
	sort.SliceStable(f.Cubes, func(i, j int) bool {
		return f.Cubes[i].Literals() > f.Cubes[j].Literals()
	})
	for _, c := range f.Cubes {
		expandCube(c, care)
	}
	f.SingleCubeContain()
}

// expandCube raises literals of c one at a time; a raise is legal when
// the raised cube is still covered by the care region. Raising one
// literal can unlock or block another, so the scan repeats until no
// literal can be raised.
func expandCube(c Cube, care *Cover) {
	for {
		raisedAny := false
		for i, val := range c {
			if val == Dash {
				continue
			}
			saved := c[i]
			c[i] = Dash
			if care.Covers(c) {
				raisedAny = true
			} else {
				c[i] = saved
			}
		}
		if !raisedAny {
			return
		}
	}
}

// irredundant removes cubes that are covered by the union of the other
// cubes and the DC set, scanning largest cubes last so essential small
// cubes survive.
func irredundant(f *Cover, dc *Cover) {
	order := make([]int, len(f.Cubes))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return f.Cubes[order[a]].Literals() > f.Cubes[order[b]].Literals()
	})
	removed := make([]bool, len(f.Cubes))
	for _, idx := range order {
		rest := NewCover(f.NumVars)
		for j, c := range f.Cubes {
			if j != idx && !removed[j] {
				rest.Cubes = append(rest.Cubes, c)
			}
		}
		rest.Cubes = append(rest.Cubes, dc.Cubes...)
		if rest.Covers(f.Cubes[idx]) {
			removed[idx] = true
		}
	}
	kept := f.Cubes[:0]
	for j, c := range f.Cubes {
		if !removed[j] {
			kept = append(kept, c)
		}
	}
	f.Cubes = kept
}

// reduce shrinks each cube to the supercube of the part of it not
// covered by the rest of the cover plus the DC set, opening room for a
// different EXPAND direction on the next pass.
func reduce(f *Cover, dc *Cover) {
	for idx := range f.Cubes {
		c := f.Cubes[idx]
		rest := NewCover(f.NumVars)
		for j, d := range f.Cubes {
			if j != idx {
				rest.Cubes = append(rest.Cubes, d)
			}
		}
		rest.Cubes = append(rest.Cubes, dc.Cubes...)
		// Part of c not covered by rest: sharp c against each cube.
		frontier := []Cube{c.Clone()}
		for _, r := range rest.Cubes {
			var next []Cube
			for _, q := range frontier {
				next = append(next, sharpCube(q, r)...)
			}
			frontier = next
			if len(frontier) == 0 {
				break
			}
		}
		if len(frontier) == 0 {
			continue // fully redundant; IRREDUNDANT will take it
		}
		sc := frontier[0]
		for _, q := range frontier[1:] {
			sc = sc.Supercube(q)
		}
		if shrunk, ok := c.Intersect(sc); ok {
			f.Cubes[idx] = shrunk
		}
	}
}

// Equivalent reports whether covers f and g implement the same function
// modulo the don't-care set dc: they must agree on every minterm
// outside dc. dc may be nil.
func Equivalent(f, g, dc *Cover) bool {
	if dc == nil {
		dc = NewCover(f.NumVars)
	}
	// f ⊆ g ∪ dc and g ⊆ f ∪ dc.
	gd := g.Or(dc)
	for _, c := range f.Cubes {
		if !gd.Covers(c) {
			return false
		}
	}
	fd := f.Or(dc)
	for _, c := range g.Cubes {
		if !fd.Covers(c) {
			return false
		}
	}
	return true
}
