// Package logic provides two-level Boolean function manipulation:
// cubes, covers, cofactors, tautology checking, complementation, and an
// espresso-style EXPAND/IRREDUNDANT/REDUCE minimizer with don't-care
// support. It is the substrate under the FSM-to-netlist synthesis flow
// (the analog of SIS two-level minimization in the reproduced paper).
package logic

import (
	"fmt"
	"strings"
)

// Value is the value of one variable position inside a cube.
type Value byte

// Cube variable values. Dash means the variable is absent from the
// product term (don't care / both phases).
const (
	Zero Value = iota
	One
	Dash
)

// String returns "0", "1" or "-".
func (v Value) String() string {
	switch v {
	case Zero:
		return "0"
	case One:
		return "1"
	default:
		return "-"
	}
}

// Cube is a product term over n variables; position i holds the literal
// of variable i (Zero = complemented, One = positive, Dash = absent).
type Cube []Value

// NewCube returns a full-dash (universe) cube over n variables.
func NewCube(n int) Cube {
	c := make(Cube, n)
	for i := range c {
		c[i] = Dash
	}
	return c
}

// ParseCube parses a string such as "01-1" into a cube.
func ParseCube(s string) (Cube, error) {
	c := make(Cube, len(s))
	for i, r := range s {
		switch r {
		case '0':
			c[i] = Zero
		case '1':
			c[i] = One
		case '-', '2', 'x', 'X':
			c[i] = Dash
		default:
			return nil, fmt.Errorf("logic: invalid cube character %q in %q", r, s)
		}
	}
	return c, nil
}

// MustParseCube is ParseCube that panics on malformed input; intended
// for tests and embedded tables.
func MustParseCube(s string) Cube {
	c, err := ParseCube(s)
	if err != nil {
		panic(err)
	}
	return c
}

// String renders the cube in PLA notation ("01-1").
func (c Cube) String() string {
	var b strings.Builder
	for _, v := range c {
		b.WriteString(v.String())
	}
	return b.String()
}

// Clone returns an independent copy of the cube.
func (c Cube) Clone() Cube {
	d := make(Cube, len(c))
	copy(d, c)
	return d
}

// Literals counts the non-dash positions of the cube.
func (c Cube) Literals() int {
	n := 0
	for _, v := range c {
		if v != Dash {
			n++
		}
	}
	return n
}

// IsUniverse reports whether every position is Dash.
func (c Cube) IsUniverse() bool {
	for _, v := range c {
		if v != Dash {
			return false
		}
	}
	return true
}

// Contains reports whether c covers d (every minterm of d is in c).
func (c Cube) Contains(d Cube) bool {
	for i, v := range c {
		if v != Dash && v != d[i] {
			return false
		}
	}
	return true
}

// Equal reports positional equality of two cubes.
func (c Cube) Equal(d Cube) bool {
	if len(c) != len(d) {
		return false
	}
	for i := range c {
		if c[i] != d[i] {
			return false
		}
	}
	return true
}

// Distance returns the number of variables in which c and d have
// opposing literals. Distance 0 means the cubes intersect.
func (c Cube) Distance(d Cube) int {
	n := 0
	for i, v := range c {
		if v != Dash && d[i] != Dash && v != d[i] {
			n++
		}
	}
	return n
}

// Intersects reports whether the two cubes share at least one minterm.
func (c Cube) Intersects(d Cube) bool { return c.Distance(d) == 0 }

// Intersect returns the product c·d and whether it is non-empty.
func (c Cube) Intersect(d Cube) (Cube, bool) {
	out := make(Cube, len(c))
	for i, v := range c {
		switch {
		case v == Dash:
			out[i] = d[i]
		case d[i] == Dash || d[i] == v:
			out[i] = v
		default:
			return nil, false
		}
	}
	return out, true
}

// Supercube grows c to the smallest cube containing both c and d.
func (c Cube) Supercube(d Cube) Cube {
	out := make(Cube, len(c))
	for i, v := range c {
		if v == d[i] {
			out[i] = v
		} else {
			out[i] = Dash
		}
	}
	return out
}

// Cofactor returns the cofactor of c with respect to variable i taking
// value v (v must be Zero or One). The second result is false when the
// cofactor is empty (c demands the opposite phase).
func (c Cube) Cofactor(i int, v Value) (Cube, bool) {
	switch c[i] {
	case Dash, v:
		out := c.Clone()
		out[i] = Dash
		return out, true
	default:
		return nil, false
	}
}

// EvalBits evaluates the cube on a complete assignment given as a bit
// vector (bit i of input = variable i).
func (c Cube) EvalBits(assign uint64) bool {
	for i, v := range c {
		if v == Dash {
			continue
		}
		bit := (assign >> uint(i)) & 1
		if (v == One) != (bit == 1) {
			return false
		}
	}
	return true
}

// CountMinterms returns the number of minterms of the cube over its n
// variables (2^#dashes). It panics if the cube has more than 63 dashes.
func (c Cube) CountMinterms() uint64 {
	dashes := len(c) - c.Literals()
	if dashes > 63 {
		panic("logic: cube too wide for minterm counting")
	}
	return 1 << uint(dashes)
}
