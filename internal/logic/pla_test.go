package logic

import (
	"bytes"
	"strings"
	"testing"
)

const samplePLA = `# adder carry
.i 3
.o 2
.p 4
11- 10
1-1 10
-11 10
111 01
.e
`

func TestReadPLA(t *testing.T) {
	p, err := ReadPLA(strings.NewReader(samplePLA))
	if err != nil {
		t.Fatal(err)
	}
	if p.NumInputs != 3 || p.NumOutputs != 2 || len(p.Rows) != 4 {
		t.Fatalf("shape: %+v", p)
	}
	on0 := p.OnSet(0)
	if len(on0.Cubes) != 3 {
		t.Errorf("output 0 ON-set has %d cubes, want 3", len(on0.Cubes))
	}
	on1 := p.OnSet(1)
	if len(on1.Cubes) != 1 {
		t.Errorf("output 1 ON-set has %d cubes, want 1", len(on1.Cubes))
	}
}

func TestPLARoundTrip(t *testing.T) {
	p, err := ReadPLA(strings.NewReader(samplePLA))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePLA(&buf, p); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPLA(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumInputs != p.NumInputs || back.NumOutputs != p.NumOutputs || len(back.Rows) != len(p.Rows) {
		t.Fatal("round trip changed shape")
	}
	for i := range p.Rows {
		if !p.Rows[i].Input.Equal(back.Rows[i].Input) || !p.Rows[i].Output.Equal(back.Rows[i].Output) {
			t.Fatalf("row %d changed", i)
		}
	}
}

func TestReadPLAErrors(t *testing.T) {
	cases := []string{
		"11- 10",            // cube before headers
		".i 2\n.o 1\n11- 1", // wrong input width
		".i 3\n.o 2\n11- 1", // wrong output width
		".i 3\n.o 1\n11z 1", // bad input char
		".i 3\n.o 1\n11- x", // bad output char
		".i x\n.o 1\n",      // bad header
	}
	for _, s := range cases {
		if _, err := ReadPLA(strings.NewReader(s)); err == nil {
			t.Errorf("expected error for %q", s)
		}
	}
}

func TestReadPLADontCareOutputs(t *testing.T) {
	src := ".i 2\n.o 1\n11 1\n00 -\n.e\n"
	p, err := ReadPLA(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	dc := p.DCSet(0)
	if len(dc.Cubes) != 1 || dc.Cubes[0].String() != "00" {
		t.Errorf("DC set wrong: %v", dc)
	}
}

func TestMinimizePLA(t *testing.T) {
	// f0 = minterms of a + b over 2 vars, expressed redundantly.
	src := ".i 2\n.o 1\n01 1\n10 1\n11 1\n.e\n"
	p, err := ReadPLA(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	min := MinimizePLA(p)
	if len(min.Rows) != 2 {
		t.Errorf("minimized to %d rows, want 2 (a + b)", len(min.Rows))
	}
	// Function preserved.
	want := p.OnSet(0)
	got := min.OnSet(0)
	if !Equivalent(want, got, nil) {
		t.Error("minimization changed the function")
	}
}

func TestMinimizePLAWithDC(t *testing.T) {
	// Single ON minterm, DC covering a neighbour: one literal suffices.
	src := ".i 2\n.o 1\n11 1\n10 -\n.e\n"
	p, err := ReadPLA(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	min := MinimizePLA(p)
	if len(min.Rows) != 1 || min.Rows[0].Input.Literals() != 1 {
		t.Errorf("DC not exploited: %v", min.Rows)
	}
}
