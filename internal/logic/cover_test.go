package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomCover(rng *rand.Rand, nvars, ncubes int) *Cover {
	f := NewCover(nvars)
	for i := 0; i < ncubes; i++ {
		c := NewCube(nvars)
		for j := 0; j < nvars; j++ {
			c[j] = Value(rng.Intn(3))
		}
		f.Cubes = append(f.Cubes, c)
	}
	return f
}

func bruteEqual(f, g *Cover) bool {
	n := f.NumVars
	for m := uint64(0); m < 1<<uint(n); m++ {
		if f.Eval(m) != g.Eval(m) {
			return false
		}
	}
	return true
}

func TestTautologyBasics(t *testing.T) {
	if !Universe(4).Tautology() {
		t.Error("universe must be a tautology")
	}
	if NewCover(4).Tautology() {
		t.Error("empty cover must not be a tautology")
	}
	f := MustParseCover(2, "1- 0-")
	if !f.Tautology() {
		t.Error("x + x' must be a tautology")
	}
	g := MustParseCover(2, "1- 00")
	if g.Tautology() {
		t.Error("x + x'y' is not a tautology")
	}
}

func TestTautologyMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 300; iter++ {
		f := randomCover(rng, 5, 1+rng.Intn(8))
		brute := true
		for m := uint64(0); m < 32; m++ {
			if !f.Eval(m) {
				brute = false
				break
			}
		}
		if got := f.Tautology(); got != brute {
			t.Fatalf("Tautology mismatch on\n%s\ngot %v want %v", f, got, brute)
		}
	}
}

func TestComplementMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 200; iter++ {
		f := randomCover(rng, 5, rng.Intn(7))
		g := f.Complement()
		for m := uint64(0); m < 32; m++ {
			if f.Eval(m) == g.Eval(m) {
				t.Fatalf("complement agrees with function at %05b\nf:\n%s\ng:\n%s", m, f, g)
			}
		}
	}
}

func TestAndOrSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 100; iter++ {
		f := randomCover(rng, 5, 1+rng.Intn(5))
		g := randomCover(rng, 5, 1+rng.Intn(5))
		and := f.And(g)
		or := f.Or(g)
		for m := uint64(0); m < 32; m++ {
			if and.Eval(m) != (f.Eval(m) && g.Eval(m)) {
				t.Fatal("And semantics broken")
			}
			if or.Eval(m) != (f.Eval(m) || g.Eval(m)) {
				t.Fatal("Or semantics broken")
			}
		}
	}
}

func TestCoversCube(t *testing.T) {
	f := MustParseCover(3, "1-- -1-")
	if !f.Covers(MustParseCube("11-")) {
		t.Error("f should cover 11-")
	}
	if f.Covers(MustParseCube("00-")) {
		t.Error("f should not cover 00-")
	}
	// Covering that needs the union of two cubes.
	g := MustParseCover(2, "1- 01")
	if !g.Covers(MustParseCube("-1")) {
		t.Error("g should cover -1 via union")
	}
}

func TestSingleCubeContain(t *testing.T) {
	f := MustParseCover(3, "1-- 10- 101 0-0")
	f.SingleCubeContain()
	if len(f.Cubes) != 2 {
		t.Errorf("expected 2 cubes after containment, got %d:\n%s", len(f.Cubes), f)
	}
}

func TestCountMintermsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 200; iter++ {
		f := randomCover(rng, 6, rng.Intn(6))
		var brute uint64
		for m := uint64(0); m < 64; m++ {
			if f.Eval(m) {
				brute++
			}
		}
		if got := f.CountMinterms(); got != brute {
			t.Fatalf("CountMinterms = %d, brute = %d for\n%s", got, brute, f)
		}
	}
}

func TestCofactorShannon(t *testing.T) {
	// Shannon expansion must reconstruct the function.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomCover(rng, 5, 1+rng.Intn(6))
		v := rng.Intn(5)
		c0, c1 := g.Cofactor(v, Zero), g.Cofactor(v, One)
		for m := uint64(0); m < 32; m++ {
			var half *Cover
			if (m>>uint(v))&1 == 1 {
				half = c1
			} else {
				half = c0
			}
			if g.Eval(m) != half.Eval(m) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
