package service

import (
	"fmt"
	"runtime"
	"runtime/debug"

	"seqatpg/internal/campaign"
)

// APIVersion is the version of the job-service HTTP API. A fleet
// coordinator refuses workers whose API version differs from its own:
// a mixed-version fleet must fail fast at the handshake, not corrupt a
// merge halfway through a campaign.
//
// v2 added the Balanced field to ShardSel: a worker that does not
// understand it would reject the submission (unknown field) or — worse,
// were the field merely ignored — silently run the round-robin sublist
// under a balanced digest. The bump makes a mixed fleet fail at the
// handshake instead.
const APIVersion = 2

// VersionInfo is the /version handshake payload: everything a
// coordinator needs to decide whether this worker can participate in a
// federated campaign. API and CheckpointFormat must match exactly —
// the coordinator re-dispatches checkpoints between workers and merges
// their shard results, both of which silently corrupt across format
// changes. Build and Go are diagnostics for the startup log and for
// operators chasing a skewed fleet.
type VersionInfo struct {
	Service          string `json:"service"`
	API              int    `json:"api"`
	CheckpointFormat int    `json:"checkpoint_format"`
	ResultWire       int    `json:"result_wire"`
	Build            string `json:"build,omitempty"`
	Go               string `json:"go,omitempty"`
}

// String renders the handshake identity on one line — the same
// identity /version serves and serve logs at startup, so `-version`
// output from any binary can be compared against a fleet's handshake.
func (v VersionInfo) String() string {
	build := v.Build
	if build == "" {
		build = "unknown"
	}
	return fmt.Sprintf("%s build %s (%s): api v%d, checkpoint format v%d, result wire v%d",
		v.Service, build, v.Go, v.API, v.CheckpointFormat, v.ResultWire)
}

// Version reports this build's handshake identity.
func Version() VersionInfo {
	v := VersionInfo{
		Service:          "seqatpg",
		API:              APIVersion,
		CheckpointFormat: campaign.CheckpointFormatVersion,
		ResultWire:       campaign.ResultWireVersion,
		Go:               runtime.Version(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		v.Build = bi.Main.Version
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && len(s.Value) >= 12 {
				v.Build = s.Value[:12]
			}
		}
	}
	return v
}

// ReadyStatus is the /readyz payload: whether this worker should
// receive new work right now, and why not if not. Liveness stays on
// /healthz — a draining or saturated worker is still alive, it just
// must not be handed fresh jobs; this split is what a coordinator's
// worker selection and any load balancer consult.
type ReadyStatus struct {
	Ready        bool   `json:"ready"`
	Draining     bool   `json:"draining"`
	QueueDepth   int    `json:"queue_depth"`
	QueueCap     int    `json:"queue_cap"`
	RunningJobs  int    `json:"running_jobs"`
	DegradedJobs int    `json:"degraded_jobs"`
	Reason       string `json:"reason,omitempty"`
}

// Ready snapshots the server's readiness: not-ready while draining or
// while the submission queue is saturated (a submit right now would be
// rejected with 429 anyway).
func (s *Server) Ready() ReadyStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := ReadyStatus{
		QueueDepth: len(s.queue),
		QueueCap:   s.opts.queueCap(),
		Draining:   s.closed,
	}
	for _, j := range s.jobs {
		if j.state == Running {
			st.RunningJobs++
		}
		if j.degraded.Load() {
			st.DegradedJobs++
		}
	}
	switch {
	case st.Draining:
		st.Reason = "draining"
	case st.QueueDepth >= st.QueueCap:
		st.Reason = "queue full"
	default:
		st.Ready = true
	}
	return st
}
