package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"seqatpg/internal/campaign"
)

// startHTTP runs a service behind an httptest listener.
func startHTTP(t *testing.T, opts Options) (*Server, string) {
	t.Helper()
	srv, err := New(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Close(ctx)
	})
	return srv, ts.URL
}

func TestVersionHandshake(t *testing.T) {
	_, base := startHTTP(t, Options{Workers: 1})
	resp, err := http.Get(base + "/version")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v VersionInfo
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	want := Version()
	if v.Service != "seqatpg" || v.API != APIVersion ||
		v.CheckpointFormat != campaign.CheckpointFormatVersion ||
		v.ResultWire != campaign.ResultWireVersion {
		t.Fatalf("handshake payload %+v, want to match %+v", v, want)
	}
}

func TestReadyzSplitFromHealthz(t *testing.T) {
	srv, base := startHTTP(t, Options{Workers: 1})

	get := func(path string) (int, ReadyStatus) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st ReadyStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, st
	}

	if code, st := get("/readyz"); code != http.StatusOK || !st.Ready {
		t.Fatalf("idle server readyz: code %d, %+v", code, st)
	}

	// Draining: liveness stays 200, readiness flips to 503 with the
	// reason in the body.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if resp, err := http.Get(base + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while draining: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}
	code, st := get("/readyz")
	if code != http.StatusServiceUnavailable || st.Ready || !st.Draining || st.Reason != "draining" {
		t.Fatalf("draining readyz: code %d, %+v", code, st)
	}
}

func TestQueueFullRetryAfterAndReadyz(t *testing.T) {
	// One worker, queue capped at 1, and a job that blocks the worker:
	// the next submissions fill and then overflow the queue.
	srv, base := startHTTP(t, Options{Workers: 1, QueueCap: 1})
	release := make(chan struct{})
	srv.testRunCampaign = func(ctx context.Context, j *job, ccfg campaign.Config) (*campaign.Result, error) {
		<-release
		return nil, context.Canceled
	}
	defer close(release)

	text := benchText(t, 4, 1)
	postJob(t, base, Spec{Name: "blocker", Netlist: text})
	// Wait for the blocker to leave the queue and occupy the worker.
	deadline := time.Now().Add(10 * time.Second)
	for srv.Ready().RunningJobs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("blocker never started running")
		}
		time.Sleep(5 * time.Millisecond)
	}
	postJob(t, base, Spec{Name: "queued", Netlist: text})

	if st := srv.Ready(); st.Ready || st.Reason != "queue full" || st.QueueDepth != 1 {
		t.Fatalf("saturated queue should report not-ready: %+v", st)
	}

	body, err := json.Marshal(Spec{Name: "overflow", Netlist: text})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After header")
	} else if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After %q is not a positive integer of seconds", ra)
	}
}

// TestShardSpecPrepare pins that a shard selector prepares exactly the
// sublist campaign.ShardIndices names and normalizes the config the
// way RunSharded would.
func TestShardSpecPrepare(t *testing.T) {
	text := benchText(t, 5, 2)
	whole, err := Prepare(Spec{Netlist: text})
	if err != nil {
		t.Fatal(err)
	}
	const shards = 3
	idxs := campaign.ShardIndices(len(whole.Faults), shards)
	seen := 0
	for k := 0; k < shards; k++ {
		p, err := Prepare(Spec{Netlist: text, Shard: &ShardSel{Index: k, Count: shards}})
		if err != nil {
			t.Fatal(err)
		}
		if len(p.Faults) != len(idxs[k]) {
			t.Fatalf("shard %d: %d faults, want %d", k, len(p.Faults), len(idxs[k]))
		}
		for i, gi := range idxs[k] {
			if p.Faults[i] != whole.Faults[gi] {
				t.Fatalf("shard %d fault %d is not global fault %d", k, i, gi)
			}
		}
		if !p.Campaign.Engine.NoFaultDrop {
			t.Fatalf("shard %d: config not normalized for sharding", k)
		}
		want := campaign.NormalizeForSharding(whole.Campaign)
		if !reflect.DeepEqual(p.Campaign.Engine, want.Engine) {
			t.Fatalf("shard %d: engine config diverges from NormalizeForSharding", k)
		}
		seen += len(p.Faults)
	}
	if seen != len(whole.Faults) {
		t.Fatalf("shards cover %d faults, universe has %d", seen, len(whole.Faults))
	}

	// Invalid selectors are rejected at submission time.
	for _, bad := range []Spec{
		{Netlist: text, Shard: &ShardSel{Index: 0, Count: 0}},
		{Netlist: text, Shard: &ShardSel{Index: 3, Count: 3}},
		{Netlist: text, Shard: &ShardSel{Index: -1, Count: 3}},
		{Netlist: text, Shard: &ShardSel{Index: 0, Count: 2}, Shards: 4},
		{Netlist: text, Checkpoint: json.RawMessage(`{}`)},
		{Netlist: text, Shard: &ShardSel{Index: 0, Count: 2}, Checkpoint: json.RawMessage(`{"version":99}`)},
	} {
		if _, err := Prepare(bad); err == nil {
			t.Fatalf("spec %+v prepared without error", bad)
		}
	}
}

// TestShardResultEndpoint runs one shard job end to end and checks the
// /shard-result payload decodes to exactly the Result a local campaign
// over the same sublist produces.
func TestShardResultEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real campaign")
	}
	text := benchText(t, 4, 3)
	spec := Spec{Name: "shard", Netlist: text, MaxFaults: 8, Shard: &ShardSel{Index: 1, Count: 2}}

	_, base := startHTTP(t, Options{Workers: 1, CheckpointEvery: time.Millisecond})
	id := postJob(t, base, spec)
	waitStatus(t, base, id, 2*time.Minute, "done", func(st JobStatus) bool { return st.State == Done })

	// Checkpoint endpoint: the finished job removed its checkpoint, so
	// this must be a clean 404, not a 500.
	resp, err := http.Get(base + "/jobs/" + id + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("checkpoint of finished job: status %d, want 404", resp.StatusCode)
	}

	resp, err = http.Get(base + "/jobs/" + id + "/shard-result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("shard-result: status %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	got, err := campaign.DecodeResult(data)
	if err != nil {
		t.Fatal(err)
	}

	p, err := Prepare(spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := campaign.Run(context.Background(), p.Circuit, p.Faults, p.Campaign)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Outcomes, want.Outcomes) {
		t.Fatal("shard-result outcomes diverge from a local run of the same sublist")
	}
	if !reflect.DeepEqual(got.Stats, want.Stats) {
		t.Fatalf("shard-result stats diverge from a local run:\n%+v\n%+v", got.Stats, want.Stats)
	}
	if !reflect.DeepEqual(got.Tests, want.Tests) {
		t.Fatal("shard-result tests diverge from a local run")
	}
}
