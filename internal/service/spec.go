package service

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"sync/atomic"

	"seqatpg/internal/atpg"
	"seqatpg/internal/atpg/attest"
	"seqatpg/internal/atpg/hitec"
	"seqatpg/internal/atpg/sest"
	"seqatpg/internal/campaign"
	"seqatpg/internal/fault"
	"seqatpg/internal/netlist"
	"seqatpg/internal/predict"
	"seqatpg/internal/retime"
)

// Spec is one submitted ATPG job: a netlist plus campaign knobs. The
// zero value of every optional field selects the documented default,
// so the minimal submission is just the netlist text.
type Spec struct {
	// Name is a free-form label echoed in status output.
	Name string `json:"name,omitempty"`
	// Netlist is the circuit source text.
	Netlist string `json:"netlist"`
	// Format is "bench" (ISCAS89, the default) or "net" (the exchange
	// format written by netlist.Write).
	Format string `json:"format,omitempty"`
	// Engine selects the generator preset: "hitec" (default),
	// "attest" or "sest".
	Engine string `json:"engine,omitempty"`
	// FaultBudget is the per-fault effort allowance in gate-frame
	// evaluations; zero selects 8000 x gates, as cmd/atpg does.
	FaultBudget int64 `json:"fault_budget,omitempty"`
	// Retries is the number of 2x/4x/... escalation passes re-attacking
	// aborted faults; zero means a single pass.
	Retries int `json:"retries,omitempty"`
	// Shards > 1 runs the campaign with deterministic fault-level
	// parallelism (campaign.RunSharded); zero or 1 is a plain
	// sequential campaign.
	Shards int `json:"shards,omitempty"`
	// MaxFaults truncates the collapsed fault universe; zero keeps all
	// faults.
	MaxFaults int `json:"max_faults,omitempty"`
	// FlushCycles is the reset-hold prefix; zero measures it from the
	// circuit (mandatory for retimed netlists, where it exceeds 1).
	FlushCycles int `json:"flush_cycles,omitempty"`
	// Seed perturbs the engine's randomized phases.
	Seed int64 `json:"seed,omitempty"`
	// Shard, when set, restricts the job to one shard of the collapsed
	// fault universe using campaign.ShardIndices — the exact round-robin
	// partition campaign.RunSharded uses — and normalizes the campaign
	// config with campaign.NormalizeForSharding. A fleet coordinator
	// submits one such job per shard and merges the shard results into a
	// global Result byte-identical to a single-node sharded run.
	// Incompatible with Shards > 1 (the worker runs its one shard
	// sequentially).
	Shard *ShardSel `json:"shard,omitempty"`
	// Checkpoint, when non-empty, seeds the job's campaign checkpoint
	// before the first pass: a coordinator re-dispatching a shard to a
	// new worker ships the last durable checkpoint it fetched from the
	// old one, so the new worker resumes mid-shard instead of starting
	// from zero. The payload must be a structurally valid checkpoint
	// (version + CRC, enforced at submission); the campaign fingerprint
	// check at resume time still guards against a checkpoint from a
	// different circuit, config or fault sublist.
	Checkpoint json.RawMessage `json:"checkpoint,omitempty"`
}

// ShardSel names one shard of a deterministic fault partition: the
// round-robin campaign.ShardIndices partition by default, or — when
// Balanced is set — the predicted-cost-balanced partition PlanShards
// computes. Coordinator and worker each derive the partition
// independently from the same netlist; feature extraction is
// deterministic, so they always agree on the sublists.
type ShardSel struct {
	Index int `json:"index"`
	Count int `json:"count"`
	// Balanced selects the testability-aware partition: shards packed
	// to equalize predicted search cost instead of fault counts, so one
	// shard full of predicted-hard faults cannot become the straggler
	// that sets the campaign makespan.
	Balanced bool `json:"balanced,omitempty"`
}

func (s Spec) shardCount() int {
	if s.Shards < 1 {
		return 1
	}
	return s.Shards
}

func (s Spec) describe() string {
	name := s.Name
	if name == "" {
		name = "unnamed"
	}
	eng := s.Engine
	if eng == "" {
		eng = "hitec"
	}
	if s.Shard != nil {
		return fmt.Sprintf("%s, engine %s, shard %d/%d", name, eng, s.Shard.Index, s.Shard.Count)
	}
	return fmt.Sprintf("%s, engine %s, %d shard(s)", name, eng, s.shardCount())
}

// Prepared is the executable form of a Spec: the parsed circuit, the
// fault list and the campaign configuration, without the paths and
// hooks the server wires in per run. Preparing the same Spec twice
// yields an identical campaign, which is what lets a restarted server
// resume against the checkpoint fingerprint the previous process
// recorded.
type Prepared struct {
	Circuit  *netlist.Circuit
	Faults   []fault.Fault
	Campaign campaign.Config
	Shards   int
	// CostEstimate is the predicted charged effort of this job in gate
	// evaluations: the sum over its (post-shard-selection) fault list of
	// per-fault predictions, each clamped to the retry ladder's final
	// budget. Derived from structural features only — no reachability
	// analysis — so preparing a submission stays cheap. Admission uses
	// it to turn queue depth into a drain time; it never influences any
	// verdict.
	CostEstimate int64
	// MaxFaultCost is the largest clamped per-fault prediction in the
	// job — the budget scale of the single hardest fault, which is what
	// bounds how long the campaign can legitimately go between
	// observable progress events.
	MaxFaultCost int64
}

// Prepare validates a Spec and builds its executable form.
func Prepare(spec Spec) (*Prepared, error) {
	if strings.TrimSpace(spec.Netlist) == "" {
		return nil, fmt.Errorf("service: empty netlist")
	}
	if spec.Shards < 0 {
		return nil, fmt.Errorf("service: negative shards %d", spec.Shards)
	}
	if spec.MaxFaults < 0 {
		return nil, fmt.Errorf("service: negative max_faults %d", spec.MaxFaults)
	}
	if spec.Shard != nil {
		if spec.Shards > 1 {
			return nil, fmt.Errorf("service: shard selector and shards=%d are mutually exclusive", spec.Shards)
		}
		if spec.Shard.Count < 1 {
			return nil, fmt.Errorf("service: shard count %d, want >= 1", spec.Shard.Count)
		}
		if spec.Shard.Index < 0 || spec.Shard.Index >= spec.Shard.Count {
			return nil, fmt.Errorf("service: shard index %d out of range [0, %d)", spec.Shard.Index, spec.Shard.Count)
		}
	}
	if len(spec.Checkpoint) > 0 {
		if spec.Shard == nil {
			return nil, fmt.Errorf("service: checkpoint seeding requires a shard selector")
		}
		if err := campaign.CheckCheckpointBytes(spec.Checkpoint); err != nil {
			return nil, fmt.Errorf("service: seeded checkpoint: %w", err)
		}
	}
	var c *netlist.Circuit
	var err error
	switch spec.Format {
	case "", "bench":
		c, err = netlist.ReadBench(strings.NewReader(spec.Netlist))
	case "net":
		c, err = netlist.Read(strings.NewReader(spec.Netlist))
	default:
		return nil, fmt.Errorf("service: unknown netlist format %q (want bench or net)", spec.Format)
	}
	if err != nil {
		return nil, fmt.Errorf("service: netlist: %w", err)
	}
	flush := spec.FlushCycles
	if flush == 0 {
		if flush, err = retime.FlushLength(c); err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
		if flush < 1 {
			flush = 1
		}
	}
	budget := spec.FaultBudget
	if budget == 0 {
		budget = 8000 * int64(c.NumGates())
	}
	var ecfg atpg.Config
	switch spec.Engine {
	case "", "hitec":
		ecfg = hitec.DefaultConfig(flush, budget)
	case "attest":
		ecfg = attest.DefaultConfig(flush, budget)
	case "sest":
		ecfg = sest.DefaultConfig(flush, budget)
	default:
		return nil, fmt.Errorf("service: unknown engine %q (want hitec, attest or sest)", spec.Engine)
	}
	if spec.Seed != 0 {
		ecfg.Seed = spec.Seed
	}
	if err := ecfg.Validate(); err != nil {
		return nil, err
	}
	faults := fault.CollapsedUniverse(c)
	if spec.MaxFaults > 0 && spec.MaxFaults < len(faults) {
		faults = faults[:spec.MaxFaults]
	}
	scores, err := predictScores(c, faults)
	if err != nil {
		return nil, fmt.Errorf("service: cost prediction: %w", err)
	}
	ccfg := campaign.Config{Engine: ecfg, Retries: spec.Retries}
	if spec.Shard != nil {
		// Select this worker's sublist with the same partition a local
		// RunSharded (or, for Balanced, the coordinator's PlanShards
		// call) would use, and normalize the config the same way: both
		// must match exactly or the merged fleet result would diverge
		// from a single-node run.
		var idxs [][]int
		if spec.Shard.Balanced {
			idxs = predict.BalancedIndices(scores, spec.Shard.Count)
		} else {
			idxs = campaign.ShardIndices(len(faults), spec.Shard.Count)
		}
		sub := make([]fault.Fault, 0, len(idxs[spec.Shard.Index]))
		subScores := make([]float64, 0, len(idxs[spec.Shard.Index]))
		for _, gi := range idxs[spec.Shard.Index] {
			sub = append(sub, faults[gi])
			subScores = append(subScores, scores[gi])
		}
		faults, scores = sub, subScores
		ccfg = campaign.NormalizeForSharding(ccfg)
	}
	if err := ccfg.Validate(); err != nil {
		return nil, err
	}
	p := &Prepared{Circuit: c, Faults: faults, Campaign: ccfg, Shards: spec.shardCount()}
	for _, sc := range scores {
		ev := predict.ClampEval(sc, ecfg.FaultBudget, ccfg.Retries)
		if p.CostEstimate <= math.MaxInt64-ev {
			p.CostEstimate += ev
		} else {
			p.CostEstimate = math.MaxInt64
		}
		if ev > p.MaxFaultCost {
			p.MaxFaultCost = ev
		}
	}
	return p, nil
}

// predictScores runs structural-only feature extraction (no
// reachability analysis — submission-time cost must stay linear in the
// circuit) and scores every fault with the default predictor. The
// result is a pure, deterministic function of (circuit, fault list):
// that determinism is what lets a coordinator and its workers derive
// identical balanced partitions without exchanging them.
func predictScores(c *netlist.Circuit, faults []fault.Fault) ([]float64, error) {
	fs, err := predict.Extract(c, faults, predict.Options{})
	if err != nil {
		return nil, err
	}
	p := predict.Default()
	scores := make([]float64, len(faults))
	for i := range faults {
		scores[i] = p.Score(fs, i)
	}
	return scores, nil
}

// PlanShards partitions a fault universe into shards balanced by
// predicted search cost — the partition a ShardSel with Balanced set
// selects — and returns the per-fault scores the packing was derived
// from. The coordinator calls this to know each shard's sublist for
// digesting and merging; the worker's Prepare recomputes it and, by
// determinism of the underlying feature extraction, lands on exactly
// the same bins.
func PlanShards(c *netlist.Circuit, faults []fault.Fault, shards int) ([][]int, []float64, error) {
	scores, err := predictScores(c, faults)
	if err != nil {
		return nil, nil, err
	}
	return predict.BalancedIndices(scores, shards), scores, nil
}

// Summary is the JSON-safe digest of a campaign.Result: everything
// status queries and metrics need, without the raw vectors (those are
// served separately) or the traversed-state set (only its size).
type Summary struct {
	Total           int     `json:"total"`
	Detected        int     `json:"detected"`
	Redundant       int     `json:"redundant"`
	Aborted         int     `json:"aborted"`
	Crashed         int     `json:"crashed"`
	Unconfirmed     int     `json:"unconfirmed"`
	Effort          int64   `json:"effort"`
	Backtracks      int64   `json:"backtracks"`
	LearnHits       int64   `json:"learn_hits"`
	LearnPrunes     int64   `json:"learn_prunes"`
	LearnedCubes    int64   `json:"learned_cubes"`
	Backjumps       int64   `json:"backjumps"`
	Restarts        int64   `json:"restarts"`
	StatesTraversed int     `json:"states_traversed"`
	FC              float64 `json:"fc"`
	FE              float64 `json:"fe"`
	Passes          int     `json:"passes"`
	Resumed         bool    `json:"resumed"`
	Interrupted     bool    `json:"interrupted"`
	// Degraded records that the final run finished with at least one
	// failed checkpoint write; the fault verdicts are unaffected (they
	// never depend on persistence), but resume coverage had gaps.
	Degraded           bool `json:"degraded,omitempty"`
	CheckpointFailures int  `json:"checkpoint_failures,omitempty"`
	Tests              int  `json:"tests"`
	CrashRecords       int  `json:"crash_records"`
}

// NewSummary digests a campaign result.
func NewSummary(res *campaign.Result) Summary {
	s := res.Stats
	return Summary{
		Total:              s.Total,
		Detected:           s.Detected,
		Redundant:          s.Redundant,
		Aborted:            s.Aborted,
		Crashed:            s.Crashed,
		Unconfirmed:        s.Unconfirmed,
		Effort:             s.Effort,
		Backtracks:         s.Backtracks,
		LearnHits:          s.LearnHits,
		LearnPrunes:        s.LearnPrunes,
		LearnedCubes:       s.LearnedCubes,
		Backjumps:          s.Backjumps,
		Restarts:           s.Restarts,
		StatesTraversed:    len(s.StatesTraversed),
		FC:                 s.FC(),
		FE:                 s.FE(),
		Passes:             res.Passes,
		Resumed:            res.Resumed,
		Interrupted:        res.Interrupted,
		Degraded:           res.Degraded,
		CheckpointFailures: res.CheckpointFailures,
		Tests:              len(res.Tests),
		CrashRecords:       len(res.Crashes),
	}
}

// counters are the service-level metrics: live gauges come from the
// store under its mutex, everything here is a monotone counter fed
// from campaign hooks and job completions.
type counters struct {
	attempts      atomic.Int64
	ckptWrites    atomic.Int64
	ckptFailures  atomic.Int64
	rejected      atomic.Int64
	quarantined   atomic.Int64
	watchdogTrips atomic.Int64
	jobsDone      atomic.Int64
	jobsFailed    atomic.Int64
	jobsCancelled atomic.Int64
	detected      atomic.Int64
	redundant     atomic.Int64
	aborted       atomic.Int64
	crashed       atomic.Int64
	effort        atomic.Int64
	backtracks    atomic.Int64
	tests         atomic.Int64
	// Prediction accuracy, fed from cold-run completions: the summed
	// predicted effort of done jobs (compare against the effort
	// counter, its actual counterpart) and how many jobs landed over
	// or under their prediction.
	predictedEvals   atomic.Int64
	predictOverruns  atomic.Int64
	predictUnderruns atomic.Int64
}

// addResult folds a completed job's final stats into the per-outcome
// and effort counters; this is what makes /metrics reconcile exactly
// with the sum of finished jobs' campaign.Result stats.
func (c *counters) addResult(sum *Summary) {
	c.detected.Add(int64(sum.Detected))
	c.redundant.Add(int64(sum.Redundant))
	c.aborted.Add(int64(sum.Aborted))
	c.crashed.Add(int64(sum.Crashed))
	c.effort.Add(sum.Effort)
	c.backtracks.Add(sum.Backtracks)
	c.tests.Add(int64(sum.Tests))
}
