package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"seqatpg/internal/campaign"
	"seqatpg/internal/ioguard"
)

// TestServiceChaosQueueCap429: past the queue cap, submissions come
// back as HTTP 429 with a JSON error body, the rejection is counted,
// and the queue depth gauge reports the bound being enforced.
func TestServiceChaosQueueCap429(t *testing.T) {
	s, err := New(t.TempDir(), Options{Workers: 1, QueueCap: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())
	// Pin the single worker so submitted jobs pile up in the queue.
	release := make(chan struct{})
	s.testRunCampaign = func(ctx context.Context, j *job, ccfg campaign.Config) (*campaign.Result, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return &campaign.Result{Interrupted: true}, nil
	}
	defer close(release)

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body := func() *bytes.Reader {
		b, _ := json.Marshal(Spec{Netlist: benchText(t, 5, 3), MaxFaults: 4})
		return bytes.NewReader(b)
	}
	submit := func() *http.Response {
		resp, err := http.Post(ts.URL+"/jobs", "application/json", body())
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// First submission is picked up by the pinned worker; wait until it
	// leaves the queue so the cap applies to the two after it.
	resp := submit()
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("first submit: status %d", resp.StatusCode)
	}
	deadline := time.Now().Add(time.Minute)
	for {
		s.mu.Lock()
		empty := len(s.queue) == 0
		s.mu.Unlock()
		if empty {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up the first job")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 2; i++ {
		resp := submit()
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("submit %d: status %d", i+2, resp.StatusCode)
		}
	}

	resp = submit()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap submit: status %d, want 429", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("429 content type %q, want JSON", ct)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("429 body is not JSON: %v", err)
	}
	if !strings.Contains(e.Error, "queue is full") {
		t.Errorf("429 error %q does not name the full queue", e.Error)
	}

	m := parseMetrics(t, ts.URL)
	if m["atpg_submit_rejected_total"] != 1 {
		t.Errorf("rejected counter %d, want 1", m["atpg_submit_rejected_total"])
	}
	if m["atpg_queue_depth"] != 2 {
		t.Errorf("queue depth %d, want 2", m["atpg_queue_depth"])
	}
}

// TestServiceChaosWatchdogFailsStuckJob: a running job whose campaign
// stops making progress is failed with an explanatory error within the
// watchdog budget — it must not pin its worker forever.
func TestServiceChaosWatchdogFailsStuckJob(t *testing.T) {
	s, err := New(t.TempDir(), Options{Workers: 1, StuckTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())
	// A campaign that hangs without a single fault attempt or
	// checkpoint, honoring only cancellation — the pathology the
	// watchdog exists for.
	s.testRunCampaign = func(ctx context.Context, j *job, ccfg campaign.Config) (*campaign.Result, error) {
		<-ctx.Done()
		return &campaign.Result{Interrupted: true}, nil
	}
	id, err := s.Submit(Spec{Netlist: benchText(t, 5, 3), MaxFaults: 4})
	if err != nil {
		t.Fatal(err)
	}
	waitJobs(t, s, time.Minute, func(st JobStatus) bool { return st.State.Terminal() })
	st, err := s.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != Failed {
		t.Fatalf("stuck job settled as %s, want failed", st.State)
	}
	if !strings.Contains(st.Error, "watchdog") {
		t.Errorf("stuck job error %q does not name the watchdog", st.Error)
	}
	if got := s.metrics.watchdogTrips.Load(); got != 1 {
		t.Errorf("watchdog trips %d, want 1", got)
	}

	// The worker is free again: a healthy job still completes. A fake
	// campaign keeps this phase independent of machine speed — a real
	// run's gaps between progress signals can exceed the deliberately
	// tight 100ms budget under the race detector.
	s.testRunCampaign = func(ctx context.Context, j *job, ccfg campaign.Config) (*campaign.Result, error) {
		return &campaign.Result{}, nil
	}
	id2, err := s.Submit(Spec{Netlist: benchText(t, 5, 3), MaxFaults: 4})
	if err != nil {
		t.Fatal(err)
	}
	waitJobs(t, s, time.Minute, func(st JobStatus) bool { return st.State.Terminal() })
	if st, _ := s.Status(id2); st.State != Done {
		t.Errorf("job after watchdog trip settled as %s (%s), want done", st.State, st.Error)
	}
}

// TestServiceChaosRestartQuarantine: after a crash that corrupted some
// job records and left temp droppings, a restart quarantines exactly
// the damaged jobs (failed, with the parse failure as the reason),
// recovers every healthy one, and sweeps the stale temp files.
func TestServiceChaosRestartQuarantine(t *testing.T) {
	dir := t.TempDir()
	s, err := New(dir, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	net := benchText(t, 5, 3)
	var ids []string
	for i := 0; i < 3; i++ {
		id, err := s.Submit(Spec{Netlist: net, MaxFaults: 4})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	waitJobs(t, s, time.Minute, func(st JobStatus) bool { return st.State.Terminal() })
	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	// The crash: one job.json torn mid-write, one terminal.json
	// replaced with garbage, temp files abandoned everywhere.
	jobPath := filepath.Join(dir, ids[0], "job.json")
	data, err := os.ReadFile(jobPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(jobPath, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, ids[1], "terminal.json"), []byte("\x00garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	stale := []string{
		filepath.Join(dir, "result.json.tmp"),
		filepath.Join(dir, ids[2], "job.json.tmp"),
	}
	for _, p := range stale {
		if err := os.WriteFile(p, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	s2, err := New(dir, Options{Workers: 2})
	if err != nil {
		t.Fatalf("restart failed on a partially damaged store: %v", err)
	}
	defer s2.Close(context.Background())
	waitJobs(t, s2, time.Minute, func(st JobStatus) bool { return st.State.Terminal() })

	for i, id := range ids {
		st, err := s2.Status(id)
		if err != nil {
			t.Fatalf("job %s lost in recovery: %v", id, err)
		}
		if i < 2 {
			if st.State != Failed || !st.Quarantined || !strings.Contains(st.Error, "quarantined") {
				t.Errorf("damaged job %s: state=%s quarantined=%v err=%q", id, st.State, st.Quarantined, st.Error)
			}
		} else {
			if st.State != Done || st.Result == nil {
				t.Errorf("healthy job %s recovered as %s, want done with result", id, st.State)
			}
		}
	}
	if got := s2.metrics.quarantined.Load(); got != 2 {
		t.Errorf("quarantined counter %d, want 2", got)
	}
	for _, p := range stale {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("stale temp file %s survived restart", p)
		}
	}
}

// TestServiceChaosDegradedCheckpointJob: a job whose every checkpoint
// write fails still runs to completion with the exact same verdicts as
// on a healthy disk — surfaced as degraded in the job status, the
// summary and the metrics, never as a failure.
func TestServiceChaosDegradedCheckpointJob(t *testing.T) {
	net := benchText(t, 6, 5)
	spec := Spec{Netlist: net, MaxFaults: 12, Retries: 1}

	runOn := func(fsys ioguard.FS) (JobStatus, *Server) {
		opts := Options{Workers: 1, CheckpointEvery: time.Nanosecond, FS: fsys}
		s, err := New(t.TempDir(), opts)
		if err != nil {
			t.Fatal(err)
		}
		id, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		waitJobs(t, s, time.Minute, func(st JobStatus) bool { return st.State.Terminal() })
		st, err := s.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		return st, s
	}

	healthy, hs := runOn(nil)
	defer hs.Close(context.Background())
	if healthy.State != Done || healthy.Degraded {
		t.Fatalf("healthy run: state=%s degraded=%v", healthy.State, healthy.Degraded)
	}

	ffs := ioguard.NewFaultFS(ioguard.OS,
		ioguard.Rule{Kind: "write", PathContains: "checkpoint.json", Mode: ioguard.ENOSPC})
	st, s := runOn(ffs)
	defer s.Close(context.Background())
	if st.State != Done {
		t.Fatalf("degraded run settled as %s (%s), want done", st.State, st.Error)
	}
	if ffs.Trips() == 0 {
		t.Fatal("no checkpoint write was ever attempted; test proves nothing")
	}
	if !st.Degraded || st.CheckpointFailures == 0 {
		t.Errorf("job status not degraded: degraded=%v failures=%d", st.Degraded, st.CheckpointFailures)
	}
	if st.Result == nil || !st.Result.Degraded || st.Result.CheckpointFailures == 0 {
		t.Errorf("summary not degraded: %+v", st.Result)
	}

	// Persistence trouble must not change a single verdict.
	a, b := *healthy.Result, *st.Result
	a.Degraded, b.Degraded = false, false
	a.CheckpointFailures, b.CheckpointFailures = 0, 0
	if a != b {
		t.Errorf("degraded summary %+v != healthy summary %+v", b, a)
	}

	if got := s.metrics.ckptFailures.Load(); got == 0 {
		t.Error("checkpoint failure counter never moved")
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	m := parseMetrics(t, ts.URL)
	if m["atpg_checkpoint_failures_total"] == 0 {
		t.Error("metrics do not expose checkpoint failures")
	}
	if m["atpg_jobs_degraded"] != 1 {
		t.Errorf("degraded-jobs gauge %d, want 1", m["atpg_jobs_degraded"])
	}
}

// TestServiceChaosKillMidRunResumesExactly: the service-level version
// of the campaign kill sweep — a job's filesystem dies mid-run (every
// write from some point on fails and the server goes down with it); a
// fresh server over the same directory must resume the job from its
// last durable checkpoint and finish with the same verdicts as an
// undisturbed run.
func TestServiceChaosKillMidRunResumesExactly(t *testing.T) {
	net := benchText(t, 6, 5)
	spec := Spec{Netlist: net, MaxFaults: 12, Retries: 1}

	// Baseline on a healthy disk.
	hs, err := New(t.TempDir(), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	hid, err := hs.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitJobs(t, hs, time.Minute, func(st JobStatus) bool { return st.State.Terminal() })
	ref, err := hs.Status(hid)
	if err != nil || ref.State != Done {
		t.Fatalf("baseline: %+v err=%v", ref, err)
	}
	hs.Close(context.Background())

	// The doomed run: after a handful of successful operations the
	// disk dies; the server is then torn down like a crashed process.
	dir := t.TempDir()
	ffs := ioguard.NewFaultFS(ioguard.OS, ioguard.Rule{From: 12})
	ffs.OnTrip(func(op int, r ioguard.Rule) { ffs.Kill() })
	s, err := New(dir, Options{Workers: 1, CheckpointEvery: time.Nanosecond, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	id, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitJobs(t, s, time.Minute, func(st JobStatus) bool { return st.State.Terminal() || ffs.Trips() > 0 })
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	s.Close(ctx)
	cancel()

	// Restart on the healed disk.
	s2, err := New(dir, Options{Workers: 1})
	if err != nil {
		t.Fatalf("restart after crash: %v", err)
	}
	defer s2.Close(context.Background())
	waitJobs(t, s2, time.Minute, func(st JobStatus) bool { return st.State.Terminal() })
	st, err := s2.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != Done {
		t.Fatalf("resumed job settled as %s (%s), want done", st.State, st.Error)
	}
	a, b := *ref.Result, *st.Result
	a.Resumed, b.Resumed = false, false
	a.Degraded, b.Degraded = false, false
	a.CheckpointFailures, b.CheckpointFailures = 0, 0
	if a != b {
		t.Errorf("resumed summary %+v != baseline %+v", b, a)
	}
}
