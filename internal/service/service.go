// Package service runs ATPG campaigns as a long-lived job service: a
// bounded worker pool drains a FIFO queue of submitted jobs, every job
// advances through the queued → running → done/failed/cancelled
// lifecycle, and all state that matters across a crash lives on disk
// under one directory per job. A restarted server rescans that
// directory, reloads finished jobs for status queries, and re-enqueues
// every job without a terminal marker — interrupted runs then resume
// from the fingerprinted campaign checkpoints they wrote on the way
// down, finishing with stats identical to a run that was never
// stopped.
//
// On-disk layout, one directory per job under the service root:
//
//	<root>/<id>/job.json          submitted spec, immutable
//	<root>/<id>/checkpoint.json   campaign checkpoint(s) while running
//	<root>/<id>/terminal.json     final state marker; absence = resumable
//	<root>/<id>/result.json       Summary, written for done jobs
//	<root>/<id>/vectors.vec       generated test sequences, done jobs
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"seqatpg/internal/campaign"
	"seqatpg/internal/fault"
	"seqatpg/internal/ioguard"
	"seqatpg/internal/rescache"
	"seqatpg/internal/sim"
)

// State is a job's position in the lifecycle FSM.
type State string

// Job lifecycle states. Queued and Running are live; the other three
// are terminal and recorded on disk in terminal.json.
const (
	Queued    State = "queued"
	Running   State = "running"
	Done      State = "done"
	Failed    State = "failed"
	Cancelled State = "cancelled"
)

// Terminal reports whether the state ends the lifecycle.
func (s State) Terminal() bool { return s == Done || s == Failed || s == Cancelled }

// transitions is the lifecycle FSM. Running → Queued is the drain
// edge: a server going down interrupts its running jobs (they
// checkpoint) and leaves them resumable for the next process.
// Queued → Done is the cache edge: a submission whose digest is
// already in the result cache completes without ever running.
var transitions = map[State]map[State]bool{
	Queued:  {Running: true, Cancelled: true, Done: true},
	Running: {Done: true, Failed: true, Cancelled: true, Queued: true},
}

// Service errors the HTTP layer maps to status codes.
var (
	ErrNotFound  = errors.New("service: no such job")
	ErrTerminal  = errors.New("service: job already finished")
	ErrDraining  = errors.New("service: server is draining")
	ErrNotDone   = errors.New("service: job has not completed")
	ErrQueueFull = errors.New("service: submission queue is full")
)

// Options tunes a Server.
type Options struct {
	// Workers is the worker-pool size; zero selects 2.
	Workers int
	// CheckpointEvery is the per-job periodic checkpoint gap; zero
	// selects the campaign default of 30 seconds.
	CheckpointEvery time.Duration
	// LogTail caps the per-job progress log kept in memory; zero
	// selects 50 lines.
	LogTail int
	// QueueCap bounds the pending-job queue: submissions past the cap
	// are rejected with ErrQueueFull (HTTP 429) instead of growing the
	// backlog without limit. Zero selects 256; negative disables the
	// cap.
	QueueCap int
	// StuckTimeout is the per-job watchdog budget: a running job whose
	// campaign makes no observable progress (no fault attempt and no
	// checkpoint activity) for this long is failed rather than left
	// hanging a worker forever. Zero disables the watchdog.
	StuckTimeout time.Duration
	// PredictBudgets derives each job's watchdog budget from its
	// predicted hardest fault instead of the flat StuckTimeout: the
	// budget becomes the time that fault needs at the observed
	// evaluation rate (with a 4x safety margin), never less than
	// StuckTimeout and never more than an hour. A job full of
	// predicted-hard faults legitimately goes long between observable
	// progress events; without this, raising -stuck-timeout for the
	// worst job penalizes hang detection on every easy one.
	PredictBudgets bool
	// Logf, when set, receives server-level log lines.
	Logf func(format string, args ...any)
	// FS is the filesystem used for all job-store persistence; nil
	// selects the real one. Fault-injection tests substitute an
	// ioguard.FaultFS.
	FS ioguard.FS
	// Cache, when set, memoizes finished job artifacts by content
	// digest: a submission whose digest is stored completes immediately
	// with artifacts byte-identical to the cold run that stored them,
	// and concurrent identical submissions collapse to one campaign
	// run. Checkpoint-seeded shard jobs bypass the cache (their results
	// carry Resumed and must not alias a fresh run's bytes).
	Cache *rescache.Cache
}

func (o Options) queueCap() int {
	switch {
	case o.QueueCap == 0:
		return 256
	case o.QueueCap < 0:
		return int(^uint(0) >> 1) // no cap
	default:
		return o.QueueCap
	}
}

// job is the in-memory record. Fields below the atomics are guarded by
// the server mutex; the atomics are written from campaign hooks on
// worker (and shard) goroutines while status snapshots read them.
type job struct {
	id      string
	spec    Spec
	created time.Time

	attempts     atomic.Int64
	ckptWrites   atomic.Int64
	ckptFailures atomic.Int64
	degraded     atomic.Bool
	pass         atomic.Int64 // highest pass index seen + 1
	runs         atomic.Int32 // times a worker of this process picked the job up
	cancelReq    atomic.Bool
	stuckReq     atomic.Bool // set by the watchdog before it cancels the run
	logs         logRing

	state       State
	started     time.Time
	finished    time.Time
	errMsg      string
	result      *Summary
	totalFaults int
	quarantined bool
	digest      string             // content address; empty = uncacheable
	cancel      context.CancelFunc // non-nil exactly while running

	// costEstimate and maxFaultCost are the job's predicted charged
	// effort and hardest single fault, in gate evaluations (see
	// Prepared). Immutable after submission/recovery; zero in records
	// from builds without prediction.
	costEstimate int64
	maxFaultCost int64
}

// JobStatus is the externally visible snapshot of one job.
type JobStatus struct {
	ID       string    `json:"id"`
	Name     string    `json:"name,omitempty"`
	State    State     `json:"state"`
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started"`
	Finished time.Time `json:"finished"`
	Error    string    `json:"error,omitempty"`
	// Live progress, fed from the campaign Hook/Log instrumentation.
	TotalFaults      int   `json:"total_faults,omitempty"`
	Attempts         int64 `json:"attempts"`
	Pass             int   `json:"pass"`
	CheckpointWrites int64 `json:"checkpoint_writes"`
	// Degraded reports that checkpoint persistence has failed at least
	// once for this job: compute continues, but an interruption now
	// loses more progress than CheckpointEvery promises.
	Degraded           bool  `json:"degraded,omitempty"`
	CheckpointFailures int64 `json:"checkpoint_failures,omitempty"`
	Quarantined        bool  `json:"quarantined,omitempty"`
	Shards             int   `json:"shards,omitempty"`
	Runs               int   `json:"runs,omitempty"` // diagnostics: pickups by this process
	// Digest is the job's content address in the result cache; it
	// doubles as the ETag of GET /result. Empty for uncacheable jobs.
	Digest string   `json:"digest,omitempty"`
	Log    []string `json:"log,omitempty"`
	Result *Summary `json:"result,omitempty"`
}

// Server is the job service: store, queue and worker pool.
type Server struct {
	dir  string
	opts Options
	fs   ioguard.FS

	mu     sync.Mutex
	cond   *sync.Cond
	jobs   map[string]*job
	order  []string // submission order, for listings
	queue  []string // pending job ids, FIFO
	seq    int
	closed bool

	ctx  context.Context
	stop context.CancelFunc
	wg   sync.WaitGroup

	metrics counters
	// perfEvals/perfNanos accumulate the charged effort and wall-clock
	// run time of cold-run completed jobs; their ratio is the measured
	// evaluation rate that calibrates drain estimates and predicted
	// watchdog budgets. Cache hits are excluded — they finish in
	// microseconds and would inflate the rate without bound.
	perfEvals atomic.Int64
	perfNanos atomic.Int64
	// flight collapses concurrent runs of the same digest; only
	// consulted when a result cache is configured.
	flight rescache.Singleflight

	// testJobSettled, when set (tests only), fires after a job leaves
	// the Running state for any reason.
	testJobSettled func(id string, st State)
	// testRunCampaign, when set (tests only), replaces the campaign
	// execution inside runJob — watchdog tests hang here instead of
	// engineering a genuinely stuck search.
	testRunCampaign func(ctx context.Context, j *job, ccfg campaign.Config) (*campaign.Result, error)
}

// New opens (or creates) the service directory, recovers every job
// recorded in it, and starts the worker pool. Jobs without a terminal
// marker — queued or interrupted when the previous process died — are
// re-enqueued in id order and resume from their checkpoints.
func New(dir string, opts Options) (*Server, error) {
	if opts.Workers <= 0 {
		opts.Workers = 2
	}
	if opts.LogTail <= 0 {
		opts.LogTail = 50
	}
	fsys := opts.FS
	if fsys == nil {
		fsys = ioguard.OS
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: job directory: %w", err)
	}
	s := &Server{
		dir:  dir,
		opts: opts,
		fs:   fsys,
		jobs: map[string]*job{},
	}
	s.cond = sync.NewCond(&s.mu)
	s.ctx, s.stop = context.WithCancel(context.Background())
	s.sweepStaleTemp()
	if err := s.recover(); err != nil {
		return nil, err
	}
	s.wg.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// jobFile is the immutable submission record.
type jobFile struct {
	ID      string    `json:"id"`
	Spec    Spec      `json:"spec"`
	Created time.Time `json:"created"`
	// Digest is the job's content address, recorded so ETags and cache
	// stores survive a restart; absent in records from older builds.
	Digest string `json:"digest,omitempty"`
	// CostEstimate and MaxFaultCost are the job's predicted effort (see
	// Prepared), recorded so drain estimates and predicted watchdog
	// budgets survive a restart without re-extracting features; absent
	// in records from older builds (treated as unpredicted).
	CostEstimate int64 `json:"cost_estimate,omitempty"`
	MaxFaultCost int64 `json:"max_fault_cost,omitempty"`
}

// terminalFile marks a finished lifecycle; its absence after a restart
// is what makes a job resumable.
type terminalFile struct {
	State    State     `json:"state"`
	Error    string    `json:"error,omitempty"`
	Finished time.Time `json:"finished"`
}

// recover rescans the store. Damage to one job's files — a torn
// job.json, a terminal marker that stopped halfway, a done job whose
// result.json is gone — quarantines that job (terminal Failed, with
// the parse failure as the reason, its files left untouched for
// inspection) and never blocks recovery of the healthy jobs around it.
func (s *Server) recover() error {
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("service: scan %s: %w", s.dir, err)
	}
	var recovered []*job
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		j, ok := s.recoverJob(e.Name())
		if !ok {
			continue
		}
		recovered = append(recovered, j)
		if n := idNumber(j.id); n >= s.seq {
			s.seq = n + 1
		}
	}
	sort.Slice(recovered, func(i, k int) bool { return recovered[i].id < recovered[k].id })
	for _, j := range recovered {
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		if j.state == Queued {
			s.queue = append(s.queue, j.id)
			s.logf("recovered job %s (resumable)", j.id)
		}
	}
	return nil
}

// recoverJob loads one job directory, quarantining on any damage. The
// false return means the directory is not a job at all.
func (s *Server) recoverJob(name string) (*job, bool) {
	var jf jobFile
	if err := readJSON(s.fs, filepath.Join(s.dir, name, "job.json"), &jf); err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, false // foreign directory; leave it alone
		}
		return s.quarantine(name, Spec{}, fmt.Sprintf("job.json: %v", err)), true
	}
	if jf.ID != name {
		return s.quarantine(name, jf.Spec, fmt.Sprintf("directory holds job %q", jf.ID)), true
	}
	j := &job{id: jf.ID, spec: jf.Spec, created: jf.Created, state: Queued, digest: jf.Digest,
		costEstimate: jf.CostEstimate, maxFaultCost: jf.MaxFaultCost}
	j.logs.max = s.opts.LogTail
	var tf terminalFile
	switch err := readJSON(s.fs, filepath.Join(s.dir, j.id, "terminal.json"), &tf); {
	case err == nil:
		if !tf.State.Terminal() {
			return s.quarantine(name, jf.Spec, fmt.Sprintf("terminal marker with live state %q", tf.State)), true
		}
		j.state = tf.State
		j.errMsg = tf.Error
		j.finished = tf.Finished
		if j.state == Done {
			var sum Summary
			if err := readJSON(s.fs, filepath.Join(s.dir, j.id, "result.json"), &sum); err != nil {
				return s.quarantine(name, jf.Spec, fmt.Sprintf("done without result: %v", err)), true
			}
			j.result = &sum
		}
	case errors.Is(err, os.ErrNotExist):
		// Queued or interrupted mid-run: resumable.
	default:
		return s.quarantine(name, jf.Spec, fmt.Sprintf("terminal.json: %v", err)), true
	}
	return j, true
}

// quarantine parks a damaged job as terminal Failed without touching
// its files: the quarantine is recomputed (and logged) on every
// restart until an operator repairs or removes the directory.
func (s *Server) quarantine(id string, spec Spec, reason string) *job {
	j := &job{id: id, spec: spec, state: Failed, quarantined: true,
		errMsg: "quarantined: " + reason, finished: time.Now()}
	j.logs.max = s.opts.LogTail
	s.metrics.quarantined.Add(1)
	s.logf("job %s quarantined: %s", id, reason)
	return j
}

// sweepStaleTemp removes *.tmp files a mid-write crash left in the
// store root or a job directory. They are never valid state — every
// writer stages through a temp name and renames — so a survivor is
// pure garbage that would otherwise accumulate forever.
func (s *Server) sweepStaleTemp() {
	for _, pat := range []string{
		filepath.Join(s.dir, "*.tmp"),
		filepath.Join(s.dir, "*", "*.tmp"),
	} {
		matches, err := s.fs.Glob(pat)
		if err != nil {
			continue
		}
		for _, m := range matches {
			if err := s.fs.Remove(m); err == nil {
				s.logf("removed stale temp file %s", m)
			}
		}
	}
}

func idNumber(id string) int {
	n, err := strconv.Atoi(strings.TrimPrefix(id, "j"))
	if err != nil {
		return -1
	}
	return n
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// DefaultEvalRate is the deterministic prior for the per-worker
// evaluation rate (gate evaluations per second) used until the first
// cold job completes and a measured rate takes over.
const DefaultEvalRate = 2e6

// maxDrain bounds a drain estimate; past a day the number carries no
// more information for a Retry-After hint and only risks overflow.
const maxDrain = 24 * time.Hour

// maxWatchBudget caps a prediction-derived watchdog budget: a
// prediction gone wild must stretch hang detection, not disable it.
const maxWatchBudget = time.Hour

// EvalRate reports the pool's gate-evaluation throughput per worker:
// measured from completed cold runs once there are any, the
// DefaultEvalRate prior before that.
func (s *Server) EvalRate() float64 {
	evals, nanos := s.perfEvals.Load(), s.perfNanos.Load()
	if evals <= 0 || nanos <= 0 {
		return DefaultEvalRate
	}
	return float64(evals) / (float64(nanos) / float64(time.Second))
}

// pendingCostLocked sums the predicted effort still ahead of the
// worker pool: every queued and running job's estimate in full (the
// finished fraction of a running job is unknown, so the whole estimate
// is the safe upper bound). Jobs without an estimate contribute
// nothing. s.mu held.
func (s *Server) pendingCostLocked() int64 {
	var total int64
	for _, j := range s.jobs {
		if j.state != Queued && j.state != Running {
			continue
		}
		if est := j.costEstimate; est > 0 {
			if total > int64(^uint64(0)>>1)-est {
				return int64(^uint64(0) >> 1)
			}
			total += est
		}
	}
	return total
}

// DrainEstimate predicts how long the current backlog — queued plus
// running jobs — needs to drain: predicted pending evaluations over
// the pool's evaluation rate. Queue-full 429 Retry-After hints are
// derived from this, so a client backs off proportionally to what is
// actually queued instead of a constant.
func (s *Server) DrainEstimate() time.Duration {
	s.mu.Lock()
	cost := s.pendingCostLocked()
	s.mu.Unlock()
	if cost <= 0 {
		return 0
	}
	workers := s.opts.Workers
	if workers < 1 {
		workers = 1
	}
	secs := float64(cost) / (s.EvalRate() * float64(workers))
	if secs >= maxDrain.Seconds() {
		return maxDrain
	}
	return time.Duration(secs * float64(time.Second))
}

// watchBudget is the watchdog budget for one job: the flat
// StuckTimeout, or — with PredictBudgets — the larger of it and the
// time the job's predicted-hardest fault needs at the current
// evaluation rate with a 4x safety margin, capped at maxWatchBudget.
// Prediction may stretch the budget, never shrink it below the
// configured floor.
func (s *Server) watchBudget(j *job) time.Duration {
	budget := s.opts.StuckTimeout
	if !s.opts.PredictBudgets || j.maxFaultCost <= 0 {
		return budget
	}
	secs := 4 * float64(j.maxFaultCost) / s.EvalRate()
	pred := maxWatchBudget
	if secs < maxWatchBudget.Seconds() {
		pred = time.Duration(secs * float64(time.Second))
	}
	if pred > budget {
		budget = pred
	}
	return budget
}

// observePrediction folds a cold-run completion into calibration and
// accuracy accounting: the measured evaluation rate, and whether the
// prediction over- or under-estimated the job's actual charged effort.
func (s *Server) observePrediction(j *job, sum *Summary) {
	if d := time.Since(j.started); d > 0 && sum.Effort > 0 {
		s.perfEvals.Add(sum.Effort)
		s.perfNanos.Add(int64(d))
	}
	if j.costEstimate <= 0 {
		return
	}
	s.metrics.predictedEvals.Add(j.costEstimate)
	if sum.Effort > j.costEstimate {
		s.metrics.predictOverruns.Add(1)
	} else {
		s.metrics.predictUnderruns.Add(1)
	}
}

// Submit validates the spec (including parsing the netlist), persists
// the job and enqueues it. The returned id is stable across restarts.
// When the result cache holds the spec's digest, the job completes at
// submission — it never occupies the queue or a worker, and a full
// queue does not reject it.
func (s *Server) Submit(spec Spec) (string, error) {
	p, err := Prepare(spec)
	if err != nil {
		return "", err
	}
	digest := specDigest(spec, p)
	var hit map[string][]byte
	if s.opts.Cache != nil && digest != "" {
		hit, _ = s.opts.Cache.Get(digest)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return "", ErrDraining
	}
	if hit == nil && len(s.queue) >= s.opts.queueCap() {
		s.metrics.rejected.Add(1)
		n := len(s.queue)
		s.mu.Unlock()
		return "", fmt.Errorf("%w (%d pending)", ErrQueueFull, n)
	}
	id := fmt.Sprintf("j%06d", s.seq)
	j := &job{id: id, spec: spec, created: time.Now(), state: Queued, digest: digest,
		costEstimate: p.CostEstimate, maxFaultCost: p.MaxFaultCost}
	j.logs.max = s.opts.LogTail
	if err := s.writeJSON(filepath.Join(s.dir, id, "job.json"),
		jobFile{ID: id, Spec: spec, Created: j.created, Digest: digest,
			CostEstimate: p.CostEstimate, MaxFaultCost: p.MaxFaultCost}); err != nil {
		s.mu.Unlock()
		return "", err
	}
	s.seq++
	s.jobs[id] = j
	s.order = append(s.order, id)
	if hit == nil {
		s.queue = append(s.queue, id)
		s.cond.Signal()
		s.mu.Unlock()
		s.logf("job %s submitted (%s)", id, spec.describe())
		return id, nil
	}
	s.mu.Unlock()
	s.logf("job %s submitted (%s)", id, spec.describe())
	if err := s.installFromCache(j, hit); err != nil {
		// An unusable hit (the entry was fine at Get, the install
		// failed) degrades to the cold path, never to a failed job.
		s.logf("job %s: cached result unusable, queued for a cold run: %v", id, err)
		s.mu.Lock()
		s.queue = append(s.queue, id)
		s.cond.Signal()
		s.mu.Unlock()
	}
	return id, nil
}

// specDigest derives a submission's content address, or "" for
// uncacheable submissions. Checkpoint-seeded shard jobs are excluded:
// their results carry Resumed and would alias the fresh run's digest
// with different bytes. For shard-selector jobs the digest covers the
// prepared fault sublist and normalized config, so any (index, count)
// pair selecting the same sublist shares an entry; for locally
// sharded jobs the shard count is part of the mode because the merged
// test order depends on it.
func specDigest(spec Spec, p *Prepared) string {
	if len(spec.Checkpoint) > 0 {
		return ""
	}
	mode := "job-seq"
	switch {
	case spec.Shard != nil:
		mode = "job-shard"
	case p.Shards > 1:
		mode = fmt.Sprintf("job-sharded-%d", p.Shards)
	}
	return rescache.Digest(p.Circuit, p.Campaign, p.Faults, mode)
}

// cacheArtifacts lists the files a done job persists — exactly what a
// cache entry must replay for a hit to be indistinguishable from the
// cold run that stored it.
// The terminal marker is last: installFromCache writes in this order,
// so a crash mid-install never leaves a Done marker ahead of the
// artifacts it promises.
func cacheArtifacts(j *job) []string {
	names := []string{"result.json", "vectors.vec"}
	if j.spec.Shard != nil {
		names = append(names, "merge.json")
	}
	return append(names, "terminal.json")
}

// installFromCache replays a cache entry into the job's directory
// verbatim and completes the job. The artifacts — result, vectors,
// shard wire result and even the terminal marker — are the exact
// bytes the cold run wrote, which is the cache's contract; the
// in-memory finish time comes from the cached marker so a restart
// recovers the same view.
func (s *Server) installFromCache(j *job, files map[string][]byte) error {
	var sum Summary
	if err := json.Unmarshal(files["result.json"], &sum); err != nil {
		return fmt.Errorf("cached result.json: %w", err)
	}
	var tf terminalFile
	if err := json.Unmarshal(files["terminal.json"], &tf); err != nil {
		return fmt.Errorf("cached terminal.json: %w", err)
	}
	if tf.State != Done {
		return fmt.Errorf("cached terminal state is %q, want %q", tf.State, Done)
	}
	for _, name := range cacheArtifacts(j) {
		data, ok := files[name]
		if !ok {
			return fmt.Errorf("cache entry lacks %s", name)
		}
		if err := ioguard.WriteFileDurable(s.fs, filepath.Join(s.dir, j.id, name), data, 0o644); err != nil {
			return fmt.Errorf("install cached %s: %w", name, err)
		}
	}
	s.mu.Lock()
	s.transitionMemLocked(j, Done)
	j.result = &sum
	j.errMsg = ""
	j.finished = tf.Finished
	j.totalFaults = sum.Total
	j.cancel = nil
	s.mu.Unlock()
	s.metrics.addResult(&sum)
	s.metrics.jobsDone.Add(1)
	s.logf("job %s: done (result cache hit %.12s)", j.id, j.digest)
	s.settled(j.id, Done)
	return nil
}

// cacheStore publishes a freshly finished job's artifacts to the
// result cache. Only pristine results are stored: a resumed, degraded
// or interrupted run reaches the same verdicts but not the same bytes
// as a cold run, and byte-identity is the cache's contract. The bytes
// are read back from the job directory, so what the cache replays is
// literally what this job serves.
func (s *Server) cacheStore(j *job, res *campaign.Result) {
	if s.opts.Cache == nil || j.digest == "" || res.Resumed || res.Degraded || res.Interrupted {
		return
	}
	files := map[string][]byte{}
	for _, name := range cacheArtifacts(j) {
		data, err := s.fs.ReadFile(filepath.Join(s.dir, j.id, name))
		if err != nil {
			s.logf("job %s: result not cached, %s unreadable: %v", j.id, name, err)
			return
		}
		files[name] = data
	}
	if err := s.opts.Cache.Put(j.digest, files); err != nil {
		s.logf("job %s: result cache store failed: %v", j.id, err)
	}
}

// requeue returns parked singleflight followers to the queue once
// their leader's flight ended: each one re-enters runJob and either
// hits the freshly stored cache entry or becomes the next leader.
func (s *Server) requeue(ids []string) {
	if len(ids) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range ids {
		j, ok := s.jobs[id]
		if !ok || j.state != Queued {
			continue // cancelled while parked
		}
		s.queue = append(s.queue, id)
		s.cond.Signal()
	}
}

// Cancel stops a job: a queued job goes terminal immediately, a
// running one has its campaign interrupted and finishes as cancelled
// at the next fault boundary. Cancelling a terminal job is an error.
func (s *Server) Cancel(id string) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return ErrNotFound
	}
	switch j.state {
	case Queued:
		s.transitionLocked(j, Cancelled, "cancelled while queued")
		s.mu.Unlock()
		s.settled(j.id, Cancelled)
		return nil
	case Running:
		j.cancelReq.Store(true)
		j.cancel()
		s.mu.Unlock()
		return nil
	default:
		s.mu.Unlock()
		return fmt.Errorf("%w: %s is %s", ErrTerminal, id, j.state)
	}
}

// Status returns a snapshot of one job.
func (s *Server) Status(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, ErrNotFound
	}
	return s.statusLocked(j, true), nil
}

// List returns snapshots of every job in submission order, without
// the per-job log tail.
func (s *Server) List() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.statusLocked(s.jobs[id], false))
	}
	return out
}

func (s *Server) statusLocked(j *job, withLog bool) JobStatus {
	st := JobStatus{
		ID:                 j.id,
		Name:               j.spec.Name,
		State:              j.state,
		Created:            j.created,
		Started:            j.started,
		Finished:           j.finished,
		Error:              j.errMsg,
		TotalFaults:        j.totalFaults,
		Attempts:           j.attempts.Load(),
		Pass:               int(j.pass.Load()),
		CheckpointWrites:   j.ckptWrites.Load(),
		Degraded:           j.degraded.Load(),
		CheckpointFailures: j.ckptFailures.Load(),
		Quarantined:        j.quarantined,
		Shards:             j.spec.shardCount(),
		Runs:               int(j.runs.Load()),
		Digest:             j.digest,
		Result:             j.result,
	}
	if withLog {
		st.Log = j.logs.tail()
	}
	return st
}

// Close drains the server: no new submissions, idle workers exit, and
// running campaigns are interrupted so they write their checkpoints
// and park as resumable. Queued jobs stay queued on disk. Close
// returns when every worker has exited or ctx expires.
func (s *Server) Close(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.stop()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.logf("drained")
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: drain: %w", context.Cause(ctx))
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		id := s.queue[0]
		s.queue = s.queue[1:]
		j := s.jobs[id]
		if j.state != Queued {
			s.mu.Unlock() // cancelled while waiting in the queue
			continue
		}
		ctx, cancel := context.WithCancel(s.ctx)
		j.state = Running
		j.started = time.Now()
		j.cancel = cancel
		j.runs.Add(1)
		s.mu.Unlock()
		s.runJob(ctx, j)
		cancel()
	}
}

// runJob executes one job's campaign and moves it to its next state.
// With a result cache configured, the run is guarded twice: a cache
// hit completes the job without computing, and a digest already being
// computed by another worker parks this job as a singleflight
// follower — it re-enters the queue when the leader's flight ends and
// then consumes the cached result.
func (s *Server) runJob(ctx context.Context, j *job) {
	if s.opts.Cache != nil && j.digest != "" {
		if files, ok := s.opts.Cache.Get(j.digest); ok {
			if err := s.installFromCache(j, files); err == nil {
				return
			} else {
				s.logf("job %s: cached result unusable, running cold: %v", j.id, err)
			}
		}
		if !s.flight.Begin(j.digest, j.id) {
			s.mu.Lock()
			s.transitionMemLocked(j, Queued)
			j.cancel = nil
			s.mu.Unlock()
			s.logf("job %s: identical campaign %.12s already in flight, parked for its result", j.id, j.digest)
			s.settled(j.id, Queued)
			return
		}
		defer func() { s.requeue(s.flight.End(j.digest)) }()
	}

	p, err := Prepare(j.spec)
	if err != nil {
		s.finishJob(j, Failed, err.Error(), nil)
		return
	}
	s.mu.Lock()
	j.totalFaults = len(p.Faults)
	s.mu.Unlock()

	ccfg := p.Campaign
	ccfg.CheckpointPath = filepath.Join(s.dir, j.id, "checkpoint.json")
	ccfg.CheckpointEvery = s.opts.CheckpointEvery
	ccfg.Resume = true // picks up the checkpoint if one exists, fresh start otherwise
	s.seedCheckpoint(j, ccfg.CheckpointPath)
	ccfg.FS = s.fs
	ccfg.Hook = func(i int, f fault.Fault) {
		j.attempts.Add(1)
		s.metrics.attempts.Add(1)
	}
	ccfg.OnCheckpoint = func() {
		j.ckptWrites.Add(1)
		s.metrics.ckptWrites.Add(1)
	}
	ccfg.OnCheckpointFailure = func(error) {
		j.ckptFailures.Add(1)
		j.degraded.Store(true)
		s.metrics.ckptFailures.Add(1)
	}
	ccfg.Log = s.jobLogger(j)

	wbudget := s.watchBudget(j)
	if s.opts.StuckTimeout > 0 {
		stopWatch := s.watchJob(ctx, j, wbudget)
		defer stopWatch()
	}

	var res *campaign.Result
	switch {
	case s.testRunCampaign != nil:
		res, err = s.testRunCampaign(ctx, j, ccfg)
	case p.Shards > 1:
		res, err = campaign.RunSharded(ctx, p.Circuit, p.Faults, ccfg, p.Shards)
	default:
		res, err = campaign.Run(ctx, p.Circuit, p.Faults, ccfg)
	}
	if res != nil && res.Degraded {
		j.degraded.Store(true)
	}
	stuck := j.stuckReq.Load()
	switch {
	case err != nil && stuck, err == nil && res.Interrupted && stuck:
		// The watchdog tripped: fail the job rather than hang its
		// worker forever. Checkpoints stay on disk — a resubmitted or
		// restarted run resumes past the progress that was made.
		s.finishJob(j, Failed, fmt.Sprintf("watchdog: no campaign progress within %v", wbudget), nil)
	case err != nil:
		s.finishJob(j, Failed, err.Error(), nil)
	case res.Interrupted && j.cancelReq.Load():
		s.removeCheckpoints(j)
		s.finishJob(j, Cancelled, "cancelled while running", nil)
	case res.Interrupted:
		// Server drain: the campaign checkpointed; park the job as
		// resumable (no terminal marker on disk) for the next process.
		s.mu.Lock()
		s.transitionMemLocked(j, Queued)
		j.cancel = nil
		s.mu.Unlock()
		s.logf("job %s interrupted by drain, checkpointed", j.id)
		s.settled(j.id, Queued)
	default:
		sum := NewSummary(res)
		if err := s.persistResult(j, res, &sum); err != nil {
			s.finishJob(j, Failed, err.Error(), nil)
			return
		}
		s.metrics.addResult(&sum)
		s.observePrediction(j, &sum)
		s.finishJob(j, Done, "", &sum)
		s.cacheStore(j, res)
	}
}

// watchJob is the per-job stuck watchdog: while the job runs, it
// samples the observable progress counters (fault attempts plus
// checkpoint activity, successes and failures alike) and, if nothing
// moved for the budget (see watchBudget), marks the job stuck and
// cancels its campaign. runJob then fails the job — a pathological
// search that stopped advancing surfaces as an error with a reason,
// instead of silently pinning a worker forever. Returns the stop
// function.
func (s *Server) watchJob(ctx context.Context, j *job, budget time.Duration) func() {
	progress := func() int64 {
		return j.attempts.Load() + j.ckptWrites.Load() + j.ckptFailures.Load()
	}
	done := make(chan struct{})
	go func() {
		tick := budget / 4
		if tick < 10*time.Millisecond {
			tick = 10 * time.Millisecond
		}
		t := time.NewTicker(tick)
		defer t.Stop()
		last, lastChange := progress(), time.Now()
		for {
			select {
			case <-done:
				return
			case <-ctx.Done():
				return
			case <-t.C:
				if p := progress(); p != last {
					last, lastChange = p, time.Now()
					continue
				}
				if time.Since(lastChange) >= budget {
					j.stuckReq.Store(true)
					s.metrics.watchdogTrips.Add(1)
					s.logf("job %s: watchdog: no progress for %v, interrupting", j.id, budget)
					j.cancel()
					return
				}
			}
		}
	}()
	return func() { close(done) }
}

// jobLogger feeds campaign progress lines into the job's ring buffer
// and tracks the highest pass seen (shards report independently; the
// snapshot shows the furthest one).
func (s *Server) jobLogger(j *job) func(format string, args ...any) {
	return func(format string, args ...any) {
		line := fmt.Sprintf(format, args...)
		if k := strings.Index(line, "campaign: pass "); k >= 0 {
			rest := line[k+len("campaign: pass "):]
			if m := strings.IndexByte(rest, ':'); m > 0 {
				if p, err := strconv.Atoi(rest[:m]); err == nil {
					for {
						cur := j.pass.Load()
						if int64(p+1) <= cur || j.pass.CompareAndSwap(cur, int64(p+1)) {
							break
						}
					}
				}
			}
		}
		j.logs.add(line)
		s.logf("job %s: %s", j.id, line)
	}
}

// finishJob moves a job to a terminal state and records the marker on
// disk. A marker write failure is logged but does not resurrect the
// job: the in-memory state stays authoritative for this process, and
// the worst post-crash consequence is one spurious resume.
func (s *Server) finishJob(j *job, st State, errMsg string, sum *Summary) {
	s.mu.Lock()
	s.transitionLocked(j, st, errMsg)
	j.result = sum
	j.cancel = nil
	s.mu.Unlock()
	s.settled(j.id, st)
}

// transitionLocked applies a terminal FSM edge, persists the marker
// and updates the per-state counters. Illegal edges are programming
// errors and panic loudly rather than corrupting the store.
func (s *Server) transitionLocked(j *job, st State, errMsg string) {
	s.transitionMemLocked(j, st)
	j.errMsg = errMsg
	j.finished = time.Now()
	if err := s.writeJSON(filepath.Join(s.dir, j.id, "terminal.json"),
		terminalFile{State: st, Error: errMsg, Finished: j.finished}); err != nil {
		s.logf("job %s: terminal marker: %v", j.id, err)
	}
	switch st {
	case Done:
		s.metrics.jobsDone.Add(1)
	case Failed:
		s.metrics.jobsFailed.Add(1)
	case Cancelled:
		s.metrics.jobsCancelled.Add(1)
	}
	s.logf("job %s: %s", j.id, st)
}

func (s *Server) transitionMemLocked(j *job, st State) {
	if !transitions[j.state][st] {
		panic(fmt.Sprintf("service: illegal transition %s -> %s for job %s", j.state, st, j.id))
	}
	j.state = st
}

func (s *Server) settled(id string, st State) {
	if s.testJobSettled != nil {
		s.testJobSettled(id, st)
	}
}

// seedCheckpoint installs a coordinator-shipped checkpoint as the
// job's starting state, so a re-dispatched shard resumes mid-shard on
// this worker instead of restarting from zero. A checkpoint already on
// disk wins — it is this worker's own (newer or equal) progress — and
// a payload that fails validation is skipped with a log line: the
// campaign then simply starts fresh, which is always sound.
func (s *Server) seedCheckpoint(j *job, path string) {
	if len(j.spec.Checkpoint) == 0 {
		return
	}
	if _, err := s.fs.ReadFile(path); err == nil {
		return
	}
	if err := campaign.CheckCheckpointBytes(j.spec.Checkpoint); err != nil {
		s.logf("job %s: seeded checkpoint rejected, starting fresh: %v", j.id, err)
		return
	}
	if err := ioguard.WriteFileDurable(s.fs, path, j.spec.Checkpoint, 0o644); err != nil {
		s.logf("job %s: could not install seeded checkpoint, starting fresh: %v", j.id, err)
		return
	}
	s.logf("job %s: resuming from coordinator-shipped checkpoint (%d bytes)", j.id, len(j.spec.Checkpoint))
}

// persistResult durably writes result.json and the generated vectors.
// Shard jobs additionally persist merge.json — the full wire-encoded
// campaign Result the /shard-result endpoint serves for coordinator
// merging (the Summary is too lossy to merge from).
func (s *Server) persistResult(j *job, res *campaign.Result, sum *Summary) error {
	if err := s.writeJSON(filepath.Join(s.dir, j.id, "result.json"), sum); err != nil {
		return err
	}
	if j.spec.Shard != nil {
		data, err := campaign.EncodeResult(res)
		if err != nil {
			return fmt.Errorf("service: encode shard result: %w", err)
		}
		if err := ioguard.WriteFileDurable(s.fs, filepath.Join(s.dir, j.id, "merge.json"), data, 0o644); err != nil {
			return fmt.Errorf("service: persist shard result: %w", err)
		}
	}
	var buf bytes.Buffer
	if err := sim.WriteVectors(&buf, res.Tests); err != nil {
		return err
	}
	return ioguard.WriteFileDurable(s.fs, filepath.Join(s.dir, j.id, "vectors.vec"), buf.Bytes(), 0o644)
}

// removeCheckpoints drops the job's checkpoint file(s) — plain,
// per-shard and per-generation — once the job is terminal and can
// never resume.
func (s *Server) removeCheckpoints(j *job) {
	matches, _ := s.fs.Glob(filepath.Join(s.dir, j.id, "checkpoint.json*"))
	for _, m := range matches {
		s.fs.Remove(m)
	}
}

// logRing keeps the newest max progress lines.
type logRing struct {
	mu    sync.Mutex
	max   int
	lines []string
}

func (r *logRing) add(line string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.lines = append(r.lines, line)
	if over := len(r.lines) - r.max; over > 0 {
		r.lines = append(r.lines[:0:0], r.lines[over:]...)
	}
}

func (r *logRing) tail() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.lines...)
}

// writeJSON durably replaces path with v as indented JSON: staged
// through a temp file, fsynced, renamed over the target, parent
// directory fsynced — what a restarted process reads back is either
// the old version or the new one, never a torn mix, even across power
// loss.
func (s *Server) writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		return fmt.Errorf("service: encode %s: %w", filepath.Base(path), err)
	}
	data = append(data, '\n')
	if err := ioguard.WriteFileDurable(s.fs, path, data, 0o644); err != nil {
		return fmt.Errorf("service: %w", err)
	}
	return nil
}

func readJSON(fsys ioguard.FS, path string, v any) error {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	return nil
}
