package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"seqatpg/internal/campaign"
	"seqatpg/internal/sim"
)

func postJob(t *testing.T, base string, spec Spec) string {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit %q: status %d, body %v", spec.Name, resp.StatusCode, out)
	}
	return out["id"]
}

func getStatus(t *testing.T, base, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s: %d", id, resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitStatus polls a job over HTTP until pred holds.
func waitStatus(t *testing.T, base, id string, deadline time.Duration, what string, pred func(JobStatus) bool) JobStatus {
	t.Helper()
	stop := time.Now().Add(deadline)
	for {
		st := getStatus(t, base, id)
		if pred(st) {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job %s went terminal (%s, %q) while waiting for %s: %+v", id, st.State, st.Error, what, st)
		}
		if time.Now().After(stop) {
			t.Fatalf("job %s never reached %s: %+v", id, what, st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func getResult(t *testing.T, base, id string) Summary {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result %s: status %d", id, resp.StatusCode)
	}
	var sum Summary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	return sum
}

// TestServeEndToEndRestartResume is the acceptance scenario: three jobs
// on a two-worker server (one sharded, one on a retimed circuit), one
// cancelled mid-run, the server killed while the retimed job is
// running, and a second server on the same directory that resumes the
// interrupted job from its checkpoint — finishing with stats identical
// to a run that was never stopped.
func TestServeEndToEndRestartResume(t *testing.T) {
	dir := t.TempDir()
	srv1, err := New(dir, Options{Workers: 2, CheckpointEvery: time.Millisecond, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())

	// The long-running kill target: a retimed circuit, the paper's hard
	// workload. Submitted first so a worker picks it up immediately.
	specB := Spec{
		Name:        "retimed-kill-target",
		Netlist:     retimedBenchText(t, 9, 12, 2),
		FaultBudget: 20_000,
		Retries:     3,
	}
	// The cancel target: also retimed, so it reliably runs long enough
	// to be caught mid-run.
	specC := Spec{
		Name:        "cancel-target",
		Netlist:     retimedBenchText(t, 8, 7, 2),
		FaultBudget: 20_000,
		Retries:     1,
	}
	// A fast sharded job that completes before the kill.
	specA := Spec{
		Name:        "sharded-fast",
		Netlist:     benchText(t, 7, 4),
		FaultBudget: 200_000,
		MaxFaults:   40,
		Shards:      2,
	}
	idB := postJob(t, ts1.URL, specB)
	idC := postJob(t, ts1.URL, specC)
	idA := postJob(t, ts1.URL, specA)

	// Cancel C once it is demonstrably mid-run.
	waitStatus(t, ts1.URL, idC, time.Minute, "running with progress",
		func(st JobStatus) bool { return st.State == Running && st.Attempts >= 1 })
	resp, err := http.Post(ts1.URL+"/jobs/"+idC+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel %s: status %d", idC, resp.StatusCode)
	}
	stop := time.Now().Add(time.Minute)
	for getStatus(t, ts1.URL, idC).State != Cancelled {
		if time.Now().After(stop) {
			t.Fatalf("job %s not cancelled: %+v", idC, getStatus(t, ts1.URL, idC))
		}
		time.Sleep(2 * time.Millisecond)
	}
	if m, _ := filepath.Glob(filepath.Join(dir, idC, "checkpoint.json*")); len(m) != 0 {
		t.Errorf("cancelled job kept checkpoints %v", m)
	}

	// A runs on the freed worker and completes; its vectors round-trip
	// through the vectors endpoint. (The reference comparison happens
	// after the kill, so the CPU it burns cannot delay the kill gate.)
	stA := waitStatus(t, ts1.URL, idA, 2*time.Minute, "done",
		func(st JobStatus) bool { return st.State == Done })
	pA, err := Prepare(specA)
	if err != nil {
		t.Fatal(err)
	}
	vresp, err := http.Get(ts1.URL + "/jobs/" + idA + "/vectors")
	if err != nil {
		t.Fatal(err)
	}
	seqs, err := sim.ReadVectors(vresp.Body, len(pA.Circuit.PIs))
	vresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != stA.Result.Tests {
		t.Errorf("vectors endpoint served %d sequences, result says %d", len(seqs), stA.Result.Tests)
	}

	// Kill the server while B is mid-run with at least one checkpoint
	// on disk.
	waitStatus(t, ts1.URL, idB, 2*time.Minute, "checkpointed progress",
		func(st JobStatus) bool { return st.State == Running && st.CheckpointWrites >= 1 && st.Attempts >= 3 })
	ts1.Close()
	dctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	if err := srv1.Close(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	cancel()
	stB, err := srv1.Status(idB)
	if err != nil {
		t.Fatal(err)
	}
	if stB.State != Queued {
		t.Fatalf("killed mid-run, job %s parked as %s, want queued", idB, stB.State)
	}
	if m, _ := filepath.Glob(filepath.Join(dir, idB, "checkpoint.json*")); len(m) == 0 {
		t.Fatal("interrupted job left no checkpoint on disk")
	}

	// With the first process fully stopped, verify A's sharded result
	// against a direct RunSharded of the same prepared spec.
	refA, err := campaign.RunSharded(context.Background(), pA.Circuit, pA.Faults, pA.Campaign, pA.Shards)
	if err != nil {
		t.Fatal(err)
	}
	if want := NewSummary(refA); !reflect.DeepEqual(*stA.Result, want) {
		t.Errorf("sharded job result through the service:\n %+v\nwant (direct RunSharded):\n %+v", *stA.Result, want)
	}

	// Second process on the same directory: A and C recover terminal, B
	// resumes from its checkpoint and finishes.
	srv2, err := New(dir, Options{Workers: 2, CheckpointEvery: time.Millisecond, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	defer srv2.Close(context.Background())

	if st := getStatus(t, ts2.URL, idA); st.State != Done || st.Result == nil {
		t.Errorf("restart lost done job %s: %+v", idA, st)
	}
	if st := getStatus(t, ts2.URL, idC); st.State != Cancelled {
		t.Errorf("restart lost cancelled job %s: %+v", idC, st)
	}
	stB2 := waitStatus(t, ts2.URL, idB, 5*time.Minute, "done after resume",
		func(st JobStatus) bool { return st.State == Done })
	if !stB2.Result.Resumed {
		t.Error("resumed job does not report Resumed")
	}

	// The resumed stats must be identical to an uninterrupted run of the
	// same spec.
	pB, err := Prepare(specB)
	if err != nil {
		t.Fatal(err)
	}
	refB, err := campaign.Run(context.Background(), pB.Circuit, pB.Faults, pB.Campaign)
	if err != nil {
		t.Fatal(err)
	}
	want := NewSummary(refB)
	want.Resumed = true // the only legitimate difference
	if !reflect.DeepEqual(*stB2.Result, want) {
		t.Errorf("resumed job result:\n %+v\nwant (uninterrupted run):\n %+v", *stB2.Result, want)
	}
}

// parseMetrics reads the Prometheus text exposition into a flat
// name{labels} -> value map.
func parseMetrics(t *testing.T, base string) map[string]int64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	out := map[string]int64{}
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(body.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		k := strings.LastIndexByte(line, ' ')
		if k < 0 {
			t.Fatalf("unparseable metrics line %q", line)
		}
		v, err := strconv.ParseInt(line[k+1:], 10, 64)
		if err != nil {
			t.Fatalf("metrics line %q: %v", line, err)
		}
		out[line[:k]] = v
	}
	return out
}

// TestMetricsReconcile checks that after a set of jobs completes, the
// /metrics counters agree exactly with the sum of the jobs' final
// campaign results and per-job progress counters.
func TestMetricsReconcile(t *testing.T) {
	srv, err := New(t.TempDir(), Options{Workers: 2, CheckpointEvery: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ids := []string{
		postJob(t, ts.URL, Spec{Name: "m-plain", Netlist: benchText(t, 7, 4), MaxFaults: 25, FaultBudget: 200_000}),
		postJob(t, ts.URL, Spec{Name: "m-sharded", Netlist: benchText(t, 5, 3), MaxFaults: 25, FaultBudget: 200_000, Shards: 2}),
	}
	waitJobs(t, srv, 2*time.Minute, func(st JobStatus) bool { return st.State.Terminal() })

	var sum Summary
	var attempts, ckpts, ckptFails, degraded int64
	for _, id := range ids {
		st := getStatus(t, ts.URL, id)
		if st.State != Done {
			t.Fatalf("job %s finished as %s (%s)", id, st.State, st.Error)
		}
		r := getResult(t, ts.URL, id)
		sum.Detected += r.Detected
		sum.Redundant += r.Redundant
		sum.Aborted += r.Aborted
		sum.Crashed += r.Crashed
		sum.Effort += r.Effort
		sum.Backtracks += r.Backtracks
		sum.Tests += r.Tests
		attempts += st.Attempts
		ckpts += st.CheckpointWrites
		ckptFails += st.CheckpointFailures
		if st.Degraded {
			degraded++
		}
	}

	m := parseMetrics(t, ts.URL)
	checks := []struct {
		name string
		want int64
	}{
		{`atpg_jobs_queued`, 0},
		{`atpg_jobs_running`, 0},
		{`atpg_jobs_finished_total{state="done"}`, int64(len(ids))},
		{`atpg_jobs_finished_total{state="failed"}`, 0},
		{`atpg_jobs_finished_total{state="cancelled"}`, 0},
		{`atpg_faults_total{outcome="detected"}`, int64(sum.Detected)},
		{`atpg_faults_total{outcome="redundant"}`, int64(sum.Redundant)},
		{`atpg_faults_total{outcome="aborted"}`, int64(sum.Aborted)},
		{`atpg_faults_total{outcome="crashed"}`, int64(sum.Crashed)},
		{`atpg_effort_total`, sum.Effort},
		{`atpg_backtracks_total`, sum.Backtracks},
		{`atpg_tests_total`, int64(sum.Tests)},
		{`atpg_fault_attempts_total`, attempts},
		{`atpg_checkpoint_writes_total`, ckpts},
		{`atpg_checkpoint_failures_total`, ckptFails},
		{`atpg_jobs_degraded`, degraded},
		{`atpg_queue_depth`, 0},
		{`atpg_submit_rejected_total`, 0},
		{`atpg_jobs_quarantined_total`, 0},
		{`atpg_watchdog_trips_total`, 0},
		// The cache metric family is emitted even with no cache
		// configured, so dashboards never see the series appear late.
		{`atpg_cache_hits_total`, 0},
		{`atpg_cache_misses_total`, 0},
		{`atpg_cache_evictions_total`, 0},
		{`atpg_cache_quarantined_total`, 0},
		{`atpg_cache_bytes`, 0},
	}
	for _, c := range checks {
		got, ok := m[c.name]
		if !ok {
			t.Errorf("metric %s missing", c.name)
			continue
		}
		if got != c.want {
			t.Errorf("%s = %d, want %d (from summed job results)", c.name, got, c.want)
		}
	}

	// healthz while we are here.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %d", resp.StatusCode)
	}

	// Error mapping: missing job 404, result of unknown job 404,
	// cancel of done job 409, result of non-done job 409.
	for _, c := range []struct {
		method, path string
		want         int
	}{
		{"GET", "/jobs/j009999", http.StatusNotFound},
		{"GET", "/jobs/j009999/result", http.StatusNotFound},
		{"POST", "/jobs/" + ids[0] + "/cancel", http.StatusConflict},
	} {
		req, err := http.NewRequest(c.method, ts.URL+c.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s %s: status %d, want %d", c.method, c.path, resp.StatusCode, c.want)
		}
	}
}
