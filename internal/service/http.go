package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"seqatpg/internal/rescache"
)

// maxSubmitBytes bounds a job submission body; netlists in this
// system's weight class are a few hundred KB at most.
const maxSubmitBytes = 32 << 20

// Handler returns the service's HTTP API:
//
//	POST /jobs              submit a job (Spec JSON), returns {"id": ...}
//	GET  /jobs              list all jobs
//	GET  /jobs/{id}         one job's status, progress and log tail
//	GET  /jobs/{id}/result  final Summary of a done job
//	GET  /jobs/{id}/vectors generated test vectors of a done job (text)
//	POST /jobs/{id}/cancel  cancel a queued or running job
//	GET  /jobs/{id}/shard-result  merge-ready shard result of a done shard job
//	GET  /jobs/{id}/checkpoint    newest durable campaign checkpoint of a job
//	GET  /metrics           Prometheus text-format counters and gauges
//	GET  /healthz           pure liveness (the process is up)
//	GET  /readyz            readiness: 503 while draining or queue-saturated
//	GET  /version           build/format handshake for fleet coordinators
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /jobs/{id}/vectors", s.handleVectors)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/shard-result", s.handleShardResult)
	mux.HandleFunc("GET /jobs/{id}/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeBody(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /version", func(w http.ResponseWriter, r *http.Request) {
		writeBody(w, http.StatusOK, Version())
	})
	return JSONErrors(mux)
}

// MetricsHandler exposes the Prometheus metrics endpoint as a
// standalone handler, for mounting on a side (operations) listener
// separate from the job API — typically next to the pprof endpoints,
// where scrapes and profiles stay reachable even when the API
// listener's timeouts or queue pressure bite.
func (s *Server) MetricsHandler() http.Handler { return http.HandlerFunc(s.handleMetrics) }

// JSONErrors rewrites the plain-text 404/405 responses http.ServeMux
// generates itself (unknown endpoint, wrong method) into this API's
// JSON error shape, so every error response a client sees carries
// Content-Type: application/json. Handler-written errors already do
// (they go through writeBody) and pass through untouched.
func JSONErrors(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		next.ServeHTTP(&jsonErrorWriter{ResponseWriter: w}, r)
	})
}

type jsonErrorWriter struct {
	http.ResponseWriter
	intercept bool
	wrote     bool
}

func (w *jsonErrorWriter) WriteHeader(code int) {
	ct := w.Header().Get("Content-Type")
	if (code == http.StatusNotFound || code == http.StatusMethodNotAllowed) &&
		!strings.HasPrefix(ct, "application/json") {
		w.intercept = true
		w.Header().Set("Content-Type", "application/json")
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *jsonErrorWriter) Write(p []byte) (int, error) {
	if !w.intercept {
		return w.ResponseWriter.Write(p)
	}
	// Replace the mux's text body ("404 page not found") with the JSON
	// error shape; report the original length so the mux never sees a
	// short write.
	if !w.wrote {
		w.wrote = true
		body, err := json.Marshal(map[string]string{"error": strings.TrimSpace(string(p))})
		if err != nil {
			return w.ResponseWriter.Write(p)
		}
		if _, err := w.ResponseWriter.Write(append(body, '\n')); err != nil {
			return 0, err
		}
	}
	return len(p), nil
}

func writeBody(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}

// Retry-After clamps: the floor is the old hard-coded hint (a couple
// of queued jobs' drain at low load, and what an empty or unpredicted
// queue still advertises); the ceiling keeps a mispredicted pileup
// from pushing clients out for hours.
const (
	retryAfterFloor = 2
	retryAfterCeil  = 600
)

// retryAfterSeconds converts a predicted queue drain time into a
// Retry-After value in whole seconds, rounding up and clamping to
// [retryAfterFloor, retryAfterCeil]. Zero and negative drains (empty
// queue, no estimates) hit the floor; absurd drains hit the ceiling —
// the hint is derived from load, but always stays a sane hint.
func retryAfterSeconds(drain time.Duration) int {
	if drain <= retryAfterFloor*time.Second {
		return retryAfterFloor
	}
	if drain >= retryAfterCeil*time.Second {
		return retryAfterCeil
	}
	return int((drain + time.Second - 1) / time.Second)
}

// httpError maps service errors onto status codes. Queue-full 429s
// carry a Retry-After header derived from the predicted drain time of
// what is actually queued, so fleet clients back off proportionally to
// the backlog instead of guessing (or hammering).
func (s *Server) httpError(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrTerminal), errors.Is(err, ErrNotDone):
		code = http.StatusConflict
	case errors.Is(err, ErrDraining):
		code = http.StatusServiceUnavailable
	case errors.Is(err, ErrQueueFull):
		code = http.StatusTooManyRequests
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.DrainEstimate())))
	}
	writeBody(w, code, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSubmitBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		s.httpError(w, fmt.Errorf("service: decode submission: %w", err))
		return
	}
	id, err := s.Submit(spec)
	if err != nil {
		s.httpError(w, err)
		return
	}
	writeBody(w, http.StatusCreated, map[string]string{"id": id})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeBody(w, http.StatusOK, map[string]any{"jobs": s.List()})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.Status(r.PathValue("id"))
	if err != nil {
		s.httpError(w, err)
		return
	}
	writeBody(w, http.StatusOK, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	st, err := s.Status(r.PathValue("id"))
	if err != nil {
		s.httpError(w, err)
		return
	}
	if st.State != Done || st.Result == nil {
		s.httpError(w, fmt.Errorf("%w: %s is %s", ErrNotDone, st.ID, st.State))
		return
	}
	if et := resultETag(st); et != "" {
		w.Header().Set("ETag", et)
		if etagMatch(r.Header.Get("If-None-Match"), et) {
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	writeBody(w, http.StatusOK, st.Result)
}

// resultETag is the validator for a done job's result: the job's
// content digest in the result cache. It is only issued when the
// result is canonical for that digest — a resumed or degraded run
// reaches the same verdicts but carries its own Summary fields, and
// must not be conflated with the representation a cold run serves.
func resultETag(st JobStatus) string {
	if st.Digest == "" || st.Result == nil || st.Result.Resumed || st.Result.Degraded {
		return ""
	}
	return `"` + st.Digest + `"`
}

// etagMatch implements the If-None-Match comparison: the * wildcard,
// or any listed entity-tag equal to etag (GET uses the weak
// comparison, so W/ prefixes are ignored).
func etagMatch(header, etag string) bool {
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		if part == "*" || strings.TrimPrefix(part, "W/") == etag {
			return true
		}
	}
	return false
}

func (s *Server) handleVectors(w http.ResponseWriter, r *http.Request) {
	st, err := s.Status(r.PathValue("id"))
	if err != nil {
		s.httpError(w, err)
		return
	}
	if st.State != Done {
		s.httpError(w, fmt.Errorf("%w: %s is %s", ErrNotDone, st.ID, st.State))
		return
	}
	data, err := s.fs.ReadFile(filepath.Join(s.dir, st.ID, "vectors.vec"))
	if err != nil {
		s.httpError(w, fmt.Errorf("service: vectors: %w", err))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(data)
}

// handleReady serves the readiness probe: 200 with the queue snapshot
// when the worker can accept jobs, 503 with the same body (and the
// reason) when it should not be selected.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	st := s.Ready()
	code := http.StatusOK
	if !st.Ready {
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.DrainEstimate())))
	}
	writeBody(w, code, st)
}

// handleShardResult serves the merge-ready shard result of a done
// shard job: the full per-fault verdicts, tests and stats in the
// campaign wire format, which is what a coordinator folds into the
// global Result. Only jobs submitted with a shard selector persist it.
func (s *Server) handleShardResult(w http.ResponseWriter, r *http.Request) {
	st, err := s.Status(r.PathValue("id"))
	if err != nil {
		s.httpError(w, err)
		return
	}
	if st.State != Done {
		s.httpError(w, fmt.Errorf("%w: %s is %s", ErrNotDone, st.ID, st.State))
		return
	}
	data, err := s.fs.ReadFile(filepath.Join(s.dir, st.ID, "merge.json"))
	if err != nil {
		s.httpError(w, fmt.Errorf("%w: %s has no shard result (not a shard job?)", ErrNotFound, st.ID))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// handleCheckpoint serves the newest readable generation of a job's
// campaign checkpoint. The coordinator polls it under the shard lease
// and caches the bytes durably, so a dead worker's progress can be
// re-dispatched elsewhere. The current generation may be mid-rotation;
// fall back to .prev exactly like a local resume would. The payload is
// CRC-guarded, so the caller validates before trusting it.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	st, err := s.Status(r.PathValue("id"))
	if err != nil {
		s.httpError(w, err)
		return
	}
	base := filepath.Join(s.dir, st.ID, "checkpoint.json")
	for _, path := range []string{base, base + ".prev"} {
		if data, err := s.fs.ReadFile(path); err == nil {
			w.Header().Set("Content-Type", "application/json")
			w.Write(data)
			return
		}
	}
	s.httpError(w, fmt.Errorf("%w: %s has no checkpoint yet", ErrNotFound, st.ID))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.Cancel(id); err != nil {
		s.httpError(w, err)
		return
	}
	writeBody(w, http.StatusOK, map[string]string{"id": id, "cancel": "requested"})
}

// handleMetrics renders the hand-rolled Prometheus text exposition —
// no client library, the format is three lines per family. Gauges are
// computed from the live store; counters are monotone for the life of
// the process (a restarted server starts them at zero, results on
// disk persist independently).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var queued, running, degraded int
	s.mu.Lock()
	depth := len(s.queue)
	pending := s.pendingCostLocked()
	for _, j := range s.jobs {
		switch j.state {
		case Queued:
			queued++
		case Running:
			running++
		}
		if j.degraded.Load() {
			degraded++
		}
	}
	s.mu.Unlock()

	var b strings.Builder
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	m := &s.metrics
	gauge("atpg_jobs_queued", "Jobs waiting for a worker.", int64(queued))
	gauge("atpg_jobs_running", "Jobs currently executing.", int64(running))
	gauge("atpg_queue_depth", "Pending submissions in the bounded queue.", int64(depth))
	gauge("atpg_jobs_degraded", "Jobs that have survived at least one checkpoint-write failure.", int64(degraded))
	fmt.Fprintf(&b, "# HELP atpg_jobs_finished_total Jobs that reached a terminal state.\n# TYPE atpg_jobs_finished_total counter\n")
	fmt.Fprintf(&b, "atpg_jobs_finished_total{state=\"done\"} %d\n", m.jobsDone.Load())
	fmt.Fprintf(&b, "atpg_jobs_finished_total{state=\"failed\"} %d\n", m.jobsFailed.Load())
	fmt.Fprintf(&b, "atpg_jobs_finished_total{state=\"cancelled\"} %d\n", m.jobsCancelled.Load())
	fmt.Fprintf(&b, "# HELP atpg_faults_total Final per-outcome fault verdicts of done jobs.\n# TYPE atpg_faults_total counter\n")
	fmt.Fprintf(&b, "atpg_faults_total{outcome=\"detected\"} %d\n", m.detected.Load())
	fmt.Fprintf(&b, "atpg_faults_total{outcome=\"redundant\"} %d\n", m.redundant.Load())
	fmt.Fprintf(&b, "atpg_faults_total{outcome=\"aborted\"} %d\n", m.aborted.Load())
	fmt.Fprintf(&b, "atpg_faults_total{outcome=\"crashed\"} %d\n", m.crashed.Load())
	counter("atpg_effort_total", "Cumulative gate-frame evaluations of done jobs.", m.effort.Load())
	counter("atpg_backtracks_total", "Cumulative search backtracks of done jobs.", m.backtracks.Load())
	counter("atpg_tests_total", "Test sequences generated by done jobs.", m.tests.Load())
	counter("atpg_fault_attempts_total", "Deterministic fault attempts started (live, all jobs).", m.attempts.Load())
	counter("atpg_checkpoint_writes_total", "Campaign checkpoint files written.", m.ckptWrites.Load())
	counter("atpg_checkpoint_failures_total", "Campaign checkpoint writes that failed (degraded mode).", m.ckptFailures.Load())
	counter("atpg_submit_rejected_total", "Submissions rejected because the queue was full.", m.rejected.Load())
	gauge("atpg_predicted_queue_evals", "Predicted gate evaluations still ahead of the worker pool (queued plus running jobs).", pending)
	gauge("atpg_predicted_drain_seconds", "Predicted seconds until the current backlog drains; feeds 429 Retry-After.", int64(s.DrainEstimate()/time.Second))
	gauge("atpg_predicted_eval_rate", "Per-worker gate evaluations per second used for drain estimates (measured, or the prior).", int64(s.EvalRate()))
	counter("atpg_predicted_evals_total", "Summed predicted effort of done jobs; compare with atpg_effort_total, its actual counterpart.", m.predictedEvals.Load())
	counter("atpg_predicted_overrun_jobs_total", "Done jobs whose actual charged effort exceeded their prediction.", m.predictOverruns.Load())
	counter("atpg_predicted_underrun_jobs_total", "Done jobs that finished within their predicted effort.", m.predictUnderruns.Load())
	counter("atpg_jobs_quarantined_total", "Jobs quarantined during recovery for unreadable on-disk state.", m.quarantined.Load())
	counter("atpg_watchdog_trips_total", "Running jobs interrupted by the stuck-progress watchdog.", m.watchdogTrips.Load())
	var cs rescache.Stats
	if s.opts.Cache != nil {
		cs = s.opts.Cache.Stats()
	}
	counter("atpg_cache_hits_total", "Result-cache lookups served from a stored entry.", cs.Hits)
	counter("atpg_cache_misses_total", "Result-cache lookups that fell through to a cold run.", cs.Misses)
	counter("atpg_cache_evictions_total", "Result-cache entries evicted to stay under the capacity bound.", cs.Evictions)
	counter("atpg_cache_quarantined_total", "Corrupt result-cache entries quarantined and treated as misses.", cs.Quarantined)
	gauge("atpg_cache_bytes", "Payload bytes currently stored in the result cache.", cs.Bytes)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(b.String()))
}
