package service

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"seqatpg/internal/encode"
	"seqatpg/internal/fsm"
	"seqatpg/internal/netlist"
	"seqatpg/internal/retime"
	"seqatpg/internal/synth"
)

// benchText synthesizes a small FSM circuit and renders it as .bench
// source, the shape of a real submission.
func benchText(t *testing.T, states int, seed int64) string {
	t.Helper()
	m, err := fsm.Generate(fsm.GenSpec{Name: "svc", Inputs: 3, Outputs: 2, States: states, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	r, err := synth.Synthesize(m, synth.Options{
		Algorithm: encode.Combined, Script: synth.Rugged, UseUnreachableDC: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return renderBench(t, r.Circuit)
}

// retimedBenchText is benchText after register-multiplying retiming —
// the paper's hard workload and the e2e test's long-running job.
func retimedBenchText(t *testing.T, states int, seed int64, rounds int) string {
	t.Helper()
	m, err := fsm.Generate(fsm.GenSpec{Name: "svc-re", Inputs: 3, Outputs: 2, States: states, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	r, err := synth.Synthesize(m, synth.Options{
		Algorithm: encode.Combined, Script: synth.Rugged, UseUnreachableDC: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	re, err := retime.Backward(r.Circuit, netlist.DefaultLibrary(), rounds)
	if err != nil {
		t.Fatal(err)
	}
	return renderBench(t, re.Circuit)
}

func renderBench(t *testing.T, c *netlist.Circuit) string {
	t.Helper()
	var b strings.Builder
	if err := netlist.WriteBench(&b, c); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// waitJobs polls until every listed job satisfies ok, failing the test
// at the deadline.
func waitJobs(t *testing.T, s *Server, deadline time.Duration, ok func(JobStatus) bool) {
	t.Helper()
	stop := time.Now().Add(deadline)
	for {
		all := true
		for _, st := range s.List() {
			if !ok(st) {
				all = false
				break
			}
		}
		if all {
			return
		}
		if time.Now().After(stop) {
			for _, st := range s.List() {
				t.Logf("job %s: state=%s attempts=%d err=%q", st.ID, st.State, st.Attempts, st.Error)
			}
			t.Fatal("jobs did not settle in time")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestPrepareValidatesSpec(t *testing.T) {
	bench := benchText(t, 5, 3)
	cases := []struct {
		name string
		mut  func(*Spec)
	}{
		{"empty netlist", func(s *Spec) { s.Netlist = " " }},
		{"garbage netlist", func(s *Spec) { s.Netlist = "INPUT(\n=" }},
		{"unknown format", func(s *Spec) { s.Format = "verilog" }},
		{"unknown engine", func(s *Spec) { s.Engine = "podem" }},
		{"negative shards", func(s *Spec) { s.Shards = -1 }},
		{"negative max faults", func(s *Spec) { s.MaxFaults = -4 }},
		{"negative retries", func(s *Spec) { s.Retries = -1 }},
		{"negative budget", func(s *Spec) { s.FaultBudget = -1 }},
	}
	for _, tc := range cases {
		spec := Spec{Netlist: bench}
		tc.mut(&spec)
		if _, err := Prepare(spec); err == nil {
			t.Errorf("%s: Prepare accepted %+v", tc.name, spec)
		}
	}
	p, err := Prepare(Spec{Netlist: bench, Engine: "attest", Shards: 2, MaxFaults: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Faults) != 10 || p.Shards != 2 {
		t.Errorf("prepared %d faults, %d shards; want 10, 2", len(p.Faults), p.Shards)
	}
	// The exchange format is accepted too.
	var b strings.Builder
	if err := netlist.Write(&b, p.Circuit); err != nil {
		t.Fatal(err)
	}
	if _, err := Prepare(Spec{Netlist: b.String(), Format: "net"}); err != nil {
		t.Errorf("exchange-format netlist rejected: %v", err)
	}
}

// TestServerLifecycleFSM covers the queued → running → terminal edges
// and the error surface of the store API.
func TestServerLifecycleFSM(t *testing.T) {
	s, err := New(t.TempDir(), Options{Workers: 1, CheckpointEvery: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())

	if _, err := s.Status("j000099"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown job: err = %v, want ErrNotFound", err)
	}
	if err := s.Cancel("j000099"); !errors.Is(err, ErrNotFound) {
		t.Errorf("cancel unknown: err = %v, want ErrNotFound", err)
	}
	if _, err := s.Submit(Spec{Netlist: "not a netlist", Format: "net"}); err == nil {
		t.Error("bad submission accepted")
	}

	id, err := s.Submit(Spec{Netlist: benchText(t, 5, 3), Name: "fsm", MaxFaults: 12})
	if err != nil {
		t.Fatal(err)
	}
	waitJobs(t, s, time.Minute, func(st JobStatus) bool { return st.State.Terminal() })
	st, err := s.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != Done {
		t.Fatalf("job finished as %s (%s), want done", st.State, st.Error)
	}
	if st.Result == nil || st.Result.Total != 12 {
		t.Fatalf("done job carries result %+v, want 12 faults", st.Result)
	}
	if st.Runs != 1 {
		t.Errorf("job ran %d times, want exactly once", st.Runs)
	}
	if err := s.Cancel(id); !errors.Is(err, ErrTerminal) {
		t.Errorf("cancel of done job: err = %v, want ErrTerminal", err)
	}

	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(Spec{Netlist: benchText(t, 5, 3)}); !errors.Is(err, ErrDraining) {
		t.Errorf("submit after close: err = %v, want ErrDraining", err)
	}
}

// TestServerConcurrentSubmitCancelStatus hammers the pool from many
// goroutines under -race: submissions, cancellations and status reads
// interleave, and afterwards no job may be lost, run twice, or parked
// in a non-terminal state.
func TestServerConcurrentSubmitCancelStatus(t *testing.T) {
	s, err := New(t.TempDir(), Options{Workers: 4, CheckpointEvery: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())

	bench := benchText(t, 5, 3)
	const submitters, perSubmitter = 4, 8
	ids := make(chan string, submitters*perSubmitter)
	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perSubmitter; i++ {
				id, err := s.Submit(Spec{
					Name:        fmt.Sprintf("g%d-%d", g, i),
					Netlist:     bench,
					MaxFaults:   8,
					FaultBudget: 200_000,
				})
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				ids <- id
			}
		}(g)
	}
	// Cancellers and status readers run against the live pool.
	var cwg sync.WaitGroup
	stopChaos := make(chan struct{})
	seen := make(chan string, submitters*perSubmitter)
	cwg.Add(1)
	go func() {
		defer cwg.Done()
		rng := rand.New(rand.NewSource(1))
		for id := range ids {
			seen <- id
			if rng.Intn(2) == 0 {
				err := s.Cancel(id)
				if err != nil && !errors.Is(err, ErrTerminal) {
					t.Errorf("cancel %s: %v", id, err)
				}
			}
		}
	}()
	for g := 0; g < 3; g++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				select {
				case <-stopChaos:
					return
				default:
					for _, st := range s.List() {
						if _, err := s.Status(st.ID); err != nil && !errors.Is(err, ErrNotFound) {
							t.Errorf("status %s: %v", st.ID, err)
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(ids)
	waitJobs(t, s, 2*time.Minute, func(st JobStatus) bool { return st.State.Terminal() })
	close(stopChaos)
	cwg.Wait()

	unique := map[string]bool{}
	for len(seen) > 0 {
		unique[<-seen] = true
	}
	if len(unique) != submitters*perSubmitter {
		t.Fatalf("%d unique job ids for %d submissions", len(unique), submitters*perSubmitter)
	}
	var done, cancelled int
	for _, st := range s.List() {
		if !unique[st.ID] {
			t.Errorf("job %s was never submitted by this test", st.ID)
		}
		switch st.State {
		case Done:
			done++
			if st.Result == nil {
				t.Errorf("job %s done without result", st.ID)
			}
			if st.Runs != 1 {
				t.Errorf("done job %s ran %d times", st.ID, st.Runs)
			}
		case Cancelled:
			cancelled++
			if st.Runs > 1 {
				t.Errorf("cancelled job %s ran %d times", st.ID, st.Runs)
			}
		default:
			t.Errorf("job %s settled as %s (%s)", st.ID, st.State, st.Error)
		}
	}
	if done+cancelled != submitters*perSubmitter {
		t.Errorf("%d done + %d cancelled != %d submitted", done, cancelled, submitters*perSubmitter)
	}
	got := s.metrics.jobsDone.Load() + s.metrics.jobsCancelled.Load() + s.metrics.jobsFailed.Load()
	if got != int64(submitters*perSubmitter) {
		t.Errorf("metrics count %d finished jobs, want %d", got, submitters*perSubmitter)
	}
	t.Logf("%d done, %d cancelled under contention", done, cancelled)
}

// TestServerRecoverQuarantinesCorruptJob: a job directory whose
// records are inconsistent is quarantined — terminal Failed with the
// inconsistency as the reason — instead of failing the whole store or
// silently re-running.
func TestServerRecoverQuarantinesCorruptJob(t *testing.T) {
	dir := t.TempDir()
	s, err := New(dir, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	id, err := s.Submit(Spec{Netlist: benchText(t, 5, 3), MaxFaults: 4})
	if err != nil {
		t.Fatal(err)
	}
	waitJobs(t, s, time.Minute, func(st JobStatus) bool { return st.State.Terminal() })
	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	// A terminal marker claiming a live state is corruption.
	if err := s.writeJSON(dir+"/"+id+"/terminal.json", terminalFile{State: Running}); err != nil {
		t.Fatal(err)
	}
	s2, err := New(dir, Options{Workers: 1})
	if err != nil {
		t.Fatalf("recover failed the whole store over one damaged job: %v", err)
	}
	defer s2.Close(context.Background())
	st, err := s2.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != Failed || !st.Quarantined {
		t.Errorf("damaged job recovered as %s (quarantined=%v), want quarantined failed", st.State, st.Quarantined)
	}
	if !strings.Contains(st.Error, "quarantined") {
		t.Errorf("quarantined job error %q does not state the quarantine", st.Error)
	}
}
