package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"seqatpg/internal/campaign"
)

// TestRetryAfterSeconds pins the clamp edges: zero/negative drains hit
// the floor (the old hard-coded constant, so low-load behavior is
// unchanged), huge drains hit the ceiling, and in between the value is
// the drain rounded up to whole seconds.
func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		drain time.Duration
		want  int
	}{
		{0, retryAfterFloor},
		{-5 * time.Second, retryAfterFloor},
		{time.Millisecond, retryAfterFloor},
		{2 * time.Second, retryAfterFloor},
		{2*time.Second + time.Millisecond, 3},
		{3 * time.Second, 3},
		{599 * time.Second, 599},
		{600 * time.Second, retryAfterCeil},
		{24 * time.Hour, retryAfterCeil},
		{time.Duration(math.MaxInt64), retryAfterCeil},
		{time.Duration(math.MinInt64), retryAfterFloor},
	}
	for _, tc := range cases {
		if got := retryAfterSeconds(tc.drain); got != tc.want {
			t.Errorf("retryAfterSeconds(%v) = %d, want %d", tc.drain, got, tc.want)
		}
	}
}

// TestPreparedCostEstimate: every prepared job carries a positive cost
// estimate, the hardest fault never exceeds the whole-job estimate,
// per-fault clamps respect the retry ladder's final budget, and shard
// estimates partition the full job's estimate exactly.
func TestPreparedCostEstimate(t *testing.T) {
	bench := benchText(t, 6, 11)
	full, err := Prepare(Spec{Netlist: bench})
	if err != nil {
		t.Fatal(err)
	}
	if full.CostEstimate <= 0 || full.MaxFaultCost <= 0 {
		t.Fatalf("no cost estimate: total %d, max %d", full.CostEstimate, full.MaxFaultCost)
	}
	if full.MaxFaultCost > full.CostEstimate {
		t.Fatalf("hardest fault %d exceeds whole-job estimate %d", full.MaxFaultCost, full.CostEstimate)
	}

	// A tiny budget ladder clamps every per-fault prediction.
	tiny, err := Prepare(Spec{Netlist: bench, FaultBudget: 100, Retries: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tiny.MaxFaultCost > 200 { // 100 << 1
		t.Errorf("per-fault clamp ignored the ladder: max %d > 200", tiny.MaxFaultCost)
	}
	if tiny.CostEstimate > 200*int64(len(tiny.Faults)) {
		t.Errorf("estimate %d exceeds %d clamped faults x 200", tiny.CostEstimate, len(tiny.Faults))
	}

	// Shard estimates partition the full estimate: the clamps are
	// per-fault, so summing the shard sublists reassembles the total.
	var sum int64
	for k := 0; k < 3; k++ {
		p, err := Prepare(Spec{Netlist: bench, Shard: &ShardSel{Index: k, Count: 3}})
		if err != nil {
			t.Fatal(err)
		}
		sum += p.CostEstimate
	}
	if sum != full.CostEstimate {
		t.Errorf("shard estimates sum to %d, full job estimates %d", sum, full.CostEstimate)
	}
}

// TestBalancedShardSel: the Balanced selector partitions the same
// fault universe (every fault exactly once, matching PlanShards), it
// just packs by predicted cost. Worker-side Prepare and the
// coordinator-side PlanShards must agree bin for bin.
func TestBalancedShardSel(t *testing.T) {
	bench := benchText(t, 6, 11)
	full, err := Prepare(Spec{Netlist: bench})
	if err != nil {
		t.Fatal(err)
	}
	idxs, scores, err := PlanShards(full.Circuit, full.Faults, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != len(full.Faults) {
		t.Fatalf("PlanShards scored %d of %d faults", len(scores), len(full.Faults))
	}
	seen := 0
	for k := 0; k < 3; k++ {
		p, err := Prepare(Spec{Netlist: bench, Shard: &ShardSel{Index: k, Count: 3, Balanced: true}})
		if err != nil {
			t.Fatal(err)
		}
		if len(p.Faults) != len(idxs[k]) {
			t.Fatalf("shard %d: Prepare selected %d faults, PlanShards %d", k, len(p.Faults), len(idxs[k]))
		}
		for i, gi := range idxs[k] {
			if p.Faults[i] != full.Faults[gi] {
				t.Fatalf("shard %d fault %d: Prepare and PlanShards disagree", k, i)
			}
		}
		seen += len(p.Faults)
	}
	if seen != len(full.Faults) {
		t.Fatalf("balanced shards cover %d of %d faults", seen, len(full.Faults))
	}
}

// TestWatchBudget: prediction may stretch the watchdog budget, never
// shrink it below the configured StuckTimeout, and a runaway
// prediction is capped rather than disabling hang detection.
func TestWatchBudget(t *testing.T) {
	s := &Server{opts: Options{StuckTimeout: time.Second}}
	base := s.opts.StuckTimeout
	rate := s.EvalRate() // no completions: the deterministic prior

	if got := s.watchBudget(&job{maxFaultCost: 1 << 40}); got != base {
		t.Errorf("PredictBudgets off: budget %v, want %v", got, base)
	}
	s.opts.PredictBudgets = true
	if got := s.watchBudget(&job{}); got != base {
		t.Errorf("no prediction: budget %v, want %v", got, base)
	}
	// A fault predicted to need one second of evaluation gets 4x that.
	j := &job{maxFaultCost: int64(rate)}
	if got := s.watchBudget(j); got != 4*time.Second {
		t.Errorf("1s hardest fault: budget %v, want 4s", got)
	}
	// Predictions below the floor never shrink the budget.
	if got := s.watchBudget(&job{maxFaultCost: 1}); got != base {
		t.Errorf("tiny prediction: budget %v, want floor %v", got, base)
	}
	// A runaway prediction is capped, not unbounded.
	if got := s.watchBudget(&job{maxFaultCost: math.MaxInt64}); got != maxWatchBudget {
		t.Errorf("runaway prediction: budget %v, want cap %v", got, maxWatchBudget)
	}
}

// TestRetryAfterScalesWithBacklog: with a backlog of predicted-costly
// jobs stalled behind a blocked worker, the queue-full 429 carries a
// Retry-After derived from the predicted drain time — strictly above
// the old constant — and /readyz advertises the same hint.
func TestRetryAfterScalesWithBacklog(t *testing.T) {
	bench := retimedBenchText(t, 6, 11, 2)
	spec := Spec{Netlist: bench}
	p, err := Prepare(spec)
	if err != nil {
		t.Fatal(err)
	}
	if p.CostEstimate <= 0 {
		t.Fatal("spec has no cost estimate")
	}
	// Enough identical jobs that the predicted backlog needs well over
	// the floor (2s) to drain at the prior rate with one worker.
	need := int64(3 * DefaultEvalRate)
	n := int(need/p.CostEstimate) + 1
	if n > 200 {
		t.Fatalf("per-job estimate %d too small; would need %d submissions", p.CostEstimate, n)
	}

	s, err := New(t.TempDir(), Options{Workers: 1, QueueCap: n})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())
	release := make(chan struct{})
	defer close(release)
	s.testRunCampaign = func(ctx context.Context, j *job, ccfg campaign.Config) (*campaign.Result, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, errors.New("test: blocked run")
	}

	// First job occupies the (blocked) worker; wait for it so the queue
	// fills deterministically behind it.
	first, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitRunning := func() {
		for deadline := time.Now().Add(5 * time.Second); ; {
			if st, _ := s.Status(first); st.State == Running {
				return
			}
			if time.Now().After(deadline) {
				t.Fatal("first job never started running")
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitRunning()
	for i := 0; i < n; i++ {
		if _, err := s.Submit(spec); err != nil {
			t.Fatalf("submission %d: %v", i, err)
		}
	}

	drain := s.DrainEstimate()
	if drain <= retryAfterFloor*time.Second {
		t.Fatalf("backlog of %d jobs x %d evals predicted to drain in %v, want > %ds",
			n+1, p.CostEstimate, drain, retryAfterFloor)
	}
	want := retryAfterSeconds(drain)

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap submission: status %d, want 429", resp.StatusCode)
	}
	got, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After %q: %v", resp.Header.Get("Retry-After"), err)
	}
	if got <= retryAfterFloor {
		t.Errorf("Retry-After %d did not scale with the backlog (old constant was %d)", got, retryAfterFloor)
	}
	if got != want {
		t.Errorf("Retry-After %d, want %d (drain %v)", got, want, drain)
	}

	// /readyz reports not-ready with the same drain-derived hint.
	rresp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with a full queue: status %d, want 503", rresp.StatusCode)
	}
	if ra, _ := strconv.Atoi(rresp.Header.Get("Retry-After")); ra <= retryAfterFloor {
		t.Errorf("/readyz Retry-After %d did not scale with the backlog", ra)
	}
}
