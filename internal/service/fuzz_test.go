package service

import (
	"encoding/json"
	"testing"
)

// FuzzSpec throws arbitrary bytes at the service's job decoders — the
// mirror of campaign's FuzzCheckpoint for the other half of the job
// store. Everything the server reads back after a crash (job.json,
// terminal.json, result.json) and everything clients POST (a Spec)
// flows through these paths, and a crash can leave literally any bytes
// in them: decode plus Prepare must reject garbage with an error,
// never a panic.
func FuzzSpec(f *testing.F) {
	f.Add([]byte(`{"id":"j000001","spec":{"netlist":"INPUT(a)\nOUTPUT(z)\nz = DFF(a)\n"},"created":"2026-01-02T15:04:05Z"}`))
	f.Add([]byte(`{"id":"j000002","spec":{"name":"x","netlist":"INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n","format":"bench","engine":"sest","fault_budget":100,"retries":2,"shards":3,"max_faults":9,"flush_cycles":1,"seed":5}}`))
	f.Add([]byte(`{"spec":{"netlist":"","shards":-1}}`))
	f.Add([]byte(`{"spec":{"netlist":"INPUT(a)","format":"verilog"}}`))
	f.Add([]byte(`{"state":"done","finished":"2026-01-02T15:04:05Z"}`))
	f.Add([]byte(`{"state":"running"}`))
	f.Add([]byte(`{"total":10,"detected":9,"fc":0.9,"degraded":true,"checkpoint_failures":3}`))
	f.Add([]byte(`not json`))
	f.Add([]byte("\x00\xff{"))
	f.Add([]byte(`{"id":1e999}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return // a netlist this size only slows the fuzzer down
		}
		var jf jobFile
		if json.Unmarshal(data, &jf) == nil {
			// A decodable submission record must prepare or error,
			// whatever spec the bytes happened to encode.
			_, _ = Prepare(jf.Spec)
			_ = jf.Spec.describe()
		}
		var spec Spec
		if json.Unmarshal(data, &spec) == nil {
			_, _ = Prepare(spec)
		}
		var tf terminalFile
		if json.Unmarshal(data, &tf) == nil {
			_ = tf.State.Terminal()
		}
		var sum Summary
		_ = json.Unmarshal(data, &sum)
	})
}
