package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"seqatpg/internal/campaign"
	"seqatpg/internal/rescache"
)

func openCache(t *testing.T, capBytes int64) *rescache.Cache {
	t.Helper()
	c, err := rescache.Open(rescache.Options{Dir: t.TempDir(), CapBytes: capBytes, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// waitCache polls the cache stats until pred holds: a job reports
// Done before its worker's cacheStore finishes, so tests that inspect
// the store (or depend on the next submission hitting) wait here.
func waitCache(t *testing.T, cache *rescache.Cache, what string, pred func(rescache.Stats) bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !pred(cache.Stats()) {
		if time.Now().After(deadline) {
			t.Fatalf("cache never reached %s: %+v", what, cache.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

func readArtifacts(t *testing.T, dir, id string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	for _, name := range []string{"result.json", "vectors.vec", "terminal.json"} {
		data, err := os.ReadFile(filepath.Join(dir, id, name))
		if err != nil {
			t.Fatal(err)
		}
		out[name] = data
	}
	return out
}

// TestCacheHitByteIdentityAndETag pins the cache's contract over the
// HTTP surface: a repeated submission completes from the cache with
// artifacts byte-identical to the cold run's, both expose the same
// digest, GET /result carries it as an ETag, and If-None-Match
// revalidation gets a 304.
func TestCacheHitByteIdentityAndETag(t *testing.T) {
	dir := t.TempDir()
	cache := openCache(t, -1)
	srv, err := New(dir, Options{Workers: 2, CheckpointEvery: time.Millisecond, Cache: cache, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := Spec{Name: "etag-cold", Netlist: benchText(t, 6, 11), MaxFaults: 20, FaultBudget: 200_000}
	cold := postJob(t, ts.URL, spec)
	waitStatus(t, ts.URL, cold, 2*time.Minute, "done", func(st JobStatus) bool { return st.State == Done })
	waitCache(t, cache, "1 stored entry", func(st rescache.Stats) bool { return st.Stored == 1 })

	spec.Name = "etag-hit" // Name is non-semantic: same digest
	hit := postJob(t, ts.URL, spec)
	waitStatus(t, ts.URL, hit, time.Minute, "done", func(st JobStatus) bool { return st.State == Done })

	if st := cache.Stats(); st.Hits < 1 || st.Stored != 1 {
		t.Fatalf("cache stats after repeat = %+v, want >=1 hit of 1 stored entry", st)
	}
	stCold, stHit := getStatus(t, ts.URL, cold), getStatus(t, ts.URL, hit)
	if stCold.Digest == "" || stCold.Digest != stHit.Digest {
		t.Fatalf("digests cold=%q hit=%q, want equal and non-empty", stCold.Digest, stHit.Digest)
	}
	if !reflect.DeepEqual(stCold.Result, stHit.Result) {
		t.Errorf("summaries differ:\ncold %+v\nhit  %+v", stCold.Result, stHit.Result)
	}
	a, b := readArtifacts(t, dir, cold), readArtifacts(t, dir, hit)
	for _, name := range []string{"result.json", "vectors.vec", "terminal.json"} {
		if !bytes.Equal(a[name], b[name]) {
			t.Errorf("%s differs between the cold run and the cache hit", name)
		}
	}

	// ETag surface on both jobs: the digest, quoted.
	wantTag := `"` + stCold.Digest + `"`
	for _, id := range []string{cold, hit} {
		resp, err := http.Get(ts.URL + "/jobs/" + id + "/result")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if got := resp.Header.Get("ETag"); got != wantTag {
			t.Errorf("job %s ETag = %q, want %q", id, got, wantTag)
		}
	}
	req, _ := http.NewRequest("GET", ts.URL+"/jobs/"+hit+"/result", nil)
	req.Header.Set("If-None-Match", wantTag)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 1)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified || n != 0 {
		t.Errorf("If-None-Match revalidation: status %d with %d body bytes, want 304 empty", resp.StatusCode, n)
	}
	req.Header.Set("If-None-Match", `"deadbeef"`)
	if resp, err = http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("stale If-None-Match: status %d, want 200", resp.StatusCode)
	}
}

// TestCacheSingleflightRace floods a cache-backed server with
// identical submissions and holds the first campaign mid-run: exactly
// one campaign may execute, the rest must park and then complete from
// the leader's stored result, byte-identical.
func TestCacheSingleflightRace(t *testing.T) {
	dir := t.TempDir()
	cache := openCache(t, -1)
	srv, err := New(dir, Options{Workers: 4, CheckpointEvery: time.Millisecond, Cache: cache, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close(context.Background())

	var runs atomic.Int64
	release := make(chan struct{})
	srv.testRunCampaign = func(ctx context.Context, j *job, ccfg campaign.Config) (*campaign.Result, error) {
		runs.Add(1)
		select {
		case <-release:
		case <-ctx.Done():
		}
		res, err := campaign.Run(context.Background(), mustPrepare(t, j.spec).Circuit, mustPrepare(t, j.spec).Faults, ccfg)
		return res, err
	}

	const jobs = 8
	spec := Spec{Netlist: benchText(t, 5, 21), MaxFaults: 10, FaultBudget: 200_000}
	ids := make([]string, jobs)
	for i := range ids {
		id, err := srv.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}

	// Wait until the leader is inside the campaign and every other job
	// has been parked by the singleflight (state Queued, out of the
	// queue) — only then is the race window fully populated.
	deadline := time.Now().Add(time.Minute)
	for {
		srv.mu.Lock()
		var running, queued int
		for _, j := range srv.jobs {
			switch j.state {
			case Running:
				running++
			case Queued:
				queued++
			}
		}
		drained := len(srv.queue) == 0
		srv.mu.Unlock()
		if runs.Load() == 1 && running == 1 && queued == jobs-1 && drained {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("flood never converged: %d runs, %d running, %d parked", runs.Load(), running, queued)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)

	waitJobs(t, srv, time.Minute, func(st JobStatus) bool { return st.State == Done })
	if got := runs.Load(); got != 1 {
		t.Fatalf("%d campaigns ran for %d identical submissions, want exactly 1", got, jobs)
	}
	if st := cache.Stats(); st.Stored != 1 || st.Hits != jobs-1 {
		t.Fatalf("cache stats = %+v, want 1 stored entry and %d hits", st, jobs-1)
	}
	want := readArtifacts(t, dir, ids[0])
	for _, id := range ids[1:] {
		got := readArtifacts(t, dir, id)
		for name, data := range want {
			if !bytes.Equal(got[name], data) {
				t.Errorf("job %s: %s differs from the leader's", id, name)
			}
		}
	}
}

func mustPrepare(t *testing.T, spec Spec) *Prepared {
	t.Helper()
	p, err := Prepare(spec)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCacheChaosCorruptEntryColdRun is the cache's crash-consistency
// story end to end: a stored entry is corrupted on disk, the repeat
// submission quarantines it, falls through to a correct cold run, and
// the digest is re-cached for the next repeat.
func TestCacheChaosCorruptEntryColdRun(t *testing.T) {
	dir := t.TempDir()
	cacheDir := t.TempDir()
	cache, err := rescache.Open(rescache.Options{Dir: cacheDir, CapBytes: -1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(dir, Options{Workers: 1, CheckpointEvery: time.Millisecond, Cache: cache, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close(context.Background())

	spec := Spec{Netlist: benchText(t, 6, 17), MaxFaults: 15, FaultBudget: 200_000}
	cold, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitJobs(t, srv, 2*time.Minute, func(st JobStatus) bool { return st.State == Done })
	waitCache(t, cache, "1 stored entry", func(st rescache.Stats) bool { return st.Stored == 1 })

	// Tear the stored entry's payload the way a half-written or
	// bit-rotted disk would.
	ents, err := filepath.Glob(filepath.Join(cacheDir, "ent-*", "result.json"))
	if err != nil || len(ents) != 1 {
		t.Fatalf("stored entries = %v (err %v), want exactly one", ents, err)
	}
	data, err := os.ReadFile(ents[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(ents[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	rerun, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitJobs(t, srv, 2*time.Minute, func(st JobStatus) bool { return st.State == Done })
	waitCache(t, cache, "the re-stored entry", func(st rescache.Stats) bool { return st.Stored == 2 })

	st := cache.Stats()
	if st.Quarantined != 1 {
		t.Fatalf("cache stats = %+v, want the corrupt entry quarantined", st)
	}
	if quar, _ := filepath.Glob(filepath.Join(cacheDir, "quar-*")); len(quar) != 1 {
		t.Errorf("quarantine dirs = %v, want exactly one", quar)
	}
	// The cold re-run reproduced the original result bit for bit, and
	// re-stored it.
	a, b := readArtifacts(t, dir, cold), readArtifacts(t, dir, rerun)
	if !bytes.Equal(a["result.json"], b["result.json"]) || !bytes.Equal(a["vectors.vec"], b["vectors.vec"]) {
		t.Error("cold re-run after quarantine produced different artifacts")
	}
	if st.Stored != 2 || st.Entries != 1 {
		t.Errorf("cache stats = %+v, want the digest re-stored after quarantine", st)
	}
	third, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitJobs(t, srv, time.Minute, func(st JobStatus) bool { return st.State == Done })
	if got, _ := srv.Status(third); got.State != Done {
		t.Fatalf("third submission: %+v", got)
	}
	if cache.Stats().Hits < 1 {
		t.Error("re-stored entry never served a hit")
	}
}

// TestJSONErrorContentType sweeps the error surface — handler-level
// rejections and mux-level 404/405 alike — and requires every error
// response to be application/json with the {"error": ...} shape.
func TestJSONErrorContentType(t *testing.T) {
	srv, err := New(t.TempDir(), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		method, path, body string
		want               int
	}{
		{"GET", "/jobs/j009999", "", http.StatusNotFound},
		{"GET", "/jobs/j009999/result", "", http.StatusNotFound},
		{"POST", "/jobs", "{not json", http.StatusBadRequest},
		{"GET", "/no/such/route", "", http.StatusNotFound},   // mux-level 404
		{"DELETE", "/jobs", "", http.StatusMethodNotAllowed}, // mux-level 405
		{"PUT", "/version", "", http.StatusMethodNotAllowed}, // mux-level 405
	}
	for _, c := range cases {
		req, err := http.NewRequest(c.method, ts.URL+c.path, strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s %s: status %d, want %d", c.method, c.path, resp.StatusCode, c.want)
			continue
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Errorf("%s %s: Content-Type %q, want application/json", c.method, c.path, ct)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(buf.Bytes(), &e); err != nil || e.Error == "" {
			t.Errorf("%s %s: body %q is not an {\"error\": ...} document (%v)", c.method, c.path, buf.String(), err)
		}
	}
}

// TestCacheReplay is the traffic-replay harness from the issue: a
// Zipf-skewed stream of submissions against a capacity-bounded cache.
// It asserts the hit rate the dedupe story promises (>= 50%), that
// the cache never exceeds its byte cap at any point in the replay,
// and that every hit serves bytes identical to the cold run that
// populated its digest. With BENCH_CACHE_OUT set it writes the replay
// summary (hit rate, latency percentiles, eviction count) as JSON.
func TestCacheReplay(t *testing.T) {
	requests := 60
	if testing.Short() {
		requests = 36
	}
	const distinct = 8
	// Sized so the popular head of the Zipf mix stays resident but the
	// tail has to fight for space — evictions and hits at once. An
	// entry for these campaigns runs ~600 payload bytes, so the cap
	// holds roughly five of the eight distinct entries.
	const capBytes = 3 << 10

	dir := t.TempDir()
	cache, err := rescache.Open(rescache.Options{Dir: t.TempDir(), CapBytes: capBytes, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(dir, Options{Workers: 2, CheckpointEvery: time.Millisecond, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	specs := make([]Spec, distinct)
	for i := range specs {
		specs[i] = Spec{
			Name:        fmt.Sprintf("replay-%d", i),
			Netlist:     benchText(t, 4+i%4, int64(31+i)),
			MaxFaults:   12 + i,
			FaultBudget: 200_000,
		}
	}

	rng := rand.New(rand.NewSource(7))
	zipf := rand.NewZipf(rng, 1.3, 1, distinct-1)
	golden := map[string]map[string][]byte{} // digest -> first-run artifacts
	var latencies []time.Duration
	var coldLat, hitLat []time.Duration
	var hits int

	for n := 0; n < requests; n++ {
		spec := specs[zipf.Uint64()]
		before := cache.Stats()
		start := time.Now()
		id := postJob(t, ts.URL, spec)
		st := waitStatus(t, ts.URL, id, 2*time.Minute, "done", func(st JobStatus) bool { return st.State == Done })
		lat := time.Since(start)
		latencies = append(latencies, lat)

		// Done precedes the worker's asynchronous store; settle before
		// classifying this request and issuing the next, so a repeat of
		// this spec deterministically sees the entry.
		waitCache(t, cache, "this request settling", func(cs rescache.Stats) bool {
			return cs.Hits > before.Hits || cs.Stored > before.Stored
		})
		cs := cache.Stats()
		if cs.Bytes > capBytes {
			t.Fatalf("request %d: cache holds %d bytes, cap is %d", n, cs.Bytes, capBytes)
		}
		if cs.Hits > before.Hits {
			hits++
			hitLat = append(hitLat, lat)
		} else {
			coldLat = append(coldLat, lat)
		}
		if st.Digest == "" {
			t.Fatalf("request %d: job %s has no digest", n, id)
		}
		// Byte-identity across the whole replay for the semantic
		// artifacts. terminal.json is excluded here: an entry evicted
		// and re-populated by a cold re-run carries that run's finish
		// time (the hit-path test pins terminal.json verbatim).
		arts := readArtifacts(t, dir, id)
		if want, ok := golden[st.Digest]; ok {
			for _, name := range []string{"result.json", "vectors.vec"} {
				if !bytes.Equal(arts[name], want[name]) {
					t.Fatalf("request %d: %s differs from the first run of digest %.12s", n, name, st.Digest)
				}
			}
		} else {
			golden[st.Digest] = arts
		}
	}

	rate := float64(hits) / float64(requests)
	final := cache.Stats()
	t.Logf("replay: %d requests over %d campaigns: %d hits (%.0f%%), %d evictions, %d bytes resident (cap %d)",
		requests, distinct, hits, 100*rate, final.Evictions, final.Bytes, capBytes)
	t.Logf("latency: all P50 %v P99 %v, cold P50 %v, hit P50 %v",
		pctl(latencies, 50), pctl(latencies, 99), pctl(coldLat, 50), pctl(hitLat, 50))
	if rate < 0.5 {
		t.Errorf("hit rate %.2f, want >= 0.50", rate)
	}

	if out := os.Getenv("BENCH_CACHE_OUT"); out != "" {
		report := map[string]any{
			"requests":       requests,
			"distinct":       distinct,
			"zipf_s":         1.3,
			"hits":           hits,
			"hit_rate":       rate,
			"evictions":      final.Evictions,
			"quarantined":    final.Quarantined,
			"cap_bytes":      capBytes,
			"resident_bytes": final.Bytes,
			"p50_ms":         float64(pctl(latencies, 50)) / 1e6,
			"p99_ms":         float64(pctl(latencies, 99)) / 1e6,
			"cold_p50_ms":    float64(pctl(coldLat, 50)) / 1e6,
			"cold_p99_ms":    float64(pctl(coldLat, 99)) / 1e6,
			"hit_p50_ms":     float64(pctl(hitLat, 50)) / 1e6,
			"hit_p99_ms":     float64(pctl(hitLat, 99)) / 1e6,
		}
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// pctl is the nearest-rank percentile of a latency sample.
func pctl(sample []time.Duration, p int) time.Duration {
	if len(sample) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), sample...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	k := (p*len(s) + 99) / 100
	if k < 1 {
		k = 1
	}
	return s[k-1]
}
