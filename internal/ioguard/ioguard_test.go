package ioguard

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

func TestWriteFileDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "state.json")
	want := []byte(`{"k":1}`)
	if err := WriteFileDurable(OS, path, want, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := OS.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("read back %q, want %q", got, want)
	}
	// No stale temp file after a successful write.
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("temp file left behind (stat err %v)", err)
	}
	// Replacing the file keeps it whole.
	want2 := []byte(`{"k":2,"longer":true}`)
	if err := WriteFileDurable(OS, path, want2, 0o644); err != nil {
		t.Fatal(err)
	}
	if got, _ := OS.ReadFile(path); string(got) != string(want2) {
		t.Fatalf("after replace: %q, want %q", got, want2)
	}
}

// TestFaultFSPassThroughCounts: with no rules, the fault fs is
// transparent and counts exactly the mutating operations.
func TestFaultFSPassThroughCounts(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS)
	path := filepath.Join(dir, "a", "f.txt")
	if err := WriteFileDurable(ffs, path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	// mkdir + write + sync + rename + syncdir = 5 mutating ops.
	if got := ffs.MutatingOps(); got != 5 {
		t.Errorf("MutatingOps = %d, want 5", got)
	}
	if _, err := ffs.ReadFile(path); err != nil {
		t.Fatal(err)
	}
	if got := ffs.MutatingOps(); got != 5 {
		t.Errorf("read advanced the mutating counter to %d", got)
	}
	if ffs.Trips() != 0 {
		t.Errorf("%d trips with no rules", ffs.Trips())
	}
}

// TestFaultFSFailNthWrite: a rule windowed on the op index fails
// exactly the scripted operation; the trip callback fires.
func TestFaultFSFailNthWrite(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS, Rule{Kind: "write", From: 1, Count: 1})
	var tripped []int
	ffs.OnTrip(func(op int, r Rule) { tripped = append(tripped, op) })

	if err := ffs.WriteFile(filepath.Join(dir, "a"), []byte("1"), 0o644); err != nil {
		t.Fatalf("op 0 failed: %v", err)
	}
	err := ffs.WriteFile(filepath.Join(dir, "b"), []byte("2"), 0o644)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("op 1: err = %v, want ErrInjected", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "b")); !errors.Is(err, os.ErrNotExist) {
		t.Error("Fail mode touched the disk")
	}
	if err := ffs.WriteFile(filepath.Join(dir, "c"), []byte("3"), 0o644); err != nil {
		t.Fatalf("op 2 failed: %v", err)
	}
	if len(tripped) != 1 || tripped[0] != 1 {
		t.Errorf("tripped ops %v, want [1]", tripped)
	}
}

// TestFaultFSTornWrite: Torn leaves the scripted prefix on disk and
// reports the failure; ENOSPC does the same with a full-disk error.
func TestFaultFSTornAndENOSPC(t *testing.T) {
	dir := t.TempDir()
	data := []byte("0123456789")

	torn := filepath.Join(dir, "torn")
	ffs := NewFaultFS(OS, Rule{Kind: "write", Mode: Torn, KeepBytes: 4})
	if err := ffs.WriteFile(torn, data, 0o644); !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write err = %v", err)
	}
	if got, _ := os.ReadFile(torn); string(got) != "0123" {
		t.Errorf("torn file holds %q, want the 4-byte prefix", got)
	}

	full := filepath.Join(dir, "full")
	ffs = NewFaultFS(OS, Rule{Kind: "write", Mode: ENOSPC})
	if err := ffs.WriteFile(full, data, 0o644); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("ENOSPC write err = %v", err)
	}
	if got, _ := os.ReadFile(full); len(got) != len(data)/2 {
		t.Errorf("ENOSPC left %d bytes, want half (%d)", len(got), len(data)/2)
	}
}

// TestFaultFSKill: after Kill every operation fails, reads included —
// the process is dead.
func TestFaultFSKill(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	ffs := NewFaultFS(OS)
	ffs.Kill()
	if err := ffs.WriteFile(path, []byte("y"), 0o644); !errors.Is(err, ErrKilled) {
		t.Errorf("write after kill: %v", err)
	}
	if _, err := ffs.ReadFile(path); !errors.Is(err, ErrKilled) {
		t.Errorf("read after kill: %v", err)
	}
	if err := ffs.Remove(path); !errors.Is(err, ErrKilled) {
		t.Errorf("remove after kill: %v", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "x" {
		t.Errorf("killed fs modified the disk: %q", got)
	}
}

// TestFaultFSKillOnTrip is the chaos-suite idiom: the first tripped
// rule kills the fs, so the scripted failure point and everything
// after it fail, exactly like a crash at that write.
func TestFaultFSKillOnTrip(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS, Rule{From: 2})
	ffs.OnTrip(func(op int, r Rule) { ffs.Kill() })
	a, b := filepath.Join(dir, "a"), filepath.Join(dir, "b")
	if err := ffs.WriteFile(a, []byte("1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ffs.WriteFile(b, []byte("2"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ffs.WriteFile(a, []byte("3"), 0o644); !errors.Is(err, ErrInjected) {
		t.Fatalf("op 2: %v", err)
	}
	if err := ffs.Sync(a); !errors.Is(err, ErrKilled) {
		t.Fatalf("op 3 after kill: %v", err)
	}
	if got, _ := os.ReadFile(a); string(got) != "1" {
		t.Errorf("a = %q, want the pre-crash content", got)
	}
}

// TestFaultFSPathAndKindMatch: rules scope by path substring and kind.
func TestFaultFSPathAndKindMatch(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS, Rule{Kind: "write", PathContains: "checkpoint"})
	if err := ffs.WriteFile(filepath.Join(dir, "job.json"), []byte("j"), 0o644); err != nil {
		t.Fatalf("unmatched path failed: %v", err)
	}
	if err := ffs.WriteFile(filepath.Join(dir, "checkpoint.json"), []byte("c"), 0o644); !errors.Is(err, ErrInjected) {
		t.Fatalf("matched path err = %v", err)
	}
	// A rename of the same path is a different kind and passes.
	if err := os.WriteFile(filepath.Join(dir, "checkpoint.old"), []byte("o"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ffs.Rename(filepath.Join(dir, "checkpoint.old"), filepath.Join(dir, "checkpoint.new")); err != nil {
		t.Fatalf("unmatched kind failed: %v", err)
	}
}

// TestFaultFSDelay: Delay injects latency but the operation succeeds.
func TestFaultFSDelay(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS, Rule{Kind: "write", Mode: Delay, Delay: 20 * time.Millisecond})
	start := time.Now()
	if err := ffs.WriteFile(filepath.Join(dir, "slow"), []byte("s"), 0o644); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Errorf("delayed write took %v, want >= 20ms", d)
	}
	if got, _ := os.ReadFile(filepath.Join(dir, "slow")); string(got) != "s" {
		t.Error("delayed write lost the data")
	}
}

// TestNoSyncDelegates: NoSync writes real bytes and swallows only the
// flush calls, so durable-write sequences behave identically minus the
// physical fsyncs.
func TestNoSyncDelegates(t *testing.T) {
	dir := t.TempDir()
	fsys := NoSync(OS)
	path := filepath.Join(dir, "f")
	if err := WriteFileDurable(fsys, path, []byte("payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := fsys.ReadFile(path)
	if err != nil || string(got) != "payload" {
		t.Fatalf("read after durable write: %q, %v", got, err)
	}
	if err := fsys.Sync(filepath.Join(dir, "missing")); err != nil {
		t.Errorf("NoSync.Sync touched the disk: %v", err)
	}
	if err := fsys.SyncDir(filepath.Join(dir, "missing")); err != nil {
		t.Errorf("NoSync.SyncDir touched the disk: %v", err)
	}
}
