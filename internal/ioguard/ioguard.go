// Package ioguard is the filesystem seam between the persistence
// paths (campaign checkpoints, the service job store) and the OS. All
// durable state in this system is written through an FS value: the
// real implementation in production, and a fault-injecting
// implementation (FaultFS) in the chaos tests, which can fail the Nth
// write, truncate mid-write to simulate torn writes and power loss,
// return ENOSPC, delay I/O, or go dead entirely the way a killed
// process does. The seam cannot change what a campaign computes — only
// whether its state survives — which is why it is never part of a
// checkpoint fingerprint.
package ioguard

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// FS is the set of filesystem operations the persistence layers use.
// Write operations carry no durability on their own: callers that need
// crash safety combine them with Sync/SyncDir (or use
// WriteFileDurable), and the chaos suite exists to prove they did.
type FS interface {
	ReadFile(path string) ([]byte, error)
	// WriteFile creates or truncates path with data. It does NOT sync.
	WriteFile(path string, data []byte, perm fs.FileMode) error
	Rename(oldpath, newpath string) error
	Remove(path string) error
	MkdirAll(path string, perm fs.FileMode) error
	ReadDir(path string) ([]fs.DirEntry, error)
	Glob(pattern string) ([]string, error)
	// Sync fsyncs the file at path.
	Sync(path string) error
	// SyncDir fsyncs the directory at path, making previously renamed
	// or created entries durable.
	SyncDir(path string) error
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (osFS) WriteFile(path string, data []byte, perm fs.FileMode) error {
	return os.WriteFile(path, data, perm)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(path string) error { return os.Remove(path) }

func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) ReadDir(path string) ([]fs.DirEntry, error) { return os.ReadDir(path) }

func (osFS) Glob(pattern string) ([]string, error) { return filepath.Glob(pattern) }

func (osFS) Sync(path string) error { return syncPath(path) }

func (osFS) SyncDir(path string) error { return syncPath(path) }

// syncPath opens path read-only and fsyncs it; on Linux this is valid
// for both regular files and directories.
func syncPath(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("fsync %s: %w", path, err)
	}
	return f.Close()
}

// NoSync wraps an FS so that Sync and SyncDir succeed without touching
// the disk. It exists for tests: every crash-safety property that is
// observable in-process (rename atomicity, generation rotation,
// fallback on corruption) is independent of physical flushing, which
// only matters across power loss — and real fsyncs dominate the
// runtime of checkpoint-heavy tests on some filesystems. Production
// code must not use it.
func NoSync(fsys FS) FS { return noSyncFS{fsys} }

type noSyncFS struct{ FS }

func (noSyncFS) Sync(string) error    { return nil }
func (noSyncFS) SyncDir(string) error { return nil }

// WriteFileDurable atomically and durably replaces path with data:
// write to path+".tmp", fsync the temp file, rename over path, fsync
// the parent directory. After it returns nil, a crash at any later
// point leaves the complete new content at path; a crash at any
// earlier point leaves the previous content of path untouched (plus,
// possibly, a stale .tmp file for startup sweeps to collect).
func WriteFileDurable(fsys FS, path string, data []byte, perm fs.FileMode) error {
	dir := filepath.Dir(path)
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := fsys.WriteFile(tmp, data, perm); err != nil {
		return err
	}
	if err := fsys.Sync(tmp); err != nil {
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return err
	}
	return fsys.SyncDir(dir)
}
