package ioguard

import (
	"errors"
	"fmt"
	"io/fs"
	"strings"
	"sync"
	"syscall"
	"time"
)

// Injection errors. ErrInjected is the generic scripted failure;
// ErrKilled is returned by every operation after Kill, the way every
// syscall "fails" once the process is dead.
var (
	ErrInjected = errors.New("ioguard: injected fault")
	ErrKilled   = errors.New("ioguard: filesystem killed")
)

// Mode selects what a matching Rule does to the operation.
type Mode int

const (
	// Fail returns Rule.Err (ErrInjected if nil) without touching disk.
	Fail Mode = iota
	// ENOSPC writes a truncated prefix of the data (writes only), then
	// returns syscall.ENOSPC — a full disk accepts part of a write.
	ENOSPC
	// Torn writes a truncated prefix of the data (writes only), then
	// returns ErrInjected: a power cut mid-write.
	Torn
	// Delay sleeps Rule.Delay, then performs the operation normally.
	Delay
)

func (m Mode) String() string {
	switch m {
	case Fail:
		return "fail"
	case ENOSPC:
		return "enospc"
	case Torn:
		return "torn"
	case Delay:
		return "delay"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Rule scripts one fault: it matches operations by kind, path
// substring and position in the mutating-op sequence, and injects
// Mode. Rules are evaluated in order; the first match fires.
type Rule struct {
	// Kind restricts the rule to one operation kind: "write", "rename",
	// "remove", "mkdir", "sync", "syncdir", "read", "readdir", "glob".
	// Empty matches every kind.
	Kind string
	// PathContains restricts the rule to operations whose path (or
	// pattern) contains this substring. Empty matches every path.
	PathContains string
	// From and Count bound the firing window in mutating-op indices:
	// the rule fires on matching operations whose index is in
	// [From, From+Count). Count <= 0 leaves the window open-ended.
	// Read-kind operations are matched against the index the next
	// mutating operation would get.
	From, Count int
	// Mode is the injected behavior; the zero value is Fail.
	Mode Mode
	// Err overrides the returned error for Fail; nil selects ErrInjected.
	Err error
	// KeepBytes is how much of a torn/ENOSPC write actually lands on
	// disk: 0 means half the data, negative means nothing.
	KeepBytes int
	// Delay is the sleep for Mode Delay.
	Delay time.Duration
}

// FaultFS wraps an inner FS and injects scripted faults. It also
// counts mutating operations, so a recording pass (no rules) can
// enumerate every write point of a workload and a chaos loop can then
// kill the workload at each one.
type FaultFS struct {
	inner FS

	mu     sync.Mutex
	rules  []Rule
	mutOps int
	trips  int
	killed bool
	onTrip func(op int, r Rule)
}

// NewFaultFS wraps inner with the given fault schedule. With no rules
// it is a transparent pass-through that counts mutating operations.
func NewFaultFS(inner FS, rules ...Rule) *FaultFS {
	return &FaultFS{inner: inner, rules: rules}
}

// OnTrip registers a callback invoked (without internal locks held)
// every time a rule fires; chaos tests use it to cancel the workload's
// context at the moment of the injected crash.
func (f *FaultFS) OnTrip(fn func(op int, r Rule)) { f.mu.Lock(); f.onTrip = fn; f.mu.Unlock() }

// Kill makes every subsequent operation — reads included — fail with
// ErrKilled, simulating the process dying mid-run.
func (f *FaultFS) Kill() { f.mu.Lock(); f.killed = true; f.mu.Unlock() }

// MutatingOps reports how many mutating operations (write, rename,
// remove, mkdir, sync, syncdir) have been issued so far.
func (f *FaultFS) MutatingOps() int { f.mu.Lock(); defer f.mu.Unlock(); return f.mutOps }

// Trips reports how many times a rule has fired.
func (f *FaultFS) Trips() int { f.mu.Lock(); defer f.mu.Unlock(); return f.trips }

// begin advances the op counter, checks the kill latch, and returns
// the first matching rule (by value) if one fires.
func (f *FaultFS) begin(kind, path string, mutating bool) (rule *Rule, err error) {
	f.mu.Lock()
	op := f.mutOps
	if mutating {
		f.mutOps++
	}
	if f.killed {
		f.mu.Unlock()
		return nil, fmt.Errorf("ioguard: %s %s: %w", kind, path, ErrKilled)
	}
	var hit *Rule
	for i := range f.rules {
		r := &f.rules[i]
		if r.Kind != "" && r.Kind != kind {
			continue
		}
		if r.PathContains != "" && !strings.Contains(path, r.PathContains) {
			continue
		}
		if op < r.From || (r.Count > 0 && op >= r.From+r.Count) {
			continue
		}
		hit = r
		break
	}
	var cb func(int, Rule)
	var rv Rule
	if hit != nil {
		f.trips++
		rv = *hit
		cb = f.onTrip
	}
	f.mu.Unlock()
	if hit == nil {
		return nil, nil
	}
	if cb != nil {
		// An OnTrip callback may Kill the fs; the current operation
		// still applies its scripted mode (a torn write tears before
		// the process dies), the latch covers the operations after it.
		cb(op, rv)
	}
	return &rv, nil
}

func (r *Rule) failErr(kind, path string) error {
	e := r.Err
	if e == nil {
		e = ErrInjected
	}
	return fmt.Errorf("ioguard: %s %s: %w", kind, path, e)
}

func (f *FaultFS) ReadFile(path string) ([]byte, error) {
	r, err := f.begin("read", path, false)
	if err != nil {
		return nil, err
	}
	if r != nil {
		if r.Mode == Delay {
			time.Sleep(r.Delay)
		} else {
			return nil, r.failErr("read", path)
		}
	}
	return f.inner.ReadFile(path)
}

func (f *FaultFS) WriteFile(path string, data []byte, perm fs.FileMode) error {
	r, err := f.begin("write", path, true)
	if err != nil {
		return err
	}
	if r == nil {
		return f.inner.WriteFile(path, data, perm)
	}
	switch r.Mode {
	case Delay:
		time.Sleep(r.Delay)
		return f.inner.WriteFile(path, data, perm)
	case Torn, ENOSPC:
		keep := r.KeepBytes
		if keep == 0 {
			keep = len(data) / 2
		}
		if keep < 0 {
			keep = 0
		}
		if keep > len(data) {
			keep = len(data)
		}
		// Best effort: the torn prefix is what survives the "crash".
		_ = f.inner.WriteFile(path, data[:keep], perm)
		if r.Mode == ENOSPC {
			return fmt.Errorf("ioguard: write %s (%d/%d bytes): %w", path, keep, len(data), syscall.ENOSPC)
		}
		return fmt.Errorf("ioguard: torn write %s (%d/%d bytes): %w", path, keep, len(data), ErrInjected)
	default:
		return r.failErr("write", path)
	}
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	r, err := f.begin("rename", oldpath, true)
	if err != nil {
		return err
	}
	if r != nil {
		if r.Mode == Delay {
			time.Sleep(r.Delay)
		} else {
			return r.failErr("rename", oldpath+" -> "+newpath)
		}
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(path string) error {
	r, err := f.begin("remove", path, true)
	if err != nil {
		return err
	}
	if r != nil {
		if r.Mode == Delay {
			time.Sleep(r.Delay)
		} else {
			return r.failErr("remove", path)
		}
	}
	return f.inner.Remove(path)
}

func (f *FaultFS) MkdirAll(path string, perm fs.FileMode) error {
	r, err := f.begin("mkdir", path, true)
	if err != nil {
		return err
	}
	if r != nil {
		if r.Mode == Delay {
			time.Sleep(r.Delay)
		} else {
			return r.failErr("mkdir", path)
		}
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *FaultFS) ReadDir(path string) ([]fs.DirEntry, error) {
	r, err := f.begin("readdir", path, false)
	if err != nil {
		return nil, err
	}
	if r != nil {
		if r.Mode == Delay {
			time.Sleep(r.Delay)
		} else {
			return nil, r.failErr("readdir", path)
		}
	}
	return f.inner.ReadDir(path)
}

func (f *FaultFS) Glob(pattern string) ([]string, error) {
	r, err := f.begin("glob", pattern, false)
	if err != nil {
		return nil, err
	}
	if r != nil {
		if r.Mode == Delay {
			time.Sleep(r.Delay)
		} else {
			return nil, r.failErr("glob", pattern)
		}
	}
	return f.inner.Glob(pattern)
}

func (f *FaultFS) Sync(path string) error {
	r, err := f.begin("sync", path, true)
	if err != nil {
		return err
	}
	if r != nil {
		if r.Mode == Delay {
			time.Sleep(r.Delay)
		} else {
			return r.failErr("sync", path)
		}
	}
	return f.inner.Sync(path)
}

func (f *FaultFS) SyncDir(path string) error {
	r, err := f.begin("syncdir", path, true)
	if err != nil {
		return err
	}
	if r != nil {
		if r.Mode == Delay {
			time.Sleep(r.Delay)
		} else {
			return r.failErr("syncdir", path)
		}
	}
	return f.inner.SyncDir(path)
}
