package retime

import (
	"fmt"
	"sort"

	"seqatpg/internal/netlist"
)

// This file implements the paper's atomic retiming transformations
// (Figure 1): moving a register backward across a combinational gate
// (one register on the gate's output becomes one register on each
// fanin) and forward across a gate (one register per fanin becomes one
// register on the output). Sequences of backward moves are the
// mechanism that creates the paper's low-density retimed circuit class:
// every move multiplies registers across the fanin cone while the valid
// state set barely grows.

// CanMoveBackward reports whether the register dff can be moved backward
// across its driving gate: the driver must be combinational and the dff
// must be the driver's only fanout (otherwise the move would change the
// logic seen by the other fanouts).
func CanMoveBackward(c *netlist.Circuit, fanouts [][]int, dff int) bool {
	if c.Gates[dff].Type != netlist.DFF {
		return false
	}
	drv := c.Gates[dff].Fanin[0]
	g := c.Gates[drv]
	if !g.Type.IsCombinational() || g.Type == netlist.Const0 || g.Type == netlist.Const1 {
		return false
	}
	return len(fanouts[drv]) == 1
}

// MoveBackward performs one atomic backward move of register dff across
// its driving gate, editing the circuit in place. Registers on the new
// fanin positions are shared: if a fanin already feeds a DFF created
// for the same move set, that DFF is reused. The dff gate is rewired to
// become a buffer-free pass-through: the gate's old consumers now read
// the gate directly, and the gate reads registered fanins.
//
// The caller must have checked CanMoveBackward; the move returns the
// ids of the registers now feeding the gate.
func MoveBackward(c *netlist.Circuit, dff int) ([]int, error) {
	drv := c.Gates[dff].Fanin[0]
	if !c.Gates[drv].Type.IsCombinational() {
		return nil, fmt.Errorf("retime: gate %d is not combinational", drv)
	}
	// Insert a register on each fanin of the driver, sharing one
	// register per distinct fanin source. Work on a snapshot of the
	// fanin list: AddGate may reallocate the gate slice.
	fanins := append([]int(nil), c.Gates[drv].Fanin...)
	newFF := map[int]int{}
	var created []int
	for pin, f := range fanins {
		ff, ok := newFF[f]
		if !ok {
			ff = c.AddGate(netlist.DFF, fmt.Sprintf("%s_b%d", c.Gates[f].Name, len(c.DFFs)), f)
			newFF[f] = ff
			created = append(created, ff)
		}
		c.Gates[drv].Fanin[pin] = ff
	}
	// The moved register disappears: its consumers read the gate output.
	replaceReader(c, dff, drv)
	removeDFF(c, dff)
	return created, nil
}

// CanMoveForward reports whether gate id can absorb the registers on
// its fanins: every fanin must be a DFF whose only fanout is this gate,
// and the gate must be combinational.
func CanMoveForward(c *netlist.Circuit, fanouts [][]int, id int) bool {
	g := c.Gates[id]
	if !g.Type.IsCombinational() || len(g.Fanin) == 0 {
		return false
	}
	seen := map[int]bool{}
	for _, f := range g.Fanin {
		if c.Gates[f].Type != netlist.DFF {
			return false
		}
		if seen[f] {
			continue
		}
		seen[f] = true
		if len(fanouts[f]) != 1 {
			return false
		}
	}
	return true
}

// MoveForward performs one atomic forward move: the registers on every
// fanin of gate id are replaced by a single register on its output.
// Returns the id of the new output register. The caller must have
// checked CanMoveForward.
func MoveForward(c *netlist.Circuit, id int) (int, error) {
	g := c.Gates[id]
	old := map[int]bool{}
	for pin, f := range g.Fanin {
		if c.Gates[f].Type != netlist.DFF {
			return -1, fmt.Errorf("retime: fanin %d of gate %d is not a DFF", f, id)
		}
		old[f] = true
		c.Gates[id].Fanin[pin] = c.Gates[f].Fanin[0]
	}
	ff := c.AddGate(netlist.DFF, fmt.Sprintf("%s_f", g.Name), id)
	// Everyone who read the gate now reads the register instead.
	for rid := range c.Gates {
		if rid == ff {
			continue
		}
		for pin, f := range c.Gates[rid].Fanin {
			if f == id && rid != ff {
				c.Gates[rid].Fanin[pin] = ff
			}
		}
	}
	// But the register itself must keep reading the gate.
	c.Gates[ff].Fanin[0] = id
	for d := range old {
		removeDFF(c, d)
	}
	return ff, nil
}

// replaceReader rewires every fanin reference to from so it reads to.
func replaceReader(c *netlist.Circuit, from, to int) {
	for id := range c.Gates {
		for pin, f := range c.Gates[id].Fanin {
			if f == from {
				c.Gates[id].Fanin[pin] = to
			}
		}
	}
}

// removeDFF turns a DFF gate into an orphaned buffer of a constant so it
// drops out of the DFF list; the circuit is then compacted.
func removeDFF(c *netlist.Circuit, dff int) {
	// Mark: nothing references it anymore (callers rewired readers).
	for i, id := range c.DFFs {
		if id == dff {
			c.DFFs = append(c.DFFs[:i], c.DFFs[i+1:]...)
			break
		}
	}
	// Neutralize the gate so Validate's type census stays consistent:
	// it becomes a Buf of its old driver, unreferenced.
	c.Gates[dff] = netlist.Gate{Type: netlist.Buf, Fanin: []int{c.Gates[dff].Fanin[0]}, Name: "dead"}
}

// Compact rebuilds the circuit without unreachable gates (gates that
// drive nothing transitively observable). It preserves PI/PO/DFF order.
func Compact(c *netlist.Circuit) *netlist.Circuit {
	keep := make([]bool, len(c.Gates))
	var mark func(int)
	mark = func(id int) {
		if keep[id] {
			return
		}
		keep[id] = true
		for _, f := range c.Gates[id].Fanin {
			mark(f)
		}
	}
	for _, id := range c.POs {
		mark(id)
	}
	// PIs are part of the interface even when unread.
	for _, id := range c.PIs {
		keep[id] = true
	}
	out := netlist.New(c.Name)
	remap := make([]int, len(c.Gates))
	for i := range remap {
		remap[i] = -1
	}
	// Allocate in original order to keep interface ordering stable.
	for id, g := range c.Gates {
		if keep[id] {
			remap[id] = out.AddGate(g.Type, g.Name)
		}
	}
	for id, g := range c.Gates {
		if !keep[id] {
			continue
		}
		fanin := make([]int, len(g.Fanin))
		for k, f := range g.Fanin {
			fanin[k] = remap[f]
		}
		out.Gates[remap[id]].Fanin = fanin
	}
	if c.ResetPI >= 0 {
		out.ResetPI = remap[c.ResetPI]
	}
	return out
}

// Backward applies `rounds` sweeps of atomic backward moves: in each
// sweep, every currently movable register is moved backward across its
// driver, deepest drivers first. This reproduces the paper's retimed
// circuit class directly from its own atomic-transformation framing:
// register count multiplies across fanin cones while behaviour (after
// the reset flush) is preserved.
func Backward(c *netlist.Circuit, lib *netlist.Library, rounds int) (*Result, error) {
	work := c.Clone()
	work.Name = c.Name + ".re"
	for round := 0; round < rounds; round++ {
		fanouts := work.Fanouts()
		// Snapshot the movable registers before editing.
		var movable []int
		for _, dff := range work.DFFs {
			if CanMoveBackward(work, fanouts, dff) {
				movable = append(movable, dff)
			}
		}
		if len(movable) == 0 {
			break
		}
		// Deepest drivers first so the sweep balances long paths.
		lv, err := work.Levels()
		if err != nil {
			return nil, err
		}
		sort.SliceStable(movable, func(i, j int) bool {
			return lv[work.Gates[movable[i]].Fanin[0]] > lv[work.Gates[movable[j]].Fanin[0]]
		})
		for _, dff := range movable {
			// Re-check: earlier moves in this sweep may have changed
			// fanouts (e.g. shared new registers).
			fo := work.Fanouts()
			if !CanMoveBackward(work, fo, dff) {
				continue
			}
			if _, err := MoveBackward(work, dff); err != nil {
				return nil, err
			}
		}
	}
	out := Compact(work)
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("retime: backward-retimed circuit invalid: %w", err)
	}
	period, err := CurrentPeriod(out, lib)
	if err != nil {
		return nil, err
	}
	flush := 0
	if out.ResetPI >= 0 {
		if flush, err = FlushLength(out); err != nil {
			return nil, err
		}
	}
	return &Result{Circuit: out, Period: period, FlushCycles: flush}, nil
}
