// Package retime implements the Leiserson-Saxe retiming transformation
// on gate-level netlists: the register-weighted retiming graph, clock
// period feasibility via the FEAS relaxation algorithm, minimum-period
// search, and netlist reconstruction with maximal register sharing at
// fanout stems. Retimings are I/O-preserving: primary inputs and
// outputs are pinned, so every PI-to-PO path keeps its register count
// and the retimed circuit implements the same sequential function
// (Theorem 1 of the reproduced paper) once its registers are flushed by
// holding the explicit reset line.
package retime

import (
	"fmt"

	"seqatpg/internal/netlist"
)

// edge is one connection of the retiming graph: from vertex u to vertex
// v through w registers, realizing fanin position pin of gate v.
type edge struct {
	u, v int
	w    int
	pin  int
}

// graph is the retiming view of a circuit: vertices are the non-DFF
// gates (indexed by their gate id in the original circuit); DFFs have
// been absorbed into edge weights.
type graph struct {
	c      *netlist.Circuit
	delays []float64 // per-vertex gate delay; 0 for IO/const vertices
	pinned []bool    // vertices whose r must stay 0 (IO, constants)
	edges  []edge
	inEdg  [][]int // vertex -> indices into edges (incoming)
	outEdg [][]int
	verts  []int // gate ids that are vertices
	isVert []bool
}

// buildGraph converts the circuit. Register chains between gates become
// edge weights; each DFF in the circuit contributes to exactly the
// edges that pass through it.
func buildGraph(c *netlist.Circuit, lib *netlist.Library) (*graph, error) {
	g := &graph{
		c:      c,
		delays: make([]float64, len(c.Gates)),
		pinned: make([]bool, len(c.Gates)),
		isVert: make([]bool, len(c.Gates)),
	}
	for id, gate := range c.Gates {
		switch gate.Type {
		case netlist.DFF:
			continue
		case netlist.Input, netlist.Output, netlist.Const0, netlist.Const1:
			g.pinned[id] = true
			g.delays[id] = 0
		default:
			g.delays[id] = lib.Delay(gate.Type, len(gate.Fanin))
		}
		g.isVert[id] = true
		g.verts = append(g.verts, id)
	}
	for id, gate := range c.Gates {
		if gate.Type == netlist.DFF || gate.Type == netlist.Input ||
			gate.Type == netlist.Const0 || gate.Type == netlist.Const1 {
			continue
		}
		for pin, f := range gate.Fanin {
			w := 0
			src := f
			for c.Gates[src].Type == netlist.DFF {
				w++
				src = c.Gates[src].Fanin[0]
			}
			if !g.isVert[src] {
				return nil, fmt.Errorf("retime: fanin of gate %d resolves to non-vertex %d", id, src)
			}
			g.edges = append(g.edges, edge{u: src, v: id, w: w, pin: pin})
		}
	}
	g.inEdg = make([][]int, len(c.Gates))
	g.outEdg = make([][]int, len(c.Gates))
	for i, e := range g.edges {
		g.inEdg[e.v] = append(g.inEdg[e.v], i)
		g.outEdg[e.u] = append(g.outEdg[e.u], i)
	}
	return g, nil
}

// wr returns the retimed weight of edge e under labels r.
func (g *graph) wr(e edge, r []int) int { return e.w + r[e.v] - r[e.u] }

// clockPeriod computes per-vertex combinational arrival times Δ under
// labels r, propagating along edges whose retimed weight is ≤ 0 (a
// conservative treatment of transient negatives during FEAS). The
// second result is false when the zero-weight subgraph is cyclic, which
// means the labels are not (yet) legal.
func (g *graph) clockPeriod(r []int) (delta []float64, period float64, ok bool) {
	delta = make([]float64, len(g.c.Gates))
	state := make([]byte, len(g.c.Gates)) // 0 unvisited, 1 on stack, 2 done
	var visit func(v int) bool
	visit = func(v int) bool {
		switch state[v] {
		case 1:
			return false // cycle
		case 2:
			return true
		}
		state[v] = 1
		maxIn := 0.0
		for _, ei := range g.inEdg[v] {
			e := g.edges[ei]
			if g.wr(e, r) > 0 {
				continue
			}
			if !visit(e.u) {
				return false
			}
			if delta[e.u] > maxIn {
				maxIn = delta[e.u]
			}
		}
		delta[v] = maxIn + g.delays[v]
		state[v] = 2
		return true
	}
	for _, v := range g.verts {
		if !visit(v) {
			return nil, 0, false
		}
		if delta[v] > period {
			period = delta[v]
		}
	}
	return delta, period, true
}

// feas runs the Leiserson-Saxe FEAS relaxation for target period c:
// repeatedly increment r(v) for every unpinned vertex whose arrival
// exceeds c, restoring edge-weight nonnegativity between rounds.
// Returns legal labels achieving period ≤ c, or ok=false.
func (g *graph) feas(c float64) (r []int, ok bool) {
	r = make([]int, len(g.c.Gates))
	n := len(g.verts)
	// Cap the relaxation rounds: FEAS needs at most |V|-1 rounds, but on
	// the largest circuits a tighter cap only risks reporting a feasible
	// period as infeasible (the search then settles on a slightly larger,
	// still-legal period).
	rounds := 2 * n
	if rounds > 4000 {
		rounds = 4000
	}
	for iter := 0; iter <= rounds; iter++ {
		// Restore nonnegativity: lift the head of every negative edge
		// just enough. A pinned head that cannot be lifted makes the
		// target infeasible.
		repaired := false
		for pass := 0; pass <= n; pass++ {
			anyNeg := false
			for _, e := range g.edges {
				if d := g.wr(e, r); d < 0 {
					if g.pinned[e.v] {
						return nil, false
					}
					r[e.v] -= d
					anyNeg = true
				}
			}
			if !anyNeg {
				break
			}
			repaired = true
			if pass == n {
				return nil, false // negative cycle: cannot happen on legal inputs
			}
		}
		_ = repaired

		delta, period, legal := g.clockPeriod(r)
		if !legal {
			// Zero-weight cycle with nonnegative weights would be a
			// combinational cycle; the input circuit has none, so this
			// target is hopeless.
			return nil, false
		}
		if period <= c+1e-9 {
			if g.legal(r) {
				return r, true
			}
			return nil, false
		}
		moved := false
		for _, v := range g.verts {
			if g.pinned[v] {
				continue
			}
			if delta[v] > c+1e-9 {
				r[v]++
				moved = true
			}
		}
		if !moved {
			return nil, false
		}
	}
	return nil, false
}

// legal reports whether all retimed edge weights are nonnegative and all
// pinned vertices have label 0.
func (g *graph) legal(r []int) bool {
	for _, v := range g.verts {
		if g.pinned[v] && r[v] != 0 {
			return false
		}
	}
	for _, e := range g.edges {
		if g.wr(e, r) < 0 {
			return false
		}
	}
	return true
}

// registerCount returns the number of DFFs the rebuilt circuit will
// contain under labels r, with register chains shared across fanout
// edges (each vertex contributes max over out-edges of the retimed
// weight).
func (g *graph) registerCount(r []int) int {
	total := 0
	for _, u := range g.verts {
		maxW := 0
		for _, ei := range g.outEdg[u] {
			if w := g.wr(g.edges[ei], r); w > maxW {
				maxW = w
			}
		}
		total += maxW
	}
	return total
}
