package retime

import (
	"testing"

	"seqatpg/internal/netlist"
)

// pipeline builds: in -> g1 -> DFF -> g2 -> DFF -> DFF -> g3 -> out,
// a linear structure with known edge weights.
func pipeline(t *testing.T) *netlist.Circuit {
	t.Helper()
	c := netlist.New("pipe")
	in := c.AddGate(netlist.Input, "in")
	g1 := c.AddGate(netlist.Not, "g1", in)
	f1 := c.AddGate(netlist.DFF, "f1", g1)
	g2 := c.AddGate(netlist.Not, "g2", f1)
	f2 := c.AddGate(netlist.DFF, "f2", g2)
	f3 := c.AddGate(netlist.DFF, "f3", f2)
	g3 := c.AddGate(netlist.Not, "g3", f3)
	c.AddGate(netlist.Output, "o", g3)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBuildGraphWeights(t *testing.T) {
	c := pipeline(t)
	g, err := buildGraph(c, netlist.DefaultLibrary())
	if err != nil {
		t.Fatal(err)
	}
	// Vertices: in, g1, g2, g3, out — DFFs absorbed into weights.
	if len(g.verts) != 5 {
		t.Fatalf("vertices = %d, want 5", len(g.verts))
	}
	// Edge weights: in->g1: 0; g1->g2: 1; g2->g3: 2 (DFF chain); g3->out: 0.
	weightBetween := func(uName, vName string) (int, bool) {
		for _, e := range g.edges {
			if c.Gates[e.u].Name == uName && c.Gates[e.v].Name == vName {
				return e.w, true
			}
		}
		return 0, false
	}
	cases := []struct {
		u, v string
		w    int
	}{
		{"in", "g1", 0}, {"g1", "g2", 1}, {"g2", "g3", 2}, {"g3", "o", 0},
	}
	for _, tc := range cases {
		w, ok := weightBetween(tc.u, tc.v)
		if !ok {
			t.Errorf("missing edge %s->%s", tc.u, tc.v)
			continue
		}
		if w != tc.w {
			t.Errorf("edge %s->%s weight %d, want %d", tc.u, tc.v, w, tc.w)
		}
	}
	// IO vertices are pinned.
	for _, v := range g.verts {
		switch c.Gates[v].Type {
		case netlist.Input, netlist.Output:
			if !g.pinned[v] {
				t.Errorf("IO vertex %d not pinned", v)
			}
		}
	}
}

func TestClockPeriodIdentityLabels(t *testing.T) {
	c := pipeline(t)
	g, err := buildGraph(c, netlist.DefaultLibrary())
	if err != nil {
		t.Fatal(err)
	}
	_, period, ok := g.clockPeriod(make([]int, len(c.Gates)))
	if !ok {
		t.Fatal("identity labels must be legal")
	}
	// Longest register-free segment is a single inverter (delay 1.0).
	if period != 1.0 {
		t.Errorf("period = %v, want 1.0", period)
	}
}

func TestFeasAlreadyMet(t *testing.T) {
	c := pipeline(t)
	g, err := buildGraph(c, netlist.DefaultLibrary())
	if err != nil {
		t.Fatal(err)
	}
	r, ok := g.feas(1.0)
	if !ok {
		t.Fatal("period 1.0 is achievable as-is")
	}
	if !g.legal(r) {
		t.Error("feas returned illegal labels")
	}
}

func TestFeasInfeasiblePeriod(t *testing.T) {
	c := pipeline(t)
	g, err := buildGraph(c, netlist.DefaultLibrary())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g.feas(0.5); ok {
		t.Error("period below a single gate delay cannot be feasible")
	}
}

func TestRegisterCountSharing(t *testing.T) {
	// One driver feeding two DFF-buffered readers: register sharing
	// means the rebuilt circuit uses a single chain.
	c := netlist.New("share")
	in := c.AddGate(netlist.Input, "in")
	g := c.AddGate(netlist.Not, "g", in)
	f1 := c.AddGate(netlist.DFF, "f1", g)
	f2 := c.AddGate(netlist.DFF, "f2", g)
	o1 := c.AddGate(netlist.Buf, "b1", f1)
	o2 := c.AddGate(netlist.Buf, "b2", f2)
	c.AddGate(netlist.Output, "o1", o1)
	c.AddGate(netlist.Output, "o2", o2)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	gr, err := buildGraph(c, netlist.DefaultLibrary())
	if err != nil {
		t.Fatal(err)
	}
	if n := gr.registerCount(make([]int, len(c.Gates))); n != 1 {
		t.Errorf("identity retiming register count = %d, want 1 (shared chain)", n)
	}
}

func TestMinPeriodOnPipeline(t *testing.T) {
	lib := netlist.DefaultLibrary()
	c := pipeline(t)
	res, err := MinPeriod(c, lib)
	if err != nil {
		t.Fatal(err)
	}
	// Already optimal (every segment is one inverter): nothing changes.
	if res.Period != 1.0 {
		t.Errorf("min period = %v, want 1.0", res.Period)
	}
	if res.Circuit.NumDFFs() != 3 {
		t.Errorf("register count changed: %d", res.Circuit.NumDFFs())
	}
}

// TestMinPeriodBalancesLongSegment: a two-inverter segment between two
// registers balances to one inverter per stage when the trailing
// register can move back across the second inverter.
func TestMinPeriodBalancesLongSegment(t *testing.T) {
	c := netlist.New("unbal")
	in := c.AddGate(netlist.Input, "in")
	f1 := c.AddGate(netlist.DFF, "f1", in)
	g1 := c.AddGate(netlist.Not, "g1", f1)
	g2 := c.AddGate(netlist.Not, "g2", g1)
	f2 := c.AddGate(netlist.DFF, "f2", g2)
	c.AddGate(netlist.Output, "o", f2)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	lib := netlist.DefaultLibrary()
	before, err := CurrentPeriod(c, lib)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MinPeriod(c, lib)
	if err != nil {
		t.Fatal(err)
	}
	if res.Period >= before {
		t.Errorf("retiming should shorten the 2-inverter segment: %.2f -> %.2f", before, res.Period)
	}
	if err := res.Circuit.Validate(); err != nil {
		t.Fatal(err)
	}
}
