package retime

import (
	"math/rand"
	"testing"

	"seqatpg/internal/encode"
	"seqatpg/internal/fsm"
	"seqatpg/internal/netlist"
	"seqatpg/internal/sim"
	"seqatpg/internal/synth"
)

func synthCircuit(t *testing.T, states int, seed int64, script synth.Script) *netlist.Circuit {
	t.Helper()
	m, err := fsm.Generate(fsm.GenSpec{
		Name: "rt", Inputs: 4, Outputs: 3, States: states, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := synth.Synthesize(m, synth.Options{
		Algorithm: encode.Combined, Script: script, UseUnreachableDC: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r.Circuit
}

func TestMinPeriodImproves(t *testing.T) {
	lib := netlist.DefaultLibrary()
	c := synthCircuit(t, 11, 21, synth.Rugged)
	before, err := CurrentPeriod(c, lib)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MinPeriod(c, lib)
	if err != nil {
		t.Fatal(err)
	}
	if res.Period > before+1e-9 {
		t.Errorf("retimed period %.2f worse than original %.2f", res.Period, before)
	}
	after, err := CurrentPeriod(res.Circuit, lib)
	if err != nil {
		t.Fatal(err)
	}
	if after > res.Period+1e-9 {
		t.Errorf("reported period %.2f but rebuilt circuit measures %.2f", res.Period, after)
	}
	if err := res.Circuit.Validate(); err != nil {
		t.Fatal(err)
	}
	t.Logf("period %.2f -> %.2f, DFFs %d -> %d, flush %d",
		before, res.Period, c.NumDFFs(), res.Circuit.NumDFFs(), res.FlushCycles)
}

// equivalentAfterFlush drives both circuits with reset held for the
// given number of cycles, then identical random inputs, and requires
// identical PO values from the first post-flush cycle on.
func equivalentAfterFlush(t *testing.T, a, b *netlist.Circuit, flush int, seed int64, steps int) {
	t.Helper()
	sa, err := sim.NewSimulator(a)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := sim.NewSimulator(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.PIs) != len(b.PIs) || len(a.POs) != len(b.POs) {
		t.Fatal("interface mismatch")
	}
	rng := rand.New(rand.NewSource(seed))
	resetIdx := -1
	for i, id := range a.PIs {
		if id == a.ResetPI {
			resetIdx = i
		}
	}
	if resetIdx < 0 {
		t.Fatal("no reset line")
	}
	in := make([]sim.Val, len(a.PIs))
	for cycle := 0; cycle < flush; cycle++ {
		for i := range in {
			in[i] = sim.V0
		}
		in[resetIdx] = sim.V1
		if _, err := sa.Step(in); err != nil {
			t.Fatal(err)
		}
		if _, err := sb.Step(in); err != nil {
			t.Fatal(err)
		}
	}
	for step := 0; step < steps; step++ {
		for i := range in {
			in[i] = sim.Val(rng.Intn(2))
		}
		in[resetIdx] = sim.V0
		if rng.Intn(10) == 0 {
			in[resetIdx] = sim.V1 // occasional mid-stream reset
		}
		oa, err := sa.Step(in)
		if err != nil {
			t.Fatal(err)
		}
		ob, err := sb.Step(in)
		if err != nil {
			t.Fatal(err)
		}
		for k := range oa {
			if oa[k] != ob[k] {
				t.Fatalf("step %d output %d: %v vs %v", step, k, oa[k], ob[k])
			}
		}
	}
}

// TestRetimingPreservesBehaviour is the Theorem 1 substrate: after the
// flush prefix, original and retimed circuits are cycle-accurate equals.
func TestRetimingPreservesBehaviour(t *testing.T) {
	lib := netlist.DefaultLibrary()
	for _, script := range []synth.Script{synth.Rugged, synth.Delay} {
		for _, seed := range []int64{21, 34, 55} {
			c := synthCircuit(t, 9+int(seed%5), seed, script)
			res, err := MinPeriod(c, lib)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			flush := res.FlushCycles
			if flush < 1 {
				flush = 1
			}
			equivalentAfterFlush(t, c, res.Circuit, flush, seed*3+1, 200)
		}
	}
}

func TestToPeriodLadder(t *testing.T) {
	lib := netlist.DefaultLibrary()
	c := synthCircuit(t, 13, 77, synth.Rugged)
	orig, err := CurrentPeriod(c, lib)
	if err != nil {
		t.Fatal(err)
	}
	minRes, err := MinPeriod(c, lib)
	if err != nil {
		t.Fatal(err)
	}
	if minRes.Period >= orig {
		t.Skip("circuit already at minimum period; ladder not meaningful")
	}
	// A mid-ladder target: feasible, should add fewer registers than the
	// full minimum-period retiming.
	mid := (orig + minRes.Period) / 2
	midRes, err := ToPeriod(c, lib, mid)
	if err != nil {
		t.Fatal(err)
	}
	if midRes.Period > orig+1e-9 {
		t.Errorf("mid-ladder period %.2f exceeds original %.2f", midRes.Period, orig)
	}
	if midRes.Circuit.NumDFFs() > minRes.Circuit.NumDFFs() {
		t.Errorf("mid target used more DFFs (%d) than min period (%d)",
			midRes.Circuit.NumDFFs(), minRes.Circuit.NumDFFs())
	}
	equivalentAfterFlush(t, c, midRes.Circuit, max(1, midRes.FlushCycles), 5, 150)
}

func TestFlushLengthOriginal(t *testing.T) {
	c := synthCircuit(t, 11, 3, synth.Delay)
	n, err := FlushLength(c)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("original circuit flush = %d, want 1", n)
	}
}

func TestFlushLengthNoReset(t *testing.T) {
	c := netlist.New("noreset")
	in := c.AddGate(netlist.Input, "in")
	ff := c.AddGate(netlist.DFF, "q", in)
	c.AddGate(netlist.Output, "o", ff)
	if _, err := FlushLength(c); err == nil {
		t.Error("expected error for circuit without reset")
	}
}

func TestRegisterCountMonotone(t *testing.T) {
	lib := netlist.DefaultLibrary()
	c := synthCircuit(t, 13, 77, synth.Rugged)
	orig, _ := CurrentPeriod(c, lib)
	nLoose, okL := RegisterCount(c, lib, orig)
	minRes, err := MinPeriod(c, lib)
	if err != nil {
		t.Fatal(err)
	}
	nTight, okT := RegisterCount(c, lib, minRes.Period)
	if !okL || !okT {
		t.Fatal("register counts not computable")
	}
	if nTight < nLoose {
		t.Errorf("tighter period used fewer registers: %d < %d", nTight, nLoose)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
