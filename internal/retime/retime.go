package retime

import (
	"fmt"
	"math"
	"sort"

	"seqatpg/internal/netlist"
	"seqatpg/internal/sim"
)

// Result is a retimed circuit plus the metadata the experiments need.
type Result struct {
	Circuit *netlist.Circuit
	// Period is the critical combinational delay of the retimed circuit
	// (library units); the paper's Table 7 reports it in nanoseconds.
	Period float64
	// FlushCycles is the number of cycles the explicit reset line must
	// be held to bring the retimed circuit into a known state — the P
	// prefix of the paper's Theorem 1 footnote.
	FlushCycles int
	// Labels holds the Leiserson-Saxe r(v) values by gate id of the
	// source circuit.
	Labels []int
}

// MinPeriod retimes the circuit to its minimum feasible clock period
// (under I/O pinning) by binary search over candidate periods.
func MinPeriod(c *netlist.Circuit, lib *netlist.Library) (*Result, error) {
	g, err := buildGraph(c, lib)
	if err != nil {
		return nil, err
	}
	_, current, ok := g.clockPeriod(make([]int, len(c.Gates)))
	if !ok {
		return nil, fmt.Errorf("retime: circuit %s has a combinational cycle", c.Name)
	}
	lo := maxGateDelay(g)
	best, bestR := current, make([]int, len(c.Gates))
	// Binary search over the continuous period range; gate delays are
	// small rationals so 40 halvings give far more than enough
	// resolution to separate distinct achievable periods.
	hi := current
	for iter := 0; iter < 40 && hi-lo > 1e-6; iter++ {
		mid := (lo + hi) / 2
		if r, ok := g.feas(mid); ok {
			_, p, _ := g.clockPeriod(r)
			if p < best {
				best, bestR = p, r
			}
			hi = p
		} else {
			lo = mid
		}
	}
	return finishRetime(c, g, bestR, best)
}

// ToPeriod retimes the circuit to the smallest feasible period that is
// at least target. Useful for generating the graded ladder of retimed
// versions in the paper's Table 7.
func ToPeriod(c *netlist.Circuit, lib *netlist.Library, target float64) (*Result, error) {
	g, err := buildGraph(c, lib)
	if err != nil {
		return nil, err
	}
	r, ok := g.feas(target)
	if !ok {
		// Fall back to the identity retiming when the target is not
		// achievable; the caller sees the unchanged period.
		r = make([]int, len(c.Gates))
	}
	_, p, okCP := g.clockPeriod(r)
	if !okCP {
		return nil, fmt.Errorf("retime: circuit %s has a combinational cycle", c.Name)
	}
	return finishRetime(c, g, r, p)
}

// maxGateDelay returns the largest single-vertex delay, a lower bound on
// any achievable period.
func maxGateDelay(g *graph) float64 {
	m := 0.0
	for _, v := range g.verts {
		if g.delays[v] > m {
			m = g.delays[v]
		}
	}
	return m
}

// finishRetime rebuilds the netlist under labels r and measures the
// flush sequence.
func finishRetime(c *netlist.Circuit, g *graph, r []int, period float64) (*Result, error) {
	out, err := rebuild(c, g, r)
	if err != nil {
		return nil, err
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("retime: rebuilt circuit invalid: %w", err)
	}
	flush := 0
	if out.ResetPI >= 0 {
		if flush, err = FlushLength(out); err != nil {
			return nil, err
		}
	}
	return &Result{Circuit: out, Period: period, FlushCycles: flush, Labels: r}, nil
}

// rebuild constructs the retimed netlist: every vertex is copied, and
// each vertex grows a DFF chain as deep as its largest outgoing retimed
// edge weight; fanins tap the chain at the edge's depth (maximal
// register sharing at fanout stems).
func rebuild(c *netlist.Circuit, g *graph, r []int) (*netlist.Circuit, error) {
	out := netlist.New(c.Name + ".re")
	idMap := make([]int, len(c.Gates)) // old vertex id -> new gate id
	for i := range idMap {
		idMap[i] = -1
	}
	// Copy vertices in old-id order; IO order is preserved because
	// AddGate appends to the PI/PO lists in call order.
	for _, v := range g.verts {
		gate := c.Gates[v]
		idMap[v] = out.AddGate(gate.Type, gate.Name) // fanins patched below
	}
	if c.ResetPI >= 0 {
		out.ResetPI = idMap[c.ResetPI]
	}
	// Register chains per vertex.
	chainDepth := make([]int, len(c.Gates))
	for _, e := range g.edges {
		w := g.wr(e, r)
		if w < 0 {
			return nil, fmt.Errorf("retime: negative retimed weight on edge %d->%d", e.u, e.v)
		}
		if w > chainDepth[e.u] {
			chainDepth[e.u] = w
		}
	}
	chains := make(map[int][]int) // old vertex id -> new DFF ids, depth 1..n
	// Deterministic order for DFF allocation.
	var order []int
	for _, v := range g.verts {
		if chainDepth[v] > 0 {
			order = append(order, v)
		}
	}
	sort.Ints(order)
	for _, v := range order {
		prev := idMap[v]
		for k := 1; k <= chainDepth[v]; k++ {
			ff := out.AddGate(netlist.DFF, fmt.Sprintf("%s_r%d", c.Gates[v].Name, k), prev)
			chains[v] = append(chains[v], ff)
			prev = ff
		}
	}
	// Patch fanins.
	for _, e := range g.edges {
		w := g.wr(e, r)
		var src int
		if w == 0 {
			src = idMap[e.u]
		} else {
			src = chains[e.u][w-1]
		}
		newV := idMap[e.v]
		for len(out.Gates[newV].Fanin) <= e.pin {
			out.Gates[newV].Fanin = append(out.Gates[newV].Fanin, -1)
		}
		out.Gates[newV].Fanin[e.pin] = src
	}
	return out, nil
}

// FlushLength simulates the circuit from the all-X power-up state with
// the reset line held at 1 and the other inputs at 0, and returns the
// number of cycles until the state is fully known and stable. An error
// is returned when the circuit has no reset line or does not converge
// within a generous bound.
func FlushLength(c *netlist.Circuit) (int, error) {
	if c.ResetPI < 0 {
		return 0, fmt.Errorf("retime: circuit %s has no reset line", c.Name)
	}
	s, err := sim.NewSimulator(c)
	if err != nil {
		return 0, err
	}
	s.PowerUp()
	in := make([]sim.Val, len(c.PIs))
	for i, id := range c.PIs {
		if id == c.ResetPI {
			in[i] = sim.V1
		} else {
			in[i] = sim.V0
		}
	}
	limit := 2*len(c.DFFs) + 4
	prev := ""
	for cycle := 1; cycle <= limit; cycle++ {
		if _, err := s.Step(in); err != nil {
			return 0, err
		}
		if s.StateKnown() {
			key := fmt.Sprint(s.State())
			if key == prev {
				return cycle - 1, nil // stabilized at the previous cycle
			}
			prev = key
		} else {
			prev = ""
		}
	}
	return 0, fmt.Errorf("retime: circuit %s did not flush within %d reset cycles", c.Name, limit)
}

// RegisterCount reports how many DFFs a minimum-period retiming would
// use without building the circuit (used by sweep experiments).
func RegisterCount(c *netlist.Circuit, lib *netlist.Library, period float64) (int, bool) {
	g, err := buildGraph(c, lib)
	if err != nil {
		return 0, false
	}
	r, ok := g.feas(period)
	if !ok {
		return 0, false
	}
	return g.registerCount(r), true
}

// CurrentPeriod returns the critical combinational delay of the circuit
// as-is under the library.
func CurrentPeriod(c *netlist.Circuit, lib *netlist.Library) (float64, error) {
	g, err := buildGraph(c, lib)
	if err != nil {
		return 0, err
	}
	_, p, ok := g.clockPeriod(make([]int, len(c.Gates)))
	if !ok {
		return 0, fmt.Errorf("retime: circuit %s has a combinational cycle", c.Name)
	}
	if math.IsInf(p, 0) || math.IsNaN(p) {
		return 0, fmt.Errorf("retime: bad period for %s", c.Name)
	}
	return p, nil
}
