package retime

import (
	"testing"

	"seqatpg/internal/encode"
	"seqatpg/internal/fsm"
	"seqatpg/internal/netlist"
	"seqatpg/internal/synth"
)

func TestBackwardGrowsRegisters(t *testing.T) {
	lib := netlist.DefaultLibrary()
	c := synthCircuit(t, 11, 21, synth.Rugged)
	res, err := Backward(c, lib, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Circuit.NumDFFs() <= c.NumDFFs() {
		t.Errorf("backward retiming did not grow registers: %d -> %d",
			c.NumDFFs(), res.Circuit.NumDFFs())
	}
	if res.FlushCycles < 1 {
		t.Errorf("flush cycles = %d", res.FlushCycles)
	}
	t.Logf("DFFs %d -> %d, flush %d, period %.2f", c.NumDFFs(), res.Circuit.NumDFFs(),
		res.FlushCycles, res.Period)
}

// Theorem 1 substrate for atomic-move retiming: behaviour is preserved
// after the flush prefix.
func TestBackwardPreservesBehaviour(t *testing.T) {
	lib := netlist.DefaultLibrary()
	for _, rounds := range []int{1, 2, 3} {
		for _, seed := range []int64{21, 34} {
			c := synthCircuit(t, 9, seed, synth.Delay)
			res, err := Backward(c, lib, rounds)
			if err != nil {
				t.Fatalf("rounds=%d seed=%d: %v", rounds, seed, err)
			}
			flush := res.FlushCycles
			if flush < 1 {
				flush = 1
			}
			equivalentAfterFlush(t, c, res.Circuit, flush, seed+int64(rounds)*100, 200)
		}
	}
}

func TestBackwardMonotoneInRounds(t *testing.T) {
	lib := netlist.DefaultLibrary()
	c := synthCircuit(t, 11, 55, synth.Rugged)
	prev := c.NumDFFs()
	for rounds := 1; rounds <= 3; rounds++ {
		res, err := Backward(c, lib, rounds)
		if err != nil {
			t.Fatal(err)
		}
		n := res.Circuit.NumDFFs()
		if n < prev {
			t.Errorf("rounds=%d: DFFs shrank from %d to %d", rounds, prev, n)
		}
		prev = n
	}
}

func TestMoveBackwardSharing(t *testing.T) {
	// Gate with duplicate fanins must get one shared register, not two.
	c := netlist.New("dup")
	in := c.AddGate(netlist.Input, "in")
	a := c.AddGate(netlist.And, "a", in, in)
	ff := c.AddGate(netlist.DFF, "q", a)
	c.AddGate(netlist.Output, "o", ff)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	created, err := MoveBackward(c, ff)
	if err != nil {
		t.Fatal(err)
	}
	if len(created) != 1 {
		t.Errorf("created %d registers, want 1 shared", len(created))
	}
	out := Compact(c)
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	if out.NumDFFs() != 1 {
		t.Errorf("after move: %d DFFs, want 1", out.NumDFFs())
	}
}

func TestMoveForwardInverseOfBackward(t *testing.T) {
	// Build in -> DFF -> NOT -> out; move the register forward across
	// the NOT, then the DFF count stays 1 and the register sits after
	// the inverter.
	c := netlist.New("fwd")
	in := c.AddGate(netlist.Input, "in")
	ff := c.AddGate(netlist.DFF, "q", in)
	n := c.AddGate(netlist.Not, "n", ff)
	c.AddGate(netlist.Output, "o", n)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	fo := c.Fanouts()
	if !CanMoveForward(c, fo, n) {
		t.Fatal("forward move should be legal")
	}
	newFF, err := MoveForward(c, n)
	if err != nil {
		t.Fatal(err)
	}
	out := Compact(c)
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	if out.NumDFFs() != 1 {
		t.Errorf("DFFs = %d, want 1", out.NumDFFs())
	}
	_ = newFF
	// The NOT must now read the input directly.
	for _, g := range out.Gates {
		if g.Type == netlist.Not {
			if out.Gates[g.Fanin[0]].Type != netlist.Input {
				t.Error("NOT should read the primary input after the forward move")
			}
		}
	}
}

func TestCanMoveGuards(t *testing.T) {
	// A driver with two fanouts must not allow a backward move.
	c := netlist.New("guard")
	in := c.AddGate(netlist.Input, "in")
	a := c.AddGate(netlist.And, "a", in, in)
	ff := c.AddGate(netlist.DFF, "q", a)
	c.AddGate(netlist.Output, "o1", ff)
	c.AddGate(netlist.Output, "o2", a) // second fanout of the AND
	fo := c.Fanouts()
	if CanMoveBackward(c, fo, ff) {
		t.Error("backward move across a multi-fanout driver must be illegal")
	}
	// Forward move needs all fanins registered.
	b := c.AddGate(netlist.And, "b", ff, in)
	fo = c.Fanouts()
	if CanMoveForward(c, fo, b) {
		t.Error("forward move with an unregistered fanin must be illegal")
	}
}

func TestCompactDropsDeadLogic(t *testing.T) {
	c := netlist.New("dead")
	in := c.AddGate(netlist.Input, "in")
	c.AddGate(netlist.Not, "dead1", in) // drives nothing
	b := c.AddGate(netlist.Buf, "live", in)
	c.AddGate(netlist.Output, "o", b)
	out := Compact(c)
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	if out.NumGates() != 3 {
		t.Errorf("compact kept %d gates, want 3", out.NumGates())
	}
	if len(out.PIs) != 1 || len(out.POs) != 1 {
		t.Error("interface lost in compaction")
	}
}

// The paper's suite-level check: backward retiming on a synthesized
// control circuit multiplies registers the way Table 2 reports
// (5 DFFs becoming 8-28).
func TestBackwardOnSuiteMember(t *testing.T) {
	if testing.Short() {
		t.Skip("suite-scale test")
	}
	lib := netlist.DefaultLibrary()
	m, err := fsm.Generate(fsm.GenSpec{Name: "dk16", Inputs: 3, Outputs: 3, States: 27, Seed: 1601})
	if err != nil {
		t.Fatal(err)
	}
	r, err := synth.Synthesize(m, synth.Options{
		Algorithm: encode.InputDominant, Script: synth.Delay, UseUnreachableDC: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Backward(r.Circuit, lib, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("dk16.ji.sd: DFFs %d -> %d, flush %d", r.Circuit.NumDFFs(),
		res.Circuit.NumDFFs(), res.FlushCycles)
	if res.Circuit.NumDFFs() < 2*r.Circuit.NumDFFs() {
		t.Errorf("expected at least 2x register growth, got %d -> %d",
			r.Circuit.NumDFFs(), res.Circuit.NumDFFs())
	}
	flush := res.FlushCycles
	if flush < 1 {
		flush = 1
	}
	equivalentAfterFlush(t, r.Circuit, res.Circuit, flush, 99, 300)
}

// TestForwardUndoesBackward: a backward move followed by a forward move
// across the same gate restores behaviourally identical hardware (the
// atomic operations of the paper's Figure 1 are inverses).
func TestForwardUndoesBackward(t *testing.T) {
	c := synthCircuit(t, 9, 13, synth.Delay)
	work := c.Clone()
	fanouts := work.Fanouts()
	// Find a movable register.
	var dff int = -1
	for _, d := range work.DFFs {
		if CanMoveBackward(work, fanouts, d) {
			dff = d
			break
		}
	}
	if dff < 0 {
		t.Skip("no movable register in this circuit")
	}
	drv := work.Gates[dff].Fanin[0]
	if _, err := MoveBackward(work, dff); err != nil {
		t.Fatal(err)
	}
	// Forward move across the same driver gate restores the register to
	// the output side.
	fo := work.Fanouts()
	if !CanMoveForward(work, fo, drv) {
		t.Fatalf("driver %d should be forward-movable after the backward move", drv)
	}
	if _, err := MoveForward(work, drv); err != nil {
		t.Fatal(err)
	}
	out := Compact(work)
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	if out.NumDFFs() != c.NumDFFs() {
		t.Errorf("register count changed: %d -> %d", c.NumDFFs(), out.NumDFFs())
	}
	equivalentAfterFlush(t, c, out, 2, 77, 200)
}
