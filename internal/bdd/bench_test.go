package bdd

import (
	"math/rand"
	"testing"
)

// BenchmarkITE measures raw apply throughput on random 16-variable
// functions.
func BenchmarkITE(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	m := New(16)
	fs := make([]Ref, 64)
	for i := range fs {
		fs[i] = randomRef(m, rng, 24)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := fs[i%len(fs)]
		g := fs[(i+7)%len(fs)]
		_ = m.And(f, m.Or(g, m.Not(f)))
	}
}

// BenchmarkSatCount measures counting over a moderately sized function.
func BenchmarkSatCount(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	m := New(20)
	f := randomRef(m, rng, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.SatCount(f, 20)
	}
}
