package bdd

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTerminalsAndVars(t *testing.T) {
	m := New(3)
	x := m.Var(0)
	if m.Eval(x, []bool{true, false, false}) != true {
		t.Error("Var(0) must evaluate to its assignment")
	}
	if m.Eval(m.NVar(0), []bool{true, false, false}) != false {
		t.Error("NVar(0) must be the complement")
	}
	if m.Var(0) != x {
		t.Error("hash consing must return the identical ref")
	}
}

func TestVarOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(2).Var(5)
}

// randomRef builds a random BDD by combining variables.
func randomRef(m *Manager, rng *rand.Rand, ops int) Ref {
	r := m.Var(rng.Intn(m.NumVars()))
	for i := 0; i < ops; i++ {
		s := m.Var(rng.Intn(m.NumVars()))
		switch rng.Intn(4) {
		case 0:
			r = m.And(r, s)
		case 1:
			r = m.Or(r, s)
		case 2:
			r = m.Xor(r, s)
		case 3:
			r = m.Not(r)
		}
	}
	return r
}

func assigns(n int) [][]bool {
	out := make([][]bool, 1<<uint(n))
	for i := range out {
		a := make([]bool, n)
		for j := 0; j < n; j++ {
			a[j] = (i>>uint(j))&1 == 1
		}
		out[i] = a
	}
	return out
}

func TestOpsAgainstBruteForce(t *testing.T) {
	const n = 5
	rng := rand.New(rand.NewSource(9))
	m := New(n)
	for trial := 0; trial < 100; trial++ {
		f := randomRef(m, rng, 6)
		g := randomRef(m, rng, 6)
		and, or, xor, not := m.And(f, g), m.Or(f, g), m.Xor(f, g), m.Not(f)
		for _, a := range assigns(n) {
			fv, gv := m.Eval(f, a), m.Eval(g, a)
			if m.Eval(and, a) != (fv && gv) {
				t.Fatal("And broken")
			}
			if m.Eval(or, a) != (fv || gv) {
				t.Fatal("Or broken")
			}
			if m.Eval(xor, a) != (fv != gv) {
				t.Fatal("Xor broken")
			}
			if m.Eval(not, a) != !fv {
				t.Fatal("Not broken")
			}
		}
	}
}

func TestCanonicity(t *testing.T) {
	// Structurally different constructions of the same function must
	// yield the same ref — the ROBDD canonicity property.
	m := New(4)
	a, b := m.Var(0), m.Var(1)
	deMorgan1 := m.Not(m.And(a, b))
	deMorgan2 := m.Or(m.Not(a), m.Not(b))
	if deMorgan1 != deMorgan2 {
		t.Error("De Morgan forms must be canonical")
	}
	if m.Xor(a, a) != False {
		t.Error("x^x must be False")
	}
	if m.Or(a, m.Not(a)) != True {
		t.Error("x+!x must be True")
	}
}

func TestRestrict(t *testing.T) {
	m := New(3)
	f := m.And(m.Var(0), m.Or(m.Var(1), m.Var(2)))
	r1 := m.Restrict(f, 0, true)
	want := m.Or(m.Var(1), m.Var(2))
	if r1 != want {
		t.Error("Restrict(x0=1) wrong")
	}
	if m.Restrict(f, 0, false) != False {
		t.Error("Restrict(x0=0) must be False")
	}
}

func TestExists(t *testing.T) {
	m := New(3)
	f := m.And(m.Var(0), m.Var(1))
	ex := m.Exists(f, []int{0})
	if ex != m.Var(1) {
		t.Error("∃x0. x0∧x1 must be x1")
	}
	ex2 := m.Exists(f, []int{0, 1})
	if ex2 != True {
		t.Error("∃x0,x1. x0∧x1 must be True")
	}
	if m.Exists(False, []int{0}) != False {
		t.Error("∃ of False must be False")
	}
}

func TestExistsMatchesBrute(t *testing.T) {
	const n = 5
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New(n)
		g := randomRef(m, rng, 8)
		v := rng.Intn(n)
		ex := m.Exists(g, []int{v})
		for _, a := range assigns(n) {
			a0 := append([]bool(nil), a...)
			a1 := append([]bool(nil), a...)
			a0[v], a1[v] = false, true
			want := m.Eval(g, a0) || m.Eval(g, a1)
			if m.Eval(ex, a) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSatCount(t *testing.T) {
	m := New(4)
	if got := m.SatCount(True, 4); got != 16 {
		t.Errorf("SatCount(True) = %v, want 16", got)
	}
	if got := m.SatCount(False, 4); got != 0 {
		t.Errorf("SatCount(False) = %v, want 0", got)
	}
	f := m.And(m.Var(0), m.Var(1))
	if got := m.SatCount(f, 4); got != 4 {
		t.Errorf("SatCount(x0&x1) = %v, want 4", got)
	}
}

func TestSatCountMatchesBrute(t *testing.T) {
	const n = 6
	rng := rand.New(rand.NewSource(31))
	m := New(n)
	for trial := 0; trial < 60; trial++ {
		f := randomRef(m, rng, 10)
		var brute float64
		for _, a := range assigns(n) {
			if m.Eval(f, a) {
				brute++
			}
		}
		if got := m.SatCount(f, n); got != brute {
			t.Fatalf("SatCount = %v, brute = %v", got, brute)
		}
	}
}

func TestSupport(t *testing.T) {
	m := New(5)
	f := m.And(m.Var(1), m.Xor(m.Var(3), m.Var(4)))
	sup := m.Support(f)
	if len(sup) != 3 || sup[0] != 1 || sup[1] != 3 || sup[2] != 4 {
		t.Errorf("Support = %v, want [1 3 4]", sup)
	}
	if len(m.Support(True)) != 0 {
		t.Error("terminals have empty support")
	}
}

func TestAnySat(t *testing.T) {
	m := New(4)
	f := m.And(m.Var(1), m.Not(m.Var(3)))
	a, ok := m.AnySat(f, 4)
	if !ok {
		t.Fatal("satisfiable function reported unsat")
	}
	if !m.Eval(f, a) {
		t.Errorf("AnySat assignment %v does not satisfy f", a)
	}
	if _, ok := m.AnySat(False, 4); ok {
		t.Error("False must be unsat")
	}
	if a, ok := m.AnySat(True, 4); !ok || len(a) != 4 {
		t.Error("True must be satisfiable")
	}
}

func TestAnySatRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := New(6)
	for i := 0; i < 80; i++ {
		f := randomRef(m, rng, 9)
		a, ok := m.AnySat(f, 6)
		if ok != (f != False) {
			t.Fatalf("AnySat ok=%v for f==False:%v", ok, f == False)
		}
		if ok && !m.Eval(f, a) {
			t.Fatal("assignment does not satisfy")
		}
	}
}
