// Package bdd is a from-scratch reduced ordered binary decision diagram
// (ROBDD) engine: hash-consed nodes, ITE-based Boolean operations,
// cofactor restriction, existential quantification, and satisfying-
// assignment counting. It is the substrate under the symbolic
// reachability analysis that computes the paper's "density of encoding"
// (valid states / total states) for both original and retimed circuits.
package bdd

import "fmt"

// Ref is a node reference. The constants False and True are the
// terminal nodes; all other refs index internal nodes.
type Ref int32

// Terminal nodes.
const (
	False Ref = 0
	True  Ref = 1
)

type node struct {
	level  int32 // variable index; terminals use a sentinel max level
	lo, hi Ref
}

const terminalLevel = int32(1<<30 - 1)

// Manager owns the node table and operation caches for one variable
// ordering. Variable i is at level i; lower levels are nearer the root.
type Manager struct {
	numVars int
	nodes   []node
	unique  map[node]Ref
	iteMemo map[[3]Ref]Ref
}

// New creates a manager for n variables.
func New(n int) *Manager {
	m := &Manager{
		numVars: n,
		nodes: []node{
			{level: terminalLevel}, // False
			{level: terminalLevel}, // True
		},
		unique:  map[node]Ref{},
		iteMemo: map[[3]Ref]Ref{},
	}
	return m
}

// NumVars returns the number of variables in the ordering.
func (m *Manager) NumVars() int { return m.numVars }

// Size returns the number of live nodes (including terminals).
func (m *Manager) Size() int { return len(m.nodes) }

// mk returns the canonical node (level, lo, hi), applying the reduction
// rules.
func (m *Manager) mk(level int32, lo, hi Ref) Ref {
	if lo == hi {
		return lo
	}
	key := node{level: level, lo: lo, hi: hi}
	if r, ok := m.unique[key]; ok {
		return r
	}
	r := Ref(len(m.nodes))
	m.nodes = append(m.nodes, key)
	m.unique[key] = r
	return r
}

// Var returns the BDD of variable i.
func (m *Manager) Var(i int) Ref {
	if i < 0 || i >= m.numVars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", i, m.numVars))
	}
	return m.mk(int32(i), False, True)
}

// NVar returns the BDD of the complement of variable i.
func (m *Manager) NVar(i int) Ref {
	if i < 0 || i >= m.numVars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", i, m.numVars))
	}
	return m.mk(int32(i), True, False)
}

func (m *Manager) level(r Ref) int32 { return m.nodes[r].level }

// cofactors returns the lo/hi cofactors of r with respect to level.
func (m *Manager) cofactors(r Ref, level int32) (lo, hi Ref) {
	n := m.nodes[r]
	if n.level == level {
		return n.lo, n.hi
	}
	return r, r
}

// ITE computes if-then-else(f, g, h) — the universal binary operation.
func (m *Manager) ITE(f, g, h Ref) Ref {
	// Terminal cases.
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	}
	key := [3]Ref{f, g, h}
	if r, ok := m.iteMemo[key]; ok {
		return r
	}
	top := m.level(f)
	if l := m.level(g); l < top {
		top = l
	}
	if l := m.level(h); l < top {
		top = l
	}
	f0, f1 := m.cofactors(f, top)
	g0, g1 := m.cofactors(g, top)
	h0, h1 := m.cofactors(h, top)
	lo := m.ITE(f0, g0, h0)
	hi := m.ITE(f1, g1, h1)
	r := m.mk(top, lo, hi)
	m.iteMemo[key] = r
	return r
}

// Not returns the complement of f.
func (m *Manager) Not(f Ref) Ref { return m.ITE(f, False, True) }

// And returns f ∧ g.
func (m *Manager) And(f, g Ref) Ref { return m.ITE(f, g, False) }

// Or returns f ∨ g.
func (m *Manager) Or(f, g Ref) Ref { return m.ITE(f, True, g) }

// Xor returns f ⊕ g.
func (m *Manager) Xor(f, g Ref) Ref { return m.ITE(f, m.Not(g), g) }

// Xnor returns ¬(f ⊕ g).
func (m *Manager) Xnor(f, g Ref) Ref { return m.ITE(f, g, m.Not(g)) }

// Restrict substitutes a constant for variable v in f.
func (m *Manager) Restrict(f Ref, v int, value bool) Ref {
	memo := map[Ref]Ref{}
	level := int32(v)
	var rec func(Ref) Ref
	rec = func(r Ref) Ref {
		n := m.nodes[r]
		if n.level > level {
			return r // below the variable (or terminal): unchanged
		}
		if got, ok := memo[r]; ok {
			return got
		}
		var out Ref
		if n.level == level {
			if value {
				out = n.hi
			} else {
				out = n.lo
			}
		} else {
			out = m.mk(n.level, rec(n.lo), rec(n.hi))
		}
		memo[r] = out
		return out
	}
	return rec(f)
}

// Exists existentially quantifies the given variables out of f.
func (m *Manager) Exists(f Ref, vars []int) Ref {
	if len(vars) == 0 {
		return f
	}
	quant := make(map[int32]bool, len(vars))
	for _, v := range vars {
		quant[int32(v)] = true
	}
	memo := map[Ref]Ref{}
	var rec func(Ref) Ref
	rec = func(r Ref) Ref {
		n := m.nodes[r]
		if n.level == terminalLevel {
			return r
		}
		if got, ok := memo[r]; ok {
			return got
		}
		lo, hi := rec(n.lo), rec(n.hi)
		var out Ref
		if quant[n.level] {
			out = m.Or(lo, hi)
		} else {
			out = m.mk(n.level, lo, hi)
		}
		memo[r] = out
		return out
	}
	return rec(f)
}

// SatCount returns the number of satisfying assignments of f over the
// first nVars variables (f must not mention any variable ≥ nVars).
func (m *Manager) SatCount(f Ref, nVars int) float64 {
	memo := map[Ref]float64{}
	var rec func(r Ref, fromLevel int32) float64
	rec = func(r Ref, fromLevel int32) float64 {
		n := m.nodes[r]
		lvl := n.level
		if lvl > int32(nVars) {
			lvl = int32(nVars)
		}
		var base float64
		if r == False {
			base = 0
		} else if r == True {
			base = 1
		} else {
			if got, ok := memo[r]; ok {
				base = got
			} else {
				// Assignments with this variable at 0 plus at 1, each
				// counted over the variables below it.
				base = rec(n.lo, lvl+1) + rec(n.hi, lvl+1)
				memo[r] = base
			}
		}
		// Scale for the variables skipped between fromLevel and lvl.
		return base * pow2(int(lvl)-int(fromLevel))
	}
	return rec(f, 0)
}

func pow2(n int) float64 {
	out := 1.0
	for i := 0; i < n; i++ {
		out *= 2
	}
	return out
}

// Eval evaluates f under a complete assignment (assign[i] is the value
// of variable i).
func (m *Manager) Eval(f Ref, assign []bool) bool {
	r := f
	for m.nodes[r].level != terminalLevel {
		n := m.nodes[r]
		if assign[n.level] {
			r = n.hi
		} else {
			r = n.lo
		}
	}
	return r == True
}

// Support returns the sorted variable indices f depends on.
func (m *Manager) Support(f Ref) []int {
	seen := map[Ref]bool{}
	vars := map[int32]bool{}
	var rec func(Ref)
	rec = func(r Ref) {
		if seen[r] || m.nodes[r].level == terminalLevel {
			return
		}
		seen[r] = true
		vars[m.nodes[r].level] = true
		rec(m.nodes[r].lo)
		rec(m.nodes[r].hi)
	}
	rec(f)
	out := make([]int, 0, len(vars))
	for v := range vars {
		out = append(out, int(v))
	}
	sortInts(out)
	return out
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// AnySat returns one satisfying assignment of f over the first nVars
// variables (variables absent from f are set to false), or ok=false
// when f is unsatisfiable.
func (m *Manager) AnySat(f Ref, nVars int) (assign []bool, ok bool) {
	if f == False {
		return nil, false
	}
	assign = make([]bool, nVars)
	r := f
	for r != True {
		n := m.nodes[r]
		if n.lo != False {
			r = n.lo
		} else {
			assign[n.level] = true
			r = n.hi
		}
	}
	return assign, true
}
