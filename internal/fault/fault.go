// Package fault provides the single-stuck-at fault model: the fault
// universe over all gate terminals, structural equivalence collapsing,
// and a PROOFS-style bit-parallel sequential fault simulator (the good
// circuit and up to 63 faulty circuits advance together in one 64-bit
// word per net).
package fault

import (
	"fmt"

	"seqatpg/internal/netlist"
	"seqatpg/internal/sim"
)

// Fault is a single stuck-at fault on a gate terminal. Pin < 0 denotes
// the gate's output stem; Pin >= 0 denotes the fanin branch at that
// position. SA is the stuck value (sim.V0 or sim.V1).
type Fault struct {
	Gate int
	Pin  int
	SA   sim.Val
}

// String renders a fault like "g12/in2 s-a-1" or "g7 s-a-0".
func (f Fault) String() string {
	if f.Pin < 0 {
		return fmt.Sprintf("g%d s-a-%s", f.Gate, f.SA)
	}
	return fmt.Sprintf("g%d/in%d s-a-%s", f.Gate, f.Pin, f.SA)
}

// FullUniverse enumerates the uncollapsed stuck-at fault list: an
// output-stem pair per gate that drives something, and an input-branch
// pair per fanin of every gate. Output gates get no stem faults (their
// input branch is the observable line).
func FullUniverse(c *netlist.Circuit) []Fault {
	fanouts := c.Fanouts()
	var out []Fault
	for id, g := range c.Gates {
		if g.Type != netlist.Output && len(fanouts[id]) > 0 {
			out = append(out, Fault{Gate: id, Pin: -1, SA: sim.V0})
			out = append(out, Fault{Gate: id, Pin: -1, SA: sim.V1})
		}
		for pin := range g.Fanin {
			out = append(out, Fault{Gate: id, Pin: pin, SA: sim.V0})
			out = append(out, Fault{Gate: id, Pin: pin, SA: sim.V1})
		}
	}
	return out
}

// Collapse performs structural equivalence collapsing on the fault list
// using the classic per-gate rules plus single-fanout stem/branch
// merging, and returns one representative per equivalence class.
func Collapse(c *netlist.Circuit, faults []Fault) []Fault {
	idx := map[Fault]int{}
	for i, f := range faults {
		idx[f] = i
	}
	parent := make([]int, len(faults))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b Fault) {
		ia, oka := idx[a]
		ib, okb := idx[b]
		if !oka || !okb {
			return
		}
		ra, rb := find(ia), find(ib)
		if ra != rb {
			// Prefer the smaller index as representative so output is
			// deterministic.
			if ra < rb {
				parent[rb] = ra
			} else {
				parent[ra] = rb
			}
		}
	}
	inv := func(v sim.Val) sim.Val {
		if v == sim.V0 {
			return sim.V1
		}
		return sim.V0
	}
	fanouts := c.Fanouts()
	for id, g := range c.Gates {
		switch g.Type {
		case netlist.Buf, netlist.DFF, netlist.Output:
			for _, v := range []sim.Val{sim.V0, sim.V1} {
				union(Fault{id, 0, v}, Fault{id, -1, v})
			}
		case netlist.Not:
			for _, v := range []sim.Val{sim.V0, sim.V1} {
				union(Fault{id, 0, v}, Fault{id, -1, inv(v)})
			}
		case netlist.And:
			for pin := range g.Fanin {
				union(Fault{id, pin, sim.V0}, Fault{id, -1, sim.V0})
			}
		case netlist.Nand:
			for pin := range g.Fanin {
				union(Fault{id, pin, sim.V0}, Fault{id, -1, sim.V1})
			}
		case netlist.Or:
			for pin := range g.Fanin {
				union(Fault{id, pin, sim.V1}, Fault{id, -1, sim.V1})
			}
		case netlist.Nor:
			for pin := range g.Fanin {
				union(Fault{id, pin, sim.V1}, Fault{id, -1, sim.V0})
			}
		}
	}
	// Single-fanout stems: the stem fault equals the branch fault at the
	// unique reader (when that reader reads the stem on exactly one pin).
	for id := range c.Gates {
		if len(fanouts[id]) != 1 {
			continue
		}
		reader := fanouts[id][0]
		pin, count := -1, 0
		for p, f := range c.Gates[reader].Fanin {
			if f == id {
				pin = p
				count++
			}
		}
		if count != 1 {
			continue
		}
		for _, v := range []sim.Val{sim.V0, sim.V1} {
			union(Fault{id, -1, v}, Fault{reader, pin, v})
		}
	}
	var out []Fault
	for i, f := range faults {
		if find(i) == i {
			out = append(out, f)
		}
	}
	return out
}

// CollapsedUniverse is FullUniverse followed by Collapse.
func CollapsedUniverse(c *netlist.Circuit) []Fault {
	return Collapse(c, FullUniverse(c))
}
