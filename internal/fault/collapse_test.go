package fault

import (
	"math/rand"
	"testing"

	"seqatpg/internal/netlist"
	"seqatpg/internal/sim"
)

// randomSeqCircuit builds a small random sequential circuit with a
// reset line, ~nGates gates and a couple of DFFs.
func randomSeqCircuit(rng *rand.Rand, nIn, nGates int) *netlist.Circuit {
	c := netlist.New("randseq")
	reset := c.AddGate(netlist.Input, "reset")
	c.ResetPI = reset
	for i := 0; i < nIn; i++ {
		c.AddGate(netlist.Input, "")
	}
	nr := c.AddGate(netlist.Not, "nr", reset)
	// Two DFFs with placeholder drivers patched at the end.
	ff1 := c.AddGate(netlist.DFF, "q1", 0)
	ff2 := c.AddGate(netlist.DFF, "q2", 0)
	last := nr
	for i := 0; i < nGates; i++ {
		types := []netlist.GateType{netlist.And, netlist.Or, netlist.Nand, netlist.Nor, netlist.Xor, netlist.Not}
		gt := types[rng.Intn(len(types))]
		n := 2
		if gt == netlist.Not {
			n = 1
		}
		fanin := make([]int, n)
		for k := range fanin {
			fanin[k] = rng.Intn(len(c.Gates))
			// Never read an Output gate.
			for c.Gates[fanin[k]].Type == netlist.Output {
				fanin[k] = rng.Intn(len(c.Gates))
			}
		}
		last = c.AddGate(gt, "", fanin...)
	}
	// Reset-gated state updates keep the circuit initializable.
	d1 := c.AddGate(netlist.And, "d1", nr, last)
	d2 := c.AddGate(netlist.And, "d2", nr, ff1)
	c.Gates[ff1].Fanin[0] = d1
	c.Gates[ff2].Fanin[0] = d2
	c.AddGate(netlist.Output, "o1", last)
	c.AddGate(netlist.Output, "o2", ff2)
	return c
}

// TestCollapseSoundness is the defining property of equivalence
// collapsing: for any test sequence, every fault in a class is detected
// iff its class representative is detected. We verify it by simulating
// the FULL universe and checking detection is constant within classes
// implied by Collapse (reconstructed via repeated collapsing runs).
func TestCollapseSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 8; trial++ {
		c := randomSeqCircuit(rng, 3, 10)
		if err := c.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		full := FullUniverse(c)
		// Build the class map: collapse keeps one representative; to
		// recover membership we collapse {f, rep} pairs — instead we
		// exploit that Collapse is union-find based and deterministic,
		// and verify the weaker-but-sufficient property directly:
		// simulate the full universe and check every fault that
		// Collapse REMOVED behaves identically to some kept fault.
		kept := Collapse(c, full)
		keptSet := map[Fault]bool{}
		for _, f := range kept {
			keptSet[f] = true
		}

		fs, err := NewSimulator(c)
		if err != nil {
			t.Fatal(err)
		}
		// A batch of random test sequences; detection signature per fault.
		sig := make(map[Fault]uint32)
		for s := 0; s < 6; s++ {
			seq := [][]sim.Val{}
			reset := make([]sim.Val, len(c.PIs))
			reset[0] = sim.V1
			seq = append(seq, reset)
			for v := 0; v < 6; v++ {
				vec := make([]sim.Val, len(c.PIs))
				for i := 1; i < len(vec); i++ {
					vec[i] = sim.Val(rng.Intn(2))
				}
				seq = append(seq, vec)
			}
			det, err := fs.Detects(seq, full)
			if err != nil {
				t.Fatal(err)
			}
			for i, d := range det {
				if d {
					sig[full[i]] |= 1 << uint(s)
				}
			}
		}
		// Every removed fault must share its signature with at least one
		// kept fault (its representative).
		for _, f := range full {
			if keptSet[f] {
				continue
			}
			found := false
			for _, k := range kept {
				if sig[k] == sig[f] {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("trial %d: removed fault %v has signature %b unlike any representative",
					trial, f, sig[f])
			}
		}
	}
}

// TestCollapseKeepsCoverageMeaning: coverage computed on the collapsed
// list must not exceed coverage computable on the full list (collapsing
// must not hide undetected behaviour).
func TestCollapseCoverageConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := randomSeqCircuit(rng, 3, 12)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	full := FullUniverse(c)
	kept := Collapse(c, full)
	fs, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	seq := [][]sim.Val{}
	reset := make([]sim.Val, len(c.PIs))
	reset[0] = sim.V1
	seq = append(seq, reset)
	for v := 0; v < 10; v++ {
		vec := make([]sim.Val, len(c.PIs))
		for i := 1; i < len(vec); i++ {
			vec[i] = sim.Val(rng.Intn(2))
		}
		seq = append(seq, vec)
	}
	detFull, err := fs.Detects(seq, full)
	if err != nil {
		t.Fatal(err)
	}
	detKept, err := fs.Detects(seq, kept)
	if err != nil {
		t.Fatal(err)
	}
	// Both lists must agree on the detection status of the kept faults.
	fullIdx := map[Fault]int{}
	for i, f := range full {
		fullIdx[f] = i
	}
	for i, f := range kept {
		if detKept[i] != detFull[fullIdx[f]] {
			t.Errorf("fault %v: kept=%v full=%v", f, detKept[i], detFull[fullIdx[f]])
		}
	}
}
