package fault

import (
	"context"
	"sync"

	"seqatpg/internal/sim"
)

// DetectsParallel is Detects with the Width-fault batches fanned out
// over a bounded worker pool. The good circuit is still simulated
// exactly once; workers are handed pre-partitioned contiguous batch
// ranges — one range per worker, no shared dispatch channel — and each
// writes a disjoint slice of the result, so the detected slice is
// byte-identical to the serial Detects for every worker count. Worker
// scheduling can reorder only the activity counters' accumulation, and
// those are order-independent sums, merged once per worker.
//
// Contiguous ranges also preserve the fault-ordering locality the
// active region feeds on (CollapsedUniverse emits faults gate by gate),
// where round-robin or stealing would interleave unrelated cones.
//
// workers <= 1 (or a single batch) runs serially on the caller's
// goroutine. A non-nil context error cancels the remaining batches —
// every worker checks between batches — and is returned; batches
// already running finish first.
func (fs *Simulator) DetectsParallel(ctx context.Context, seq [][]sim.Val, faults []Fault, workers int) ([]bool, error) {
	return fs.detects(ctx, seq, faults, workers)
}

// detects validates the configured width, runs the shared good-circuit
// simulation, and dispatches the batches to the lane-shape-specialized
// kernel instantiation. ctx may be nil (the serial entry points).
func (fs *Simulator) detects(ctx context.Context, seq [][]sim.Val, faults []Fault, workers int) ([]bool, error) {
	width := fs.Width
	if width == WidthAuto {
		width = fs.autoWidth()
	}
	lanes, err := lanesForWidth(width)
	if err != nil {
		return nil, err
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	if err := fs.simulateGood(seq); err != nil {
		return nil, err
	}
	detected := make([]bool, len(faults))
	if len(faults) == 0 {
		return detected, nil
	}
	switch lanes {
	case 1:
		err = runAll[[1]uint64](fs, ctx, seq, faults, detected, workers)
	case 2:
		err = runAll[[2]uint64](fs, ctx, seq, faults, detected, workers)
	default:
		err = runAll[[4]uint64](fs, ctx, seq, faults, detected, workers)
	}
	if err != nil {
		return nil, err
	}
	return detected, nil
}

// runAll partitions the batch index space [0, nBatches) into one
// contiguous span per worker. Each worker owns its arena for the whole
// call (counters merge once, on release) and reports into its own error
// slot — no channels, no shared mutable state beyond the final atomic
// stats merge.
func runAll[L lanes](fs *Simulator, ctx context.Context, seq [][]sim.Val, faults []Fault, detected []bool, workers int) error {
	per := faultsPerPass[L]()
	nBatches := (len(faults) + per - 1) / per
	if workers > nBatches {
		workers = nBatches
	}
	// Replicate the good rows to this lane shape once, up front — the
	// cache write must happen before any worker can read it.
	rows := wideRows[L](fs)
	if workers <= 1 {
		bc := getBatchCtx[L](fs)
		defer putBatchCtx(fs, bc)
		return runRange(fs, bc, ctx, rows, seq, faults, detected, 0, nBatches)
	}
	span := (nBatches + workers - 1) / workers
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * span
		hi := min(lo+span, nBatches)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			bc := getBatchCtx[L](fs)
			defer putBatchCtx(fs, bc)
			errs[w] = runRange(fs, bc, ctx, rows, seq, faults, detected, lo, hi)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runRange simulates batches [lo, hi), checking for cancellation
// between batches.
func runRange[L lanes](fs *Simulator, bc *batchCtx[L], ctx context.Context, rows [][]pword[L], seq [][]sim.Val, faults []Fault, detected []bool, lo, hi int) error {
	per := faultsPerPass[L]()
	for b := lo; b < hi; b++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		start := b * per
		end := min(start+per, len(faults))
		runBatch(fs, bc, rows, len(seq), faults[start:end], detected[start:end])
	}
	return nil
}
