package fault

import (
	"context"
	"sync"

	"seqatpg/internal/sim"
)

// DetectsParallel is Detects with the 63-fault batches fanned out over
// a bounded worker pool. The good circuit is still simulated exactly
// once; each worker carries its own reusable batch state and writes a
// disjoint slice of the result, so the detected slice is byte-identical
// to the serial Detects for every worker count — worker scheduling can
// reorder only the activity counters' accumulation, and those are
// order-independent sums.
//
// workers <= 1 (or a single batch) selects the serial path. A non-nil
// context error cancels the remaining batches between dispatches and is
// returned; batches already running finish first.
func (fs *Simulator) DetectsParallel(ctx context.Context, seq [][]sim.Val, faults []Fault, workers int) ([]bool, error) {
	nBatches := (len(faults) + 62) / 63
	if workers > nBatches {
		workers = nBatches
	}
	if workers <= 1 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return fs.Detects(seq, faults)
	}
	if err := fs.simulateGood(seq); err != nil {
		return nil, err
	}
	detected := make([]bool, len(faults))

	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			bc := fs.getBatchCtx()
			defer fs.putBatchCtx(bc)
			for start := range jobs {
				end := start + 63
				if end > len(faults) {
					end = len(faults)
				}
				fs.runBatch(bc, len(seq), faults[start:end], detected[start:end])
			}
		}()
	}
	var err error
dispatch:
	for start := 0; start < len(faults); start += 63 {
		select {
		case jobs <- start:
		case <-ctx.Done():
			err = ctx.Err()
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	if err != nil {
		return nil, err
	}
	return detected, nil
}
