package fault

import (
	"math/rand"
	"testing"

	"seqatpg/internal/encode"
	"seqatpg/internal/fsm"
	"seqatpg/internal/netlist"
	"seqatpg/internal/sim"
	"seqatpg/internal/synth"
)

// combXor builds out = a XOR b (no state).
func combXor(t *testing.T) *netlist.Circuit {
	t.Helper()
	c := netlist.New("xor2")
	a := c.AddGate(netlist.Input, "a")
	b := c.AddGate(netlist.Input, "b")
	x := c.AddGate(netlist.Xor, "x", a, b)
	c.AddGate(netlist.Output, "o", x)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFullUniverseCounts(t *testing.T) {
	c := combXor(t)
	faults := FullUniverse(c)
	// Stems: a, b, x (output gate has none) = 3 gates * 2.
	// Branches: xor has 2 pins, output 1 pin = 3 * 2.
	if len(faults) != 12 {
		t.Errorf("universe = %d faults, want 12", len(faults))
	}
}

func TestCollapseReduces(t *testing.T) {
	c := combXor(t)
	faults := CollapsedUniverse(c)
	full := FullUniverse(c)
	if len(faults) >= len(full) {
		t.Errorf("collapse did not reduce: %d vs %d", len(faults), len(full))
	}
	// XOR gate: no input-output equivalences, but single-fanout stems
	// merge a->xor.pin0, b->xor.pin1, x->output.pin0: 6 classes gone.
	if len(faults) != 6 {
		t.Errorf("collapsed = %d faults, want 6", len(faults))
	}
}

func TestDetectsExhaustiveXor(t *testing.T) {
	c := combXor(t)
	faults := CollapsedUniverse(c)
	seq := [][]sim.Val{
		{sim.V0, sim.V0},
		{sim.V0, sim.V1},
		{sim.V1, sim.V0},
		{sim.V1, sim.V1},
	}
	fs, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	det, err := fs.Detects(seq, faults)
	if err != nil {
		t.Fatal(err)
	}
	cov := Summarize(det)
	if cov.Detected != cov.Total {
		t.Errorf("exhaustive test set detected %d/%d on an irredundant XOR", cov.Detected, cov.Total)
	}
	if cov.FC() != 100 {
		t.Errorf("FC = %.1f, want 100", cov.FC())
	}
}

func TestNoVectorsNoDetection(t *testing.T) {
	c := combXor(t)
	fs, _ := NewSimulator(c)
	det, err := fs.Detects(nil, CollapsedUniverse(c))
	if err != nil {
		t.Fatal(err)
	}
	if Summarize(det).Detected != 0 {
		t.Error("empty sequence must detect nothing")
	}
}

// serialDetects re-simulates each fault one at a time with a scalar
// simulator by structurally editing the circuit, as an oracle for the
// parallel simulator.
func serialDetects(t *testing.T, c *netlist.Circuit, seq [][]sim.Val, f Fault) bool {
	t.Helper()
	faulty := c.Clone()
	// Realize the fault structurally: a stem fault replaces the gate's
	// readers' view by a constant; a branch fault rewires one pin.
	constID := faulty.AddGate(netlist.Const0, "sa")
	if f.SA == sim.V1 {
		faulty.Gates[constID].Type = netlist.Const1
	}
	if f.Pin < 0 {
		for id := range faulty.Gates {
			if id == constID {
				continue
			}
			for pin, fi := range faulty.Gates[id].Fanin {
				if fi == f.Gate {
					faulty.Gates[id].Fanin[pin] = constID
				}
			}
		}
	} else {
		faulty.Gates[f.Gate].Fanin[f.Pin] = constID
	}
	good, err := sim.NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := sim.NewSimulator(faulty)
	if err != nil {
		t.Fatal(err)
	}
	for _, vec := range seq {
		og, err := good.Step(vec)
		if err != nil {
			t.Fatal(err)
		}
		ob, err := bad.Step(vec)
		if err != nil {
			t.Fatal(err)
		}
		for k := range og {
			if og[k] != sim.VX && ob[k] != sim.VX && og[k] != ob[k] {
				return true
			}
		}
	}
	return false
}

// TestParallelMatchesSerial cross-checks the bit-parallel simulator
// against one-at-a-time structural fault injection on a synthesized
// sequential circuit.
func TestParallelMatchesSerial(t *testing.T) {
	m, err := fsm.Generate(fsm.GenSpec{Name: "fs", Inputs: 3, Outputs: 2, States: 7, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	r, err := synth.Synthesize(m, synth.Options{
		Algorithm: encode.Combined, Script: synth.Delay, UseUnreachableDC: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := r.Circuit
	faults := CollapsedUniverse(c)
	rng := rand.New(rand.NewSource(3))
	seq := make([][]sim.Val, 0, 12)
	reset := make([]sim.Val, len(c.PIs))
	reset[0] = sim.V1
	seq = append(seq, reset)
	for k := 0; k < 11; k++ {
		vec := make([]sim.Val, len(c.PIs))
		for i := 1; i < len(vec); i++ {
			vec[i] = sim.Val(rng.Intn(2))
		}
		seq = append(seq, vec)
	}
	fs, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	det, err := fs.Detects(seq, faults)
	if err != nil {
		t.Fatal(err)
	}
	// Check a sample (serial simulation is slow).
	step := len(faults)/60 + 1
	for i := 0; i < len(faults); i += step {
		want := serialDetects(t, c, seq, faults[i])
		if det[i] != want {
			t.Errorf("fault %v: parallel=%v serial=%v", faults[i], det[i], want)
		}
	}
}

func TestStateTrace(t *testing.T) {
	m, err := fsm.Generate(fsm.GenSpec{Name: "st", Inputs: 3, Outputs: 2, States: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	r, err := synth.Synthesize(m, synth.Options{
		Algorithm: encode.Combined, Script: synth.Rugged, UseUnreachableDC: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := r.Circuit
	rng := rand.New(rand.NewSource(8))
	seq := [][]sim.Val{}
	reset := make([]sim.Val, len(c.PIs))
	reset[0] = sim.V1
	seq = append(seq, reset)
	for k := 0; k < 30; k++ {
		vec := make([]sim.Val, len(c.PIs))
		for i := 1; i < len(vec); i++ {
			vec[i] = sim.Val(rng.Intn(2))
		}
		seq = append(seq, vec)
	}
	states, err := StateTrace(c, seq)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) == 0 {
		t.Fatal("no states traversed")
	}
	// Every traversed state must be the code of some FSM state.
	valid := map[uint64]bool{}
	for _, code := range r.Encoding.Code {
		valid[code] = true
	}
	for st := range states {
		if !valid[st] {
			t.Errorf("traversed invalid state %b", st)
		}
	}
}

func TestVectorWidthError(t *testing.T) {
	c := combXor(t)
	fs, _ := NewSimulator(c)
	_, err := fs.Detects([][]sim.Val{{sim.V0}}, CollapsedUniverse(c))
	if err == nil {
		t.Error("wrong vector width must error")
	}
}
