package fault

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"seqatpg/internal/netlist"
	"seqatpg/internal/sim"
)

// randomDiffCircuit generates a random sequential circuit: a layer of
// primary inputs, a handful of DFFs whose D pins are rewired onto the
// combinational cloud after it is built (creating real feedback loops
// and DFF stem/branch fault sites), a cloud of random bounded-fanin
// gates, and a few primary outputs.
func randomDiffCircuit(t *testing.T, rng *rand.Rand, trial int) *netlist.Circuit {
	t.Helper()
	c := netlist.New(fmt.Sprintf("rnd%d", trial))
	var pool []int
	nPI := 2 + rng.Intn(3)
	for i := 0; i < nPI; i++ {
		pool = append(pool, c.AddGate(netlist.Input, fmt.Sprintf("i%d", i)))
	}
	var dffs []int
	nDFF := 1 + rng.Intn(4)
	for i := 0; i < nDFF; i++ {
		// Placeholder D pin; rewired below once the cloud exists.
		dffs = append(dffs, c.AddGate(netlist.DFF, fmt.Sprintf("q%d", i), pool[rng.Intn(len(pool))]))
	}
	pool = append(pool, dffs...)
	kinds := []netlist.GateType{
		netlist.And, netlist.Or, netlist.Nand, netlist.Nor,
		netlist.Xor, netlist.Xnor, netlist.Not, netlist.Buf,
	}
	nGates := 15 + rng.Intn(30)
	for i := 0; i < nGates; i++ {
		k := kinds[rng.Intn(len(kinds))]
		var width int
		switch k {
		case netlist.Not, netlist.Buf:
			width = 1
		case netlist.Xor, netlist.Xnor:
			width = 2
		default:
			width = 2 + rng.Intn(netlist.MaxFanin-1)
		}
		fanin := make([]int, width)
		for j := range fanin {
			fanin[j] = pool[rng.Intn(len(pool))]
		}
		pool = append(pool, c.AddGate(k, fmt.Sprintf("g%d", i), fanin...))
	}
	// Feedback: point each DFF's D at a late cloud gate so the state
	// actually depends on the logic (and transitively on itself).
	for _, d := range dffs {
		c.Gates[d].Fanin[0] = pool[len(pool)-1-rng.Intn(10)]
	}
	nPO := 1 + rng.Intn(3)
	for i := 0; i < nPO; i++ {
		c.AddGate(netlist.Output, fmt.Sprintf("o%d", i), pool[len(pool)-1-rng.Intn(len(pool)/2)])
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

// randomXSeq generates an X-heavy vector sequence: the power-up state
// is all-X already, and sprinkling X into the inputs keeps three-valued
// paths (the unknown-propagation rules) under test, not just binary ones.
func randomXSeq(rng *rand.Rand, nPI, frames int, xProb float64) [][]sim.Val {
	seq := make([][]sim.Val, frames)
	for i := range seq {
		vec := make([]sim.Val, nPI)
		for j := range vec {
			switch {
			case rng.Float64() < xProb:
				vec[j] = sim.VX
			case rng.Intn(2) == 0:
				vec[j] = sim.V0
			default:
				vec[j] = sim.V1
			}
		}
		seq[i] = vec
	}
	return seq
}

// TestKernelDifferential cross-checks the event-driven kernel on
// randomized circuits three ways:
//
//   - against the serialDetects oracle (single-fault structural
//     rewiring through the plain good-machine simulator);
//   - serial Detects across the fallback modes (default active-region,
//     never-fallback, always-oblivious) — all must agree exactly;
//   - DetectsParallel at several worker counts — results must be
//     byte-identical to serial for every count.
//
// The full (uncollapsed) universe is used so DFF stem and branch
// faults are all present.
func TestKernelDifferential(t *testing.T) {
	trials := 8
	if testing.Short() {
		trials = 3
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < trials; trial++ {
		c := randomDiffCircuit(t, rng, trial)
		faults := FullUniverse(c)
		seq := randomXSeq(rng, len(c.PIs), 4+rng.Intn(10), 0.25)
		fs, err := NewSimulator(c)
		if err != nil {
			t.Fatal(err)
		}

		ref, err := fs.Detects(seq, faults)
		if err != nil {
			t.Fatal(err)
		}

		// Oracle pass: every fault, one at a time, via structural rewiring.
		for i, f := range faults {
			if want := serialDetects(t, c, seq, f); ref[i] != want {
				t.Errorf("trial %d fault %v: kernel=%v oracle=%v", trial, f, ref[i], want)
			}
		}

		// Fallback modes must not change results, only effort.
		for _, mode := range []int{-1, 1} {
			fs.FallbackEvals = mode
			got, err := fs.Detects(seq, faults)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if got[i] != ref[i] {
					t.Errorf("trial %d fault %v: FallbackEvals=%d gives %v, default gives %v",
						trial, faults[i], mode, got[i], ref[i])
				}
			}
		}
		fs.FallbackEvals = 0

		// Worker-count invariance: byte-identical for every count.
		for _, workers := range []int{1, 2, 3, 8} {
			got, err := fs.DetectsParallel(context.Background(), seq, faults, workers)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if got[i] != ref[i] {
					t.Errorf("trial %d fault %v: workers=%d gives %v, serial gives %v",
						trial, faults[i], workers, got[i], ref[i])
				}
			}
		}

		// DetectsOne (the single-fault confirmation fast path) must
		// agree with the batched verdicts too.
		for i := 0; i < len(faults); i += 1 + len(faults)/40 {
			one, err := fs.DetectsOne(seq, faults[i])
			if err != nil {
				t.Fatal(err)
			}
			if one != ref[i] {
				t.Errorf("trial %d fault %v: DetectsOne=%v batch=%v", trial, faults[i], one, ref[i])
			}
		}
	}
}

// TestDetectsParallelCancel: a cancelled context must surface as an
// error, not as a partial result presented as complete.
func TestDetectsParallelCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := randomDiffCircuit(t, rng, 1000)
	faults := FullUniverse(c)
	seq := randomXSeq(rng, len(c.PIs), 8, 0.2)
	fs, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := fs.DetectsParallel(ctx, seq, faults, 4); err == nil {
		t.Fatal("cancelled context accepted")
	}
}
