package fault

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"seqatpg/internal/netlist"
	"seqatpg/internal/sim"
)

// Simulator is a PROOFS-style bit-parallel sequential fault simulator.
// Bit 0 of every word carries the good circuit; bits 1..63 carry faulty
// circuits, 63 faults per pass. All circuits start at the all-X
// power-up state; test sequences are expected to begin with the reset
// vector (plus the flush prefix for retimed circuits).
//
// The kernel exploits the PROOFS observation that faulty activity is
// confined to the fault's fanout region:
//
//   - the good circuit is simulated once per sequence with an
//     event-driven scheduler and its per-frame values are shared,
//     read-only, by every 63-fault batch;
//   - each batch evaluates only its active region — gates whose
//     parallel word differs from the broadcast good value — via an
//     event queue seeded at the injection sites and at flip-flops whose
//     faulty state diverged, falling back to oblivious in-order
//     evaluation when a frame's activity exceeds FallbackEvals;
//   - detection is word-level: one mask extraction per primary output
//     per frame instead of 63 bit probes, and a batch terminates early
//     once every fault in it is detected.
//
// Internally the circuit is flattened into position-indexed arrays
// (topological position, not gate id): gate kinds, a fanin CSR, and a
// combinational-fanout CSR. Both the event scheduler and the oblivious
// fallback walk these flat arrays, which is what keeps the per-gate
// evaluation cost low.
//
// A Simulator may not run two Detects* calls concurrently (the good
// values are shared scratch state), but DetectsParallel itself fans the
// batches of one call out over a worker pool safely.
type Simulator struct {
	c     *netlist.Circuit
	order []int // position -> gate id
	pos   []int // gate id -> position

	// Flat, position-indexed circuit structure.
	kind     []netlist.GateType
	faninOff []int32 // kind/fanin CSR: fanins of position p are fanin[faninOff[p]:faninOff[p+1]]
	fanin    []int32 // fanin positions
	foutOff  []int32 // combinational (non-DFF) fanout CSR
	fout     []int32 // fanout positions; always later than their driver
	piPos    []int32 // primary-input order -> position
	poPos    []int32 // primary-output order -> position
	dffPos   []int32 // DFF index -> position of the DFF gate
	dffD     []int32 // DFF index -> position of its D fanin
	dffAt    []int32 // position -> DFF index, -1 otherwise

	// evalGates is how many gates the oblivious kernel evaluates per
	// frame (everything except Input and DFF loads); the baseline for
	// the evals-avoided statistic. evalsBefore[p] counts those gates at
	// positions < p, so an oblivious tail sweep from p performs
	// evalGates - evalsBefore[p] evaluations.
	evalGates   int
	evalsBefore []int32

	// FallbackEvals is the per-frame gate-evaluation threshold beyond
	// which a batch finishes the frame with oblivious in-order
	// evaluation instead of event scheduling. Zero selects the default
	// (three quarters of the oblivious per-frame evaluation count —
	// measured near-optimal across circuit sizes, since an event
	// evaluation costs only a little more than a sweep slot); negative
	// disables the fallback. Set before simulating; it must not change
	// while a Detects* call is running.
	FallbackEvals int

	// Good-circuit values per frame of the current sequence as
	// broadcast words, shared read-only across batches. gDelta[t] lists
	// the positions whose good value changed from frame t-1 to t — the
	// positions a batch must refresh at the frame boundary to keep its
	// vals invariant. gVals/gState/gPend are the event-driven good
	// simulator's scratch state, all by position.
	goodRows [][]sim.PVal
	gDelta   [][]int32
	gVals    []sim.Val
	gState   []sim.Val
	gPend    []uint64 // pending-event bitset by position

	batches sync.Pool // *batchCtx

	stats kernelStats
}

// kernelStats holds the monotone activity counters; fields are updated
// atomically so parallel batch workers can share them.
type kernelStats struct {
	sequences  int64
	batches    int64
	frames     int64
	events     int64
	goodEvals  int64
	gateEvals  int64
	avoided    int64
	fallbacks  int64
	earlyExits int64
}

// Stats is a snapshot of the kernel's activity counters since the last
// Reset (or since construction).
type Stats struct {
	Sequences int64 // good-circuit sequence simulations
	Batches   int64 // 63-fault batch passes
	Frames    int64 // batch frames simulated (before early exits)
	Events    int64 // gate events processed by the active-region scheduler
	GoodEvals int64 // scalar gate evaluations in the shared good simulation
	GateEvals int64 // parallel-word gate evaluations actually performed
	// GateEvalsAvoided is the oblivious kernel's per-frame evaluation
	// count minus the evaluations performed — the work the active
	// region saved.
	GateEvalsAvoided int64
	Fallbacks        int64 // frames finished by the oblivious fallback
	EarlyExits       int64 // batches terminated before the sequence end
}

// Stats returns a snapshot of the activity counters.
func (fs *Simulator) Stats() Stats {
	return Stats{
		Sequences:        atomic.LoadInt64(&fs.stats.sequences),
		Batches:          atomic.LoadInt64(&fs.stats.batches),
		Frames:           atomic.LoadInt64(&fs.stats.frames),
		Events:           atomic.LoadInt64(&fs.stats.events),
		GoodEvals:        atomic.LoadInt64(&fs.stats.goodEvals),
		GateEvals:        atomic.LoadInt64(&fs.stats.gateEvals),
		GateEvalsAvoided: atomic.LoadInt64(&fs.stats.avoided),
		Fallbacks:        atomic.LoadInt64(&fs.stats.fallbacks),
		EarlyExits:       atomic.LoadInt64(&fs.stats.earlyExits),
	}
}

// ResetStats zeroes the activity counters.
func (fs *Simulator) ResetStats() {
	fs.stats = kernelStats{}
}

// NewSimulator builds a fault simulator for the circuit.
func NewSimulator(c *netlist.Circuit) (*Simulator, error) {
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	n := len(c.Gates)
	fs := &Simulator{
		c:           c,
		order:       order,
		pos:         make([]int, n),
		kind:        make([]netlist.GateType, n),
		dffAt:       make([]int32, n),
		evalsBefore: make([]int32, n+1),
		gVals:       make([]sim.Val, n),
		gState:      make([]sim.Val, len(c.DFFs)),
		gPend:       make([]uint64, (n+63)/64),
	}
	for p, id := range order {
		fs.pos[id] = p
	}
	nfan := 0
	for p, id := range order {
		g := &c.Gates[id]
		fs.kind[p] = g.Type
		nfan += len(g.Fanin)
		fs.evalsBefore[p] = int32(fs.evalGates)
		switch g.Type {
		case netlist.Input, netlist.DFF:
		default:
			fs.evalGates++
		}
	}
	fs.evalsBefore[n] = int32(fs.evalGates)
	fs.faninOff = make([]int32, n+1)
	fs.fanin = make([]int32, 0, nfan)
	fanouts := c.Fanouts()
	fs.foutOff = make([]int32, n+1)
	fs.fout = make([]int32, 0, nfan)
	for p, id := range order {
		fs.faninOff[p] = int32(len(fs.fanin))
		for _, f := range c.Gates[id].Fanin {
			fs.fanin = append(fs.fanin, int32(fs.pos[f]))
		}
		fs.foutOff[p] = int32(len(fs.fout))
		for _, o := range fanouts[id] {
			if c.Gates[o].Type != netlist.DFF {
				fs.fout = append(fs.fout, int32(fs.pos[o]))
			}
		}
	}
	fs.faninOff[n] = int32(len(fs.fanin))
	fs.foutOff[n] = int32(len(fs.fout))
	fs.piPos = make([]int32, len(c.PIs))
	for i, id := range c.PIs {
		fs.piPos[i] = int32(fs.pos[id])
	}
	fs.poPos = make([]int32, len(c.POs))
	for i, id := range c.POs {
		fs.poPos[i] = int32(fs.pos[id])
	}
	for p := range fs.dffAt {
		fs.dffAt[p] = -1
	}
	fs.dffPos = make([]int32, len(c.DFFs))
	fs.dffD = make([]int32, len(c.DFFs))
	for i, id := range c.DFFs {
		fs.dffPos[i] = int32(fs.pos[id])
		fs.dffD[i] = int32(fs.pos[c.Gates[id].Fanin[0]])
		fs.dffAt[fs.pos[id]] = int32(i)
	}
	return fs, nil
}

// fallbackThreshold resolves FallbackEvals: 0 means three quarters of
// the oblivious per-frame work, negative means never fall back.
func (fs *Simulator) fallbackThreshold() int {
	switch {
	case fs.FallbackEvals > 0:
		return fs.FallbackEvals
	case fs.FallbackEvals < 0:
		return 1 << 30
	default:
		return fs.evalGates * 3 / 4
	}
}

// pconstTab is sim.PConst as a lookup table, indexed by sim.Val.
var pconstTab = [3]sim.PVal{
	sim.V0: {Zero: ^uint64(0)},
	sim.V1: {One: ^uint64(0)},
	sim.VX: {},
}

// andTab/orTab/xorTab/notTab are the three-valued gate functions as
// lookup tables (indexed by sim.Val pairs), mirroring sim.AndV and
// friends — the scalar analog of the kernel's inlined two-rail folds.
var (
	andTab = [3][3]sim.Val{
		sim.V0: {sim.V0, sim.V0, sim.V0},
		sim.V1: {sim.V0, sim.V1, sim.VX},
		sim.VX: {sim.V0, sim.VX, sim.VX},
	}
	orTab = [3][3]sim.Val{
		sim.V0: {sim.V0, sim.V1, sim.VX},
		sim.V1: {sim.V1, sim.V1, sim.V1},
		sim.VX: {sim.VX, sim.V1, sim.VX},
	}
	xorTab = [3][3]sim.Val{
		sim.V0: {sim.V0, sim.V1, sim.VX},
		sim.V1: {sim.V1, sim.V0, sim.VX},
		sim.VX: {sim.VX, sim.VX, sim.VX},
	}
	notTab = [3]sim.Val{sim.V1, sim.V0, sim.VX}
)

// injection describes where a batch member's fault manifests.
type injection struct {
	bit uint
	pin int // -1 for output stem
	sa  sim.Val
}

// batchCtx is the per-batch mutable state. Every slice is indexed by
// topological position (state by DFF index) and reused across batches;
// workers each hold their own batchCtx from the pool.
//
// The kernel's core invariant: at every point inside a frame, vals[p]
// is the position's word for that frame if it has been evaluated, and
// the broadcast good word otherwise. Event frames restore the invariant
// at the frame boundary by repairing just the touched positions with
// the next frame's good row; frames finished by an oblivious sweep
// repair with one bulk copy. Reads therefore never need a liveness
// check.
type batchCtx struct {
	vals     []sim.PVal
	touched  []int32 // positions stored by the current event frame
	state    []sim.PVal
	inject   [][]injection
	injSites []int32
	sites    []int32  // injSites sorted by position, for the sweep segments
	seed     []uint64 // frame seed bitset: sites that still carry live faults
	pend     []uint64 // pending-event bitset by position
	faninBuf []sim.PVal

	// activity counters, accumulated across the batches this context
	// served and folded into the Simulator's atomics on release
	nbatches, frames, events, evals, fallbacks, earlyExits int64
}

func (fs *Simulator) getBatchCtx() *batchCtx {
	if v := fs.batches.Get(); v != nil {
		return v.(*batchCtx)
	}
	n := len(fs.c.Gates)
	return &batchCtx{
		vals:     make([]sim.PVal, n),
		state:    make([]sim.PVal, len(fs.c.DFFs)),
		inject:   make([][]injection, n),
		seed:     make([]uint64, (n+63)/64),
		pend:     make([]uint64, (n+63)/64),
		faninBuf: make([]sim.PVal, netlist.MaxFanin),
	}
}

func (fs *Simulator) putBatchCtx(bc *batchCtx) {
	atomic.AddInt64(&fs.stats.batches, bc.nbatches)
	atomic.AddInt64(&fs.stats.frames, bc.frames)
	atomic.AddInt64(&fs.stats.events, bc.events)
	atomic.AddInt64(&fs.stats.gateEvals, bc.evals)
	atomic.AddInt64(&fs.stats.avoided, bc.frames*int64(fs.evalGates)-bc.evals)
	atomic.AddInt64(&fs.stats.fallbacks, bc.fallbacks)
	atomic.AddInt64(&fs.stats.earlyExits, bc.earlyExits)
	bc.nbatches, bc.frames, bc.events, bc.evals, bc.fallbacks, bc.earlyExits = 0, 0, 0, 0, 0, 0
	fs.batches.Put(bc)
}

// Detects fault-simulates the test sequence against the fault list and
// returns a parallel slice: detected[i] is true when applying the
// sequence from power-up exposes faults[i] at a primary output (good
// and faulty values both binary and different). Each input vector must
// have one value per primary input.
//
// Faults are batched 63 at a time in the order given. CollapsedUniverse
// emits faults gate by gate, so consecutive faults already share fanout
// cones — the locality the active region feeds on.
func (fs *Simulator) Detects(seq [][]sim.Val, faults []Fault) ([]bool, error) {
	detected := make([]bool, len(faults))
	if len(faults) == 0 {
		return detected, nil
	}
	if err := fs.simulateGood(seq); err != nil {
		return nil, err
	}
	bc := fs.getBatchCtx()
	defer fs.putBatchCtx(bc)
	for start := 0; start < len(faults); start += 63 {
		end := start + 63
		if end > len(faults) {
			end = len(faults)
		}
		fs.runBatch(bc, len(seq), faults[start:end], detected[start:end])
	}
	return detected, nil
}

// DetectsOne is the single-fault fast path used by the engines to
// confirm a candidate test: one injection bit, one active region, and
// the batch terminates at the first detecting frame — no 63-wide batch
// is spun up around the lone fault.
func (fs *Simulator) DetectsOne(seq [][]sim.Val, f Fault) (bool, error) {
	if err := fs.simulateGood(seq); err != nil {
		return false, err
	}
	var detected [1]bool
	bc := fs.getBatchCtx()
	defer fs.putBatchCtx(bc)
	fs.runBatch(bc, len(seq), []Fault{f}, detected[:])
	return detected[0], nil
}

// simulateGood runs the good circuit over the sequence once with the
// event-driven scheduler and records every gate's value per frame as a
// broadcast word in fs.goodRows, shared read-only by all batches. It
// also validates the vector widths, so runBatch cannot fail.
func (fs *Simulator) simulateGood(seq [][]sim.Val) error {
	for _, vec := range seq {
		if len(vec) != len(fs.piPos) {
			return fmt.Errorf("fault: vector width %d, want %d", len(vec), len(fs.piPos))
		}
	}
	atomic.AddInt64(&fs.stats.sequences, 1)
	if cap(fs.goodRows) < len(seq) {
		fs.goodRows = make([][]sim.PVal, len(seq))
	}
	fs.goodRows = fs.goodRows[:len(seq)]
	for t := range fs.goodRows {
		if fs.goodRows[t] == nil {
			fs.goodRows[t] = make([]sim.PVal, len(fs.order))
		}
	}
	if cap(fs.gDelta) < len(seq) {
		d := make([][]int32, len(seq))
		copy(d, fs.gDelta)
		fs.gDelta = d
	}
	fs.gDelta = fs.gDelta[:len(seq)]

	// Power-up: everything X, every gate scheduled once (the initial
	// full evaluation the event discipline needs to seed values).
	for i := range fs.gVals {
		fs.gVals[i] = sim.VX
	}
	for i := range fs.gState {
		fs.gState[i] = sim.VX
	}
	for i := range fs.gPend {
		fs.gPend[i] = ^uint64(0)
	}
	if r := uint(len(fs.order)) & 63; r != 0 {
		fs.gPend[len(fs.gPend)-1] = 1<<r - 1
	}

	var goodEvals int64
	for t, vec := range seq {
		delta := fs.gDelta[t][:0]
		for i, p := range fs.piPos {
			if fs.gVals[p] != vec[i] {
				fs.gVals[p] = vec[i]
				delta = append(delta, p)
				for _, o := range fs.fout[fs.foutOff[p]:fs.foutOff[p+1]] {
					fs.gSchedule(o)
				}
			}
		}
		for i, p := range fs.dffPos {
			if fs.gVals[p] != fs.gState[i] {
				fs.gVals[p] = fs.gState[i]
				delta = append(delta, p)
				for _, o := range fs.fout[fs.foutOff[p]:fs.foutOff[p+1]] {
					fs.gSchedule(o)
				}
			}
		}
		for wi := 0; wi < len(fs.gPend); wi++ {
			for fs.gPend[wi] != 0 {
				b := bits.TrailingZeros64(fs.gPend[wi])
				fs.gPend[wi] &^= 1 << uint(b)
				p := wi<<6 | b
				kind := fs.kind[p]
				if kind == netlist.Input || kind == netlist.DFF {
					continue // loaded above; changes already propagated
				}
				v := fs.evalGoodPos(p, kind)
				goodEvals++
				if v != fs.gVals[p] {
					fs.gVals[p] = v
					delta = append(delta, int32(p))
					for _, o := range fs.fout[fs.foutOff[p]:fs.foutOff[p+1]] {
						fs.gSchedule(o)
					}
				}
			}
		}
		fs.gDelta[t] = delta
		row := fs.goodRows[t]
		for p, v := range fs.gVals {
			row[p] = pconstTab[v]
		}
		for i, dp := range fs.dffD {
			fs.gState[i] = fs.gVals[dp]
		}
	}
	atomic.AddInt64(&fs.stats.goodEvals, goodEvals)
	return nil
}

// evalGoodPos is the scalar (good-circuit) gate evaluation over the
// lookup tables above; semantically identical to sim.EvalGate on the
// gate's fanin values.
func (fs *Simulator) evalGoodPos(p int, kind netlist.GateType) sim.Val {
	off, end := fs.faninOff[p], fs.faninOff[p+1]
	if off == end {
		switch kind {
		case netlist.Const0:
			return sim.V0
		case netlist.Const1:
			return sim.V1
		default:
			return sim.VX
		}
	}
	v := fs.gVals[fs.fanin[off]]
	switch kind {
	case netlist.And, netlist.Nand:
		for k := off + 1; k < end; k++ {
			v = andTab[v][fs.gVals[fs.fanin[k]]]
		}
		if kind == netlist.Nand {
			v = notTab[v]
		}
	case netlist.Or, netlist.Nor:
		for k := off + 1; k < end; k++ {
			v = orTab[v][fs.gVals[fs.fanin[k]]]
		}
		if kind == netlist.Nor {
			v = notTab[v]
		}
	case netlist.Xor, netlist.Xnor:
		for k := off + 1; k < end; k++ {
			v = xorTab[v][fs.gVals[fs.fanin[k]]]
		}
		if kind == netlist.Xnor {
			v = notTab[v]
		}
	case netlist.Not:
		v = notTab[v]
	case netlist.Buf, netlist.Output:
		// v is already the single fanin's value.
	case netlist.Const0:
		v = sim.V0
	case netlist.Const1:
		v = sim.V1
	default:
		v = sim.VX
	}
	return v
}

func (fs *Simulator) gSchedule(p int32) {
	fs.gPend[p>>6] |= 1 << (uint32(p) & 63)
}

// runBatch simulates one batch of up to 63 faults against the good
// values recorded by simulateGood. Bit i+1 of every word carries
// faults[i]; a gate enters the batch's active region the first frame
// its word diverges from the broadcast good value. The injection
// tables are cleared on return so the context can serve the next batch.
func (fs *Simulator) runBatch(bc *batchCtx, frames int, faults []Fault, detected []bool) {
	bc.nbatches++
	for i := range faults {
		f := &faults[i]
		p := int32(fs.pos[f.Gate])
		if len(bc.inject[p]) == 0 {
			bc.injSites = append(bc.injSites, p)
		}
		bc.inject[p] = append(bc.inject[p], injection{bit: uint(i + 1), pin: f.Pin, sa: f.SA})
	}
	bc.sites = append(bc.sites[:0], bc.injSites...)
	for i := 1; i < len(bc.sites); i++ { // ≤63 sites: insertion sort
		for j := i; j > 0 && bc.sites[j] < bc.sites[j-1]; j-- {
			bc.sites[j], bc.sites[j-1] = bc.sites[j-1], bc.sites[j]
		}
	}
	for i := range bc.seed {
		bc.seed[i] = 0
	}
	for _, p := range bc.injSites {
		bc.seed[p>>6] |= 1 << (uint32(p) & 63)
	}
	var detectedMask, fullMask uint64
	for i := range faults {
		fullMask |= 1 << uint(i+1)
	}
	state := bc.state
	for i := range state {
		state[i] = sim.PX()
	}
	threshold := fs.fallbackThreshold()

	// Establish the frame invariant for t = 0: every position holds its
	// broadcast good word until an evaluation stores a diverged one.
	bc.touched = bc.touched[:0]
	if frames > 0 {
		copy(bc.vals, fs.goodRows[0])
	}

	// dense remembers that the previous frame's activity exceeded the
	// threshold: the next frame then skips event scheduling entirely and
	// runs the tight full-frame sweep, returning to event mode once the
	// measured active region shrinks again.
	dense := false
	var dropped uint64 // detected bits already removed from the batch
	for t := 0; t < frames; t++ {
		row := fs.goodRows[t]
		bc.frames++

		sweptAll := dense
		if dense {
			active := fs.sweepFrom(bc, row, 0)
			bc.evals += int64(fs.evalGates)
			bc.fallbacks++
			dense = 2*active >= threshold
		} else {
			// Seed the frame's events: injection sites (a batch-constant
			// bitset), and flip-flops whose faulty word diverged from the
			// good state.
			copy(bc.pend, bc.seed)
			for i, p := range fs.dffPos {
				if state[i] != row[p] {
					bc.pend[p>>6] |= 1 << (uint32(p) & 63)
				}
			}
			evals := 0
		drain:
			for wi := 0; wi < len(bc.pend); wi++ {
				for bc.pend[wi] != 0 {
					b := bits.TrailingZeros64(bc.pend[wi])
					bc.pend[wi] &^= 1 << uint(b)
					p := wi<<6 | b
					if evals >= threshold {
						// Too active: finish the frame obliviously from
						// here. Everything before position p is final —
						// evaluated, or holding its good word by the frame
						// invariant — so a plain in-order sweep over the
						// tail is exact.
						for j := wi; j < len(bc.pend); j++ {
							bc.pend[j] = 0
						}
						fs.sweepFrom(bc, row, p)
						evals = int(int32(fs.evalGates)-fs.evalsBefore[p]) + evals
						bc.fallbacks++
						dense = true
						sweptAll = true
						break drain
					}
					bc.events++
					if fs.evalPos(bc, p, row, false) {
						evals++
					}
				}
			}
			bc.evals += int64(evals)
		}

		// Word-level detection: good binary, faulty binary, different.
		// A broadcast row word is all-Zero (or all-One) exactly when the
		// good value is the binary 0 (or 1); an inactive output still
		// holds the good word, contributing nothing.
		for _, p := range fs.poPos {
			switch g := row[p]; {
			case g.Zero == ^uint64(0):
				detectedMask |= bc.vals[p].One & fullMask
			case g.One == ^uint64(0):
				detectedMask |= bc.vals[p].Zero & fullMask
			}
		}

		if detectedMask == fullMask {
			if t+1 < frames {
				bc.earlyExits++
			}
			break
		}

		// Drop detected faults (the PROOFS fault-drop): their bits no
		// longer matter, so removing their injections and steering their
		// state bits back to the good values shrinks the active region
		// for the rest of the sequence. Undetected bits never read a
		// detected bit — the two-rail algebra is bitwise — so their
		// trajectories are untouched.
		if detectedMask != dropped {
			for _, p := range bc.injSites {
				injs := bc.inject[p]
				kept := injs[:0]
				for _, inj := range injs {
					if detectedMask>>inj.bit&1 == 0 {
						kept = append(kept, inj)
					}
				}
				bc.inject[p] = kept
			}
			// Sites whose faults are all detected stop seeding frames
			// (and stop segmenting the sweep).
			sites := bc.sites[:0]
			for _, p := range bc.sites {
				if len(bc.inject[p]) != 0 {
					sites = append(sites, p)
				}
			}
			bc.sites = sites
			for i := range bc.seed {
				bc.seed[i] = 0
			}
			for _, p := range bc.sites {
				bc.seed[p>>6] |= 1 << (uint32(p) & 63)
			}
			dropped = detectedMask
		}

		// Clock edge: capture D values; a stem fault on the DFF itself
		// (or a branch fault on its D input) pins the next Q value.
		// Detected bits are forced back to the good next state.
		for i, dp := range fs.dffD {
			w := bc.vals[dp]
			for _, inj := range bc.inject[fs.dffPos[i]] {
				if inj.pin <= 0 {
					w.Set(inj.bit, inj.sa)
				}
			}
			g := row[dp]
			w.Zero = w.Zero&^dropped | g.Zero&dropped
			w.One = w.One&^dropped | g.One&dropped
			state[i] = w
		}

		// Restore the frame invariant for the next frame: positions this
		// frame diverged, and positions whose good value changes between
		// the frames, get the next good row; everything else already holds
		// it. Swept frames skip the bookkeeping with one bulk copy.
		if t+1 < frames {
			next := fs.goodRows[t+1]
			if sweptAll {
				copy(bc.vals, next)
			} else {
				for _, q := range bc.touched {
					bc.vals[q] = next[q]
				}
				for _, q := range fs.gDelta[t+1] {
					bc.vals[q] = next[q]
				}
			}
		}
		bc.touched = bc.touched[:0]
	}
	for i := range faults {
		detected[i] = detectedMask>>uint(i+1)&1 == 1
	}
	// Clear the injection tables (O(batch), not O(gates)).
	for _, p := range bc.injSites {
		bc.inject[p] = bc.inject[p][:0]
	}
	bc.injSites = bc.injSites[:0]
}

// sweepFrom evaluates every position in [from, len) in topological
// order for the current frame — the oblivious kernel, used for a whole
// frame when the previous one showed the active region covering most of
// the circuit (from = 0), and for the tail when the event scheduler
// trips the fallback threshold mid-frame. Each gate's fanins are
// current when it is reached: earlier swept positions were just stored,
// and everything else holds its value by the frame invariant. Because
// the (at most 63) injection sites are visited between segments of the
// sorted site list, the hot loop never touches the injection tables at
// all. It returns the number of positions whose word diverges from the
// broadcast good value, which drives the switch back to event mode.
//
// The two-rail folds mirror foldVals (and sim.EvalGateP) exactly.
func (fs *Simulator) sweepFrom(bc *batchCtx, row []sim.PVal, from int) (active int) {
	vals := bc.vals
	kinds, faninOff, fan := fs.kind, fs.faninOff, fs.fanin
	n0 := 0
	for n0 < len(bc.sites) && int(bc.sites[n0]) < from {
		n0++
	}
	start := from
	for n := n0; n <= len(bc.sites); n++ {
		stop := len(kinds)
		if n < len(bc.sites) {
			stop = int(bc.sites[n])
		}
		for p := start; p < stop; p++ {
			kind := kinds[p]
			var w sim.PVal
			off, end := faninOff[p], faninOff[p+1]
			if off == end {
				switch kind {
				case netlist.Input:
					w = row[p]
				default:
					w = sim.EvalGateP(kind, nil) // Const0/Const1 (or a degenerate gate)
				}
				vals[p] = w
				continue // equal to good by construction
			}
			w = vals[fan[off]]
			switch kind {
			case netlist.And, netlist.Nand:
				for k := off + 1; k < end; k++ {
					b := vals[fan[k]]
					w.Zero |= b.Zero
					w.One &= b.One
				}
				if kind == netlist.Nand {
					w = sim.PVal{Zero: w.One, One: w.Zero}
				}
			case netlist.Or, netlist.Nor:
				for k := off + 1; k < end; k++ {
					b := vals[fan[k]]
					w.Zero &= b.Zero
					w.One |= b.One
				}
				if kind == netlist.Nor {
					w = sim.PVal{Zero: w.One, One: w.Zero}
				}
			case netlist.Xor, netlist.Xnor:
				for k := off + 1; k < end; k++ {
					b := vals[fan[k]]
					known := (w.Zero | w.One) & (b.Zero | b.One)
					ones := (w.One & b.Zero) | (w.Zero & b.One)
					w = sim.PVal{Zero: known &^ ones, One: ones}
				}
				if kind == netlist.Xnor {
					w = sim.PVal{Zero: w.One, One: w.Zero}
				}
			case netlist.Not:
				w = sim.PVal{Zero: w.One, One: w.Zero}
			case netlist.Buf, netlist.Output:
				// w is already the single fanin's word.
			case netlist.DFF:
				w = bc.state[fs.dffAt[p]]
			default:
				in := bc.faninBuf[:end-off]
				for k := off; k < end; k++ {
					in[k-off] = vals[fan[k]]
				}
				w = sim.EvalGateP(kind, in)
			}
			vals[p] = w
			if w != row[p] {
				active++
			}
		}
		if n < len(bc.sites) {
			// Injection site. Stem-only sites (the common case) take the
			// same inline fold plus the output Sets; a site with a branch
			// (input-pin) fault goes through the general path.
			p := int(bc.sites[n])
			injs := bc.inject[p]
			branch := false
			for _, inj := range injs {
				if inj.pin >= 0 {
					branch = true
					break
				}
			}
			if branch {
				fs.evalPos(bc, p, row, true)
			} else {
				var w sim.PVal
				switch kind := kinds[p]; kind {
				case netlist.Input:
					w = row[p]
				case netlist.DFF:
					w = bc.state[fs.dffAt[p]]
				default:
					w = fs.foldVals(bc, p, kind)
				}
				for _, inj := range injs {
					w.Set(inj.bit, inj.sa) // all stems: pin < 0
				}
				vals[p] = w
			}
			if vals[p] != row[p] {
				active++
			}
		}
		start = stop + 1
	}
	return active
}

// foldVals is the no-injection combinational fold over bc.vals, for
// sweep positions whose fanins are all current; it mirrors the sweep
// hot loop (and sim.EvalGateP) exactly.
func (fs *Simulator) foldVals(bc *batchCtx, p int, kind netlist.GateType) sim.PVal {
	vals, fan := bc.vals, fs.fanin
	off, end := fs.faninOff[p], fs.faninOff[p+1]
	if off == end {
		return sim.EvalGateP(kind, nil)
	}
	w := vals[fan[off]]
	switch kind {
	case netlist.And, netlist.Nand:
		for k := off + 1; k < end; k++ {
			b := vals[fan[k]]
			w.Zero |= b.Zero
			w.One &= b.One
		}
		if kind == netlist.Nand {
			w = sim.PVal{Zero: w.One, One: w.Zero}
		}
	case netlist.Or, netlist.Nor:
		for k := off + 1; k < end; k++ {
			b := vals[fan[k]]
			w.Zero &= b.Zero
			w.One |= b.One
		}
		if kind == netlist.Nor {
			w = sim.PVal{Zero: w.One, One: w.Zero}
		}
	case netlist.Xor, netlist.Xnor:
		for k := off + 1; k < end; k++ {
			b := vals[fan[k]]
			known := (w.Zero | w.One) & (b.Zero | b.One)
			ones := (w.One & b.Zero) | (w.Zero & b.One)
			w = sim.PVal{Zero: known &^ ones, One: ones}
		}
		if kind == netlist.Xnor {
			w = sim.PVal{Zero: w.One, One: w.Zero}
		}
	case netlist.Not:
		w = sim.PVal{Zero: w.One, One: w.Zero}
	case netlist.Buf, netlist.Output:
		// w is already the single fanin's word.
	default:
		in := bc.faninBuf[:end-off]
		for k := off; k < end; k++ {
			in[k-off] = vals[fan[k]]
		}
		w = sim.EvalGateP(kind, in)
	}
	return w
}

// evalPos computes one position's parallel word for the current frame
// — reading fanins straight out of bc.vals, which the frame invariant
// keeps current — and, when it diverges from the position's present
// value, stores it, records the position as touched, and (in event
// mode) schedules the combinational fanouts. In oblivious mode the word
// is always stored and nothing is scheduled — the caller sweeps every
// remaining position in topological order anyway. The return value
// reports whether a parallel gate evaluation was performed (false for
// Input/DFF loads, which the oblivious kernel never counted).
//
// Gates carrying an injection take the generic gather + EvalGateP path
// so the branch (input-pin) faults apply in one place.
func (fs *Simulator) evalPos(bc *batchCtx, p int, row []sim.PVal, oblivious bool) bool {
	kind := fs.kind[p]
	injs := bc.inject[p]
	var w sim.PVal
	evaluated := false
	switch {
	case kind == netlist.Input:
		w = row[p]
	case kind == netlist.DFF:
		w = bc.state[fs.dffAt[p]]
	case len(injs) != 0:
		// Injection site: gather fanins, apply the branch faults, and
		// evaluate generically. At most 63 of these per batch.
		evaluated = true
		off, end := fs.faninOff[p], fs.faninOff[p+1]
		in := bc.faninBuf[:end-off]
		for k := off; k < end; k++ {
			in[k-off] = bc.vals[fs.fanin[k]]
		}
		for _, inj := range injs {
			if inj.pin >= 0 {
				in[inj.pin].Set(inj.bit, inj.sa)
			}
		}
		w = sim.EvalGateP(kind, in)
	default:
		evaluated = true
		w = fs.foldVals(bc, p, kind)
	}
	// Stem fault injection on the gate output.
	for _, inj := range injs {
		if inj.pin < 0 {
			w.Set(inj.bit, inj.sa)
		}
	}
	if oblivious {
		bc.vals[p] = w
		return evaluated
	}
	if w != bc.vals[p] {
		bc.vals[p] = w
		bc.touched = append(bc.touched, int32(p))
		for _, o := range fs.fout[fs.foutOff[p]:fs.foutOff[p+1]] {
			bc.pend[o>>6] |= 1 << (uint32(o) & 63)
		}
	}
	return evaluated
}

// Coverage summarizes a detection vector.
type Coverage struct {
	Total    int
	Detected int
}

// FC returns the fault coverage percentage.
func (c Coverage) FC() float64 {
	if c.Total == 0 {
		return 0
	}
	return 100 * float64(c.Detected) / float64(c.Total)
}

// Summarize counts detections.
func Summarize(detected []bool) Coverage {
	cov := Coverage{Total: len(detected)}
	for _, d := range detected {
		if d {
			cov.Detected++
		}
	}
	return cov
}

// StateTrace applies the sequence to the good circuit from power-up and
// returns the set of fully specified states traversed (as packed DFF bit
// vectors). This is the instrument behind the paper's "#states
// traversed by original test set" column (Table 8).
func StateTrace(c *netlist.Circuit, seq [][]sim.Val) (map[uint64]bool, error) {
	s, err := sim.NewSimulator(c)
	if err != nil {
		return nil, err
	}
	s.PowerUp()
	states := map[uint64]bool{}
	for _, vec := range seq {
		if _, err := s.Step(vec); err != nil {
			return nil, err
		}
		if bits, ok := s.StateBits(); ok {
			states[bits] = true
		}
	}
	return states, nil
}
