package fault

import (
	"fmt"

	"seqatpg/internal/netlist"
	"seqatpg/internal/sim"
)

// Simulator is a PROOFS-style bit-parallel sequential fault simulator.
// Bit 0 of every word carries the good circuit; bits 1..63 carry faulty
// circuits, 63 faults per pass. All circuits start at the all-X
// power-up state; test sequences are expected to begin with the reset
// vector (plus the flush prefix for retimed circuits).
type Simulator struct {
	c     *netlist.Circuit
	order []int
}

// NewSimulator builds a fault simulator for the circuit.
func NewSimulator(c *netlist.Circuit) (*Simulator, error) {
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	return &Simulator{c: c, order: order}, nil
}

// injection describes where a batch member's fault manifests.
type injection struct {
	bit uint
	pin int // -1 for output stem
	sa  sim.Val
}

// Detects fault-simulates the test sequence against the fault list and
// returns a parallel slice: detected[i] is true when applying the
// sequence from power-up exposes faults[i] at a primary output (good
// and faulty values both binary and different). Each input vector must
// have one value per primary input.
func (fs *Simulator) Detects(seq [][]sim.Val, faults []Fault) ([]bool, error) {
	detected := make([]bool, len(faults))
	for start := 0; start < len(faults); start += 63 {
		end := start + 63
		if end > len(faults) {
			end = len(faults)
		}
		if err := fs.runBatch(seq, faults[start:end], detected[start:end]); err != nil {
			return nil, err
		}
	}
	return detected, nil
}

// runBatch simulates one batch of up to 63 faults in a single pass.
func (fs *Simulator) runBatch(seq [][]sim.Val, faults []Fault, detected []bool) error {
	c := fs.c
	// Injection tables per gate.
	inject := make(map[int][]injection)
	for i, f := range faults {
		inject[f.Gate] = append(inject[f.Gate], injection{bit: uint(i + 1), pin: f.Pin, sa: f.SA})
	}
	vals := make([]sim.PVal, len(c.Gates))
	state := make([]sim.PVal, len(c.DFFs))
	for i := range state {
		state[i] = sim.PX()
	}
	faninBuf := make([]sim.PVal, netlist.MaxFanin)
	for _, vec := range seq {
		if len(vec) != len(c.PIs) {
			return fmt.Errorf("fault: vector width %d, want %d", len(vec), len(c.PIs))
		}
		for i, id := range c.PIs {
			vals[id] = sim.PConst(vec[i])
		}
		for i, id := range c.DFFs {
			vals[id] = state[i]
		}
		// Input faults on PIs/DFF outputs are stem faults on those gates.
		for _, id := range fs.order {
			g := c.Gates[id]
			injs := inject[id]
			switch g.Type {
			case netlist.Input, netlist.DFF:
				// Value already loaded; apply stem faults below.
			default:
				in := faninBuf[:len(g.Fanin)]
				for k, f := range g.Fanin {
					in[k] = vals[f]
				}
				// Branch fault injection on this gate's input pins.
				for _, inj := range injs {
					if inj.pin >= 0 {
						v := in[inj.pin]
						v.Set(inj.bit, inj.sa)
						in[inj.pin] = v
					}
				}
				vals[id] = sim.EvalGateP(g.Type, in)
			}
			// Stem fault injection on the gate output.
			for _, inj := range injs {
				if inj.pin < 0 {
					v := vals[id]
					v.Set(inj.bit, inj.sa)
					vals[id] = v
				}
			}
		}
		// Detection at POs: good bit binary, faulty bit binary, differ.
		for _, id := range c.POs {
			w := vals[id]
			good := w.Get(0)
			if good == sim.VX {
				continue
			}
			for i := range faults {
				if detected[i] {
					continue
				}
				fv := w.Get(uint(i + 1))
				if fv != sim.VX && fv != good {
					detected[i] = true
				}
			}
		}
		// Clock.
		for i, id := range c.DFFs {
			d := c.Gates[id].Fanin[0]
			state[i] = vals[d]
			// A stem fault on the DFF itself pins its next Q value.
			for _, inj := range inject[id] {
				if inj.pin < 0 {
					state[i].Set(inj.bit, inj.sa)
				} else if inj.pin == 0 {
					// Branch fault on the D input.
					state[i].Set(inj.bit, inj.sa)
				}
			}
		}
	}
	return nil
}

// Coverage summarizes a detection vector.
type Coverage struct {
	Total    int
	Detected int
}

// FC returns the fault coverage percentage.
func (c Coverage) FC() float64 {
	if c.Total == 0 {
		return 0
	}
	return 100 * float64(c.Detected) / float64(c.Total)
}

// Summarize counts detections.
func Summarize(detected []bool) Coverage {
	cov := Coverage{Total: len(detected)}
	for _, d := range detected {
		if d {
			cov.Detected++
		}
	}
	return cov
}

// StateTrace applies the sequence to the good circuit from power-up and
// returns the set of fully specified states traversed (as packed DFF bit
// vectors). This is the instrument behind the paper's "#states
// traversed by original test set" column (Table 8).
func StateTrace(c *netlist.Circuit, seq [][]sim.Val) (map[uint64]bool, error) {
	s, err := sim.NewSimulator(c)
	if err != nil {
		return nil, err
	}
	s.PowerUp()
	states := map[uint64]bool{}
	for _, vec := range seq {
		if _, err := s.Step(vec); err != nil {
			return nil, err
		}
		if bits, ok := s.StateBits(); ok {
			states[bits] = true
		}
	}
	return states, nil
}
