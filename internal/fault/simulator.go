package fault

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"seqatpg/internal/netlist"
	"seqatpg/internal/sim"
)

// Simulator is a PROOFS-style bit-parallel sequential fault simulator.
// Faulty circuits ride in wide words of W 64-bit lanes (a lane group);
// a pass carries Width faults (63, 127 or 255 — one bit per fault,
// with bit 0 reserved for the broadcast good value). All circuits start
// at the all-X power-up state; test sequences are expected to begin
// with the reset vector (plus the flush prefix for retimed circuits).
//
// The kernel exploits the PROOFS observation that faulty activity is
// confined to the fault's fanout region:
//
//   - the good circuit is simulated once per sequence with an
//     event-driven scheduler and its per-frame values are shared,
//     read-only, by every batch;
//   - each batch evaluates only its active region — gates whose
//     parallel lane group differs from the broadcast good value — via
//     an event queue seeded at the injection sites and at flip-flops
//     whose faulty state diverged, falling back to oblivious in-order
//     evaluation when a frame's activity exceeds FallbackEvals;
//   - detection is word-level: one mask accumulation per primary
//     output per frame instead of per-fault bit probes, and a batch
//     terminates early once every fault in it is detected.
//
// The hot path runs over the circuit's structure-of-arrays view
// (netlist.SoA): gate kinds, a fanin CSR and a combinational-fanout
// CSR as flat position-indexed slices, so both the event scheduler and
// the oblivious sweep stream through memory instead of chasing
// per-gate pointers. Per-batch mutable state lives in pooled arenas
// (batchCtx) that reset in O(batch) between passes.
//
// A Simulator may not run two Detects* calls concurrently (the good
// values are shared scratch state), but DetectsParallel itself fans the
// batches of one call out over a worker pool safely.
type Simulator struct {
	c   *netlist.Circuit
	soa *netlist.SoA

	// FallbackEvals is the per-frame gate-evaluation threshold beyond
	// which a batch finishes the frame with oblivious in-order
	// evaluation instead of event scheduling. Zero selects the default
	// (three quarters of the oblivious per-frame evaluation count —
	// measured near-optimal across circuit sizes, since an event
	// evaluation costs only a little more than a sweep slot); negative
	// disables the fallback. Set before simulating; it must not change
	// while a Detects* call is running.
	FallbackEvals int

	// Width is the number of faults a single pass carries: 63 (one
	// 64-bit lane), 127 (two lanes) or 255 (four lanes). Zero selects
	// 63, the narrow kernel. Results are byte-identical for every
	// width — wider lane groups only amortize the per-gate scheduling
	// and memory traffic over more faults — so Width, like the worker
	// count, is a machine-local throughput knob that must not affect
	// checkpoints or effort accounting. Set before simulating; it must
	// not change while a Detects* call is running.
	Width int

	// Good-circuit values per frame of the current sequence as
	// broadcast words, shared read-only across batches. gDelta[t] lists
	// the positions whose good value changed from frame t-1 to t — the
	// positions a batch must refresh at the frame boundary to keep its
	// vals invariant. gVals/gState/gPend are the event-driven good
	// simulator's scratch state, all by position.
	goodRows [][]sim.PVal
	gDelta   [][]int32
	gVals    []sim.Val
	gState   []sim.Val
	gPend    []uint64 // pending-event bitset by position

	// wrows caches goodRows replicated to each lane shape (a
	// [][]pword[L] per slot, indexed by laneIdx like pools), rebuilt
	// from goodRows at the start of every Detects* call and shared
	// read-only by its batches as the bulk-fill source.
	wrows [3]any

	// pools holds the per-width batch-arena pools, indexed by
	// laneIdx(W); workers each hold their own arena while running.
	pools [3]sync.Pool

	stats kernelStats
}

// Width values accepted by the kernel: faults per pass for lane groups
// of one, two and four 64-bit words.
const (
	Width63  = 63
	Width127 = 127
	Width255 = 255
	// WidthMax is the widest kernel: 255 faults per lane group. It does
	// the fewest passes but unions 255 fault cones' active regions per
	// batch, so it only wins when the active region has little to avoid.
	WidthMax = Width255
	// WidthAuto lets the simulator pick the width per call from its own
	// measured activity (see autoWidth). Callers that only consume
	// detection verdicts — which are byte-identical across widths —
	// should prefer it.
	WidthAuto = -1
)

// autoWideFrac is the avoided-work fraction below which WidthAuto
// switches from the narrow event-driven kernel to the wide one.
// Empirically the benchmark circuits sit well apart: the mid-size
// control circuit avoids ~83% of the oblivious work at Width63 (narrow
// is ~1.2x faster than wide there), while the small high-activity one
// avoids ~59% (wide is ~1.3x faster). 0.7 splits the regimes with
// margin on both sides.
const autoWideFrac = 0.7

// autoWidth resolves WidthAuto from the measured activity counters.
// Narrow batches win while the active region avoids most of the
// oblivious per-frame work: merging 255 fault cones into one batch
// unions their active regions, which costs more than the 4x lane
// packing saves. When avoidance drops below autoWideFrac — small or
// high-activity circuits where per-batch fixed costs dominate — the
// wide kernel's pass-count reduction wins instead. With no history yet
// (first call, or right after ResetStats) it probes narrow, the
// cheaper mistake on unknown workloads.
func (fs *Simulator) autoWidth() int {
	evals := atomic.LoadInt64(&fs.stats.gateEvals)
	avoided := atomic.LoadInt64(&fs.stats.avoided)
	if total := evals + avoided; total == 0 || float64(avoided) >= autoWideFrac*float64(total) {
		return Width63
	}
	return Width255
}

// kernelStats holds the monotone activity counters. Workers accumulate
// locally in their batch arenas and merge here once per arena release,
// so the only cross-core traffic is one atomic add per counter per
// worker per call. The pads keep the write-hot line from false-sharing
// with the read-only simulator fields around it.
type kernelStats struct {
	_          [64]byte
	sequences  int64
	batches    int64
	frames     int64
	events     int64
	goodEvals  int64
	gateEvals  int64
	avoided    int64
	fallbacks  int64
	earlyExits int64
	_          [64]byte
}

// Stats is a snapshot of the kernel's activity counters since the last
// Reset (or since construction).
type Stats struct {
	Sequences int64 // good-circuit sequence simulations
	Batches   int64 // fault-batch passes (up to Width faults each)
	Frames    int64 // batch frames simulated (before early exits)
	Events    int64 // gate events processed by the active-region scheduler
	GoodEvals int64 // scalar gate evaluations in the shared good simulation
	GateEvals int64 // parallel-word gate evaluations actually performed
	// GateEvalsAvoided is the oblivious kernel's per-frame evaluation
	// count minus the evaluations performed — the work the active
	// region saved.
	GateEvalsAvoided int64
	Fallbacks        int64 // frames finished by the oblivious fallback
	EarlyExits       int64 // batches terminated before the sequence end
}

// Stats returns a snapshot of the activity counters.
func (fs *Simulator) Stats() Stats {
	return Stats{
		Sequences:        atomic.LoadInt64(&fs.stats.sequences),
		Batches:          atomic.LoadInt64(&fs.stats.batches),
		Frames:           atomic.LoadInt64(&fs.stats.frames),
		Events:           atomic.LoadInt64(&fs.stats.events),
		GoodEvals:        atomic.LoadInt64(&fs.stats.goodEvals),
		GateEvals:        atomic.LoadInt64(&fs.stats.gateEvals),
		GateEvalsAvoided: atomic.LoadInt64(&fs.stats.avoided),
		Fallbacks:        atomic.LoadInt64(&fs.stats.fallbacks),
		EarlyExits:       atomic.LoadInt64(&fs.stats.earlyExits),
	}
}

// ResetStats zeroes the activity counters.
func (fs *Simulator) ResetStats() {
	fs.stats = kernelStats{}
}

// NewSimulator builds a fault simulator for the circuit.
func NewSimulator(c *netlist.Circuit) (*Simulator, error) {
	soa, err := netlist.NewSoA(c)
	if err != nil {
		return nil, err
	}
	n := soa.NumGates()
	return &Simulator{
		c:      c,
		soa:    soa,
		gVals:  make([]sim.Val, n),
		gState: make([]sim.Val, soa.NumDFFs()),
		gPend:  make([]uint64, (n+63)/64),
	}, nil
}

// SoA exposes the flattened circuit view the kernel runs on.
func (fs *Simulator) SoA() *netlist.SoA { return fs.soa }

// lanesForWidth maps a Width value to its lane count (64-bit words per
// lane group).
func lanesForWidth(width int) (int, error) {
	switch width {
	case 0, Width63:
		return 1, nil
	case Width127:
		return 2, nil
	case Width255:
		return 4, nil
	default:
		return 0, fmt.Errorf("fault: width %d, want %d, %d or %d", width, Width63, Width127, Width255)
	}
}

// fallbackThreshold resolves FallbackEvals: 0 means three quarters of
// the oblivious per-frame work, negative means never fall back.
func (fs *Simulator) fallbackThreshold() int {
	switch {
	case fs.FallbackEvals > 0:
		return fs.FallbackEvals
	case fs.FallbackEvals < 0:
		return 1 << 30
	default:
		return fs.soa.EvalGates * 3 / 4
	}
}

// pconstTab is sim.PConst as a lookup table, indexed by sim.Val.
var pconstTab = [3]sim.PVal{
	sim.V0: {Zero: ^uint64(0)},
	sim.V1: {One: ^uint64(0)},
	sim.VX: {},
}

// andTab/orTab/xorTab/notTab are the three-valued gate functions as
// lookup tables (indexed by sim.Val pairs), mirroring sim.AndV and
// friends — the scalar analog of the kernel's inlined two-rail folds.
var (
	andTab = [3][3]sim.Val{
		sim.V0: {sim.V0, sim.V0, sim.V0},
		sim.V1: {sim.V0, sim.V1, sim.VX},
		sim.VX: {sim.V0, sim.VX, sim.VX},
	}
	orTab = [3][3]sim.Val{
		sim.V0: {sim.V0, sim.V1, sim.VX},
		sim.V1: {sim.V1, sim.V1, sim.V1},
		sim.VX: {sim.VX, sim.V1, sim.VX},
	}
	xorTab = [3][3]sim.Val{
		sim.V0: {sim.V0, sim.V1, sim.VX},
		sim.V1: {sim.V1, sim.V0, sim.VX},
		sim.VX: {sim.VX, sim.VX, sim.VX},
	}
	notTab = [3]sim.Val{sim.V1, sim.V0, sim.VX}
)

// Detects fault-simulates the test sequence against the fault list and
// returns a parallel slice: detected[i] is true when applying the
// sequence from power-up exposes faults[i] at a primary output (good
// and faulty values both binary and different). Each input vector must
// have one value per primary input.
//
// Faults are batched Width at a time in the order given.
// CollapsedUniverse emits faults gate by gate, so consecutive faults
// already share fanout cones — the locality the active region feeds on.
func (fs *Simulator) Detects(seq [][]sim.Val, faults []Fault) ([]bool, error) {
	return fs.detects(nil, seq, faults, 1)
}

// DetectsOne is the single-fault fast path used by the engines to
// confirm a candidate test: one injection bit, one active region, and
// the batch terminates at the first detecting frame. It always runs the
// one-lane kernel — no wide batch is spun up around the lone fault.
func (fs *Simulator) DetectsOne(seq [][]sim.Val, f Fault) (bool, error) {
	if err := fs.simulateGood(seq); err != nil {
		return false, err
	}
	var detected [1]bool
	rows := wideRows[[1]uint64](fs)
	bc := getBatchCtx[[1]uint64](fs)
	defer putBatchCtx(fs, bc)
	runBatch(fs, bc, rows, len(seq), []Fault{f}, detected[:])
	return detected[0], nil
}

// simulateGood runs the good circuit over the sequence once with the
// event-driven scheduler and records every gate's value per frame as a
// broadcast word in fs.goodRows, shared read-only by all batches. It
// also validates the vector widths, so runBatch cannot fail.
func (fs *Simulator) simulateGood(seq [][]sim.Val) error {
	for _, vec := range seq {
		if len(vec) != len(fs.soa.PIPos) {
			return fmt.Errorf("fault: vector width %d, want %d", len(vec), len(fs.soa.PIPos))
		}
	}
	atomic.AddInt64(&fs.stats.sequences, 1)
	if cap(fs.goodRows) < len(seq) {
		fs.goodRows = make([][]sim.PVal, len(seq))
	}
	fs.goodRows = fs.goodRows[:len(seq)]
	n := fs.soa.NumGates()
	for t := range fs.goodRows {
		if fs.goodRows[t] == nil {
			fs.goodRows[t] = make([]sim.PVal, n)
		}
	}
	if cap(fs.gDelta) < len(seq) {
		d := make([][]int32, len(seq))
		copy(d, fs.gDelta)
		fs.gDelta = d
	}
	fs.gDelta = fs.gDelta[:len(seq)]

	// Power-up: everything X, every gate scheduled once (the initial
	// full evaluation the event discipline needs to seed values).
	for i := range fs.gVals {
		fs.gVals[i] = sim.VX
	}
	for i := range fs.gState {
		fs.gState[i] = sim.VX
	}
	for i := range fs.gPend {
		fs.gPend[i] = ^uint64(0)
	}
	if r := uint(n) & 63; r != 0 {
		fs.gPend[len(fs.gPend)-1] = 1<<r - 1
	}

	fout, foutOff := fs.soa.Fout, fs.soa.FoutOff
	var goodEvals int64
	for t, vec := range seq {
		delta := fs.gDelta[t][:0]
		for i, p := range fs.soa.PIPos {
			if fs.gVals[p] != vec[i] {
				fs.gVals[p] = vec[i]
				delta = append(delta, p)
				for _, o := range fout[foutOff[p]:foutOff[p+1]] {
					fs.gSchedule(o)
				}
			}
		}
		for i, p := range fs.soa.DFFPos {
			if fs.gVals[p] != fs.gState[i] {
				fs.gVals[p] = fs.gState[i]
				delta = append(delta, p)
				for _, o := range fout[foutOff[p]:foutOff[p+1]] {
					fs.gSchedule(o)
				}
			}
		}
		for wi := 0; wi < len(fs.gPend); wi++ {
			for fs.gPend[wi] != 0 {
				b := bits.TrailingZeros64(fs.gPend[wi])
				fs.gPend[wi] &^= 1 << uint(b)
				p := wi<<6 | b
				kind := fs.soa.Kind[p]
				if kind == netlist.Input || kind == netlist.DFF {
					continue // loaded above; changes already propagated
				}
				v := fs.evalGoodPos(p, kind)
				goodEvals++
				if v != fs.gVals[p] {
					fs.gVals[p] = v
					delta = append(delta, int32(p))
					for _, o := range fout[foutOff[p]:foutOff[p+1]] {
						fs.gSchedule(o)
					}
				}
			}
		}
		fs.gDelta[t] = delta
		row := fs.goodRows[t]
		for p, v := range fs.gVals {
			row[p] = pconstTab[v]
		}
		for i, dp := range fs.soa.DFFD {
			fs.gState[i] = fs.gVals[dp]
		}
	}
	atomic.AddInt64(&fs.stats.goodEvals, goodEvals)
	return nil
}

// evalGoodPos is the scalar (good-circuit) gate evaluation over the
// lookup tables above; semantically identical to sim.EvalGate on the
// gate's fanin values.
func (fs *Simulator) evalGoodPos(p int, kind netlist.GateType) sim.Val {
	off, end := fs.soa.FaninOff[p], fs.soa.FaninOff[p+1]
	if off == end {
		switch kind {
		case netlist.Const0:
			return sim.V0
		case netlist.Const1:
			return sim.V1
		default:
			return sim.VX
		}
	}
	fan := fs.soa.Fanin
	v := fs.gVals[fan[off]]
	switch kind {
	case netlist.And, netlist.Nand:
		for k := off + 1; k < end; k++ {
			v = andTab[v][fs.gVals[fan[k]]]
		}
		if kind == netlist.Nand {
			v = notTab[v]
		}
	case netlist.Or, netlist.Nor:
		for k := off + 1; k < end; k++ {
			v = orTab[v][fs.gVals[fan[k]]]
		}
		if kind == netlist.Nor {
			v = notTab[v]
		}
	case netlist.Xor, netlist.Xnor:
		for k := off + 1; k < end; k++ {
			v = xorTab[v][fs.gVals[fan[k]]]
		}
		if kind == netlist.Xnor {
			v = notTab[v]
		}
	case netlist.Not:
		v = notTab[v]
	case netlist.Buf, netlist.Output:
		// v is already the single fanin's value.
	case netlist.Const0:
		v = sim.V0
	case netlist.Const1:
		v = sim.V1
	default:
		v = sim.VX
	}
	return v
}

func (fs *Simulator) gSchedule(p int32) {
	fs.gPend[p>>6] |= 1 << (uint32(p) & 63)
}

// Coverage summarizes a detection vector.
type Coverage struct {
	Total    int
	Detected int
}

// FC returns the fault coverage percentage.
func (c Coverage) FC() float64 {
	if c.Total == 0 {
		return 0
	}
	return 100 * float64(c.Detected) / float64(c.Total)
}

// Summarize counts detections.
func Summarize(detected []bool) Coverage {
	cov := Coverage{Total: len(detected)}
	for _, d := range detected {
		if d {
			cov.Detected++
		}
	}
	return cov
}

// StateTrace applies the sequence to the good circuit from power-up and
// returns the set of fully specified states traversed (as packed DFF bit
// vectors). This is the instrument behind the paper's "#states
// traversed by original test set" column (Table 8).
func StateTrace(c *netlist.Circuit, seq [][]sim.Val) (map[uint64]bool, error) {
	s, err := sim.NewSimulator(c)
	if err != nil {
		return nil, err
	}
	s.PowerUp()
	states := map[uint64]bool{}
	for _, vec := range seq {
		if _, err := s.Step(vec); err != nil {
			return nil, err
		}
		if bits, ok := s.StateBits(); ok {
			states[bits] = true
		}
	}
	return states, nil
}
