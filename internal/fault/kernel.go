package fault

import (
	"math/bits"
	"sync/atomic"

	"seqatpg/internal/netlist"
	"seqatpg/internal/sim"
)

// lanes constrains the kernel's lane-group shapes: one, two or four
// 64-bit words per circuit position. Each shape instantiates its own
// copy of the kernel with the lane count a compile-time constant, so
// the per-lane folds unroll instead of looping over a runtime width.
type lanes interface {
	[1]uint64 | [2]uint64 | [4]uint64
}

// laneCount returns the lane count of a shape as a plain int.
func laneCount[L lanes]() int {
	var l L
	return len(l)
}

// laneIdx maps a lane count to its pool slot: 1→0, 2→1, 4→2.
func laneIdx(lanes int) int { return lanes >> 1 }

// faultsPerPass is the batch capacity of a lane group: 64 bits per
// lane, minus the bit reserved for the broadcast good value.
func faultsPerPass[L lanes]() int { return 64*laneCount[L]() - 1 }

// pword is a lane group: W two-rail 64-bit words carrying 64·W
// circuits in parallel. Bit b of lane l is circuit 64·l+b; zero[l] bit
// b set means that circuit sees logic 0, one[l] means 1, neither X.
type pword[L lanes] struct{ zero, one L }

// bcast replicates a broadcast good word into every lane.
func bcast[L lanes](g sim.PVal) (w pword[L]) {
	for l := 0; l < len(w.zero); l++ {
		w.zero[l] = g.Zero
		w.one[l] = g.One
	}
	return w
}

// eq compares two lane groups branch-free. The hot paths compare lane
// groups constantly (divergence-from-good is the active-region test);
// spelled as `==` on the structs the compiler emits a runtime memequal
// call for the wider shapes, so the folds here are worth ~15% of the
// whole kernel.
func (w *pword[L]) eq(v *pword[L]) bool {
	var d uint64
	for l := 0; l < len(w.zero); l++ {
		d |= (w.zero[l] ^ v.zero[l]) | (w.one[l] ^ v.one[l])
	}
	return d == 0
}

// set assigns circuit `bit`'s value in the lane group.
func (w *pword[L]) set(bit uint32, v sim.Val) {
	l, b := bit>>6, bit&63
	w.zero[l] &^= 1 << b
	w.one[l] &^= 1 << b
	switch v {
	case sim.V0:
		w.zero[l] |= 1 << b
	case sim.V1:
		w.one[l] |= 1 << b
	}
}

// evalWide computes a gate's lane-group output from its fanin groups —
// the generic (gather-based) evaluation used at injection sites and
// for fanin-less gates, mirroring sim.EvalGateP lane by lane.
func evalWide[L lanes](t netlist.GateType, in []pword[L]) pword[L] {
	switch t {
	case netlist.Buf, netlist.Output, netlist.DFF:
		return in[0]
	case netlist.Not:
		w := in[0]
		return pword[L]{zero: w.one, one: w.zero}
	case netlist.And, netlist.Nand:
		acc := bcast[L](pconstTab[sim.V1])
		for _, v := range in {
			for l := 0; l < len(acc.zero); l++ {
				acc.zero[l] |= v.zero[l]
				acc.one[l] &= v.one[l]
			}
		}
		if t == netlist.Nand {
			return pword[L]{zero: acc.one, one: acc.zero}
		}
		return acc
	case netlist.Or, netlist.Nor:
		acc := bcast[L](pconstTab[sim.V0])
		for _, v := range in {
			for l := 0; l < len(acc.zero); l++ {
				acc.zero[l] &= v.zero[l]
				acc.one[l] |= v.one[l]
			}
		}
		if t == netlist.Nor {
			return pword[L]{zero: acc.one, one: acc.zero}
		}
		return acc
	case netlist.Xor, netlist.Xnor:
		acc := bcast[L](pconstTab[sim.V0])
		for _, v := range in {
			for l := 0; l < len(acc.zero); l++ {
				known := (acc.zero[l] | acc.one[l]) & (v.zero[l] | v.one[l])
				ones := (acc.one[l] & v.zero[l]) | (acc.zero[l] & v.one[l])
				acc.zero[l] = known &^ ones
				acc.one[l] = ones
			}
		}
		if t == netlist.Xnor {
			return pword[L]{zero: acc.one, one: acc.zero}
		}
		return acc
	case netlist.Const0:
		return bcast[L](pconstTab[sim.V0])
	case netlist.Const1:
		return bcast[L](pconstTab[sim.V1])
	default:
		return pword[L]{} // all X
	}
}

// injection describes where a batch member's fault manifests.
type injection struct {
	bit uint32 // circuit bit carrying the fault (lane = bit>>6)
	pin int16  // -1 for output stem, else the fanin branch
	sa  sim.Val
}

// eqs reports whether every lane of the group equals the broadcast
// good value — the divergence-from-good test, taken against the scalar
// good rows. The scalar rows are a quarter the footprint of replicated
// wide rows, so they stay cache-resident where materialized wide rows
// measurably did not.
func (w *pword[L]) eqs(g sim.PVal) bool {
	var d uint64
	for l := 0; l < len(w.zero); l++ {
		d |= (w.zero[l] ^ g.Zero) | (w.one[l] ^ g.One)
	}
	return d == 0
}

// wideRows prepares (and caches) the good-circuit rows replicated to
// lane shape L, shared read-only by every batch of the call. The wide
// rows serve the bulk stores — the t = 0 fill and the frame-boundary
// repairs — as plain memmoves, which measurably beat per-position
// broadcast stores; divergence *compares* still run against the scalar
// rows (eqs), which are a quarter the footprint and stay cache-hot.
// Buffers are reused across calls per lane shape (slot indexed by
// laneIdx, like pools), so the engines' interleaved one-lane DetectsOne
// and wide Detects calls do not evict each other.
func wideRows[L lanes](fs *Simulator) [][]pword[L] {
	slot := &fs.wrows[laneIdx(laneCount[L]())]
	rows, _ := (*slot).([][]pword[L])
	n := fs.soa.NumGates()
	if cap(rows) < len(fs.goodRows) {
		grown := make([][]pword[L], len(fs.goodRows))
		copy(grown, rows)
		rows = grown
	}
	rows = rows[:len(fs.goodRows)]
	for t, row := range fs.goodRows {
		if rows[t] == nil {
			rows[t] = make([]pword[L], n)
		}
		wrow := rows[t]
		for p, g := range row {
			wrow[p] = bcast[L](g)
		}
	}
	*slot = rows
	return rows
}

// batchCtx is the per-batch arena: every slice the kernel mutates
// while simulating one batch, indexed by topological position (state
// by DFF index) and reused across batches — resetting between batches
// is O(batch), not O(gates). Workers each hold their own arena from
// the per-width pool.
//
// The kernel's core invariant: at every point inside a frame, vals[p]
// is the position's lane group for that frame if it has been
// evaluated, and the replicated good row value otherwise. Event frames
// restore the invariant at the frame boundary by repairing just the
// touched positions with the next frame's good row; frames finished by
// an oblivious sweep repair with one bulk copy. Reads therefore never
// need a liveness check.
type batchCtx[L lanes] struct {
	vals     []pword[L]
	touched  []int32 // positions stored by the current event frame
	state    []pword[L]
	inject   [][]injection // position -> live injections (empty off-site)
	injSites []int32
	sites    []int32  // injSites sorted by position, for the sweep segments
	seed     []uint64 // frame seed bitset: sites that still carry live faults
	pend     []uint64 // pending-event bitset by position
	faninBuf [netlist.MaxFanin]pword[L]

	// activity counters, accumulated across the batches this arena
	// served and folded into the Simulator's atomics on release
	nbatches, frames, events, evals, fallbacks, earlyExits int64
}

// getBatchCtx fetches (or builds) a batch arena for lane shape L.
func getBatchCtx[L lanes](fs *Simulator) *batchCtx[L] {
	pool := &fs.pools[laneIdx(laneCount[L]())]
	if v := pool.Get(); v != nil {
		return v.(*batchCtx[L])
	}
	n := fs.soa.NumGates()
	return &batchCtx[L]{
		vals:   make([]pword[L], n),
		state:  make([]pword[L], fs.soa.NumDFFs()),
		inject: make([][]injection, n),
		seed:   make([]uint64, (n+63)/64),
		pend:   make([]uint64, (n+63)/64),
	}
}

// putBatchCtx folds the arena's locally accumulated counters into the
// shared stats — the single point of cross-worker contention, one
// atomic add per counter per release — and returns it to the pool.
func putBatchCtx[L lanes](fs *Simulator, bc *batchCtx[L]) {
	atomic.AddInt64(&fs.stats.batches, bc.nbatches)
	atomic.AddInt64(&fs.stats.frames, bc.frames)
	atomic.AddInt64(&fs.stats.events, bc.events)
	atomic.AddInt64(&fs.stats.gateEvals, bc.evals)
	atomic.AddInt64(&fs.stats.avoided, bc.frames*int64(fs.soa.EvalGates)-bc.evals)
	atomic.AddInt64(&fs.stats.fallbacks, bc.fallbacks)
	atomic.AddInt64(&fs.stats.earlyExits, bc.earlyExits)
	bc.nbatches, bc.frames, bc.events, bc.evals, bc.fallbacks, bc.earlyExits = 0, 0, 0, 0, 0, 0
	fs.pools[laneIdx(laneCount[L]())].Put(bc)
}

// runBatch simulates one batch of up to faultsPerPass[L] faults against
// the shared good rows. Bit i+1 (lane (i+1)>>6) of every lane group
// carries faults[i]; a gate enters the batch's active region the first
// frame its lane group diverges from the good row value. The arena's
// injection tables are cleared on return (O(batch)) so it can serve the
// next batch.
func runBatch[L lanes](fs *Simulator, bc *batchCtx[L], rows [][]pword[L], frames int, faults []Fault, detected []bool) {
	bc.nbatches++
	for i := range faults {
		f := &faults[i]
		p := fs.soa.Pos[f.Gate]
		if len(bc.inject[p]) == 0 {
			bc.injSites = append(bc.injSites, p)
		}
		bc.inject[p] = append(bc.inject[p], injection{bit: uint32(i + 1), pin: int16(f.Pin), sa: f.SA})
	}
	bc.sites = append(bc.sites[:0], bc.injSites...)
	for i := 1; i < len(bc.sites); i++ { // ≤Width sites: insertion sort
		for j := i; j > 0 && bc.sites[j] < bc.sites[j-1]; j-- {
			bc.sites[j], bc.sites[j-1] = bc.sites[j-1], bc.sites[j]
		}
	}
	for i := range bc.seed {
		bc.seed[i] = 0
	}
	for _, p := range bc.injSites {
		bc.seed[p>>6] |= 1 << (uint32(p) & 63)
	}
	var det, full, dropped L
	for i := range faults {
		b := uint32(i + 1)
		full[b>>6] |= 1 << (b & 63)
	}
	state := bc.state
	for i := range state {
		state[i] = pword[L]{} // all X
	}
	threshold := fs.fallbackThreshold()

	// Establish the frame invariant for t = 0: every position holds its
	// good row value until an evaluation stores a diverged one.
	bc.touched = bc.touched[:0]
	if frames > 0 {
		copy(bc.vals, rows[0])
	}

	// dense remembers that the previous frame's activity exceeded the
	// threshold: the next frame then skips event scheduling entirely and
	// runs the tight full-frame sweep, returning to event mode once the
	// measured active region shrinks again.
	dense := false
	for t := 0; t < frames; t++ {
		row := fs.goodRows[t]
		bc.frames++

		sweptAll := dense
		if dense {
			active := sweepFrom(fs, bc, row, 0)
			bc.evals += int64(fs.soa.EvalGates)
			bc.fallbacks++
			dense = 2*active >= threshold
		} else {
			// Seed the frame's events: injection sites (a batch-constant
			// bitset), and flip-flops whose faulty lane group diverged
			// from the good state.
			copy(bc.pend, bc.seed)
			for i, p := range fs.soa.DFFPos {
				if !state[i].eqs(row[p]) {
					bc.pend[p>>6] |= 1 << (uint32(p) & 63)
				}
			}
			// The drain loop is the kernel's single hottest path, so the
			// common event — a combinational gate with no injection — is
			// handled inline over hoisted locals; only injection sites and
			// the register/input loads take the generic evalPos call.
			vals, pend, inject := bc.vals, bc.pend, bc.inject
			kinds := fs.soa.Kind
			fout, foutOff := fs.soa.Fout, fs.soa.FoutOff
			evals, events := 0, 0
		drain:
			for wi := 0; wi < len(pend); wi++ {
				for pend[wi] != 0 {
					b := bits.TrailingZeros64(pend[wi])
					pend[wi] &^= 1 << uint(b)
					p := wi<<6 | b
					if evals >= threshold {
						// Too active: finish the frame obliviously from
						// here. Everything before position p is final —
						// evaluated, or holding its good row value by the
						// frame invariant — so a plain in-order sweep over
						// the tail is exact.
						for j := wi; j < len(pend); j++ {
							pend[j] = 0
						}
						sweepFrom(fs, bc, row, p)
						evals = int(int32(fs.soa.EvalGates)-fs.soa.EvalsBefore[p]) + evals
						bc.fallbacks++
						dense = true
						sweptAll = true
						break drain
					}
					events++
					if kind := kinds[p]; len(inject[p]) == 0 && kind >= netlist.Output && kind <= netlist.Xnor {
						evals++
						w := foldVals(fs, bc, p, kind)
						if !w.eq(&vals[p]) {
							vals[p] = w
							bc.touched = append(bc.touched, int32(p))
							for _, o := range fout[foutOff[p]:foutOff[p+1]] {
								pend[o>>6] |= 1 << (uint32(o) & 63)
							}
						}
					} else if evalPos(fs, bc, p, row, false) {
						evals++
					}
				}
			}
			bc.evals += int64(evals)
			bc.events += int64(events)
		}

		// Word-level detection: good binary, faulty binary, different.
		// The scalar good row tells binary-ness in one compare per
		// output; an inactive output still holds the good row value,
		// contributing nothing.
		for _, p := range fs.soa.POPos {
			w := &bc.vals[p]
			switch g := row[p]; {
			case g.Zero == ^uint64(0):
				for l := 0; l < len(det); l++ {
					det[l] |= w.one[l] & full[l]
				}
			case g.One == ^uint64(0):
				for l := 0; l < len(det); l++ {
					det[l] |= w.zero[l] & full[l]
				}
			}
		}

		if det == full {
			if t+1 < frames {
				bc.earlyExits++
			}
			break
		}

		// Drop detected faults (the PROOFS fault-drop): their bits no
		// longer matter, so removing their injections and steering their
		// state bits back to the good values shrinks the active region
		// for the rest of the sequence. Undetected bits never read a
		// detected bit — the two-rail algebra is bitwise — so their
		// trajectories are untouched.
		if det != dropped {
			for _, p := range bc.injSites {
				injs := bc.inject[p]
				kept := injs[:0]
				for _, inj := range injs {
					if det[inj.bit>>6]>>(inj.bit&63)&1 == 0 {
						kept = append(kept, inj)
					}
				}
				bc.inject[p] = kept
			}
			// Sites whose faults are all detected stop seeding frames
			// (and stop segmenting the sweep).
			sites := bc.sites[:0]
			for _, p := range bc.sites {
				if len(bc.inject[p]) != 0 {
					sites = append(sites, p)
				}
			}
			bc.sites = sites
			for i := range bc.seed {
				bc.seed[i] = 0
			}
			for _, p := range bc.sites {
				bc.seed[p>>6] |= 1 << (uint32(p) & 63)
			}
			dropped = det
		}

		// Clock edge: capture D values; a stem fault on the DFF itself
		// (or a branch fault on its D input) pins the next Q value.
		// Detected bits are forced back to the good next state.
		for i, dp := range fs.soa.DFFD {
			w := bc.vals[dp]
			for _, inj := range bc.inject[fs.soa.DFFPos[i]] {
				if inj.pin <= 0 {
					w.set(inj.bit, inj.sa)
				}
			}
			g := row[dp]
			for l := 0; l < len(w.zero); l++ {
				w.zero[l] = w.zero[l]&^dropped[l] | g.Zero&dropped[l]
				w.one[l] = w.one[l]&^dropped[l] | g.One&dropped[l]
			}
			state[i] = w
		}

		// Restore the frame invariant for the next frame: positions this
		// frame diverged, and positions whose good value changes between
		// the frames, get the next good row; everything else already holds
		// it. Swept frames skip the bookkeeping with one bulk copy.
		if t+1 < frames {
			next := rows[t+1]
			// Past about half the circuit, one bulk memmove beats the
			// scattered per-position stores.
			if sweptAll || len(bc.touched)+len(fs.gDelta[t+1]) > len(next)/2 {
				copy(bc.vals, next)
			} else {
				for _, q := range bc.touched {
					bc.vals[q] = next[q]
				}
				for _, q := range fs.gDelta[t+1] {
					bc.vals[q] = next[q]
				}
			}
		}
		bc.touched = bc.touched[:0]
	}
	for i := range faults {
		b := uint32(i + 1)
		detected[i] = det[b>>6]>>(b&63)&1 == 1
	}
	// Clear the injection tables (O(batch), not O(gates)).
	for _, p := range bc.injSites {
		bc.inject[p] = bc.inject[p][:0]
	}
	bc.injSites = bc.injSites[:0]
}

// sweepFrom evaluates every position in [from, len) in topological
// order for the current frame — the oblivious kernel, used for a whole
// frame when the previous one showed the active region covering most of
// the circuit (from = 0), and for the tail when the event scheduler
// trips the fallback threshold mid-frame. Each gate's fanins are
// current when it is reached: earlier swept positions were just stored,
// and everything else holds its value by the frame invariant. Because
// the (at most Width) injection sites are visited between segments of
// the sorted site list, the hot loop never touches the injection
// tables at all. It returns the number of positions whose lane group
// diverges from the good row value, which drives the switch back to
// event mode.
//
// The two-rail folds mirror foldVals (and evalWide) exactly.
func sweepFrom[L lanes](fs *Simulator, bc *batchCtx[L], row []sim.PVal, from int) (active int) {
	vals := bc.vals
	kinds, faninOff, fan := fs.soa.Kind, fs.soa.FaninOff, fs.soa.Fanin
	n0 := 0
	for n0 < len(bc.sites) && int(bc.sites[n0]) < from {
		n0++
	}
	start := from
	for n := n0; n <= len(bc.sites); n++ {
		stop := len(kinds)
		if n < len(bc.sites) {
			stop = int(bc.sites[n])
		}
		for p := start; p < stop; p++ {
			kind := kinds[p]
			var w pword[L]
			off, end := faninOff[p], faninOff[p+1]
			if off == end {
				switch kind {
				case netlist.Input:
					w = bcast[L](row[p])
				default:
					w = evalWide[L](kind, nil) // Const0/Const1 (or a degenerate gate)
				}
				vals[p] = w
				continue // equal to good by construction
			}
			w = vals[fan[off]]
			switch kind {
			case netlist.And, netlist.Nand:
				for k := off + 1; k < end; k++ {
					b := &vals[fan[k]]
					for l := 0; l < len(w.zero); l++ {
						w.zero[l] |= b.zero[l]
						w.one[l] &= b.one[l]
					}
				}
				if kind == netlist.Nand {
					w = pword[L]{zero: w.one, one: w.zero}
				}
			case netlist.Or, netlist.Nor:
				for k := off + 1; k < end; k++ {
					b := &vals[fan[k]]
					for l := 0; l < len(w.zero); l++ {
						w.zero[l] &= b.zero[l]
						w.one[l] |= b.one[l]
					}
				}
				if kind == netlist.Nor {
					w = pword[L]{zero: w.one, one: w.zero}
				}
			case netlist.Xor, netlist.Xnor:
				for k := off + 1; k < end; k++ {
					b := &vals[fan[k]]
					for l := 0; l < len(w.zero); l++ {
						known := (w.zero[l] | w.one[l]) & (b.zero[l] | b.one[l])
						ones := (w.one[l] & b.zero[l]) | (w.zero[l] & b.one[l])
						w.zero[l] = known &^ ones
						w.one[l] = ones
					}
				}
				if kind == netlist.Xnor {
					w = pword[L]{zero: w.one, one: w.zero}
				}
			case netlist.Not:
				w = pword[L]{zero: w.one, one: w.zero}
			case netlist.Buf, netlist.Output:
				// w is already the single fanin's lane group.
			case netlist.DFF:
				w = bc.state[fs.soa.DFFAt[p]]
			default:
				in := bc.faninBuf[:end-off]
				for k := off; k < end; k++ {
					in[k-off] = vals[fan[k]]
				}
				w = evalWide(kind, in)
			}
			vals[p] = w
			if !w.eqs(row[p]) {
				active++
			}
		}
		if n < len(bc.sites) {
			// Injection site: the general event evaluation, oblivious
			// mode (store unconditionally, schedule nothing).
			p := int(bc.sites[n])
			evalPos(fs, bc, p, row, true)
			if !bc.vals[p].eqs(row[p]) {
				active++
			}
		}
		start = stop + 1
	}
	return active
}

// foldVals is the no-injection combinational fold over bc.vals, for
// event positions whose fanins are all current; it mirrors the sweep
// hot loop (and evalWide) exactly.
func foldVals[L lanes](fs *Simulator, bc *batchCtx[L], p int, kind netlist.GateType) pword[L] {
	vals, fan := bc.vals, fs.soa.Fanin
	off, end := fs.soa.FaninOff[p], fs.soa.FaninOff[p+1]
	if off == end {
		return evalWide[L](kind, nil)
	}
	w := vals[fan[off]]
	switch kind {
	case netlist.And, netlist.Nand:
		for k := off + 1; k < end; k++ {
			b := &vals[fan[k]]
			for l := 0; l < len(w.zero); l++ {
				w.zero[l] |= b.zero[l]
				w.one[l] &= b.one[l]
			}
		}
		if kind == netlist.Nand {
			w = pword[L]{zero: w.one, one: w.zero}
		}
	case netlist.Or, netlist.Nor:
		for k := off + 1; k < end; k++ {
			b := &vals[fan[k]]
			for l := 0; l < len(w.zero); l++ {
				w.zero[l] &= b.zero[l]
				w.one[l] |= b.one[l]
			}
		}
		if kind == netlist.Nor {
			w = pword[L]{zero: w.one, one: w.zero}
		}
	case netlist.Xor, netlist.Xnor:
		for k := off + 1; k < end; k++ {
			b := &vals[fan[k]]
			for l := 0; l < len(w.zero); l++ {
				known := (w.zero[l] | w.one[l]) & (b.zero[l] | b.one[l])
				ones := (w.one[l] & b.zero[l]) | (w.zero[l] & b.one[l])
				w.zero[l] = known &^ ones
				w.one[l] = ones
			}
		}
		if kind == netlist.Xnor {
			w = pword[L]{zero: w.one, one: w.zero}
		}
	case netlist.Not:
		w = pword[L]{zero: w.one, one: w.zero}
	case netlist.Buf, netlist.Output:
		// w is already the single fanin's lane group.
	default:
		in := bc.faninBuf[:end-off]
		for k := off; k < end; k++ {
			in[k-off] = vals[fan[k]]
		}
		w = evalWide(kind, in)
	}
	return w
}

// evalPos computes one position's lane group for the current frame —
// reading fanins straight out of bc.vals, which the frame invariant
// keeps current — and, when it diverges from the position's present
// value, stores it, records the position as touched, and (in event
// mode) schedules the combinational fanouts. In oblivious mode the
// group is always stored and nothing is scheduled — the caller sweeps
// every remaining position in topological order anyway. The return
// value reports whether a parallel gate evaluation was performed
// (false for Input/DFF loads, which the oblivious kernel never
// counted).
//
// Gates carrying an injection take the generic gather + evalWide path
// so the branch (input-pin) faults apply in one place.
func evalPos[L lanes](fs *Simulator, bc *batchCtx[L], p int, row []sim.PVal, oblivious bool) bool {
	kind := fs.soa.Kind[p]
	injs := bc.inject[p]
	var w pword[L]
	evaluated := false
	switch {
	case kind == netlist.Input:
		w = bcast[L](row[p])
	case kind == netlist.DFF:
		w = bc.state[fs.soa.DFFAt[p]]
	case len(injs) != 0:
		// Injection site. Stem-only sites (the common case) fold
		// straight over bc.vals like any other gate — the stem bits are
		// patched onto the result below. Only branch (input-pin) faults
		// need the gather-and-patch path through evalWide.
		evaluated = true
		branch := false
		for _, inj := range injs {
			if inj.pin >= 0 {
				branch = true
				break
			}
		}
		if !branch && kind != netlist.Input && kind != netlist.DFF {
			w = foldVals(fs, bc, p, kind)
			break
		}
		off, end := fs.soa.FaninOff[p], fs.soa.FaninOff[p+1]
		in := bc.faninBuf[:end-off]
		for k := off; k < end; k++ {
			in[k-off] = bc.vals[fs.soa.Fanin[k]]
		}
		for _, inj := range injs {
			if inj.pin >= 0 {
				in[inj.pin].set(inj.bit, inj.sa)
			}
		}
		w = evalWide(kind, in)
	default:
		evaluated = true
		w = foldVals(fs, bc, p, kind)
	}
	// Stem fault injection on the gate output.
	for _, inj := range injs {
		if inj.pin < 0 {
			w.set(inj.bit, inj.sa)
		}
	}
	if oblivious {
		bc.vals[p] = w
		return evaluated
	}
	if !w.eq(&bc.vals[p]) {
		bc.vals[p] = w
		bc.touched = append(bc.touched, int32(p))
		for _, o := range fs.soa.Fout[fs.soa.FoutOff[p]:fs.soa.FoutOff[p+1]] {
			bc.pend[o>>6] |= 1 << (uint32(o) & 63)
		}
	}
	return evaluated
}
