package fault

import (
	"context"
	"math/rand"
	"testing"

	"seqatpg/internal/encode"
	"seqatpg/internal/fsm"
	"seqatpg/internal/netlist"
	"seqatpg/internal/retime"
	"seqatpg/internal/sim"
	"seqatpg/internal/synth"
)

// The two benchmark circuits: a small control FSM and a mid-size one.
// Both are synthesized with the full flow (combined encoding, rugged
// script, unreachable-state don't-cares) so the gate-level structure is
// realistic, not random.
var (
	benchSmallSpec = fsm.GenSpec{Name: "bf", Inputs: 6, Outputs: 4, States: 16, Seed: 5}
	benchMidSpec   = fsm.GenSpec{Name: "bm", Inputs: 8, Outputs: 6, States: 48, Seed: 7}
)

// benchCircuit synthesizes the spec'd FSM into a gate-level circuit.
func benchCircuit(b *testing.B, spec fsm.GenSpec) *netlist.Circuit {
	b.Helper()
	m, err := fsm.Generate(spec)
	if err != nil {
		b.Fatal(err)
	}
	r, err := synth.Synthesize(m, synth.Options{
		Algorithm: encode.Combined, Script: synth.Rugged, UseUnreachableDC: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	return r.Circuit
}

// benchSeq builds the fixed benchmark sequence: a reset vector followed
// by random binary vectors.
func benchSeq(nPI, frames int) [][]sim.Val {
	rng := rand.New(rand.NewSource(1))
	seq := make([][]sim.Val, frames)
	for t := range seq {
		vec := make([]sim.Val, nPI)
		if t == 0 {
			vec[0] = sim.V1
		} else {
			for i := 1; i < len(vec); i++ {
				vec[i] = sim.Val(rng.Intn(2))
			}
		}
		seq[t] = vec
	}
	return seq
}

// benchSim runs b.N full passes of seq over the collapsed universe and
// reports throughput plus the kernel's work-avoidance counters.
func benchSim(b *testing.B, c *netlist.Circuit, frames, workers, width int) {
	b.Helper()
	faults := CollapsedUniverse(c)
	fs, err := NewSimulator(c)
	if err != nil {
		b.Fatal(err)
	}
	fs.Width = width
	seq := benchSeq(len(c.PIs), frames)
	before := fs.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if workers <= 1 {
			_, err = fs.Detects(seq, faults)
		} else {
			_, err = fs.DetectsParallel(context.Background(), seq, faults, workers)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	after := fs.Stats()
	b.ReportMetric(float64(len(faults)), "faults/pass")
	b.ReportMetric(float64(after.GateEvalsAvoided-before.GateEvalsAvoided)/float64(b.N), "evals-avoided/pass")
}

// BenchmarkParallelFaultSim is the fixed baseline: one full pass of a
// 24-vector sequence over the collapsed fault universe of the mid-size
// control circuit (~950 gates, ~2200 collapsed faults), single-threaded
// at the narrow (63-fault) width — the seed kernel's configuration, so
// the speedup ratios below measure against it.
func BenchmarkParallelFaultSim(b *testing.B) {
	benchSim(b, benchCircuit(b, benchMidSpec), 24, 1, Width63)
}

// BenchmarkWideWord is the width ablation: the same single-threaded
// workload at each lane-group width. Wider lane groups cut the batch
// count (ceil(n/63) → ceil(n/255) passes), but each batch unions more
// fault cones into one active region, so on event-friendly circuits
// like this one the narrow kernel wins; the wide kernel wins on
// high-activity workloads (see BenchmarkFaultSimSmall and the
// WidthAuto heuristic). Results are byte-identical across widths.
func BenchmarkWideWord(b *testing.B) {
	c := benchCircuit(b, benchMidSpec)
	for _, tc := range []struct {
		name  string
		width int
	}{
		{"w63", Width63},
		{"w127", Width127},
		{"w255", Width255},
	} {
		b.Run(tc.name, func(b *testing.B) {
			benchSim(b, c, 24, 1, tc.width)
		})
	}
}

// BenchmarkParallelFaultSimWorkers shows DetectsParallel scaling on the
// same workload at the adaptive width — the production configuration
// the engines and CLIs run. Every worker count returns identical
// results; workers are handed pre-partitioned contiguous batch ranges,
// so there is no dispatch channel on the hot path. Scaling is bounded
// by the host's real core count: on a single-CPU container every
// worker count measures the same.
func BenchmarkParallelFaultSimWorkers(b *testing.B) {
	c := benchCircuit(b, benchMidSpec)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(map[int]string{1: "w1", 2: "w2", 4: "w4", 8: "w8"}[w], func(b *testing.B) {
			benchSim(b, c, 24, w, WidthAuto)
		})
	}
}

// BenchmarkFaultSimSmall keeps the small circuit as a secondary point:
// high-activity small circuits are the event-driven kernel's worst
// case and the wide kernel's best, so this is where WidthAuto's
// narrow→wide switch pays (~1.3x over forcing Width63).
func BenchmarkFaultSimSmall(b *testing.B) {
	benchSim(b, benchCircuit(b, benchSmallSpec), 12, 1, WidthAuto)
}

// BenchmarkActiveRegionVsOblivious isolates the event-driven active-
// region machinery: the same workload with the default adaptive
// threshold, with fallback disabled (pure event-driven), and with an
// immediate fallback (pure oblivious full sweeps, the old kernel's
// evaluation strategy).
func BenchmarkActiveRegionVsOblivious(b *testing.B) {
	c := benchCircuit(b, benchMidSpec)
	faults := CollapsedUniverse(c)
	seq := benchSeq(len(c.PIs), 24)
	for _, tc := range []struct {
		name string
		mode int
	}{
		{"active", 0},
		{"event-only", -1},
		{"oblivious", 1},
	} {
		b.Run(tc.name, func(b *testing.B) {
			fs, err := NewSimulator(c)
			if err != nil {
				b.Fatal(err)
			}
			fs.FallbackEvals = tc.mode
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := fs.Detects(seq, faults); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOriginalVsRetimed compares fault-sim cost on the original
// circuit against its backward-retimed version (the paper's core
// comparison: retiming changes the state encoding, and the test set
// must be re-graded on the transformed circuit). The retimed run
// prefixes the flush cycles the retimed machine needs to align state.
func BenchmarkOriginalVsRetimed(b *testing.B) {
	c := benchCircuit(b, benchSmallSpec)
	re, err := retime.Backward(c, netlist.DefaultLibrary(), 2)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("original", func(b *testing.B) {
		benchSim(b, c, 12, 1, Width63)
	})
	b.Run("retimed", func(b *testing.B) {
		benchSim(b, re.Circuit, 12+re.FlushCycles, 1, Width63)
	})
}
