package fault

import (
	"math/rand"
	"testing"

	"seqatpg/internal/encode"
	"seqatpg/internal/fsm"
	"seqatpg/internal/sim"
	"seqatpg/internal/synth"
)

// BenchmarkParallelFaultSim measures PROOFS-style throughput: one full
// pass of a 12-vector sequence over the collapsed fault universe of a
// mid-size control circuit.
func BenchmarkParallelFaultSim(b *testing.B) {
	m, err := fsm.Generate(fsm.GenSpec{Name: "bf", Inputs: 6, Outputs: 4, States: 16, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	r, err := synth.Synthesize(m, synth.Options{
		Algorithm: encode.Combined, Script: synth.Rugged, UseUnreachableDC: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	c := r.Circuit
	faults := CollapsedUniverse(c)
	fs, err := NewSimulator(c)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	seq := make([][]sim.Val, 12)
	for t := range seq {
		vec := make([]sim.Val, len(c.PIs))
		if t == 0 {
			vec[0] = sim.V1
		} else {
			for i := 1; i < len(vec); i++ {
				vec[i] = sim.Val(rng.Intn(2))
			}
		}
		seq[t] = vec
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.Detects(seq, faults); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(faults)), "faults/pass")
}
