package fault

import (
	"context"
	"math/rand"
	"testing"
)

// TestWidthWorkerMatrix sweeps the full kernel configuration space —
// lane-group width (63/127/255) × worker count (1/2/3/8) × fallback
// mode (default active-region, never, always-oblivious) — on randomized
// circuits and asserts:
//
//   - every combination's detection vector is byte-identical to the
//     narrow serial reference (Width and workers are throughput knobs,
//     never result knobs);
//   - at a fixed (width, fallback) point the full Stats snapshot is
//     identical across worker counts: partitioning changes only the
//     order the per-arena counters merge in, and the sums are
//     order-independent;
//   - the batch count is exactly ceil(nFaults/width) — the wide
//     kernel really packs more faults per pass.
func TestWidthWorkerMatrix(t *testing.T) {
	trials := 5
	if testing.Short() {
		trials = 2
	}
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < trials; trial++ {
		c := randomDiffCircuit(t, rng, 2000+trial)
		faults := FullUniverse(c)
		seq := randomXSeq(rng, len(c.PIs), 4+rng.Intn(8), 0.25)
		fs, err := NewSimulator(c)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := fs.Detects(seq, faults)
		if err != nil {
			t.Fatal(err)
		}
		for _, width := range []int{Width63, Width127, Width255} {
			for _, fb := range []int{0, -1, 1} {
				fs.Width = width
				fs.FallbackEvals = fb
				var want Stats
				for wi, workers := range []int{1, 2, 3, 8} {
					fs.ResetStats()
					got, err := fs.DetectsParallel(context.Background(), seq, faults, workers)
					if err != nil {
						t.Fatal(err)
					}
					for i := range got {
						if got[i] != ref[i] {
							t.Fatalf("trial %d width %d fb %d workers %d fault %v: got %v, ref %v",
								trial, width, fb, workers, faults[i], got[i], ref[i])
						}
					}
					st := fs.Stats()
					wantBatches := int64((len(faults) + width - 1) / width)
					if st.Batches != wantBatches {
						t.Fatalf("trial %d width %d workers %d: %d batches, want %d",
							trial, width, workers, st.Batches, wantBatches)
					}
					if wi == 0 {
						want = st
					} else if st != want {
						t.Fatalf("trial %d width %d fb %d workers %d: stats %+v, want %+v (workers=1)",
							trial, width, fb, workers, st, want)
					}
				}
			}
		}
		fs.Width = 0
		fs.FallbackEvals = 0
	}
}

// TestWidthAuto: the adaptive width starts narrow (no history), tracks
// the measured avoided-work fraction afterwards, reverts to the narrow
// probe after ResetStats, and — like every width — never changes
// results.
func TestWidthAuto(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	c := randomDiffCircuit(t, rng, 4000)
	faults := FullUniverse(c)
	seq := randomXSeq(rng, len(c.PIs), 6, 0.25)
	fs, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := fs.Detects(seq, faults)
	if err != nil {
		t.Fatal(err)
	}
	fs.Width = WidthAuto
	fs.ResetStats()
	if got := fs.autoWidth(); got != Width63 {
		t.Fatalf("autoWidth without history = %d, want narrow probe %d", got, Width63)
	}
	for round := 0; round < 3; round++ {
		got, err := fs.DetectsParallel(context.Background(), seq, faults, 1+round)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("round %d fault %v: auto %v, ref %v", round, faults[i], got[i], ref[i])
			}
		}
		st := fs.Stats()
		want := Width63
		if float64(st.GateEvalsAvoided) < autoWideFrac*float64(st.GateEvals+st.GateEvalsAvoided) {
			want = Width255
		}
		if got := fs.autoWidth(); got != want {
			t.Fatalf("round %d: autoWidth = %d, want %d (evals %d, avoided %d)",
				round, got, want, st.GateEvals, st.GateEvalsAvoided)
		}
	}
	fs.Width = 0
}

// TestWidthValidation: only the three supported widths (and the zero
// default) are accepted, and the error path fires before any
// simulation work.
func TestWidthValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := randomDiffCircuit(t, rng, 2500)
	fs, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	seq := randomXSeq(rng, len(c.PIs), 3, 0.2)
	faults := FullUniverse(c)
	for _, bad := range []int{1, 64, 100, 128, 256, -63} {
		fs.Width = bad
		if _, err := fs.Detects(seq, faults); err == nil {
			t.Fatalf("width %d accepted", bad)
		}
		if _, err := fs.DetectsParallel(context.Background(), seq, faults, 4); err == nil {
			t.Fatalf("width %d accepted by DetectsParallel", bad)
		}
	}
}

// TestArenaReuseAcrossPasses hammers the pooled batch arenas: one
// simulator runs many passes with varying sequences, fault subsets
// (in shuffled order), widths and worker counts, and every result must
// match a fresh simulator's. Any state leaking across passes — stale
// injection tables, seed or pend bits, DFF lane groups, touched lists —
// shows up as a divergence.
func TestArenaReuseAcrossPasses(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	c := randomDiffCircuit(t, rng, 3000)
	faults := FullUniverse(c)
	fs, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	rounds := 6
	if testing.Short() {
		rounds = 3
	}
	for round := 0; round < rounds; round++ {
		seq := randomXSeq(rng, len(c.PIs), 3+round, 0.3)
		perm := rng.Perm(len(faults))
		n := len(faults)/2 + rng.Intn(len(faults)/2)
		sub := make([]Fault, n)
		for i := 0; i < n; i++ {
			sub[i] = faults[perm[i]]
		}
		for _, width := range []int{Width63, Width255, Width127} {
			fs.Width = width
			got, err := fs.DetectsParallel(context.Background(), seq, sub, 1+round%3)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := NewSimulator(c)
			if err != nil {
				t.Fatal(err)
			}
			fresh.Width = width
			want, err := fresh.Detects(seq, sub)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("round %d width %d fault %v: reused arena %v, fresh %v",
						round, width, sub[i], got[i], want[i])
				}
			}
		}
	}
}

// TestBatchArenaResets white-boxes the arena contract: after runBatch
// the per-batch tables are empty and the pend bitset fully drained, and
// releasing the arena zeroes its locally accumulated counters (they
// have been merged into the simulator's stats).
func TestBatchArenaResets(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := randomDiffCircuit(t, rng, 3500)
	faults := FullUniverse(c)
	fs, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	seq := randomXSeq(rng, len(c.PIs), 6, 0.2)
	if err := fs.simulateGood(seq); err != nil {
		t.Fatal(err)
	}
	rows := wideRows[[2]uint64](fs)
	bc := getBatchCtx[[2]uint64](fs)
	n := min(len(faults), faultsPerPass[[2]uint64]())
	detected := make([]bool, n)
	runBatch(fs, bc, rows, len(seq), faults[:n], detected)
	if len(bc.injSites) != 0 || len(bc.touched) != 0 {
		t.Fatalf("arena tables not reset: %d injSites, %d touched",
			len(bc.injSites), len(bc.touched))
	}
	for p, injs := range bc.inject {
		if len(injs) != 0 {
			t.Fatalf("inject table at position %d not cleared: %d entries", p, len(injs))
		}
	}
	for i, w := range bc.pend {
		if w != 0 {
			t.Fatalf("pend word %d not drained: %#x", i, w)
		}
	}
	if bc.nbatches != 1 {
		t.Fatalf("arena ran %d batches, want 1", bc.nbatches)
	}
	before := fs.Stats()
	putBatchCtx(fs, bc)
	after := fs.Stats()
	if bc.nbatches != 0 || bc.frames != 0 || bc.events != 0 || bc.evals != 0 ||
		bc.fallbacks != 0 || bc.earlyExits != 0 {
		t.Fatal("arena counters not zeroed on release")
	}
	if after.Batches != before.Batches+1 {
		t.Fatalf("stats batches %d after release, want %d", after.Batches, before.Batches+1)
	}
	// The pooled arena must serve the next batch identically.
	bc2 := getBatchCtx[[2]uint64](fs)
	detected2 := make([]bool, n)
	runBatch(fs, bc2, rows, len(seq), faults[:n], detected2)
	putBatchCtx(fs, bc2)
	for i := range detected {
		if detected[i] != detected2[i] {
			t.Fatalf("fault %v: first pass %v, pooled rerun %v", faults[i], detected[i], detected2[i])
		}
	}
}
