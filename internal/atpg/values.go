// Package atpg implements structural sequential automatic test pattern
// generation over the iterative array model: a 5-valued D-calculus
// (good/faulty value pairs), time-frame-expanded PODEM for fault
// excitation and propagation, backward-time state justification, and
// the per-fault orchestration loop with fault dropping via the PROOFS-
// style fault simulator. The engines of the reproduced paper are thin
// configurations of this core: HITEC (testability-guided, high
// budgets), Attest (random-phase plus deterministic), and SEST (adds
// search-state learning).
//
// The package deliberately depends only on the netlist (and the fault
// and simulation substrates) — never on the FSM or reachability
// packages. Structural ATPG has no knowledge of the state transition
// graph; that ignorance is the paper's core premise.
package atpg

import (
	"seqatpg/internal/netlist"
	"seqatpg/internal/sim"
)

// V5 is a composite logic value: the good-circuit rail and the
// faulty-circuit rail, each three-valued. D is {G:1,F:0}; D-bar is
// {G:0,F:1}.
type V5 struct {
	G, F sim.Val
}

// vx is the fully unknown composite value.
func vx() V5 { return V5{sim.VX, sim.VX} }

// vBoth returns the composite value with both rails at v.
func vBoth(v sim.Val) V5 { return V5{v, v} }

// isD reports a fully developed fault effect (both rails binary and
// different).
func (v V5) isD() bool {
	return v.G != sim.VX && v.F != sim.VX && v.G != v.F
}

// known reports whether both rails are binary.
func (v V5) known() bool { return v.G != sim.VX && v.F != sim.VX }

// equalBoth reports both rails binary and equal.
func (v V5) equalBoth() bool { return v.known() && v.G == v.F }

// evalGate5 computes a gate's composite output from composite fanins by
// evaluating each rail with the three-valued algebra.
func evalGate5(t netlist.GateType, in []V5) V5 {
	gs := make([]sim.Val, len(in))
	fs := make([]sim.Val, len(in))
	for i, v := range in {
		gs[i] = v.G
		fs[i] = v.F
	}
	return V5{sim.EvalGate(t, gs), sim.EvalGate(t, fs)}
}

// controlling returns the controlling input value and output inversion
// for the gate type, and whether the type has a controlling value.
func controlling(t netlist.GateType) (ctrl sim.Val, inv bool, ok bool) {
	switch t {
	case netlist.And:
		return sim.V0, false, true
	case netlist.Nand:
		return sim.V0, true, true
	case netlist.Or:
		return sim.V1, false, true
	case netlist.Nor:
		return sim.V1, true, true
	default:
		return sim.VX, false, false
	}
}

// inverts reports whether the gate type inverts (for backtrace through
// NOT and the inverting multi-input gates).
func inverts(t netlist.GateType) bool {
	switch t {
	case netlist.Not, netlist.Nand, netlist.Nor, netlist.Xnor:
		return true
	}
	return false
}
