package atpg

import (
	"testing"

	"seqatpg/internal/encode"
	"seqatpg/internal/fault"
	"seqatpg/internal/fsm"
	"seqatpg/internal/netlist"
	"seqatpg/internal/sim"
	"seqatpg/internal/synth"
)

func synthForBench(b *testing.B) *netlist.Circuit {
	b.Helper()
	m, err := fsm.Generate(fsm.GenSpec{Name: "bench", Inputs: 4, Outputs: 3, States: 12, Seed: 31})
	if err != nil {
		b.Fatal(err)
	}
	r, err := synth.Synthesize(m, synth.Options{
		Algorithm: encode.Combined, Script: synth.Rugged, UseUnreachableDC: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	return r.Circuit
}

// BenchmarkWindowSimulate measures the iterative-array evaluation that
// dominates ATPG runtime: an 8-frame window over a mid-size circuit
// with an excited fault (so every frame is evaluated).
func BenchmarkWindowSimulate(b *testing.B) {
	c := synthForBench(b)
	order, err := c.TopoOrder()
	if err != nil {
		b.Fatal(err)
	}
	f := &fault.Fault{Gate: c.DFFs[0], Pin: -1, SA: sim.V1}
	w := newWindow(c, order, 8, f)
	// Assign every PI of frame 0 so the excitation check passes and all
	// frames evaluate.
	for i := range w.piVals[0] {
		w.piVals[0][i] = sim.V0
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.simulate()
	}
	b.ReportMetric(float64(8*len(order)), "gate-frames/op")
}

// BenchmarkGeneratePerFault measures end-to-end per-fault generation on
// a small control circuit (20 collapsed faults per iteration).
func BenchmarkGeneratePerFault(b *testing.B) {
	c := synthForBench(b)
	faults := fault.CollapsedUniverse(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := New(c, Config{
			MaxFrames: 6, MaxBackSteps: 24, BacktrackLimit: 1000,
			FaultBudget: 400_000, FlushCycles: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.RunFaults(faults[:20]); err != nil {
			b.Fatal(err)
		}
	}
}
