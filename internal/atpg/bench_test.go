package atpg

import (
	"testing"

	"seqatpg/internal/encode"
	"seqatpg/internal/fault"
	"seqatpg/internal/fsm"
	"seqatpg/internal/netlist"
	"seqatpg/internal/retime"
	"seqatpg/internal/sim"
	"seqatpg/internal/synth"
)

func synthForBench(b *testing.B) *netlist.Circuit {
	b.Helper()
	m, err := fsm.Generate(fsm.GenSpec{Name: "bench", Inputs: 4, Outputs: 3, States: 12, Seed: 31})
	if err != nil {
		b.Fatal(err)
	}
	r, err := synth.Synthesize(m, synth.Options{
		Algorithm: encode.Combined, Script: synth.Rugged, UseUnreachableDC: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	return r.Circuit
}

// benchPair builds the original circuit and its backward-retimed
// counterpart — the pairing the paper's complexity argument (and this
// PR's speedup target) is about.
func benchPair(b *testing.B) (orig *netlist.Circuit, re *netlist.Circuit, reFlush int) {
	b.Helper()
	orig = synthForBench(b)
	r, err := retime.Backward(orig, netlist.DefaultLibrary(), 2)
	if err != nil {
		b.Fatal(err)
	}
	return orig, r.Circuit, r.FlushCycles
}

// BenchmarkWindowSweep measures the from-scratch iterative-array sweep:
// the cost the pre-incremental engine paid for every PODEM probe (an
// 8-frame window over a mid-size circuit with an injected fault).
func BenchmarkWindowSweep(b *testing.B) {
	c := synthForBench(b)
	order, err := c.TopoOrder()
	if err != nil {
		b.Fatal(err)
	}
	f := &fault.Fault{Gate: c.DFFs[0], Pin: -1, SA: sim.V1}
	w := newWindow(c, order, 8, f)
	for i := range w.piVals[0] {
		w.piVals[0][i] = sim.V0
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.invalidate()
		w.simulate()
	}
	b.ReportMetric(float64(8*len(order)), "gate-frames/op")
}

// BenchmarkWindowIncremental measures the event-driven probe cost: one
// frame-0 PI toggles per iteration, so only its fanout cone re-evaluates.
// Compare against BenchmarkWindowSweep for the per-probe speedup.
func BenchmarkWindowIncremental(b *testing.B) {
	c := synthForBench(b)
	order, err := c.TopoOrder()
	if err != nil {
		b.Fatal(err)
	}
	f := &fault.Fault{Gate: c.DFFs[0], Pin: -1, SA: sim.V1}
	w := newWindow(c, order, 8, f)
	for i := range w.piVals[0] {
		w.piVals[0][i] = sim.V0
	}
	w.simulate()
	vals := [2]sim.Val{sim.V0, sim.V1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.setPI(0, i%len(c.PIs), vals[(i/len(c.PIs))%2])
		w.simulate()
	}
}

// BenchmarkSearch measures end-to-end deterministic test generation on
// the original/retimed pair, in plain incremental mode, in oblivious
// verification mode (which re-derives every probe with the full sweep
// the old engine paid for — the speedup baseline), with the shared
// cross-fault justification cache, and with the full conflict-driven
// stack (learned blocking cubes + backjumping + restarts) on top of the
// shared cache. Effort (gate evaluations actually charged), detected
// faults and aborted faults are reported as metrics; effort is identical
// between incremental and oblivious by construction, so that ns/op
// ratio isolates the simulation win, while the cdcl rows should show
// reduced charged effort and aborts at equal detections.
func BenchmarkSearch(b *testing.B) {
	orig, re, reFlush := benchPair(b)
	circuits := []struct {
		name  string
		c     *netlist.Circuit
		flush int
	}{
		{"orig", orig, 1},
		{"retimed", re, reFlush},
	}
	modes := []struct {
		name   string
		mutate func(*Config)
	}{
		{"incremental", nil},
		{"oblivious", func(c *Config) { c.ObliviousSim = true }},
		{"shared-cache", func(c *Config) { c.Learning = true; c.SharedLearning = true }},
		{"cdcl", func(c *Config) {
			c.Learning = true
			c.SharedLearning = true
			c.ConflictLearning = true
			c.Backjump = true
			c.Restarts = true
		}},
	}
	for _, cc := range circuits {
		faults := fault.CollapsedUniverse(cc.c)
		if len(faults) > 24 {
			faults = faults[:24]
		}
		for _, m := range modes {
			b.Run(cc.name+"/"+m.name, func(b *testing.B) {
				var stats Stats
				for i := 0; i < b.N; i++ {
					// 200k per fault is deliberately tight enough that the
					// retimed circuit's hardest fault aborts under the
					// shared cache but completes under cdcl's cheaper
					// search — the aborted-fault reduction the cdcl rows
					// exist to demonstrate.
					cfg := Config{
						MaxFrames: 6, MaxBackSteps: 24, BacktrackLimit: 1000,
						FaultBudget: 200_000, FlushCycles: cc.flush,
					}
					if m.mutate != nil {
						m.mutate(&cfg)
					}
					e, err := New(cc.c, cfg)
					if err != nil {
						b.Fatal(err)
					}
					res, err := e.RunFaults(faults)
					if err != nil {
						b.Fatal(err)
					}
					stats = res.Stats
				}
				b.ReportMetric(float64(stats.Effort), "gate-evals/op")
				b.ReportMetric(float64(stats.Detected), "detected/op")
				b.ReportMetric(float64(stats.Aborted), "aborted/op")
			})
		}
	}
}

// BenchmarkGeneratePerFault measures end-to-end per-fault generation on
// a small control circuit (20 collapsed faults per iteration).
func BenchmarkGeneratePerFault(b *testing.B) {
	c := synthForBench(b)
	faults := fault.CollapsedUniverse(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := New(c, Config{
			MaxFrames: 6, MaxBackSteps: 24, BacktrackLimit: 1000,
			FaultBudget: 400_000, FlushCycles: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.RunFaults(faults[:20]); err != nil {
			b.Fatal(err)
		}
	}
}
