package atpg

import (
	"seqatpg/internal/netlist"
	"seqatpg/internal/sim"
)

// pseudoInput identifies a decision variable of the window: a primary
// input of some frame, or a frame-0 state bit.
type pseudoInput struct {
	isState bool
	frame   int // PI frame (0 for state bits)
	index   int // PI position or state bit position
}

// objective is a desired good value on a line of some frame.
type objective struct {
	frame int
	gate  int
	val   sim.Val
}

// problem abstracts what the PODEM search is trying to do — fault
// detection or state justification.
type problem interface {
	// fail reports that the current partial assignment can never lead
	// to success (binary contradictions only — must be monotone).
	fail(w *window) bool
	// success reports the goal is met.
	success(w *window) bool
	// objective proposes the next line to set. ok=false with no success
	// means the search is stuck (treated as a dead end).
	objective(w *window) (objective, bool)
	// witness locates the refuting line of the current failure for
	// conflict analysis; kind witnessNone when the failure is not a
	// single line-value fact.
	witness(w *window) conflictWitness
}

// lemmaSource is implemented by problems that can promote a learned
// good-rail cube to a shared cross-fault lemma.
type lemmaSource interface {
	publishLemma(e *Engine, w *window, wt conflictWitness, lits []cubeLit)
}

// searchOutcome summarizes a PODEM run.
type searchOutcome int

const (
	// searchExhausted: the full decision tree was explored; no (more)
	// solutions exist.
	searchExhausted searchOutcome = iota
	// searchStopped: onSolution told us to stop (a solution was
	// accepted).
	searchStopped
	// searchAborted: the backtrack or effort budget ran out.
	searchAborted
)

type decision struct {
	pin       pseudoInput
	val       sim.Val
	triedBoth bool
}

// podem runs the decision search. Every time the problem reports
// success, onSolution is consulted: returning true accepts the solution
// and stops; returning false rejects it and the search continues
// enumerating (the mechanism the justification recursion uses to try
// alternative predecessor states). The engine's budget is charged per
// simulation.
//
// With a non-nil cube store the search is conflict-driven: failures
// with an analyzable witness learn a blocking cube over the decision
// variables, assignments covering a stored cube are treated as
// conflicts before any descent below them, and (when the knobs are on)
// conflicts backjump non-chronologically to the cube's asserting level
// and Luby restarts re-descend with the store intact. Learning never
// blocks a solution — a cube only covers refuted assignments — so
// searchExhausted remains a completeness proof and enumeration order is
// the only thing that changes.
func (e *Engine) podem(w *window, prob problem, backtrackLimit int, db *cubeDB, onSolution func() bool) searchOutcome {
	var stack []decision
	backtracks := 0
	if db != nil {
		db.reset()
	}

	assign := func(pin pseudoInput, v sim.Val) {
		if pin.isState {
			w.setState(pin.index, v)
		} else {
			w.setPI(pin.frame, pin.index, v)
		}
	}
	unassign := func(pin pseudoInput) { assign(pin, sim.VX) }

	// push/flip/popTop keep the cube store's assignment mirror in sync
	// with the decision stack; levels are 1-based stack positions.
	push := func(pin pseudoInput, v sim.Val, tried bool) {
		stack = append(stack, decision{pin: pin, val: v, triedBoth: tried})
		assign(pin, v)
		if db != nil {
			db.assign(db.varOf(pin), v, int32(len(stack)))
		}
	}
	popTop := func() {
		d := stack[len(stack)-1]
		if db != nil {
			db.unassign(db.varOf(d.pin))
		}
		unassign(d.pin)
		stack = stack[:len(stack)-1]
	}

	simulate := func() bool {
		return e.charge(int64(w.simulate()))
	}

	// backtrack pops/flips decisions chronologically; returns false when
	// the tree is exhausted.
	backtrack := func() (bool, bool) { // (keepGoing, abort)
		backtracks++
		e.Stats.Backtracks++
		if backtrackLimit > 0 && backtracks > backtrackLimit {
			return false, true
		}
		for len(stack) > 0 {
			d := &stack[len(stack)-1]
			if !d.triedBoth {
				d.triedBoth = true
				if db != nil {
					db.unassign(db.varOf(d.pin))
				}
				if d.val == sim.V0 {
					d.val = sim.V1
				} else {
					d.val = sim.V0
				}
				assign(d.pin, d.val)
				if db != nil {
					db.assign(db.varOf(d.pin), d.val, int32(len(stack)))
				}
				return true, false
			}
			popTop()
		}
		return false, false
	}

	// Restart bookkeeping. Restarts are disabled once a solution has
	// been rejected: re-descending would re-find (and re-reject) the
	// same solutions the chronological trail had already moved past.
	// Only analyzed (freshly simulated) conflicts pace the schedule —
	// cube-pruned branches are nearly free, so counting them would
	// trigger restarts far faster than real search effort justifies.
	conflicts := 0
	restartRound := 1
	learnedSinceRestart := 0
	sawRejection := false

	// resolve handles a conflict: learn + backjump when the witness is
	// analyzable, chronological backtrack otherwise. cubeConflict >= 0
	// names a covered stored cube (resolved chronologically).
	resolve := func(wt conflictWitness, cubeConflict int) (bool, searchOutcome) {
		if db != nil {
			switch {
			case cubeConflict >= 0:
				// Already-refuted region; nothing new to learn.
			case wt.kind == witnessAlways:
				return false, searchExhausted
			case wt.kind == witnessLine:
				lits, analyzed := analyzeLine(w, wt.onF, wt.frame, wt.gate, db)
				if analyzed && len(lits) == 0 {
					// The conflict holds under the empty assignment: the
					// problem is unsatisfiable outright.
					return false, searchExhausted
				}
				if analyzed {
					conflicts++
					stored := db.learn(lits)
					if stored {
						e.Stats.LearnedCubes++
						learnedSinceRestart++
						if e.TestCubeHook != nil {
							e.TestCubeHook(recordCube(w, wt, lits, db))
						}
						if ls, ok := prob.(lemmaSource); ok {
							ls.publishLemma(e, w, wt, lits)
						}
					}
					// Conflict-directed backjump: pop every decision above
					// the deepest cube literal in one step, then let the
					// chronological flip below revisit that literal's
					// decision. The popped levels are independent of the
					// conflict (the cube is its full support), so every
					// extension of the trail through them is refuted and
					// skipping their other branches is sound. Jumping to
					// the deepest literal — not to the second-deepest with
					// an asserted unit, as clause-learning CDCL does — is
					// deliberate: here re-deriving an assignment costs a
					// charged simulation (there is no free BCP), so
					// discarding the conflict-independent trail below the
					// deepest literal would force the search to re-buy it.
					// (Because the engine simulates after every single
					// decision, a freshly fired monotone failure almost
					// always involves the deepest decision; the skip fires
					// on the rare shallow-support conflicts.)
					if stored && e.cfg.Backjump {
						maxL := int32(0)
						onTrail := true
						for _, l := range lits {
							lv := db.level[l.v]
							if lv <= 0 {
								onTrail = false // defensive; fall back
								break
							}
							if lv > maxL {
								maxL = lv
							}
						}
						if onTrail && int32(len(stack)) > maxL {
							e.Stats.Backjumps++
							for int32(len(stack)) > maxL {
								popTop()
							}
						}
					}
				}
			}
		}
		keep, abort := backtrack()
		if abort {
			return false, searchAborted
		}
		if !keep {
			return false, searchExhausted
		}
		return true, 0
	}

	// settle is called after every assignment change (fresh decision,
	// chronological flip, backjump, restart). With Backjump on it drains
	// stored-cube conflicts BEFORE paying for simulation: an assignment
	// that completes a learned cube sits in a region already proven
	// refuted, so it is unwound immediately — chains of covered flips pop
	// whole refuted subtrees without a single simulation, which is this
	// engine's non-chronological backtracking (each drained conflict
	// counts as a backjump). With Backjump off the cube store is still
	// consulted, but only as a post-simulation conflict in the main loop,
	// chronologically — the search order is identical to the baseline and
	// the cubes never skip a simulation charge.
	settle := func() (bool, searchOutcome) {
		if db != nil && e.cfg.Backjump {
			for {
				ci := db.conflict()
				if ci < 0 {
					break
				}
				if ci < db.seeded {
					e.Stats.LearnPrunes++
				}
				e.Stats.Backjumps++
				cont, out := resolve(conflictWitness{}, ci)
				if !cont {
					return false, out
				}
			}
		}
		if !simulate() {
			return false, searchAborted
		}
		return true, 0
	}

	if cont, out := settle(); !cont {
		return out
	}
	for {
		if prob.fail(w) {
			var wt conflictWitness
			if db != nil {
				wt = prob.witness(w)
			}
			cont, out := resolve(wt, -1)
			if !cont {
				return out
			}
			if cont, out := settle(); !cont {
				return out
			}
			continue
		}
		if prob.success(w) {
			if onSolution() {
				return searchStopped
			}
			// Rejected: continue enumerating as if this were a dead end.
			sawRejection = true
			keep, abort := backtrack()
			if abort {
				return searchAborted
			}
			if !keep {
				return searchExhausted
			}
			if cont, out := settle(); !cont {
				return out
			}
			continue
		}
		if db != nil && !e.cfg.Backjump {
			if ci := db.conflict(); ci >= 0 {
				if ci < db.seeded {
					e.Stats.LearnPrunes++
				}
				cont, out := resolve(conflictWitness{}, ci)
				if !cont {
					return out
				}
				if cont, out := settle(); !cont {
					return out
				}
				continue
			}
		}
		if db != nil && e.cfg.Restarts && !sawRejection && len(stack) > 0 &&
			learnedSinceRestart > 0 && int64(conflicts) >= lubyUnit*luby(restartRound) {
			for len(stack) > 0 {
				popTop()
			}
			restartRound++
			conflicts = 0
			learnedSinceRestart = 0
			e.Stats.Restarts++
			if cont, out := settle(); !cont {
				return out
			}
			continue
		}
		obj, ok := prob.objective(w)
		var pin pseudoInput
		var v sim.Val
		if ok {
			pin, v, ok = e.backtrace(w, obj)
		}
		if !ok {
			keep, abort := backtrack()
			if abort {
				return searchAborted
			}
			if !keep {
				return searchExhausted
			}
			if cont, out := settle(); !cont {
				return out
			}
			continue
		}
		push(pin, v, false)
		if cont, out := settle(); !cont {
			return out
		}
	}
}

// recordCube renders a learned cube for the differential replay hook.
func recordCube(w *window, wt conflictWitness, lits []cubeLit, db *cubeDB) CubeRecord {
	rec := CubeRecord{
		OnF:   wt.onF,
		Frame: wt.frame,
		Gate:  wt.gate,
		Val:   railVal(w, wt.onF, wt.frame, wt.gate),
		K:     w.k,
	}
	for _, l := range lits {
		pin := db.pinOf(l.v)
		rec.Lits = append(rec.Lits, CubeRecordLit{
			IsState: pin.isState, Frame: pin.frame, Index: pin.index, Val: l.val,
		})
	}
	return rec
}

// backtrace maps an objective to an unassigned pseudo-input and a value,
// walking backward through the good-value circuit. ok=false when no
// X path exists from the objective to an assignable input.
func (e *Engine) backtrace(w *window, obj objective) (pseudoInput, sim.Val, bool) {
	frame, id, want := obj.frame, obj.gate, obj.val
	for hops := 0; hops < 10000; hops++ {
		g := w.c.Gates[id]
		switch g.Type {
		case netlist.Input:
			idx := w.piIdx[id]
			if w.piVals[frame][idx] != sim.VX {
				return pseudoInput{}, 0, false // already assigned; conflict upstream
			}
			return pseudoInput{frame: frame, index: idx}, want, true
		case netlist.DFF:
			if frame == 0 {
				idx := w.dffIdx[id]
				if w.stateVals[idx] != sim.VX {
					return pseudoInput{}, 0, false
				}
				return pseudoInput{isState: true, index: idx}, want, true
			}
			frame--
			id = g.Fanin[0]
		case netlist.Const0, netlist.Const1, netlist.Output:
			if g.Type == netlist.Output {
				id = g.Fanin[0]
				continue
			}
			return pseudoInput{}, 0, false // constants cannot be set
		case netlist.Buf:
			id = g.Fanin[0]
		case netlist.Not:
			id = g.Fanin[0]
			want = sim.NotV(want)
		case netlist.And, netlist.Nand, netlist.Or, netlist.Nor:
			ctrl, inv, _ := controlling(g.Type)
			need := want
			if inv {
				need = sim.NotV(need)
			}
			// need is the pre-inversion AND/OR level now.
			wantCtrl := need == ctrl
			best, bestCost := -1, int(^uint(0)>>1)
			for pin := range g.Fanin {
				f := g.Fanin[pin]
				if w.vals[frame][f].G != sim.VX {
					continue
				}
				cost := e.scoap.cost(f, ctrl == sim.V1)
				if !wantCtrl {
					cost = e.scoap.cost(f, ctrl != sim.V1)
					// Hardest-first for the all-inputs case.
					cost = -cost
				}
				if best < 0 || cost < bestCost {
					best, bestCost = f, cost
				}
			}
			if best < 0 {
				return pseudoInput{}, 0, false
			}
			id = best
			if wantCtrl {
				want = ctrl
			} else {
				want = sim.NotV(ctrl)
			}
		case netlist.Xor, netlist.Xnor:
			// Pick an X input; aim for the value that makes the output
			// match given the other input (or 0 if both unknown).
			a, b := g.Fanin[0], g.Fanin[1]
			va, vb := w.vals[frame][a].G, w.vals[frame][b].G
			need := want
			if g.Type == netlist.Xnor {
				need = sim.NotV(need)
			}
			switch {
			case va == sim.VX && vb != sim.VX:
				id = a
				want = sim.XorV(need, vb)
			case vb == sim.VX && va != sim.VX:
				id = b
				want = sim.XorV(need, va)
			case va == sim.VX && vb == sim.VX:
				id = a
				want = need // pair with b=0 later
			default:
				return pseudoInput{}, 0, false
			}
		default:
			return pseudoInput{}, 0, false
		}
	}
	return pseudoInput{}, 0, false
}
