package atpg

import (
	"seqatpg/internal/netlist"
	"seqatpg/internal/sim"
)

// pseudoInput identifies a decision variable of the window: a primary
// input of some frame, or a frame-0 state bit.
type pseudoInput struct {
	isState bool
	frame   int // PI frame (0 for state bits)
	index   int // PI position or state bit position
}

// objective is a desired good value on a line of some frame.
type objective struct {
	frame int
	gate  int
	val   sim.Val
}

// problem abstracts what the PODEM search is trying to do — fault
// detection or state justification.
type problem interface {
	// fail reports that the current partial assignment can never lead
	// to success (binary contradictions only — must be monotone).
	fail(w *window) bool
	// success reports the goal is met.
	success(w *window) bool
	// objective proposes the next line to set. ok=false with no success
	// means the search is stuck (treated as a dead end).
	objective(w *window) (objective, bool)
}

// searchOutcome summarizes a PODEM run.
type searchOutcome int

const (
	// searchExhausted: the full decision tree was explored; no (more)
	// solutions exist.
	searchExhausted searchOutcome = iota
	// searchStopped: onSolution told us to stop (a solution was
	// accepted).
	searchStopped
	// searchAborted: the backtrack or effort budget ran out.
	searchAborted
)

type decision struct {
	pin       pseudoInput
	val       sim.Val
	triedBoth bool
}

// podem runs the decision search. Every time the problem reports
// success, onSolution is consulted: returning true accepts the solution
// and stops; returning false rejects it and the search continues
// enumerating (the mechanism the justification recursion uses to try
// alternative predecessor states). The engine's budget is charged per
// simulation.
func (e *Engine) podem(w *window, prob problem, backtrackLimit int, onSolution func() bool) searchOutcome {
	var stack []decision
	backtracks := 0

	assign := func(pin pseudoInput, v sim.Val) {
		if pin.isState {
			w.setState(pin.index, v)
		} else {
			w.setPI(pin.frame, pin.index, v)
		}
	}
	unassign := func(pin pseudoInput) { assign(pin, sim.VX) }

	simulate := func() bool {
		return e.charge(int64(w.simulate()))
	}

	// backtrack pops/flips decisions; returns false when the tree is
	// exhausted.
	backtrack := func() (bool, bool) { // (keepGoing, abort)
		backtracks++
		e.Stats.Backtracks++
		if backtrackLimit > 0 && backtracks > backtrackLimit {
			return false, true
		}
		for len(stack) > 0 {
			d := &stack[len(stack)-1]
			if !d.triedBoth {
				d.triedBoth = true
				if d.val == sim.V0 {
					d.val = sim.V1
				} else {
					d.val = sim.V0
				}
				assign(d.pin, d.val)
				return true, false
			}
			unassign(d.pin)
			stack = stack[:len(stack)-1]
		}
		return false, false
	}

	if !simulate() {
		return searchAborted
	}
	for {
		switch {
		case prob.fail(w):
			keep, abort := backtrack()
			if abort {
				return searchAborted
			}
			if !keep {
				return searchExhausted
			}
			if !simulate() {
				return searchAborted
			}
		case prob.success(w):
			if onSolution() {
				return searchStopped
			}
			// Rejected: continue enumerating as if this were a dead end.
			keep, abort := backtrack()
			if abort {
				return searchAborted
			}
			if !keep {
				return searchExhausted
			}
			if !simulate() {
				return searchAborted
			}
		default:
			obj, ok := prob.objective(w)
			var pin pseudoInput
			var v sim.Val
			if ok {
				pin, v, ok = e.backtrace(w, obj)
			}
			if !ok {
				keep, abort := backtrack()
				if abort {
					return searchAborted
				}
				if !keep {
					return searchExhausted
				}
				if !simulate() {
					return searchAborted
				}
				continue
			}
			stack = append(stack, decision{pin: pin, val: v})
			assign(pin, v)
			if !simulate() {
				return searchAborted
			}
		}
	}
}

// backtrace maps an objective to an unassigned pseudo-input and a value,
// walking backward through the good-value circuit. ok=false when no
// X path exists from the objective to an assignable input.
func (e *Engine) backtrace(w *window, obj objective) (pseudoInput, sim.Val, bool) {
	frame, id, want := obj.frame, obj.gate, obj.val
	for hops := 0; hops < 10000; hops++ {
		g := w.c.Gates[id]
		switch g.Type {
		case netlist.Input:
			idx := w.piIdx[id]
			if w.piVals[frame][idx] != sim.VX {
				return pseudoInput{}, 0, false // already assigned; conflict upstream
			}
			return pseudoInput{frame: frame, index: idx}, want, true
		case netlist.DFF:
			if frame == 0 {
				idx := w.dffIdx[id]
				if w.stateVals[idx] != sim.VX {
					return pseudoInput{}, 0, false
				}
				return pseudoInput{isState: true, index: idx}, want, true
			}
			frame--
			id = g.Fanin[0]
		case netlist.Const0, netlist.Const1, netlist.Output:
			if g.Type == netlist.Output {
				id = g.Fanin[0]
				continue
			}
			return pseudoInput{}, 0, false // constants cannot be set
		case netlist.Buf:
			id = g.Fanin[0]
		case netlist.Not:
			id = g.Fanin[0]
			want = sim.NotV(want)
		case netlist.And, netlist.Nand, netlist.Or, netlist.Nor:
			ctrl, inv, _ := controlling(g.Type)
			need := want
			if inv {
				need = sim.NotV(need)
			}
			// need is the pre-inversion AND/OR level now.
			wantCtrl := need == ctrl
			best, bestCost := -1, int(^uint(0)>>1)
			for pin := range g.Fanin {
				f := g.Fanin[pin]
				if w.vals[frame][f].G != sim.VX {
					continue
				}
				cost := e.scoap.cost(f, ctrl == sim.V1)
				if !wantCtrl {
					cost = e.scoap.cost(f, ctrl != sim.V1)
					// Hardest-first for the all-inputs case.
					cost = -cost
				}
				if best < 0 || cost < bestCost {
					best, bestCost = f, cost
				}
			}
			if best < 0 {
				return pseudoInput{}, 0, false
			}
			id = best
			if wantCtrl {
				want = ctrl
			} else {
				want = sim.NotV(ctrl)
			}
		case netlist.Xor, netlist.Xnor:
			// Pick an X input; aim for the value that makes the output
			// match given the other input (or 0 if both unknown).
			a, b := g.Fanin[0], g.Fanin[1]
			va, vb := w.vals[frame][a].G, w.vals[frame][b].G
			need := want
			if g.Type == netlist.Xnor {
				need = sim.NotV(need)
			}
			switch {
			case va == sim.VX && vb != sim.VX:
				id = a
				want = sim.XorV(need, vb)
			case vb == sim.VX && va != sim.VX:
				id = b
				want = sim.XorV(need, va)
			case va == sim.VX && vb == sim.VX:
				id = a
				want = need // pair with b=0 later
			default:
				return pseudoInput{}, 0, false
			}
		default:
			return pseudoInput{}, 0, false
		}
	}
	return pseudoInput{}, 0, false
}
