package atpg

import "seqatpg/internal/sim"

// detectProblem drives PODEM toward exciting the target fault in frame 0
// and propagating the effect to a primary output of the window. With
// extendedObs set, a fault effect reaching a last-frame next-state line
// also counts as success — the exhaustive k=1 run with extended
// observability is the sound redundancy test: a fault that can neither
// be excited nor propagated to any output or state line under a free
// state is untestable in every sequential context.
type detectProblem struct {
	e           *Engine
	extendedObs bool
}

func (p *detectProblem) excited(w *window) sim.Val { return w.faultLineGood() }

func (p *detectProblem) fail(w *window) bool {
	lg := w.faultLineGood()
	if lg != sim.VX && lg == w.flt.SA {
		return true // excitation impossible under current assignments
	}
	if lg == sim.VX {
		return false // still working on excitation
	}
	if w.detectedAtPO() {
		return false
	}
	if p.extendedObs && w.dReachesLastState() {
		return false
	}
	if len(w.dFrontier()) == 0 {
		// Effect exists but cannot move anywhere in this window. When
		// observing state lines too, an effect parked on them is
		// success, checked above.
		if p.extendedObs {
			return !w.dReachesLastState()
		}
		return true
	}
	return false
}

func (p *detectProblem) success(w *window) bool {
	lg := w.faultLineGood()
	if lg == sim.VX || lg == w.flt.SA {
		return false
	}
	if w.detectedAtPO() {
		return true
	}
	return p.extendedObs && w.dReachesLastState()
}

// witness: the only analyzable detect failure is an excitation
// conflict — the fault line's good value is a known constant equal to
// the stuck-at value, and that line value has a pure good-rail support.
// A dead D-frontier is a set-level fact with no single refuting line,
// so it stays chronological.
func (p *detectProblem) witness(w *window) conflictWitness {
	lg := w.faultLineGood()
	if lg != sim.VX && lg == w.flt.SA {
		gate, _ := w.excitationObjective()
		return conflictWitness{kind: witnessLine, frame: 0, gate: gate}
	}
	return conflictWitness{}
}

func (p *detectProblem) objective(w *window) (objective, bool) {
	lg := w.faultLineGood()
	if lg == sim.VX {
		gate, val := w.excitationObjective()
		return objective{frame: 0, gate: gate, val: val}, true
	}
	frontier := w.dFrontier()
	if len(frontier) == 0 {
		return objective{}, false
	}
	// Choose the frontier gate closest to a primary output (static
	// observability distance), earliest frame first on ties.
	best := frontier[0]
	bestDist := p.e.obsDist[best.id]
	for _, f := range frontier[1:] {
		if d := p.e.obsDist[f.id]; d < bestDist || (d == bestDist && f.t < best.t) {
			best, bestDist = f, d
		}
	}
	g := w.c.Gates[best.id]
	ctrl, _, hasCtrl := controlling(g.Type)
	for pin := range g.Fanin {
		f := g.Fanin[pin]
		if w.vals[best.t][f].G != sim.VX {
			continue
		}
		want := sim.V0
		if hasCtrl {
			want = sim.NotV(ctrl)
		}
		return objective{frame: best.t, gate: f, val: want}, true
	}
	// Frontier gate with no X input: output X only through the fault
	// rails; no classic objective — stuck.
	return objective{}, false
}

// targetLine is one required next-state bit in a justification step.
type targetLine struct {
	gate int // the DFF's D driver
	dff  int // the DFF gate id (for the D-pin branch fault check)
	val  sim.Val
}

// justifyProblem drives PODEM to find a (previous state cube, input
// vector) whose next state satisfies every target line. The window is a
// single frame with the target fault injected: a test sequence is
// applied to the faulty machine, so the required excitation state must
// be established on both the good and the faulty rail (the composite
// machine must arrive in the same state).
type justifyProblem struct {
	targets []targetLine
}

// lineVal returns the composite value captured by the DFF of target t,
// including a possible branch fault on the D pin.
func (p *justifyProblem) lineVal(w *window, t targetLine) V5 {
	v := w.vals[0][t.gate]
	if w.flt != nil && w.flt.Gate == t.dff && w.flt.Pin == 0 {
		v.F = w.flt.SA
	}
	return v
}

func (p *justifyProblem) fail(w *window) bool {
	for _, t := range p.targets {
		v := p.lineVal(w, t)
		if v.G != sim.VX && v.G != t.val {
			return true
		}
		if v.F != sim.VX && v.F != t.val {
			return true
		}
	}
	return false
}

func (p *justifyProblem) success(w *window) bool {
	for _, t := range p.targets {
		v := p.lineVal(w, t)
		if v.G != t.val || v.F != t.val {
			return false
		}
	}
	return true
}

// witness picks the first mismatched target in target order: a good-
// rail mismatch analyzes the good rail; a faulty-rail mismatch caused
// by a D-pin branch fault is a constant contradiction (unsatisfiable
// outright), any other faulty-rail mismatch analyzes the faulty rail
// into a fault-local cube.
func (p *justifyProblem) witness(w *window) conflictWitness {
	for _, t := range p.targets {
		v := p.lineVal(w, t)
		if v.G != sim.VX && v.G != t.val {
			return conflictWitness{kind: witnessLine, frame: 0, gate: t.gate}
		}
		if v.F != sim.VX && v.F != t.val {
			if w.flt != nil && w.flt.Gate == t.dff && w.flt.Pin == 0 {
				return conflictWitness{kind: witnessAlways}
			}
			return conflictWitness{kind: witnessLine, onF: true, frame: 0, gate: t.gate}
		}
	}
	return conflictWitness{}
}

// publishLemma promotes an analyzable good-rail justification conflict
// to the shared cross-fault store when its support is state-variables-
// only: the good rail is fault-free even in a composite window, so
// "state ⊇ cube forces this next-state bit" holds under every fault
// and every input vector.
func (p *justifyProblem) publishLemma(e *Engine, w *window, wt conflictWitness, lits []cubeLit) {
	if wt.onF || !e.cfg.SharedLearning || !e.cfg.ConflictLearning {
		return
	}
	if !stateOnly(lits, len(w.stateVals)) {
		return
	}
	forced := w.vals[0][wt.gate].G
	if forced == sim.VX {
		return
	}
	cube := stateCubeOf(lits, len(w.stateVals))
	for _, t := range p.targets {
		if t.gate == wt.gate && t.val != forced {
			e.publishLemma(LearnedCube{Cube: cube, Bit: w.dffIdx[t.dff], Val: forced})
		}
	}
}

func (p *justifyProblem) objective(w *window) (objective, bool) {
	for _, t := range p.targets {
		if p.lineVal(w, t).G == sim.VX {
			return objective{frame: 0, gate: t.gate, val: t.val}, true
		}
	}
	return objective{}, false
}
