package atpg

import (
	"fmt"

	"seqatpg/internal/sim"
)

// Snapshot is the complete state of a fault-list run at a fault
// boundary: per-fault status, accepted tests, aggregate stats, the
// remaining whole-run budget, the SEST learning caches, and any
// recovered crashes. It captures everything ResumeFaults mutates
// between faults, so a fresh engine (same circuit, same Config)
// restored from a Snapshot finishes with Stats identical to a run that
// was never stopped. The campaign package serializes it to disk.
type Snapshot struct {
	Next        int  // index of the next unattempted fault
	RandomDone  bool // the random preprocessing phase completed
	Status      []byte
	Tests       [][][]sim.Val
	Stats       Stats
	TotalLeft   int64
	OutOfBudget bool
	// FailedCubes and Achieved are the SEST learning caches in
	// insertion order (empty unless Config.Learning). SharedFailed is
	// the cross-fault good-machine unjustifiability store (empty unless
	// Config.SharedLearning). LearnedCubes is the shared lemma store
	// fed by conflict analysis (empty unless Config.SharedLearning and
	// Config.ConflictLearning).
	FailedCubes  []string
	SharedFailed []string
	Achieved     []AchievedState
	LearnedCubes []LearnedCube
	Crashes      []*FaultCrash
}

// AchievedState is one learned justification: the input vectors that
// drive the machine (under the named fault context) from reset into
// the concrete state Bits.
type AchievedState struct {
	Fault string
	Bits  uint64
	Seq   [][]sim.Val
}

func copyStateSet(m map[uint64]bool) map[uint64]bool {
	out := make(map[uint64]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// copySeq copies the sequence structure; the innermost vectors are
// shared because the engine treats them as immutable once built.
func copySeq(s [][]sim.Val) [][]sim.Val {
	return append([][]sim.Val(nil), s...)
}

func copyTests(t [][][]sim.Val) [][][]sim.Val {
	out := make([][][]sim.Val, len(t))
	for i, s := range t {
		out[i] = copySeq(s)
	}
	return out
}

// buildSnapshot deep-copies the run state at the current boundary.
func (e *Engine) buildSnapshot(rs *runLoopState) *Snapshot {
	st := e.Stats
	st.StatesTraversed = copyStateSet(e.Stats.StatesTraversed)
	snap := &Snapshot{
		Next:         rs.next,
		RandomDone:   rs.randomDone,
		Status:       append([]byte(nil), rs.status...),
		Tests:        copyTests(rs.tests),
		Stats:        st,
		TotalLeft:    e.totalLeft,
		OutOfBudget:  e.outOfBudget,
		FailedCubes:  append([]string(nil), e.failedKeys...),
		SharedFailed: append([]string(nil), e.sharedFailedKeys...),
		LearnedCubes: append([]LearnedCube(nil), e.lemmaList...),
		Crashes:      append([]*FaultCrash(nil), rs.crashes...),
	}
	for _, k := range e.achievedKeys {
		snap.Achieved = append(snap.Achieved, AchievedState{
			Fault: k.fault,
			Bits:  k.bits,
			Seq:   copySeq(e.achieved[k.fault+fmt.Sprint(k.bits)]),
		})
	}
	return snap
}

// restoreSnapshot loads a Snapshot into the engine and run state. The
// snapshot must come from a run over a fault list of the same length
// (the campaign layer additionally fingerprints circuit, config and
// fault identities before trusting a checkpoint).
func (e *Engine) restoreSnapshot(snap *Snapshot, rs *runLoopState, n int) error {
	if len(snap.Status) != n {
		return fmt.Errorf("atpg: snapshot covers %d faults, run has %d", len(snap.Status), n)
	}
	if snap.Next < 0 || snap.Next > n {
		return fmt.Errorf("atpg: snapshot next index %d out of range [0,%d]", snap.Next, n)
	}
	for i, st := range snap.Status {
		if st > 4 {
			return fmt.Errorf("atpg: snapshot status[%d] = %d is not a valid code", i, st)
		}
	}
	rs.status = append([]byte(nil), snap.Status...)
	rs.tests = copyTests(snap.Tests)
	rs.crashes = append([]*FaultCrash(nil), snap.Crashes...)
	rs.randomDone = snap.RandomDone
	rs.next = snap.Next

	st := snap.Stats
	st.Total = n
	st.StatesTraversed = copyStateSet(snap.Stats.StatesTraversed)
	e.Stats = st
	e.totalLeft = snap.TotalLeft
	e.outOfBudget = snap.OutOfBudget

	e.failedCubes = make(map[string]bool, len(snap.FailedCubes))
	e.failedKeys = append([]string(nil), snap.FailedCubes...)
	for _, k := range e.failedKeys {
		e.failedCubes[k] = true
	}
	e.sharedFailed = make(map[string]bool, len(snap.SharedFailed))
	e.sharedFailedKeys = append([]string(nil), snap.SharedFailed...)
	for _, k := range e.sharedFailedKeys {
		e.sharedFailed[k] = true
	}
	e.lemmas = make(map[string]bool, len(snap.LearnedCubes))
	e.lemmaList = append([]LearnedCube(nil), snap.LearnedCubes...)
	for _, lc := range e.lemmaList {
		e.lemmas[lemmaKey(lc)] = true
	}
	e.achieved = make(map[string][][]sim.Val, len(snap.Achieved))
	e.achievedKeys = e.achievedKeys[:0]
	for _, a := range snap.Achieved {
		e.achieved[a.Fault+fmt.Sprint(a.Bits)] = copySeq(a.Seq)
		e.achievedKeys = append(e.achievedKeys, achievedKey{fault: a.Fault, bits: a.Bits})
	}
	return nil
}
