package atpg

import (
	"strings"
	"testing"
)

func TestConfigValidateRejectsBadKnobs(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"negative fault budget", func(c *Config) { c.FaultBudget = -1 }, "FaultBudget"},
		{"negative total budget", func(c *Config) { c.TotalBudget = -5 }, "TotalBudget"},
		{"zero max frames", func(c *Config) { c.MaxFrames = 0 }, "MaxFrames"},
		{"negative max frames", func(c *Config) { c.MaxFrames = -2 }, "MaxFrames"},
		{"negative back steps", func(c *Config) { c.MaxBackSteps = -1 }, "MaxBackSteps"},
		{"negative backtrack limit", func(c *Config) { c.BacktrackLimit = -1 }, "BacktrackLimit"},
		{"negative random sequences", func(c *Config) { c.RandomSequences = -1 }, "RandomSequences"},
		{"negative random length", func(c *Config) { c.RandomLength = -1 }, "RandomLength"},
		{"no-drop with random phase", func(c *Config) { c.NoFaultDrop = true; c.RandomSequences = 2; c.RandomLength = 4 }, "NoFaultDrop"},
	}
	for _, tc := range cases {
		cfg := defaultCfg()
		tc.mut(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, cfg)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name %s", tc.name, err, tc.want)
		}
		// New must refuse the same configuration.
		if _, err := New(synthC(t, 5, 3), cfg); err == nil {
			t.Errorf("%s: New accepted an invalid config", tc.name)
		}
	}
}

func TestConfigValidateAcceptsZeroOptionalKnobs(t *testing.T) {
	cfg := defaultCfg()
	cfg.BacktrackLimit = 0 // unlimited, bounded by the effort budget
	cfg.MaxBackSteps = 0   // defaulted by New
	cfg.TotalBudget = 0    // unlimited
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate rejected a legal config: %v", err)
	}
}

// TestFlushCyclesCoercion documents the one silent coercion: a
// FlushCycles below 1 becomes exactly one reset-hold cycle, so every
// engine has a non-empty flush prefix.
func TestFlushCyclesCoercion(t *testing.T) {
	c := synthC(t, 5, 3)
	for _, fc := range []int{-3, 0, 1} {
		cfg := defaultCfg()
		cfg.FlushCycles = fc
		e, err := New(c, cfg)
		if err != nil {
			t.Fatalf("FlushCycles=%d rejected: %v", fc, err)
		}
		if e.cfg.FlushCycles != 1 {
			t.Errorf("FlushCycles=%d coerced to %d, want 1", fc, e.cfg.FlushCycles)
		}
		if len(e.flushPrefix) != 1 {
			t.Errorf("FlushCycles=%d produced a %d-cycle flush prefix, want 1", fc, len(e.flushPrefix))
		}
	}
	cfg := defaultCfg()
	cfg.FlushCycles = 3
	e, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.flushPrefix) != 3 {
		t.Errorf("FlushCycles=3 produced a %d-cycle flush prefix", len(e.flushPrefix))
	}
}
