package hitec

import (
	"testing"

	"seqatpg/internal/netlist"
)

func tiny(t *testing.T) *netlist.Circuit {
	t.Helper()
	c := netlist.New("t")
	reset := c.AddGate(netlist.Input, "reset")
	c.ResetPI = reset
	in := c.AddGate(netlist.Input, "in")
	nr := c.AddGate(netlist.Not, "nr", reset)
	a := c.AddGate(netlist.And, "a", in, nr)
	ff := c.AddGate(netlist.DFF, "q", a)
	c.AddGate(netlist.Output, "o", ff)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig(3, 1_000_000)
	if cfg.Name != "hitec" {
		t.Errorf("name = %q", cfg.Name)
	}
	if cfg.FlushCycles != 3 || cfg.FaultBudget != 1_000_000 {
		t.Error("parameters not threaded through")
	}
	if cfg.Learning || cfg.RandomSequences != 0 {
		t.Error("HITEC preset must be purely deterministic without learning")
	}
	if cfg.MaxFrames < 4 || cfg.BacktrackLimit < 1000 {
		t.Error("HITEC preset should have deep windows and generous backtracks")
	}
}

func TestNewRunsEndToEnd(t *testing.T) {
	e, err := New(tiny(t), 1, 500_000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.FE() < 99 {
		t.Errorf("tiny circuit FE = %.1f", res.Stats.FE())
	}
}
