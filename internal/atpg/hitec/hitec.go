// Package hitec configures the shared structural sequential ATPG core
// in the style of HITEC (Niermann & Patel, EDAC 1991): a purely
// deterministic engine with testability-guided backtrace, deep forward
// time-frame windows, deep backward state justification, and generous
// backtrack budgets. It is the primary engine of the reproduced study.
package hitec

import (
	"seqatpg/internal/atpg"
	"seqatpg/internal/netlist"
)

// DefaultConfig returns the HITEC-style configuration. flushCycles is
// the reset-hold prefix length of the circuit (1 for non-retimed
// circuits). faultBudget is the per-fault effort allowance in gate
// evaluations (the event-driven window charges exactly the gates it
// touches); the experiment harness scales it to model the paper's
// CPU-time limits.
func DefaultConfig(flushCycles int, faultBudget int64) atpg.Config {
	return atpg.Config{
		Name:           "hitec",
		MaxFrames:      8,
		MaxBackSteps:   40,
		BacktrackLimit: 4000,
		FaultBudget:    faultBudget,
		FlushCycles:    flushCycles,
	}
}

// New builds a HITEC-style engine for the circuit.
func New(c *netlist.Circuit, flushCycles int, faultBudget int64) (*atpg.Engine, error) {
	return atpg.New(c, DefaultConfig(flushCycles, faultBudget))
}
