package atpg

import (
	"fmt"
	"sort"

	"seqatpg/internal/netlist"
	"seqatpg/internal/sim"
)

// Conflict-driven search support: the implicit implication graph over
// the iterative-array window, learned blocking cubes, and the Luby
// restart schedule.
//
// PODEM only ever assigns pseudo-inputs and derives everything else by
// simulation, so the implication graph never needs to be materialized:
// every internal line value is implied by the pseudo-input assignments
// in its structural support, and the antecedent edges are exactly the
// gate fanins (filtered to the fanins that determine the output under
// the current values). analyzeLine recomputes that support on demand by
// walking fanins backward from a conflicting line — the 1-UIP cut of
// this graph is the set of decision variables reached, because every
// decision is itself a UIP when all implications are deterministic
// simulation (there are no clause-propagated intermediate assignments
// to cut through).

// cubeLit is one literal of a learned blocking cube: a window decision
// variable (frame-0 state bit, or a frame-relative PI) pinned to a
// binary value.
type cubeLit struct {
	v   int32
	val sim.Val
}

// dbCube is one stored blocking cube with its watch counter: sat counts
// how many of its literals the current assignment satisfies, so a full
// cube (sat == len(lits)) is detected in O(1) per assignment.
type dbCube struct {
	lits []cubeLit
	sat  int
}

// cubeDB tracks the decision-variable assignment and the learned
// blocking cubes of one search family (one fault's detect ladder, or
// one justification step). A "conflict" is any assignment that covers a
// stored cube: the covered region was already refuted, so the search
// must not descend into it again.
type cubeDB struct {
	nDFF, nPI int
	val       []int8  // per var: -1 unassigned, else the sim.Val
	level     []int32 // per var: 1-based decision level, 0 = unassigned
	cubes     []dbCube
	byLit     map[int32][]int // literal key -> indices of cubes holding it
	known     map[string]bool // canonical cube keys, for dedup
	fullCount int             // cubes currently fully covered
	capacity  int             // stored-cube bound (LearnCap)
	seeded    int             // cubes [0, seeded) came from the shared lemma store
}

// newCubeDB sizes a store for this engine's window geometry: state bits
// first, then MaxFrames blocks of PIs.
func (e *Engine) newCubeDB() *cubeDB {
	n := len(e.c.DFFs) + e.cfg.MaxFrames*len(e.c.PIs)
	db := &cubeDB{
		nDFF:     len(e.c.DFFs),
		nPI:      len(e.c.PIs),
		val:      make([]int8, n),
		level:    make([]int32, n),
		byLit:    map[int32][]int{},
		known:    map[string]bool{},
		capacity: e.cfg.LearnCap,
	}
	for i := range db.val {
		db.val[i] = -1
	}
	return db
}

// varOf maps a pseudo-input to its decision-variable id.
func (db *cubeDB) varOf(pin pseudoInput) int32 {
	if pin.isState {
		return int32(pin.index)
	}
	return int32(db.nDFF + pin.frame*db.nPI + pin.index)
}

// pinOf is the inverse of varOf (for re-pushing an asserting decision).
func (db *cubeDB) pinOf(v int32) pseudoInput {
	if int(v) < db.nDFF {
		return pseudoInput{isState: true, index: int(v)}
	}
	r := int(v) - db.nDFF
	return pseudoInput{frame: r / db.nPI, index: r % db.nPI}
}

func litKey(v int32, val sim.Val) int32 { return v*2 + int32(val) }

// assign records a decision-variable assignment at the given 1-based
// level, bumping the sat counters of every cube holding the literal.
func (db *cubeDB) assign(v int32, val sim.Val, level int32) {
	db.val[v] = int8(val)
	db.level[v] = level
	for _, ci := range db.byLit[litKey(v, val)] {
		c := &db.cubes[ci]
		c.sat++
		if c.sat == len(c.lits) {
			db.fullCount++
		}
	}
}

// unassign undoes assign.
func (db *cubeDB) unassign(v int32) {
	val := sim.Val(db.val[v])
	db.val[v] = -1
	db.level[v] = 0
	for _, ci := range db.byLit[litKey(v, val)] {
		c := &db.cubes[ci]
		if c.sat == len(c.lits) {
			db.fullCount--
		}
		c.sat--
	}
}

// reset clears all assignment state (but keeps the learned cubes) — the
// entry invariant of every podem run, since an accepted solution leaves
// the previous run's trail in place.
func (db *cubeDB) reset() {
	for i := range db.val {
		db.val[i] = -1
		db.level[i] = 0
	}
	for i := range db.cubes {
		db.cubes[i].sat = 0
	}
	db.fullCount = 0
}

// conflict returns the index of a fully covered cube, lowest index
// first for determinism, or -1.
func (db *cubeDB) conflict() int {
	if db.fullCount == 0 {
		return -1
	}
	for i := range db.cubes {
		if db.cubes[i].sat == len(db.cubes[i].lits) {
			return i
		}
	}
	return -1
}

func cubeDBKey(lits []cubeLit) string {
	b := make([]byte, 0, len(lits)*6)
	for _, l := range lits {
		b = append(b, byte(l.v), byte(l.v>>8), byte(l.v>>16), byte(l.v>>24), byte(l.val), '|')
	}
	return string(b)
}

// learn stores a blocking cube (literals must be sorted by variable)
// and reports whether it was actually added: duplicates and additions
// past the capacity bound are dropped — the caller may still backjump
// on the computed cube either way.
func (db *cubeDB) learn(lits []cubeLit) bool {
	key := cubeDBKey(lits)
	if db.known[key] {
		return false
	}
	if db.capacity > 0 && len(db.cubes)-db.seeded >= db.capacity {
		return false
	}
	db.known[key] = true
	sat := 0
	for _, l := range lits {
		if db.val[l.v] == int8(l.val) {
			sat++
		}
	}
	ci := len(db.cubes)
	db.cubes = append(db.cubes, dbCube{lits: lits, sat: sat})
	for _, l := range lits {
		k := litKey(l.v, l.val)
		db.byLit[k] = append(db.byLit[k], ci)
	}
	if sat == len(lits) {
		db.fullCount++
	}
	return true
}

// seedLemma installs a shared-store state cube as a blocking cube
// before the search starts; conflicts on seeded cubes are counted as
// shared-cache prunes. Must be called before any assignment.
func (db *cubeDB) seedLemma(cube string) {
	lits := make([]cubeLit, 0, len(cube))
	for i := 0; i < len(cube) && i < db.nDFF; i++ {
		switch cube[i] {
		case '0':
			lits = append(lits, cubeLit{v: int32(i), val: sim.V0})
		case '1':
			lits = append(lits, cubeLit{v: int32(i), val: sim.V1})
		}
	}
	if len(lits) == 0 {
		return
	}
	if db.learn(lits) {
		db.seeded = len(db.cubes)
	}
}

// witnessKind classifies what a failed problem can tell the analyzer.
type witnessKind int

const (
	// witnessNone: the failure is not a single line-value fact (e.g. a
	// dead D-frontier) — fall back to chronological backtracking.
	witnessNone witnessKind = iota
	// witnessLine: a known value on one line refutes the problem;
	// analyze its support into a blocking cube.
	witnessLine
	// witnessAlways: the problem is unsatisfiable under any assignment
	// (a constant pinned by the fault injection itself contradicts it).
	witnessAlways
)

// conflictWitness locates the refuting line value of a failed problem.
type conflictWitness struct {
	kind  witnessKind
	onF   bool // analyze the faulty rail instead of the good rail
	frame int
	gate  int
}

// railVal reads one rail of a line value.
func railVal(w *window, onF bool, t, id int) sim.Val {
	if onF {
		return w.vals[t][id].F
	}
	return w.vals[t][id].G
}

// analyzeLine walks the implicit implication graph backward from a
// known line value and collects the decision literals that force it:
// any total assignment extending those literals reproduces the value,
// by induction over the walk (three-valued simulation is monotone, so a
// binary value derived from binary fanins is stable under extension).
// On the faulty rail the injection sites are axioms — they contribute
// no literal, which makes F-rail cubes fault-local and G-rail cubes
// pure good-machine facts. ok=false means the walk escaped the
// analyzable fragment (an unknown value or gate kind); the caller falls
// back to chronological backtracking.
func analyzeLine(w *window, onF bool, frame, gate int, db *cubeDB) ([]cubeLit, bool) {
	type node struct{ t, id int }
	nG := len(w.c.Gates)
	seen := make(map[int]bool)
	litVal := make(map[int32]sim.Val)
	stack := []node{{frame, gate}}
	addLit := func(v int32, val sim.Val) bool {
		if prev, ok := litVal[v]; ok {
			return prev == val
		}
		litVal[v] = val
		return true
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		key := n.t*nG + n.id
		if seen[key] {
			continue
		}
		seen[key] = true
		v := railVal(w, onF, n.t, n.id)
		if v == sim.VX {
			return nil, false
		}
		// Stem injection pins the whole faulty-rail value: axiom.
		if onF && n.id == w.fGate && w.fPin < 0 {
			continue
		}
		g := &w.c.Gates[n.id]
		// pinVal is the effective value gate n.id sees on a fanin pin,
		// with branch-fault injection applied on the faulty rail.
		pinVal := func(pin int) sim.Val {
			if onF && n.id == w.fGate && pin == w.fPin {
				return w.fSA
			}
			return railVal(w, onF, n.t, g.Fanin[pin])
		}
		injected := func(pin int) bool { return onF && n.id == w.fGate && pin == w.fPin }
		switch g.Type {
		case netlist.Const0, netlist.Const1:
			// Constants contribute no literal.
		case netlist.Input:
			idx := w.piIdx[n.id]
			av := w.piVals[n.t][idx]
			if av == sim.VX || !addLit(db.varOf(pseudoInput{frame: n.t, index: idx}), av) {
				return nil, false
			}
		case netlist.DFF:
			if injected(0) {
				continue // D-pin fault pins the captured faulty value
			}
			if n.t == 0 {
				idx := w.dffIdx[n.id]
				av := w.stateVals[idx]
				if av == sim.VX || !addLit(db.varOf(pseudoInput{isState: true, index: idx}), av) {
					return nil, false
				}
			} else {
				stack = append(stack, node{n.t - 1, g.Fanin[0]})
			}
		case netlist.Buf, netlist.Output, netlist.Not:
			if injected(0) {
				continue
			}
			stack = append(stack, node{n.t, g.Fanin[0]})
		case netlist.And, netlist.Nand, netlist.Or, netlist.Nor:
			ctrl, inv, _ := controlling(g.Type)
			u := v
			if inv {
				u = sim.NotV(u)
			}
			if u == ctrl {
				// One controlling fanin suffices; take the first in pin
				// order for determinism.
				found := false
				for pin := range g.Fanin {
					if pinVal(pin) != ctrl {
						continue
					}
					if !injected(pin) {
						stack = append(stack, node{n.t, g.Fanin[pin]})
					}
					found = true
					break
				}
				if !found {
					return nil, false
				}
			} else {
				// Non-controlling output needs every fanin.
				for pin := range g.Fanin {
					if injected(pin) {
						continue
					}
					stack = append(stack, node{n.t, g.Fanin[pin]})
				}
			}
		case netlist.Xor, netlist.Xnor:
			for pin := range g.Fanin {
				if injected(pin) {
					continue
				}
				stack = append(stack, node{n.t, g.Fanin[pin]})
			}
		default:
			return nil, false
		}
	}
	lits := make([]cubeLit, 0, len(litVal))
	for v, val := range litVal {
		lits = append(lits, cubeLit{v: v, val: val})
	}
	sort.Slice(lits, func(i, j int) bool { return lits[i].v < lits[j].v })
	return lits, true
}

// stateOnly reports whether every literal is a frame-0 state variable —
// the condition for promoting a good-rail cube to a shared, any-PI
// lemma.
func stateOnly(lits []cubeLit, nDFF int) bool {
	for _, l := range lits {
		if int(l.v) >= nDFF {
			return false
		}
	}
	return true
}

// stateCubeOf renders state-only literals as a "01X" cube string.
func stateCubeOf(lits []cubeLit, nDFF int) string {
	b := make([]byte, nDFF)
	for i := range b {
		b[i] = 'X'
	}
	for _, l := range lits {
		if l.val == sim.V1 {
			b[l.v] = '1'
		} else {
			b[l.v] = '0'
		}
	}
	return string(b)
}

// luby is the Luby restart sequence (1,1,2,1,1,2,4,...), 1-based.
func luby(i int) int64 {
	for k := 1; ; k++ {
		if i == 1<<k-1 {
			return 1 << (k - 1)
		}
		if i < 1<<k-1 {
			return luby(i - (1 << (k - 1)) + 1)
		}
	}
}

// lubyUnit is the conflict count multiplying the Luby sequence between
// restarts.
const lubyUnit = 32

// LearnedCube is one shared cross-fault lemma: whenever the previous
// good-machine state satisfies Cube, the next-state bit Bit is forced
// to Val. Published from good-rail (fault-free by construction, even in
// composite windows) justification conflicts whose support is
// state-variables-only — such a cube holds under every fault and every
// input vector, so any justification target demanding the opposite
// value on that bit is refutable the moment the state assignment covers
// the cube.
type LearnedCube struct {
	Cube string  // "01X" over frame-0 state bits
	Bit  int     // forced next-state bit position
	Val  sim.Val // the forced value
}

func lemmaKey(lc LearnedCube) string {
	return fmt.Sprintf("%s|%d|%d", lc.Cube, lc.Bit, lc.Val)
}

// publishLemma appends a lemma to the shared store (dedup'd), keeping
// the insertion-order journal the rollback and snapshot machinery
// iterate.
func (e *Engine) publishLemma(lc LearnedCube) {
	k := lemmaKey(lc)
	if e.lemmas[k] {
		return
	}
	e.lemmas[k] = true
	e.lemmaList = append(e.lemmaList, lc)
}

// seedLemmas installs every stored lemma that contradicts a
// justification target as a blocking cube.
func (e *Engine) seedLemmas(db *cubeDB, targets []targetLine) {
	for _, lc := range e.lemmaList {
		if lc.Bit < 0 || lc.Bit >= len(e.c.DFFs) {
			continue
		}
		for _, t := range targets {
			if e.dffBit(t.dff) == lc.Bit && t.val != lc.Val {
				db.seedLemma(lc.Cube)
				break
			}
		}
	}
}

// dffBit maps a DFF gate id to its state-bit position.
func (e *Engine) dffBit(dff int) int {
	for i, id := range e.c.DFFs {
		if id == dff {
			return i
		}
	}
	return -1
}

// CubeRecord describes one learned blocking cube for the differential
// replay test hook: the literals, the refuting line and the value the
// analyzer claims those literals force on it.
type CubeRecord struct {
	Lits  []CubeRecordLit
	OnF   bool
	Frame int
	Gate  int
	Val   sim.Val
	K     int // window frame count
}

// CubeRecordLit is one literal of a CubeRecord in pseudo-input terms.
type CubeRecordLit struct {
	IsState bool
	Frame   int
	Index   int
	Val     sim.Val
}
