package atpg

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"seqatpg/internal/fault"
	"seqatpg/internal/netlist"
)

func mustEngine(t *testing.T, c *netlist.Circuit, cfg Config) *Engine {
	t.Helper()
	e, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestInterruptedRunResumesExactly: cancel a run mid-list, snapshot it,
// restore the snapshot on a fresh engine, and require the final Stats,
// Outcomes and test count to be identical to a never-interrupted run.
// Exercised across the three engine personalities (plain, learning,
// random-preprocessing) because each mutates different engine state.
func TestInterruptedRunResumesExactly(t *testing.T) {
	c := synthC(t, 9, 12)
	faults := fault.CollapsedUniverse(c)
	cap := 60
	if testing.Short() {
		cap = 30
	}
	if len(faults) > cap {
		faults = faults[:cap]
	}
	cancelAts := []int{0, 7, len(faults) / 2}
	if testing.Short() {
		cancelAts = []int{0, 7}
	}

	configs := map[string]Config{
		"plain": defaultCfg(),
		"learning": func() Config {
			cfg := defaultCfg()
			cfg.Learning = true
			return cfg
		}(),
		"random": func() Config {
			cfg := defaultCfg()
			cfg.RandomSequences = 4
			cfg.RandomLength = 12
			cfg.Seed = 7
			return cfg
		}(),
	}

	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			ref, err := mustEngine(t, c, cfg).RunFaults(faults)
			if err != nil {
				t.Fatal(err)
			}
			if ref.Interrupted {
				t.Fatal("reference run reported interrupted")
			}

			for _, cancelAt := range cancelAts {
				ctx, cancel := context.WithCancel(context.Background())
				e := mustEngine(t, c, cfg)
				e.TestHook = func(i int, _ fault.Fault) {
					if i >= cancelAt {
						cancel()
					}
				}
				partial, snap, err := e.ResumeFaults(ctx, faults, nil, nil)
				cancel()
				if err != nil {
					t.Fatal(err)
				}
				if !partial.Interrupted {
					// The hook fires per attempted fault; if every fault at
					// or after cancelAt was already resolved by dropping,
					// the run can finish legitimately.
					if cancelAt == 0 {
						t.Fatal("cancel at fault 0 did not interrupt the run")
					}
					continue
				}
				if snap == nil {
					t.Fatal("interrupted run returned no snapshot")
				}

				resumed, finalSnap, err := mustEngine(t, c, cfg).ResumeFaults(context.Background(), faults, snap, nil)
				if err != nil {
					t.Fatal(err)
				}
				if resumed.Interrupted || finalSnap != nil {
					t.Fatal("resumed run did not finish")
				}
				if !reflect.DeepEqual(resumed.Stats, ref.Stats) {
					t.Errorf("cancelAt=%d: resumed stats %+v != reference %+v", cancelAt, resumed.Stats, ref.Stats)
				}
				if !reflect.DeepEqual(resumed.Outcomes, ref.Outcomes) {
					t.Errorf("cancelAt=%d: resumed outcomes diverge from reference", cancelAt)
				}
				if len(resumed.Tests) != len(ref.Tests) {
					t.Errorf("cancelAt=%d: resumed %d tests, reference %d", cancelAt, len(resumed.Tests), len(ref.Tests))
				}
			}
		})
	}
}

// TestCancelledRunReturnsPartialResult: an interrupted run still hands
// back the outcomes and stats accumulated so far, and its snapshot
// reflects the last completed boundary.
func TestCancelledRunReturnsPartialResult(t *testing.T) {
	c := synthC(t, 9, 12)
	faults := fault.CollapsedUniverse(c)[:40]
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	e := mustEngine(t, c, defaultCfg())
	const cancelAt = 10
	e.TestHook = func(i int, _ fault.Fault) {
		if i >= cancelAt {
			cancel()
		}
	}
	res, snap, err := e.ResumeFaults(ctx, faults, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Fatal("run was not interrupted")
	}
	if len(res.Outcomes) != len(faults) {
		t.Fatalf("partial result has %d outcomes, want %d", len(res.Outcomes), len(faults))
	}
	if res.Stats.Detected+res.Stats.Redundant == 0 {
		t.Error("partial result carries no progress")
	}
	if snap.Next < cancelAt || snap.Next > len(faults) {
		t.Errorf("snapshot next = %d, want >= %d", snap.Next, cancelAt)
	}
	// The stats counters must agree exactly with the snapshot's
	// resolved status entries (fault dropping may resolve faults far
	// past the boundary index, so compare against status, not Next).
	resolved := 0
	for _, st := range snap.Status {
		if st != 0 {
			resolved++
		}
	}
	if got := res.Stats.Detected + res.Stats.Redundant + res.Stats.Aborted + res.Stats.Crashed; got != resolved {
		t.Errorf("stats account for %d faults but snapshot resolves %d", got, resolved)
	}
}

// TestPreCancelledContextInterruptsImmediately: a context that is
// already cancelled produces an interrupted, zero-progress result
// rather than an error or a full run.
func TestPreCancelledContextInterruptsImmediately(t *testing.T) {
	c := synthC(t, 7, 5)
	faults := fault.CollapsedUniverse(c)[:20]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := mustEngine(t, c, defaultCfg())
	res, snap, err := e.ResumeFaults(ctx, faults, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Fatal("pre-cancelled context did not interrupt")
	}
	if res.Stats.Effort != 0 {
		t.Errorf("pre-cancelled run burned %d effort", res.Stats.Effort)
	}
	if snap == nil || snap.Next != 0 {
		t.Errorf("snapshot = %+v, want next 0", snap)
	}
}

// TestPanicIsolatedAsCrashed: a panicking fault search is recorded as
// Crashed with diagnostics and does not abort the remaining faults.
func TestPanicIsolatedAsCrashed(t *testing.T) {
	c := synthC(t, 9, 12)
	faults := fault.CollapsedUniverse(c)[:30]
	// Crash the first fault actually attempted at or after index 3
	// (earlier tests may resolve index 3 itself by fault dropping).
	crashAt := -1
	e := mustEngine(t, c, defaultCfg())
	e.TestHook = func(i int, _ fault.Fault) {
		if i >= 3 && crashAt < 0 {
			crashAt = i
			panic("injected fault-search failure")
		}
	}
	res, err := e.RunFaults(faults)
	if err != nil {
		t.Fatal(err)
	}
	if res.Interrupted {
		t.Fatal("crash interrupted the run")
	}
	if res.Outcomes[crashAt] != Crashed {
		t.Fatalf("outcome[%d] = %v, want crashed", crashAt, res.Outcomes[crashAt])
	}
	if res.Stats.Crashed != 1 {
		t.Errorf("Stats.Crashed = %d, want 1", res.Stats.Crashed)
	}
	if len(res.Crashes) != 1 {
		t.Fatalf("%d crash records, want 1", len(res.Crashes))
	}
	crash := res.Crashes[0]
	if crash.Index != crashAt || !strings.Contains(crash.Panic, "injected fault-search failure") {
		t.Errorf("crash record %+v does not describe the injected panic", crash)
	}
	if !strings.Contains(crash.Stack, "generateSafe") {
		t.Errorf("crash stack does not reach the recover site:\n%s", crash.Stack)
	}
	if !strings.Contains(crash.Error(), "panicked") {
		t.Errorf("crash error %q not descriptive", crash.Error())
	}
	// Every other fault still reached a verdict.
	sum := res.Stats.Detected + res.Stats.Redundant + res.Stats.Aborted + res.Stats.Crashed
	if sum != len(faults) {
		t.Errorf("outcome sum %d != %d faults", sum, len(faults))
	}
	if res.Stats.Detected == 0 {
		t.Error("no detections after the crash: isolation failed")
	}
}

// TestSnapshotRejectsMismatchedFaultList: restoring a snapshot onto a
// run with a different fault-list length must fail loudly.
func TestSnapshotRejectsMismatchedFaultList(t *testing.T) {
	c := synthC(t, 7, 5)
	faults := fault.CollapsedUniverse(c)[:20]
	ctx, cancel := context.WithCancel(context.Background())
	e := mustEngine(t, c, defaultCfg())
	e.TestHook = func(i int, _ fault.Fault) {
		if i >= 5 {
			cancel()
		}
	}
	_, snap, err := e.ResumeFaults(ctx, faults, nil, nil)
	cancel()
	if err != nil || snap == nil {
		t.Fatalf("setup run: snap=%v err=%v", snap, err)
	}
	if _, _, err := mustEngine(t, c, defaultCfg()).ResumeFaults(context.Background(), faults[:10], snap, nil); err == nil {
		t.Fatal("mismatched fault list accepted")
	}
}
