package sest

import "testing"

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig(2, 500_000)
	if cfg.Name != "sest" {
		t.Errorf("name = %q", cfg.Name)
	}
	if !cfg.Learning {
		t.Error("SEST preset must enable search-state learning")
	}
	if cfg.RandomSequences != 0 {
		t.Error("SEST preset is deterministic-only")
	}
	if cfg.FlushCycles != 2 || cfg.FaultBudget != 500_000 {
		t.Error("parameters not threaded through")
	}
}
