// Package sest configures the shared ATPG core in the style of
// Sequential EST (Chen & Bushnell): the HITEC-like deterministic flow
// plus search-state learning — proven-unjustifiable state cubes are
// cached and pruned on sight, and concrete states whose justification
// sequences are known get reused. Learning speeds up repeat searches in
// the invalid state space but, as the paper observes, cannot remove the
// density-of-encoding penalty itself.
package sest

import (
	"seqatpg/internal/atpg"
	"seqatpg/internal/netlist"
)

// DefaultConfig returns the SEST-style configuration.
func DefaultConfig(flushCycles int, faultBudget int64) atpg.Config {
	return atpg.Config{
		Name:           "sest",
		MaxFrames:      8,
		MaxBackSteps:   32,
		BacktrackLimit: 2000,
		FaultBudget:    faultBudget,
		FlushCycles:    flushCycles,
		Learning:       true,
	}
}

// SharedConfig is DefaultConfig with the cross-fault justification
// cache enabled: good-machine justification sequences and top-level
// unjustifiability proofs are reused across every fault in the run
// (entries are re-verified on the composite machine before use, so
// verdicts are preserved and only effort drops). The cache makes a
// run's per-fault outcomes depend on fault order, so sharded campaigns
// normalize it away; use DefaultConfig where shard invariance matters.
func SharedConfig(flushCycles int, faultBudget int64) atpg.Config {
	cfg := DefaultConfig(flushCycles, faultBudget)
	cfg.Name = "sest-shared"
	cfg.SharedLearning = true
	return cfg
}

// CdclConfig is SharedConfig with the conflict-driven search layer on
// top: conflict analysis learns blocking cubes over state variables and
// frame-relative PIs, backjumping pops straight to the asserting level,
// and Luby restarts escape unproductive subtrees while the learned
// cubes carry across the restart. Good-machine state lemmas feed the
// shared cross-fault cache. Verdicts are identical to SharedConfig —
// cubes only exclude regions already refuted by exhaustive search — so
// only the charged effort and the abort rate change.
func CdclConfig(flushCycles int, faultBudget int64) atpg.Config {
	cfg := SharedConfig(flushCycles, faultBudget)
	cfg.Name = "sest-cdcl"
	cfg.ConflictLearning = true
	cfg.Backjump = true
	cfg.Restarts = true
	return cfg
}

// New builds a SEST-style engine for the circuit.
func New(c *netlist.Circuit, flushCycles int, faultBudget int64) (*atpg.Engine, error) {
	return atpg.New(c, DefaultConfig(flushCycles, faultBudget))
}
