package atpg

import (
	"reflect"
	"testing"
)

// runOutcomes runs one engine configuration over a circuit and returns
// the engine (for store inspection) and its result.
func runOutcomes(t *testing.T, states int, seed int64, mutate func(*Config)) (*Engine, *Result) {
	t.Helper()
	c := synthC(t, states, seed)
	cfg := defaultCfg()
	if mutate != nil {
		mutate(&cfg)
	}
	e, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return e, res
}

// TestSharedLearningVerdictInvariance: the justification cache — per
// fault, shared across faults, or shared with an aggressively tiny
// eviction cap — saves effort but must never change a fault's verdict
// under generous budgets. Every configuration must produce the exact
// same outcome for every fault.
func TestSharedLearningVerdictInvariance(t *testing.T) {
	type variant struct {
		name   string
		mutate func(*Config)
	}
	variants := []variant{
		{"learning", func(c *Config) { c.Learning = true }},
		{"shared", func(c *Config) { c.Learning = true; c.SharedLearning = true }},
		{"shared-tiny-cap", func(c *Config) { c.Learning = true; c.SharedLearning = true; c.LearnCap = 2 }},
	}
	for _, seed := range []int64{5, 9} {
		_, base := runOutcomes(t, 7, seed, nil)
		for _, v := range variants {
			_, res := runOutcomes(t, 7, seed, v.mutate)
			if !reflect.DeepEqual(res.Outcomes, base.Outcomes) {
				for i := range res.Outcomes {
					if res.Outcomes[i] != base.Outcomes[i] {
						t.Errorf("seed %d %s: fault %d verdict %v, baseline %v",
							seed, v.name, i, res.Outcomes[i], base.Outcomes[i])
					}
				}
			}
		}
	}
}

// TestObliviousSimByteIdentical: oblivious verification mode re-derives
// every window simulation with an uncharged full sweep on top of the
// charged incremental pass, so every observable — outcomes, tests,
// effort, backtracks, learning counters — must be byte-identical to
// plain incremental mode. This is the charge-identity property the
// incremental rewrite is pinned by.
func TestObliviousSimByteIdentical(t *testing.T) {
	mutate := func(obl bool) func(*Config) {
		return func(c *Config) {
			c.Learning = true
			c.SharedLearning = true
			c.ObliviousSim = obl
		}
	}
	_, inc := runOutcomes(t, 7, 5, mutate(false))
	_, obl := runOutcomes(t, 7, 5, mutate(true))
	if !reflect.DeepEqual(inc.Outcomes, obl.Outcomes) {
		t.Error("oblivious mode changed fault verdicts")
	}
	if !reflect.DeepEqual(inc.Tests, obl.Tests) {
		t.Error("oblivious mode changed the generated test set")
	}
	is, os := inc.Stats, obl.Stats
	if is.Effort != os.Effort {
		t.Errorf("oblivious mode effort %d, incremental %d", os.Effort, is.Effort)
	}
	if is.Backtracks != os.Backtracks {
		t.Errorf("oblivious mode backtracks %d, incremental %d", os.Backtracks, is.Backtracks)
	}
	if is.LearnHits != os.LearnHits || is.LearnPrunes != os.LearnPrunes {
		t.Errorf("oblivious mode learning counters (%d,%d), incremental (%d,%d)",
			os.LearnHits, os.LearnPrunes, is.LearnHits, is.LearnPrunes)
	}
	if is.Detected != os.Detected || is.Redundant != os.Redundant || is.Aborted != os.Aborted {
		t.Error("oblivious mode changed outcome counts")
	}
}

// TestSharedLearningCounters: the shared cache can only add reuse
// opportunities on top of per-fault learning, so its hit+prune total
// must not regress, and the run must still reach the same coverage bar
// as the plain learning engine.
func TestSharedLearningCounters(t *testing.T) {
	_, plain := runOutcomes(t, 7, 5, func(c *Config) { c.Learning = true })
	_, shared := runOutcomes(t, 7, 5, func(c *Config) { c.Learning = true; c.SharedLearning = true })
	pn := plain.Stats.LearnHits + plain.Stats.LearnPrunes
	sn := shared.Stats.LearnHits + shared.Stats.LearnPrunes
	t.Logf("plain hits+prunes=%d effort=%d; shared hits+prunes=%d effort=%d",
		pn, plain.Stats.Effort, sn, shared.Stats.Effort)
	if sn < pn {
		t.Errorf("shared cache reuse %d below per-fault learning's %d", sn, pn)
	}
	if shared.Stats.FE() < 95 {
		t.Errorf("shared learning FE %.1f%% too low", shared.Stats.FE())
	}
}

// TestLearnCapBoundsStores: with a tiny cap every learning store must
// actually stay bounded after the run (eviction happens at fault
// boundaries, so the post-run size is the post-eviction size).
func TestLearnCapBoundsStores(t *testing.T) {
	e, res := runOutcomes(t, 7, 5, func(c *Config) {
		c.Learning = true
		c.SharedLearning = true
		c.LearnCap = 2
	})
	if res.Stats.Detected == 0 {
		t.Fatal("no faults detected")
	}
	if n := len(e.achievedKeys); n > 2 {
		t.Errorf("achieved store holds %d entries, cap is 2", n)
	}
	if n := len(e.failedKeys); n > 2 {
		t.Errorf("failed-cube store holds %d entries, cap is 2", n)
	}
	if n := len(e.sharedFailedKeys); n > 2 {
		t.Errorf("shared failed-cube store holds %d entries, cap is 2", n)
	}
	if len(e.achieved) != len(e.achievedKeys) || len(e.failedCubes) != len(e.failedKeys) ||
		len(e.sharedFailed) != len(e.sharedFailedKeys) {
		t.Error("store maps and their key journals disagree in size")
	}
}

// TestSharedLearningRequiresLearning: SharedLearning without the base
// Learning flag is a configuration error, not a silent no-op.
func TestSharedLearningRequiresLearning(t *testing.T) {
	c := synthC(t, 7, 5)
	cfg := defaultCfg()
	cfg.SharedLearning = true
	if _, err := New(c, cfg); err == nil {
		t.Error("SharedLearning without Learning accepted")
	}
	cfg = defaultCfg()
	cfg.LearnCap = -1
	if _, err := New(c, cfg); err == nil {
		t.Error("negative LearnCap accepted")
	}
}
