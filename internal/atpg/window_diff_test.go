package atpg

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"seqatpg/internal/fault"
	"seqatpg/internal/netlist"
	"seqatpg/internal/sim"
)

// randWinCircuit generates a random sequential circuit for the window
// differential tests: a few primary inputs, DFFs rewired onto the
// combinational cloud for real feedback, a cloud of random bounded-fanin
// gates, and a few primary outputs.
func randWinCircuit(t *testing.T, rng *rand.Rand, trial int) *netlist.Circuit {
	t.Helper()
	c := netlist.New(fmt.Sprintf("wrnd%d", trial))
	var pool []int
	nPI := 2 + rng.Intn(3)
	for i := 0; i < nPI; i++ {
		pool = append(pool, c.AddGate(netlist.Input, fmt.Sprintf("i%d", i)))
	}
	var dffs []int
	nDFF := 1 + rng.Intn(4)
	for i := 0; i < nDFF; i++ {
		dffs = append(dffs, c.AddGate(netlist.DFF, fmt.Sprintf("q%d", i), pool[rng.Intn(len(pool))]))
	}
	pool = append(pool, dffs...)
	kinds := []netlist.GateType{
		netlist.And, netlist.Or, netlist.Nand, netlist.Nor,
		netlist.Xor, netlist.Xnor, netlist.Not, netlist.Buf,
	}
	nGates := 15 + rng.Intn(30)
	for i := 0; i < nGates; i++ {
		k := kinds[rng.Intn(len(kinds))]
		var width int
		switch k {
		case netlist.Not, netlist.Buf:
			width = 1
		case netlist.Xor, netlist.Xnor:
			width = 2
		default:
			width = 2 + rng.Intn(netlist.MaxFanin-1)
		}
		fanin := make([]int, width)
		for j := range fanin {
			fanin[j] = pool[rng.Intn(len(pool))]
		}
		pool = append(pool, c.AddGate(k, fmt.Sprintf("g%d", i), fanin...))
	}
	for _, d := range dffs {
		c.Gates[d].Fanin[0] = pool[len(pool)-1-rng.Intn(10)]
	}
	nPO := 1 + rng.Intn(3)
	for i := 0; i < nPO; i++ {
		c.AddGate(netlist.Output, fmt.Sprintf("o%d", i), pool[len(pool)-1-rng.Intn(len(pool)/2)])
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

// checkWindowsEqual compares every observable of two windows that the
// search reads: the full composite value array, the D-frontier (contents
// AND order — objective selection tie-breaks on first encounter), PO
// detection, the escaping last-frame effects, and the fault-line good
// value.
func checkWindowsEqual(t *testing.T, label string, got, want *window) {
	t.Helper()
	if !reflect.DeepEqual(got.vals, want.vals) {
		t.Fatalf("%s: window values diverge from full sweep", label)
	}
	gf, wf := got.dFrontier(), want.dFrontier()
	if len(gf) != len(wf) {
		t.Fatalf("%s: frontier size %d, full sweep has %d", label, len(gf), len(wf))
	}
	for i := range gf {
		if gf[i] != wf[i] {
			t.Fatalf("%s: frontier[%d] = %v, full sweep has %v", label, i, gf[i], wf[i])
		}
	}
	if got.detectedAtPO() != want.detectedAtPO() {
		t.Fatalf("%s: poDetected %v, full sweep %v", label, got.detectedAtPO(), want.detectedAtPO())
	}
	if !reflect.DeepEqual(got.poD, want.poD) {
		t.Fatalf("%s: per-PO detection flags diverge", label)
	}
	if got.dReachesLastState() != want.dReachesLastState() {
		t.Fatalf("%s: dLast %v, full sweep %v", label, got.dReachesLastState(), want.dReachesLastState())
	}
	if !reflect.DeepEqual(got.dLastD, want.dLastD) {
		t.Fatalf("%s: per-bit last-frame effect flags diverge", label)
	}
	if got.flt != nil && got.faultLineGood() != want.faultLineGood() {
		t.Fatalf("%s: faultLineGood %v, full sweep %v", label, got.faultLineGood(), want.faultLineGood())
	}
}

// traceOp is one PODEM-style probe: assign or retract one pseudo-input.
type traceOp struct {
	state bool // state bit vs primary input
	t, i  int
	v     sim.Val
}

// randTrace builds a random assignment/retraction trace. Retractions
// (assignments back to VX, mirroring PODEM backtracking) are generated
// by replaying an earlier op with VX.
func randTrace(rng *rand.Rand, k, nPI, nDFF, steps int) []traceOp {
	var ops []traceOp
	vals := []sim.Val{sim.V0, sim.V1, sim.VX}
	for len(ops) < steps {
		if len(ops) > 0 && rng.Intn(4) == 0 {
			// Retract a random earlier assignment.
			prev := ops[rng.Intn(len(ops))]
			prev.v = sim.VX
			ops = append(ops, prev)
			continue
		}
		op := traceOp{v: vals[rng.Intn(len(vals))]}
		if nDFF > 0 && rng.Intn(3) == 0 {
			op.state = true
			op.i = rng.Intn(nDFF)
		} else {
			op.t = rng.Intn(k)
			op.i = rng.Intn(nPI)
		}
		ops = append(ops, op)
	}
	return ops
}

func (op traceOp) apply(w *window) {
	if op.state {
		w.setState(op.i, op.v)
	} else {
		w.setPI(op.t, op.i, op.v)
	}
}

// TestWindowDifferential drives randomized circuits through random
// PODEM-style assignment/retraction traces and pins the incremental
// window against a from-scratch full sweep after every single probe:
// values, D-frontier (including order), PO detection, escaping effects,
// and fault-line good value must all be identical, for the faulted and
// the fault-free (justification-mode) window, across every fallback
// mode. The oblivious verification mode must additionally charge
// exactly the same effort as plain incremental mode.
func TestWindowDifferential(t *testing.T) {
	trials := 6
	steps := 60
	if testing.Short() {
		trials, steps = 2, 25
	}
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < trials; trial++ {
		c := randWinCircuit(t, rng, trial)
		order, err := c.TopoOrder()
		if err != nil {
			t.Fatal(err)
		}
		k := 2 + rng.Intn(4)
		universe := fault.FullUniverse(c)
		flts := []*fault.Fault{nil}
		for len(flts) < 4 {
			f := universe[rng.Intn(len(universe))]
			flts = append(flts, &f)
		}
		for fi, flt := range flts {
			trace := randTrace(rng, k, len(c.PIs), len(c.DFFs), steps)
			for _, fb := range []int{0, -1, 2} {
				inc := newWindow(c, order, k, flt)
				inc.fallbackEvals = fb
				obl := newWindow(c, order, k, flt)
				obl.fallbackEvals = fb
				obl.oblivious = true
				ref := newWindow(c, order, k, flt)

				// Fresh windows must charge exactly one full sweep.
				if got := inc.simulate(); got != k*len(order) {
					t.Fatalf("fresh window charged %d, want %d", got, k*len(order))
				}
				obl.simulate()
				ref.simulate()
				checkWindowsEqual(t, "fresh", inc, ref)

				total := 0
				for si, op := range trace {
					op.apply(inc)
					op.apply(obl)
					op.apply(ref)
					incEvals := inc.simulate()
					oblEvals := obl.simulate()
					ref.invalidate()
					ref.simulate()

					label := fmt.Sprintf("trial %d fault %d fb %d step %d", trial, fi, fb, si)
					checkWindowsEqual(t, label, inc, ref)
					checkWindowsEqual(t, label+" (oblivious)", obl, ref)
					if incEvals != oblEvals {
						t.Fatalf("%s: oblivious mode charged %d, incremental %d", label, oblEvals, incEvals)
					}
					if fb < 0 && incEvals > k*len(order) {
						t.Fatalf("%s: pure event-driven charged %d > one full sweep %d", label, incEvals, k*len(order))
					}
					if incEvals > 2*k*len(order) {
						t.Fatalf("%s: charged %d > fallback bound %d", label, incEvals, 2*k*len(order))
					}
					total += incEvals
				}
				// A quiesced window costs nothing to re-simulate.
				if got := inc.simulate(); got != 0 {
					t.Fatalf("quiesced window charged %d, want 0", got)
				}
				if total <= 0 {
					t.Fatalf("trace charged no effort at all")
				}
			}
		}
	}
}

// TestWindowRetractionSymmetry pins that retracting an assignment
// restores the exact pre-assignment window state (values and snapshot),
// the property PODEM's backtracking relies on.
func TestWindowRetractionSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := randWinCircuit(t, rng, 900)
	order, err := c.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	universe := fault.FullUniverse(c)
	f := universe[len(universe)/2]
	k := 3

	w := newWindow(c, order, k, &f)
	ref := newWindow(c, order, k, &f)
	w.simulate()
	ref.simulate()

	for step := 0; step < 30; step++ {
		op := randTrace(rng, k, len(c.PIs), len(c.DFFs), 1)[0]
		if op.v == sim.VX {
			continue
		}
		op.apply(w)
		w.simulate()
		op.v = sim.VX
		op.apply(w)
		w.simulate()
		checkWindowsEqual(t, fmt.Sprintf("step %d", step), w, ref)
	}
}
