package atpg

import (
	"testing"

	"seqatpg/internal/encode"
	"seqatpg/internal/fault"
	"seqatpg/internal/fsm"
	"seqatpg/internal/logic"
	"seqatpg/internal/netlist"
	"seqatpg/internal/sim"
	"seqatpg/internal/synth"
)

func TestRunFaultsEmptyList(t *testing.T) {
	c := synthC(t, 7, 5)
	e, err := New(c, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RunFaults(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Total != 0 || len(res.Tests) != 0 {
		t.Errorf("empty run produced %+v", res.Stats)
	}
	if res.Stats.FC() != 0 || res.Stats.FE() != 0 {
		t.Error("empty run coverage must be 0 (not NaN)")
	}
}

func TestFaultyFlushStateDiverges(t *testing.T) {
	// A stuck-at fault on the reset path makes the faulty machine flush
	// differently; the composite post-flush state must expose that.
	c := chain(t)
	e, err := New(c, Config{MaxFrames: 8, FaultBudget: 1_000_000, FlushCycles: 1})
	if err != nil {
		t.Fatal(err)
	}
	// nr = NOT(reset) is gate 2; nr stuck-at-1 defeats the reset gating.
	f := &fault.Fault{Gate: 2, Pin: -1, SA: sim.V1}
	st := e.faultyFlushState(f)
	if len(st) != 1 {
		t.Fatalf("state width %d", len(st))
	}
	// Good rail: reset=1 forces AND=0 -> state 0. Faulty rail: nr=1,
	// in=0 during flush -> AND(in=0, 1) = 0 too; both known.
	if st[0].G != sim.V0 {
		t.Errorf("good rail = %v, want 0", st[0].G)
	}
	// A fault NOT in the reset path leaves the rails in agreement.
	f2 := &fault.Fault{Gate: 5, Pin: -1, SA: sim.V1} // the output NOT
	st2 := e.faultyFlushState(f2)
	if st2[0].G != st2[0].F {
		t.Errorf("unrelated fault diverged the flush state: %+v", st2[0])
	}
}

func TestUnpackState(t *testing.T) {
	vals := unpackState(0b101, 3)
	want := []sim.Val{sim.V1, sim.V0, sim.V1}
	for i := range want {
		if vals[i] != want[i] {
			t.Errorf("bit %d = %v, want %v", i, vals[i], want[i])
		}
	}
}

func TestCompatible5(t *testing.T) {
	cube := []sim.Val{sim.V1, sim.VX}
	agree := []V5{{sim.V1, sim.V1}, {sim.V0, sim.V1}}
	if !compatible5(cube, agree) {
		t.Error("matching composite state rejected")
	}
	diverged := []V5{{sim.V1, sim.V0}, {sim.V0, sim.V0}}
	if compatible5(cube, diverged) {
		t.Error("diverged rail must not satisfy the cube")
	}
}

// TestRedundancyPrePassExtendedObs: a fault observable ONLY through the
// next-state lines must not be called redundant (the k=1 pre-pass sees
// state lines as observation points).
func TestRedundancyPrePassExtendedObs(t *testing.T) {
	// in -> AND(in, reset') -> DFF -> out. A fault on the AND is
	// observable only via the DFF (one frame later).
	c := netlist.New("obs")
	reset := c.AddGate(netlist.Input, "reset")
	c.ResetPI = reset
	in := c.AddGate(netlist.Input, "in")
	nr := c.AddGate(netlist.Not, "nr", reset)
	a := c.AddGate(netlist.And, "a", in, nr)
	ff := c.AddGate(netlist.DFF, "q", a)
	c.AddGate(netlist.Output, "o", ff)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	e, err := New(c, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RunFaults([]fault.Fault{{Gate: a, Pin: -1, SA: sim.V0}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Redundant != 0 {
		t.Error("state-observable fault misclassified as redundant")
	}
	if res.Stats.Detected != 1 {
		t.Errorf("fault should be detected across two frames: %+v", res.Stats)
	}
}

func TestStatsPercentages(t *testing.T) {
	s := Stats{Total: 200, Detected: 150, Redundant: 30}
	if s.FC() != 75 {
		t.Errorf("FC = %v", s.FC())
	}
	if s.FE() != 90 {
		t.Errorf("FE = %v", s.FE())
	}
}

func TestOutcomesParallelToFaults(t *testing.T) {
	c := synthC(t, 7, 5)
	e, err := New(c, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.CollapsedUniverse(c)[:30]
	res, err := e.RunFaults(faults)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != len(faults) {
		t.Fatalf("outcomes length %d, want %d", len(res.Outcomes), len(faults))
	}
	counts := map[Outcome]int{}
	for _, o := range res.Outcomes {
		counts[o]++
	}
	if counts[Detected] != res.Stats.Detected ||
		counts[Redundant] != res.Stats.Redundant ||
		counts[Aborted] != res.Stats.Aborted {
		t.Errorf("outcome counts %v disagree with stats %+v", counts, res.Stats)
	}
}

func TestOutcomeString(t *testing.T) {
	if Detected.String() != "detected" || Redundant.String() != "redundant" || Aborted.String() != "aborted" {
		t.Error("Outcome strings wrong")
	}
}

func TestLearningStatsRecorded(t *testing.T) {
	c := synthC(t, 9, 12)
	cfg := defaultCfg()
	cfg.Learning = true
	e, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.LearnHits == 0 && res.Stats.LearnPrunes == 0 {
		t.Log("no learning activity on this circuit (acceptable but unusual)")
	}
}

// TestRelaxedJustifyRecoversFaults: on the quickstart sequence detector
// there is at least one testable fault whose setup sequence perturbs
// the faulty machine's state, which the strict composite justification
// rejects. Relaxed justification (good-machine setup + fault-simulation
// confirmation) must recover it without ever overstating coverage.
func TestRelaxedJustifyRecoversFaults(t *testing.T) {
	c := det110(t)
	run := func(relaxed bool) Stats {
		cfg := defaultCfg()
		cfg.RelaxedJustify = relaxed
		e, err := New(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats
	}
	strict := run(false)
	relaxed := run(true)
	if relaxed.Detected < strict.Detected {
		t.Errorf("relaxed detected %d < strict %d", relaxed.Detected, strict.Detected)
	}
	if relaxed.Detected == strict.Detected {
		t.Logf("no recovery on this circuit (strict=%d relaxed=%d)", strict.Detected, relaxed.Detected)
	} else {
		t.Logf("relaxed justification recovered %d faults (%d -> %d of %d)",
			relaxed.Detected-strict.Detected, strict.Detected, relaxed.Detected, relaxed.Total)
	}
	if relaxed.Unconfirmed > 0 {
		t.Logf("confirmation filtered %d relaxed candidates (soundness intact)", relaxed.Unconfirmed)
	}
}

// det110 is the quickstart sequence detector, synthesized.
func det110(t *testing.T) *netlist.Circuit {
	t.Helper()
	m := &fsm.FSM{Name: "det110", NumInputs: 1, NumOutputs: 1,
		States: []string{"idle", "got1", "got11", "fire"}, Reset: 0}
	add := func(in string, from, to int, out string) {
		m.Trans = append(m.Trans, fsm.Transition{
			Input: logic.MustParseCube(in), From: from, To: to,
			Output: logic.MustParseCube(out)})
	}
	add("0", 0, 0, "0")
	add("1", 0, 1, "0")
	add("0", 1, 0, "0")
	add("1", 1, 2, "0")
	add("0", 2, 3, "1")
	add("1", 2, 2, "0")
	add("0", 3, 0, "0")
	add("1", 3, 1, "0")
	r, err := synth.Synthesize(m, synth.Options{
		Algorithm: encode.Combined, Script: synth.Rugged, UseUnreachableDC: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r.Circuit
}
