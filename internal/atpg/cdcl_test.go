package atpg

import (
	"reflect"
	"testing"

	"seqatpg/internal/fault"
	"seqatpg/internal/sim"
)

// cdclModes is the knob ladder the verdict-invariance matrix walks:
// each step turns on one more piece of the conflict-driven machinery.
var cdclModes = []struct {
	name   string
	mutate func(*Config)
}{
	{"off", func(c *Config) {}},
	{"cubes-only", func(c *Config) { c.ConflictLearning = true }},
	{"backjump", func(c *Config) { c.ConflictLearning = true; c.Backjump = true }},
	{"restarts", func(c *Config) {
		c.ConflictLearning = true
		c.Backjump = true
		c.Restarts = true
	}},
	{"full-shared", func(c *Config) {
		c.Learning = true
		c.SharedLearning = true
		c.ConflictLearning = true
		c.Backjump = true
		c.Restarts = true
	}},
}

// TestCdclVerdictInvariance: learned cubes only ever cover refuted
// assignment regions and restarts only permute enumeration order, so
// under generous budgets every knob combination must produce exactly
// the verdicts of the non-learning baseline, fault by fault.
func TestCdclVerdictInvariance(t *testing.T) {
	seeds := []int64{5, 9}
	cap := 48
	if testing.Short() {
		seeds, cap = seeds[:1], 24
	}
	for _, seed := range seeds {
		c := synthC(t, 7, seed)
		faults := fault.CollapsedUniverse(c)
		if len(faults) > cap {
			faults = faults[:cap]
		}
		var ref []Outcome
		for _, m := range cdclModes {
			cfg := defaultCfg()
			m.mutate(&cfg)
			e, err := New(c, cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := e.RunFaults(faults)
			if err != nil {
				t.Fatal(err)
			}
			if m.name == "off" {
				ref = res.Outcomes
				continue
			}
			if !reflect.DeepEqual(res.Outcomes, ref) {
				t.Errorf("seed %d: mode %s verdicts diverge from baseline", seed, m.name)
			}
			if m.name == "cubes-only" && (res.Stats.Backjumps != 0 || res.Stats.Restarts != 0) {
				t.Errorf("seed %d: cubes-only counted %d backjumps, %d restarts",
					seed, res.Stats.Backjumps, res.Stats.Restarts)
			}
		}
	}
}

// TestCdclEffortNotWorse pins the perf claim behind the sest-cdcl
// preset on the circuit the matrix uses: with backjumping on, the
// charged gate evaluations must not exceed the baseline's — every cube
// conflict resolved pre-simulation is a simulation the baseline paid
// for.
func TestCdclEffortNotWorse(t *testing.T) {
	c := synthC(t, 7, 5)
	faults := fault.CollapsedUniverse(c)
	cap := 48
	if testing.Short() {
		cap = 24
	}
	if len(faults) > cap {
		faults = faults[:cap]
	}
	run := func(mutate func(*Config)) *Result {
		cfg := defaultCfg()
		mutate(&cfg)
		e, err := New(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.RunFaults(faults)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(func(c *Config) {})
	cdcl := run(func(c *Config) { c.ConflictLearning = true; c.Backjump = true })
	if cdcl.Stats.Effort > base.Stats.Effort {
		t.Errorf("backjump mode charged %d gate evals, baseline %d", cdcl.Stats.Effort, base.Stats.Effort)
	}
	if cdcl.Stats.LearnedCubes == 0 {
		t.Error("backjump mode learned no cubes on a circuit with conflicts")
	}
}

// TestCdclCubeReplay is the differential soundness check for the
// conflict analyzer: every learned cube, replayed alone on a fresh
// window of the same geometry and fault, must force the refuting line
// to the value the analyzer claimed. A cube that does not reproduce its
// conflict would prune regions that were never refuted.
func TestCdclCubeReplay(t *testing.T) {
	c := synthC(t, 7, 5)
	order, err := c.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.CollapsedUniverse(c)
	cap := 12
	if testing.Short() {
		cap = 6
	}
	if len(faults) > cap {
		faults = faults[:cap]
	}
	replayed := 0
	for fi := range faults {
		f := faults[fi]
		cfg := defaultCfg()
		cfg.Learning = true
		cfg.SharedLearning = true
		cfg.ConflictLearning = true
		cfg.Backjump = true
		cfg.Restarts = true
		e, err := New(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var recs []CubeRecord
		e.TestCubeHook = func(rec CubeRecord) {
			if len(recs) < 64 {
				recs = append(recs, rec)
			}
		}
		if _, err := e.RunFaults(faults[fi : fi+1]); err != nil {
			t.Fatal(err)
		}
		for ri, rec := range recs {
			w := newWindow(c, order, rec.K, &f)
			for _, l := range rec.Lits {
				if l.IsState {
					w.setState(l.Index, l.Val)
				} else {
					w.setPI(l.Frame, l.Index, l.Val)
				}
			}
			w.simulate()
			if got := railVal(w, rec.OnF, rec.Frame, rec.Gate); got != rec.Val {
				t.Errorf("fault %v cube %d: replay of %d lits on frame %d gate %d (onF=%v) gives %v, analyzer claimed %v",
					f, ri, len(rec.Lits), rec.Frame, rec.Gate, rec.OnF, got, rec.Val)
			}
			replayed++
		}
	}
	if replayed == 0 {
		t.Fatal("no learned cubes were replayed; the differential check did not run")
	}
	t.Logf("replayed %d learned cubes", replayed)
}

// TestCdclValidate pins the knob dependency chain.
func TestCdclValidate(t *testing.T) {
	cfg := defaultCfg()
	cfg.Backjump = true
	if err := cfg.Validate(); err == nil {
		t.Error("Backjump without ConflictLearning validated")
	}
	cfg = defaultCfg()
	cfg.ConflictLearning = true
	cfg.Restarts = true
	if err := cfg.Validate(); err == nil {
		t.Error("Restarts without Backjump validated")
	}
	cfg = defaultCfg()
	cfg.ConflictLearning = true
	cfg.Backjump = true
	cfg.Restarts = true
	if err := cfg.Validate(); err != nil {
		t.Errorf("full conflict-driven config rejected: %v", err)
	}
}

// TestLemmaStoreSnapshotRoundTrip: the shared lemma store must survive
// a Snapshot/restore cycle verbatim, in insertion order, with the dedup
// index rebuilt.
func TestLemmaStoreSnapshotRoundTrip(t *testing.T) {
	c := synthC(t, 7, 5)
	cfg := defaultCfg()
	cfg.Learning = true
	cfg.SharedLearning = true
	cfg.ConflictLearning = true
	cfg.Backjump = true
	e, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.publishLemma(LearnedCube{Cube: "01X", Bit: 2, Val: sim.V1})
	e.publishLemma(LearnedCube{Cube: "X10", Bit: 0, Val: sim.V0})
	e.publishLemma(LearnedCube{Cube: "01X", Bit: 2, Val: sim.V1}) // dup
	if len(e.lemmaList) != 2 {
		t.Fatalf("lemma journal holds %d entries, want 2", len(e.lemmaList))
	}
	rs := &runLoopState{status: make([]byte, 3), tests: make([][][]sim.Val, 0)}
	snap := e.buildSnapshot(rs)
	e2, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rs2 := &runLoopState{}
	if err := e2.restoreSnapshot(snap, rs2, 3); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(e2.lemmaList, e.lemmaList) {
		t.Errorf("lemma journal round-tripped as %v, want %v", e2.lemmaList, e.lemmaList)
	}
	if !e2.lemmas[lemmaKey(LearnedCube{Cube: "X10", Bit: 0, Val: sim.V0})] {
		t.Error("lemma dedup index was not rebuilt on restore")
	}
}
