package atpg

import "testing"

// TestFsimPasses pins the fault-simulation effort unit to exactly
// ceil(n/63). The boundary case n = 63 regressed once (len/63 + 1
// charged two passes for a single 63-fault batch), so every word
// boundary is spelled out.
func TestFsimPasses(t *testing.T) {
	cases := []struct {
		n    int
		want int64
	}{
		{0, 0},
		{1, 1},
		{62, 1},
		{63, 1},
		{64, 2},
		{126, 2},
		{127, 3},
		{63 * 10, 10},
	}
	for _, tc := range cases {
		if got := fsimPasses(tc.n); got != tc.want {
			t.Errorf("fsimPasses(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}
