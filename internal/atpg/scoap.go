package atpg

import "seqatpg/internal/netlist"

// SCOAP holds SCOAP-style combinational controllability estimates:
// CC0[g]/CC1[g] approximate the effort to set gate g to 0/1. Sequential
// elements contribute a fixed penalty, so values deeper behind
// flip-flops look harder — the testability measure HITEC-class
// generators use for backtrace guidance and internal/predict feeds into
// per-fault cost prediction.
type SCOAP struct {
	CC0, CC1 []int
	// Converged reports whether the fixpoint settled within the pass
	// budget. On a cyclic graph the iteration only ever lowers values,
	// so an unconverged result is still a sound upper bound — but a
	// stale one, and consumers ranking faults by it should discount it.
	Converged bool
	// Passes is how many fixpoint passes actually ran.
	Passes int
}

const (
	// SeqPenalty is the controllability surcharge per DFF crossed —
	// the knob that makes state bits behind long register chains
	// (retimed circuits, the paper's hard case) look expensive.
	SeqPenalty = 20
	// CCCap saturates controllability sums; a value at CCCap means
	// "effectively uncontrollable" (e.g. behind a constant).
	CCCap = 1 << 20

	// defaultSCOAPPasses is the pass budget the engine's backtrace
	// uses. Feedback paths through DFFs converge in a handful of
	// passes on real circuits; backtrace only needs relative order, so
	// a stale bound is acceptable there.
	defaultSCOAPPasses = 8
)

// computeSCOAP is the engine-internal entry point, keeping the historic
// default pass budget for backtrace guidance.
func computeSCOAP(c *netlist.Circuit) *SCOAP {
	return ComputeSCOAP(c, defaultSCOAPPasses)
}

// ComputeSCOAP iterates the controllability fixpoint over the (cyclic)
// gate graph with an explicit pass budget. maxPasses <= 0 selects the
// default budget. Values only decrease, so each pass is a monotone
// refinement; the result reports whether it settled (Converged) so
// callers that care about absolute magnitudes — not just backtrace
// order — can discount stale measures.
func ComputeSCOAP(c *netlist.Circuit, maxPasses int) *SCOAP {
	if maxPasses <= 0 {
		maxPasses = defaultSCOAPPasses
	}
	n := len(c.Gates)
	s := &SCOAP{CC0: make([]int, n), CC1: make([]int, n)}
	for i := range s.CC0 {
		s.CC0[i] = CCCap
		s.CC1[i] = CCCap
	}
	order, _ := c.TopoOrder()
	for pass := 0; pass < maxPasses; pass++ {
		changed := false
		for _, id := range order {
			g := c.Gates[id]
			var c0, c1 int
			switch g.Type {
			case netlist.Input:
				c0, c1 = 1, 1
			case netlist.Const0:
				c0, c1 = 0, CCCap
			case netlist.Const1:
				c0, c1 = CCCap, 0
			case netlist.DFF:
				c0 = capAdd(s.CC0[g.Fanin[0]], SeqPenalty)
				c1 = capAdd(s.CC1[g.Fanin[0]], SeqPenalty)
			case netlist.Buf, netlist.Output:
				c0 = capAdd(s.CC0[g.Fanin[0]], 1)
				c1 = capAdd(s.CC1[g.Fanin[0]], 1)
			case netlist.Not:
				c0 = capAdd(s.CC1[g.Fanin[0]], 1)
				c1 = capAdd(s.CC0[g.Fanin[0]], 1)
			case netlist.And, netlist.Nand, netlist.Or, netlist.Nor:
				ctrl, inv, _ := controlling(g.Type)
				// Output at "controlled" level: cheapest single input at
				// the controlling value. Output at the other level: all
				// inputs at non-controlling values.
				minCtrl, sumNon := CCCap, 1
				for _, f := range g.Fanin {
					cCtrl, cNon := s.CC0[f], s.CC1[f]
					if ctrl != 0 { // controlling value is 1
						cCtrl, cNon = s.CC1[f], s.CC0[f]
					}
					if cCtrl < minCtrl {
						minCtrl = cCtrl
					}
					sumNon = capAdd(sumNon, cNon)
				}
				controlled := capAdd(minCtrl, 1)
				if (ctrl == 0) != inv { // AND: controlled level is 0
					c0, c1 = controlled, sumNon
				} else {
					c0, c1 = sumNon, controlled
				}
			case netlist.Xor, netlist.Xnor:
				a, b := g.Fanin[0], g.Fanin[1]
				even := minInt(capAdd(s.CC0[a], s.CC0[b]), capAdd(s.CC1[a], s.CC1[b]))
				odd := minInt(capAdd(s.CC0[a], s.CC1[b]), capAdd(s.CC1[a], s.CC0[b]))
				even = capAdd(even, 1)
				odd = capAdd(odd, 1)
				if g.Type == netlist.Xor {
					c0, c1 = even, odd
				} else {
					c0, c1 = odd, even
				}
			}
			if c0 < s.CC0[id] {
				s.CC0[id] = c0
				changed = true
			}
			if c1 < s.CC1[id] {
				s.CC1[id] = c1
				changed = true
			}
		}
		s.Passes = pass + 1
		if !changed {
			s.Converged = true
			break
		}
	}
	return s
}

// cost returns the controllability estimate for setting gate g to v.
func (s *SCOAP) cost(g int, v bool) int {
	if v {
		return s.CC1[g]
	}
	return s.CC0[g]
}

// ObserveDistance approximates per-gate structural observability: the
// fanout-edge distance from each gate to the nearest primary output,
// CCCap where no PO is reachable. It is the same measure the engine's
// D-frontier ordering uses, exported so internal/predict can combine it
// with controllability into per-fault features.
func ObserveDistance(c *netlist.Circuit) []int {
	return computeObsDist(c)
}

func capAdd(a, b int) int {
	c := a + b
	if c > CCCap {
		return CCCap
	}
	return c
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
