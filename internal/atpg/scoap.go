package atpg

import "seqatpg/internal/netlist"

// scoap holds SCOAP-style combinational controllability estimates used
// to guide backtrace decisions: cc0[g]/cc1[g] approximate the effort to
// set gate g to 0/1. Sequential elements contribute a fixed penalty, so
// values deeper behind flip-flops look harder — the testability measure
// HITEC-class generators use.
type scoap struct {
	cc0, cc1 []int
}

const (
	seqPenalty = 20
	ccCap      = 1 << 20
)

func computeSCOAP(c *netlist.Circuit) *scoap {
	n := len(c.Gates)
	s := &scoap{cc0: make([]int, n), cc1: make([]int, n)}
	for i := range s.cc0 {
		s.cc0[i] = ccCap
		s.cc1[i] = ccCap
	}
	// Iterate to fixpoint over the cyclic graph (values only decrease).
	order, _ := c.TopoOrder()
	for pass := 0; pass < 8; pass++ {
		changed := false
		for _, id := range order {
			g := c.Gates[id]
			var c0, c1 int
			switch g.Type {
			case netlist.Input:
				c0, c1 = 1, 1
			case netlist.Const0:
				c0, c1 = 0, ccCap
			case netlist.Const1:
				c0, c1 = ccCap, 0
			case netlist.DFF:
				c0 = capAdd(s.cc0[g.Fanin[0]], seqPenalty)
				c1 = capAdd(s.cc1[g.Fanin[0]], seqPenalty)
			case netlist.Buf, netlist.Output:
				c0 = capAdd(s.cc0[g.Fanin[0]], 1)
				c1 = capAdd(s.cc1[g.Fanin[0]], 1)
			case netlist.Not:
				c0 = capAdd(s.cc1[g.Fanin[0]], 1)
				c1 = capAdd(s.cc0[g.Fanin[0]], 1)
			case netlist.And, netlist.Nand, netlist.Or, netlist.Nor:
				ctrl, inv, _ := controlling(g.Type)
				// Output at "controlled" level: cheapest single input at
				// the controlling value. Output at the other level: all
				// inputs at non-controlling values.
				minCtrl, sumNon := ccCap, 1
				for _, f := range g.Fanin {
					cCtrl, cNon := s.cc0[f], s.cc1[f]
					if ctrl != 0 { // controlling value is 1
						cCtrl, cNon = s.cc1[f], s.cc0[f]
					}
					if cCtrl < minCtrl {
						minCtrl = cCtrl
					}
					sumNon = capAdd(sumNon, cNon)
				}
				controlled := capAdd(minCtrl, 1)
				if (ctrl == 0) != inv { // AND: controlled level is 0
					c0, c1 = controlled, sumNon
				} else {
					c0, c1 = sumNon, controlled
				}
			case netlist.Xor, netlist.Xnor:
				a, b := g.Fanin[0], g.Fanin[1]
				even := minInt(capAdd(s.cc0[a], s.cc0[b]), capAdd(s.cc1[a], s.cc1[b]))
				odd := minInt(capAdd(s.cc0[a], s.cc1[b]), capAdd(s.cc1[a], s.cc0[b]))
				even = capAdd(even, 1)
				odd = capAdd(odd, 1)
				if g.Type == netlist.Xor {
					c0, c1 = even, odd
				} else {
					c0, c1 = odd, even
				}
			}
			if c0 < s.cc0[id] {
				s.cc0[id] = c0
				changed = true
			}
			if c1 < s.cc1[id] {
				s.cc1[id] = c1
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return s
}

// cost returns the controllability estimate for setting gate g to v.
func (s *scoap) cost(g int, v bool) int {
	if v {
		return s.cc1[g]
	}
	return s.cc0[g]
}

func capAdd(a, b int) int {
	c := a + b
	if c > ccCap {
		return ccCap
	}
	return c
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
