package attest

import "testing"

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig(2, 500_000)
	if cfg.Name != "attest" {
		t.Errorf("name = %q", cfg.Name)
	}
	if cfg.RandomSequences == 0 || cfg.RandomLength == 0 {
		t.Error("Attest preset must include a random preprocessing phase")
	}
	if cfg.Learning {
		t.Error("Attest preset must not enable learning")
	}
	if cfg.FlushCycles != 2 || cfg.FaultBudget != 500_000 {
		t.Error("parameters not threaded through")
	}
}
