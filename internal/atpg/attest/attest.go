// Package attest configures the shared ATPG core in the style of the
// Attest TDX tool as used in the reproduced paper: a simulation-
// enhanced generator with a substantial random-pattern preprocessing
// phase followed by a deterministic pass with tighter abort limits.
// The paper uses Attest only to confirm that the retiming effect is not
// an artifact of one engine's heuristics; the same role is played here.
package attest

import (
	"seqatpg/internal/atpg"
	"seqatpg/internal/netlist"
)

// DefaultConfig returns the Attest-style configuration. faultBudget is
// the per-fault effort allowance in gate evaluations.
func DefaultConfig(flushCycles int, faultBudget int64) atpg.Config {
	return atpg.Config{
		Name:            "attest",
		MaxFrames:       6,
		MaxBackSteps:    24,
		BacktrackLimit:  800,
		FaultBudget:     faultBudget,
		FlushCycles:     flushCycles,
		RandomSequences: 10,
		RandomLength:    20,
		Seed:            1995,
	}
}

// New builds an Attest-style engine for the circuit.
func New(c *netlist.Circuit, flushCycles int, faultBudget int64) (*atpg.Engine, error) {
	return atpg.New(c, DefaultConfig(flushCycles, faultBudget))
}
