package atpg

import (
	"testing"

	"seqatpg/internal/netlist"
)

// feedback builds a circuit whose controllability fixpoint needs more
// than one pass: a DFF loop where the register's driver reads the
// register's own output, so values flow around the cycle one pass at a
// time.
func feedback(t *testing.T) *netlist.Circuit {
	t.Helper()
	c := netlist.New("fb")
	in := c.AddGate(netlist.Input, "in")
	// Reserve the DFF id first so the XOR can reference it.
	d := c.AddGate(netlist.DFF, "d")
	x := c.AddGate(netlist.Xor, "x", in, d)
	c.Gates[d].Fanin = []int{x}
	c.AddGate(netlist.Output, "out", d)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestComputeSCOAPConvergence pins the satellite-fix contract: the pass
// budget is a real parameter, non-convergence is detected instead of
// silently truncated, and a truncated run is a sound (only looser)
// bound on the converged values.
func TestComputeSCOAPConvergence(t *testing.T) {
	c := feedback(t)

	full := ComputeSCOAP(c, 0)
	if !full.Converged {
		t.Fatalf("default budget did not converge on a 4-gate loop (passes=%d)", full.Passes)
	}
	if full.Passes < 2 {
		t.Fatalf("feedback circuit converged in %d pass(es); the loop is not exercising the fixpoint", full.Passes)
	}

	trunc := ComputeSCOAP(c, 1)
	if trunc.Converged {
		t.Error("1-pass budget reported converged on a circuit that needs more")
	}
	if trunc.Passes != 1 {
		t.Errorf("truncated run reports %d passes, want 1", trunc.Passes)
	}
	for g := range full.CC0 {
		if trunc.CC0[g] < full.CC0[g] || trunc.CC1[g] < full.CC1[g] {
			t.Fatalf("gate %d: truncated measures (%d/%d) below converged (%d/%d) — refinement is not monotone",
				g, trunc.CC0[g], trunc.CC1[g], full.CC0[g], full.CC1[g])
		}
	}

	// A converged run is a fixpoint: more budget changes nothing.
	more := ComputeSCOAP(c, 64)
	if !more.Converged || more.Passes != full.Passes {
		t.Errorf("extra budget changed convergence: passes %d vs %d", more.Passes, full.Passes)
	}
	for g := range full.CC0 {
		if more.CC0[g] != full.CC0[g] || more.CC1[g] != full.CC1[g] {
			t.Fatalf("gate %d: converged values not stable under a larger budget", g)
		}
	}
}

// TestObserveDistance sanity-checks the exported observability proxy.
func TestObserveDistance(t *testing.T) {
	c := feedback(t)
	d := ObserveDistance(c)
	out := 3 // Output gate id from feedback()
	if d[out] != 0 {
		t.Errorf("PO distance %d, want 0", d[out])
	}
	if d[1] >= CCCap || d[0] >= CCCap {
		t.Error("gates feeding the PO report unreachable")
	}
}
