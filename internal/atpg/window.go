package atpg

import (
	"seqatpg/internal/fault"
	"seqatpg/internal/netlist"
	"seqatpg/internal/sim"
)

// window is an iterative-array view of the circuit: k copies of the
// combinational logic chained through the flip-flops. Frame-0 state
// bits are free pseudo-inputs (to be justified later); the target fault
// (if any) is injected in every frame, as a permanent stuck-at defect
// is present in every time frame.
type window struct {
	c     *netlist.Circuit
	order []int
	k     int
	flt   *fault.Fault // nil in justification mode

	piVals    [][]sim.Val // [frame][pi] assigned values; VX = unassigned
	stateVals []sim.Val   // frame-0 pseudo-input state; VX = unassigned
	vals      [][]V5      // [frame][gate] composite values

	dffIdx map[int]int // gate id -> state bit position
	piIdx  map[int]int // gate id -> PI position

	// Post-simulation snapshot, refreshed by simulate(): the problem
	// callbacks read these instead of rescanning the window.
	poDetected bool
	frontier   []frontierEntry
	dLast      bool
	lineGood   sim.Val
}

type frontierEntry struct{ t, id int }

func newWindow(c *netlist.Circuit, order []int, k int, flt *fault.Fault) *window {
	w := &window{
		c:      c,
		order:  order,
		k:      k,
		flt:    flt,
		dffIdx: map[int]int{},
		piIdx:  map[int]int{},
	}
	for i, id := range c.DFFs {
		w.dffIdx[id] = i
	}
	for i, id := range c.PIs {
		w.piIdx[id] = i
	}
	w.piVals = make([][]sim.Val, k)
	for t := range w.piVals {
		w.piVals[t] = make([]sim.Val, len(c.PIs))
		for i := range w.piVals[t] {
			w.piVals[t][i] = sim.VX
		}
	}
	w.stateVals = make([]sim.Val, len(c.DFFs))
	for i := range w.stateVals {
		w.stateVals[i] = sim.VX
	}
	w.vals = make([][]V5, k)
	for t := range w.vals {
		w.vals[t] = make([]V5, len(c.Gates))
	}
	return w
}

// faninVal returns the composite value gate id sees on fanin pin at
// frame t, with branch-fault injection applied.
func (w *window) faninVal(t, id, pin int) V5 {
	v := w.vals[t][w.c.Gates[id].Fanin[pin]]
	if w.flt != nil && w.flt.Pin == pin && w.flt.Gate == id {
		v.F = w.flt.SA
	}
	return v
}

// simulate recomputes the window from the current pseudo-input
// assignments and returns the number of frames evaluated (the effort
// charge). While the fault is not yet excitable at frame 0 (the fault
// line's good value is X or equals the stuck value), no fault effect
// can exist anywhere and none of the later frames are consulted by the
// search, so only frame 0 is evaluated — a large saving during the
// excitation phase of deep windows.
func (w *window) simulate() int {
	w.evalFrame(0)
	if w.flt != nil {
		lg := w.faultLineGoodRaw()
		if lg == sim.VX || lg == w.flt.SA {
			w.lineGood = lg
			w.poDetected = false
			w.frontier = w.frontier[:0]
			w.dLast = false
			return 1
		}
	}
	for t := 1; t < w.k; t++ {
		w.evalFrame(t)
	}
	w.refresh()
	return w.k
}

// evalFrame evaluates one frame; the inner loop is allocation-free —
// both rails are folded directly over the fanins.
func (w *window) evalFrame(frame int) {
	faultGate, faultPin := -1, -1
	var faultSA sim.Val
	if w.flt != nil {
		faultGate, faultPin, faultSA = w.flt.Gate, w.flt.Pin, w.flt.SA
	}
	for t := frame; t <= frame; t++ {
		vals := w.vals[t]
		for _, id := range w.order {
			g := &w.c.Gates[id]
			var v V5
			switch g.Type {
			case netlist.Input:
				v = vBoth(w.piVals[t][w.piIdx[id]])
			case netlist.DFF:
				if t == 0 {
					v = vBoth(w.stateVals[w.dffIdx[id]])
				} else {
					v = w.vals[t-1][g.Fanin[0]]
					if id == faultGate && faultPin == 0 {
						v.F = faultSA
					}
				}
			case netlist.Const0:
				v = vBoth(sim.V0)
			case netlist.Const1:
				v = vBoth(sim.V1)
			case netlist.Buf, netlist.Output:
				v = vals[g.Fanin[0]]
				if id == faultGate && faultPin == 0 {
					v.F = faultSA
				}
			case netlist.Not:
				v = vals[g.Fanin[0]]
				if id == faultGate && faultPin == 0 {
					v.F = faultSA
				}
				v = V5{sim.NotV(v.G), sim.NotV(v.F)}
			case netlist.And, netlist.Nand, netlist.Or, netlist.Nor:
				// Fold both rails. ctrl is the controlling value.
				ctrl := sim.V0
				if g.Type == netlist.Or || g.Type == netlist.Nor {
					ctrl = sim.V1
				}
				gAcc, fAcc := sim.NotV(ctrl), sim.NotV(ctrl)
				gSawX, fSawX := false, false
				for pin, f := range g.Fanin {
					in := vals[f]
					if id == faultGate && pin == faultPin {
						in.F = faultSA
					}
					if in.G == ctrl {
						gAcc = ctrl
					} else if in.G == sim.VX {
						gSawX = true
					}
					if in.F == ctrl {
						fAcc = ctrl
					} else if in.F == sim.VX {
						fSawX = true
					}
				}
				if gAcc != ctrl && gSawX {
					gAcc = sim.VX
				}
				if fAcc != ctrl && fSawX {
					fAcc = sim.VX
				}
				if g.Type == netlist.Nand || g.Type == netlist.Nor {
					gAcc, fAcc = sim.NotV(gAcc), sim.NotV(fAcc)
				}
				v = V5{gAcc, fAcc}
			case netlist.Xor, netlist.Xnor:
				gAcc, fAcc := sim.V0, sim.V0
				for pin, f := range g.Fanin {
					in := vals[f]
					if id == faultGate && pin == faultPin {
						in.F = faultSA
					}
					gAcc = sim.XorV(gAcc, in.G)
					fAcc = sim.XorV(fAcc, in.F)
				}
				if g.Type == netlist.Xnor {
					gAcc, fAcc = sim.NotV(gAcc), sim.NotV(fAcc)
				}
				v = V5{gAcc, fAcc}
			}
			// Stem fault injection.
			if id == faultGate && faultPin < 0 {
				v.F = faultSA
			}
			vals[id] = v
		}
	}
}

// refresh recomputes the post-simulation snapshot.
func (w *window) refresh() {
	w.poDetected = false
	w.frontier = w.frontier[:0]
	w.dLast = false
	if w.flt == nil {
		return
	}
	w.lineGood = w.faultLineGoodRaw()
	for t := 0; t < w.k; t++ {
		for _, id := range w.c.POs {
			if w.vals[t][id].isD() {
				w.poDetected = true
			}
		}
		for _, id := range w.order {
			g := w.c.Gates[id]
			if g.Type == netlist.Input || g.Type == netlist.DFF ||
				g.Type == netlist.Const0 || g.Type == netlist.Const1 {
				continue
			}
			if w.vals[t][id].known() {
				continue
			}
			for pin := range g.Fanin {
				if w.faninVal(t, id, pin).isD() {
					w.frontier = append(w.frontier, frontierEntry{t, id})
					break
				}
			}
		}
	}
	t := w.k - 1
	for _, id := range w.c.DFFs {
		if w.faninValAt(t, id, 0).isD() {
			w.dLast = true
			break
		}
	}
}

// faninValAt is faninVal for a specific frame (used for the DFF D line
// crossing from frame t-1 into frame t).
func (w *window) faninValAt(t, id, pin int) V5 {
	v := w.vals[t][w.c.Gates[id].Fanin[pin]]
	if w.flt != nil && w.flt.Pin == pin && w.flt.Gate == id {
		v.F = w.flt.SA
	}
	return v
}

// detectedAtPO reports whether any primary output in any frame exposes
// the fault (snapshot from the last simulation).
func (w *window) detectedAtPO() bool { return w.poDetected }

// dFrontier returns the (frame, gate) pairs whose output is not fully
// known but which see a developed fault effect on at least one fanin
// (snapshot from the last simulation).
func (w *window) dFrontier() []frontierEntry { return w.frontier }

// dReachesLastState reports whether a developed fault effect sits on a
// DFF D line of the last frame — the effect would escape the window
// into a later time frame (snapshot from the last simulation).
func (w *window) dReachesLastState() bool { return w.dLast }

// faultLineGood returns the good value of the faulted line at frame 0
// (snapshot from the last simulation).
func (w *window) faultLineGood() sim.Val { return w.lineGood }

func (w *window) faultLineGoodRaw() sim.Val {
	if w.flt.Pin < 0 {
		return w.vals[0][w.flt.Gate].G
	}
	src := w.c.Gates[w.flt.Gate].Fanin[w.flt.Pin]
	return w.vals[0][src].G
}

// excitationObjective returns the (frame0) line and good value needed to
// excite the fault.
func (w *window) excitationObjective() (gate int, val sim.Val) {
	want := sim.V1
	if w.flt.SA == sim.V1 {
		want = sim.V0
	}
	if w.flt.Pin < 0 {
		return w.flt.Gate, want
	}
	return w.c.Gates[w.flt.Gate].Fanin[w.flt.Pin], want
}

// stateCube returns a copy of the frame-0 state assignment.
func (w *window) stateCube() []sim.Val {
	return append([]sim.Val(nil), w.stateVals...)
}

// vectors materializes the per-frame input vectors, filling unassigned
// inputs with 0 for determinism.
func (w *window) vectors() [][]sim.Val {
	out := make([][]sim.Val, w.k)
	for t := 0; t < w.k; t++ {
		vec := make([]sim.Val, len(w.c.PIs))
		for i, v := range w.piVals[t] {
			if v == sim.VX {
				vec[i] = sim.V0
			} else {
				vec[i] = v
			}
		}
		out[t] = vec
	}
	return out
}
