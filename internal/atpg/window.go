package atpg

import (
	"sort"

	"seqatpg/internal/fault"
	"seqatpg/internal/netlist"
	"seqatpg/internal/sim"
)

// window is an iterative-array view of the circuit: k copies of the
// combinational logic chained through the flip-flops. Frame-0 state
// bits are free pseudo-inputs (to be justified later); the target fault
// (if any) is injected in every frame, as a permanent stuck-at defect
// is present in every time frame.
//
// Simulation is event-driven: setPI/setState record the touched input
// gates as seeds, and simulate re-evaluates only their fanout cones in
// topological order per frame, crossing a DFF boundary into the next
// frame only when the captured D value actually changed. The
// post-simulation snapshot (D-frontier, PO detection, last-frame D
// lines) is maintained incrementally by the same pass. A per-frame
// oblivious sweep remains as a fallback once an event cascade grows
// past fallbackEvals (mirroring fault.Simulator.FallbackEvals), and as
// the uncharged reference pass in oblivious verification mode.
type window struct {
	c     *netlist.Circuit
	order []int
	k     int
	flt   *fault.Fault // nil in good-machine justification mode

	piVals    [][]sim.Val // [frame][pi] assigned values; VX = unassigned
	stateVals []sim.Val   // frame-0 pseudo-input state; VX = unassigned
	vals      [][]V5      // [frame][gate] composite values

	dffIdx map[int]int // gate id -> state bit position
	piIdx  map[int]int // gate id -> PI position

	// Static topology, shared with the circuit: pos is the inverse of
	// order, fanouts the forward adjacency, dffBits maps a D-line driver
	// to the state-bit positions it feeds (for last-frame D tracking).
	pos     []int
	fanouts [][]int
	dffBits map[int][]int

	// Hoisted fault-injection site (-1s when flt is nil, so no real
	// gate matches and the non-faulted path never branches on it).
	fGate, fPin int
	fSA         sim.Val

	// Event machinery. full forces the next simulate to sweep
	// everything (fresh window, or after invalidate); seeds[t] lists
	// the gates whose inputs changed in frame t, pending dedupes them.
	full    bool
	seeds   [][]int
	pending []bool // [t*nGates+id]
	pq      []int  // per-frame min-heap of gate ids, ordered by pos

	// fallbackEvals is the per-frame event-cascade threshold beyond
	// which the frame is finished with one oblivious sweep: > 0 is an
	// explicit gate count, 0 selects the default of 3/4 of the gate
	// count, < 0 disables the fallback (pure event-driven).
	fallbackEvals int

	// oblivious makes every simulate finish with an uncharged
	// from-scratch sweep + snapshot rebuild. The charged incremental
	// pass still runs first, so effort accounting and all observable
	// results are byte-identical to incremental mode — this is the
	// reference mode the differential tests pin the engine against.
	oblivious bool

	// Post-simulation snapshot, maintained incrementally: the problem
	// callbacks read these instead of rescanning the window. frontier
	// is kept sorted by (frame, topological position) — the order the
	// full rescan produces — because objective selection tie-breaks on
	// first encounter.
	poD        []bool // [t*nGates+id], Output gates only
	poDCount   int
	frontier   []frontierEntry
	inFrontier []bool // [t*nGates+id]
	dLastD     []bool // per state bit: last-frame D line carries an effect
	dLastCount int
	lineGood   sim.Val
}

type frontierEntry struct{ t, id int }

func newWindow(c *netlist.Circuit, order []int, k int, flt *fault.Fault) *window {
	w := &window{
		c:       c,
		order:   order,
		k:       k,
		flt:     flt,
		dffIdx:  map[int]int{},
		piIdx:   map[int]int{},
		dffBits: map[int][]int{},
		fGate:   -1,
		fPin:    -1,
		full:    true,
	}
	if flt != nil {
		w.fGate, w.fPin, w.fSA = flt.Gate, flt.Pin, flt.SA
	}
	for i, id := range c.DFFs {
		w.dffIdx[id] = i
		drv := c.Gates[id].Fanin[0]
		w.dffBits[drv] = append(w.dffBits[drv], i)
	}
	for i, id := range c.PIs {
		w.piIdx[id] = i
	}
	w.pos = make([]int, len(c.Gates))
	for i, id := range order {
		w.pos[id] = i
	}
	w.fanouts = c.Fanouts()
	w.piVals = make([][]sim.Val, k)
	for t := range w.piVals {
		w.piVals[t] = make([]sim.Val, len(c.PIs))
		for i := range w.piVals[t] {
			w.piVals[t][i] = sim.VX
		}
	}
	w.stateVals = make([]sim.Val, len(c.DFFs))
	for i := range w.stateVals {
		w.stateVals[i] = sim.VX
	}
	w.vals = make([][]V5, k)
	for t := range w.vals {
		w.vals[t] = make([]V5, len(c.Gates))
	}
	w.seeds = make([][]int, k)
	w.pending = make([]bool, k*len(c.Gates))
	w.poD = make([]bool, k*len(c.Gates))
	w.inFrontier = make([]bool, k*len(c.Gates))
	w.dLastD = make([]bool, len(c.DFFs))
	return w
}

// setPI assigns a primary input of frame t, seeding the event queue
// when the value actually changes.
func (w *window) setPI(t, i int, v sim.Val) {
	if w.piVals[t][i] == v {
		return
	}
	w.piVals[t][i] = v
	w.mark(t, w.c.PIs[i])
}

// setState assigns a frame-0 pseudo-input state bit.
func (w *window) setState(i int, v sim.Val) {
	if w.stateVals[i] == v {
		return
	}
	w.stateVals[i] = v
	w.mark(0, w.c.DFFs[i])
}

// mark queues gate id for re-evaluation in frame t.
func (w *window) mark(t, id int) {
	if w.full {
		return // the next simulate sweeps everything anyway
	}
	key := t*len(w.c.Gates) + id
	if w.pending[key] {
		return
	}
	w.pending[key] = true
	w.seeds[t] = append(w.seeds[t], id)
}

// invalidate forces the next simulate to recompute the window from
// scratch (used when piVals/stateVals were written directly, bypassing
// setPI/setState — e.g. bulk vector loads).
func (w *window) invalidate() {
	w.full = true
	nG := len(w.c.Gates)
	for t := range w.seeds {
		for _, id := range w.seeds[t] {
			w.pending[t*nG+id] = false
		}
		w.seeds[t] = w.seeds[t][:0]
	}
}

// simulate brings the window up to date with the current pseudo-input
// assignments and returns the number of gate evaluations performed (the
// effort charge). A fresh (or invalidated) window costs one full sweep,
// k x gates; after that only the fanout cones of changed inputs are
// re-evaluated. In oblivious mode an additional uncharged reference
// sweep re-derives everything from scratch.
func (w *window) simulate() int {
	if w.full {
		w.full = false
		w.sweepAll()
		return w.k * len(w.order)
	}
	evals := w.propagate()
	if w.flt != nil {
		w.lineGood = w.faultLineGoodRaw()
	}
	if w.oblivious {
		w.sweepAll()
	}
	return evals
}

// propagate drains the event queues frame by frame. Within a frame the
// pending gates are popped in topological order (same-frame fanout of a
// gate always sits at a strictly greater position, so heap pops are
// non-decreasing and every gate is evaluated after its changed fanins);
// a change on a DFF D line seeds the DFF in the next frame. Once a
// frame's cascade exceeds the fallback threshold the rest of the frame
// is finished with one oblivious sweep.
func (w *window) propagate() int {
	nG := len(w.c.Gates)
	threshold := w.fallbackEvals
	if threshold == 0 {
		threshold = 3 * len(w.order) / 4
	}
	evals := 0
	for t := 0; t < w.k; t++ {
		if len(w.seeds[t]) == 0 {
			continue
		}
		w.pq = w.pq[:0]
		for _, id := range w.seeds[t] {
			w.heapPush(id)
		}
		w.seeds[t] = w.seeds[t][:0]
		frameEvals := 0
		for len(w.pq) > 0 {
			if threshold > 0 && frameEvals >= threshold {
				for _, id := range w.pq {
					w.pending[t*nG+id] = false
				}
				w.pq = w.pq[:0]
				frameEvals += w.sweepFrame(t)
				break
			}
			id := w.heapPop()
			w.pending[t*nG+id] = false
			frameEvals++
			if !w.evalGateAt(t, id) {
				continue
			}
			for _, h := range w.fanouts[id] {
				if w.c.Gates[h].Type == netlist.DFF {
					if t+1 < w.k {
						w.mark(t+1, h)
					}
					continue
				}
				key := t*nG + h
				if !w.pending[key] {
					w.pending[key] = true
					w.heapPush(h)
				}
			}
		}
		evals += frameEvals
	}
	return evals
}

// sweepFrame re-evaluates every gate of frame t in topological order,
// seeding the next frame for every changed D line.
func (w *window) sweepFrame(t int) int {
	for _, id := range w.order {
		if !w.evalGateAt(t, id) || t+1 >= w.k {
			continue
		}
		for _, h := range w.fanouts[id] {
			if w.c.Gates[h].Type == netlist.DFF {
				w.mark(t+1, h)
			}
		}
	}
	return len(w.order)
}

// sweepAll recomputes every frame from scratch and rebuilds the
// snapshot; any queued events are covered by the sweep and dropped.
func (w *window) sweepAll() {
	for t := 0; t < w.k; t++ {
		vals := w.vals[t]
		for _, id := range w.order {
			g := &w.c.Gates[id]
			if w.flt == nil {
				vals[id] = w.computeGood(t, id, g)
			} else {
				vals[id] = w.computeComposite(t, id, g)
			}
		}
	}
	nG := len(w.c.Gates)
	for t := range w.seeds {
		for _, id := range w.seeds[t] {
			w.pending[t*nG+id] = false
		}
		w.seeds[t] = w.seeds[t][:0]
	}
	w.refresh()
}

// evalGateAt recomputes one gate of one frame, updates the snapshot for
// it, and reports whether its value changed.
func (w *window) evalGateAt(t, id int) bool {
	g := &w.c.Gates[id]
	var v V5
	if w.flt == nil {
		v = w.computeGood(t, id, g)
	} else {
		v = w.computeComposite(t, id, g)
	}
	changed := v != w.vals[t][id]
	w.vals[t][id] = v
	w.updateSnapshotAt(t, id, g)
	return changed
}

// computeGood evaluates one gate on the good rail only — the fast path
// for fault-free (justification-mode) windows, where the faulty rail
// always mirrors the good one and no injection checks are needed.
func (w *window) computeGood(t, id int, g *netlist.Gate) V5 {
	vals := w.vals[t]
	var gv sim.Val
	switch g.Type {
	case netlist.Input:
		gv = w.piVals[t][w.piIdx[id]]
	case netlist.DFF:
		if t == 0 {
			gv = w.stateVals[w.dffIdx[id]]
		} else {
			gv = w.vals[t-1][g.Fanin[0]].G
		}
	case netlist.Const0:
		gv = sim.V0
	case netlist.Const1:
		gv = sim.V1
	case netlist.Buf, netlist.Output:
		gv = vals[g.Fanin[0]].G
	case netlist.Not:
		gv = sim.NotV(vals[g.Fanin[0]].G)
	case netlist.And, netlist.Nand, netlist.Or, netlist.Nor:
		ctrl := sim.V0
		if g.Type == netlist.Or || g.Type == netlist.Nor {
			ctrl = sim.V1
		}
		acc, sawX := sim.NotV(ctrl), false
		for _, f := range g.Fanin {
			in := vals[f].G
			if in == ctrl {
				acc = ctrl
			} else if in == sim.VX {
				sawX = true
			}
		}
		if acc != ctrl && sawX {
			acc = sim.VX
		}
		if g.Type == netlist.Nand || g.Type == netlist.Nor {
			acc = sim.NotV(acc)
		}
		gv = acc
	case netlist.Xor, netlist.Xnor:
		acc := sim.V0
		for _, f := range g.Fanin {
			acc = sim.XorV(acc, vals[f].G)
		}
		if g.Type == netlist.Xnor {
			acc = sim.NotV(acc)
		}
		gv = acc
	}
	return vBoth(gv)
}

// computeComposite evaluates one gate on both rails with the target
// fault injected; the inner loop is allocation-free — both rails are
// folded directly over the fanins.
func (w *window) computeComposite(t, id int, g *netlist.Gate) V5 {
	vals := w.vals[t]
	var v V5
	switch g.Type {
	case netlist.Input:
		v = vBoth(w.piVals[t][w.piIdx[id]])
	case netlist.DFF:
		if t == 0 {
			v = vBoth(w.stateVals[w.dffIdx[id]])
		} else {
			v = w.vals[t-1][g.Fanin[0]]
			if id == w.fGate && w.fPin == 0 {
				v.F = w.fSA
			}
		}
	case netlist.Const0:
		v = vBoth(sim.V0)
	case netlist.Const1:
		v = vBoth(sim.V1)
	case netlist.Buf, netlist.Output:
		v = vals[g.Fanin[0]]
		if id == w.fGate && w.fPin == 0 {
			v.F = w.fSA
		}
	case netlist.Not:
		v = vals[g.Fanin[0]]
		if id == w.fGate && w.fPin == 0 {
			v.F = w.fSA
		}
		v = V5{sim.NotV(v.G), sim.NotV(v.F)}
	case netlist.And, netlist.Nand, netlist.Or, netlist.Nor:
		// Fold both rails. ctrl is the controlling value.
		ctrl := sim.V0
		if g.Type == netlist.Or || g.Type == netlist.Nor {
			ctrl = sim.V1
		}
		gAcc, fAcc := sim.NotV(ctrl), sim.NotV(ctrl)
		gSawX, fSawX := false, false
		for pin, f := range g.Fanin {
			in := vals[f]
			if id == w.fGate && pin == w.fPin {
				in.F = w.fSA
			}
			if in.G == ctrl {
				gAcc = ctrl
			} else if in.G == sim.VX {
				gSawX = true
			}
			if in.F == ctrl {
				fAcc = ctrl
			} else if in.F == sim.VX {
				fSawX = true
			}
		}
		if gAcc != ctrl && gSawX {
			gAcc = sim.VX
		}
		if fAcc != ctrl && fSawX {
			fAcc = sim.VX
		}
		if g.Type == netlist.Nand || g.Type == netlist.Nor {
			gAcc, fAcc = sim.NotV(gAcc), sim.NotV(fAcc)
		}
		v = V5{gAcc, fAcc}
	case netlist.Xor, netlist.Xnor:
		gAcc, fAcc := sim.V0, sim.V0
		for pin, f := range g.Fanin {
			in := vals[f]
			if id == w.fGate && pin == w.fPin {
				in.F = w.fSA
			}
			gAcc = sim.XorV(gAcc, in.G)
			fAcc = sim.XorV(fAcc, in.F)
		}
		if g.Type == netlist.Xnor {
			gAcc, fAcc = sim.NotV(gAcc), sim.NotV(fAcc)
		}
		v = V5{gAcc, fAcc}
	}
	// Stem fault injection.
	if id == w.fGate && w.fPin < 0 {
		v.F = w.fSA
	}
	return v
}

// updateSnapshotAt refreshes the snapshot contributions of gate id at
// frame t: PO detection, D-frontier membership, and — when id drives a
// last-frame DFF D line — the escaping-effect flags. It is called for
// every evaluated gate whether or not its own value changed, because
// frontier membership also depends on the fanin values that triggered
// the evaluation.
func (w *window) updateSnapshotAt(t, id int, g *netlist.Gate) {
	if w.flt == nil {
		return
	}
	nG := len(w.c.Gates)
	key := t*nG + id
	switch g.Type {
	case netlist.Input, netlist.DFF, netlist.Const0, netlist.Const1:
		// Sources carry no frontier or PO state of their own.
	default:
		if g.Type == netlist.Output {
			d := w.vals[t][id].isD()
			if d != w.poD[key] {
				w.poD[key] = d
				if d {
					w.poDCount++
				} else {
					w.poDCount--
				}
			}
		}
		member := false
		if !w.vals[t][id].known() {
			for pin := range g.Fanin {
				if w.faninVal(t, id, pin).isD() {
					member = true
					break
				}
			}
		}
		w.setFrontier(t, id, member)
	}
	if t == w.k-1 {
		for _, bit := range w.dffBits[id] {
			d := w.faninValAt(t, w.c.DFFs[bit], 0).isD()
			if d != w.dLastD[bit] {
				w.dLastD[bit] = d
				if d {
					w.dLastCount++
				} else {
					w.dLastCount--
				}
			}
		}
	}
}

// setFrontier flips gate id's frame-t frontier membership, keeping the
// frontier slice sorted by (frame, topological position) — exactly the
// order a full rescan produces, which objective selection tie-breaks on.
func (w *window) setFrontier(t, id int, member bool) {
	nG := len(w.c.Gates)
	key := t*nG + id
	if w.inFrontier[key] == member {
		return
	}
	w.inFrontier[key] = member
	sortKey := t*nG + w.pos[id]
	i := sort.Search(len(w.frontier), func(i int) bool {
		e := w.frontier[i]
		return e.t*nG+w.pos[e.id] >= sortKey
	})
	if member {
		w.frontier = append(w.frontier, frontierEntry{})
		copy(w.frontier[i+1:], w.frontier[i:])
		w.frontier[i] = frontierEntry{t, id}
	} else {
		w.frontier = append(w.frontier[:i], w.frontier[i+1:]...)
	}
}

// refresh rebuilds the post-simulation snapshot from scratch.
func (w *window) refresh() {
	for i := range w.poD {
		w.poD[i] = false
	}
	for i := range w.inFrontier {
		w.inFrontier[i] = false
	}
	for i := range w.dLastD {
		w.dLastD[i] = false
	}
	w.frontier = w.frontier[:0]
	w.poDCount, w.dLastCount = 0, 0
	if w.flt == nil {
		return
	}
	nG := len(w.c.Gates)
	w.lineGood = w.faultLineGoodRaw()
	for t := 0; t < w.k; t++ {
		for _, id := range w.c.POs {
			if w.vals[t][id].isD() {
				w.poD[t*nG+id] = true
				w.poDCount++
			}
		}
		for _, id := range w.order {
			g := w.c.Gates[id]
			if g.Type == netlist.Input || g.Type == netlist.DFF ||
				g.Type == netlist.Const0 || g.Type == netlist.Const1 {
				continue
			}
			if w.vals[t][id].known() {
				continue
			}
			for pin := range g.Fanin {
				if w.faninVal(t, id, pin).isD() {
					w.frontier = append(w.frontier, frontierEntry{t, id})
					w.inFrontier[t*nG+id] = true
					break
				}
			}
		}
	}
	t := w.k - 1
	for i, id := range w.c.DFFs {
		if w.faninValAt(t, id, 0).isD() {
			w.dLastD[i] = true
			w.dLastCount++
		}
	}
}

// heapPush/heapPop maintain pq as a min-heap on topological position.
func (w *window) heapPush(id int) {
	w.pq = append(w.pq, id)
	i := len(w.pq) - 1
	for i > 0 {
		p := (i - 1) / 2
		if w.pos[w.pq[p]] <= w.pos[w.pq[i]] {
			break
		}
		w.pq[p], w.pq[i] = w.pq[i], w.pq[p]
		i = p
	}
}

func (w *window) heapPop() int {
	top := w.pq[0]
	last := len(w.pq) - 1
	w.pq[0] = w.pq[last]
	w.pq = w.pq[:last]
	i := 0
	for {
		l, r, s := 2*i+1, 2*i+2, i
		if l < last && w.pos[w.pq[l]] < w.pos[w.pq[s]] {
			s = l
		}
		if r < last && w.pos[w.pq[r]] < w.pos[w.pq[s]] {
			s = r
		}
		if s == i {
			break
		}
		w.pq[i], w.pq[s] = w.pq[s], w.pq[i]
		i = s
	}
	return top
}

// faninVal returns the composite value gate id sees on fanin pin at
// frame t, with branch-fault injection applied.
func (w *window) faninVal(t, id, pin int) V5 {
	v := w.vals[t][w.c.Gates[id].Fanin[pin]]
	if w.flt != nil && w.flt.Pin == pin && w.flt.Gate == id {
		v.F = w.flt.SA
	}
	return v
}

// faninValAt is faninVal for a specific frame (used for the DFF D line
// crossing from frame t-1 into frame t).
func (w *window) faninValAt(t, id, pin int) V5 {
	v := w.vals[t][w.c.Gates[id].Fanin[pin]]
	if w.flt != nil && w.flt.Pin == pin && w.flt.Gate == id {
		v.F = w.flt.SA
	}
	return v
}

// detectedAtPO reports whether any primary output in any frame exposes
// the fault (snapshot from the last simulation).
func (w *window) detectedAtPO() bool { return w.poDCount > 0 }

// dFrontier returns the (frame, gate) pairs whose output is not fully
// known but which see a developed fault effect on at least one fanin
// (snapshot from the last simulation).
func (w *window) dFrontier() []frontierEntry { return w.frontier }

// dReachesLastState reports whether a developed fault effect sits on a
// DFF D line of the last frame — the effect would escape the window
// into a later time frame (snapshot from the last simulation).
func (w *window) dReachesLastState() bool { return w.dLastCount > 0 }

// faultLineGood returns the good value of the faulted line at frame 0
// (snapshot from the last simulation).
func (w *window) faultLineGood() sim.Val { return w.lineGood }

func (w *window) faultLineGoodRaw() sim.Val {
	if w.flt.Pin < 0 {
		return w.vals[0][w.flt.Gate].G
	}
	src := w.c.Gates[w.flt.Gate].Fanin[w.flt.Pin]
	return w.vals[0][src].G
}

// excitationObjective returns the (frame0) line and good value needed to
// excite the fault.
func (w *window) excitationObjective() (gate int, val sim.Val) {
	want := sim.V1
	if w.flt.SA == sim.V1 {
		want = sim.V0
	}
	if w.flt.Pin < 0 {
		return w.flt.Gate, want
	}
	return w.c.Gates[w.flt.Gate].Fanin[w.flt.Pin], want
}

// stateView returns the frame-0 state assignment as a read-only view of
// the live buffer — no allocation. The callers (justification probes)
// only read it while the window is suspended inside an onSolution
// callback, during which nothing mutates stateVals; copy it before any
// retention past that point.
func (w *window) stateView() []sim.Val {
	return w.stateVals
}

// vectors materializes the per-frame input vectors, filling unassigned
// inputs with 0 for determinism.
func (w *window) vectors() [][]sim.Val {
	out := make([][]sim.Val, w.k)
	for t := 0; t < w.k; t++ {
		vec := make([]sim.Val, len(w.c.PIs))
		for i, v := range w.piVals[t] {
			if v == sim.VX {
				vec[i] = sim.V0
			} else {
				vec[i] = v
			}
		}
		out[t] = vec
	}
	return out
}
