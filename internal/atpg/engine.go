package atpg

import (
	"fmt"

	"seqatpg/internal/fault"
	"seqatpg/internal/netlist"
	"seqatpg/internal/sim"
)

// Config tunes an engine run. The three paper engines are presets over
// this structure (see the hitec, attest and sest sub-packages). New
// validates the configuration up front (see Validate); the only silent
// coercions are FlushCycles < 1 -> 1 and MaxBackSteps == 0 -> 30.
type Config struct {
	Name string
	// MaxFrames caps the forward time-frame window for propagation. It
	// must be at least 1; there is no default.
	MaxFrames int
	// MaxBackSteps caps the backward state-justification depth. Zero
	// selects the default of 30; negative values are rejected.
	MaxBackSteps int
	// BacktrackLimit caps PODEM backtracks per search. Zero means
	// unlimited (the effort budget still bounds the search); negative
	// values are rejected.
	BacktrackLimit int
	// FaultBudget is the effort (in gate-evaluations) each fault may
	// consume before being aborted.
	FaultBudget int64
	// TotalBudget bounds the whole run; 0 means unlimited. When it runs
	// out the remaining faults are aborted.
	TotalBudget int64
	// RandomSequences/RandomLength configure the random preprocessing
	// phase (Attest-style); zero disables it.
	RandomSequences int
	RandomLength    int
	// Learning enables SEST-style search-state learning: proven-
	// unjustifiable state cubes are cached and pruned, and justified
	// states are reused.
	Learning bool
	// SharedLearning (requires Learning) promotes the justification
	// caches to a cross-fault store: good-machine justification
	// sequences and top-level good-machine unjustifiability proofs are
	// reused across every fault in the run. Reuse is sound — a cube the
	// good machine cannot reach is unreachable by the composite machine
	// under any fault, and a cached sequence is re-verified (charged) on
	// the composite machine before it is accepted — so under generous
	// budgets verdicts are unchanged and only effort drops. Because a
	// hit does change the search trajectory, the flag participates in
	// checkpoint fingerprints and is switched off by sharded-campaign
	// normalization (like Learning itself).
	SharedLearning bool
	// LearnCap bounds each learning store (achieved states, failed
	// cubes, shared failed cubes, shared lemmas, per-search blocking
	// cubes) to this many entries, evicting oldest first at fault
	// boundaries. Zero selects the default of 4096; negative values are
	// rejected.
	LearnCap int
	// ConflictLearning turns PODEM into a conflict-driven search: every
	// analyzable conflict is traced through the implicit implication
	// graph to the decision variables that force it, and the resulting
	// blocking cube prunes any later assignment covering it. Cubes only
	// ever cover refuted assignments, so verdicts are preserved under
	// generous budgets; like ObliviousSim, the knob is excluded from
	// campaign checkpoint fingerprints (it is a search-tuning mode, not
	// a campaign identity), and unlike Learning it survives sharded-
	// campaign normalization because each store is scoped to a single
	// fault's search.
	ConflictLearning bool
	// Backjump (requires ConflictLearning) resolves stored-cube
	// conflicts non-chronologically: any assignment that completes a
	// learned cube is unwound BEFORE its simulation is paid for, and
	// chains of covered flips pop whole refuted subtrees without a
	// single charged gate evaluation. Analyzed conflicts whose support
	// excludes the deepest decisions additionally skip those levels in
	// one conflict-directed jump. Without it the cubes are only
	// consulted as post-simulation conflicts, so the search order (and
	// charged effort) is identical to the non-learning baseline.
	Backjump bool
	// Restarts (requires Backjump) adds Luby-scheduled restarts that
	// abandon the current decision stack but carry the learned cubes,
	// letting the search re-descend with better pruning. Backjump is
	// required because a restart without pre-simulation cube pruning
	// re-buys the entire abandoned trail at full simulation cost.
	Restarts bool
	// ObliviousSim makes every window simulation finish with an
	// uncharged from-scratch reference sweep after the charged
	// incremental pass. Results and effort accounting are byte-identical
	// to incremental mode by construction — this is a verification mode
	// (the differential tests run it against the incremental engine),
	// not a tuning knob, so like the fault-sim worker count it is
	// excluded from campaign checkpoint fingerprints.
	ObliviousSim bool
	// RelaxedJustify retries a failed state justification on the good
	// machine alone (ignoring the fault's effect on the setup path).
	// This recovers testable faults that the strict composite-machine
	// justification rejects; it is sound because every candidate test
	// is still confirmed by fault simulation before being accepted,
	// but it can spend extra effort on candidates that fail
	// confirmation.
	RelaxedJustify bool
	// NoFaultDrop disables cross-fault test dropping: a test generated
	// for one fault is not fault-simulated against the rest of the
	// list, so every fault is attacked directly. Combined with
	// Learning off and TotalBudget 0 this makes each fault's outcome a
	// pure function of (circuit, config, fault) — independent of which
	// other faults share the run — which is what lets a sharded
	// campaign partition the fault list arbitrarily and still merge to
	// identical verdicts (see campaign.RunSharded). It is incompatible
	// with the random preprocessing phase, whose only effect is
	// dropping faults.
	NoFaultDrop bool
	// FlushCycles is how long the reset line is held to initialize the
	// machine (1 for non-retimed circuits; retimed circuits need their
	// flush prefix). Values < 1 are coerced to 1.
	FlushCycles int
	Seed        int64
}

// Validate rejects configurations that would otherwise start a silent
// unbounded or degenerate run: negative effort budgets, a forward
// window smaller than one frame, and negative backtrack or
// justification limits. FlushCycles < 1 is deliberately NOT an error —
// New coerces it to 1 so callers may leave it zero for non-retimed
// circuits.
func (c Config) Validate() error {
	switch {
	case c.FaultBudget < 0:
		return fmt.Errorf("atpg: config %q: negative FaultBudget %d", c.Name, c.FaultBudget)
	case c.TotalBudget < 0:
		return fmt.Errorf("atpg: config %q: negative TotalBudget %d", c.Name, c.TotalBudget)
	case c.MaxFrames < 1:
		return fmt.Errorf("atpg: config %q: MaxFrames %d, want >= 1", c.Name, c.MaxFrames)
	case c.MaxBackSteps < 0:
		return fmt.Errorf("atpg: config %q: negative MaxBackSteps %d", c.Name, c.MaxBackSteps)
	case c.BacktrackLimit < 0:
		return fmt.Errorf("atpg: config %q: negative BacktrackLimit %d (use 0 for unlimited)", c.Name, c.BacktrackLimit)
	case c.RandomSequences < 0:
		return fmt.Errorf("atpg: config %q: negative RandomSequences %d", c.Name, c.RandomSequences)
	case c.RandomLength < 0:
		return fmt.Errorf("atpg: config %q: negative RandomLength %d", c.Name, c.RandomLength)
	case c.NoFaultDrop && c.RandomSequences > 0:
		return fmt.Errorf("atpg: config %q: NoFaultDrop with RandomSequences %d (the random phase only drops faults, so it would silently do nothing)", c.Name, c.RandomSequences)
	case c.SharedLearning && !c.Learning:
		return fmt.Errorf("atpg: config %q: SharedLearning without Learning (the shared cache is an extension of the per-fault learning store)", c.Name)
	case c.LearnCap < 0:
		return fmt.Errorf("atpg: config %q: negative LearnCap %d (use 0 for the default bound)", c.Name, c.LearnCap)
	case c.Backjump && !c.ConflictLearning:
		return fmt.Errorf("atpg: config %q: Backjump without ConflictLearning (backjumping needs the learned cube as its reason)", c.Name)
	case c.Restarts && !c.Backjump:
		return fmt.Errorf("atpg: config %q: Restarts without Backjump (a restart without pre-simulation cube pruning re-buys the whole abandoned trail)", c.Name)
	}
	return nil
}

// Stats aggregates the run counters the experiments report.
type Stats struct {
	Total     int
	Detected  int
	Redundant int
	Aborted   int
	// Crashed counts faults whose search panicked; the panic is
	// recovered, recorded (see FaultCrash) and the run continues.
	Crashed     int
	Unconfirmed int
	Effort      int64 // deterministic CPU proxy: gate evaluations actually performed
	Backtracks  int64
	// LearnHits/LearnPrunes count reuses of justified states and prunes
	// via proven-unjustifiable cubes (SEST-style engines only).
	LearnHits   int64
	LearnPrunes int64
	// LearnedCubes/Backjumps/Restarts count the conflict-driven search
	// events (ConflictLearning engines only): blocking cubes stored,
	// non-chronological backjumps taken, and Luby restarts fired.
	LearnedCubes int64
	Backjumps    int64
	Restarts     int64
	// StatesTraversed is the set of fully specified states the
	// generator visited: the good-circuit states of every applied
	// sequence (the paper's "#states HITEC trav" instrument).
	StatesTraversed map[uint64]bool
}

// FC returns fault coverage (% detected).
func (s Stats) FC() float64 {
	if s.Total == 0 {
		return 0
	}
	return 100 * float64(s.Detected) / float64(s.Total)
}

// FE returns fault efficiency (% detected or proven redundant).
func (s Stats) FE() float64 {
	if s.Total == 0 {
		return 0
	}
	return 100 * float64(s.Detected+s.Redundant) / float64(s.Total)
}

// Engine is one ATPG run over one circuit.
type Engine struct {
	c     *netlist.Circuit
	cfg   Config
	order []int
	scoap *SCOAP
	// obsDist approximates per-gate distance to a primary output.
	obsDist []int

	fsim        *fault.Simulator
	flushPrefix [][]sim.Val
	resetState  []sim.Val

	remaining    int64 // per-fault budget remaining
	totalLeft    int64
	outOfBudget  bool
	failedCubes  map[string]bool
	failedKeys   []string               // insertion order of failedCubes (rollback journal)
	achieved     map[string][][]sim.Val // fault-scoped concrete state -> vectors from reset
	achievedKeys []achievedKey          // deterministic iteration order
	// sharedFailed holds state cubes proven unjustifiable on the good
	// machine by a complete top-level search — a cross-fault prune
	// (SharedLearning only). It is separate from failedCubes because
	// those entries are depth- and path-relative.
	sharedFailed     map[string]bool
	sharedFailedKeys []string // insertion order (rollback journal)
	// lemmas/lemmaList is the shared learned-cube store fed by conflict
	// analysis (SharedLearning + ConflictLearning): good-machine forced-
	// next-state facts, sound under every fault. The map dedupes, the
	// list is the insertion-order journal for rollback and snapshots.
	lemmas    map[string]bool
	lemmaList []LearnedCube

	// cancelDone is the active run's ctx.Done(); cancelled latches once
	// the channel closes so every subsequent charge fails fast.
	cancelDone <-chan struct{}
	cancelled  bool

	// fsimWorkers is the worker count handed to DetectsParallel by the
	// fault-drop passes; see SetFaultSimWorkers.
	fsimWorkers int

	// TestHook, when set, is called at the start of every fault search
	// with the fault's list index. It exists so tests (and the campaign
	// package's crash-isolation tests) can inject failures; it is not
	// part of the run's fingerprinted configuration.
	TestHook func(index int, f fault.Fault)

	// TestCubeHook, when set, observes every freshly learned blocking
	// cube with its refuting line and claimed forced value, so the
	// differential tests can replay the cube on a fresh window and check
	// the implication from scratch. Test instrumentation only.
	TestCubeHook func(rec CubeRecord)

	Stats Stats
}

// New builds an engine; the circuit must be valid and have a reset
// line, and the configuration must pass Config.Validate.
func New(c *netlist.Circuit, cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if c.ResetPI < 0 {
		return nil, fmt.Errorf("atpg: circuit %s has no reset line", c.Name)
	}
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	if cfg.MaxBackSteps == 0 {
		cfg.MaxBackSteps = 30
	}
	if cfg.FlushCycles < 1 {
		cfg.FlushCycles = 1
	}
	if cfg.LearnCap == 0 {
		cfg.LearnCap = 4096
	}
	e := &Engine{
		c:            c,
		cfg:          cfg,
		order:        order,
		scoap:        computeSCOAP(c),
		obsDist:      computeObsDist(c),
		failedCubes:  map[string]bool{},
		achieved:     map[string][][]sim.Val{},
		sharedFailed: map[string]bool{},
		lemmas:       map[string]bool{},
	}
	e.Stats.StatesTraversed = map[uint64]bool{}
	e.fsim, err = fault.NewSimulator(c)
	if err != nil {
		return nil, err
	}
	// The engine only consumes detection verdicts, which are
	// byte-identical across kernel widths, so let the kernel pick its
	// width from measured activity. Effort is charged in 63-fault pass
	// equivalents regardless (fsimPasses), so checkpoints and
	// fingerprints are unaffected.
	e.fsim.Width = fault.WidthAuto
	if err := e.computeFlush(); err != nil {
		return nil, err
	}
	return e, nil
}

// SetFaultSimWorkers sets how many workers the engine's fault-drop
// passes hand to fault.Simulator.DetectsParallel; values below 2 keep
// the serial path. DetectsParallel is worker-count-invariant, so the
// knob cannot change any run's outcomes or stats — which is why it is
// a setter rather than a Config field: Config is fingerprinted into
// campaign checkpoints, and a machine-local tuning knob must not
// invalidate them.
func (e *Engine) SetFaultSimWorkers(n int) { e.fsimWorkers = n }

// computeObsDist is a reverse BFS from the primary outputs.
func computeObsDist(c *netlist.Circuit) []int {
	const inf = 1 << 20
	dist := make([]int, len(c.Gates))
	for i := range dist {
		dist[i] = inf
	}
	var queue []int
	for _, id := range c.POs {
		dist[id] = 0
		queue = append(queue, id)
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		for _, f := range c.Gates[id].Fanin {
			if dist[f] > dist[id]+1 {
				dist[f] = dist[id] + 1
				queue = append(queue, f)
			}
		}
	}
	return dist
}

// computeFlush derives the reset-hold prefix and the post-flush state.
func (e *Engine) computeFlush() error {
	s, err := sim.NewSimulator(e.c)
	if err != nil {
		return err
	}
	s.PowerUp()
	vec := make([]sim.Val, len(e.c.PIs))
	for i, id := range e.c.PIs {
		if id == e.c.ResetPI {
			vec[i] = sim.V1
		} else {
			vec[i] = sim.V0
		}
	}
	e.flushPrefix = nil
	for k := 0; k < e.cfg.FlushCycles; k++ {
		if _, err := s.Step(vec); err != nil {
			return err
		}
		e.flushPrefix = append(e.flushPrefix, append([]sim.Val(nil), vec...))
	}
	e.resetState = s.State()
	return nil
}

// checkCancel polls the active run's context; once cancellation is
// observed it latches, so searches wind down at the next charge.
func (e *Engine) checkCancel() bool {
	if e.cancelled {
		return true
	}
	if e.cancelDone != nil {
		select {
		case <-e.cancelDone:
			e.cancelled = true
		default:
		}
	}
	return e.cancelled
}

// charge burns effort, measured in gate evaluations actually performed
// (the event-driven window reports exactly what it touched, so Effort
// is an honest CPU proxy); false means a budget ran out (or the run was
// cancelled — a cancelled charge burns nothing, so the rollback to the
// last fault boundary stays exact).
func (e *Engine) charge(evals int64) bool {
	if e.checkCancel() {
		return false
	}
	cost := evals
	e.Stats.Effort += cost
	e.remaining -= cost
	if e.cfg.TotalBudget > 0 {
		e.totalLeft -= cost
		if e.totalLeft <= 0 {
			e.outOfBudget = true
			return false
		}
	}
	return e.remaining > 0
}

// newWin builds a k-frame window wired to the engine's configuration
// (oblivious reference mode when Config.ObliviousSim is set).
func (e *Engine) newWin(k int, flt *fault.Fault) *window {
	w := newWindow(e.c, e.order, k, flt)
	w.oblivious = e.cfg.ObliviousSim
	return w
}

func (e *Engine) piIndexOfReset() int {
	for i, id := range e.c.PIs {
		if id == e.c.ResetPI {
			return i
		}
	}
	return -1
}

// Outcome classifies the result of test generation for one fault.
type Outcome int

// Per-fault outcomes.
const (
	// Aborted: the budget, backtrack limit or window cap ran out first.
	Aborted Outcome = iota
	// Detected: a confirmed test sequence was generated (or a test for
	// another fault covered it during fault dropping).
	Detected
	// Redundant: proven untestable in any sequential context.
	Redundant
	// Crashed: the search for this fault panicked; the panic was
	// recovered and recorded (see Result.Crashes) and the run went on.
	Crashed
)

// String returns "aborted", "detected", "redundant" or "crashed".
func (o Outcome) String() string {
	switch o {
	case Detected:
		return "detected"
	case Redundant:
		return "redundant"
	case Crashed:
		return "crashed"
	default:
		return "aborted"
	}
}

// generate runs the per-fault flow: redundancy pre-pass, then detection
// over growing windows with backward justification of the required
// excitation state.
func (e *Engine) generate(f *fault.Fault) (Outcome, [][]sim.Val) {
	// Sound redundancy pre-pass: one frame, free state, observing both
	// POs and next-state lines. Exhaustion without a solution means the
	// fault is untestable in any sequential context. The pre-pass gets
	// a small backtrack allowance: genuinely redundant faults exhaust
	// their decision tree quickly; everything else proceeds to the real
	// search.
	w := e.newWin(1, f)
	pre := &detectProblem{e: e, extendedObs: true}
	preLimit := 256
	if e.cfg.BacktrackLimit > 0 && e.cfg.BacktrackLimit < preLimit {
		preLimit = e.cfg.BacktrackLimit
	}
	// One cube store per fault, shared by the pre-pass and every
	// detection window: an excitation-conflict cube proves the fault
	// cannot be excited under those decision values, which holds in
	// every window size (the support walk never leaves frame 0).
	var ddb *cubeDB
	if e.cfg.ConflictLearning {
		ddb = e.newCubeDB()
	}
	outcome := e.podem(w, pre, preLimit, ddb, func() bool { return true })
	if outcome == searchExhausted {
		return Redundant, nil
	}

	// The composite (good ∥ faulty) machine's post-flush state: the
	// justification terminal. Both machines see the same reset-hold
	// prefix; bits where they disagree or stay unknown cannot serve as
	// justification anchors.
	faultyReset := e.faultyFlushState(f)
	var goodReset []V5
	if e.cfg.RelaxedJustify {
		goodReset = make([]V5, len(e.resetState))
		for i, v := range e.resetState {
			goodReset[i] = vBoth(v)
		}
	}

	for k := 1; k <= e.cfg.MaxFrames; k++ {
		w := e.newWin(k, f)
		prob := &detectProblem{e: e}
		var final [][]sim.Val
		out := e.podem(w, prob, e.cfg.BacktrackLimit, ddb, func() bool {
			// stateView is a live view, safe here: the window is
			// suspended for the whole (synchronous) justification.
			cube := w.stateView()
			prefix, ok := e.justify(f, faultyReset, cube, e.cfg.MaxBackSteps, map[string]bool{})
			if !ok && e.cfg.RelaxedJustify {
				// Second chance on the good machine alone; the fault
				// simulation below rejects any sequence the fault's
				// presence invalidates.
				prefix, ok = e.justify(nil, goodReset, cube, e.cfg.MaxBackSteps, map[string]bool{})
			}
			if !ok {
				return false // enumerate another excitation/propagation
			}
			seq := append([][]sim.Val{}, e.flushPrefix...)
			seq = append(seq, prefix...)
			seq = append(seq, w.vectors()...)
			// Confirm with the fault simulator before accepting; the
			// single-fault fast path stops at the first detecting frame
			// instead of spinning up a 63-wide batch.
			det, err := e.fsim.DetectsOne(seq, *f)
			if err != nil || !det {
				e.Stats.Unconfirmed++
				return false
			}
			final = seq
			return true
		})
		switch out {
		case searchStopped:
			return Detected, final
		case searchAborted:
			return Aborted, nil
		}
		// Exhausted: effect may need more frames to reach an output.
	}
	return Aborted, nil
}

// cubeKey renders a state cube canonically.
func cubeKey(cube []sim.Val) string {
	b := make([]byte, len(cube))
	for i, v := range cube {
		b[i] = "01X"[v]
	}
	return string(b)
}

// compatible reports whether the concrete (possibly partially unknown)
// reset state satisfies the cube: every specified cube bit must be a
// known, equal bit of the state.
func compatible(cube, state []sim.Val) bool {
	for i, v := range cube {
		if v == sim.VX {
			continue
		}
		if state[i] != v {
			return false
		}
	}
	return true
}

// fullySpecified reports whether the cube pins every state bit.
func fullySpecified(cube []sim.Val) (uint64, bool) {
	var bits uint64
	for i, v := range cube {
		switch v {
		case sim.VX:
			return 0, false
		case sim.V1:
			bits |= 1 << uint(i)
		}
	}
	return bits, true
}

// faultyFlushState applies the reset-hold prefix to the composite
// machine (good ∥ faulty) from all-X and returns the per-DFF composite
// state. Justification anchors only on bits where both rails agree.
func (e *Engine) faultyFlushState(f *fault.Fault) []V5 {
	k := len(e.flushPrefix)
	w := e.newWin(k, f)
	for t, vec := range e.flushPrefix {
		copy(w.piVals[t], vec)
	}
	e.charge(int64(w.simulate()))
	out := make([]V5, len(e.c.DFFs))
	for i, id := range e.c.DFFs {
		out[i] = w.faninValAt(k-1, id, 0)
	}
	return out
}

// compatible5 reports whether the composite state satisfies the cube on
// both rails.
func compatible5(cube []sim.Val, state []V5) bool {
	for i, v := range cube {
		if v == sim.VX {
			continue
		}
		if state[i].G != v || state[i].F != v {
			return false
		}
	}
	return true
}

// justify searches backward for an input sequence that drives the
// composite machine (the circuit under the target fault) from the
// post-reset state into the cube. Returns the vectors in forward
// application order, reset prefix NOT included. Learning caches are
// keyed per fault — a cube justifiable in the good machine need not be
// justifiable under a different fault — but with SharedLearning the
// good-machine ("" key) entries are additionally consulted for every
// fault: achieved sequences after a charged composite-machine
// verification replay, and failed cubes directly (good-machine
// unreachability is fault-independent: the composite machine only
// reaches states its good rail reaches).
func (e *Engine) justify(f *fault.Fault, faultyReset []V5, cube []sim.Val, depth int, onPath map[string]bool) ([][]sim.Val, bool) {
	if compatible5(cube, faultyReset) {
		return nil, true
	}
	fkey := ""
	if f != nil {
		fkey = f.String() + "|"
	}
	shared := e.cfg.SharedLearning && f != nil
	if bits, ok := fullySpecified(cube); ok {
		// Learning: a state we already know how to reach (under this
		// fault).
		if e.cfg.Learning {
			if vecs, ok := e.achieved[fkey+fmt.Sprint(bits)]; ok {
				e.Stats.LearnHits++
				return vecs, true
			}
			if shared {
				if vecs, ok := e.achieved[fmt.Sprint(bits)]; ok && e.verifyJustification(f, vecs, cube) {
					e.Stats.LearnHits++
					e.recordAchieved(fkey, bits, vecs)
					return vecs, true
				}
			}
		}
	}
	if depth == 0 {
		return nil, false
	}
	key := cubeKey(cube)
	if onPath[key] {
		return nil, false // cycle in the justification path
	}
	if e.cfg.Learning && e.failedCubes[fkey+key] {
		e.Stats.LearnPrunes++
		return nil, false
	}
	if shared && e.sharedFailed[key] {
		e.Stats.LearnPrunes++
		return nil, false
	}
	// Learning: reuse any achieved concrete state compatible with the
	// cube — own-fault entries directly, shared good-machine entries
	// only after composite verification.
	if e.cfg.Learning {
		for _, st := range e.achievedKeys {
			if st.fault == fkey {
				stVals := unpackState(st.bits, len(cube))
				if compatible(cube, stVals) {
					e.Stats.LearnHits++
					return e.achieved[fkey+fmt.Sprint(st.bits)], true
				}
				continue
			}
			if !shared || st.fault != "" {
				continue
			}
			stVals := unpackState(st.bits, len(cube))
			if !compatible(cube, stVals) {
				continue
			}
			if vecs := e.achieved[fmt.Sprint(st.bits)]; e.verifyJustification(f, vecs, cube) {
				e.Stats.LearnHits++
				e.recordAchieved(fkey, st.bits, vecs)
				return vecs, true
			}
		}
	}
	topLevel := len(onPath) == 0
	onPath[key] = true
	defer delete(onPath, key)

	targets := make([]targetLine, 0, len(cube))
	for i, v := range cube {
		if v == sim.VX {
			continue
		}
		dff := e.c.DFFs[i]
		targets = append(targets, targetLine{gate: e.c.Gates[dff].Fanin[0], dff: dff, val: v})
	}
	w := e.newWin(1, f)
	prob := &justifyProblem{targets: targets}
	// Each justification step gets a fresh cube store (its conflicts
	// are relative to this step's targets); the shared lemma store
	// seeds it with every cross-fault cube contradicting a target.
	var jdb *cubeDB
	if e.cfg.ConflictLearning {
		jdb = e.newCubeDB()
		if e.cfg.SharedLearning {
			e.seedLemmas(jdb, targets)
		}
	}
	var result [][]sim.Val
	out := e.podem(w, prob, e.cfg.BacktrackLimit, jdb, func() bool {
		// stateView is a live view, safe here: the recursive call reads
		// it synchronously while this window is suspended.
		prev := w.stateView()
		vec := w.vectors()[0]
		sub, ok := e.justify(f, faultyReset, prev, depth-1, onPath)
		if !ok {
			return false
		}
		result = append(append([][]sim.Val{}, sub...), vec)
		// Learning: remember how to reach this cube's concrete states.
		if e.cfg.Learning {
			if bits, full := fullySpecified(cube); full {
				e.recordAchieved(fkey, bits, result)
				if e.cfg.SharedLearning && fkey != "" {
					// The composite machine reached bits on both rails,
					// so the same vectors reach it on the good machine
					// alone — publish to the shared ("" key) store.
					// Consumers under other faults re-verify before use.
					e.recordAchieved("", bits, result)
				}
			}
		}
		return true
	})
	if out == searchStopped {
		return result, true
	}
	if out == searchExhausted && e.cfg.Learning {
		e.failedCubes[fkey+key] = true
		e.failedKeys = append(e.failedKeys, fkey+key)
		if e.cfg.SharedLearning && f == nil && topLevel && depth == e.cfg.MaxBackSteps &&
			!e.sharedFailed[key] {
			// A complete good-machine exhaustion at full depth with no
			// path restrictions proves the cube unreachable outright —
			// shareable as a prune under every fault.
			e.sharedFailed[key] = true
			e.sharedFailedKeys = append(e.sharedFailedKeys, key)
		}
	}
	return nil, false
}

// recordAchieved stores one learned justification under the given fault
// key, appending to the insertion-order journal the boundary rollback
// and snapshot machinery iterate.
func (e *Engine) recordAchieved(fkey string, bits uint64, seq [][]sim.Val) {
	k := fkey + fmt.Sprint(bits)
	if _, seen := e.achieved[k]; seen {
		return
	}
	e.achieved[k] = seq
	e.achievedKeys = append(e.achievedKeys, achievedKey{fault: fkey, bits: bits})
}

// verifyJustification replays a cached candidate sequence on the
// composite machine under fault f and checks that it still establishes
// every specified cube bit on both rails. The replay is charged like
// any other simulation: a shared-cache hit saves search effort, not
// simulation honesty. Verification is what keeps cross-fault reuse
// sound — a sequence that justifies a state on the good machine can be
// invalidated by the fault's effect on the setup path.
func (e *Engine) verifyJustification(f *fault.Fault, vecs [][]sim.Val, cube []sim.Val) bool {
	k := len(e.flushPrefix) + len(vecs)
	w := e.newWin(k, f)
	for t, vec := range e.flushPrefix {
		copy(w.piVals[t], vec)
	}
	for t, vec := range vecs {
		copy(w.piVals[len(e.flushPrefix)+t], vec)
	}
	e.charge(int64(w.simulate()))
	for i, v := range cube {
		if v == sim.VX {
			continue
		}
		got := w.faninValAt(k-1, e.c.DFFs[i], 0)
		if got.G != v || got.F != v {
			return false
		}
	}
	return true
}

// capLearning enforces Config.LearnCap on the learning stores, evicting
// oldest entries first. It runs only at fault boundaries: the rollback
// journals in boundaryMark are length-based, so a mid-fault eviction
// would break the bit-exact rollback (and hence checkpoint/resume)
// guarantee. Eviction never changes a verdict — a missing entry only
// sends the search back to first principles.
func (e *Engine) capLearning() {
	limit := e.cfg.LearnCap
	if limit <= 0 {
		return
	}
	if n := len(e.achievedKeys) - limit; n > 0 {
		for _, k := range e.achievedKeys[:n] {
			delete(e.achieved, k.fault+fmt.Sprint(k.bits))
		}
		e.achievedKeys = append([]achievedKey(nil), e.achievedKeys[n:]...)
	}
	if n := len(e.failedKeys) - limit; n > 0 {
		for _, k := range e.failedKeys[:n] {
			delete(e.failedCubes, k)
		}
		e.failedKeys = append([]string(nil), e.failedKeys[n:]...)
	}
	if n := len(e.sharedFailedKeys) - limit; n > 0 {
		for _, k := range e.sharedFailedKeys[:n] {
			delete(e.sharedFailed, k)
		}
		e.sharedFailedKeys = append([]string(nil), e.sharedFailedKeys[n:]...)
	}
	if n := len(e.lemmaList) - limit; n > 0 {
		for _, lc := range e.lemmaList[:n] {
			delete(e.lemmas, lemmaKey(lc))
		}
		e.lemmaList = append([]LearnedCube(nil), e.lemmaList[n:]...)
	}
}

// achievedKey identifies a learned, reachable concrete state under a
// specific fault context.
type achievedKey struct {
	fault string
	bits  uint64
}

func unpackState(bits uint64, n int) []sim.Val {
	out := make([]sim.Val, n)
	for i := 0; i < n; i++ {
		if (bits>>uint(i))&1 == 1 {
			out[i] = sim.V1
		} else {
			out[i] = sim.V0
		}
	}
	return out
}
