package atpg

import (
	"testing"

	"seqatpg/internal/encode"
	"seqatpg/internal/fault"
	"seqatpg/internal/fsm"
	"seqatpg/internal/netlist"
	"seqatpg/internal/sim"
	"seqatpg/internal/synth"
)

func synthC(t *testing.T, states int, seed int64) *netlist.Circuit {
	t.Helper()
	m, err := fsm.Generate(fsm.GenSpec{Name: "tg", Inputs: 3, Outputs: 2, States: states, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	r, err := synth.Synthesize(m, synth.Options{
		Algorithm: encode.Combined, Script: synth.Rugged, UseUnreachableDC: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r.Circuit
}

func defaultCfg() Config {
	return Config{
		Name:           "test",
		MaxFrames:      8,
		MaxBackSteps:   40,
		BacktrackLimit: 4000,
		FaultBudget:    50_000_000,
		FlushCycles:    1,
	}
}

func TestEngineRequiresReset(t *testing.T) {
	c := netlist.New("nr")
	in := c.AddGate(netlist.Input, "in")
	ff := c.AddGate(netlist.DFF, "q", in)
	c.AddGate(netlist.Output, "o", ff)
	if _, err := New(c, defaultCfg()); err == nil {
		t.Error("expected error without reset line")
	}
}

// TestHighCoverageOnSmallMachine: the engine should detect nearly every
// fault of a small synthesized control circuit and confirm each test by
// fault simulation.
func TestHighCoverageOnSmallMachine(t *testing.T) {
	c := synthC(t, 7, 5)
	e, err := New(c, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	t.Logf("total=%d detected=%d redundant=%d aborted=%d FE=%.1f effort=%d states=%d",
		s.Total, s.Detected, s.Redundant, s.Aborted, s.FE(), s.Effort, len(s.StatesTraversed))
	if s.FE() < 95 {
		t.Errorf("fault efficiency %.1f%% too low for a small machine", s.FE())
	}
	if s.Detected == 0 {
		t.Fatal("no faults detected at all")
	}
	if len(res.Tests) == 0 {
		t.Fatal("no tests emitted")
	}
}

// TestAllTestsDetectTheirFaults: re-simulate all emitted sequences and
// confirm the reported coverage is reproducible from the test set alone.
func TestTestSetReproducesCoverage(t *testing.T) {
	c := synthC(t, 7, 9)
	e, err := New(c, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.CollapsedUniverse(c)
	fs, err := fault.NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	detected := make([]bool, len(faults))
	for _, seq := range res.Tests {
		det, err := fs.Detects(seq, faults)
		if err != nil {
			t.Fatal(err)
		}
		for i, d := range det {
			detected[i] = detected[i] || d
		}
	}
	cov := fault.Summarize(detected)
	if cov.Detected < res.Stats.Detected {
		t.Errorf("test set detects %d faults, engine claimed %d", cov.Detected, res.Stats.Detected)
	}
}

// TestRedundantClassificationSound: plant a genuinely redundant fault
// (stuck-at on a line that can never affect outputs) and check the
// engine proves it.
func TestRedundantClassificationSound(t *testing.T) {
	// out = AND(in, in') is constant 0; the AND output s-a-0 is
	// undetectable. Build: n = NOT(in); a = AND(in, n); o = OR(a, b).
	c := netlist.New("red")
	reset := c.AddGate(netlist.Input, "reset")
	c.ResetPI = reset
	in := c.AddGate(netlist.Input, "in")
	n := c.AddGate(netlist.Not, "n", in)
	a := c.AddGate(netlist.And, "a", in, n)
	b := c.AddGate(netlist.Input, "b")
	o := c.AddGate(netlist.Or, "o", a, b)
	c.AddGate(netlist.Output, "out", o)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	e, err := New(c, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RunFaults([]fault.Fault{{Gate: a, Pin: -1, SA: sim.V0}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Redundant != 1 {
		t.Errorf("redundant AND s-a-0 not proven: %+v", res.Stats)
	}

	// And the complementary, detectable fault must be detected.
	e2, _ := New(c, defaultCfg())
	res2, err := e2.RunFaults([]fault.Fault{{Gate: a, Pin: -1, SA: sim.V1}})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.Detected != 1 {
		t.Errorf("detectable AND s-a-1 not detected: %+v", res2.Stats)
	}
}

// TestJustificationRequired: a fault whose excitation needs a non-reset
// state forces backward justification through the state space.
func TestStatesTraversedRecorded(t *testing.T) {
	states := 9
	if testing.Short() {
		states = 7
	}
	c := synthC(t, states, 12)
	e, err := New(c, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.StatesTraversed) < 2 {
		t.Errorf("expected multiple traversed states, got %d", len(res.Stats.StatesTraversed))
	}
}

func TestBudgetAbortsFaults(t *testing.T) {
	c := synthC(t, 9, 3)
	cfg := defaultCfg()
	cfg.FaultBudget = 2_000 // starvation
	e, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Aborted == 0 {
		t.Error("starved engine should abort faults")
	}
}

func TestTotalBudgetStopsRun(t *testing.T) {
	c := synthC(t, 9, 3)
	cfg := defaultCfg()
	cfg.TotalBudget = 50_000
	e, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Aborted == 0 {
		t.Error("total budget should abort remaining faults")
	}
	if res.Stats.Effort > 10*cfg.TotalBudget {
		t.Errorf("effort %d wildly exceeds total budget %d", res.Stats.Effort, cfg.TotalBudget)
	}
}

func TestLearningEngineStillCovers(t *testing.T) {
	c := synthC(t, 7, 5)
	cfg := defaultCfg()
	cfg.Learning = true
	e, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.FE() < 95 {
		t.Errorf("learning engine FE %.1f%% too low", res.Stats.FE())
	}
}

func TestRandomPhaseDetects(t *testing.T) {
	c := synthC(t, 7, 5)
	cfg := defaultCfg()
	cfg.RandomSequences = 16
	cfg.RandomLength = 24
	cfg.Seed = 42
	e, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.FE() < 90 {
		t.Errorf("random+deterministic FE %.1f%% too low", res.Stats.FE())
	}
}

func TestCompatible(t *testing.T) {
	cube := []sim.Val{sim.V1, sim.VX, sim.V0}
	if !compatible(cube, []sim.Val{sim.V1, sim.V0, sim.V0}) {
		t.Error("matching state rejected")
	}
	if compatible(cube, []sim.Val{sim.V0, sim.V0, sim.V0}) {
		t.Error("mismatching state accepted")
	}
	if compatible(cube, []sim.Val{sim.V1, sim.V0, sim.VX}) {
		t.Error("unknown state bit must not satisfy a specified cube bit")
	}
}

func TestCubeKeyAndFullySpecified(t *testing.T) {
	cube := []sim.Val{sim.V1, sim.V0, sim.VX}
	if cubeKey(cube) != "10X" {
		t.Errorf("cubeKey = %q", cubeKey(cube))
	}
	if _, full := fullySpecified(cube); full {
		t.Error("cube with X reported fully specified")
	}
	bits, full := fullySpecified([]sim.Val{sim.V1, sim.V0, sim.V1})
	if !full || bits != 0b101 {
		t.Errorf("fullySpecified = %b,%v", bits, full)
	}
}
