package atpg

import (
	"context"
	"runtime"

	"seqatpg/internal/fault"
	"seqatpg/internal/netlist"
	"seqatpg/internal/sim"
)

// CompactTests performs reverse-order test-set compaction, the classic
// static compaction companion of deterministic ATPG: sequences are
// fault-simulated in reverse order of generation (late tests, built for
// hard faults, tend to cover many easy ones), and a sequence is kept
// only if it detects at least one fault not covered by the sequences
// already kept. The returned subset detects exactly the same faults as
// the input set.
func CompactTests(c *netlist.Circuit, tests [][][]sim.Val, faults []fault.Fault) ([][][]sim.Val, error) {
	if len(tests) == 0 {
		return nil, nil
	}
	fs, err := fault.NewSimulator(c)
	if err != nil {
		return nil, err
	}
	fs.Width = fault.WidthAuto // verdicts are width-invariant; adapt to activity
	covered := make([]bool, len(faults))
	var kept [][][]sim.Val
	for i := len(tests) - 1; i >= 0; i-- {
		var live []fault.Fault
		var liveIdx []int
		for k, f := range faults {
			if !covered[k] {
				live = append(live, f)
				liveIdx = append(liveIdx, k)
			}
		}
		if len(live) == 0 {
			break
		}
		det, err := fs.DetectsParallel(context.Background(), tests[i], live, runtime.GOMAXPROCS(0))
		if err != nil {
			return nil, err
		}
		newCoverage := false
		for k, d := range det {
			if d {
				covered[liveIdx[k]] = true
				newCoverage = true
			}
		}
		if newCoverage {
			kept = append(kept, tests[i])
		}
	}
	// Restore generation order.
	for l, r := 0, len(kept)-1; l < r; l, r = l+1, r-1 {
		kept[l], kept[r] = kept[r], kept[l]
	}
	return kept, nil
}
