package atpg

import (
	"context"
	"fmt"
	"math/rand"
	"runtime/debug"

	"seqatpg/internal/fault"
	"seqatpg/internal/sim"
)

// Result is the outcome of a run: the generated tests, the per-fault
// outcomes (parallel to the fault list given to RunFaults), and the
// aggregate counters.
type Result struct {
	Tests    [][][]sim.Val // one sequence per accepted test (flush prefix included)
	Outcomes []Outcome     // parallel to the fault list
	Stats    Stats
	// Crashes records every fault search whose panic was recovered;
	// the matching Outcomes entries are Crashed.
	Crashes []*FaultCrash
	// Interrupted reports that the run's context was cancelled before
	// the fault list was finished. Outcomes and Stats then reflect the
	// last completed fault boundary; unattempted faults read as Aborted
	// but carry no Stats.Aborted count — resume from the Snapshot to
	// finish them.
	Interrupted bool
}

// FaultCrash describes one fault search that panicked. The panic is
// recovered, the engine state is rolled back to the preceding fault
// boundary, and the campaign continues; the crash itself travels as a
// structured error so callers can log or persist the diagnostics.
type FaultCrash struct {
	Index int // position in the fault list handed to the run
	Fault fault.Fault
	Panic string // rendered panic value
	Stack string // goroutine stack captured at the recover site
}

// Error renders the crash without the (multi-line) stack.
func (c *FaultCrash) Error() string {
	return fmt.Sprintf("atpg: fault %d (%v) search panicked: %s", c.Index, c.Fault, c.Panic)
}

// BoundaryFunc observes a run at fault boundaries: done list positions
// are finished out of total. snapshot builds a consistent Snapshot of
// the run at this boundary; it deep-copies the run state, so call it
// only when a checkpoint is actually wanted.
type BoundaryFunc func(done, total int, snapshot func() *Snapshot)

// runLoopState is the per-run mutable state that lives outside the
// Engine: the per-fault status codes, the accepted tests, recovered
// crashes, and the loop cursor.
type runLoopState struct {
	status     []byte // 0 live, 1 detected, 2 redundant, 3 aborted, 4 crashed
	tests      [][][]sim.Val
	crashes    []*FaultCrash
	randomDone bool
	next       int // index of the next unattempted fault
}

// boundaryMark captures everything a single fault attempt may mutate,
// so a cancelled or crashed attempt can be rolled back and the engine
// state made bit-equal to the preceding fault boundary. That equality
// is what makes checkpoint/resume exact: resuming replays the attempt
// from scratch and takes the same deterministic path.
type boundaryMark struct {
	effort          int64
	backtracks      int64
	learnHits       int64
	learnPrunes     int64
	learnedCubes    int64
	backjumps       int64
	restarts        int64
	unconfirmed     int
	totalLeft       int64
	outOfBudget     bool
	achievedLen     int
	failedLen       int
	sharedFailedLen int
	lemmaLen        int
}

func (e *Engine) mark() boundaryMark {
	return boundaryMark{
		effort:          e.Stats.Effort,
		backtracks:      e.Stats.Backtracks,
		learnHits:       e.Stats.LearnHits,
		learnPrunes:     e.Stats.LearnPrunes,
		learnedCubes:    e.Stats.LearnedCubes,
		backjumps:       e.Stats.Backjumps,
		restarts:        e.Stats.Restarts,
		unconfirmed:     e.Stats.Unconfirmed,
		totalLeft:       e.totalLeft,
		outOfBudget:     e.outOfBudget,
		achievedLen:     len(e.achievedKeys),
		failedLen:       len(e.failedKeys),
		sharedFailedLen: len(e.sharedFailedKeys),
		lemmaLen:        len(e.lemmaList),
	}
}

func (e *Engine) rollback(m boundaryMark) {
	e.Stats.Effort = m.effort
	e.Stats.Backtracks = m.backtracks
	e.Stats.LearnHits = m.learnHits
	e.Stats.LearnPrunes = m.learnPrunes
	e.Stats.LearnedCubes = m.learnedCubes
	e.Stats.Backjumps = m.backjumps
	e.Stats.Restarts = m.restarts
	e.Stats.Unconfirmed = m.unconfirmed
	e.totalLeft = m.totalLeft
	e.outOfBudget = m.outOfBudget
	for _, k := range e.achievedKeys[m.achievedLen:] {
		delete(e.achieved, k.fault+fmt.Sprint(k.bits))
	}
	e.achievedKeys = e.achievedKeys[:m.achievedLen]
	for _, k := range e.failedKeys[m.failedLen:] {
		delete(e.failedCubes, k)
	}
	e.failedKeys = e.failedKeys[:m.failedLen]
	for _, k := range e.sharedFailedKeys[m.sharedFailedLen:] {
		delete(e.sharedFailed, k)
	}
	e.sharedFailedKeys = e.sharedFailedKeys[:m.sharedFailedLen]
	for _, lc := range e.lemmaList[m.lemmaLen:] {
		delete(e.lemmas, lemmaKey(lc))
	}
	e.lemmaList = e.lemmaList[:m.lemmaLen]
}

// generateSafe runs one fault search with panic isolation.
func (e *Engine) generateSafe(i int, f *fault.Fault) (out Outcome, seq [][]sim.Val, crash *FaultCrash) {
	defer func() {
		if r := recover(); r != nil {
			crash = &FaultCrash{Index: i, Fault: *f, Panic: fmt.Sprint(r), Stack: string(debug.Stack())}
		}
	}()
	if e.TestHook != nil {
		e.TestHook(i, *f)
	}
	out, seq = e.generate(f)
	return out, seq, nil
}

// fsimPasses is the fault-simulation effort unit: the number of
// 63-fault simulator passes a drop over n live faults costs. (Exactly
// ceil(n/63) — n = 63 is one pass, not two.)
func fsimPasses(n int) int64 {
	return int64((n + 62) / 63)
}

// Run generates tests for the whole collapsed fault universe.
func (e *Engine) Run() (*Result, error) {
	return e.RunFaults(fault.CollapsedUniverse(e.c))
}

// RunFaults generates tests for the given fault list.
func (e *Engine) RunFaults(faults []fault.Fault) (*Result, error) {
	return e.RunFaultsCtx(context.Background(), faults)
}

// RunFaultsCtx is RunFaults under a context: when ctx is cancelled
// (deadline or signal), the run stops at the next effort charge and
// returns a partial Result with Interrupted set instead of nothing.
func (e *Engine) RunFaultsCtx(ctx context.Context, faults []fault.Fault) (*Result, error) {
	res, _, err := e.ResumeFaults(ctx, faults, nil, nil)
	return res, err
}

// ResumeFaults is the full-control run entry point: it starts (from ==
// nil) or resumes (from != nil) a fault-list run, reports progress at
// fault boundaries via onBoundary, and — when interrupted — returns
// the Snapshot of the last completed boundary alongside the partial
// Result. A run restored from that Snapshot on a fresh engine with the
// same Config finishes with Stats identical to a never-interrupted run.
func (e *Engine) ResumeFaults(ctx context.Context, faults []fault.Fault, from *Snapshot, onBoundary BoundaryFunc) (*Result, *Snapshot, error) {
	rs := &runLoopState{status: make([]byte, len(faults))}
	e.Stats.Total = len(faults)
	e.totalLeft = e.cfg.TotalBudget
	if from != nil {
		if err := e.restoreSnapshot(from, rs, len(faults)); err != nil {
			return nil, nil, err
		}
	}
	e.cancelDone = ctx.Done()
	e.cancelled = false
	defer func() { e.cancelDone = nil }()

	boundary := func(done int) {
		if onBoundary != nil {
			onBoundary(done, len(faults), func() *Snapshot { return e.buildSnapshot(rs) })
		}
	}

	dropDetected := func(seq [][]sim.Val) error {
		if e.cfg.NoFaultDrop {
			return nil
		}
		var live []fault.Fault
		var liveIdx []int
		for i, f := range faults {
			if rs.status[i] == 0 {
				live = append(live, f)
				liveIdx = append(liveIdx, i)
			}
		}
		if len(live) == 0 {
			return nil
		}
		// The drop pass runs under context.Background() even in a
		// cancellable run: cancellation is observed at the next effort
		// charge, so the pass always completes and the rollback-to-
		// boundary bookkeeping stays exact.
		det, err := e.fsim.DetectsParallel(context.Background(), seq, live, e.fsimWorkers)
		if err != nil {
			return err
		}
		// charge is denominated in gate evaluations; a simulator pass
		// over one vector touches every gate once.
		e.charge(fsimPasses(len(live)) * int64(len(seq)) * int64(len(e.order)))
		for k, d := range det {
			if d {
				rs.status[liveIdx[k]] = 1
				e.Stats.Detected++
			}
		}
		return nil
	}

	recordStates := func(seq [][]sim.Val) {
		states, err := fault.StateTrace(e.c, seq)
		if err != nil {
			return
		}
		for st := range states {
			e.Stats.StatesTraversed[st] = true
		}
	}

	// Random preprocessing phase (Attest-style). The phase is atomic
	// with respect to checkpointing: a cancellation mid-phase rolls the
	// whole phase back, and a resumed run replays it from the start.
	if e.cfg.RandomSequences > 0 && !rs.randomDone {
		m := e.mark()
		savedStatus := append([]byte(nil), rs.status...)
		savedTests := len(rs.tests)
		savedDetected := e.Stats.Detected
		savedStates := copyStateSet(e.Stats.StatesTraversed)

		rng := rand.New(rand.NewSource(e.cfg.Seed + 17))
		resetIdx := e.piIndexOfReset()
		for s := 0; s < e.cfg.RandomSequences && !e.checkCancel(); s++ {
			seq := append([][]sim.Val{}, e.flushPrefix...)
			for v := 0; v < e.cfg.RandomLength; v++ {
				vec := make([]sim.Val, len(e.c.PIs))
				for i := range vec {
					vec[i] = sim.Val(rng.Intn(2))
				}
				vec[resetIdx] = sim.V0
				if rng.Intn(16) == 0 {
					vec[resetIdx] = sim.V1
				}
				seq = append(seq, vec)
			}
			before := e.Stats.Detected
			if err := dropDetected(seq); err != nil {
				return nil, nil, err
			}
			if e.Stats.Detected > before {
				rs.tests = append(rs.tests, seq)
				recordStates(seq)
			}
			if e.outOfBudget {
				break
			}
		}
		if e.checkCancel() {
			e.rollback(m)
			rs.status = savedStatus
			rs.tests = rs.tests[:savedTests]
			e.Stats.Detected = savedDetected
			e.Stats.StatesTraversed = savedStates
			res := e.assembleResult(rs, true)
			return res, e.buildSnapshot(rs), nil
		}
		rs.randomDone = true
		boundary(rs.next)
	}

	// Deterministic phase.
	i := rs.next
	for ; i < len(faults); i++ {
		if rs.status[i] != 0 {
			rs.next = i + 1
			continue
		}
		if e.checkCancel() {
			break // fault i stays unattempted; rs.next points at it
		}
		if e.outOfBudget {
			rs.status[i] = 3
			e.Stats.Aborted++
			rs.next = i + 1
			boundary(i + 1)
			continue
		}
		m := e.mark()
		e.remaining = e.cfg.FaultBudget
		outcome, seq, crash := e.generateSafe(i, &faults[i])
		if e.cancelled {
			// The attempt was cut short by cancellation; its control
			// flow diverged from an uninterrupted run's, so discard
			// every side effect (including a panic that may only have
			// fired because of the early aborts) and let the resumed
			// run replay the fault in full.
			e.rollback(m)
			break
		}
		if crash != nil {
			e.rollback(m)
			rs.status[i] = 4
			e.Stats.Crashed++
			rs.crashes = append(rs.crashes, crash)
			rs.next = i + 1
			e.capLearning()
			boundary(i + 1)
			continue
		}
		switch outcome {
		case Detected:
			rs.status[i] = 1
			e.Stats.Detected++
			rs.tests = append(rs.tests, seq)
			recordStates(seq)
			// Drop everything else this sequence catches (this fault is
			// already marked, so it is not double counted).
			if err := dropDetected(seq); err != nil {
				return nil, nil, err
			}
		case Redundant:
			rs.status[i] = 2
			e.Stats.Redundant++
		default:
			rs.status[i] = 3
			e.Stats.Aborted++
		}
		rs.next = i + 1
		// Size-bound the learning stores here, at the fault boundary:
		// mid-fault eviction would invalidate the length-based rollback
		// journals captured by mark().
		e.capLearning()
		boundary(i + 1)
	}

	interrupted := i < len(faults)
	res := e.assembleResult(rs, interrupted)
	if !interrupted {
		return res, nil, nil
	}
	return res, e.buildSnapshot(rs), nil
}

// assembleResult maps status codes to outcomes and copies the stats.
func (e *Engine) assembleResult(rs *runLoopState, interrupted bool) *Result {
	res := &Result{
		Tests:       rs.tests,
		Outcomes:    make([]Outcome, len(rs.status)),
		Crashes:     rs.crashes,
		Interrupted: interrupted,
	}
	for i, st := range rs.status {
		switch st {
		case 1:
			res.Outcomes[i] = Detected
		case 2:
			res.Outcomes[i] = Redundant
		case 4:
			res.Outcomes[i] = Crashed
		default:
			res.Outcomes[i] = Aborted
		}
	}
	res.Stats = e.Stats
	return res
}
