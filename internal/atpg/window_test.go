package atpg

import (
	"testing"

	"seqatpg/internal/fault"
	"seqatpg/internal/netlist"
	"seqatpg/internal/sim"
)

// chain builds: in -> AND(in, reset') -> DFF -> NOT -> out, with reset.
func chain(t *testing.T) *netlist.Circuit {
	t.Helper()
	c := netlist.New("chain")
	reset := c.AddGate(netlist.Input, "reset")
	c.ResetPI = reset
	in := c.AddGate(netlist.Input, "in")
	nr := c.AddGate(netlist.Not, "nr", reset)
	a := c.AddGate(netlist.And, "a", in, nr)
	ff := c.AddGate(netlist.DFF, "q", a)
	n := c.AddGate(netlist.Not, "n", ff)
	c.AddGate(netlist.Output, "o", n)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestV5Algebra(t *testing.T) {
	d := V5{sim.V1, sim.V0}
	db := V5{sim.V0, sim.V1}
	if !d.isD() || !db.isD() {
		t.Error("D and D-bar must be fault effects")
	}
	if vx().isD() || vBoth(sim.V1).isD() {
		t.Error("X and clean values are not fault effects")
	}
	if !vBoth(sim.V0).equalBoth() || d.equalBoth() {
		t.Error("equalBoth wrong")
	}
	// AND of D with 1 keeps D; with 0 kills it.
	out := evalGate5(netlist.And, []V5{d, vBoth(sim.V1)})
	if !out.isD() {
		t.Error("AND(D,1) must stay D")
	}
	out = evalGate5(netlist.And, []V5{d, vBoth(sim.V0)})
	if !out.equalBoth() || out.G != sim.V0 {
		t.Error("AND(D,0) must be 0")
	}
	// NOT(D) = D-bar.
	out = evalGate5(netlist.Not, []V5{d})
	if out.G != sim.V0 || out.F != sim.V1 {
		t.Error("NOT(D) must be D-bar")
	}
}

func TestWindowStemInjectionAndPropagation(t *testing.T) {
	c := chain(t)
	order, _ := c.TopoOrder()
	// Stuck-at-0 on the AND output (gate 3).
	f := &fault.Fault{Gate: 3, Pin: -1, SA: sim.V0}
	w := newWindow(c, order, 2, f)
	// Frame 0: reset=0, in=1 -> AND good value 1, faulty 0 => D at D-line;
	// frame 1: the DFF carries the D, the NOT makes D-bar at the PO.
	w.piVals[0][0] = sim.V0 // reset
	w.piVals[0][1] = sim.V1 // in
	w.piVals[1][0] = sim.V0
	w.piVals[1][1] = sim.V0
	w.simulate()
	if got := w.faultLineGood(); got != sim.V1 {
		t.Fatalf("fault line good value = %v, want 1", got)
	}
	if !w.detectedAtPO() {
		t.Fatal("fault effect should reach the PO in frame 1")
	}
	if !w.vals[1][6].isD() { // the Output gate
		t.Error("PO value should be a fault effect")
	}
}

func TestWindowBranchInjection(t *testing.T) {
	c := chain(t)
	order, _ := c.TopoOrder()
	// Branch fault: AND's pin 0 (the in branch) stuck at 0.
	f := &fault.Fault{Gate: 3, Pin: 0, SA: sim.V0}
	w := newWindow(c, order, 1, f)
	w.piVals[0][0] = sim.V0
	w.piVals[0][1] = sim.V1
	w.stateVals[0] = sim.V0
	w.simulate()
	// The AND output itself becomes D (good 1, faulty 0).
	if !w.vals[0][3].isD() {
		t.Error("branch fault must develop at the gate output")
	}
	// But the source gate (the input) is unaffected.
	if w.vals[0][1].isD() {
		t.Error("branch fault must not corrupt the stem")
	}
}

func TestWindowIncrementalCharge(t *testing.T) {
	c := chain(t)
	order, _ := c.TopoOrder()
	f := &fault.Fault{Gate: 3, Pin: -1, SA: sim.V0}
	w := newWindow(c, order, 4, f)
	w.fallbackEvals = -1 // pure event-driven, no sweep fallback
	// A fresh window costs one full sweep: k x gates.
	if evals := w.simulate(); evals != 4*len(order) {
		t.Errorf("fresh window charged %d evals, want %d", evals, 4*len(order))
	}
	// No changes: nothing to re-evaluate.
	if evals := w.simulate(); evals != 0 {
		t.Errorf("no-op simulate charged %d evals, want 0", evals)
	}
	// One frame-0 PI change re-evaluates only its fanout cone, which is
	// strictly smaller than a full sweep — and at least the seed gate.
	w.setPI(0, 1, sim.V1)
	evals := w.simulate()
	if evals == 0 || evals >= 4*len(order) {
		t.Errorf("single-PI change charged %d evals, want within (0, %d)", evals, 4*len(order))
	}
	// Retracting it costs the same cone again.
	w.setPI(0, 1, sim.VX)
	if back := w.simulate(); back != evals {
		t.Errorf("retraction charged %d evals, assignment charged %d", back, evals)
	}
	// Assigning the same value twice is free.
	w.setPI(0, 1, sim.VX)
	if evals := w.simulate(); evals != 0 {
		t.Errorf("redundant assignment charged %d evals, want 0", evals)
	}
}

func TestWindowInvalidateForcesFullSweep(t *testing.T) {
	c := chain(t)
	order, _ := c.TopoOrder()
	f := &fault.Fault{Gate: 3, Pin: -1, SA: sim.V0}
	w := newWindow(c, order, 2, f)
	w.simulate()
	// Bulk-write inputs behind the event system's back, then invalidate.
	w.piVals[0][0] = sim.V0
	w.piVals[0][1] = sim.V1
	w.invalidate()
	if evals := w.simulate(); evals != 2*len(order) {
		t.Errorf("invalidated window charged %d evals, want %d", evals, 2*len(order))
	}
	if got := w.faultLineGood(); got != sim.V1 {
		t.Errorf("fault line good value = %v, want 1 after invalidate+simulate", got)
	}
}

func TestDFrontierTracksBlockedEffect(t *testing.T) {
	// in2 gates the propagation: AND(D-carrier, in2).
	c := netlist.New("frontier")
	reset := c.AddGate(netlist.Input, "reset")
	c.ResetPI = reset
	in := c.AddGate(netlist.Input, "in")
	in2 := c.AddGate(netlist.Input, "in2")
	b := c.AddGate(netlist.Buf, "b", in)
	a := c.AddGate(netlist.And, "a", b, in2)
	c.AddGate(netlist.Output, "o", a)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	order, _ := c.TopoOrder()
	f := &fault.Fault{Gate: b, Pin: -1, SA: sim.V0}
	w := newWindow(c, order, 1, f)
	w.setPI(0, 1, sim.V1) // excite: buf good 1, faulty 0
	w.simulate()
	if len(w.dFrontier()) != 1 {
		t.Fatalf("frontier = %v, want the blocked AND", w.dFrontier())
	}
	if w.detectedAtPO() {
		t.Fatal("effect must be blocked while in2 is X")
	}
	// Open the gate.
	w.setPI(0, 2, sim.V1)
	w.simulate()
	if !w.detectedAtPO() {
		t.Error("effect should propagate once in2=1")
	}
	// Close the gate: effect killed, frontier empty.
	w.setPI(0, 2, sim.V0)
	w.simulate()
	if w.detectedAtPO() || len(w.dFrontier()) != 0 {
		t.Error("in2=0 must kill the effect")
	}
}

func TestSCOAPBasics(t *testing.T) {
	c := chain(t)
	s := computeSCOAP(c)
	// An input is maximally controllable.
	if s.cost(1, true) != 1 || s.cost(1, false) != 1 {
		t.Error("PI controllability must be 1")
	}
	// Logic behind a DFF is harder than in front of it.
	if s.cost(5, false) <= s.cost(3, false) {
		t.Errorf("NOT behind DFF (cc0=%d) should cost more than AND (cc0=%d)",
			s.cost(5, false), s.cost(3, false))
	}
	// Constants: only one value achievable.
	c2 := netlist.New("const")
	c2.AddGate(netlist.Input, "in")
	z := c2.AddGate(netlist.Const0, "z")
	s2 := computeSCOAP(c2)
	if s2.cost(z, false) != 0 {
		t.Error("Const0 is free to set to 0")
	}
	if s2.cost(z, true) < CCCap {
		t.Error("Const0 can never be 1")
	}
}

func TestBacktraceReachesInput(t *testing.T) {
	c := chain(t)
	order, _ := c.TopoOrder()
	e, err := New(c, Config{MaxFrames: 2, FaultBudget: 1_000_000, FlushCycles: 1})
	if err != nil {
		t.Fatal(err)
	}
	w := newWindow(c, order, 2, nil)
	w.simulate()
	// Justify the NOT's output (gate 5) to 0 in frame 1: the NOT reads
	// the DFF, crossing into frame 0's AND, whose inputs are PIs.
	pin, v, ok := e.backtrace(w, objective{frame: 1, gate: 5, val: sim.V0})
	if !ok {
		t.Fatal("backtrace failed")
	}
	// The request walks NOT(0->1) -> DFF(frame 0) -> AND wants 1 -> both
	// fanins must be 1, so a PI or the reset inverter's input.
	if pin.isState {
		t.Errorf("two-frame window must not stop at the state: %+v", pin)
	}
	_ = v
}

func TestBacktraceStopsAtConstant(t *testing.T) {
	c := netlist.New("k")
	reset := c.AddGate(netlist.Input, "reset")
	c.ResetPI = reset
	one := c.AddGate(netlist.Const1, "one")
	n := c.AddGate(netlist.Not, "n", one)
	c.AddGate(netlist.Output, "o", n)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	order, _ := c.TopoOrder()
	e, err := New(c, Config{MaxFrames: 1, FaultBudget: 1_000, FlushCycles: 1})
	if err != nil {
		t.Fatal(err)
	}
	w := newWindow(c, order, 1, nil)
	w.simulate()
	if _, _, ok := e.backtrace(w, objective{frame: 0, gate: n, val: sim.V0}); ok {
		t.Error("backtrace through a constant must fail")
	}
}
