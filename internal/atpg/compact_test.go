package atpg

import (
	"testing"

	"seqatpg/internal/fault"
)

// TestCompactTestsPreservesCoverage: the compacted set must detect
// exactly the faults the full set detects, with no more sequences.
func TestCompactTestsPreservesCoverage(t *testing.T) {
	states := 9
	if testing.Short() {
		states = 7
	}
	c := synthC(t, states, 12)
	e, err := New(c, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.CollapsedUniverse(c)
	fs, err := fault.NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	full := make([]bool, len(faults))
	for _, seq := range res.Tests {
		det, err := fs.Detects(seq, faults)
		if err != nil {
			t.Fatal(err)
		}
		for i, d := range det {
			full[i] = full[i] || d
		}
	}
	compacted, err := CompactTests(c, res.Tests, faults)
	if err != nil {
		t.Fatal(err)
	}
	if len(compacted) > len(res.Tests) {
		t.Fatalf("compaction grew the set: %d -> %d", len(res.Tests), len(compacted))
	}
	comp := make([]bool, len(faults))
	for _, seq := range compacted {
		det, err := fs.Detects(seq, faults)
		if err != nil {
			t.Fatal(err)
		}
		for i, d := range det {
			comp[i] = comp[i] || d
		}
	}
	for i := range faults {
		if full[i] != comp[i] {
			t.Fatalf("fault %v: full=%v compacted=%v", faults[i], full[i], comp[i])
		}
	}
	t.Logf("compaction: %d -> %d sequences", len(res.Tests), len(compacted))
}

func TestCompactTestsEmpty(t *testing.T) {
	c := synthC(t, 7, 5)
	out, err := CompactTests(c, nil, fault.CollapsedUniverse(c))
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		t.Error("empty input must return nil")
	}
}
