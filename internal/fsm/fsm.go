// Package fsm models finite state machines at the state-transition-graph
// level: the KISS2 exchange format, reachability queries, determinism and
// completeness checks, and stamina-style state minimization. It also
// provides a deterministic generator for the synthetic benchmark suite
// that stands in for the MCNC FSMs of the reproduced paper (Table 1).
package fsm

import (
	"fmt"

	"seqatpg/internal/logic"
)

// Transition is one symbolic edge of the state transition graph: when
// the machine is in state From and the primary inputs match Input, the
// next state is To and the primary outputs take Output. Output bits are
// fully specified (Zero or One) for the machines in this project.
type Transition struct {
	Input  logic.Cube
	From   int
	To     int
	Output logic.Cube
}

// FSM is a symbolic finite state machine.
type FSM struct {
	Name       string
	NumInputs  int
	NumOutputs int
	States     []string // state names; index is the state id
	Reset      int      // id of the reset state
	Trans      []Transition
}

// NumStates returns the number of states.
func (m *FSM) NumStates() int { return len(m.States) }

// Clone deep-copies the machine.
func (m *FSM) Clone() *FSM {
	c := &FSM{
		Name:       m.Name,
		NumInputs:  m.NumInputs,
		NumOutputs: m.NumOutputs,
		States:     append([]string(nil), m.States...),
		Reset:      m.Reset,
		Trans:      make([]Transition, len(m.Trans)),
	}
	for i, t := range m.Trans {
		c.Trans[i] = Transition{Input: t.Input.Clone(), From: t.From, To: t.To, Output: t.Output.Clone()}
	}
	return c
}

// TransFrom returns the indices of transitions leaving state s.
func (m *FSM) TransFrom(s int) []int {
	var out []int
	for i, t := range m.Trans {
		if t.From == s {
			out = append(out, i)
		}
	}
	return out
}

// Validate checks structural sanity: state ids in range, cube widths
// matching the interface, a valid reset state, and determinism (no two
// transitions from the same state with intersecting input cubes and
// different behaviour).
func (m *FSM) Validate() error {
	if m.NumStates() == 0 {
		return fmt.Errorf("fsm %s: no states", m.Name)
	}
	if m.Reset < 0 || m.Reset >= m.NumStates() {
		return fmt.Errorf("fsm %s: reset state %d out of range", m.Name, m.Reset)
	}
	for i, t := range m.Trans {
		if t.From < 0 || t.From >= m.NumStates() || t.To < 0 || t.To >= m.NumStates() {
			return fmt.Errorf("fsm %s: transition %d has out-of-range state", m.Name, i)
		}
		if len(t.Input) != m.NumInputs {
			return fmt.Errorf("fsm %s: transition %d input width %d != %d", m.Name, i, len(t.Input), m.NumInputs)
		}
		if len(t.Output) != m.NumOutputs {
			return fmt.Errorf("fsm %s: transition %d output width %d != %d", m.Name, i, len(t.Output), m.NumOutputs)
		}
	}
	// Determinism: overlapping input cubes from one state must agree.
	byState := make(map[int][]int)
	for i, t := range m.Trans {
		byState[t.From] = append(byState[t.From], i)
	}
	for s, idxs := range byState {
		for a := 0; a < len(idxs); a++ {
			for b := a + 1; b < len(idxs); b++ {
				ta, tb := m.Trans[idxs[a]], m.Trans[idxs[b]]
				if !ta.Input.Intersects(tb.Input) {
					continue
				}
				if ta.To != tb.To || !ta.Output.Equal(tb.Output) {
					return fmt.Errorf("fsm %s: state %s has conflicting transitions %d and %d",
						m.Name, m.States[s], idxs[a], idxs[b])
				}
			}
		}
	}
	return nil
}

// Complete reports whether every state specifies behaviour for the whole
// input space (the union of its input cubes is a tautology).
func (m *FSM) Complete() bool {
	for s := range m.States {
		cov := logic.NewCover(m.NumInputs)
		for _, i := range m.TransFrom(s) {
			cov.Add(m.Trans[i].Input)
		}
		if !cov.Tautology() {
			return false
		}
	}
	return true
}

// Reachable returns the set of states reachable from the reset state.
func (m *FSM) Reachable() map[int]bool {
	seen := map[int]bool{m.Reset: true}
	queue := []int{m.Reset}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for _, i := range m.TransFrom(s) {
			to := m.Trans[i].To
			if !seen[to] {
				seen[to] = true
				queue = append(queue, to)
			}
		}
	}
	return seen
}

// Step returns the next state and output for a concrete input assignment
// (bit i of input = primary input i). The boolean is false when the
// machine leaves the behaviour unspecified for that input.
func (m *FSM) Step(state int, input uint64) (next int, output logic.Cube, ok bool) {
	for _, i := range m.TransFrom(state) {
		t := m.Trans[i]
		if t.Input.EvalBits(input) {
			return t.To, t.Output, true
		}
	}
	return 0, nil, false
}
