package fsm

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"seqatpg/internal/logic"
)

// WriteKISS2 serializes the machine in the KISS2 exchange format used by
// the MCNC benchmark suite and SIS.
func WriteKISS2(w io.Writer, m *FSM) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", m.Name)
	fmt.Fprintf(bw, ".i %d\n.o %d\n.p %d\n.s %d\n.r %s\n",
		m.NumInputs, m.NumOutputs, len(m.Trans), m.NumStates(), m.States[m.Reset])
	for _, t := range m.Trans {
		fmt.Fprintf(bw, "%s %s %s %s\n", t.Input, m.States[t.From], m.States[t.To], t.Output)
	}
	fmt.Fprintln(bw, ".e")
	return bw.Flush()
}

// ReadKISS2 parses a KISS2 description. State names are interned in
// order of first appearance unless a .s/.r header pins the reset state.
func ReadKISS2(r io.Reader) (*FSM, error) {
	m := &FSM{Reset: -1}
	stateID := map[string]int{}
	intern := func(name string) int {
		if id, ok := stateID[name]; ok {
			return id
		}
		id := len(m.States)
		stateID[name] = id
		m.States = append(m.States, name)
		return id
	}
	var resetName string
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case ".i", ".o", ".p", ".s":
			if len(fields) < 2 {
				return nil, fmt.Errorf("kiss2 line %d: missing value for %s", line, fields[0])
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("kiss2 line %d: %v", line, err)
			}
			switch fields[0] {
			case ".i":
				m.NumInputs = n
			case ".o":
				m.NumOutputs = n
			}
			// .p and .s are advisory; actual counts come from the body.
		case ".r":
			if len(fields) < 2 {
				return nil, fmt.Errorf("kiss2 line %d: missing reset state", line)
			}
			resetName = fields[1]
		case ".e", ".end":
			// terminator
		default:
			if len(fields) != 4 {
				return nil, fmt.Errorf("kiss2 line %d: expected 4 fields, got %d", line, len(fields))
			}
			in, err := logic.ParseCube(fields[0])
			if err != nil {
				return nil, fmt.Errorf("kiss2 line %d: %v", line, err)
			}
			out, err := logic.ParseCube(fields[3])
			if err != nil {
				return nil, fmt.Errorf("kiss2 line %d: %v", line, err)
			}
			m.Trans = append(m.Trans, Transition{
				Input:  in,
				From:   intern(fields[1]),
				To:     intern(fields[2]),
				Output: out,
			})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(m.States) == 0 {
		return nil, fmt.Errorf("kiss2: no transitions")
	}
	if resetName != "" {
		id, ok := stateID[resetName]
		if !ok {
			return nil, fmt.Errorf("kiss2: reset state %q never appears", resetName)
		}
		m.Reset = id
	} else {
		m.Reset = 0
	}
	return m, nil
}

// WriteDOT renders the state transition graph in Graphviz DOT format
// for visualization: one node per state (reset state boxed), one edge
// per transition labelled "input/output".
func WriteDOT(w io.Writer, m *FSM) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n  rankdir=LR;\n", m.Name)
	for i, name := range m.States {
		shape := "ellipse"
		if i == m.Reset {
			shape = "box"
		}
		fmt.Fprintf(bw, "  %q [shape=%s];\n", name, shape)
	}
	for _, t := range m.Trans {
		fmt.Fprintf(bw, "  %q -> %q [label=\"%s/%s\"];\n",
			m.States[t.From], m.States[t.To], t.Input, t.Output)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
