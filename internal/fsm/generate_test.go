package fsm

import "testing"

func TestGenerateSmall(t *testing.T) {
	spec := GenSpec{Name: "g1", Inputs: 4, Outputs: 3, States: 10, Seed: 42}
	m, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumStates() != 10 {
		t.Errorf("states = %d, want 10", m.NumStates())
	}
	if err := m.Validate(); err != nil {
		t.Error(err)
	}
	if !m.Complete() {
		t.Error("generated machine must be complete")
	}
	if len(m.Reachable()) != 10 {
		t.Error("all states must be reachable")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := GenSpec{Name: "g2", Inputs: 5, Outputs: 4, States: 12, Seed: 99}
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Trans) != len(b.Trans) {
		t.Fatal("two runs differ in transition count")
	}
	for i := range a.Trans {
		ta, tb := a.Trans[i], b.Trans[i]
		if !ta.Input.Equal(tb.Input) || ta.From != tb.From || ta.To != tb.To || !ta.Output.Equal(tb.Output) {
			t.Fatalf("two runs differ at transition %d", i)
		}
	}
}

func TestGenerateWithRedundancy(t *testing.T) {
	spec := GenSpec{Name: "g3", Inputs: 4, Outputs: 4, States: 12, Redundant: 3, Seed: 5}
	m, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumStates() != 12 {
		t.Fatalf("states = %d, want 12", m.NumStates())
	}
	if len(m.Reachable()) != 12 {
		t.Fatal("duplicates must be reachable")
	}
	min, err := Minimize(m)
	if err != nil {
		t.Fatal(err)
	}
	if min.NumStates() != 9 {
		t.Errorf("minimized states = %d, want 9", min.NumStates())
	}
}

func TestGenerateRejectsBadSpecs(t *testing.T) {
	if _, err := Generate(GenSpec{Name: "bad", Inputs: 0, Outputs: 1, States: 3}); err == nil {
		t.Error("zero inputs must fail")
	}
	if _, err := Generate(GenSpec{Name: "bad", Inputs: 2, Outputs: 1, States: 3, Redundant: 3}); err == nil {
		t.Error("all-redundant must fail")
	}
}

// TestSuiteMatchesTable1 checks that the whole synthetic suite has the
// paper's Table 1 interface dimensions and that minimization lands on
// the footnote-2 state counts.
func TestSuiteMatchesTable1(t *testing.T) {
	want := map[string][3]int{ // PI, PO, states
		"dk16": {3, 3, 27},
		"pma":  {7, 8, 24},
		"s510": {20, 7, 47},
		"s820": {18, 19, 25},
		"s832": {18, 19, 25},
		"scf":  {27, 54, 121},
	}
	for _, b := range Suite() {
		b := b
		t.Run(b.Spec.Name, func(t *testing.T) {
			w, ok := want[b.Spec.Name]
			if !ok {
				t.Fatalf("unexpected benchmark %s", b.Spec.Name)
			}
			m, err := Generate(b.Spec)
			if err != nil {
				t.Fatal(err)
			}
			if m.NumInputs != w[0] || m.NumOutputs != w[1] || m.NumStates() != w[2] {
				t.Errorf("%s: got %d/%d/%d, want %d/%d/%d", b.Spec.Name,
					m.NumInputs, m.NumOutputs, m.NumStates(), w[0], w[1], w[2])
			}
			if len(m.Reachable()) != w[2] {
				t.Error("all states must be reachable")
			}
			min, err := Minimize(m)
			if err != nil {
				t.Fatal(err)
			}
			if min.NumStates() != b.MinStates {
				t.Errorf("%s minimized to %d states, want %d", b.Spec.Name, min.NumStates(), b.MinStates)
			}
		})
	}
}
