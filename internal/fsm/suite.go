package fsm

// Benchmark is one entry of the synthetic benchmark suite standing in
// for the paper's MCNC machines (Table 1). MinStates is the state count
// after stamina-style minimization (footnote 2 of the paper: s820 and
// s832 minimize to 24 states, scf to 94; the others are already
// minimal).
type Benchmark struct {
	Spec      GenSpec
	MinStates int
}

// Suite returns the six benchmark machines with the interface dimensions
// and state counts of the paper's Table 1. Seeds are fixed so the whole
// reproduction is deterministic.
func Suite() []Benchmark {
	return []Benchmark{
		{Spec: GenSpec{Name: "dk16", Inputs: 3, Outputs: 3, States: 27, Redundant: 0, Seed: 1601}, MinStates: 27},
		{Spec: GenSpec{Name: "pma", Inputs: 7, Outputs: 8, States: 24, Redundant: 0, Seed: 2402}, MinStates: 24},
		{Spec: GenSpec{Name: "s510", Inputs: 20, Outputs: 7, States: 47, Redundant: 0, Seed: 5103}, MinStates: 47},
		{Spec: GenSpec{Name: "s820", Inputs: 18, Outputs: 19, States: 25, Redundant: 1, Seed: 8204}, MinStates: 24},
		{Spec: GenSpec{Name: "s832", Inputs: 18, Outputs: 19, States: 25, Redundant: 1, Seed: 8325}, MinStates: 24},
		{Spec: GenSpec{Name: "scf", Inputs: 27, Outputs: 54, States: 121, Redundant: 27, Seed: 12106}, MinStates: 94},
	}
}

// MustGenerate generates a benchmark machine, panicking on failure;
// intended for the experiment drivers where the suite is known-good.
func MustGenerate(spec GenSpec) *FSM {
	m, err := Generate(spec)
	if err != nil {
		panic(err)
	}
	return m
}
