package fsm

import (
	"fmt"
	"math/rand"

	"seqatpg/internal/logic"
)

// GenSpec describes a synthetic benchmark machine. The generator
// produces a completely specified, deterministic FSM with exactly
// States states, all reachable from the reset state, of which Redundant
// are duplicates of other states (so stamina-style minimization reduces
// the machine to States-Redundant states, mirroring the footnote-2
// behaviour of the paper's s820/s832/scf benchmarks).
type GenSpec struct {
	Name      string
	Inputs    int
	Outputs   int
	States    int
	Redundant int
	Seed      int64
}

// maxDecisionBits bounds the per-state branching: each state uses at
// most 2^maxDecisionBits transitions, which keeps the synthesized
// next-state logic at control-logic scale.
const maxDecisionBits = 3

// Generate builds the machine described by spec. The construction is
// fully deterministic in the seed. It retries internal seeds until the
// base machine (before duplicate insertion) is minimal, so the
// advertised Redundant count is exact.
func Generate(spec GenSpec) (*FSM, error) {
	if spec.States <= 0 || spec.Inputs <= 0 || spec.Outputs <= 0 {
		return nil, fmt.Errorf("fsm: invalid generator spec %+v", spec)
	}
	if spec.Redundant >= spec.States {
		return nil, fmt.Errorf("fsm: spec %s has no base states", spec.Name)
	}
	base := spec.States - spec.Redundant
	for attempt := 0; attempt < 50; attempt++ {
		seed := spec.Seed + int64(attempt)*1_000_003
		m, err := generateBase(spec.Name, spec.Inputs, spec.Outputs, base, seed)
		if err != nil {
			return nil, err
		}
		// The base machine must already be minimal so duplicates are the
		// only redundancy.
		minimized, err := Minimize(m)
		if err != nil {
			return nil, err
		}
		if minimized.NumStates() != base {
			continue
		}
		if spec.Redundant > 0 {
			if !addDuplicates(m, spec.Redundant, rand.New(rand.NewSource(seed+7))) {
				continue
			}
		}
		if err := m.Validate(); err != nil {
			return nil, fmt.Errorf("fsm: generated machine invalid: %w", err)
		}
		return m, nil
	}
	return nil, fmt.Errorf("fsm: could not generate minimal base for %s after 50 attempts", spec.Name)
}

// generateBase builds a complete deterministic machine with n states all
// reachable from state 0.
func generateBase(name string, pi, po, n int, seed int64) (*FSM, error) {
	rng := rand.New(rand.NewSource(seed))
	m := &FSM{Name: name, NumInputs: pi, NumOutputs: po, Reset: 0}
	for s := 0; s < n; s++ {
		m.States = append(m.States, fmt.Sprintf("s%d", s))
	}

	// Spanning tree: each state beyond the reset gets a parent with
	// spare transition capacity; capacity 2^maxDecisionBits-1 keeps one
	// slot per state free for a non-tree edge.
	maxTrans := 1 << maxDecisionBits
	capLeft := make([]int, n)
	for s := range capLeft {
		capLeft[s] = maxTrans - 1
	}
	children := make([][]int, n)
	for s := 1; s < n; s++ {
		var eligible []int
		for p := 0; p < s; p++ {
			if capLeft[p] > 0 {
				eligible = append(eligible, p)
			}
		}
		if len(eligible) == 0 {
			return nil, fmt.Errorf("fsm: spanning tree ran out of capacity")
		}
		p := eligible[rng.Intn(len(eligible))]
		children[p] = append(children[p], s)
		capLeft[p]--
	}

	decBits := min(pi, maxDecisionBits)
	for s := 0; s < n; s++ {
		need := len(children[s])
		// Number of transitions: enough for the tree children plus at
		// least one extra edge for cycles/variety, as a power of two.
		b := 1
		for (1 << b) < need+1 {
			b++
		}
		if b > decBits {
			b = decBits
		}
		t := 1 << b
		vars := rng.Perm(pi)[:b]
		for j := 0; j < t; j++ {
			in := logic.NewCube(pi)
			for k, v := range vars {
				if (j>>k)&1 == 1 {
					in[v] = logic.One
				} else {
					in[v] = logic.Zero
				}
			}
			var to int
			if j < need {
				to = children[s][j]
			} else {
				to = rng.Intn(n)
			}
			// Control-logic outputs are sparse: most control signals are
			// inactive in most states, which keeps the synthesized output
			// logic shallow relative to the next-state logic (as in the
			// paper's benchmarks, whose retimings rebalance the state
			// cycles rather than the input-output paths).
			out := make(logic.Cube, po)
			for k := range out {
				if rng.Intn(4) == 0 {
					out[k] = logic.One
				} else {
					out[k] = logic.Zero
				}
			}
			m.Trans = append(m.Trans, Transition{Input: in, From: s, To: to, Output: out})
		}
	}
	return m, nil
}

// addDuplicates appends k states that clone the behaviour of existing
// states and redirects one non-tree incoming edge of each cloned state
// to the duplicate, so the duplicate is reachable, the original stays
// reachable, and the machine's behaviour is unchanged. Returns false if
// not enough redirectable edges exist.
func addDuplicates(m *FSM, k int, rng *rand.Rand) bool {
	// Count incoming edges per state.
	incoming := make(map[int][]int) // state -> transition indices
	for i, t := range m.Trans {
		incoming[t.To] = append(incoming[t.To], i)
	}
	// A transition is safe to redirect when its target keeps at least
	// one other incoming edge (we conservatively require ≥2 incoming).
	type candidate struct{ trans, target int }
	var cands []candidate
	for s, edges := range incoming {
		if len(edges) < 2 || s == m.Reset {
			continue
		}
		for _, e := range edges[1:] { // keep edges[0] pointing at s
			cands = append(cands, candidate{e, s})
		}
	}
	rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	used := map[int]bool{} // transitions already redirected
	added := 0
	for _, c := range cands {
		if added == k {
			break
		}
		if used[c.trans] {
			continue
		}
		orig := c.target
		dup := len(m.States)
		m.States = append(m.States, fmt.Sprintf("%s_dup%d", m.States[orig], added))
		// Clone all outgoing transitions of orig.
		for _, i := range m.TransFrom(orig) {
			t := m.Trans[i]
			m.Trans = append(m.Trans, Transition{
				Input:  t.Input.Clone(),
				From:   dup,
				To:     t.To,
				Output: t.Output.Clone(),
			})
		}
		m.Trans[c.trans].To = dup
		used[c.trans] = true
		added++
	}
	if added < k {
		return false
	}
	// All states (including duplicates) must remain reachable.
	return len(m.Reachable()) == m.NumStates()
}
