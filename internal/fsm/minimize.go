package fsm

import "fmt"

// Minimize performs stamina-style state minimization for completely
// specified deterministic machines: unreachable states are dropped and
// equivalent states are merged by partition refinement. Two states are
// equivalent when for every input minterm they emit the same output and
// move to equivalent states; the check is performed symbolically on the
// intersections of transition input cubes, so wide input spaces never
// need enumeration.
//
// The returned machine has its states renumbered (block representatives,
// reset block first is not guaranteed; Reset points at the right block).
func Minimize(m *FSM) (*FSM, error) {
	if !m.Complete() {
		return nil, fmt.Errorf("fsm %s: minimization requires a completely specified machine", m.Name)
	}
	reach := m.Reachable()

	// block[s] = current partition block of state s; start with one
	// block for all reachable states.
	n := m.NumStates()
	block := make([]int, n)
	for s := 0; s < n; s++ {
		if !reach[s] {
			block[s] = -1
		}
	}

	trans := make(map[int][]int) // state -> transition indices
	for i, t := range m.Trans {
		trans[t.From] = append(trans[t.From], i)
	}

	// distinguishable reports whether s and t differ under the current
	// partition: some shared input minterm yields different outputs or
	// next-state blocks. With both machines complete, every minterm is
	// covered by exactly one cube on each side, so checking every
	// intersecting cube pair is exhaustive.
	distinguishable := func(s, t int) bool {
		for _, ia := range trans[s] {
			ta := m.Trans[ia]
			for _, ib := range trans[t] {
				tb := m.Trans[ib]
				if !ta.Input.Intersects(tb.Input) {
					continue
				}
				if !ta.Output.Equal(tb.Output) {
					return true
				}
				if block[ta.To] != block[tb.To] {
					return true
				}
			}
		}
		return false
	}

	for {
		changed := false
		// Group states by block, split each block by pairwise
		// distinguishability (union-find inside the block).
		byBlock := make(map[int][]int)
		for s := 0; s < n; s++ {
			if block[s] >= 0 {
				byBlock[block[s]] = append(byBlock[block[s]], s)
			}
		}
		nextBlock := 0
		newBlock := make([]int, n)
		for i := range newBlock {
			newBlock[i] = -1
		}
		for _, members := range blocksInOrder(byBlock) {
			// Greedy splitting: each member joins the first sub-block
			// whose representative it is indistinguishable from.
			var reps []int
			for _, s := range members {
				placed := false
				for _, r := range reps {
					if !distinguishable(s, r) {
						newBlock[s] = newBlock[r]
						placed = true
						break
					}
				}
				if !placed {
					newBlock[s] = nextBlock
					nextBlock++
					reps = append(reps, s)
				}
			}
			if len(reps) > 1 {
				changed = true
			}
		}
		copy(block, newBlock)
		if !changed {
			break
		}
	}

	// Build the quotient machine: one state per block, transitions from
	// the block representative.
	blockRep := map[int]int{}
	var blockOrder []int
	for s := 0; s < n; s++ {
		if block[s] < 0 {
			continue
		}
		if _, ok := blockRep[block[s]]; !ok {
			blockRep[block[s]] = s
			blockOrder = append(blockOrder, block[s])
		}
	}
	newID := map[int]int{}
	out := &FSM{Name: m.Name, NumInputs: m.NumInputs, NumOutputs: m.NumOutputs}
	for _, b := range blockOrder {
		newID[b] = len(out.States)
		out.States = append(out.States, m.States[blockRep[b]])
	}
	out.Reset = newID[block[m.Reset]]
	for _, b := range blockOrder {
		rep := blockRep[b]
		for _, i := range trans[rep] {
			t := m.Trans[i]
			out.Trans = append(out.Trans, Transition{
				Input:  t.Input.Clone(),
				From:   newID[b],
				To:     newID[block[t.To]],
				Output: t.Output.Clone(),
			})
		}
	}
	return out, nil
}

// blocksInOrder returns the map's value slices in ascending key order so
// refinement is deterministic run to run.
func blocksInOrder(m map[int][]int) [][]int {
	maxKey := -1
	for k := range m {
		if k > maxKey {
			maxKey = k
		}
	}
	var out [][]int
	for k := 0; k <= maxKey; k++ {
		if v, ok := m[k]; ok {
			out = append(out, v)
		}
	}
	return out
}
