package fsm

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"seqatpg/internal/logic"
)

// tiny returns a 3-state, 1-input, 1-output machine used across tests.
func tiny(t *testing.T) *FSM {
	t.Helper()
	m := &FSM{
		Name:       "tiny",
		NumInputs:  1,
		NumOutputs: 1,
		States:     []string{"a", "b", "c"},
		Reset:      0,
	}
	add := func(in string, from, to int, out string) {
		m.Trans = append(m.Trans, Transition{
			Input:  logic.MustParseCube(in),
			From:   from,
			To:     to,
			Output: logic.MustParseCube(out),
		})
	}
	add("0", 0, 0, "0")
	add("1", 0, 1, "1")
	add("0", 1, 2, "0")
	add("1", 1, 0, "1")
	add("0", 2, 2, "1")
	add("1", 2, 0, "0")
	if err := m.Validate(); err != nil {
		t.Fatalf("tiny machine invalid: %v", err)
	}
	return m
}

func TestValidateCatchesConflicts(t *testing.T) {
	m := tiny(t)
	// Overlapping cubes with different targets.
	m.Trans = append(m.Trans, Transition{
		Input:  logic.MustParseCube("-"),
		From:   0,
		To:     2,
		Output: logic.MustParseCube("0"),
	})
	if err := m.Validate(); err == nil {
		t.Error("expected determinism violation")
	}
}

func TestValidateCatchesBadWidths(t *testing.T) {
	m := tiny(t)
	m.Trans[0].Input = logic.MustParseCube("01")
	if err := m.Validate(); err == nil {
		t.Error("expected width violation")
	}
}

func TestCompleteAndReachable(t *testing.T) {
	m := tiny(t)
	if !m.Complete() {
		t.Error("tiny machine is complete")
	}
	if n := len(m.Reachable()); n != 3 {
		t.Errorf("reachable = %d, want 3", n)
	}
	// Drop state c's incoming edge; c becomes unreachable.
	m.Trans[2].To = 0
	if n := len(m.Reachable()); n != 2 {
		t.Errorf("reachable = %d, want 2", n)
	}
}

func TestStep(t *testing.T) {
	m := tiny(t)
	next, out, ok := m.Step(0, 1)
	if !ok || next != 1 || out.String() != "1" {
		t.Errorf("Step(0,1) = %d,%v,%v", next, out, ok)
	}
	next, _, ok = m.Step(1, 0)
	if !ok || next != 2 {
		t.Errorf("Step(1,0) = %d,%v", next, ok)
	}
}

func TestKISS2RoundTrip(t *testing.T) {
	m := tiny(t)
	var buf bytes.Buffer
	if err := WriteKISS2(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadKISS2(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumInputs != 1 || back.NumOutputs != 1 || back.NumStates() != 3 {
		t.Fatalf("round trip changed shape: %+v", back)
	}
	if len(back.Trans) != len(m.Trans) {
		t.Fatalf("round trip changed transition count")
	}
	if back.States[back.Reset] != "a" {
		t.Errorf("reset state lost: %s", back.States[back.Reset])
	}
	if err := back.Validate(); err != nil {
		t.Error(err)
	}
}

func TestReadKISS2Errors(t *testing.T) {
	cases := []string{
		"",                     // empty
		".i 1\n.o 1\n0 a b",    // 3 fields
		".i x\n.o 1\n0 a b 1",  // bad number
		".r zz\n0 a b 1\n.e\n", // unknown reset
		".i 1\n.o 1\n0z a b 1", // bad cube
	}
	for _, s := range cases {
		if _, err := ReadKISS2(strings.NewReader(s)); err == nil {
			t.Errorf("expected error for %q", s)
		}
	}
}

func TestMinimizeMergesClones(t *testing.T) {
	m := tiny(t)
	// Clone state b as state d, redirect a's 1-edge to d.
	m.States = append(m.States, "d")
	m.Trans = append(m.Trans,
		Transition{Input: logic.MustParseCube("0"), From: 3, To: 2, Output: logic.MustParseCube("0")},
		Transition{Input: logic.MustParseCube("1"), From: 3, To: 0, Output: logic.MustParseCube("1")},
	)
	m.Trans[1].To = 3 // a --1--> d instead of b
	// b stays reachable via... it is not; re-add an edge c --1--> b.
	m.Trans[5].To = 1
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	min, err := Minimize(m)
	if err != nil {
		t.Fatal(err)
	}
	if min.NumStates() != 3 {
		t.Errorf("minimized to %d states, want 3", min.NumStates())
	}
	if err := min.Validate(); err != nil {
		t.Error(err)
	}
	if !min.Complete() {
		t.Error("minimized machine lost completeness")
	}
}

func TestMinimizeDropsUnreachable(t *testing.T) {
	m := tiny(t)
	m.States = append(m.States, "orphan")
	m.Trans = append(m.Trans,
		Transition{Input: logic.MustParseCube("-"), From: 3, To: 0, Output: logic.MustParseCube("0")},
	)
	min, err := Minimize(m)
	if err != nil {
		t.Fatal(err)
	}
	if min.NumStates() != 3 {
		t.Errorf("minimized to %d states, want 3", min.NumStates())
	}
}

func TestMinimizeDistinguishableStaysPut(t *testing.T) {
	m := tiny(t)
	min, err := Minimize(m)
	if err != nil {
		t.Fatal(err)
	}
	if min.NumStates() != 3 {
		t.Errorf("minimal machine shrank to %d states", min.NumStates())
	}
}

// Behavioural equivalence between a machine and its minimized version:
// run both from reset over random input sequences and compare outputs.
func TestMinimizePreservesBehaviour(t *testing.T) {
	m := tiny(t)
	m.States = append(m.States, "d")
	m.Trans = append(m.Trans,
		Transition{Input: logic.MustParseCube("0"), From: 3, To: 2, Output: logic.MustParseCube("0")},
		Transition{Input: logic.MustParseCube("1"), From: 3, To: 0, Output: logic.MustParseCube("1")},
	)
	m.Trans[1].To = 3
	m.Trans[5].To = 1
	min, err := Minimize(m)
	if err != nil {
		t.Fatal(err)
	}
	seqs := []uint64{0b0, 0b1, 0b1101, 0b100110, 0b111111, 0b010101}
	for _, seq := range seqs {
		s1, s2 := m.Reset, min.Reset
		for k := 0; k < 6; k++ {
			in := (seq >> uint(k)) & 1
			n1, o1, ok1 := m.Step(s1, in)
			n2, o2, ok2 := min.Step(s2, in)
			if ok1 != ok2 || !o1.Equal(o2) {
				t.Fatalf("behaviour diverged on seq %b step %d", seq, k)
			}
			s1, s2 = n1, n2
		}
	}
}

func TestReadKISS2File(t *testing.T) {
	f, err := os.Open("testdata/lion.kiss2")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, err := ReadKISS2(f)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumInputs != 2 || m.NumOutputs != 1 || m.NumStates() != 4 {
		t.Fatalf("lion shape: %d/%d/%d", m.NumInputs, m.NumOutputs, m.NumStates())
	}
	if m.States[m.Reset] != "st0" {
		t.Errorf("reset = %s", m.States[m.Reset])
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(m.Reachable()) != 4 {
		t.Error("all lion states should be reachable")
	}
	// lion is incompletely specified (st3 lacks the 11 edge).
	if m.Complete() {
		t.Error("lion should be incompletely specified")
	}
}

func TestWriteDOT(t *testing.T) {
	m := tiny(t)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, m); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", `"a" [shape=box]`, `"a" -> "b"`, "label=\"1/1\""} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
}
