package campaign

import (
	"context"
	"math"
	"reflect"
	"sort"
	"testing"

	"seqatpg/internal/fault"
	"seqatpg/internal/netlist"
	"seqatpg/internal/predict"
	"seqatpg/internal/retime"
)

// BenchmarkSched measures what testability-aware scheduling buys on the
// retimed benchmark (the hard half of the original/retimed pair), in
// hardware-independent effort units so the derived numbers are stable
// across machines and CI runs.
//
// Per-fault charged effort is measured once by running each fault alone
// through the retry ladder — the normalized campaign does no fault
// dropping, so a single-fault run charges exactly what the fault costs
// inside the full campaign. Those efforts feed a queueing model:
// within a queue faults complete sequentially (latency = prefix sum),
// queues run concurrently (makespan = heaviest queue). Three variants:
//
//	unscheduled  canonical fault order, one queue — the baseline.
//	easyfirst    one queue ordered by predicted score — no hard queue;
//	             a pure reordering, so the makespan is unchanged and
//	             only the latency distribution moves.
//	hardqueue    the RunScheduled plan: per-rung queues running
//	             concurrently, each starting the ladder at its rung.
//
// Reported metrics (all /op suffixed by the harness):
//
//	makespan-evals     modeled campaign makespan in gate evaluations
//	lat-p50/p95/max    modeled per-fault completion percentiles
//	gate-evals         the real run's charged effort (ladder identity:
//	                   easyfirst must equal unscheduled exactly)
//	verdict-match      1 if the real run's outcomes equal the baseline's
//	spearman-x1000     rank correlation of predicted score vs measured
//	                   effort, x1000 (prediction quality, not a knob)
func BenchmarkSched(b *testing.B) {
	c, flush := retimedBench(b)
	faults := fault.CollapsedUniverse(c)
	if len(faults) > 48 {
		faults = faults[:48]
	}
	// The base budget sits below the hardest faults' predicted cost so
	// the plan actually exercises the hard queues; the ladder's final
	// budget (base << retries) still completes the campaign.
	cfg := Config{Engine: engineCfg(), Retries: 2, FsimWorkers: 1}
	cfg.Engine.FaultBudget = 5_000
	cfg.Engine.FlushCycles = flush

	fs, err := predict.Extract(c, faults, predict.Options{FlushCycles: flush})
	if err != nil {
		b.Fatal(err)
	}
	plan := predict.NewPlan(fs, nil, cfg.Engine.FaultBudget, cfg.Retries)
	if nq := len(queueIndices(plan)); nq < 2 {
		b.Fatalf("plan routed every fault to one queue (%d queues); the hardqueue variant would be vacuous", nq)
	}

	// Measured per-fault ladder efforts: from rung 0 for everyone, and
	// from each fault's planned rung for the hardqueue variant.
	base := make([]int64, len(faults))
	for i, f := range faults {
		base[i] = ladderEffort(b, c, f, cfg)
	}
	rung := make([]int64, len(faults))
	for i, f := range faults {
		q := queueOf(plan, i)
		rung[i] = ladderEffort(b, c, f, queueConfig(cfg, q, true))
	}

	canonical := make([]int, len(faults))
	easy := make([]int, len(faults))
	for i := range faults {
		canonical[i] = i
		easy[i] = i
	}
	sort.SliceStable(easy, func(a, b int) bool {
		if plan.Scores[easy[a]] != plan.Scores[easy[b]] {
			return plan.Scores[easy[a]] < plan.Scores[easy[b]]
		}
		return easy[a] < easy[b]
	})
	sp := spearmanX1000(plan.Scores, base)

	ref, err := RunSharded(context.Background(), c, faults, cfg, 1)
	if err != nil {
		b.Fatal(err)
	}

	report := func(b *testing.B, queues [][]int, efforts []int64, res *Result) {
		makespan, lat := queueModel(queues, efforts)
		sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
		n := len(lat)
		b.ReportMetric(float64(makespan), "makespan-evals/op")
		b.ReportMetric(float64(lat[(n-1)*50/100]), "lat-p50-evals/op")
		b.ReportMetric(float64(lat[(n-1)*95/100]), "lat-p95-evals/op")
		b.ReportMetric(float64(lat[n-1]), "lat-max-evals/op")
		b.ReportMetric(float64(res.Stats.Effort), "gate-evals/op")
		b.ReportMetric(float64(res.Stats.Detected), "detected/op")
		b.ReportMetric(float64(res.Stats.Aborted), "aborted/op")
		match := 0.0
		if reflect.DeepEqual(res.Outcomes, ref.Outcomes) {
			match = 1
		}
		b.ReportMetric(match, "verdict-match/op")
		b.ReportMetric(sp, "spearman-x1000/op")
	}

	b.Run("retimed/unscheduled", func(b *testing.B) {
		var res *Result
		for i := 0; i < b.N; i++ {
			res, err = RunSharded(context.Background(), c, faults, cfg, 1)
			if err != nil {
				b.Fatal(err)
			}
		}
		report(b, [][]int{canonical}, base, res)
	})
	b.Run("retimed/easyfirst", func(b *testing.B) {
		var res *Result
		for i := 0; i < b.N; i++ {
			// A pure reordering: RunScheduled without rung budgets keeps
			// even the charged effort byte-identical to the baseline.
			res, err = RunScheduled(context.Background(), c, faults, cfg, SchedConfig{})
			if err != nil {
				b.Fatal(err)
			}
		}
		report(b, [][]int{easy}, base, res)
	})
	b.Run("retimed/hardqueue", func(b *testing.B) {
		var res *Result
		for i := 0; i < b.N; i++ {
			res, err = RunScheduled(context.Background(), c, faults, cfg, SchedConfig{RungBudgets: true})
			if err != nil {
				b.Fatal(err)
			}
		}
		report(b, queueIndices(plan), rung, res)
	})
}

func retimedBench(b *testing.B) (*netlist.Circuit, int) {
	b.Helper()
	orig := synthC(b, 9, 12)
	re, err := retime.Backward(orig, netlist.DefaultLibrary(), 2)
	if err != nil {
		b.Fatal(err)
	}
	return re.Circuit, re.FlushCycles
}

// ladderEffort charges fault f's full retry ladder under cfg.
func ladderEffort(b *testing.B, c *netlist.Circuit, f fault.Fault, cfg Config) int64 {
	b.Helper()
	res, err := RunSharded(context.Background(), c, []fault.Fault{f}, cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	return res.Stats.Effort
}

// queueModel plays the partition through the effort-unit queueing
// model: queues run concurrently, faults within a queue sequentially.
func queueModel(queues [][]int, efforts []int64) (makespan int64, lat []int64) {
	for _, q := range queues {
		var t int64
		for _, i := range q {
			t += efforts[i]
			lat = append(lat, t)
		}
		if t > makespan {
			makespan = t
		}
	}
	return makespan, lat
}

// spearmanX1000 is the Spearman rank correlation (average ranks on
// ties) of predicted score against measured effort, scaled x1000.
func spearmanX1000(scores []float64, efforts []int64) float64 {
	n := len(scores)
	if n < 2 {
		return 0
	}
	effF := make([]float64, n)
	for i, e := range efforts {
		effF[i] = float64(e)
	}
	ra, rb := ranks(scores), ranks(effF)
	var ma, mb float64
	for i := 0; i < n; i++ {
		ma += ra[i]
		mb += rb[i]
	}
	ma /= float64(n)
	mb /= float64(n)
	var cov, va, vb float64
	for i := 0; i < n; i++ {
		da, db := ra[i]-ma, rb[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return 1000 * cov / (math.Sqrt(va) * math.Sqrt(vb))
}

func ranks(v []float64) []float64 {
	n := len(v)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return v[idx[a]] < v[idx[b]] })
	r := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && v[idx[j+1]] == v[idx[i]] {
			j++
		}
		avg := float64(i+j) / 2
		for k := i; k <= j; k++ {
			r[idx[k]] = avg
		}
		i = j + 1
	}
	return r
}
