package campaign

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"seqatpg/internal/atpg"
	"seqatpg/internal/fault"
	"seqatpg/internal/ioguard"
	"seqatpg/internal/sim"
)

// randomResult builds a synthetic but structurally valid shard result.
func randomResult(rng *rand.Rand, n int) *Result {
	res := &Result{
		Outcomes: make([]atpg.Outcome, n),
		Passes:   rng.Intn(3),
		Resumed:  rng.Intn(2) == 0,
		Stats:    atpg.Stats{Total: n, StatesTraversed: map[uint64]bool{}},
	}
	for i := range res.Outcomes {
		o := atpg.Outcome(rng.Intn(4))
		res.Outcomes[i] = o
		switch o {
		case atpg.Detected:
			res.Stats.Detected++
		case atpg.Redundant:
			res.Stats.Redundant++
		case atpg.Crashed:
			res.Stats.Crashed++
		default:
			res.Stats.Aborted++
		}
	}
	res.Stats.Effort = rng.Int63n(1 << 40)
	res.Stats.Backtracks = rng.Int63n(1 << 20)
	res.Stats.LearnHits = rng.Int63n(1 << 10)
	res.Stats.LearnPrunes = rng.Int63n(1 << 10)
	for i := 0; i < rng.Intn(8); i++ {
		res.Stats.StatesTraversed[rng.Uint64()] = true
	}
	for i := 0; i < rng.Intn(4); i++ {
		seq := make([][]sim.Val, 1+rng.Intn(3))
		for f := range seq {
			vec := make([]sim.Val, 1+rng.Intn(5))
			for v := range vec {
				vec[v] = []sim.Val{sim.V0, sim.V1, sim.VX}[rng.Intn(3)]
			}
			seq[f] = vec
		}
		res.Tests = append(res.Tests, seq)
	}
	if n > 0 && rng.Intn(2) == 0 {
		idx := rng.Intn(n)
		res.Outcomes[idx] = atpg.Crashed
		// Rebuild counters after the overwrite.
		st := atpg.Stats{Total: n, StatesTraversed: res.Stats.StatesTraversed,
			Effort: res.Stats.Effort, Backtracks: res.Stats.Backtracks,
			LearnHits: res.Stats.LearnHits, LearnPrunes: res.Stats.LearnPrunes}
		for _, o := range res.Outcomes {
			switch o {
			case atpg.Detected:
				st.Detected++
			case atpg.Redundant:
				st.Redundant++
			case atpg.Crashed:
				st.Crashed++
			default:
				st.Aborted++
			}
		}
		res.Stats = st
		res.Crashes = append(res.Crashes, &atpg.FaultCrash{
			Index: idx,
			Fault: fault.Fault{Gate: rng.Intn(50), Pin: rng.Intn(3), SA: sim.V1},
			Panic: "synthetic", Stack: "stack",
		})
	}
	return res
}

func TestResultWireRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		res := randomResult(rng, rng.Intn(20))
		data, err := EncodeResult(res)
		if err != nil {
			t.Fatalf("trial %d: encode: %v", trial, err)
		}
		back, err := DecodeResult(data)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if !reflect.DeepEqual(res.Outcomes, back.Outcomes) {
			t.Fatalf("trial %d: outcomes changed across the wire", trial)
		}
		if !reflect.DeepEqual(res.Stats, back.Stats) {
			t.Fatalf("trial %d: stats changed across the wire:\n%+v\n%+v", trial, res.Stats, back.Stats)
		}
		if !reflect.DeepEqual(res.Tests, back.Tests) {
			t.Fatalf("trial %d: tests changed across the wire", trial)
		}
		if !reflect.DeepEqual(res.Crashes, back.Crashes) {
			t.Fatalf("trial %d: crashes changed across the wire", trial)
		}
		if back.Passes != res.Passes || back.Resumed != res.Resumed {
			t.Fatalf("trial %d: flags changed across the wire", trial)
		}
	}
}

func TestResultWireRejectsDamage(t *testing.T) {
	res := randomResult(rand.New(rand.NewSource(3)), 8)
	data, err := EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"not json":      []byte("{nope"),
		"truncated":     data[:len(data)/2],
		"empty":         nil,
		"wrong version": []byte(`{"version":99,"outcomes":"","stats":{"total":0}}`),
		"bad outcome":   []byte(`{"version":1,"outcomes":"9","stats":{"total":1,"aborted":1}}`),
		"bad counters":  []byte(`{"version":1,"outcomes":"1","stats":{"total":1,"aborted":1}}`),
		"bad total":     []byte(`{"version":1,"outcomes":"1","stats":{"total":5,"detected":1}}`),
		"bad vector":    []byte(`{"version":1,"outcomes":"","tests":[["2"]],"stats":{"total":0}}`),
	}
	for name, payload := range cases {
		if _, err := DecodeResult(payload); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// TestWireMergeMatchesInMemory pins that decoding shard results from
// their wire form and merging them yields the exact Result an
// in-memory merge of the originals does — the property the fabric
// coordinator's correctness rests on.
func TestWireMergeMatchesInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	faults := make([]fault.Fault, 23)
	for i := range faults {
		faults[i] = fault.Fault{Gate: i, Pin: 0, SA: sim.V1}
	}
	for _, shards := range []int{1, 2, 3, 7, 31} {
		idxs := ShardIndices(len(faults), shards)
		direct := make([]*Result, shards)
		wired := make([]*Result, shards)
		for k := 0; k < shards; k++ {
			if len(idxs[k]) == 0 {
				continue
			}
			direct[k] = randomResult(rng, len(idxs[k]))
			data, err := EncodeResult(direct[k])
			if err != nil {
				t.Fatal(err)
			}
			if wired[k], err = DecodeResult(data); err != nil {
				t.Fatal(err)
			}
		}
		a := MergeShardResults(faults, idxs, direct)
		b := MergeShardResults(faults, idxs, wired)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("shards=%d: wire merge diverges from in-memory merge", shards)
		}
	}
}

func TestCheckCheckpointBytes(t *testing.T) {
	st := freshState(3)
	path := filepath.Join(t.TempDir(), "checkpoint.json")
	if err := saveState(ioguard.OS, path, "fp", st); err != nil {
		t.Fatal(err)
	}
	data, err := ioguard.OS.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckCheckpointBytes(data); err != nil {
		t.Fatalf("valid checkpoint rejected: %v", err)
	}
	if err := CheckCheckpointBytes(data[:len(data)-20]); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
	// Flip one payload byte so the CRC no longer verifies while the
	// JSON still parses (the flip lands inside the fingerprint string).
	corrupt := append([]byte(nil), data...)
	k := bytes.Index(corrupt, []byte(`"fp"`))
	if k < 0 {
		t.Fatal("fingerprint not found in checkpoint payload")
	}
	corrupt[k+1] = 'x'
	if err := CheckCheckpointBytes(corrupt); err == nil {
		t.Fatal("corrupted checkpoint accepted")
	}
}
