// Package campaign wraps atpg.Engine runs in a resilient run
// controller for long ATPG campaigns: cooperative cancellation under a
// context deadline, periodic checkpoint/resume with a fingerprinted
// on-disk format, per-fault crash isolation, and retry escalation that
// re-attacks aborted faults with an exponentially growing budget ladder
// (the paper's observation is that aborts concentrate in a small hard
// core, so a 2x/4x second look is cheap relative to the first pass).
package campaign

import (
	"context"
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"runtime"
	"time"

	"seqatpg/internal/atpg"
	"seqatpg/internal/fault"
	"seqatpg/internal/ioguard"
	"seqatpg/internal/netlist"
	"seqatpg/internal/sim"
)

// Config controls one campaign.
type Config struct {
	// Engine is the base engine configuration; pass p of the retry
	// ladder runs with FaultBudget << p and no random preprocessing.
	Engine atpg.Config
	// Retries is how many escalation passes follow the first pass.
	// Each pass re-attacks only the faults the previous pass aborted.
	Retries int
	// FsimWorkers is the worker count for the campaign's fault-
	// simulation passes (the engines' fault dropping, and the sharded
	// campaign's global upgrade pass); zero selects GOMAXPROCS,
	// negative is rejected. Fault-simulation results are worker-count-
	// invariant, so the knob cannot change outcomes — which is why it
	// is not part of the checkpoint fingerprint (that covers only the
	// Engine config) and a resumed campaign may use a different value.
	FsimWorkers int
	// CheckpointPath enables checkpointing when non-empty: the file is
	// rewritten at most every CheckpointEvery during the run, always
	// when the run is interrupted, and removed on success.
	CheckpointPath string
	// CheckpointEvery is the minimum wall-clock gap between periodic
	// checkpoint writes; zero selects 30 seconds.
	CheckpointEvery time.Duration
	// Resume loads CheckpointPath (if it exists) and continues the
	// campaign from it. A checkpoint whose fingerprint does not match
	// the circuit, config and fault list is rejected with an error
	// wrapping ErrCheckpointMismatch.
	Resume bool
	// Hook is forwarded to every engine pass as its TestHook, with the
	// index remapped to the original fault list. Test instrumentation
	// only; it is not fingerprinted. Under RunSharded it is invoked
	// concurrently from all shard workers.
	Hook func(index int, f fault.Fault)
	// Log, when set, receives progress lines (pass starts, checkpoint
	// writes, crash notices). RunSharded serializes concurrent shard
	// logging before it reaches this callback.
	Log func(format string, args ...any)
	// OnCheckpoint, when set, is called after every successful
	// checkpoint write (periodic, pass-boundary or interruption).
	// Observability instrumentation only; it is not fingerprinted.
	// Under RunSharded it is invoked concurrently from all shard
	// workers.
	OnCheckpoint func()
	// OnCheckpointFailure, when set, is called after every failed
	// checkpoint write with the error. Failed writes do not abort the
	// campaign — the run is marked degraded and the write is retried
	// at the next checkpoint interval. Observability only; not
	// fingerprinted. Under RunSharded it is invoked concurrently from
	// all shard workers.
	OnCheckpointFailure func(error)
	// FS is the filesystem seam all checkpoint I/O (and the Validate
	// probe) goes through; nil selects the real filesystem
	// (ioguard.OS). Fault-injection tests substitute an
	// ioguard.FaultFS. Not fingerprinted: the seam decides whether
	// persistence succeeds, never what the campaign computes.
	FS ioguard.FS
}

// fs resolves Config.FS: nil means the real filesystem.
func (c Config) fs() ioguard.FS {
	if c.FS == nil {
		return ioguard.OS
	}
	return c.FS
}

func (c Config) logf(format string, args ...any) {
	if c.Log != nil {
		c.Log(format, args...)
	}
}

func (c Config) checkpointed() {
	if c.OnCheckpoint != nil {
		c.OnCheckpoint()
	}
}

// fsimWorkers resolves Config.FsimWorkers: zero means GOMAXPROCS.
func (c Config) fsimWorkers() int {
	if c.FsimWorkers == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.FsimWorkers
}

// Validate rejects nonsensical campaign knobs (the engine config is
// validated by atpg.New). A non-empty CheckpointPath is probed up
// front: the checkpoint directory is created if missing — exactly what
// the first periodic write would do — and a throwaway file is written
// to it, so an unwritable location fails the run at setup instead of
// at the first checkpoint minutes or hours in.
func (c Config) Validate() error {
	if c.Retries < 0 {
		return fmt.Errorf("campaign: negative Retries %d", c.Retries)
	}
	if c.FsimWorkers < 0 {
		return fmt.Errorf("campaign: negative FsimWorkers %d", c.FsimWorkers)
	}
	if c.CheckpointEvery < 0 {
		return fmt.Errorf("campaign: negative CheckpointEvery %v", c.CheckpointEvery)
	}
	if c.Resume && c.CheckpointPath == "" {
		return errors.New("campaign: Resume requires CheckpointPath")
	}
	if c.CheckpointPath != "" {
		fsys := c.fs()
		dir := filepath.Dir(c.CheckpointPath)
		if err := fsys.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("campaign: checkpoint directory %s: %w", dir, err)
		}
		probe := filepath.Join(dir, ".ckpt-probe.tmp")
		if err := fsys.WriteFile(probe, []byte("probe\n"), 0o644); err != nil {
			return fmt.Errorf("campaign: checkpoint directory %s is not writable: %w", dir, err)
		}
		fsys.Remove(probe)
	}
	return nil
}

// Result is the campaign outcome.
type Result struct {
	// Outcomes is the final per-fault verdict, parallel to the fault
	// list. In an interrupted campaign, faults no pass has resolved yet
	// read as Aborted.
	Outcomes []atpg.Outcome
	Tests    [][][]sim.Val
	// Stats aggregates every pass: outcome counters recomputed from
	// the final verdicts, effort/backtrack counters summed, traversed
	// states unioned. An interrupted-then-resumed campaign finishes
	// with Stats identical to one that was never stopped.
	Stats atpg.Stats
	// Crashes holds the recovered panics of all passes, with Index
	// remapped to the original fault list.
	Crashes []*atpg.FaultCrash
	// Interrupted reports the campaign stopped on context cancellation;
	// a checkpoint (if configured) has been written.
	Interrupted bool
	// Resumed reports the campaign started from a checkpoint.
	Resumed bool
	// Passes is the number of engine passes that ran to completion.
	Passes int
	// CheckpointFailures counts checkpoint writes that failed during
	// this process's run (failure counts are per run, not persisted in
	// the checkpoint itself). Each failure was logged and retried at
	// the next checkpoint interval; the search results are unaffected.
	CheckpointFailures int
	// Degraded reports CheckpointFailures > 0: the campaign finished
	// (or parked) with full results, but one or more of its durability
	// writes failed, so the newest on-disk generation may be stale.
	Degraded bool
}

// state is the cross-pass campaign state; it is what the checkpoint
// format serializes.
type state struct {
	pass       int   // current pass (0 = initial)
	passFaults []int // original-list indices the current pass attacks
	outcomes   []atpg.Outcome
	done       []bool // outcomes[i] was fixed by a completed pass
	agg        passAgg
	states     map[uint64]bool
	tests      [][][]sim.Val
	crashes    []*atpg.FaultCrash
	snap       *atpg.Snapshot // mid-pass boundary snapshot, nil at a pass start
	resumed    bool
	// ckptFailures counts failed checkpoint writes this run. It is
	// process-local observability, deliberately not serialized: a
	// resumed campaign's Stats must stay byte-identical to an
	// uninterrupted run, and durability trouble in a previous process
	// is that process's report.
	ckptFailures int
}

// passAgg sums the monotone effort counters over completed passes.
type passAgg struct {
	Effort       int64
	Backtracks   int64
	LearnHits    int64
	LearnPrunes  int64
	LearnedCubes int64
	Backjumps    int64
	Restarts     int64
	Unconfirmed  int
}

// writeCheckpoint attempts one checkpoint write. Failure degrades the
// run instead of aborting it: the failure counter advances, the
// OnCheckpointFailure callback fires, and the log line is emitted with
// power-of-two backoff (failures 1, 2, 4, 8, …) so an ENOSPC storm
// cannot flood the log. The write is retried at the next checkpoint
// opportunity.
func (c Config) writeCheckpoint(fp string, st *state) bool {
	if err := saveState(c.fs(), c.CheckpointPath, fp, st); err != nil {
		st.ckptFailures++
		if c.OnCheckpointFailure != nil {
			c.OnCheckpointFailure(err)
		}
		if n := st.ckptFailures; n&(n-1) == 0 {
			c.logf("campaign: checkpoint write failed (%d failure(s) so far, run degraded, will retry): %v", n, err)
		}
		return false
	}
	c.checkpointed()
	return true
}

func freshState(n int) *state {
	st := &state{
		outcomes:   make([]atpg.Outcome, n),
		done:       make([]bool, n),
		states:     map[uint64]bool{},
		passFaults: make([]int, n),
	}
	for i := range st.passFaults {
		st.passFaults[i] = i
	}
	return st
}

// passConfig derives the engine config for pass p: the budget ladder
// doubles per pass and the random preprocessing phase runs only once.
func (c Config) passConfig(p int) atpg.Config {
	cfg := c.Engine
	if p > 0 {
		cfg.RandomSequences = 0
		cfg.RandomLength = 0
		if cfg.FaultBudget > 0 {
			shift := uint(p)
			if cfg.FaultBudget > math.MaxInt64>>shift {
				cfg.FaultBudget = math.MaxInt64
			} else {
				cfg.FaultBudget <<= shift
			}
		}
	}
	return cfg
}

// Run executes a campaign over the fault list. It returns a non-nil
// Result unless setup fails (bad config, unreadable checkpoint,
// un-buildable engine); interruption is reported in the Result, not as
// an error.
func Run(ctx context.Context, c *netlist.Circuit, faults []fault.Fault, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	fp := Fingerprint(c, cfg, faults)

	var st *state
	if cfg.Resume {
		loaded, fellBack, err := loadState(cfg.fs(), cfg.CheckpointPath, fp, len(faults))
		if err != nil {
			return nil, err
		}
		if loaded != nil {
			st = loaded
			st.resumed = true
			if fellBack {
				cfg.logf("campaign: current checkpoint generation at %s is unusable; recovered from %s%s", cfg.CheckpointPath, cfg.CheckpointPath, prevSuffix)
			}
			cfg.logf("campaign: resumed from %s (pass %d, %d faults pending)", cfg.CheckpointPath, st.pass, len(st.passFaults))
		} else {
			cfg.logf("campaign: no checkpoint at %s, starting fresh", cfg.CheckpointPath)
		}
	}
	if st == nil {
		st = freshState(len(faults))
	}

	every := cfg.CheckpointEvery
	if every <= 0 {
		every = 30 * time.Second
	}
	lastWrite := time.Now()

	for st.pass <= cfg.Retries && len(st.passFaults) > 0 {
		if ctx.Err() != nil {
			return finishInterrupted(ctx, cfg, fp, st)
		}
		ecfg := cfg.passConfig(st.pass)
		e, err := atpg.New(c, ecfg)
		if err != nil {
			return nil, fmt.Errorf("campaign: pass %d: %w", st.pass, err)
		}
		e.SetFaultSimWorkers(cfg.fsimWorkers())
		if cfg.Hook != nil {
			local := st.passFaults
			hook := cfg.Hook
			e.TestHook = func(i int, f fault.Fault) { hook(local[i], f) }
		}
		sub := make([]fault.Fault, len(st.passFaults))
		for k, idx := range st.passFaults {
			sub[k] = faults[idx]
		}
		cfg.logf("campaign: pass %d: %d faults, per-fault budget %d", st.pass, len(sub), ecfg.FaultBudget)

		onBoundary := func(done, total int, snapshot func() *atpg.Snapshot) {
			if cfg.CheckpointPath == "" || time.Since(lastWrite) < every {
				return
			}
			st.snap = snapshot()
			if cfg.writeCheckpoint(fp, st) {
				cfg.logf("campaign: checkpoint at pass %d, %d/%d faults", st.pass, done, total)
			}
			// Advance the clock on failure too: retry at the next
			// interval, not at every fault boundary of a full disk.
			lastWrite = time.Now()
		}

		res, snap, err := e.ResumeFaults(ctx, sub, st.snap, onBoundary)
		if err != nil {
			return nil, fmt.Errorf("campaign: pass %d: %w", st.pass, err)
		}
		if res.Interrupted {
			st.snap = snap
			return finishInterrupted(ctx, cfg, fp, st)
		}

		// Merge the completed pass.
		st.snap = nil
		for k, idx := range st.passFaults {
			st.outcomes[idx] = res.Outcomes[k]
			st.done[idx] = true
		}
		st.agg.Effort += res.Stats.Effort
		st.agg.Backtracks += res.Stats.Backtracks
		st.agg.LearnHits += res.Stats.LearnHits
		st.agg.LearnPrunes += res.Stats.LearnPrunes
		st.agg.LearnedCubes += res.Stats.LearnedCubes
		st.agg.Backjumps += res.Stats.Backjumps
		st.agg.Restarts += res.Stats.Restarts
		st.agg.Unconfirmed += res.Stats.Unconfirmed
		for s := range res.Stats.StatesTraversed {
			st.states[s] = true
		}
		st.tests = append(st.tests, res.Tests...)
		for _, cr := range res.Crashes {
			remapped := *cr
			remapped.Index = st.passFaults[cr.Index]
			st.crashes = append(st.crashes, &remapped)
			cfg.logf("campaign: %v", remapped.Error())
		}

		// The next pass re-attacks only the aborted faults (crashed
		// faults are deterministic bugs; retrying would crash again).
		var aborted []int
		for k, idx := range st.passFaults {
			if res.Outcomes[k] == atpg.Aborted {
				aborted = append(aborted, idx)
			}
		}
		st.passFaults = aborted
		st.pass++
		if st.pass <= cfg.Retries && len(aborted) > 0 && cfg.CheckpointPath != "" {
			cfg.writeCheckpoint(fp, st)
			lastWrite = time.Now()
		}
	}

	res := assemble(st, false)
	if cfg.CheckpointPath != "" {
		if err := removeState(cfg.fs(), cfg.CheckpointPath); err != nil {
			cfg.logf("campaign: could not remove finished checkpoint: %v", err)
		}
	}
	return res, nil
}

// finishInterrupted writes the final checkpoint and assembles the
// partial result. A failed final write degrades the result instead of
// erroring: the last durable generation (current or .prev) is still on
// disk, and resuming from it merely repeats the work since then.
func finishInterrupted(ctx context.Context, cfg Config, fp string, st *state) (*Result, error) {
	if cfg.CheckpointPath != "" {
		if cfg.writeCheckpoint(fp, st) {
			cfg.logf("campaign: interrupted (%v), checkpoint written to %s", context.Cause(ctx), cfg.CheckpointPath)
		} else {
			cfg.logf("campaign: interrupted (%v) and the final checkpoint write failed; a resume will use the last durable generation", context.Cause(ctx))
		}
	}
	return assemble(st, true), nil
}

// assemble computes the campaign-level result. Outcome counters are
// recomputed from the per-fault verdicts; effort counters are the
// across-pass sums (plus, under interruption, the mid-pass snapshot's
// partial progress, so the caller sees how far the campaign got).
func assemble(st *state, interrupted bool) *Result {
	res := &Result{
		Outcomes:           append([]atpg.Outcome(nil), st.outcomes...),
		Tests:              st.tests,
		Crashes:            st.crashes,
		Interrupted:        interrupted,
		Resumed:            st.resumed,
		Passes:             st.pass,
		CheckpointFailures: st.ckptFailures,
		Degraded:           st.ckptFailures > 0,
	}
	stats := atpg.Stats{Total: len(st.outcomes)}
	count := func(o atpg.Outcome, delta int) {
		switch o {
		case atpg.Detected:
			stats.Detected += delta
		case atpg.Redundant:
			stats.Redundant += delta
		case atpg.Crashed:
			stats.Crashed += delta
		default:
			stats.Aborted += delta
		}
	}
	for i, o := range res.Outcomes {
		if !st.done[i] {
			// Never resolved by a completed pass: conservatively
			// aborted (only possible in an interrupted pass 0).
			stats.Aborted++
			continue
		}
		count(o, 1)
	}
	if interrupted && st.snap != nil {
		// Mid-pass verdicts supersede the previous pass's aborts (and,
		// in pass 0, the unresolved default) for the partial report.
		for k, code := range st.snap.Status {
			idx := st.passFaults[k]
			var o atpg.Outcome
			switch code {
			case 1:
				o = atpg.Detected
			case 2:
				o = atpg.Redundant
			case 4:
				o = atpg.Crashed
			default:
				continue
			}
			stats.Aborted--
			count(o, 1)
			res.Outcomes[idx] = o
		}
		sn := st.snap.Stats
		stats.Effort += sn.Effort
		stats.Backtracks += sn.Backtracks
		stats.LearnHits += sn.LearnHits
		stats.LearnPrunes += sn.LearnPrunes
		stats.LearnedCubes += sn.LearnedCubes
		stats.Backjumps += sn.Backjumps
		stats.Restarts += sn.Restarts
		stats.Unconfirmed += sn.Unconfirmed
		for s := range sn.StatesTraversed {
			st.states[s] = true
		}
		res.Tests = append(res.Tests, st.snap.Tests...)
	}
	stats.Effort += st.agg.Effort
	stats.Backtracks += st.agg.Backtracks
	stats.LearnHits += st.agg.LearnHits
	stats.LearnPrunes += st.agg.LearnPrunes
	stats.LearnedCubes += st.agg.LearnedCubes
	stats.Backjumps += st.agg.Backjumps
	stats.Restarts += st.agg.Restarts
	stats.Unconfirmed += st.agg.Unconfirmed
	stats.StatesTraversed = st.states
	res.Stats = stats
	return res
}
