package campaign

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"seqatpg/internal/atpg"
	"seqatpg/internal/encode"
	"seqatpg/internal/fault"
	"seqatpg/internal/fsm"
	"seqatpg/internal/ioguard"
	"seqatpg/internal/netlist"
	"seqatpg/internal/retime"
	"seqatpg/internal/sim"
	"seqatpg/internal/synth"
)

// nosyncFS skips physical fsyncs in checkpoint-heavy tests. Every
// property asserted in this package is observable in-process (rename
// atomicity, generation rotation, corruption fallback, byte-identical
// resume) and independent of flushing, which only matters across power
// loss — and real fsyncs at nanosecond checkpoint intervals dominate
// test runtime, especially under the race detector.
var nosyncFS = ioguard.NoSync(ioguard.OS)

func synthC(t testing.TB, states int, seed int64) *netlist.Circuit {
	t.Helper()
	m, err := fsm.Generate(fsm.GenSpec{Name: "cg", Inputs: 3, Outputs: 2, States: states, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	r, err := synth.Synthesize(m, synth.Options{
		Algorithm: encode.Combined, Script: synth.Rugged, UseUnreachableDC: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r.Circuit
}

func engineCfg() atpg.Config {
	return atpg.Config{
		Name:           "campaign-test",
		MaxFrames:      8,
		MaxBackSteps:   40,
		BacktrackLimit: 4000,
		FaultBudget:    50_000_000,
		FlushCycles:    1,
	}
}

// TestCampaignMatchesSingleEngineRun: with no retries and no
// checkpointing, a campaign is exactly one engine run.
func TestCampaignMatchesSingleEngineRun(t *testing.T) {
	c := synthC(t, 7, 5)
	faults := fault.CollapsedUniverse(c)[:40]
	e, err := atpg.New(c, engineCfg())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := e.RunFaults(faults)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), c, faults, Config{Engine: engineCfg()})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Stats, ref.Stats) {
		t.Errorf("campaign stats %+v != engine stats %+v", res.Stats, ref.Stats)
	}
	if !reflect.DeepEqual(res.Outcomes, ref.Outcomes) {
		t.Error("campaign outcomes diverge from a direct engine run")
	}
	if res.Passes != 1 || res.Interrupted || res.Resumed {
		t.Errorf("unexpected run shape: %+v", res)
	}
}

// TestCampaignInterruptResumeExact is the tentpole guarantee: a
// campaign that is interrupted any number of times and resumed from its
// on-disk checkpoint finishes with Stats, Outcomes and Tests identical
// to a campaign that was never stopped.
func TestCampaignInterruptResumeExact(t *testing.T) {
	c := synthC(t, 9, 12)
	faults := fault.CollapsedUniverse(c)
	if len(faults) > 60 {
		faults = faults[:60]
	}
	base := Config{Engine: engineCfg(), Retries: 2}
	// A tight budget plus the retry ladder makes the campaign actually
	// run multiple passes, so interruptions land in retry passes and at
	// pass boundaries too.
	base.Engine.FaultBudget = 30_000
	base.Engine.RandomSequences = 3
	base.Engine.RandomLength = 10
	base.Engine.Seed = 7

	ref, err := Run(context.Background(), c, faults, base)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Interrupted {
		t.Fatal("reference campaign reported interrupted")
	}
	t.Logf("reference: %d passes, FE %.1f%%, %d aborted", ref.Passes, ref.Stats.FE(), ref.Stats.Aborted)

	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	var res *Result
	rounds := 0
	for cancelAfter := 2; ; cancelAfter += 2 {
		if rounds++; rounds > 200 {
			t.Fatal("campaign made no progress across 200 interrupted rounds")
		}
		ctx, cancel := context.WithCancel(context.Background())
		cfg := base
		cfg.CheckpointPath = ckpt
		cfg.CheckpointEvery = time.Nanosecond
		cfg.Resume = true
		cfg.FS = nosyncFS
		attempts := 0
		cfg.Hook = func(i int, f fault.Fault) {
			if attempts++; attempts >= cancelAfter {
				cancel()
			}
		}
		res, err = Run(ctx, c, faults, cfg)
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		if res.Interrupted {
			if _, err := os.Stat(ckpt); err != nil {
				t.Fatalf("interrupted campaign left no checkpoint: %v", err)
			}
			continue
		}
		if rounds > 1 && !res.Resumed {
			t.Error("completed run did not report Resumed")
		}
		break
	}
	t.Logf("final run completed after %d interrupted rounds", rounds-1)
	if rounds < 3 {
		t.Fatalf("only %d rounds ran; interruption path not exercised", rounds)
	}

	if !reflect.DeepEqual(res.Stats, ref.Stats) {
		t.Errorf("resumed stats %+v != reference %+v", res.Stats, ref.Stats)
	}
	if !reflect.DeepEqual(res.Outcomes, ref.Outcomes) {
		t.Error("resumed outcomes diverge from reference")
	}
	if !reflect.DeepEqual(res.Tests, ref.Tests) {
		t.Errorf("resumed tests (%d) diverge from reference (%d)", len(res.Tests), len(ref.Tests))
	}
	if res.Passes != ref.Passes {
		t.Errorf("resumed ran %d passes, reference %d", res.Passes, ref.Passes)
	}
	// The finished campaign cleans up its checkpoint.
	if _, err := os.Stat(ckpt); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("finished campaign left checkpoint behind (stat err %v)", err)
	}
}

// TestCampaignPartialResultCarriesProgress: an interrupted campaign
// reports the verdicts reached so far instead of discarding them.
func TestCampaignPartialResultCarriesProgress(t *testing.T) {
	c := synthC(t, 9, 12)
	faults := fault.CollapsedUniverse(c)[:40]
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	attempts := 0
	res, err := Run(ctx, c, faults, Config{
		Engine: engineCfg(),
		Hook: func(i int, f fault.Fault) {
			if attempts++; attempts >= 12 {
				cancel()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Fatal("campaign was not interrupted")
	}
	if res.Stats.Detected+res.Stats.Redundant == 0 {
		t.Error("partial campaign result carries no progress")
	}
	if got := res.Stats.Detected + res.Stats.Redundant + res.Stats.Aborted + res.Stats.Crashed; got != res.Stats.Total {
		t.Errorf("partial stats account for %d of %d faults", got, res.Stats.Total)
	}
}

// TestCampaignRejectsForeignCheckpoint: a checkpoint recorded under a
// different engine config or fault list must be refused loudly, never
// silently resumed.
func TestCampaignRejectsForeignCheckpoint(t *testing.T) {
	c := synthC(t, 7, 5)
	faults := fault.CollapsedUniverse(c)[:30]
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")

	// Record a checkpoint by interrupting a run.
	ctx, cancel := context.WithCancel(context.Background())
	attempts := 0
	res, err := Run(ctx, c, faults, Config{
		Engine:          engineCfg(),
		CheckpointPath:  ckpt,
		CheckpointEvery: time.Nanosecond,
		FS:              nosyncFS,
		Hook: func(i int, f fault.Fault) {
			if attempts++; attempts >= 5 {
				cancel()
			}
		},
	})
	cancel()
	if err != nil || !res.Interrupted {
		t.Fatalf("setup: res=%+v err=%v", res, err)
	}

	// Different engine config.
	cfg := Config{Engine: engineCfg(), CheckpointPath: ckpt, Resume: true, FS: nosyncFS}
	cfg.Engine.MaxFrames = 4
	if _, err := Run(context.Background(), c, faults, cfg); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("mismatched engine config: err = %v, want ErrCheckpointMismatch", err)
	}
	// Different fault list.
	cfg = Config{Engine: engineCfg(), CheckpointPath: ckpt, Resume: true, FS: nosyncFS}
	if _, err := Run(context.Background(), c, faults[:29], cfg); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("mismatched fault list: err = %v, want ErrCheckpointMismatch", err)
	}
	// Matching everything resumes fine.
	cfg = Config{Engine: engineCfg(), CheckpointPath: ckpt, Resume: true, FS: nosyncFS}
	if _, err := Run(context.Background(), c, faults, cfg); err != nil {
		t.Errorf("matching resume failed: %v", err)
	}
}

// TestCampaignCrashIsolation: a panicking fault search surfaces as a
// Crashed outcome with diagnostics; every other fault still completes
// and crashed faults are not retried.
func TestCampaignCrashIsolation(t *testing.T) {
	c := synthC(t, 9, 12)
	faults := fault.CollapsedUniverse(c)[:30]
	crashAt := -1
	res, err := Run(context.Background(), c, faults, Config{
		Engine:  engineCfg(),
		Retries: 2,
		Hook: func(i int, f fault.Fault) {
			if i >= 3 && crashAt < 0 {
				crashAt = i
				panic("injected campaign crash")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Interrupted {
		t.Fatal("crash interrupted the campaign")
	}
	if res.Outcomes[crashAt] != atpg.Crashed {
		t.Fatalf("outcome[%d] = %v, want crashed", crashAt, res.Outcomes[crashAt])
	}
	if res.Stats.Crashed != 1 || len(res.Crashes) != 1 {
		t.Fatalf("Crashed=%d, %d records, want 1/1", res.Stats.Crashed, len(res.Crashes))
	}
	if res.Crashes[0].Index != crashAt {
		t.Errorf("crash recorded at index %d, want %d (original fault list)", res.Crashes[0].Index, crashAt)
	}
	if got := res.Stats.Detected + res.Stats.Redundant + res.Stats.Aborted + res.Stats.Crashed; got != len(faults) {
		t.Errorf("outcome sum %d != %d faults", got, len(faults))
	}
	if res.Stats.Detected == 0 {
		t.Error("no detections after the crash: isolation failed")
	}
}

// TestCampaignRetryEscalationImprovesFE: on a retimed circuit (the
// paper's hard case) with a deliberately tight first-pass budget, the
// 2x/4x escalation ladder must strictly raise fault efficiency.
func TestCampaignRetryEscalationImprovesFE(t *testing.T) {
	orig := synthC(t, 9, 12)
	re, err := retime.Backward(orig, netlist.DefaultLibrary(), 2)
	if err != nil {
		t.Fatal(err)
	}
	c := re.Circuit
	faults := fault.CollapsedUniverse(c)
	cfg := engineCfg()
	cfg.FaultBudget = 20_000
	cfg.FlushCycles = re.FlushCycles

	single, err := Run(context.Background(), c, faults, Config{Engine: cfg})
	if err != nil {
		t.Fatal(err)
	}
	ladder, err := Run(context.Background(), c, faults, Config{Engine: cfg, Retries: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("single pass: FE %.2f%% (%d aborted); ladder: FE %.2f%% (%d aborted, %d passes)",
		single.Stats.FE(), single.Stats.Aborted, ladder.Stats.FE(), ladder.Stats.Aborted, ladder.Passes)
	if single.Stats.Aborted == 0 {
		t.Fatal("budget not tight enough: first pass aborted nothing, test proves nothing")
	}
	if ladder.Stats.FE() <= single.Stats.FE() {
		t.Errorf("retry escalation did not raise FE: %.2f%% -> %.2f%%", single.Stats.FE(), ladder.Stats.FE())
	}
	if ladder.Passes < 2 {
		t.Errorf("ladder ran only %d passes", ladder.Passes)
	}
}

// TestCampaignCheckpointRoundTrip exercises the JSON codec directly on
// a mid-pass state with learning caches and crash records.
func TestCampaignCheckpointRoundTrip(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "rt.ckpt")
	st := freshState(5)
	st.pass = 1
	st.passFaults = []int{1, 4}
	st.outcomes = []atpg.Outcome{atpg.Detected, atpg.Aborted, atpg.Redundant, atpg.Crashed, atpg.Aborted}
	st.done = []bool{true, true, true, true, true}
	st.agg = passAgg{Effort: 123, Backtracks: 4, LearnHits: 5, LearnPrunes: 6, Unconfirmed: 1}
	st.states = map[uint64]bool{3: true, 9: true}
	st.tests = [][][]sim.Val{{{sim.V0, sim.V1, sim.VX}}}
	st.crashes = []*atpg.FaultCrash{{
		Index: 3,
		Fault: fault.Fault{Gate: 7, Pin: -1, SA: sim.V1},
		Panic: "boom", Stack: "stack",
	}}
	st.snap = &atpg.Snapshot{
		Next:       1,
		RandomDone: true,
		Status:     []byte{1, 0},
		Tests:      [][][]sim.Val{{{sim.V1, sim.V1, sim.V0}}},
		Stats: atpg.Stats{
			Total: 2, Detected: 1, Effort: 77,
			StatesTraversed: map[uint64]bool{5: true},
		},
		TotalLeft:   42,
		FailedCubes: []string{"0|01X"},
		Achieved: []atpg.AchievedState{{
			Fault: "g7/sa1|", Bits: 5, Seq: [][]sim.Val{{sim.V1, sim.V0, sim.VX}},
		}},
	}

	if err := saveState(ioguard.OS, ckpt, "fp", st); err != nil {
		t.Fatal(err)
	}
	got, fellBack, err := loadState(ioguard.OS, ckpt, "fp", 5)
	if err != nil {
		t.Fatal(err)
	}
	if fellBack {
		t.Error("pristine checkpoint loaded via the fallback generation")
	}
	if got == nil {
		t.Fatal("loadState returned nil for an existing checkpoint")
	}
	if !reflect.DeepEqual(got.outcomes, st.outcomes) || !reflect.DeepEqual(got.done, st.done) ||
		!reflect.DeepEqual(got.passFaults, st.passFaults) || got.pass != st.pass {
		t.Errorf("campaign state did not round-trip: %+v vs %+v", got, st)
	}
	if got.agg != st.agg {
		t.Errorf("agg %+v != %+v", got.agg, st.agg)
	}
	if !reflect.DeepEqual(got.states, st.states) || !reflect.DeepEqual(got.tests, st.tests) {
		t.Error("states/tests did not round-trip")
	}
	if !reflect.DeepEqual(got.crashes, st.crashes) {
		t.Errorf("crashes did not round-trip: %+v vs %+v", got.crashes[0], st.crashes[0])
	}
	if !reflect.DeepEqual(got.snap, st.snap) {
		t.Errorf("snapshot did not round-trip:\n got %+v\nwant %+v", got.snap, st.snap)
	}

	// Wrong fingerprint and wrong fault count are rejected.
	if _, _, err := loadState(ioguard.OS, ckpt, "other", 5); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("foreign fingerprint: err = %v", err)
	}
	if _, _, err := loadState(ioguard.OS, ckpt, "fp", 6); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("wrong fault count: err = %v", err)
	}
	// A missing file is a clean fresh start.
	if st, _, err := loadState(ioguard.OS, filepath.Join(t.TempDir(), "nope"), "fp", 5); st != nil || err != nil {
		t.Errorf("missing checkpoint: st=%v err=%v", st, err)
	}
}

func TestCampaignConfigValidate(t *testing.T) {
	if err := (Config{Retries: -1}).Validate(); err == nil {
		t.Error("negative Retries accepted")
	}
	if err := (Config{CheckpointEvery: -time.Second}).Validate(); err == nil {
		t.Error("negative CheckpointEvery accepted")
	}
	if err := (Config{Resume: true}).Validate(); err == nil {
		t.Error("Resume without CheckpointPath accepted")
	}
	if err := (Config{Retries: 3, CheckpointPath: filepath.Join(t.TempDir(), "x"), Resume: true}).Validate(); err != nil {
		t.Errorf("legal config rejected: %v", err)
	}
}

// TestCampaignValidateRejectsUnwritableCheckpointDir: a checkpoint
// path whose directory cannot be written is refused at setup, not at
// the first periodic write minutes into the run. The unwritable
// "directory" is a regular file, which fails for any uid (a chmod 000
// directory would still be writable when the tests run as root).
func TestCampaignValidateRejectsUnwritableCheckpointDir(t *testing.T) {
	plain := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(plain, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := Config{CheckpointPath: filepath.Join(plain, "run.ckpt")}
	if err := cfg.Validate(); err == nil {
		t.Error("checkpoint path under a regular file accepted")
	}
	if _, err := Run(context.Background(), synthC(t, 5, 3), nil, cfg); err == nil {
		t.Error("Run accepted an unwritable checkpoint location")
	}
	// A missing-but-creatable directory is fine: Validate creates it,
	// exactly as the first checkpoint write would have.
	deep := filepath.Join(t.TempDir(), "a", "b", "run.ckpt")
	if err := (Config{CheckpointPath: deep}).Validate(); err != nil {
		t.Errorf("creatable checkpoint directory rejected: %v", err)
	}
}
