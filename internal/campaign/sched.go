package campaign

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"seqatpg/internal/fault"
	"seqatpg/internal/netlist"
	"seqatpg/internal/predict"
)

// SchedConfig tunes testability-aware scheduling. All of it obeys the
// predict package's soundness rule: scheduling may reorder faults and
// shape budgets, never decide verdicts — RunScheduled's outcomes are
// the same as an unscheduled normalized run's, pinned by tests.
//
// None of these knobs enter the checkpoint fingerprint. What the
// fingerprint binds is what actually executes per queue: the engine
// config and the exact fault sublist. A resume recomputes the plan
// (feature extraction is deterministic) and arrives at the same
// queues; resuming with a predictor that plans differently is rejected
// loudly as a checkpoint mismatch, never silently re-partitioned.
type SchedConfig struct {
	// Predictor scores faults; nil selects predict.Default().
	Predictor predict.Predictor
	// WithDensity feeds the per-circuit valid-state-density signal
	// (bounded BDD reachability, graceful fallback on blow-up) into
	// the predictor.
	WithDensity bool
	// DensityMaxNodes bounds the density BDD (0 = predict's default).
	DensityMaxNodes int
	// RungBudgets starts each fault at the ladder rung its predicted
	// cost calls for, instead of making every hard fault climb from
	// the bottom: a fault predicted to need 4x the base budget runs
	// its first attack at 4x and keeps the remaining escalation
	// passes. The final per-fault budget is unchanged and deterministic
	// search is truncation-monotone, so verdicts and generated tests
	// are identical — only the charged effort spent discovering "too
	// small" on the low rungs disappears. Off, scheduling is a pure
	// reordering and even the effort counters stay byte-identical.
	RungBudgets bool
}

// RunScheduled executes a campaign with testability-aware scheduling:
// faults are scored by the predictor, ordered easy-first, and
// predicted-hard faults are routed to a separate big-budget queue that
// runs concurrently — a pathological fault can no longer serialize a
// whole campaign behind it. Scheduling implies the same normalization
// as RunSharded (verdicts must be order-invariant to be reorderable),
// and the result is merged back in canonical fault order with the same
// deferred global fault-drop pass.
func RunScheduled(ctx context.Context, c *netlist.Circuit, faults []fault.Fault, cfg Config, sched SchedConfig) (*Result, error) {
	cfg = NormalizeForSharding(cfg)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	fs, err := predict.Extract(c, faults, predict.Options{
		WithDensity:     sched.WithDensity,
		DensityMaxNodes: sched.DensityMaxNodes,
		FlushCycles:     cfg.Engine.FlushCycles,
	})
	if err != nil {
		return nil, fmt.Errorf("campaign: feature extraction: %w", err)
	}
	maxRung := 0
	if sched.RungBudgets {
		maxRung = cfg.Retries
	}
	plan := predict.NewPlan(fs, sched.Predictor, cfg.Engine.FaultBudget, maxRung)
	idxs := queueIndices(plan)
	logQueues(cfg, fs, plan, idxs)

	// Serialize queue logging, as RunSharded does for shards.
	if cfg.Log != nil {
		var logMu sync.Mutex
		inner := cfg.Log
		cfg.Log = func(format string, args ...any) {
			logMu.Lock()
			defer logMu.Unlock()
			inner(format, args...)
		}
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	nq := len(idxs)
	results := make([]*Result, nq)
	errs := make([]error, nq)
	var wg sync.WaitGroup
	for q := 0; q < nq; q++ {
		if len(idxs[q]) == 0 {
			continue
		}
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			qcfg := queueConfig(cfg, q, sched.RungBudgets)
			results[q], errs[q] = runPartition(ctx, c, faults, qcfg, idxs[q],
				fmt.Sprintf(".schedq%d-of-%d", q, nq), fmt.Sprintf("queue %d/%d", q, nq))
			if errs[q] != nil {
				cancel()
			}
		}(q)
	}
	wg.Wait()
	for q, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("campaign: scheduled queue %d/%d: %w", q, nq, err)
		}
	}

	merged := MergeShardResults(faults, idxs, results)
	if !merged.Interrupted {
		if err := UpgradeAborted(c, faults, merged, cfg.fsimWorkers()); err != nil {
			return nil, fmt.Errorf("campaign: merge fault simulation: %w", err)
		}
	}
	return merged, nil
}

// queueIndices partitions fault indices by their planned ladder rung
// (queue 0 = easy, higher queues = predicted-hard), each queue ordered
// easy-first (ascending score, stable on index). Without rung budgets
// every rung is 0, so the hard flag alone splits easy from hard.
func queueIndices(plan *predict.Plan) [][]int {
	nq := 1
	for i := range plan.Rungs {
		q := queueOf(plan, i)
		if q+1 > nq {
			nq = q + 1
		}
	}
	idxs := make([][]int, nq)
	for i := range plan.Rungs {
		q := queueOf(plan, i)
		idxs[q] = append(idxs[q], i)
	}
	for q := range idxs {
		ix := idxs[q]
		sort.SliceStable(ix, func(a, b int) bool {
			if plan.Scores[ix[a]] != plan.Scores[ix[b]] {
				return plan.Scores[ix[a]] < plan.Scores[ix[b]]
			}
			return ix[a] < ix[b]
		})
	}
	return idxs
}

// queueOf maps a fault to its queue: its ladder rung, or the two-queue
// easy/hard split when the plan carries no rungs.
func queueOf(plan *predict.Plan, i int) int {
	if plan.Rungs[i] > 0 {
		return plan.Rungs[i]
	}
	if plan.Hard[i] {
		return 1
	}
	return 0
}

// queueConfig derives queue q's campaign config. With rung budgets the
// queue starts the ladder at rung q — base budget << q with the
// remaining escalation passes — so its final per-fault budget matches
// the unscheduled ladder's exactly.
func queueConfig(cfg Config, q int, rungBudgets bool) Config {
	if !rungBudgets || q == 0 {
		return cfg
	}
	qcfg := cfg
	if qcfg.Engine.FaultBudget > 0 {
		if qcfg.Engine.FaultBudget > math.MaxInt64>>uint(q) {
			qcfg.Engine.FaultBudget = math.MaxInt64
		} else {
			qcfg.Engine.FaultBudget <<= uint(q)
		}
	}
	qcfg.Retries = cfg.Retries - q
	if qcfg.Retries < 0 {
		qcfg.Retries = 0
	}
	return qcfg
}

func logQueues(cfg Config, fs *predict.FeatureSet, plan *predict.Plan, idxs [][]int) {
	if cfg.Log == nil {
		return
	}
	hard := 0
	for _, h := range plan.Hard {
		if h {
			hard++
		}
	}
	density := "unknown"
	if fs.Density.Known {
		density = fmt.Sprintf("%.3g", fs.Density.Value)
	}
	cfg.logf("campaign: scheduling %d faults with predictor %s: %d predicted hard, %d queue(s), density %s, scoap converged %v",
		len(plan.Scores), plan.Predictor, hard, len(idxs), density, fs.SCOAPConverged)
	for q, ix := range idxs {
		if len(ix) > 0 {
			cfg.logf("campaign: queue %d: %d faults", q, len(ix))
		}
	}
}
