package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"path/filepath"
	"sort"

	"seqatpg/internal/atpg"
	"seqatpg/internal/fault"
	"seqatpg/internal/ioguard"
	"seqatpg/internal/netlist"
	"seqatpg/internal/sim"
)

// checkpointVersion is bumped whenever the on-disk schema changes; a
// file with a different version is rejected, never reinterpreted.
// Version 2 added the payload CRC32 and the .prev generation; version 3
// added the learned-cube store and the conflict-driven search counters.
const checkpointVersion = 3

// prevSuffix names the previous checkpoint generation, kept so a
// corrupt current generation never strands a resume.
const prevSuffix = ".prev"

// ErrCheckpointMismatch reports a checkpoint that does not belong to
// this campaign: wrong schema version, or a fingerprint recorded over a
// different circuit, engine config, retry ladder or fault list.
var ErrCheckpointMismatch = errors.New("campaign: checkpoint does not match this run")

// Fingerprint binds a checkpoint to everything that determines a
// campaign's trajectory: the circuit structure, the engine
// configuration, the retry ladder and the exact fault list. Resuming
// under any other fingerprint would silently produce garbage, so
// loadState refuses it.
func Fingerprint(c *netlist.Circuit, cfg Config, faults []fault.Fault) string {
	h := sha256.New()
	fmt.Fprintf(h, "campaign-v%d\n", checkpointVersion)
	if err := netlist.Write(h, c); err != nil {
		// netlist.Write to a hash cannot fail for a validated circuit;
		// fold the error in so a failure still perturbs the digest.
		fmt.Fprintf(h, "write-error: %v\n", err)
	}
	// ObliviousSim is a verification mode with byte-identical results
	// and effort accounting, so — like the machine-local FsimWorkers
	// knob, which is not a Config field at all — it must not invalidate
	// checkpoints. The conflict-driven search knobs are excluded the
	// same way: they are per-fault search tuning that preserves
	// verdicts under generous budgets, so toggling them across a resume
	// must not strand a long campaign's checkpoint. Everything else
	// about the engine config binds.
	eng := cfg.Engine
	eng.ObliviousSim = false
	eng.ConflictLearning = false
	eng.Backjump = false
	eng.Restarts = false
	fmt.Fprintf(h, "engine: %+v\n", eng)
	fmt.Fprintf(h, "retries: %d\n", cfg.Retries)
	for _, f := range faults {
		fmt.Fprintf(h, "fault: %d %d %d\n", f.Gate, f.Pin, f.SA)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// On-disk schema. Vectors are "01X" strings so checkpoints stay
// human-inspectable; state sets are sorted for deterministic files.
// Crc is the IEEE CRC32 of the file's canonical JSON rendering with
// Crc itself zeroed — it catches torn tails and bit rot that still
// happen to parse, which the fingerprint (a digest of the campaign,
// not of the file) cannot.
type ckptFile struct {
	Version     int         `json:"version"`
	Crc         uint32      `json:"crc32"`
	Fingerprint string      `json:"fingerprint"`
	Pass        int         `json:"pass"`
	PassFaults  []int       `json:"pass_faults"`
	Outcomes    string      `json:"outcomes"` // one digit per fault
	Done        string      `json:"done"`     // '0'/'1' per fault
	Agg         passAgg     `json:"agg"`
	States      []uint64    `json:"states"`
	Tests       [][]string  `json:"tests"`
	Crashes     []ckptCrash `json:"crashes,omitempty"`
	Snap        *ckptSnap   `json:"snap,omitempty"`
}

type ckptCrash struct {
	Index int    `json:"index"`
	Gate  int    `json:"gate"`
	Pin   int    `json:"pin"`
	SA    int    `json:"sa"`
	Panic string `json:"panic"`
	Stack string `json:"stack"`
}

type ckptSnap struct {
	Next         int            `json:"next"`
	RandomDone   bool           `json:"random_done"`
	Status       string         `json:"status"` // one digit per pass fault
	Tests        [][]string     `json:"tests"`
	Stats        ckptStats      `json:"stats"`
	TotalLeft    int64          `json:"total_left"`
	OutOfBudget  bool           `json:"out_of_budget"`
	FailedCubes  []string       `json:"failed_cubes,omitempty"`
	SharedFailed []string       `json:"shared_failed,omitempty"`
	Achieved     []ckptAchieved `json:"achieved,omitempty"`
	LearnedCubes []ckptLemma    `json:"learned_cubes,omitempty"`
	Crashes      []ckptCrash    `json:"crashes,omitempty"`
}

type ckptStats struct {
	Total        int      `json:"total"`
	Detected     int      `json:"detected"`
	Redundant    int      `json:"redundant"`
	Aborted      int      `json:"aborted"`
	Crashed      int      `json:"crashed"`
	Unconfirmed  int      `json:"unconfirmed"`
	Effort       int64    `json:"effort"`
	Backtracks   int64    `json:"backtracks"`
	LearnHits    int64    `json:"learn_hits"`
	LearnPrunes  int64    `json:"learn_prunes"`
	LearnedCubes int64    `json:"learned_cubes"`
	Backjumps    int64    `json:"backjumps"`
	Restarts     int64    `json:"restarts"`
	States       []uint64 `json:"states"`
}

// ckptLemma is one shared learned cube ("01X" state cube forcing one
// next-state bit) in the checkpoint schema.
type ckptLemma struct {
	Cube string `json:"cube"`
	Bit  int    `json:"bit"`
	Val  int    `json:"val"`
}

type ckptAchieved struct {
	Fault string   `json:"fault"`
	Bits  uint64   `json:"bits"`
	Seq   []string `json:"seq"`
}

func encodeVec(v []sim.Val) string {
	b := make([]byte, len(v))
	for i, x := range v {
		switch x {
		case sim.V0:
			b[i] = '0'
		case sim.V1:
			b[i] = '1'
		default:
			b[i] = 'X'
		}
	}
	return string(b)
}

func decodeVec(s string) ([]sim.Val, error) {
	v := make([]sim.Val, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '0':
			v[i] = sim.V0
		case '1':
			v[i] = sim.V1
		case 'X':
			v[i] = sim.VX
		default:
			return nil, fmt.Errorf("campaign: checkpoint vector has invalid symbol %q", s[i])
		}
	}
	return v, nil
}

func encodeSeq(seq [][]sim.Val) []string {
	out := make([]string, len(seq))
	for i, v := range seq {
		out[i] = encodeVec(v)
	}
	return out
}

func decodeSeq(seq []string) ([][]sim.Val, error) {
	out := make([][]sim.Val, len(seq))
	for i, s := range seq {
		v, err := decodeVec(s)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func encodeTests(tests [][][]sim.Val) [][]string {
	out := make([][]string, len(tests))
	for i, seq := range tests {
		out[i] = encodeSeq(seq)
	}
	return out
}

func decodeTests(tests [][]string) ([][][]sim.Val, error) {
	if len(tests) == 0 {
		return nil, nil
	}
	out := make([][][]sim.Val, len(tests))
	for i, seq := range tests {
		s, err := decodeSeq(seq)
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

func encodeCrashes(crashes []*atpg.FaultCrash) []ckptCrash {
	out := make([]ckptCrash, len(crashes))
	for i, cr := range crashes {
		out[i] = ckptCrash{
			Index: cr.Index,
			Gate:  cr.Fault.Gate,
			Pin:   cr.Fault.Pin,
			SA:    int(cr.Fault.SA),
			Panic: cr.Panic,
			Stack: cr.Stack,
		}
	}
	return out
}

func decodeCrashes(crashes []ckptCrash) []*atpg.FaultCrash {
	if len(crashes) == 0 {
		return nil
	}
	out := make([]*atpg.FaultCrash, len(crashes))
	for i, cr := range crashes {
		out[i] = &atpg.FaultCrash{
			Index: cr.Index,
			Fault: fault.Fault{Gate: cr.Gate, Pin: cr.Pin, SA: sim.Val(cr.SA)},
			Panic: cr.Panic,
			Stack: cr.Stack,
		}
	}
	return out
}

func sortedStates(m map[uint64]bool) []uint64 {
	out := make([]uint64, 0, len(m))
	for s := range m {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func statesSet(s []uint64) map[uint64]bool {
	m := make(map[uint64]bool, len(s))
	for _, x := range s {
		m[x] = true
	}
	return m
}

func encodeSnap(snap *atpg.Snapshot) *ckptSnap {
	if snap == nil {
		return nil
	}
	status := make([]byte, len(snap.Status))
	for i, st := range snap.Status {
		status[i] = '0' + st
	}
	cs := &ckptSnap{
		Next:         snap.Next,
		RandomDone:   snap.RandomDone,
		Status:       string(status),
		Tests:        encodeTests(snap.Tests),
		TotalLeft:    snap.TotalLeft,
		OutOfBudget:  snap.OutOfBudget,
		FailedCubes:  snap.FailedCubes,
		SharedFailed: snap.SharedFailed,
		Crashes:      encodeCrashes(snap.Crashes),
		Stats: ckptStats{
			Total:        snap.Stats.Total,
			Detected:     snap.Stats.Detected,
			Redundant:    snap.Stats.Redundant,
			Aborted:      snap.Stats.Aborted,
			Crashed:      snap.Stats.Crashed,
			Unconfirmed:  snap.Stats.Unconfirmed,
			Effort:       snap.Stats.Effort,
			Backtracks:   snap.Stats.Backtracks,
			LearnHits:    snap.Stats.LearnHits,
			LearnPrunes:  snap.Stats.LearnPrunes,
			LearnedCubes: snap.Stats.LearnedCubes,
			Backjumps:    snap.Stats.Backjumps,
			Restarts:     snap.Stats.Restarts,
			States:       sortedStates(snap.Stats.StatesTraversed),
		},
	}
	for _, a := range snap.Achieved {
		cs.Achieved = append(cs.Achieved, ckptAchieved{
			Fault: a.Fault, Bits: a.Bits, Seq: encodeSeq(a.Seq),
		})
	}
	for _, lc := range snap.LearnedCubes {
		cs.LearnedCubes = append(cs.LearnedCubes, ckptLemma{
			Cube: lc.Cube, Bit: lc.Bit, Val: int(lc.Val),
		})
	}
	return cs
}

// decodeLemma validates one learned-cube entry: the cube must be a
// non-empty "01X" string with at least one specified bit, the forced
// bit index non-negative and the forced value binary.
func decodeLemma(lc ckptLemma) (atpg.LearnedCube, error) {
	specified := false
	for i := 0; i < len(lc.Cube); i++ {
		switch lc.Cube[i] {
		case '0', '1':
			specified = true
		case 'X':
		default:
			return atpg.LearnedCube{}, fmt.Errorf("campaign: checkpoint learned cube has invalid symbol %q", lc.Cube[i])
		}
	}
	if len(lc.Cube) == 0 || !specified {
		return atpg.LearnedCube{}, fmt.Errorf("campaign: checkpoint learned cube %q specifies no bits", lc.Cube)
	}
	if lc.Bit < 0 || lc.Bit >= len(lc.Cube) {
		return atpg.LearnedCube{}, fmt.Errorf("campaign: checkpoint learned cube bit %d out of range", lc.Bit)
	}
	if lc.Val != int(sim.V0) && lc.Val != int(sim.V1) {
		return atpg.LearnedCube{}, fmt.Errorf("campaign: checkpoint learned cube value %d is not binary", lc.Val)
	}
	return atpg.LearnedCube{Cube: lc.Cube, Bit: lc.Bit, Val: sim.Val(lc.Val)}, nil
}

func decodeSnap(cs *ckptSnap, passFaults int) (*atpg.Snapshot, error) {
	if cs == nil {
		return nil, nil
	}
	if len(cs.Status) != passFaults {
		return nil, fmt.Errorf("campaign: checkpoint snapshot covers %d faults, pass has %d", len(cs.Status), passFaults)
	}
	status := make([]byte, len(cs.Status))
	for i := 0; i < len(cs.Status); i++ {
		d := cs.Status[i] - '0'
		if d > 4 {
			return nil, fmt.Errorf("campaign: checkpoint status symbol %q invalid", cs.Status[i])
		}
		status[i] = d
	}
	tests, err := decodeTests(cs.Tests)
	if err != nil {
		return nil, err
	}
	snap := &atpg.Snapshot{
		Next:         cs.Next,
		RandomDone:   cs.RandomDone,
		Status:       status,
		Tests:        tests,
		TotalLeft:    cs.TotalLeft,
		OutOfBudget:  cs.OutOfBudget,
		FailedCubes:  cs.FailedCubes,
		SharedFailed: cs.SharedFailed,
		Crashes:      decodeCrashes(cs.Crashes),
		Stats: atpg.Stats{
			Total:           cs.Stats.Total,
			Detected:        cs.Stats.Detected,
			Redundant:       cs.Stats.Redundant,
			Aborted:         cs.Stats.Aborted,
			Crashed:         cs.Stats.Crashed,
			Unconfirmed:     cs.Stats.Unconfirmed,
			Effort:          cs.Stats.Effort,
			Backtracks:      cs.Stats.Backtracks,
			LearnHits:       cs.Stats.LearnHits,
			LearnPrunes:     cs.Stats.LearnPrunes,
			LearnedCubes:    cs.Stats.LearnedCubes,
			Backjumps:       cs.Stats.Backjumps,
			Restarts:        cs.Stats.Restarts,
			StatesTraversed: statesSet(cs.Stats.States),
		},
	}
	for _, a := range cs.Achieved {
		seq, err := decodeSeq(a.Seq)
		if err != nil {
			return nil, err
		}
		snap.Achieved = append(snap.Achieved, atpg.AchievedState{Fault: a.Fault, Bits: a.Bits, Seq: seq})
	}
	for _, lc := range cs.LearnedCubes {
		dec, err := decodeLemma(lc)
		if err != nil {
			return nil, err
		}
		snap.LearnedCubes = append(snap.LearnedCubes, dec)
	}
	return snap, nil
}

// payloadCRC computes the checksum loadState verifies: the IEEE CRC32
// of the file's canonical JSON rendering with the Crc field zeroed.
// Verifying against a re-marshal of the decoded struct (rather than
// the raw bytes) keeps the checksum independent of whitespace, so a
// hand-inspected and re-saved checkpoint still loads.
func payloadCRC(file ckptFile) (uint32, error) {
	file.Crc = 0
	body, err := json.MarshalIndent(&file, "", " ")
	if err != nil {
		return 0, err
	}
	return crc32.ChecksumIEEE(body), nil
}

// saveState durably rewrites the checkpoint with two generations:
// the payload is written to path+".tmp" and fsynced, the current
// generation (if any) is rotated to path+".prev", the temp file is
// renamed over path and the parent directory is fsynced. A crash at
// any point leaves at least one complete, CRC-verifiable generation
// on disk — the new one, the previous one, or (rotated but not yet
// replaced) the previous one under .prev.
func saveState(fsys ioguard.FS, path, fp string, st *state) error {
	outcomes := make([]byte, len(st.outcomes))
	done := make([]byte, len(st.done))
	for i, o := range st.outcomes {
		outcomes[i] = '0' + byte(o)
		done[i] = '0'
		if st.done[i] {
			done[i] = '1'
		}
	}
	file := ckptFile{
		Version:     checkpointVersion,
		Fingerprint: fp,
		Pass:        st.pass,
		PassFaults:  st.passFaults,
		Outcomes:    string(outcomes),
		Done:        string(done),
		Agg:         st.agg,
		States:      sortedStates(st.states),
		Tests:       encodeTests(st.tests),
		Crashes:     encodeCrashes(st.crashes),
		Snap:        encodeSnap(st.snap),
	}
	crc, err := payloadCRC(file)
	if err != nil {
		return fmt.Errorf("campaign: encode checkpoint: %w", err)
	}
	file.Crc = crc
	data, err := json.MarshalIndent(&file, "", " ")
	if err != nil {
		return fmt.Errorf("campaign: encode checkpoint: %w", err)
	}
	data = append(data, '\n')
	dir := filepath.Dir(path)
	tmp := path + ".tmp"
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("campaign: checkpoint directory: %w", err)
	}
	if err := fsys.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("campaign: write checkpoint: %w", err)
	}
	if err := fsys.Sync(tmp); err != nil {
		return fmt.Errorf("campaign: sync checkpoint: %w", err)
	}
	// Rotate the current generation out of the way instead of renaming
	// over it: if anything past this point fails, the previous complete
	// checkpoint is still loadable from .prev.
	if err := fsys.Rename(path, path+prevSuffix); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("campaign: rotate checkpoint: %w", err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return fmt.Errorf("campaign: commit checkpoint: %w", err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("campaign: sync checkpoint directory: %w", err)
	}
	return nil
}

// removeState deletes every generation of a finished campaign's
// checkpoint (current, previous, stale temp). Only fs.ErrNotExist is
// tolerated; anything else is reported so the caller can log it.
func removeState(fsys ioguard.FS, path string) error {
	var firstErr error
	for _, p := range []string{path, path + prevSuffix, path + ".tmp"} {
		if err := fsys.Remove(p); err != nil && !errors.Is(err, fs.ErrNotExist) && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// loadState reads and validates a checkpoint, falling back across
// generations. A missing checkpoint (neither generation exists) is not
// an error — the campaign simply starts fresh. A current generation
// that is torn, corrupt or CRC-mismatched falls back to the previous
// generation (fellBack reports this) instead of erroring the whole
// resume; resuming from an older checkpoint is always sound because a
// resumed campaign finishes byte-identical from any valid generation.
// A checkpoint that parses cleanly but belongs to a different campaign
// (ErrCheckpointMismatch) is rejected loudly with no fallback: that is
// operator error, not data loss.
func loadState(fsys ioguard.FS, path, fp string, n int) (st *state, fellBack bool, err error) {
	cur, errCur := loadGeneration(fsys, path, fp, n)
	if errCur == nil {
		return cur, false, nil
	}
	if errors.Is(errCur, ErrCheckpointMismatch) {
		return nil, false, errCur
	}
	curMissing := errors.Is(errCur, fs.ErrNotExist)
	prev, errPrev := loadGeneration(fsys, path+prevSuffix, fp, n)
	switch {
	case errPrev == nil:
		return prev, true, nil
	case errors.Is(errPrev, ErrCheckpointMismatch):
		return nil, false, errPrev
	case errors.Is(errPrev, fs.ErrNotExist):
		if curMissing {
			return nil, false, nil // fresh start
		}
		return nil, false, fmt.Errorf("campaign: checkpoint unusable and no previous generation exists: %w", errCur)
	default:
		return nil, false, fmt.Errorf("campaign: both checkpoint generations unusable: %w; previous: %v", errCur, errPrev)
	}
}

// loadGeneration reads and validates one checkpoint generation. A
// missing file surfaces as fs.ErrNotExist; a file recorded for a
// different campaign as ErrCheckpointMismatch; everything else is
// corruption the caller may fall back from.
func loadGeneration(fsys ioguard.FS, path, fp string, n int) (*state, error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("campaign: checkpoint %s: %w", path, fs.ErrNotExist)
		}
		return nil, fmt.Errorf("campaign: read checkpoint: %w", err)
	}
	var file ckptFile
	if err := json.Unmarshal(data, &file); err != nil {
		return nil, fmt.Errorf("campaign: parse checkpoint %s: %w", path, err)
	}
	if file.Version != checkpointVersion {
		return nil, fmt.Errorf("%w: %s has schema version %d, this build writes %d",
			ErrCheckpointMismatch, path, file.Version, checkpointVersion)
	}
	want, err := payloadCRC(file)
	if err != nil {
		return nil, fmt.Errorf("campaign: checksum checkpoint %s: %w", path, err)
	}
	if file.Crc != want {
		return nil, fmt.Errorf("campaign: checkpoint %s fails its CRC32 (file records %08x, payload hashes to %08x): torn write or corruption", path, file.Crc, want)
	}
	if file.Fingerprint != fp {
		return nil, fmt.Errorf("%w: %s was recorded for fingerprint %.12s…, this run is %.12s… (different circuit, config or fault list)",
			ErrCheckpointMismatch, path, file.Fingerprint, fp)
	}
	if len(file.Outcomes) != n || len(file.Done) != n {
		return nil, fmt.Errorf("%w: %s covers %d faults, this run has %d",
			ErrCheckpointMismatch, path, len(file.Outcomes), n)
	}
	st := &state{
		pass:       file.Pass,
		passFaults: file.PassFaults,
		outcomes:   make([]atpg.Outcome, n),
		done:       make([]bool, n),
		agg:        file.Agg,
		states:     statesSet(file.States),
		crashes:    decodeCrashes(file.Crashes),
	}
	if st.pass < 0 {
		return nil, fmt.Errorf("campaign: checkpoint pass %d invalid", st.pass)
	}
	for i := 0; i < n; i++ {
		d := file.Outcomes[i] - '0'
		if d > byte(atpg.Crashed) {
			return nil, fmt.Errorf("campaign: checkpoint outcome symbol %q invalid", file.Outcomes[i])
		}
		st.outcomes[i] = atpg.Outcome(d)
		switch file.Done[i] {
		case '0':
		case '1':
			st.done[i] = true
		default:
			return nil, fmt.Errorf("campaign: checkpoint done symbol %q invalid", file.Done[i])
		}
	}
	seen := make(map[int]bool, len(st.passFaults))
	for _, idx := range st.passFaults {
		if idx < 0 || idx >= n || seen[idx] {
			return nil, fmt.Errorf("campaign: checkpoint pass-fault index %d invalid", idx)
		}
		seen[idx] = true
	}
	if st.tests, err = decodeTests(file.Tests); err != nil {
		return nil, err
	}
	if st.snap, err = decodeSnap(file.Snap, len(st.passFaults)); err != nil {
		return nil, err
	}
	return st, nil
}
