package campaign

import (
	"encoding/json"
	"errors"
	"fmt"

	"seqatpg/internal/atpg"
)

// CheckpointFormatVersion is the on-disk checkpoint schema version this
// build reads and writes. The fabric version handshake exchanges it so
// a coordinator refuses workers whose checkpoints it could not
// re-dispatch (a mixed-version fleet must fail fast, not corrupt a
// merge).
const CheckpointFormatVersion = checkpointVersion

// ResultWireVersion is the schema version of the shard-result wire
// format EncodeResult writes. Bumped on any change; DecodeResult
// rejects other versions outright.
const ResultWireVersion = 1

// ErrResultWire reports a shard-result payload that cannot be decoded:
// wrong schema version, truncation, or invalid symbols.
var ErrResultWire = errors.New("campaign: invalid shard-result payload")

// wireResult is the JSON shard-result schema: a complete Result in the
// same human-inspectable encodings the checkpoint format uses ("01X"
// vectors, one digit per outcome, sorted state sets), so a worker's
// shard verdicts survive the network byte-exactly and merge into the
// same global Result a local RunSharded would have produced.
type wireResult struct {
	Version            int         `json:"version"`
	Outcomes           string      `json:"outcomes"`
	Tests              [][]string  `json:"tests"`
	Crashes            []ckptCrash `json:"crashes,omitempty"`
	Stats              ckptStats   `json:"stats"`
	Passes             int         `json:"passes"`
	Resumed            bool        `json:"resumed"`
	Interrupted        bool        `json:"interrupted"`
	Degraded           bool        `json:"degraded,omitempty"`
	CheckpointFailures int         `json:"checkpoint_failures,omitempty"`
}

// EncodeResult renders a campaign Result in the shard-result wire
// format. Workers call it to persist merge-ready shard verdicts; the
// coordinator decodes the payload with DecodeResult.
func EncodeResult(res *Result) ([]byte, error) {
	outcomes := make([]byte, len(res.Outcomes))
	for i, o := range res.Outcomes {
		outcomes[i] = '0' + byte(o)
	}
	w := wireResult{
		Version:            ResultWireVersion,
		Outcomes:           string(outcomes),
		Tests:              encodeTests(res.Tests),
		Crashes:            encodeCrashes(res.Crashes),
		Passes:             res.Passes,
		Resumed:            res.Resumed,
		Interrupted:        res.Interrupted,
		Degraded:           res.Degraded,
		CheckpointFailures: res.CheckpointFailures,
		Stats: ckptStats{
			Total:        res.Stats.Total,
			Detected:     res.Stats.Detected,
			Redundant:    res.Stats.Redundant,
			Aborted:      res.Stats.Aborted,
			Crashed:      res.Stats.Crashed,
			Unconfirmed:  res.Stats.Unconfirmed,
			Effort:       res.Stats.Effort,
			Backtracks:   res.Stats.Backtracks,
			LearnHits:    res.Stats.LearnHits,
			LearnPrunes:  res.Stats.LearnPrunes,
			LearnedCubes: res.Stats.LearnedCubes,
			Backjumps:    res.Stats.Backjumps,
			Restarts:     res.Stats.Restarts,
			States:       sortedStates(res.Stats.StatesTraversed),
		},
	}
	data, err := json.MarshalIndent(&w, "", " ")
	if err != nil {
		return nil, fmt.Errorf("campaign: encode shard result: %w", err)
	}
	return append(data, '\n'), nil
}

// DecodeResult parses and validates a shard-result payload. Every
// structural invariant is checked — schema version, outcome symbols,
// vector symbols, counter consistency with the verdict string — so a
// torn or hostile payload surfaces as ErrResultWire instead of a
// silently wrong merge.
func DecodeResult(data []byte) (*Result, error) {
	var w wireResult
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrResultWire, err)
	}
	if w.Version != ResultWireVersion {
		return nil, fmt.Errorf("%w: schema version %d, this build reads %d", ErrResultWire, w.Version, ResultWireVersion)
	}
	res := &Result{
		Outcomes:           make([]atpg.Outcome, len(w.Outcomes)),
		Crashes:            decodeCrashes(w.Crashes),
		Passes:             w.Passes,
		Resumed:            w.Resumed,
		Interrupted:        w.Interrupted,
		Degraded:           w.Degraded,
		CheckpointFailures: w.CheckpointFailures,
	}
	var counted atpg.Stats
	for i := 0; i < len(w.Outcomes); i++ {
		d := w.Outcomes[i] - '0'
		if d > byte(atpg.Crashed) {
			return nil, fmt.Errorf("%w: outcome symbol %q", ErrResultWire, w.Outcomes[i])
		}
		res.Outcomes[i] = atpg.Outcome(d)
		switch atpg.Outcome(d) {
		case atpg.Detected:
			counted.Detected++
		case atpg.Redundant:
			counted.Redundant++
		case atpg.Crashed:
			counted.Crashed++
		default:
			counted.Aborted++
		}
	}
	if w.Passes < 0 || w.CheckpointFailures < 0 {
		return nil, fmt.Errorf("%w: negative counters", ErrResultWire)
	}
	s := w.Stats
	if s.Total != len(w.Outcomes) {
		return nil, fmt.Errorf("%w: stats cover %d faults, verdict string has %d", ErrResultWire, s.Total, len(w.Outcomes))
	}
	// An interrupted shard result is not merge-ready (some verdicts are
	// provisional), so the verdict counters only have to reconcile for
	// completed runs; an interrupted payload is still decoded faithfully
	// for the coordinator to inspect and reject.
	if !w.Interrupted &&
		(s.Detected != counted.Detected || s.Redundant != counted.Redundant ||
			s.Aborted != counted.Aborted || s.Crashed != counted.Crashed) {
		return nil, fmt.Errorf("%w: verdict counters disagree with the outcome string", ErrResultWire)
	}
	if s.Effort < 0 || s.Backtracks < 0 || s.LearnHits < 0 || s.LearnPrunes < 0 ||
		s.LearnedCubes < 0 || s.Backjumps < 0 || s.Restarts < 0 || s.Unconfirmed < 0 {
		return nil, fmt.Errorf("%w: negative effort counters", ErrResultWire)
	}
	tests, err := decodeTests(w.Tests)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrResultWire, err)
	}
	res.Tests = tests
	res.Stats = atpg.Stats{
		Total:           s.Total,
		Detected:        s.Detected,
		Redundant:       s.Redundant,
		Aborted:         s.Aborted,
		Crashed:         s.Crashed,
		Unconfirmed:     s.Unconfirmed,
		Effort:          s.Effort,
		Backtracks:      s.Backtracks,
		LearnHits:       s.LearnHits,
		LearnPrunes:     s.LearnPrunes,
		LearnedCubes:    s.LearnedCubes,
		Backjumps:       s.Backjumps,
		Restarts:        s.Restarts,
		StatesTraversed: statesSet(s.States),
	}
	return res, nil
}

// CheckCheckpointBytes reports whether data is a structurally sound
// campaign checkpoint of this build's schema version: parseable JSON
// with a verifying payload CRC. It deliberately does not check the
// fingerprint — the caller (the fabric coordinator caching worker
// checkpoints for re-dispatch) has no circuit in hand; the fingerprint
// is enforced by loadState when the checkpoint is actually resumed.
func CheckCheckpointBytes(data []byte) error {
	var file ckptFile
	if err := json.Unmarshal(data, &file); err != nil {
		return fmt.Errorf("campaign: parse checkpoint payload: %w", err)
	}
	if file.Version != checkpointVersion {
		return fmt.Errorf("%w: payload has schema version %d, this build writes %d",
			ErrCheckpointMismatch, file.Version, checkpointVersion)
	}
	want, err := payloadCRC(file)
	if err != nil {
		return fmt.Errorf("campaign: checksum checkpoint payload: %w", err)
	}
	if file.Crc != want {
		return fmt.Errorf("campaign: checkpoint payload fails its CRC32 (records %08x, payload hashes to %08x)", file.Crc, want)
	}
	return nil
}
