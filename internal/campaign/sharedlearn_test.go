package campaign

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"seqatpg/internal/atpg"
	"seqatpg/internal/fault"
	"seqatpg/internal/ioguard"
)

// sharedCfg is engineCfg with the cross-fault justification cache on.
func sharedCfg() atpg.Config {
	cfg := engineCfg()
	cfg.Learning = true
	cfg.SharedLearning = true
	cfg.RelaxedJustify = true
	return cfg
}

// TestFingerprintIgnoresObliviousSim: oblivious verification mode has
// byte-identical results and effort accounting, so toggling it must not
// invalidate checkpoints — while the cache knobs, which change the
// search trajectory, must.
func TestFingerprintIgnoresObliviousSim(t *testing.T) {
	c := synthC(t, 7, 5)
	faults := fault.CollapsedUniverse(c)[:20]
	base := Config{Engine: engineCfg()}

	obl := base
	obl.Engine.ObliviousSim = true
	if Fingerprint(c, base, faults) != Fingerprint(c, obl, faults) {
		t.Error("ObliviousSim changed the checkpoint fingerprint")
	}

	shared := base
	shared.Engine.Learning = true
	shared.Engine.SharedLearning = true
	if Fingerprint(c, base, faults) == Fingerprint(c, shared, faults) {
		t.Error("SharedLearning did not change the checkpoint fingerprint")
	}

	capped := shared
	capped.Engine.LearnCap = 16
	if Fingerprint(c, shared, faults) == Fingerprint(c, capped, faults) {
		t.Error("LearnCap did not change the checkpoint fingerprint")
	}
}

// TestFingerprintIgnoresCdclKnobs: the conflict-driven search knobs are
// verdict-preserving search tuning, excluded from checkpoint identity
// the way ObliviousSim is — a campaign checkpointed without cdcl must
// resume with it on, and vice versa.
func TestFingerprintIgnoresCdclKnobs(t *testing.T) {
	c := synthC(t, 7, 5)
	faults := fault.CollapsedUniverse(c)[:20]
	base := Config{Engine: sharedCfg()}

	cdcl := base
	cdcl.Engine.ConflictLearning = true
	if Fingerprint(c, base, faults) != Fingerprint(c, cdcl, faults) {
		t.Error("ConflictLearning changed the checkpoint fingerprint")
	}
	cdcl.Engine.Backjump = true
	cdcl.Engine.Restarts = true
	if Fingerprint(c, base, faults) != Fingerprint(c, cdcl, faults) {
		t.Error("Backjump/Restarts changed the checkpoint fingerprint")
	}
}

// TestFingerprintIgnoresFsimWorkers pins the contract the fault-sim
// throughput knobs rely on: FsimWorkers (and, inside the engine, the
// kernel Width it implies) is worker-count- and width-invariant in
// results and effort, so changing it must never invalidate a
// checkpoint. A machine with more cores resumes another machine's
// campaign.
func TestFingerprintIgnoresFsimWorkers(t *testing.T) {
	c := synthC(t, 7, 5)
	faults := fault.CollapsedUniverse(c)[:20]
	base := Config{Engine: engineCfg()}
	for _, workers := range []int{1, 2, 8, 64} {
		tuned := base
		tuned.FsimWorkers = workers
		if Fingerprint(c, base, faults) != Fingerprint(c, tuned, faults) {
			t.Errorf("FsimWorkers=%d changed the checkpoint fingerprint", workers)
		}
	}
}

// TestRunShardedNormalizesSharedLearning: the shared justification
// cache is cross-fault state, so sharded mode must disable it (logging
// the change) and stay shard-count-invariant when a caller asks for it.
func TestRunShardedNormalizesSharedLearning(t *testing.T) {
	c := synthC(t, 7, 5)
	faults := fault.CollapsedUniverse(c)
	if len(faults) > 40 {
		faults = faults[:40]
	}

	var logs []string
	cfg := Config{Engine: sharedCfg(), Log: func(format string, args ...any) {
		logs = append(logs, fmt.Sprintf(format, args...))
	}}

	var ref *Result
	for _, shards := range []int{1, 2, 3} {
		res, err := RunSharded(context.Background(), c, faults, cfg, shards)
		if err != nil {
			t.Fatal(err)
		}
		if shards == 1 {
			ref = res
			continue
		}
		if !reflect.DeepEqual(res.Outcomes, ref.Outcomes) {
			t.Errorf("shards=%d: outcomes diverge from shards=1", shards)
		}
	}

	found := false
	for _, line := range logs {
		if strings.Contains(line, "shared justification cache") {
			found = true
			break
		}
	}
	if !found {
		t.Error("sharded run did not log that it disabled the shared cache")
	}
}

// TestCheckpointRoundTripSharedFailed: the cross-fault failed-cube
// store survives a save/load cycle verbatim, alongside the other
// snapshot learning stores.
func TestCheckpointRoundTripSharedFailed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shared.ckpt")
	snap := &atpg.Snapshot{
		Next:         1,
		RandomDone:   true,
		Status:       []byte{1, 0},
		FailedCubes:  []string{"g3:01X", "g3:0X1"},
		SharedFailed: []string{"01X", "1XX"},
		Stats:        atpg.Stats{Total: 2, Detected: 1, StatesTraversed: map[uint64]bool{3: true}},
	}
	st := &state{
		pass:       0,
		passFaults: []int{0, 1},
		outcomes:   []atpg.Outcome{atpg.Detected, atpg.Aborted},
		done:       []bool{true, false},
		states:     map[uint64]bool{3: true},
		snap:       snap,
	}
	if err := saveState(ioguard.OS, path, "fp", st); err != nil {
		t.Fatal(err)
	}
	got, _, err := loadState(ioguard.OS, path, "fp", 2)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.snap == nil {
		t.Fatal("loaded checkpoint lost the engine snapshot")
	}
	if !reflect.DeepEqual(got.snap.SharedFailed, snap.SharedFailed) {
		t.Errorf("SharedFailed round-tripped as %v, want %v", got.snap.SharedFailed, snap.SharedFailed)
	}
	if !reflect.DeepEqual(got.snap.FailedCubes, snap.FailedCubes) {
		t.Errorf("FailedCubes round-tripped as %v, want %v", got.snap.FailedCubes, snap.FailedCubes)
	}
}

// TestCampaignResumeExactWithSharedLearning: interrupt/resume exactness
// must hold with the shared cache enabled — the mid-pass snapshot now
// carries the cross-fault stores, and a resumed campaign must land on
// the same stats, outcomes and tests as one that was never stopped.
func TestCampaignResumeExactWithSharedLearning(t *testing.T) {
	resumeExact(t, sharedCfg())
}

// TestCampaignResumeExactWithCdcl: the same exactness with the full
// conflict-driven stack on — mid-pass snapshots now carry a populated
// learned-cube store and the cdcl effort counters, and a resumed
// campaign must replay to byte-identical stats (LearnedCubes, Backjumps
// and Restarts included).
func TestCampaignResumeExactWithCdcl(t *testing.T) {
	cfg := sharedCfg()
	cfg.ConflictLearning = true
	cfg.Backjump = true
	cfg.Restarts = true
	resumeExact(t, cfg)
}

func resumeExact(t *testing.T, eng atpg.Config) {
	c := synthC(t, 9, 12)
	faults := fault.CollapsedUniverse(c)
	if len(faults) > 50 {
		faults = faults[:50]
	}
	base := Config{Engine: eng, Retries: 1}
	base.Engine.FaultBudget = 40_000

	ref, err := Run(context.Background(), c, faults, base)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Interrupted {
		t.Fatal("reference campaign reported interrupted")
	}

	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	var res *Result
	rounds := 0
	for cancelAfter := 3; ; cancelAfter += 3 {
		if rounds++; rounds > 100 {
			t.Fatal("campaign made no progress across 100 interrupted rounds")
		}
		ctx, cancel := context.WithCancel(context.Background())
		cfg := base
		cfg.CheckpointPath = ckpt
		cfg.CheckpointEvery = time.Nanosecond
		cfg.Resume = true
		cfg.FS = nosyncFS
		attempts := 0
		cfg.Hook = func(i int, f fault.Fault) {
			if attempts++; attempts >= cancelAfter {
				cancel()
			}
		}
		res, err = Run(ctx, c, faults, cfg)
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		if res.Interrupted {
			continue
		}
		break
	}
	t.Logf("completed after %d interrupted rounds (hits=%d prunes=%d)",
		rounds-1, res.Stats.LearnHits, res.Stats.LearnPrunes)
	if rounds < 2 {
		t.Fatal("interruption path not exercised")
	}
	if !reflect.DeepEqual(res.Stats, ref.Stats) {
		t.Errorf("resumed stats %+v != reference %+v", res.Stats, ref.Stats)
	}
	if !reflect.DeepEqual(res.Outcomes, ref.Outcomes) {
		t.Error("resumed outcomes diverge from reference")
	}
	if !reflect.DeepEqual(res.Tests, ref.Tests) {
		t.Error("resumed tests diverge from reference")
	}
	if _, err := os.Stat(ckpt); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("finished campaign left checkpoint behind (stat err %v)", err)
	}
}
