package campaign

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"seqatpg/internal/atpg"
	"seqatpg/internal/fault"
	"seqatpg/internal/netlist"
	"seqatpg/internal/retime"
)

// TestRunShardedShardCountInvariant is the acceptance bar for
// deterministic parallelism: on a retimed circuit (the paper's hard
// case) with a budget tight enough to abort faults, shards ∈ {1, 2, 4}
// must produce identical per-fault verdicts and identical aggregate
// counters — the detected/aborted sets may not depend on how the fault
// list was partitioned.
func TestRunShardedShardCountInvariant(t *testing.T) {
	orig := synthC(t, 9, 12)
	re, err := retime.Backward(orig, netlist.DefaultLibrary(), 2)
	if err != nil {
		t.Fatal(err)
	}
	c := re.Circuit
	faults := fault.CollapsedUniverse(c)
	cfg := Config{Engine: engineCfg(), Retries: 1}
	cfg.Engine.FaultBudget = 20_000
	cfg.Engine.FlushCycles = re.FlushCycles

	var ref *Result
	for _, shards := range []int{1, 2, 4} {
		res, err := RunSharded(context.Background(), c, faults, cfg, shards)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if res.Interrupted {
			t.Fatalf("shards=%d: spuriously interrupted", shards)
		}
		if shards == 1 {
			ref = res
			if ref.Stats.Aborted == 0 {
				t.Fatal("budget not tight enough: nothing aborted, invariance proves nothing")
			}
			if ref.Stats.Detected == 0 {
				t.Fatal("nothing detected, invariance proves nothing")
			}
			continue
		}
		if !reflect.DeepEqual(res.Outcomes, ref.Outcomes) {
			for i := range res.Outcomes {
				if res.Outcomes[i] != ref.Outcomes[i] {
					t.Errorf("shards=%d: fault %d (%v): %v, 1 shard gave %v",
						shards, i, faults[i], res.Outcomes[i], ref.Outcomes[i])
				}
			}
		}
		if !reflect.DeepEqual(res.Stats, ref.Stats) {
			t.Errorf("shards=%d: stats %+v != 1-shard stats %+v", shards, res.Stats, ref.Stats)
		}
		if len(res.Tests) != len(ref.Tests) {
			t.Errorf("shards=%d: %d tests, 1 shard generated %d", shards, len(res.Tests), len(ref.Tests))
		}
	}
	t.Logf("invariant across shard counts: %d detected, %d aborted, FE %.2f%%",
		ref.Stats.Detected, ref.Stats.Aborted, ref.Stats.FE())
}

// TestRunShardedInterruptResume: a sharded campaign interrupted mid-run
// leaves per-shard checkpoints and, resumed with the same shard count,
// finishes with verdicts and counters identical to an uninterrupted
// sharded run.
func TestRunShardedInterruptResume(t *testing.T) {
	c := synthC(t, 9, 12)
	faults := fault.CollapsedUniverse(c)
	if len(faults) > 60 {
		faults = faults[:60]
	}
	const shards = 2
	base := Config{Engine: engineCfg(), Retries: 1}
	base.Engine.FaultBudget = 30_000

	ref, err := RunSharded(context.Background(), c, faults, base, shards)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Interrupted {
		t.Fatal("reference run reported interrupted")
	}

	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	var res *Result
	rounds := 0
	for cancelAfter := int64(3); ; cancelAfter += 3 {
		if rounds++; rounds > 200 {
			t.Fatal("sharded campaign made no progress across 200 interrupted rounds")
		}
		ctx, cancel := context.WithCancel(context.Background())
		cfg := base
		cfg.CheckpointPath = ckpt
		cfg.CheckpointEvery = time.Nanosecond
		cfg.Resume = true
		cfg.FS = nosyncFS
		var attempts atomic.Int64
		cfg.Hook = func(i int, f fault.Fault) {
			if attempts.Add(1) >= cancelAfter {
				cancel()
			}
		}
		res, err = RunSharded(ctx, c, faults, cfg, shards)
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		if res.Interrupted {
			continue
		}
		break
	}
	if rounds < 2 {
		t.Fatalf("only %d rounds ran; interruption path not exercised", rounds)
	}
	t.Logf("sharded run completed after %d interrupted rounds", rounds-1)
	if !reflect.DeepEqual(res.Outcomes, ref.Outcomes) {
		t.Error("resumed sharded outcomes diverge from uninterrupted reference")
	}
	if !reflect.DeepEqual(res.Stats, ref.Stats) {
		t.Errorf("resumed sharded stats %+v != reference %+v", res.Stats, ref.Stats)
	}
	// Finished shards clean their checkpoints up.
	for _, m := range []string{ckpt, ckpt + ".shard0-of-2", ckpt + ".shard1-of-2"} {
		if _, err := os.Stat(m); err == nil {
			t.Errorf("finished sharded campaign left %s behind", m)
		}
	}
}

// TestRunShardedCrashIsolation: a panic inside one shard's fault search
// surfaces as a Crashed outcome at the right canonical index without
// taking down sibling shards.
func TestRunShardedCrashIsolation(t *testing.T) {
	c := synthC(t, 9, 12)
	faults := fault.CollapsedUniverse(c)[:30]
	const crashAt = 7
	var fired atomic.Bool
	res, err := RunSharded(context.Background(), c, faults, Config{
		Engine: engineCfg(),
		Hook: func(i int, f fault.Fault) {
			if i == crashAt && fired.CompareAndSwap(false, true) {
				panic("injected shard crash")
			}
		},
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcomes[crashAt] != atpg.Crashed {
		t.Fatalf("outcome[%d] = %v, want crashed", crashAt, res.Outcomes[crashAt])
	}
	if len(res.Crashes) != 1 || res.Crashes[0].Index != crashAt {
		t.Fatalf("crashes %+v, want one at canonical index %d", res.Crashes, crashAt)
	}
	if res.Stats.Detected == 0 {
		t.Error("no detections despite the crash being isolated to one fault")
	}
	if got := res.Stats.Detected + res.Stats.Redundant + res.Stats.Aborted + res.Stats.Crashed; got != len(faults) {
		t.Errorf("outcome sum %d != %d faults", got, len(faults))
	}
}

func TestRunShardedRejectsBadShardCount(t *testing.T) {
	c := synthC(t, 5, 3)
	faults := fault.CollapsedUniverse(c)[:4]
	for _, shards := range []int{0, -2} {
		if _, err := RunSharded(context.Background(), c, faults, Config{Engine: engineCfg()}, shards); err == nil {
			t.Errorf("shards=%d accepted", shards)
		}
	}
	// More shards than faults: the empty shards are simply skipped.
	res, err := RunSharded(context.Background(), c, faults, Config{Engine: engineCfg()}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != len(faults) || res.Stats.Total != len(faults) {
		t.Errorf("short fault list mis-merged: %d outcomes, Total %d", len(res.Outcomes), res.Stats.Total)
	}
}
