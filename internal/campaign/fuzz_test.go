package campaign

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"seqatpg/internal/atpg"
	"seqatpg/internal/ioguard"
	"seqatpg/internal/sim"
)

// seedCheckpoint renders a genuine checkpoint file for the corpus.
func seedCheckpoint(f *testing.F, st *state) {
	f.Helper()
	path := filepath.Join(f.TempDir(), "seed.json")
	if err := saveState(ioguard.OS, path, "seed-fingerprint", st); err != nil {
		f.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
}

// FuzzCheckpoint throws arbitrary bytes at the campaign checkpoint
// decoder, the mirror of netlist's FuzzRead: checkpoints are the other
// on-disk artifact the system reads back (a service job directory can
// contain anything after a crash). loadState must never panic — it
// returns an error or a state that survives a save/load round trip.
// The fingerprint and fault count are lifted from the input itself so
// structurally valid files reach the deep decoding paths instead of
// dying at the fingerprint gate.
func FuzzCheckpoint(f *testing.F) {
	full := freshState(3)
	full.pass = 1
	full.passFaults = []int{0, 2}
	full.outcomes = []atpg.Outcome{atpg.Detected, atpg.Aborted, atpg.Aborted}
	full.done = []bool{true, false, false}
	full.agg = passAgg{Effort: 100, Backtracks: 7, Unconfirmed: 1}
	full.states = map[uint64]bool{0: true, 9: true}
	full.tests = [][][]sim.Val{{{sim.V0, sim.V1, sim.VX}}}
	full.crashes = []*atpg.FaultCrash{{Index: 1, Panic: "boom", Stack: "stack"}}
	full.snap = &atpg.Snapshot{
		Status: []byte{0, 2},
		Tests:  [][][]sim.Val{{{sim.V1, sim.V1, sim.V0}}},
		Stats:  atpg.Stats{Total: 2, Aborted: 1, StatesTraversed: map[uint64]bool{4: true}},
	}
	seedCheckpoint(f, full)
	seedCheckpoint(f, freshState(1))
	f.Add([]byte(`{"version":1,"fingerprint":"x","outcomes":"07","done":"11"}`))
	f.Add([]byte(`{"version":1,"fingerprint":"x","outcomes":"00","done":"10","pass_faults":[0,0]}`))
	f.Add([]byte(`{"version":1,"fingerprint":"x","outcomes":"0","done":"1","tests":[["01Z"]]}`))
	f.Add([]byte(`{"version":1,"fingerprint":"x","outcomes":"0","done":"0","snap":{"status":"9"}}`))
	f.Add([]byte(`{"version":99}`))
	f.Add([]byte(`not json`))
	f.Add([]byte("\x00\xff{"))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "ckpt.json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		// The raw bytes must never panic the loader, whatever they are.
		_, _, _ = loadState(ioguard.OS, path, "", 0)
		fuzzRoundTrip(t, data)
	})
}

// FuzzLearnedCubes targets the learned-cube serialization added with
// the conflict-driven search: checkpoints carrying lemma stores and the
// cdcl effort counters must decode without panicking, reject malformed
// cube strings and out-of-range bits, and — once accepted — survive a
// save/load cycle with the store intact in insertion order.
func FuzzLearnedCubes(f *testing.F) {
	st := freshState(2)
	st.agg = passAgg{Effort: 42, LearnedCubes: 3, Backjumps: 2, Restarts: 1}
	st.snap = &atpg.Snapshot{
		Status: []byte{0, 0},
		Stats: atpg.Stats{
			Total: 2, LearnedCubes: 3, Backjumps: 2, Restarts: 1,
			StatesTraversed: map[uint64]bool{},
		},
		LearnedCubes: []atpg.LearnedCube{
			{Cube: "01X", Bit: 2, Val: sim.V1},
			{Cube: "X1X", Bit: 0, Val: sim.V0},
			{Cube: "10X", Bit: 1, Val: sim.V1},
		},
	}
	seedCheckpoint(f, st)
	f.Add([]byte(`{"version":3,"fingerprint":"x","outcomes":"0","done":"0","snap":{"status":"0","learned_cubes":[{"cube":"01X","bit":1,"val":1}]}}`))
	f.Add([]byte(`{"version":3,"fingerprint":"x","outcomes":"0","done":"0","snap":{"status":"0","learned_cubes":[{"cube":"9","bit":0,"val":1}]}}`))
	f.Add([]byte(`{"version":3,"fingerprint":"x","outcomes":"0","done":"0","snap":{"status":"0","learned_cubes":[{"cube":"01","bit":7,"val":1}]}}`))
	f.Add([]byte(`{"version":3,"fingerprint":"x","outcomes":"0","done":"0","snap":{"status":"0","learned_cubes":[{"cube":"XXX","bit":0,"val":0}]}}`))
	f.Add([]byte(`{"version":3,"fingerprint":"x","outcomes":"0","done":"0","snap":{"status":"0","learned_cubes":[{"cube":"01","bit":0,"val":9}]}}`))
	f.Add([]byte(`{"version":3,"fingerprint":"x","outcomes":"0","done":"0","stats":{"learned_cubes":-1}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "cubes.json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, _ = loadState(ioguard.OS, path, "", 0)
		fuzzRoundTrip(t, data)
	})
}

// fuzzRoundTrip is the shared deep-decode property: heal the CRC so
// structurally valid payloads reach the decoder, then require any
// accepted state to survive a save/load cycle — including the learned
// lemma store, verbatim.
func fuzzRoundTrip(t *testing.T, data []byte) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	// Self-consistent fingerprint, fault count and CRC, when
	// extractable: healing the checksum lets structurally valid
	// files reach the deep decoding paths instead of dying at the
	// CRC gate the fuzzer can almost never satisfy by chance.
	var file ckptFile
	if json.Unmarshal(data, &file) != nil {
		return
	}
	fp := file.Fingerprint
	n := len(file.Outcomes)
	if crc, err := payloadCRC(file); err == nil {
		file.Crc = crc
		healed, err := json.Marshal(&file)
		if err == nil {
			if err := os.WriteFile(path, healed, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	st, _, err := loadState(ioguard.OS, path, fp, n)
	if err != nil || st == nil {
		return
	}
	// A state the decoder accepted must survive a round trip.
	again := filepath.Join(t.TempDir(), "again.json")
	if err := saveState(ioguard.OS, again, fp, st); err != nil {
		t.Fatalf("saveState rejected a state loadState produced: %v", err)
	}
	st2, _, err := loadState(ioguard.OS, again, fp, n)
	if err != nil {
		t.Fatalf("round trip failed: %v", err)
	}
	if st2 == nil {
		t.Fatal("round trip lost the checkpoint")
	}
	if len(st2.outcomes) != len(st.outcomes) || st2.pass != st.pass ||
		len(st2.passFaults) != len(st.passFaults) || len(st2.tests) != len(st.tests) {
		t.Fatalf("round trip changed the state: pass %d->%d, %d->%d outcomes, %d->%d pass faults, %d->%d tests",
			st.pass, st2.pass, len(st.outcomes), len(st2.outcomes),
			len(st.passFaults), len(st2.passFaults), len(st.tests), len(st2.tests))
	}
	if st.snap != nil && st2.snap != nil &&
		!reflect.DeepEqual(st2.snap.LearnedCubes, st.snap.LearnedCubes) {
		t.Fatalf("round trip changed the lemma store: %v -> %v",
			st.snap.LearnedCubes, st2.snap.LearnedCubes)
	}
}
