package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"seqatpg/internal/fault"
	"seqatpg/internal/ioguard"
	"seqatpg/internal/netlist"
)

// chaosWorkload is the mid-size campaign the chaos suite runs: a
// multi-pass retry ladder with a budget tight enough that checkpoints
// land in retry passes too.
func chaosWorkload(t *testing.T) (*netlist.Circuit, []fault.Fault, Config) {
	t.Helper()
	c := synthC(t, 9, 12)
	faults := fault.CollapsedUniverse(c)
	if len(faults) > 24 {
		faults = faults[:24]
	}
	cfg := Config{Engine: engineCfg(), Retries: 1}
	cfg.Engine.FaultBudget = 30_000
	// No random preprocessing: every fault is attacked directly, so the
	// run crosses many attempt boundaries — that is where checkpoints
	// land, and the sweep wants as many write points as possible.
	cfg.Engine.RandomSequences = 0
	cfg.Engine.RandomLength = 0
	cfg.Engine.Seed = 7
	return c, faults, cfg
}

// assertSameResult asserts the chaos invariant: whatever was injected,
// the final Stats, Outcomes and Tests are byte-identical to the
// uninterrupted baseline.
func assertSameResult(t *testing.T, label string, got, ref *Result) {
	t.Helper()
	if got.Interrupted {
		t.Fatalf("%s: final run still interrupted", label)
	}
	if !reflect.DeepEqual(got.Stats, ref.Stats) {
		t.Errorf("%s: stats %+v != baseline %+v", label, got.Stats, ref.Stats)
	}
	if !reflect.DeepEqual(got.Outcomes, ref.Outcomes) {
		t.Errorf("%s: outcomes diverge from baseline", label)
	}
	if !reflect.DeepEqual(got.Tests, ref.Tests) {
		t.Errorf("%s: tests (%d) diverge from baseline (%d)", label, len(got.Tests), len(ref.Tests))
	}
}

// runToCount executes the workload once over a transparent FaultFS to
// enumerate every write point (mutating filesystem operation) of a
// fully checkpointed run.
func runToCount(t *testing.T, c *netlist.Circuit, faults []fault.Fault, base Config, ckpt string, ref *Result) int {
	t.Helper()
	rec := ioguard.NewFaultFS(nosyncFS)
	cfg := base
	cfg.CheckpointPath = ckpt
	cfg.CheckpointEvery = time.Nanosecond
	cfg.FS = rec
	res, err := Run(context.Background(), c, faults, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "recording run", res, ref)
	if res.Degraded || res.CheckpointFailures != 0 {
		t.Fatalf("recording run degraded: %d failures", res.CheckpointFailures)
	}
	return rec.MutatingOps()
}

// TestCampaignChaosKillAtEveryWritePoint is the acceptance scenario:
// for EVERY write point of a fully checkpointed campaign, kill the
// process at exactly that filesystem operation (the op and everything
// after it fail, the context is cancelled), then resume on a healthy
// filesystem and require results byte-identical to a run that was
// never stopped. The torn variant additionally leaves a half-written
// block at the failure point before dying.
func TestCampaignChaosKillAtEveryWritePoint(t *testing.T) {
	c, faults, base := chaosWorkload(t)
	ref, err := Run(context.Background(), c, faults, base)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Interrupted {
		t.Fatal("baseline interrupted")
	}
	total := runToCount(t, c, faults, base, filepath.Join(t.TempDir(), "rec.ckpt"), ref)
	if total < 10 {
		t.Fatalf("only %d write points; chaos sweep proves nothing", total)
	}
	t.Logf("sweeping %d write points", total)

	stride := 1
	if testing.Short() {
		stride = 7
	}
	resumed := 0
	for _, torn := range []bool{false, true} {
		for n := 0; n < total; n += stride {
			ckpt := filepath.Join(t.TempDir(), "run.ckpt")
			rule := ioguard.Rule{From: n}
			label := "kill"
			if torn {
				// Tear the next write at or after op n, then die.
				rule = ioguard.Rule{Kind: "write", From: n, Mode: ioguard.Torn}
				label = "torn-kill"
			}
			ffs := ioguard.NewFaultFS(nosyncFS, rule)
			ctx, cancel := context.WithCancel(context.Background())
			ffs.OnTrip(func(op int, r ioguard.Rule) { ffs.Kill(); cancel() })
			cfg := base
			cfg.CheckpointPath = ckpt
			cfg.CheckpointEvery = time.Nanosecond
			cfg.FS = ffs
			if res1, err1 := Run(ctx, c, faults, cfg); err1 == nil && !res1.Interrupted {
				// The injected crash landed after compute finished (final
				// cleanup, say): completing is correct, with the right
				// answer — and the restart below must still converge.
				assertSameResult(t, label+"-completed", res1, ref)
			}
			cancel()

			// Restart: same campaign, healthy filesystem.
			cfg2 := base
			cfg2.CheckpointPath = ckpt
			cfg2.Resume = true
			cfg2.FS = nosyncFS
			res2, err := Run(context.Background(), c, faults, cfg2)
			if err != nil {
				t.Fatalf("%s@%d: resume failed: %v", label, n, err)
			}
			if res2.Resumed {
				resumed++
			}
			assertSameResult(t, label, res2, ref)
			// The finished campaign sweeps every generation and temp file.
			if m, _ := filepath.Glob(ckpt + "*"); len(m) != 0 {
				t.Fatalf("%s@%d: leftovers after success: %v", label, n, m)
			}
		}
	}
	if resumed == 0 {
		t.Error("no sweep iteration actually resumed from a checkpoint")
	}
	t.Logf("%d iterations resumed from a surviving checkpoint", resumed)
}

// TestCampaignChaosENOSPCStorm: a window of failed checkpoint writes
// (full disk) must not abort the campaign — it finishes with baseline
// results, marked degraded, having retried and succeeded once space
// returns, and still cleans up after itself.
func TestCampaignChaosENOSPCStorm(t *testing.T) {
	c, faults, base := chaosWorkload(t)
	ref, err := Run(context.Background(), c, faults, base)
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(t.TempDir(), "storm.ckpt")
	ffs := ioguard.NewFaultFS(nosyncFS,
		ioguard.Rule{Kind: "write", PathContains: "storm.ckpt", Mode: ioguard.ENOSPC, From: 4, Count: 12})
	cfg := base
	cfg.CheckpointPath = ckpt
	cfg.CheckpointEvery = time.Nanosecond
	cfg.FS = ffs
	var okWrites, failWrites int
	cfg.OnCheckpoint = func() { okWrites++ }
	cfg.OnCheckpointFailure = func(error) { failWrites++ }
	res, err := Run(context.Background(), c, faults, cfg)
	if err != nil {
		t.Fatalf("ENOSPC storm aborted the campaign: %v", err)
	}
	if ffs.Trips() == 0 {
		t.Fatal("storm never fired; test proves nothing")
	}
	if !res.Degraded || res.CheckpointFailures == 0 {
		t.Errorf("run not marked degraded: degraded=%v failures=%d", res.Degraded, res.CheckpointFailures)
	}
	if res.CheckpointFailures != failWrites {
		t.Errorf("Result counts %d failures, callback saw %d", res.CheckpointFailures, failWrites)
	}
	if okWrites == 0 {
		t.Error("no checkpoint write succeeded after the storm window passed")
	}
	assertSameResult(t, "enospc-storm", res, ref)
	if m, _ := filepath.Glob(ckpt + "*"); len(m) != 0 {
		t.Errorf("leftovers after degraded success: %v", m)
	}
}

// TestCampaignChaosCorruptCurrentGeneration: every corruption of the
// current checkpoint generation — truncated tail, CRC-detectable bit
// damage, or the file missing entirely — must fall back to the .prev
// generation and still finish byte-identical, with no manual
// intervention.
func TestCampaignChaosCorruptCurrentGeneration(t *testing.T) {
	c, faults, base := chaosWorkload(t)
	ref, err := Run(context.Background(), c, faults, base)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupt a checkpointed run late enough that both generations
	// exist on disk.
	seedDir := t.TempDir()
	ckpt := filepath.Join(seedDir, "run.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	attempts := 0
	cfg := base
	cfg.CheckpointPath = ckpt
	cfg.CheckpointEvery = time.Nanosecond
	cfg.FS = nosyncFS
	// The hook fires per generated test (fault dropping means far fewer
	// tests than faults), so keep the threshold low.
	cfg.Hook = func(i int, f fault.Fault) {
		if attempts++; attempts >= 3 {
			cancel()
		}
	}
	res, err := Run(ctx, c, faults, cfg)
	cancel()
	if err != nil || !res.Interrupted {
		t.Fatalf("setup: res=%+v err=%v", res, err)
	}
	cur, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	prev, err := os.ReadFile(ckpt + prevSuffix)
	if err != nil {
		t.Fatalf("interrupted run kept no previous generation: %v", err)
	}

	corruptions := []struct {
		name string
		mut  func(t *testing.T, path string)
	}{
		{"truncated", func(t *testing.T, path string) {
			if err := os.WriteFile(path, cur[:len(cur)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"crc-mismatch", func(t *testing.T, path string) {
			// Valid JSON, valid schema, silently altered payload: only
			// the CRC can catch this.
			var file ckptFile
			if err := json.Unmarshal(cur, &file); err != nil {
				t.Fatal(err)
			}
			file.Agg.Effort += 1_000_000
			data, err := json.MarshalIndent(&file, "", " ")
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"missing", func(t *testing.T, path string) {
			if err := os.Remove(path); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "run.ckpt")
			if err := os.WriteFile(path, cur, 0o644); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path+prevSuffix, prev, 0o644); err != nil {
				t.Fatal(err)
			}
			tc.mut(t, path)
			cfg := base
			cfg.CheckpointPath = path
			cfg.Resume = true
			cfg.FS = nosyncFS
			got, err := Run(context.Background(), c, faults, cfg)
			if err != nil {
				t.Fatalf("resume with corrupt current generation failed: %v", err)
			}
			if !got.Resumed {
				t.Error("fallback resume did not report Resumed")
			}
			assertSameResult(t, tc.name, got, ref)
		})
	}

	// Both generations corrupt is unrecoverable and must error loudly —
	// never silently restart and burn hours recomputing a long campaign.
	t.Run("both-corrupt", func(t *testing.T) {
		dir := t.TempDir()
		path := filepath.Join(dir, "run.ckpt")
		if err := os.WriteFile(path, cur[:len(cur)/3], 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path+prevSuffix, prev[:len(prev)/3], 0o644); err != nil {
			t.Fatal(err)
		}
		cfg := base
		cfg.CheckpointPath = path
		cfg.Resume = true
		cfg.FS = nosyncFS
		if _, err := Run(context.Background(), c, faults, cfg); err == nil {
			t.Fatal("resume accepted a store with no usable generation")
		}
	})
}

// TestCampaignChaosDegradedInterruption: when the filesystem dies for
// good mid-run, the interruption path must return the partial result
// (degraded, with the failure counted) instead of erroring out.
func TestCampaignChaosDegradedInterruption(t *testing.T) {
	c, faults, base := chaosWorkload(t)
	ffs := ioguard.NewFaultFS(nosyncFS)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := base
	cfg.CheckpointPath = filepath.Join(t.TempDir(), "dead.ckpt")
	cfg.CheckpointEvery = time.Hour // only the final interruption write
	cfg.FS = ffs
	attempts := 0
	cfg.Hook = func(i int, f fault.Fault) {
		if attempts++; attempts == 3 {
			ffs.Kill() // disk gone...
			cancel()   // ...and the run interrupted
		}
	}
	res, err := Run(ctx, c, faults, cfg)
	if err != nil {
		t.Fatalf("interruption with a dead filesystem returned error: %v", err)
	}
	if !res.Interrupted {
		t.Fatal("campaign not interrupted")
	}
	if !res.Degraded || res.CheckpointFailures == 0 {
		t.Errorf("dead-disk interruption not degraded: %+v", res)
	}
	if errors.Is(ctx.Err(), context.Canceled) == false {
		t.Error("test wiring: context not cancelled")
	}
}
