package campaign

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"seqatpg/internal/atpg"
	"seqatpg/internal/fault"
	"seqatpg/internal/netlist"
	"seqatpg/internal/predict"
	"seqatpg/internal/retime"
)

// sortedTests renders the generated test sequences order-independently:
// scheduling legitimately permutes Result.Tests (like resharding does),
// so invariance is pinned on the multiset of sequences, not their order.
func sortedTests(res *Result) []string {
	out := make([]string, len(res.Tests))
	for i, seq := range res.Tests {
		out[i] = fmt.Sprintf("%v", seq)
	}
	sort.Strings(out)
	return out
}

func retimedC(t *testing.T) (*netlist.Circuit, int) {
	t.Helper()
	orig := synthC(t, 9, 12)
	re, err := retime.Backward(orig, netlist.DefaultLibrary(), 2)
	if err != nil {
		t.Fatal(err)
	}
	return re.Circuit, re.FlushCycles
}

func schedCfg(t *testing.T) (Config, *netlist.Circuit, []fault.Fault) {
	t.Helper()
	c, flush := retimedC(t)
	faults := fault.CollapsedUniverse(c)
	if len(faults) > 48 {
		faults = faults[:48]
	}
	cfg := Config{Engine: engineCfg(), Retries: 2}
	cfg.Engine.FaultBudget = 20_000
	cfg.Engine.FlushCycles = flush
	return cfg, c, faults
}

// TestScheduledMatchesSharded is the core soundness pin: a scheduled
// campaign without rung budgets is a pure reordering, so its verdicts,
// stats (including charged effort) and generated-test multiset are
// identical to the unscheduled normalized run.
func TestScheduledMatchesSharded(t *testing.T) {
	cfg, c, faults := schedCfg(t)

	ref, err := RunSharded(context.Background(), c, faults, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := RunScheduled(context.Background(), c, faults, cfg, SchedConfig{WithDensity: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sched.Outcomes, ref.Outcomes) {
		t.Error("scheduled outcomes diverge from the unscheduled run")
	}
	if !reflect.DeepEqual(sched.Stats, ref.Stats) {
		t.Errorf("scheduled stats diverge (pure reordering must preserve them):\n got %+v\nwant %+v", sched.Stats, ref.Stats)
	}
	if !reflect.DeepEqual(sortedTests(sched), sortedTests(ref)) {
		t.Error("scheduled test multiset diverges from the unscheduled run")
	}
}

// hardMarker is a test predictor that scores a chosen set of faults as
// maximally hard and everything else as trivially easy, making queue
// routing and rung assignment deterministic for the test.
type hardMarker struct{ hard map[int]bool }

func (h hardMarker) Name() string { return "test-hard-marker" }
func (h hardMarker) Score(fs *predict.FeatureSet, i int) float64 {
	if h.hard[i] {
		return 1e15
	}
	return 1
}

// TestScheduledRungBudgetsVerdictInvariant: starting predicted-hard
// faults high on the ladder must keep every verdict and every generated
// test identical — the final per-fault budget is unchanged — while
// strictly reducing charged effort (the skipped low rungs were pure
// waste on faults that were going to out-budget them anyway).
func TestScheduledRungBudgetsVerdictInvariant(t *testing.T) {
	cfg, c, faults := schedCfg(t)

	ref, err := RunSharded(context.Background(), c, faults, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Identify faults the unscheduled ladder re-attacked: any fault
	// still aborted after pass 0 paid for low rungs it out-budgeted.
	pass0cfg := cfg
	pass0cfg.Retries = 0
	pass0, err := RunSharded(context.Background(), c, faults, pass0cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	hard := map[int]bool{}
	for i, o := range pass0.Outcomes {
		if o == atpg.Aborted {
			hard[i] = true
		}
	}
	if len(hard) == 0 {
		t.Fatal("budget not tight enough: pass 0 aborted nothing, the test proves nothing")
	}

	sched, err := RunScheduled(context.Background(), c, faults, cfg, SchedConfig{
		Predictor:   hardMarker{hard: hard},
		RungBudgets: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sched.Outcomes, ref.Outcomes) {
		t.Error("rung budgets changed verdicts — prediction decided an outcome")
	}
	if sched.Stats.Detected != ref.Stats.Detected || sched.Stats.Aborted != ref.Stats.Aborted ||
		sched.Stats.Redundant != ref.Stats.Redundant || sched.Stats.Crashed != ref.Stats.Crashed {
		t.Errorf("outcome counters diverge: %+v vs %+v", sched.Stats, ref.Stats)
	}
	if !reflect.DeepEqual(sortedTests(sched), sortedTests(ref)) {
		t.Error("rung budgets changed the generated test multiset")
	}
	if sched.Stats.Effort >= ref.Stats.Effort {
		t.Errorf("rung budgets did not reduce charged effort: %d >= %d", sched.Stats.Effort, ref.Stats.Effort)
	}
	t.Logf("charged effort %d -> %d (%.1f%%), %d faults started high",
		ref.Stats.Effort, sched.Stats.Effort,
		100*float64(sched.Stats.Effort)/float64(ref.Stats.Effort), len(hard))
}

// TestScheduledResumeExact: resume-exactness with scheduling enabled —
// a scheduled campaign interrupted any number of times and resumed from
// its per-queue checkpoints finishes byte-identical to one that was
// never stopped. The plan is recomputed on every resume; deterministic
// feature extraction is what makes the recomputed queues (and so the
// per-queue fingerprints) line up.
func TestScheduledResumeExact(t *testing.T) {
	cfg, c, faults := schedCfg(t)
	sched := SchedConfig{RungBudgets: true}

	ref, err := RunScheduled(context.Background(), c, faults, cfg, sched)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Interrupted {
		t.Fatal("reference scheduled campaign reported interrupted")
	}

	ckpt := filepath.Join(t.TempDir(), "sched.ckpt")
	var res *Result
	rounds := 0
	for cancelAfter := 2; ; cancelAfter += 2 {
		if rounds++; rounds > 200 {
			t.Fatal("scheduled campaign made no progress across 200 interrupted rounds")
		}
		ctx, cancel := context.WithCancel(context.Background())
		rcfg := cfg
		rcfg.CheckpointPath = ckpt
		rcfg.CheckpointEvery = time.Nanosecond
		rcfg.Resume = true
		rcfg.FS = nosyncFS
		var attempts atomic.Int32
		rcfg.Hook = func(i int, f fault.Fault) {
			// Queues run concurrently; the hook must be race-free.
			if attempts.Add(1) >= int32(cancelAfter) {
				cancel()
			}
		}
		res, err = RunScheduled(ctx, c, faults, rcfg, sched)
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		if res.Interrupted {
			continue
		}
		break
	}
	t.Logf("final scheduled run completed after %d interrupted rounds", rounds-1)
	if rounds < 3 {
		t.Fatalf("only %d rounds ran; interruption path not exercised", rounds)
	}
	if !reflect.DeepEqual(res.Outcomes, ref.Outcomes) {
		t.Error("resumed scheduled outcomes diverge from the uninterrupted run")
	}
	if !reflect.DeepEqual(res.Stats, ref.Stats) {
		t.Errorf("resumed scheduled stats diverge:\n got %+v\nwant %+v", res.Stats, ref.Stats)
	}
	if !reflect.DeepEqual(sortedTests(res), sortedTests(ref)) {
		t.Error("resumed scheduled test multiset diverges")
	}
}

// TestScheduledForeignPlanRejected: prediction knobs are excluded from
// the checkpoint fingerprint, so what protects a resume is the binding
// to each queue's exact fault sublist — a predictor that routes faults
// differently must be rejected loudly, never silently merged into the
// wrong queue's progress.
func TestScheduledForeignPlanRejected(t *testing.T) {
	cfg, c, faults := schedCfg(t)
	ckpt := filepath.Join(t.TempDir(), "sched.ckpt")
	markA := hardMarker{hard: map[int]bool{1: true, 3: true}}
	markB := hardMarker{hard: map[int]bool{1: true, 3: true, 5: true}}

	ctx, cancel := context.WithCancel(context.Background())
	wcfg := cfg
	wcfg.CheckpointPath = ckpt
	wcfg.CheckpointEvery = time.Nanosecond
	wcfg.FS = nosyncFS
	var attempts atomic.Int32
	wcfg.Hook = func(i int, f fault.Fault) {
		if attempts.Add(1) >= 4 {
			cancel()
		}
	}
	res, err := RunScheduled(ctx, c, faults, wcfg, SchedConfig{Predictor: markA})
	cancel()
	if err != nil || !res.Interrupted {
		t.Fatalf("setup: res=%+v err=%v", res, err)
	}

	// Same predictor resumes fine (the recomputed plan matches).
	rcfg := cfg
	rcfg.CheckpointPath = ckpt
	rcfg.Resume = true
	rcfg.FS = nosyncFS
	if _, err := RunScheduled(context.Background(), c, faults, rcfg, SchedConfig{Predictor: markA}); err != nil {
		t.Fatalf("matching plan failed to resume: %v", err)
	}

	// Re-record a checkpoint, then resume with a predictor that moves
	// fault 5 to the hard queue: the easy queue's sublist no longer
	// matches its checkpoint.
	ctx, cancel = context.WithCancel(context.Background())
	attempts.Store(0)
	res, err = RunScheduled(ctx, c, faults, wcfg, SchedConfig{Predictor: markA})
	cancel()
	if err != nil || !res.Interrupted {
		t.Fatalf("re-record: res=%+v err=%v", res, err)
	}
	if _, err := RunScheduled(context.Background(), c, faults, rcfg, SchedConfig{Predictor: markB}); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("foreign plan resumed: err = %v, want ErrCheckpointMismatch", err)
	}
	// Leftover queue checkpoints from rejected attempts are fine; the
	// temp dir is discarded. Just ensure the checkpoint file from the
	// interrupted run still exists for the error path above.
	if _, err := os.Stat(ckpt + ".schedq0-of-2"); err != nil {
		t.Logf("note: easy-queue checkpoint stat: %v", err)
	}
}
