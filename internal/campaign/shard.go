package campaign

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"seqatpg/internal/atpg"
	"seqatpg/internal/fault"
	"seqatpg/internal/netlist"
)

// RunSharded executes a campaign with fault-level parallelism: the
// fault list is partitioned round-robin across `shards` workers, each
// worker runs an independent engine (its own retry ladder, crash
// isolation and — when CheckpointPath is set — its own fingerprinted
// per-shard checkpoint), and the per-shard results are merged back in
// canonical fault-list order.
//
// Determinism is the design constraint: the detected/aborted/redundant
// verdict of every fault must not depend on the shard count, or
// parallel runs would be irreproducible. Two engine features make a
// fault's verdict depend on which other faults share its run, so
// sharded mode normalizes them away (logging each change):
//
//   - cross-fault test dropping and the random preprocessing phase
//     (NoFaultDrop is forced on, RandomSequences/RandomLength to zero):
//     every fault is attacked directly, and a single global
//     fault-simulation pass at the end replays all generated tests
//     against the still-aborted faults — the same set of tests
//     regardless of partitioning, since every test-generating fault is
//     attacked in every partitioning;
//   - search-state learning and the shared total budget (Learning is
//     forced off, TotalBudget to zero): both leak engine state across
//     faults within one run.
//
// With those normalized, a fault's outcome is a pure function of
// (circuit, pass config, fault), so RunSharded with shards ∈ {1, 2, 4}
// returns identical Outcomes and Stats counters; only the order of
// Result.Tests varies with the partitioning.
//
// Checkpointing: shard k of n writes CheckpointPath + ".shard<k>-of-<n>",
// so an interrupted sharded run resumes per shard. Resuming with a
// different shard count is rejected by the per-shard fingerprints
// (each binds to its shard's exact fault sublist). Config.Hook and
// Config.OnCheckpoint are invoked concurrently from shard workers;
// Config.Log is serialized here before reaching the caller.
func RunSharded(ctx context.Context, c *netlist.Circuit, faults []fault.Fault, cfg Config, shards int) (*Result, error) {
	if shards < 1 {
		return nil, fmt.Errorf("campaign: RunSharded with %d shards, want >= 1", shards)
	}
	cfg = NormalizeForSharding(cfg)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	// Serialize shard logging; the caller's Log sees one line at a time.
	if cfg.Log != nil {
		var logMu sync.Mutex
		inner := cfg.Log
		cfg.Log = func(format string, args ...any) {
			logMu.Lock()
			defer logMu.Unlock()
			inner(format, args...)
		}
	}

	idxs := ShardIndices(len(faults), shards)

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]*Result, shards)
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for k := 0; k < shards; k++ {
		if len(idxs[k]) == 0 {
			continue
		}
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			results[k], errs[k] = runShard(ctx, c, faults, cfg, idxs[k], k, shards)
			if errs[k] != nil {
				cancel() // a shard that cannot even start aborts its siblings
			}
		}(k)
	}
	wg.Wait()
	for k, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("campaign: shard %d/%d: %w", k, shards, err)
		}
	}

	merged := MergeShardResults(faults, idxs, results)
	if !merged.Interrupted {
		if err := UpgradeAborted(c, faults, merged, cfg.fsimWorkers()); err != nil {
			return nil, fmt.Errorf("campaign: merge fault simulation: %w", err)
		}
	}
	return merged, nil
}

// ShardIndices is the round-robin partition RunSharded (and any
// distributed dispatcher that must stay outcome-compatible with it)
// uses: shard k of n attacks faults k, k+n, k+2n, … Contiguous blocks
// would hand one shard the whole hard tail of a sorted fault list;
// interleaving balances effort without breaking determinism. Shards
// past the fault count come back empty.
func ShardIndices(n, shards int) [][]int {
	idxs := make([][]int, shards)
	for i := 0; i < n; i++ {
		k := i % shards
		idxs[k] = append(idxs[k], i)
	}
	return idxs
}

// NormalizeForSharding forces the engine features that would make a
// fault's verdict depend on its run-mates off, logging every change.
// It is exported because every runner that wants partition-invariant
// outcomes — RunSharded locally, a fabric worker attacking one shard
// of a distributed campaign — must apply the exact same normalization,
// or merged verdicts would diverge from a single-node run.
func NormalizeForSharding(cfg Config) Config {
	e := &cfg.Engine
	e.NoFaultDrop = true
	if e.RandomSequences != 0 || e.RandomLength != 0 {
		cfg.logf("campaign: sharded run disables the random preprocessing phase (%d seqs x %d)", e.RandomSequences, e.RandomLength)
		e.RandomSequences, e.RandomLength = 0, 0
	}
	if e.SharedLearning {
		cfg.logf("campaign: sharded run disables the shared justification cache (cross-fault state)")
		e.SharedLearning = false
	}
	if e.Learning {
		cfg.logf("campaign: sharded run disables search-state learning (cross-fault state)")
		e.Learning = false
	}
	if e.TotalBudget != 0 {
		cfg.logf("campaign: sharded run ignores TotalBudget %d (not partition-invariant)", e.TotalBudget)
		e.TotalBudget = 0
	}
	return cfg
}

// runShard runs one shard's sublist through a plain campaign, with the
// hook index remapped to the original fault list and a per-shard
// checkpoint file.
func runShard(ctx context.Context, c *netlist.Circuit, faults []fault.Fault, cfg Config, idx []int, k, shards int) (*Result, error) {
	return runPartition(ctx, c, faults, cfg, idx,
		fmt.Sprintf(".shard%d-of-%d", k, shards), fmt.Sprintf("shard %d/%d", k, shards))
}

// runPartition runs the sublist idx selects through a plain campaign:
// hook indices remapped to the original fault list, checkpoint under
// CheckpointPath + ckptSuffix, log lines prefixed with tag. It is the
// shared machinery under both the round-robin shards of RunSharded and
// the predicted-cost queues of RunScheduled.
func runPartition(ctx context.Context, c *netlist.Circuit, faults []fault.Fault, cfg Config, idx []int, ckptSuffix, tag string) (*Result, error) {
	sub := make([]fault.Fault, len(idx))
	for i, gi := range idx {
		sub[i] = faults[gi]
	}
	scfg := cfg
	if cfg.CheckpointPath != "" {
		scfg.CheckpointPath = cfg.CheckpointPath + ckptSuffix
	}
	if cfg.Hook != nil {
		hook := cfg.Hook
		scfg.Hook = func(i int, f fault.Fault) { hook(idx[i], f) }
	}
	if cfg.Log != nil {
		log := cfg.Log
		scfg.Log = func(format string, args ...any) {
			log(tag+": "+format, args...)
		}
	}
	return Run(ctx, c, sub, scfg)
}

// MergeShardResults folds per-shard results back into original fault
// order: results[k] covers exactly the faults idxs[k] selects (nil
// entries — empty or missing shards — are skipped). This is the merge
// RunSharded applies to its in-process workers; the fabric coordinator
// applies the identical fold to results fetched over the wire, which
// is what keeps a distributed campaign byte-compatible with a local
// sharded one.
func MergeShardResults(faults []fault.Fault, idxs [][]int, results []*Result) *Result {
	merged := &Result{
		Outcomes: make([]atpg.Outcome, len(faults)),
		Stats: atpg.Stats{
			Total:           len(faults),
			StatesTraversed: map[uint64]bool{},
		},
	}
	for k, res := range results {
		if res == nil {
			continue
		}
		for i, gi := range idxs[k] {
			merged.Outcomes[gi] = res.Outcomes[i]
		}
		merged.Tests = append(merged.Tests, res.Tests...)
		for _, cr := range res.Crashes {
			remapped := *cr
			remapped.Index = idxs[k][cr.Index]
			merged.Crashes = append(merged.Crashes, &remapped)
		}
		s := res.Stats
		merged.Stats.Detected += s.Detected
		merged.Stats.Redundant += s.Redundant
		merged.Stats.Aborted += s.Aborted
		merged.Stats.Crashed += s.Crashed
		merged.Stats.Unconfirmed += s.Unconfirmed
		merged.Stats.Effort += s.Effort
		merged.Stats.Backtracks += s.Backtracks
		merged.Stats.LearnHits += s.LearnHits
		merged.Stats.LearnPrunes += s.LearnPrunes
		merged.Stats.LearnedCubes += s.LearnedCubes
		merged.Stats.Backjumps += s.Backjumps
		merged.Stats.Restarts += s.Restarts
		for st := range s.StatesTraversed {
			merged.Stats.StatesTraversed[st] = true
		}
		merged.Interrupted = merged.Interrupted || res.Interrupted
		merged.Resumed = merged.Resumed || res.Resumed
		merged.CheckpointFailures += res.CheckpointFailures
		merged.Degraded = merged.Degraded || res.Degraded
		if res.Passes > merged.Passes {
			merged.Passes = res.Passes
		}
	}
	sort.Slice(merged.Crashes, func(i, j int) bool {
		return merged.Crashes[i].Index < merged.Crashes[j].Index
	})
	return merged
}

// UpgradeAborted is the global fault-drop pass sharding deferred:
// every generated test is fault-simulated against the still-aborted
// faults, and hits become Detected. Because NoFaultDrop made every
// test-generating fault attack directly, the set of tests — and hence
// the set of upgrades — is the same for every shard count. The merge
// simulation is bookkeeping, not search, so it is not charged to
// Stats.Effort; its batches fan out over `workers` (the outcome is
// worker-count-invariant).
func UpgradeAborted(c *netlist.Circuit, faults []fault.Fault, merged *Result, workers int) error {
	var live []int
	for i, o := range merged.Outcomes {
		if o == atpg.Aborted {
			live = append(live, i)
		}
	}
	if len(live) == 0 || len(merged.Tests) == 0 {
		return nil
	}
	fs, err := fault.NewSimulator(c)
	if err != nil {
		return err
	}
	fs.Width = fault.WidthAuto // verdicts are width-invariant; adapt to activity
	for _, seq := range merged.Tests {
		if len(live) == 0 {
			break
		}
		sub := make([]fault.Fault, len(live))
		for i, gi := range live {
			sub[i] = faults[gi]
		}
		det, err := fs.DetectsParallel(context.Background(), seq, sub, workers)
		if err != nil {
			return err
		}
		var still []int
		for i, gi := range live {
			if det[i] {
				merged.Outcomes[gi] = atpg.Detected
				merged.Stats.Aborted--
				merged.Stats.Detected++
			} else {
				still = append(still, gi)
			}
		}
		live = still
	}
	return nil
}
