package synth

import (
	"fmt"

	"seqatpg/internal/logic"
	"seqatpg/internal/netlist"
)

// LowerPLA synthesizes a combinational netlist from a multi-output PLA:
// per-output espresso-style minimization against the PLA's per-output
// don't-care sets, then multi-level lowering under the chosen script
// with structural sharing across outputs. The circuit's PIs follow the
// PLA input order; POs follow the output order. No reset line is added
// (the result is purely combinational).
func LowerPLA(p *logic.PLA, name string, script Script) (*netlist.Circuit, error) {
	if p.NumInputs <= 0 || p.NumOutputs <= 0 {
		return nil, fmt.Errorf("synth: PLA needs at least one input and output")
	}
	b := &builder{
		c:      netlist.New(name),
		nIn:    p.NumInputs,
		invOf:  map[int]int{},
		strash: map[string]int{},
	}
	for i := 0; i < p.NumInputs; i++ {
		b.varGate = append(b.varGate, b.c.AddGate(netlist.Input, fmt.Sprintf("in%d", i)))
	}
	for j := 0; j < p.NumOutputs; j++ {
		f := logic.Minimize(p.OnSet(j), p.DCSet(j))
		id := b.lowerCover(f, script)
		b.c.AddGate(netlist.Output, fmt.Sprintf("out%d", j), id)
	}
	if err := b.c.Validate(); err != nil {
		return nil, fmt.Errorf("synth: LowerPLA produced an invalid circuit: %w", err)
	}
	return b.c, nil
}
