package synth

import (
	"math/rand"
	"strings"
	"testing"

	"seqatpg/internal/logic"
	"seqatpg/internal/sim"
)

func TestLowerPLACarry(t *testing.T) {
	src := `.i 3
.o 2
11- 10
1-1 10
-11 10
111 01
.e`
	p, err := logic.ReadPLA(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	for _, script := range []Script{Rugged, Delay} {
		c, err := LowerPLA(p, "carry", script)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sim.NewSimulator(c)
		if err != nil {
			t.Fatal(err)
		}
		on0, on1 := p.OnSet(0), p.OnSet(1)
		for m := uint64(0); m < 8; m++ {
			vec := make([]sim.Val, 3)
			for i := 0; i < 3; i++ {
				if (m>>uint(i))&1 == 1 {
					vec[i] = sim.V1
				}
			}
			outs, err := s.Eval(vec)
			if err != nil {
				t.Fatal(err)
			}
			want0, want1 := on0.Eval(m), on1.Eval(m)
			if (outs[0] == sim.V1) != want0 || (outs[1] == sim.V1) != want1 {
				t.Fatalf("%v: minterm %03b gave %v/%v, want %v/%v",
					script, m, outs[0], outs[1], want0, want1)
			}
		}
	}
}

// TestLowerPLARandom cross-checks random PLAs exhaustively.
func TestLowerPLARandom(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		nIn, nOut := 3+rng.Intn(3), 1+rng.Intn(3)
		p := &logic.PLA{NumInputs: nIn, NumOutputs: nOut}
		rows := 2 + rng.Intn(8)
		for r := 0; r < rows; r++ {
			in := make(logic.Cube, nIn)
			for i := range in {
				in[i] = logic.Value(rng.Intn(3))
			}
			out := make(logic.Cube, nOut)
			for j := range out {
				out[j] = logic.Value(rng.Intn(2)) // ON or OFF, no DC here
			}
			p.Rows = append(p.Rows, logic.PLARow{Input: in, Output: out})
		}
		c, err := LowerPLA(p, "rand", Rugged)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sim.NewSimulator(c)
		if err != nil {
			t.Fatal(err)
		}
		for m := uint64(0); m < 1<<uint(nIn); m++ {
			vec := make([]sim.Val, nIn)
			for i := 0; i < nIn; i++ {
				if (m>>uint(i))&1 == 1 {
					vec[i] = sim.V1
				}
			}
			outs, err := s.Eval(vec)
			if err != nil {
				t.Fatal(err)
			}
			for j := 0; j < nOut; j++ {
				want := p.OnSet(j).Eval(m)
				if (outs[j] == sim.V1) != want {
					t.Fatalf("trial %d output %d minterm %b: got %v want %v",
						trial, j, m, outs[j], want)
				}
			}
		}
	}
}

func TestLowerPLARejectsEmpty(t *testing.T) {
	if _, err := LowerPLA(&logic.PLA{}, "bad", Rugged); err == nil {
		t.Error("empty PLA must be rejected")
	}
}
