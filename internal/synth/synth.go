// Package synth lowers a symbolic FSM with a chosen state assignment to
// a mapped gate-level netlist, mirroring the SIS flow of the reproduced
// paper: two-level next-state/output covers extracted from the STG,
// unreachable-state don't-cares (the extract_seq_dc analog), espresso-
// style minimization, one of two multi-level scripts (rugged = area-
// driven factoring, delay = shallow two-level trees), technology mapping
// onto a bounded-fanin library, and explicit-reset insertion.
package synth

import (
	"fmt"
	"sort"

	"seqatpg/internal/encode"
	"seqatpg/internal/fsm"
	"seqatpg/internal/logic"
	"seqatpg/internal/netlist"
)

// Script selects the multi-level optimization style, echoing the SIS
// scripts the paper sweeps.
type Script int

// The two synthesis scripts.
const (
	// Rugged factors the minimized covers algebraically and shares
	// structurally identical logic, trading depth for area — the
	// script.rugged analog.
	Rugged Script = iota
	// Delay implements the minimized covers as shallow balanced
	// AND-OR trees with only whole-cube sharing — the script.delay
	// analog.
	Delay
)

// String returns the suffix used in circuit names (.sr/.sd).
func (s Script) String() string {
	switch s {
	case Rugged:
		return "sr"
	case Delay:
		return "sd"
	default:
		return fmt.Sprintf("Script(%d)", int(s))
	}
}

// Options configures the synthesis run.
type Options struct {
	Algorithm encode.Algorithm
	Script    Script
	// UseUnreachableDC feeds the unused state codes to the minimizer as
	// don't-cares (SIS extract_seq_dc). Disabling it is an ablation knob.
	UseUnreachableDC bool
}

// Result carries the synthesized circuit and the artifacts the
// downstream experiments need.
type Result struct {
	Circuit  *netlist.Circuit
	Encoding encode.Encoding
	// NextState and Outputs are the minimized two-level covers over
	// (inputs ++ state bits), kept for inspection and tests.
	NextState []*logic.Cover
	Outputs   []*logic.Cover
}

// Synthesize lowers machine m to a gate-level circuit. The circuit's PI
// order is [reset, machine inputs...]; its DFF order matches the state
// bits of the encoding; its PO order matches the machine outputs.
func Synthesize(m *fsm.FSM, opt Options) (*Result, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	enc := encode.Assign(m, opt.Algorithm)
	nIn, nBits := m.NumInputs, enc.Bits
	nVars := nIn + nBits

	stateCube := func(code uint64) logic.Cube {
		c := logic.NewCube(nVars)
		for b := 0; b < nBits; b++ {
			if (code>>uint(b))&1 == 1 {
				c[nIn+b] = logic.One
			} else {
				c[nIn+b] = logic.Zero
			}
		}
		return c
	}

	// ON-set extraction from the STG.
	next := make([]*logic.Cover, nBits)
	for j := range next {
		next[j] = logic.NewCover(nVars)
	}
	outs := make([]*logic.Cover, m.NumOutputs)
	for j := range outs {
		outs[j] = logic.NewCover(nVars)
	}
	for _, t := range m.Trans {
		base := stateCube(enc.Code[t.From])
		copy(base[:nIn], t.Input)
		toCode := enc.Code[t.To]
		for j := 0; j < nBits; j++ {
			if (toCode>>uint(j))&1 == 1 {
				next[j].Add(base.Clone())
			}
		}
		for j, v := range t.Output {
			if v == logic.One {
				outs[j].Add(base.Clone())
			}
		}
	}

	// Don't-care set: state codes never assigned to any state
	// (extract_seq_dc). Inputs are fully dashed.
	dc := logic.NewCover(nVars)
	if opt.UseUnreachableDC {
		used := map[uint64]bool{}
		for _, c := range enc.Code {
			used[c] = true
		}
		for code := uint64(0); code < 1<<uint(nBits); code++ {
			if !used[code] {
				dc.Add(stateCube(code))
			}
		}
	}

	for j := range next {
		next[j] = logic.Minimize(next[j], dc)
	}
	for j := range outs {
		outs[j] = logic.Minimize(outs[j], dc)
	}

	name := fmt.Sprintf("%s.%s.%s", m.Name, opt.Algorithm, opt.Script)
	b := newBuilder(name, nIn, nBits)

	nextIDs := make([]int, nBits)
	for j, f := range next {
		nextIDs[j] = b.lowerCover(f, opt.Script)
	}
	outIDs := make([]int, m.NumOutputs)
	for j, f := range outs {
		outIDs[j] = b.lowerCover(f, opt.Script)
	}

	b.finish(nextIDs, outIDs, enc.Code[m.Reset])
	if err := b.c.Validate(); err != nil {
		return nil, fmt.Errorf("synth %s: %w", name, err)
	}
	return &Result{Circuit: b.c, Encoding: enc, NextState: next, Outputs: outs}, nil
}

// builder accumulates the netlist with structural hashing so identical
// subexpressions are shared.
type builder struct {
	c       *netlist.Circuit
	nIn     int
	nBits   int
	varGate []int       // gate id providing each two-level variable
	invOf   map[int]int // driver -> cached inverter output
	strash  map[string]int
	reset   int   // reset PI gate id
	dffs    []int // DFF gate ids (allocated up front, D patched later)
}

func newBuilder(name string, nIn, nBits int) *builder {
	b := &builder{
		c:      netlist.New(name),
		nIn:    nIn,
		nBits:  nBits,
		invOf:  map[int]int{},
		strash: map[string]int{},
	}
	b.reset = b.c.AddGate(netlist.Input, "reset")
	b.c.ResetPI = b.reset
	for i := 0; i < nIn; i++ {
		b.varGate = append(b.varGate, b.c.AddGate(netlist.Input, fmt.Sprintf("in%d", i)))
	}
	for j := 0; j < nBits; j++ {
		// D input patched in finish; temporarily self-referential.
		id := b.c.AddGate(netlist.DFF, fmt.Sprintf("q%d", j), 0)
		b.c.Gates[id].Fanin[0] = id
		b.dffs = append(b.dffs, id)
		b.varGate = append(b.varGate, id)
	}
	return b
}

// not returns a (shared) inverter of the driver.
func (b *builder) not(id int) int {
	if g := b.c.Gates[id]; g.Type == netlist.Not {
		return g.Fanin[0] // double inversion cancels
	}
	if inv, ok := b.invOf[id]; ok {
		return inv
	}
	inv := b.hashed(netlist.Not, id)
	b.invOf[id] = inv
	return inv
}

// hashed adds a gate unless an identical one exists (type + ordered
// fanins for the commutative types).
func (b *builder) hashed(t netlist.GateType, fanin ...int) int {
	sorted := append([]int(nil), fanin...)
	switch t {
	case netlist.And, netlist.Or, netlist.Nand, netlist.Nor, netlist.Xor, netlist.Xnor:
		sort.Ints(sorted)
	}
	key := fmt.Sprintf("%d:%v", t, sorted)
	if id, ok := b.strash[key]; ok {
		return id
	}
	id := b.c.AddGate(t, "", sorted...)
	b.strash[key] = id
	return id
}

// tree reduces ids with the given gate type in balanced groups of at
// most MaxFanin.
func (b *builder) tree(t netlist.GateType, ids []int) int {
	if len(ids) == 0 {
		panic("synth: empty tree")
	}
	for len(ids) > 1 {
		var nextLvl []int
		for i := 0; i < len(ids); i += netlist.MaxFanin {
			end := i + netlist.MaxFanin
			if end > len(ids) {
				end = len(ids)
			}
			group := ids[i:end]
			if len(group) == 1 {
				nextLvl = append(nextLvl, group[0])
			} else {
				nextLvl = append(nextLvl, b.hashed(t, group...))
			}
		}
		ids = nextLvl
	}
	return ids[0]
}

// literal returns the gate id of variable v in the requested phase.
func (b *builder) literal(v int, phase logic.Value) int {
	if phase == logic.One {
		return b.varGate[v]
	}
	return b.not(b.varGate[v])
}

// lowerCube builds the AND of a cube's literals.
func (b *builder) lowerCube(c logic.Cube) int {
	var lits []int
	for v, val := range c {
		if val != logic.Dash {
			lits = append(lits, b.literal(v, val))
		}
	}
	if len(lits) == 0 {
		return b.constant(true)
	}
	if len(lits) == 1 {
		return lits[0]
	}
	return b.tree(netlist.And, lits)
}

// constant returns a shared Const0/Const1 gate.
func (b *builder) constant(one bool) int {
	t := netlist.Const0
	if one {
		t = netlist.Const1
	}
	return b.hashed(t)
}

// lowerCover lowers a minimized two-level cover to gates under the
// chosen script and returns the driving gate id.
func (b *builder) lowerCover(f *logic.Cover, script Script) int {
	if f.IsEmpty() {
		return b.constant(false)
	}
	for _, c := range f.Cubes {
		if c.IsUniverse() {
			return b.constant(true)
		}
	}
	if script == Delay {
		terms := make([]int, len(f.Cubes))
		for i, c := range f.Cubes {
			terms[i] = b.lowerCube(c)
		}
		if len(terms) == 1 {
			return terms[0]
		}
		return b.tree(netlist.Or, terms)
	}
	return b.factor(f)
}

// factor implements quick algebraic factoring: divide out the most
// frequent literal recursively; the structural hash then shares common
// factors across all the functions of the circuit.
func (b *builder) factor(f *logic.Cover) int {
	if len(f.Cubes) == 1 {
		return b.lowerCube(f.Cubes[0])
	}
	// Find the most frequent literal (variable, phase).
	type litKey struct {
		v     int
		phase logic.Value
	}
	counts := map[litKey]int{}
	for _, c := range f.Cubes {
		for v, val := range c {
			if val != logic.Dash {
				counts[litKey{v, val}]++
			}
		}
	}
	var best litKey
	bestN := 0
	for k, n := range counts {
		if n > bestN || (n == bestN && (k.v < best.v || (k.v == best.v && k.phase < best.phase))) {
			best, bestN = k, n
		}
	}
	if bestN <= 1 {
		// No sharing opportunity: two-level this residue.
		terms := make([]int, len(f.Cubes))
		for i, c := range f.Cubes {
			terms[i] = b.lowerCube(c)
		}
		return b.tree(netlist.Or, terms)
	}
	quotient := logic.NewCover(f.NumVars)
	remainder := logic.NewCover(f.NumVars)
	for _, c := range f.Cubes {
		if c[best.v] == best.phase {
			q := c.Clone()
			q[best.v] = logic.Dash
			quotient.Add(q)
		} else {
			remainder.Add(c)
		}
	}
	lit := b.literal(best.v, best.phase)
	var qGate int
	if len(quotient.Cubes) == 1 && quotient.Cubes[0].IsUniverse() {
		qGate = lit
	} else {
		qGate = b.hashed(netlist.And, lit, b.factor(quotient))
	}
	if remainder.IsEmpty() {
		return qGate
	}
	return b.hashed(netlist.Or, qGate, b.factor(remainder))
}

// finish wires the reset multiplexing into the DFF D inputs and creates
// the Output gates. With reset asserted the next state is resetCode
// regardless of the logic; our encodings pin the reset state at code 0,
// but the general form is kept.
func (b *builder) finish(nextIDs, outIDs []int, resetCode uint64) {
	nreset := b.not(b.reset)
	for j, ff := range b.dffs {
		f := nextIDs[j]
		var d int
		if (resetCode>>uint(j))&1 == 1 {
			// D = reset OR f
			d = b.hashed(netlist.Or, b.reset, f)
		} else {
			// D = NOT(reset) AND f
			d = b.hashed(netlist.And, nreset, f)
		}
		b.c.Gates[ff].Fanin[0] = d
	}
	for j, f := range outIDs {
		b.c.AddGate(netlist.Output, fmt.Sprintf("out%d", j), f)
	}
}
