package synth

import (
	"math/rand"
	"testing"

	"seqatpg/internal/encode"
	"seqatpg/internal/fsm"
	"seqatpg/internal/netlist"
	"seqatpg/internal/sim"
)

func genMachine(t *testing.T, states int, seed int64) *fsm.FSM {
	t.Helper()
	m, err := fsm.Generate(fsm.GenSpec{
		Name: "syn", Inputs: 4, Outputs: 3, States: states, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// runEquivalence drives the circuit and the FSM in lockstep from reset
// over random input sequences and checks outputs and state codes agree.
func runEquivalence(t *testing.T, m *fsm.FSM, r *Result, seed int64) {
	t.Helper()
	s, err := sim.NewSimulator(r.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	nIn := m.NumInputs
	for trial := 0; trial < 10; trial++ {
		s.PowerUp()
		// One reset cycle: reset=1, arbitrary inputs.
		in := make([]sim.Val, nIn+1)
		in[0] = sim.V1
		for i := 1; i <= nIn; i++ {
			in[i] = sim.Val(rng.Intn(2))
		}
		if _, err := s.Step(in); err != nil {
			t.Fatal(err)
		}
		state := m.Reset
		for step := 0; step < 20; step++ {
			// Check the circuit state encodes the FSM state.
			bits, ok := s.StateBits()
			if !ok {
				t.Fatalf("trial %d step %d: circuit state has X after reset", trial, step)
			}
			if bits != r.Encoding.Code[state] {
				t.Fatalf("trial %d step %d: circuit state %b, want code %b of state %s",
					trial, step, bits, r.Encoding.Code[state], m.States[state])
			}
			// Advance both.
			var inputBits uint64
			in[0] = sim.V0
			for i := 0; i < nIn; i++ {
				v := rng.Intn(2)
				in[i+1] = sim.Val(v)
				inputBits |= uint64(v) << uint(i)
			}
			outs, err := s.Step(in)
			if err != nil {
				t.Fatal(err)
			}
			next, wantOut, ok := m.Step(state, inputBits)
			if !ok {
				t.Fatalf("FSM unspecified for input %b in state %s", inputBits, m.States[state])
			}
			for j, ov := range outs {
				want := sim.V0
				if wantOut[j] == 1 {
					want = sim.V1
				}
				if ov != want {
					t.Fatalf("trial %d step %d: output %d = %v, want %v", trial, step, j, ov, want)
				}
			}
			state = next
		}
	}
}

func TestSynthesizeMatchesFSM(t *testing.T) {
	m := genMachine(t, 11, 77)
	for _, alg := range []encode.Algorithm{encode.InputDominant, encode.OutputDominant, encode.Combined} {
		for _, script := range []Script{Rugged, Delay} {
			opt := Options{Algorithm: alg, Script: script, UseUnreachableDC: true}
			r, err := Synthesize(m, opt)
			if err != nil {
				t.Fatalf("%v/%v: %v", alg, script, err)
			}
			if err := r.Circuit.Validate(); err != nil {
				t.Fatalf("%v/%v: invalid circuit: %v", alg, script, err)
			}
			runEquivalence(t, m, r, 1000+int64(alg)*10+int64(script))
		}
	}
}

func TestSynthesizeWithoutDontCares(t *testing.T) {
	m := genMachine(t, 9, 33)
	r, err := Synthesize(m, Options{Algorithm: encode.Combined, Script: Rugged})
	if err != nil {
		t.Fatal(err)
	}
	runEquivalence(t, m, r, 55)
}

func TestCircuitShape(t *testing.T) {
	m := genMachine(t, 11, 77)
	r, err := Synthesize(m, Options{Algorithm: encode.InputDominant, Script: Delay, UseUnreachableDC: true})
	if err != nil {
		t.Fatal(err)
	}
	c := r.Circuit
	if len(c.PIs) != m.NumInputs+1 {
		t.Errorf("PIs = %d, want %d (inputs + reset)", len(c.PIs), m.NumInputs+1)
	}
	if len(c.POs) != m.NumOutputs {
		t.Errorf("POs = %d, want %d", len(c.POs), m.NumOutputs)
	}
	if len(c.DFFs) != encode.MinBits(m.NumStates()) {
		t.Errorf("DFFs = %d, want %d", len(c.DFFs), encode.MinBits(m.NumStates()))
	}
	if c.ResetPI < 0 {
		t.Error("reset line missing")
	}
	if c.Name != "syn.ji.sd" {
		t.Errorf("circuit name %q, want syn.ji.sd", c.Name)
	}
}

func TestScriptsTradeOff(t *testing.T) {
	m := genMachine(t, 13, 5)
	lib := netlist.DefaultLibrary()
	rug, err := Synthesize(m, Options{Algorithm: encode.Combined, Script: Rugged, UseUnreachableDC: true})
	if err != nil {
		t.Fatal(err)
	}
	del, err := Synthesize(m, Options{Algorithm: encode.Combined, Script: Delay, UseUnreachableDC: true})
	if err != nil {
		t.Fatal(err)
	}
	sr, err := rug.Circuit.ComputeStats(lib)
	if err != nil {
		t.Fatal(err)
	}
	sd, err := del.Circuit.ComputeStats(lib)
	if err != nil {
		t.Fatal(err)
	}
	// The scripts must actually produce different circuits; the precise
	// trade varies with the machine, but identical stats would mean the
	// script knob is inert.
	if sr.Gates == sd.Gates && sr.Area == sd.Area && sr.MaxLvl == sd.MaxLvl {
		t.Errorf("rugged and delay produced identical shapes: %+v vs %+v", sr, sd)
	}
}

func TestResetDominates(t *testing.T) {
	// From any forced state, a single reset cycle must return the
	// circuit to the reset code, regardless of other inputs.
	m := genMachine(t, 11, 9)
	r, err := Synthesize(m, Options{Algorithm: encode.Combined, Script: Rugged, UseUnreachableDC: true})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.NewSimulator(r.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		st := make([]sim.Val, len(r.Circuit.DFFs))
		for i := range st {
			st[i] = sim.Val(rng.Intn(2))
		}
		s.SetState(st)
		in := make([]sim.Val, m.NumInputs+1)
		in[0] = sim.V1
		for i := 1; i < len(in); i++ {
			in[i] = sim.Val(rng.Intn(2))
		}
		if _, err := s.Step(in); err != nil {
			t.Fatal(err)
		}
		bits, ok := s.StateBits()
		if !ok || bits != r.Encoding.Code[m.Reset] {
			t.Fatalf("reset from random state landed at %b (known=%v)", bits, ok)
		}
	}
}

func TestResetFromUnknownState(t *testing.T) {
	// The paper's circuits initialize in a couple of CPU seconds thanks
	// to the reset line: from all-X one reset cycle must yield a fully
	// known state.
	m := genMachine(t, 11, 13)
	r, err := Synthesize(m, Options{Algorithm: encode.OutputDominant, Script: Delay, UseUnreachableDC: true})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.NewSimulator(r.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	s.PowerUp()
	in := make([]sim.Val, m.NumInputs+1)
	in[0] = sim.V1
	for i := 1; i < len(in); i++ {
		in[i] = sim.VX
	}
	if _, err := s.Step(in); err != nil {
		t.Fatal(err)
	}
	bits, ok := s.StateBits()
	if !ok {
		t.Fatal("state still unknown after reset cycle")
	}
	if bits != r.Encoding.Code[m.Reset] {
		t.Fatalf("reset state %b, want %b", bits, r.Encoding.Code[m.Reset])
	}
}
