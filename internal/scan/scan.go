// Package scan implements design-for-testability register insertion —
// the remedy the reproduced paper's conclusions motivate. Full scan
// replaces every D flip-flop with a directly controllable and
// observable scan cell, which turns sequential test generation into a
// combinational problem and restores the density of encoding to 1
// (every state is reachable through the scan chain). Partial scan
// selects a subset of flip-flops, trading area for testability.
//
// The package works on the combinational "scan model": the circuit with
// each scanned flip-flop split into a pseudo primary input (its Q
// output) and a pseudo primary output (its D input). Tests for the scan
// model translate into scan-in / capture / scan-out sequences on the
// real hardware.
package scan

import (
	"fmt"
	"sort"

	"seqatpg/internal/netlist"
)

// Model is a scan view of a circuit.
type Model struct {
	// Comb is the combinational scan model: scanned DFFs replaced by
	// Input/Output pairs, unscanned DFFs left sequential.
	Comb *netlist.Circuit
	// Scanned lists the original DFF gate ids that were put on the
	// chain, in chain order.
	Scanned []int
	// PseudoPI[i] is the scan-model Input gate standing in for
	// Scanned[i]'s Q pin; PseudoPO[i] the Output observing its D pin.
	PseudoPI []int
	PseudoPO []int
}

// FullScan builds the scan model with every flip-flop on the chain. The
// result is purely combinational (no DFFs remain).
func FullScan(c *netlist.Circuit) (*Model, error) {
	return Insert(c, append([]int(nil), c.DFFs...))
}

// Insert builds the scan model with the given DFF gate ids scanned.
func Insert(c *netlist.Circuit, dffs []int) (*Model, error) {
	scanned := map[int]bool{}
	for _, id := range dffs {
		if id < 0 || id >= len(c.Gates) || c.Gates[id].Type != netlist.DFF {
			return nil, fmt.Errorf("scan: gate %d is not a DFF", id)
		}
		if scanned[id] {
			return nil, fmt.Errorf("scan: DFF %d listed twice", id)
		}
		scanned[id] = true
	}
	m := &Model{Comb: netlist.New(c.Name + ".scan")}
	out := m.Comb
	remap := make([]int, len(c.Gates))
	// First pass: copy every gate; scanned DFFs become Inputs.
	for id, g := range c.Gates {
		if scanned[id] {
			remap[id] = out.AddGate(netlist.Input, g.Name+"_si")
		} else {
			remap[id] = out.AddGate(g.Type, g.Name)
		}
	}
	// Second pass: fanins, plus pseudo-POs for the scanned D pins.
	for id, g := range c.Gates {
		if scanned[id] {
			continue
		}
		fanin := make([]int, len(g.Fanin))
		for k, f := range g.Fanin {
			fanin[k] = remap[f]
		}
		out.Gates[remap[id]].Fanin = fanin
	}
	if c.ResetPI >= 0 {
		out.ResetPI = remap[c.ResetPI]
	}
	// Chain order: original DFF order restricted to the scanned set.
	for _, id := range c.DFFs {
		if !scanned[id] {
			continue
		}
		m.Scanned = append(m.Scanned, id)
		m.PseudoPI = append(m.PseudoPI, remap[id])
		po := out.AddGate(netlist.Output, c.Gates[id].Name+"_so", remap[c.Gates[id].Fanin[0]])
		m.PseudoPO = append(m.PseudoPO, po)
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("scan: model invalid: %w", err)
	}
	return m, nil
}

// AreaOverhead estimates the relative cell-area cost of scanning the
// chain: a scan cell is modeled as the DFF plus a 2-input mux (one
// extra equivalent gate of area muxArea each).
func (m *Model) AreaOverhead(c *netlist.Circuit, lib *netlist.Library) float64 {
	const muxArea = 3.0
	base := 0.0
	for _, g := range c.Gates {
		base += lib.Area(g.Type, len(g.Fanin))
	}
	if base == 0 {
		return 0
	}
	return muxArea * float64(len(m.Scanned)) / base
}

// SelectCycleBreaking chooses a partial-scan set that cuts every
// register-to-register cycle, the classic partial-scan heuristic
// (Cheng & Agrawal): scanned flip-flops break the sequential loops that
// force deep state justification, while registers on acyclic paths are
// left alone. It greedily removes the DFF with the highest degree
// product in the remaining register dependency graph until the graph is
// acyclic, and returns DFF gate ids in chain order.
func SelectCycleBreaking(c *netlist.Circuit) ([]int, error) {
	n := len(c.DFFs)
	idx := map[int]int{}
	for i, id := range c.DFFs {
		idx[id] = i
	}
	// Register dependency graph: edge i -> j when DFF i's output reaches
	// DFF j's D input combinationally.
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	fanouts := c.Fanouts()
	for i, id := range c.DFFs {
		seen := make([]bool, len(c.Gates))
		stack := append([]int(nil), fanouts[id]...)
		for len(stack) > 0 {
			g := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[g] {
				continue
			}
			seen[g] = true
			switch c.Gates[g].Type {
			case netlist.DFF:
				adj[i][idx[g]] = true
			case netlist.Output:
			default:
				stack = append(stack, fanouts[g]...)
			}
		}
	}
	removed := make([]bool, n)
	var chosen []int
	for {
		if acyclic(adj, removed) {
			break
		}
		// Greedy: remove the vertex with max (indegree × outdegree),
		// self-loops count heavily (they always need scanning).
		best, bestScore := -1, -1
		for v := 0; v < n; v++ {
			if removed[v] {
				continue
			}
			in, outd, self := 0, 0, 0
			for u := 0; u < n; u++ {
				if removed[u] {
					continue
				}
				if adj[u][v] {
					in++
				}
				if adj[v][u] {
					outd++
				}
			}
			if adj[v][v] {
				self = n * n
			}
			score := in*outd + self
			if score > bestScore {
				best, bestScore = v, score
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("scan: cycle-breaking selection stuck")
		}
		removed[best] = true
		chosen = append(chosen, c.DFFs[best])
	}
	sort.Ints(chosen)
	return chosen, nil
}

// acyclic reports whether the register graph minus removed vertices has
// no cycles.
func acyclic(adj [][]bool, removed []bool) bool {
	n := len(adj)
	state := make([]byte, n) // 0 new, 1 active, 2 done
	var visit func(v int) bool
	visit = func(v int) bool {
		state[v] = 1
		for u := 0; u < n; u++ {
			if !adj[v][u] || removed[u] {
				continue
			}
			switch state[u] {
			case 1:
				return false
			case 0:
				if !visit(u) {
					return false
				}
			}
		}
		state[v] = 2
		return true
	}
	for v := 0; v < n; v++ {
		if removed[v] || state[v] != 0 {
			continue
		}
		if !visit(v) {
			return false
		}
	}
	return true
}
