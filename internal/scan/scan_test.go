package scan

import (
	"testing"

	"seqatpg/internal/atpg"
	"seqatpg/internal/encode"
	"seqatpg/internal/fsm"
	"seqatpg/internal/netlist"
	"seqatpg/internal/retime"
	"seqatpg/internal/synth"
)

func synthC(t *testing.T, states int, seed int64) *netlist.Circuit {
	t.Helper()
	m, err := fsm.Generate(fsm.GenSpec{Name: "sc", Inputs: 3, Outputs: 2, States: states, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	r, err := synth.Synthesize(m, synth.Options{
		Algorithm: encode.Combined, Script: synth.Rugged, UseUnreachableDC: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r.Circuit
}

func TestFullScanShape(t *testing.T) {
	c := synthC(t, 9, 4)
	m, err := FullScan(c)
	if err != nil {
		t.Fatal(err)
	}
	if m.Comb.NumDFFs() != 0 {
		t.Errorf("full-scan model still has %d DFFs", m.Comb.NumDFFs())
	}
	if len(m.Scanned) != c.NumDFFs() {
		t.Errorf("scanned %d of %d DFFs", len(m.Scanned), c.NumDFFs())
	}
	if len(m.Comb.PIs) != len(c.PIs)+c.NumDFFs() {
		t.Errorf("scan model PIs = %d, want %d", len(m.Comb.PIs), len(c.PIs)+c.NumDFFs())
	}
	if len(m.Comb.POs) != len(c.POs)+c.NumDFFs() {
		t.Errorf("scan model POs = %d, want %d", len(m.Comb.POs), len(c.POs)+c.NumDFFs())
	}
}

func TestInsertRejectsBadIDs(t *testing.T) {
	c := synthC(t, 7, 2)
	if _, err := Insert(c, []int{0}); err == nil {
		t.Error("scanning a non-DFF must fail")
	}
	if _, err := Insert(c, []int{c.DFFs[0], c.DFFs[0]}); err == nil {
		t.Error("duplicate DFF must fail")
	}
}

// TestFullScanRestoresTestability is the paper's DFT conclusion in
// action: a retimed circuit that defeats sequential ATPG becomes almost
// fully testable when every register is scanned — the scan model is
// combinational, so state justification (and the density-of-encoding
// penalty) disappears entirely.
func TestFullScanRestoresTestability(t *testing.T) {
	lib := netlist.DefaultLibrary()
	c := synthC(t, 11, 21)
	re, err := retime.Backward(c, lib, 2)
	if err != nil {
		t.Fatal(err)
	}

	run := func(circ *netlist.Circuit, flush int) atpg.Stats {
		e, err := atpg.New(circ, atpg.Config{
			MaxFrames: 6, MaxBackSteps: 24, BacktrackLimit: 1000,
			FaultBudget: 300_000, FlushCycles: flush,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats
	}

	seq := run(re.Circuit, re.FlushCycles)
	m, err := FullScan(re.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	scanned := run(m.Comb, 1)
	t.Logf("retimed sequential: FC %.1f%% | full scan: FC %.1f%%", seq.FC(), scanned.FC())
	if scanned.FE() < 99 {
		t.Errorf("full-scan FE %.1f%% should be near 100", scanned.FE())
	}
	if scanned.FC() <= seq.FC() {
		t.Errorf("scan FC %.1f%% should beat sequential FC %.1f%%", scanned.FC(), seq.FC())
	}
}

func TestCycleBreakingSelection(t *testing.T) {
	c := synthC(t, 11, 21)
	sel, err := SelectCycleBreaking(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) == 0 {
		t.Fatal("an FSM circuit has state cycles; selection must be nonempty")
	}
	if len(sel) > c.NumDFFs() {
		t.Fatalf("selected %d of %d DFFs", len(sel), c.NumDFFs())
	}
	// The scan model with the selection must have no register-to-
	// register cycles among the remaining DFFs: verify by rebuilding the
	// dependency graph of the partial-scan model.
	m, err := Insert(c, sel)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Comb.TopoOrder(); err != nil {
		t.Fatal(err)
	}
	// Every remaining sequential loop must pass through a scanned cell,
	// i.e. the unscanned register graph is acyclic.
	if !remainingAcyclic(t, m.Comb) {
		t.Error("partial scan left a register cycle unbroken")
	}
}

// remainingAcyclic checks the register dependency graph of the model.
func remainingAcyclic(t *testing.T, c *netlist.Circuit) bool {
	t.Helper()
	n := len(c.DFFs)
	idx := map[int]int{}
	for i, id := range c.DFFs {
		idx[id] = i
	}
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	fanouts := c.Fanouts()
	for i, id := range c.DFFs {
		seen := make([]bool, len(c.Gates))
		stack := append([]int(nil), fanouts[id]...)
		for len(stack) > 0 {
			g := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[g] {
				continue
			}
			seen[g] = true
			switch c.Gates[g].Type {
			case netlist.DFF:
				adj[i][idx[g]] = true
			case netlist.Output:
			default:
				stack = append(stack, fanouts[g]...)
			}
		}
	}
	return acyclic(adj, make([]bool, n))
}

func TestAreaOverhead(t *testing.T) {
	c := synthC(t, 9, 4)
	lib := netlist.DefaultLibrary()
	m, err := FullScan(c)
	if err != nil {
		t.Fatal(err)
	}
	oh := m.AreaOverhead(c, lib)
	if oh <= 0 || oh > 0.5 {
		t.Errorf("area overhead %.3f out of plausible range", oh)
	}
	partial, err := Insert(c, c.DFFs[:1])
	if err != nil {
		t.Fatal(err)
	}
	if partial.AreaOverhead(c, lib) >= oh {
		t.Error("partial scan must cost less area than full scan")
	}
}
