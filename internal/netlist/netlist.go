// Package netlist defines the gate-level sequential circuit model used
// throughout the project: combinational gates mapped onto a bounded-
// fanin library, edge-triggered D flip-flops, primary inputs/outputs,
// and an explicit reset input (the paper's circuit versions employ an
// explicit reset line). The structural ATPG engines, the fault
// simulator, the retimer and all analyses operate on this model and
// never see the state transition graph.
package netlist

import "fmt"

// GateType enumerates the node kinds of a circuit.
type GateType int

// Gate types. Input gates have no fanin; Output gates observe exactly
// one driver; DFF gates hold state with Fanin[0] as the D input and the
// gate's own value as Q.
const (
	Input GateType = iota
	Output
	Buf
	Not
	And
	Or
	Nand
	Nor
	Xor
	Xnor
	DFF
	Const0
	Const1
)

var typeNames = map[GateType]string{
	Input: "INPUT", Output: "OUTPUT", Buf: "BUF", Not: "NOT",
	And: "AND", Or: "OR", Nand: "NAND", Nor: "NOR",
	Xor: "XOR", Xnor: "XNOR", DFF: "DFF", Const0: "ZERO", Const1: "ONE",
}

// String returns the conventional gate-type mnemonic.
func (t GateType) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("GateType(%d)", int(t))
}

// IsCombinational reports whether the gate computes a Boolean function
// of its fanins (i.e. it is not an Input, Output, or DFF).
func (t GateType) IsCombinational() bool {
	switch t {
	case Buf, Not, And, Or, Nand, Nor, Xor, Xnor, Const0, Const1:
		return true
	}
	return false
}

// faninRange gives the legal fanin counts per gate type.
func faninRange(t GateType) (lo, hi int) {
	switch t {
	case Input, Const0, Const1:
		return 0, 0
	case Output, Buf, Not, DFF:
		return 1, 1
	case Xor, Xnor:
		return 2, 2
	case And, Or, Nand, Nor:
		return 2, MaxFanin
	}
	return -1, -1
}

// MaxFanin is the library bound on AND/OR/NAND/NOR width, matching the
// bounded-fanin mcnc-style library the synthesis flow maps onto.
const MaxFanin = 4

// Gate is one node of the circuit. Fanin holds gate ids in input order.
type Gate struct {
	Type  GateType
	Fanin []int
	Name  string
}

// Circuit is a gate-level sequential circuit.
type Circuit struct {
	Name  string
	Gates []Gate
	PIs   []int // Input gate ids, in primary-input order
	POs   []int // Output gate ids, in primary-output order
	DFFs  []int // DFF gate ids, in state-bit order
	// ResetPI is the gate id of the explicit reset input, or -1. When
	// the reset input is 1 the next state is the reset code regardless
	// of the current state.
	ResetPI int
}

// New returns an empty circuit with the given name and no reset line.
func New(name string) *Circuit {
	return &Circuit{Name: name, ResetPI: -1}
}

// AddGate appends a gate and returns its id.
func (c *Circuit) AddGate(t GateType, name string, fanin ...int) int {
	id := len(c.Gates)
	c.Gates = append(c.Gates, Gate{Type: t, Fanin: append([]int(nil), fanin...), Name: name})
	switch t {
	case Input:
		c.PIs = append(c.PIs, id)
	case Output:
		c.POs = append(c.POs, id)
	case DFF:
		c.DFFs = append(c.DFFs, id)
	}
	return id
}

// NumGates returns the total node count (including IO and DFFs).
func (c *Circuit) NumGates() int { return len(c.Gates) }

// NumDFFs returns the flip-flop count (the paper's #DFF columns).
func (c *Circuit) NumDFFs() int { return len(c.DFFs) }

// Clone deep-copies the circuit.
func (c *Circuit) Clone() *Circuit {
	out := &Circuit{
		Name:    c.Name,
		Gates:   make([]Gate, len(c.Gates)),
		PIs:     append([]int(nil), c.PIs...),
		POs:     append([]int(nil), c.POs...),
		DFFs:    append([]int(nil), c.DFFs...),
		ResetPI: c.ResetPI,
	}
	for i, g := range c.Gates {
		out.Gates[i] = Gate{Type: g.Type, Fanin: append([]int(nil), g.Fanin...), Name: g.Name}
	}
	return out
}

// Fanouts returns, for every gate, the ids of gates that read its value.
func (c *Circuit) Fanouts() [][]int {
	out := make([][]int, len(c.Gates))
	for id, g := range c.Gates {
		for _, f := range g.Fanin {
			out[f] = append(out[f], id)
		}
	}
	return out
}

// TopoOrder returns the gate ids in a topological order of the
// combinational logic: Inputs, constants and DFFs (as state sources)
// first, then combinational gates, then Outputs. DFF D-inputs are
// sinks, so the sequential loop is cut at the flip-flops. An error is
// returned when the combinational logic contains a cycle.
func (c *Circuit) TopoOrder() ([]int, error) {
	n := len(c.Gates)
	indeg := make([]int, n)
	for id, g := range c.Gates {
		if g.Type == DFF || g.Type == Input || g.Type == Const0 || g.Type == Const1 {
			continue // sources: their fanin does not gate their readiness
		}
		indeg[id] = len(g.Fanin)
	}
	fanouts := c.Fanouts()
	var queue, order []int
	for id := range c.Gates {
		if indeg[id] == 0 {
			queue = append(queue, id)
		}
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		for _, o := range fanouts[id] {
			g := c.Gates[o]
			if g.Type == DFF || g.Type == Input || g.Type == Const0 || g.Type == Const1 {
				continue
			}
			indeg[o]--
			if indeg[o] == 0 {
				queue = append(queue, o)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("netlist %s: combinational cycle detected (%d of %d gates ordered)",
			c.Name, len(order), n)
	}
	return order, nil
}

// Levels returns the combinational depth of each gate: sources are
// level 0, every other gate is 1 + max(fanin levels).
func (c *Circuit) Levels() ([]int, error) {
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	lv := make([]int, len(c.Gates))
	for _, id := range order {
		g := c.Gates[id]
		if g.Type == DFF || g.Type == Input || g.Type == Const0 || g.Type == Const1 {
			continue
		}
		maxIn := -1
		for _, f := range g.Fanin {
			if lv[f] > maxIn {
				maxIn = lv[f]
			}
		}
		lv[id] = maxIn + 1
	}
	return lv, nil
}

// Validate checks structural sanity: fanin arities, id ranges, IO/DFF
// bookkeeping consistency, and combinational acyclicity.
func (c *Circuit) Validate() error {
	for id, g := range c.Gates {
		lo, hi := faninRange(g.Type)
		if lo < 0 {
			return fmt.Errorf("netlist %s: gate %d has unknown type %v", c.Name, id, g.Type)
		}
		if len(g.Fanin) < lo || len(g.Fanin) > hi {
			return fmt.Errorf("netlist %s: gate %d (%v) has %d fanins, want %d..%d",
				c.Name, id, g.Type, len(g.Fanin), lo, hi)
		}
		for _, f := range g.Fanin {
			if f < 0 || f >= len(c.Gates) {
				return fmt.Errorf("netlist %s: gate %d references missing gate %d", c.Name, id, f)
			}
			if c.Gates[f].Type == Output {
				return fmt.Errorf("netlist %s: gate %d reads from an Output gate", c.Name, id)
			}
		}
	}
	check := func(ids []int, t GateType, what string) error {
		seen := map[int]bool{}
		for _, id := range ids {
			if id < 0 || id >= len(c.Gates) || c.Gates[id].Type != t {
				return fmt.Errorf("netlist %s: %s list contains non-%v gate %d", c.Name, what, t, id)
			}
			if seen[id] {
				return fmt.Errorf("netlist %s: %s list repeats gate %d", c.Name, what, id)
			}
			seen[id] = true
		}
		// Every gate of type t must be listed.
		count := 0
		for _, g := range c.Gates {
			if g.Type == t {
				count++
			}
		}
		if count != len(ids) {
			return fmt.Errorf("netlist %s: %d %v gates but %d in %s list", c.Name, count, t, len(ids), what)
		}
		return nil
	}
	if err := check(c.PIs, Input, "PI"); err != nil {
		return err
	}
	if err := check(c.POs, Output, "PO"); err != nil {
		return err
	}
	if err := check(c.DFFs, DFF, "DFF"); err != nil {
		return err
	}
	if c.ResetPI >= 0 {
		if c.ResetPI >= len(c.Gates) || c.Gates[c.ResetPI].Type != Input {
			return fmt.Errorf("netlist %s: reset id %d is not an Input gate", c.Name, c.ResetPI)
		}
	}
	_, err := c.TopoOrder()
	return err
}

// Stats summarizes the circuit for reports.
type Stats struct {
	Gates  int // combinational gates only
	DFFs   int
	PIs    int
	POs    int
	Area   float64
	Delay  float64 // critical combinational path delay (library units)
	MaxLvl int
}

// ComputeStats returns counts plus area/delay under the given library.
func (c *Circuit) ComputeStats(lib *Library) (Stats, error) {
	var s Stats
	s.DFFs = len(c.DFFs)
	s.PIs = len(c.PIs)
	s.POs = len(c.POs)
	arrive := make([]float64, len(c.Gates))
	order, err := c.TopoOrder()
	if err != nil {
		return s, err
	}
	lv, err := c.Levels()
	if err != nil {
		return s, err
	}
	for _, id := range order {
		g := c.Gates[id]
		if g.Type.IsCombinational() && g.Type != Const0 && g.Type != Const1 {
			s.Gates++
		}
		s.Area += lib.Area(g.Type, len(g.Fanin))
		switch g.Type {
		case Input, Const0, Const1:
			arrive[id] = 0
		case DFF:
			arrive[id] = lib.Delay(DFF, 1)
		default:
			maxIn := 0.0
			for _, f := range g.Fanin {
				if arrive[f] > maxIn {
					maxIn = arrive[f]
				}
			}
			arrive[id] = maxIn + lib.Delay(g.Type, len(g.Fanin))
		}
		if arrive[id] > s.Delay {
			s.Delay = arrive[id]
		}
		if lv[id] > s.MaxLvl {
			s.MaxLvl = lv[id]
		}
	}
	return s, nil
}
