package netlist

// Library carries per-gate area and delay data in the style of a
// genlib file. The default library mirrors the relative area/delay
// ratios of the mcnc.genlib subset the paper's circuits were mapped
// onto (inverter-normalized units).
type Library struct {
	name    string
	area    map[GateType][]float64 // indexed by fanin count
	delay   map[GateType][]float64
	defArea float64
	defDly  float64
}

// DefaultLibrary returns the built-in mcnc-like library.
func DefaultLibrary() *Library {
	// Index k holds the value for fanin count k (index 0 unused for
	// multi-input gates).
	return &Library{
		name: "mcnc-like",
		area: map[GateType][]float64{
			Not:    {0, 1},
			Buf:    {0, 1.5},
			Nand:   {0, 0, 2, 3, 4},
			Nor:    {0, 0, 2, 3, 4},
			And:    {0, 0, 3, 4, 5},
			Or:     {0, 0, 3, 4, 5},
			Xor:    {0, 0, 5},
			Xnor:   {0, 0, 5},
			DFF:    {0, 6},
			Input:  {0.0},
			Output: {0, 0},
			Const0: {0.0},
			Const1: {0.0},
		},
		delay: map[GateType][]float64{
			Not:    {0, 1.0},
			Buf:    {0, 1.2},
			Nand:   {0, 0, 1.2, 1.6, 2.0},
			Nor:    {0, 0, 1.4, 2.0, 2.6},
			And:    {0, 0, 1.8, 2.2, 2.6},
			Or:     {0, 0, 2.0, 2.6, 3.2},
			Xor:    {0, 0, 2.4},
			Xnor:   {0, 0, 2.4},
			DFF:    {0, 2.0},
			Input:  {0.0},
			Output: {0, 0},
			Const0: {0.0},
			Const1: {0.0},
		},
		defArea: 3,
		defDly:  2,
	}
}

// Name returns the library name.
func (l *Library) Name() string { return l.name }

// Area returns the cell area of a gate type at a fanin count.
func (l *Library) Area(t GateType, fanin int) float64 {
	if row, ok := l.area[t]; ok && fanin < len(row) {
		return row[fanin]
	}
	return l.defArea
}

// Delay returns the pin-to-pin delay of a gate type at a fanin count.
func (l *Library) Delay(t GateType, fanin int) float64 {
	if row, ok := l.delay[t]; ok && fanin < len(row) {
		return row[fanin]
	}
	return l.defDly
}
