package netlist

// SoA is a structure-of-arrays view of a circuit, flattened into
// position-indexed parallel slices in one topological order of the
// combinational logic. It exists for the hot paths — levelized
// evaluation in the simulators and the fault-simulation kernel — where
// chasing per-gate pointers (Gate.Fanin is a separate heap object per
// gate) defeats the cache: a levelized sweep over the SoA streams
// through a handful of flat arrays instead.
//
// Positions, not gate ids, index every slice; Pos/Order translate.
// Fanin and Fout are CSR-encoded: the fanins of position p are
// Fanin[FaninOff[p]:FaninOff[p+1]], all at earlier positions, and the
// combinational fanouts (DFF loads excluded — the sequential loop is
// cut at the flip-flops, which read state, not events) are
// Fout[FoutOff[p]:FoutOff[p+1]], all at later positions.
//
// The view is immutable after construction and safe to share across
// goroutines; it does not observe later mutations of the Circuit.
type SoA struct {
	Order []int32 // position -> gate id
	Pos   []int32 // gate id -> position

	Kind     []GateType
	FaninOff []int32
	Fanin    []int32 // fanin positions, in pin order
	FoutOff  []int32
	Fout     []int32 // combinational fanout positions

	PIPos  []int32 // primary-input order -> position
	POPos  []int32 // primary-output order -> position
	DFFPos []int32 // DFF index -> position of the DFF gate
	DFFD   []int32 // DFF index -> position of its D fanin
	DFFAt  []int32 // position -> DFF index, -1 otherwise

	// EvalGates is how many gates an oblivious levelized sweep
	// evaluates per frame (everything except Input and DFF loads);
	// EvalsBefore[p] counts those gates at positions < p, so a sweep
	// from p performs EvalGates - EvalsBefore[p] evaluations.
	EvalGates   int
	EvalsBefore []int32
}

// NewSoA flattens the circuit into a structure-of-arrays view. It
// fails only when the combinational logic is cyclic (TopoOrder fails).
func NewSoA(c *Circuit) (*SoA, error) {
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	n := len(c.Gates)
	s := &SoA{
		Order:       make([]int32, n),
		Pos:         make([]int32, n),
		Kind:        make([]GateType, n),
		DFFAt:       make([]int32, n),
		EvalsBefore: make([]int32, n+1),
	}
	for p, id := range order {
		s.Order[p] = int32(id)
		s.Pos[id] = int32(p)
	}
	nfan := 0
	for p, id := range order {
		g := &c.Gates[id]
		s.Kind[p] = g.Type
		nfan += len(g.Fanin)
		s.EvalsBefore[p] = int32(s.EvalGates)
		switch g.Type {
		case Input, DFF:
		default:
			s.EvalGates++
		}
	}
	s.EvalsBefore[n] = int32(s.EvalGates)
	fanouts := c.Fanouts()
	s.FaninOff = make([]int32, n+1)
	s.Fanin = make([]int32, 0, nfan)
	s.FoutOff = make([]int32, n+1)
	s.Fout = make([]int32, 0, nfan)
	for p, id := range order {
		s.FaninOff[p] = int32(len(s.Fanin))
		for _, f := range c.Gates[id].Fanin {
			s.Fanin = append(s.Fanin, s.Pos[f])
		}
		s.FoutOff[p] = int32(len(s.Fout))
		for _, o := range fanouts[id] {
			if c.Gates[o].Type != DFF {
				s.Fout = append(s.Fout, s.Pos[o])
			}
		}
	}
	s.FaninOff[n] = int32(len(s.Fanin))
	s.FoutOff[n] = int32(len(s.Fout))
	s.PIPos = make([]int32, len(c.PIs))
	for i, id := range c.PIs {
		s.PIPos[i] = s.Pos[id]
	}
	s.POPos = make([]int32, len(c.POs))
	for i, id := range c.POs {
		s.POPos[i] = s.Pos[id]
	}
	for p := range s.DFFAt {
		s.DFFAt[p] = -1
	}
	s.DFFPos = make([]int32, len(c.DFFs))
	s.DFFD = make([]int32, len(c.DFFs))
	for i, id := range c.DFFs {
		s.DFFPos[i] = s.Pos[id]
		s.DFFD[i] = s.Pos[c.Gates[id].Fanin[0]]
		s.DFFAt[s.Pos[id]] = int32(i)
	}
	return s, nil
}

// NumGates returns the node count of the flattened circuit.
func (s *SoA) NumGates() int { return len(s.Kind) }

// NumDFFs returns the flip-flop count of the flattened circuit.
func (s *SoA) NumDFFs() int { return len(s.DFFPos) }
