package netlist

import (
	"bytes"
	"strings"
	"testing"
)

func sample(t *testing.T) *Circuit {
	t.Helper()
	c := New("sample")
	reset := c.AddGate(Input, "reset")
	c.ResetPI = reset
	in := c.AddGate(Input, "in")
	ff := c.AddGate(DFF, "q", 0)
	x := c.AddGate(Xor, "x", in, ff)
	nr := c.AddGate(Not, "nr", reset)
	d := c.AddGate(And, "d", nr, x)
	c.Gates[ff].Fanin[0] = d
	c.AddGate(Output, "out", ff)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNetlistRoundTrip(t *testing.T) {
	c := sample(t)
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != c.Name || back.ResetPI != c.ResetPI {
		t.Errorf("header lost: %q reset=%d", back.Name, back.ResetPI)
	}
	if len(back.Gates) != len(c.Gates) {
		t.Fatalf("gate count changed: %d vs %d", len(back.Gates), len(c.Gates))
	}
	for id := range c.Gates {
		a, b := c.Gates[id], back.Gates[id]
		if a.Type != b.Type || a.Name != b.Name || len(a.Fanin) != len(b.Fanin) {
			t.Fatalf("gate %d changed: %+v vs %+v", id, a, b)
		}
		for k := range a.Fanin {
			if a.Fanin[k] != b.Fanin[k] {
				t.Fatalf("gate %d fanin changed", id)
			}
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"0 FROB x",             // unknown type
		"5 INPUT x",            // out-of-order id
		"0 INPUT x\n1 NOT y 9", // dangling fanin (Validate)
		".reset notanumber",    // bad reset
		"0 NOT x 0",            // self-loop comb cycle
	}
	for _, s := range cases {
		if _, err := Read(strings.NewReader(s)); err == nil {
			t.Errorf("expected error for %q", s)
		}
	}
}

func TestBenchRoundTripBehaviour(t *testing.T) {
	c := sample(t)
	var buf bytes.Buffer
	if err := WriteBench(&buf, c); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{"INPUT(reset)", "INPUT(in)", "OUTPUT(out)", "= DFF(", "# reset: reset"} {
		if !strings.Contains(text, want) {
			t.Errorf("bench output missing %q:\n%s", want, text)
		}
	}
	back, err := ReadBench(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.PIs) != len(c.PIs) || len(back.POs) != len(c.POs) || back.NumDFFs() != c.NumDFFs() {
		t.Fatalf("interface changed: %d PIs %d POs %d DFFs", len(back.PIs), len(back.POs), back.NumDFFs())
	}
	if back.ResetPI < 0 {
		t.Error("reset annotation lost")
	}
}

func TestReadBenchClassicSample(t *testing.T) {
	// A fragment in classic ISCAS89 style (use-before-define included).
	src := `
# s27-like fragment
INPUT(G0)
INPUT(G1)
OUTPUT(G17)
G10 = DFF(G14)
G14 = NAND(G0, G10)
G17 = NOT(G14)
G99 = BUFF(G1)
OUTPUT(G99)
`
	c, err := ReadBench(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.PIs) != 2 || len(c.POs) != 2 || c.NumDFFs() != 1 {
		t.Fatalf("shape: %d PIs %d POs %d DFFs", len(c.PIs), len(c.POs), c.NumDFFs())
	}
}

func TestReadBenchErrors(t *testing.T) {
	cases := []string{
		"G1 = NOT(G0)",                                     // G0 undefined
		"INPUT(G0)\nG1 = FROB(G0)",                         // unknown op
		"INPUT(G0)\nG1 = NOT(G0)\nG1 = NOT(G0)",            // duplicate def
		"INPUT(G0)\nOUTPUT(G9)",                            // undefined output
		"INPUT(G0)\n# reset: G9\nG1 = NOT(G0)\nOUTPUT(G1)", // bad reset
		"INPUT(G0)\nG1 = NOT G0",                           // malformed
	}
	for _, s := range cases {
		if _, err := ReadBench(strings.NewReader(s)); err == nil {
			t.Errorf("expected error for %q", s)
		}
	}
}

func TestBenchNameCollisions(t *testing.T) {
	c := New("dup")
	a := c.AddGate(Input, "sig")
	b := c.AddGate(Not, "sig", a) // same name
	c.AddGate(Output, "sig", b)   // and again
	var buf bytes.Buffer
	if err := WriteBench(&buf, c); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBench(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("collision handling broke round trip: %v\n%s", err, buf.String())
	}
}
