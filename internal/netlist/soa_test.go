package netlist

import (
	"fmt"
	"math/rand"
	"testing"
)

// soaTestCircuit builds a small sequential circuit exercising every
// structural feature the SoA view must capture: multi-fanin gates,
// fanout branching, DFF feedback, constants, and IO ordering.
func soaTestCircuit(t *testing.T) *Circuit {
	t.Helper()
	c := New("soa")
	a := c.AddGate(Input, "a")
	b := c.AddGate(Input, "b")
	q := c.AddGate(DFF, "q", a) // rewired below
	n1 := c.AddGate(Nand, "n1", a, b, q)
	x1 := c.AddGate(Xor, "x1", n1, q)
	k0 := c.AddGate(Const0, "k0")
	o1 := c.AddGate(Or, "o1", x1, k0)
	c.Gates[q].Fanin[0] = o1
	c.AddGate(Output, "z", x1)
	c.AddGate(Output, "y", n1)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

func randomSoACircuit(t *testing.T, rng *rand.Rand, trial int) *Circuit {
	t.Helper()
	c := New(fmt.Sprintf("soarnd%d", trial))
	var pool []int
	for i := 0; i < 2+rng.Intn(3); i++ {
		pool = append(pool, c.AddGate(Input, fmt.Sprintf("i%d", i)))
	}
	var dffs []int
	for i := 0; i < 1+rng.Intn(3); i++ {
		dffs = append(dffs, c.AddGate(DFF, fmt.Sprintf("q%d", i), pool[rng.Intn(len(pool))]))
	}
	pool = append(pool, dffs...)
	kinds := []GateType{And, Or, Nand, Nor, Xor, Xnor, Not, Buf}
	for i := 0; i < 10+rng.Intn(20); i++ {
		k := kinds[rng.Intn(len(kinds))]
		w := 2
		switch k {
		case Not, Buf:
			w = 1
		case Xor, Xnor:
			w = 2
		default:
			w = 2 + rng.Intn(MaxFanin-1)
		}
		fanin := make([]int, w)
		for j := range fanin {
			fanin[j] = pool[rng.Intn(len(pool))]
		}
		pool = append(pool, c.AddGate(k, fmt.Sprintf("g%d", i), fanin...))
	}
	for _, d := range dffs {
		c.Gates[d].Fanin[0] = pool[len(pool)-1-rng.Intn(5)]
	}
	c.AddGate(Output, "o", pool[len(pool)-1])
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

// checkSoA cross-checks every invariant of the flattened view against
// the circuit it was built from.
func checkSoA(t *testing.T, c *Circuit) {
	t.Helper()
	s, err := NewSoA(c)
	if err != nil {
		t.Fatal(err)
	}
	n := len(c.Gates)
	if s.NumGates() != n || s.NumDFFs() != len(c.DFFs) {
		t.Fatalf("counts: %d gates %d dffs, want %d %d", s.NumGates(), s.NumDFFs(), n, len(c.DFFs))
	}
	// Order/Pos are inverse permutations.
	for p := 0; p < n; p++ {
		if s.Pos[s.Order[p]] != int32(p) {
			t.Fatalf("Pos[Order[%d]] = %d", p, s.Pos[s.Order[p]])
		}
	}
	evals := 0
	for p := 0; p < n; p++ {
		id := s.Order[p]
		g := &c.Gates[id]
		if s.Kind[p] != g.Type {
			t.Fatalf("pos %d: kind %v, want %v", p, s.Kind[p], g.Type)
		}
		if int32(evals) != s.EvalsBefore[p] {
			t.Fatalf("pos %d: EvalsBefore %d, want %d", p, s.EvalsBefore[p], evals)
		}
		if g.Type != Input && g.Type != DFF {
			evals++
		}
		// Fanin CSR matches the gate's pins in order; combinational
		// fanins sit at earlier positions.
		fan := s.Fanin[s.FaninOff[p]:s.FaninOff[p+1]]
		if len(fan) != len(g.Fanin) {
			t.Fatalf("pos %d: %d fanins, want %d", p, len(fan), len(g.Fanin))
		}
		for k, f := range g.Fanin {
			if fan[k] != s.Pos[f] {
				t.Fatalf("pos %d pin %d: fanin pos %d, want %d", p, k, fan[k], s.Pos[f])
			}
			if g.Type != DFF && fan[k] >= int32(p) {
				t.Fatalf("pos %d pin %d: fanin at later position %d", p, k, fan[k])
			}
		}
		// Fanout CSR: exactly the non-DFF readers, all later.
		want := map[int32]int{}
		for oid, og := range c.Gates {
			if og.Type == DFF {
				continue
			}
			for _, f := range og.Fanin {
				if f == int(id) {
					want[s.Pos[oid]]++
				}
			}
		}
		got := map[int32]int{}
		for _, o := range s.Fout[s.FoutOff[p]:s.FoutOff[p+1]] {
			got[o]++
			if o <= int32(p) {
				t.Fatalf("pos %d: fanout at earlier position %d", p, o)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("pos %d: fanouts %v, want %v", p, got, want)
		}
		for o, cnt := range want {
			if got[o] != cnt {
				t.Fatalf("pos %d: fanout %d seen %d times, want %d", p, o, got[o], cnt)
			}
		}
	}
	if evals != s.EvalGates || s.EvalsBefore[n] != int32(evals) {
		t.Fatalf("EvalGates %d (final EvalsBefore %d), want %d", s.EvalGates, s.EvalsBefore[n], evals)
	}
	// IO and DFF position tables.
	for i, id := range c.PIs {
		if s.PIPos[i] != s.Pos[id] {
			t.Fatalf("PI %d: pos %d, want %d", i, s.PIPos[i], s.Pos[id])
		}
	}
	for i, id := range c.POs {
		if s.POPos[i] != s.Pos[id] {
			t.Fatalf("PO %d: pos %d, want %d", i, s.POPos[i], s.Pos[id])
		}
	}
	at := map[int32]int32{}
	for i, id := range c.DFFs {
		if s.DFFPos[i] != s.Pos[id] {
			t.Fatalf("DFF %d: pos %d, want %d", i, s.DFFPos[i], s.Pos[id])
		}
		if s.DFFD[i] != s.Pos[c.Gates[id].Fanin[0]] {
			t.Fatalf("DFF %d: D pos %d, want %d", i, s.DFFD[i], s.Pos[c.Gates[id].Fanin[0]])
		}
		at[s.Pos[id]] = int32(i)
	}
	for p := 0; p < n; p++ {
		want, ok := at[int32(p)]
		if !ok {
			want = -1
		}
		if s.DFFAt[p] != want {
			t.Fatalf("DFFAt[%d] = %d, want %d", p, s.DFFAt[p], want)
		}
	}
}

func TestSoAView(t *testing.T) {
	checkSoA(t, soaTestCircuit(t))
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		checkSoA(t, randomSoACircuit(t, rng, trial))
	}
}

func TestSoACyclicCircuit(t *testing.T) {
	c := New("cyc")
	a := c.AddGate(Input, "a")
	g1 := c.AddGate(And, "g1", a, a)
	g2 := c.AddGate(Or, "g2", g1, a)
	c.Gates[g1].Fanin[1] = g2
	if _, err := NewSoA(c); err == nil {
		t.Fatal("combinational cycle accepted")
	}
}
