package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Write serializes the circuit in the project's plain-text netlist
// exchange format:
//
//	.name <circuit name>
//	.reset <gate id | -1>
//	<id> <TYPE> <name> [fanin ids...]
//	.end
//
// Gate ids are the slice indices, so the file round-trips exactly.
func Write(w io.Writer, c *Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, ".name %s\n", c.Name)
	fmt.Fprintf(bw, ".reset %d\n", c.ResetPI)
	for id, g := range c.Gates {
		name := g.Name
		if name == "" {
			name = "-"
		}
		fmt.Fprintf(bw, "%d %s %s", id, g.Type, name)
		for _, f := range g.Fanin {
			fmt.Fprintf(bw, " %d", f)
		}
		fmt.Fprintln(bw)
	}
	fmt.Fprintln(bw, ".end")
	return bw.Flush()
}

var typeByName = func() map[string]GateType {
	m := map[string]GateType{}
	for t, n := range typeNames {
		m[n] = t
	}
	return m
}()

// Read parses the exchange format written by Write and validates the
// result.
func Read(r io.Reader) (*Circuit, error) {
	c := New("")
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case ".name":
			if len(fields) > 1 {
				c.Name = fields[1]
			}
		case ".reset":
			if len(fields) < 2 {
				return nil, fmt.Errorf("netlist line %d: missing reset id", line)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("netlist line %d: %v", line, err)
			}
			c.ResetPI = id
		case ".end":
			// terminator
		default:
			if len(fields) < 3 {
				return nil, fmt.Errorf("netlist line %d: want 'id TYPE name [fanins...]'", line)
			}
			id, err := strconv.Atoi(fields[0])
			if err != nil {
				return nil, fmt.Errorf("netlist line %d: %v", line, err)
			}
			if id != len(c.Gates) {
				return nil, fmt.Errorf("netlist line %d: gate id %d out of order (want %d)", line, id, len(c.Gates))
			}
			t, ok := typeByName[fields[1]]
			if !ok {
				return nil, fmt.Errorf("netlist line %d: unknown gate type %q", line, fields[1])
			}
			name := fields[2]
			if name == "-" {
				name = ""
			}
			fanin := make([]int, 0, len(fields)-3)
			for _, f := range fields[3:] {
				v, err := strconv.Atoi(f)
				if err != nil {
					return nil, fmt.Errorf("netlist line %d: %v", line, err)
				}
				fanin = append(fanin, v)
			}
			c.AddGate(t, name, fanin...)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}
