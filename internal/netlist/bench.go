package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteBench serializes the circuit in the ISCAS89 .bench format, the
// lingua franca of the 1990s test-generation literature. The reset
// line, which .bench does not model, is recorded in a comment header
// that ReadBench understands ("# reset: <name>"). Constant gates are
// expressed as XOR/XNOR of a primary input with itself.
func WriteBench(w io.Writer, c *Circuit) error {
	bw := bufio.NewWriter(w)
	names := benchNames(c)
	fmt.Fprintf(bw, "# %s\n", c.Name)
	if c.ResetPI >= 0 {
		fmt.Fprintf(bw, "# reset: %s\n", names[c.ResetPI])
	}
	for _, id := range c.PIs {
		fmt.Fprintf(bw, "INPUT(%s)\n", names[id])
	}
	for _, id := range c.POs {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", names[id])
	}
	constSrc := ""
	if len(c.PIs) > 0 {
		constSrc = names[c.PIs[0]]
	}
	for id, g := range c.Gates {
		switch g.Type {
		case Input:
			continue
		case Output:
			fmt.Fprintf(bw, "%s = BUFF(%s)\n", names[id], names[g.Fanin[0]])
		case Const0, Const1:
			if constSrc == "" {
				return fmt.Errorf("netlist: cannot express constants in .bench without a primary input")
			}
			op := "XOR"
			if g.Type == Const1 {
				op = "XNOR"
			}
			fmt.Fprintf(bw, "%s = %s(%s, %s)\n", names[id], op, constSrc, constSrc)
		default:
			op := map[GateType]string{
				Buf: "BUFF", Not: "NOT", And: "AND", Or: "OR",
				Nand: "NAND", Nor: "NOR", Xor: "XOR", Xnor: "XNOR", DFF: "DFF",
			}[g.Type]
			args := make([]string, len(g.Fanin))
			for i, f := range g.Fanin {
				args[i] = names[f]
			}
			fmt.Fprintf(bw, "%s = %s(%s)\n", names[id], op, strings.Join(args, ", "))
		}
	}
	return bw.Flush()
}

// benchNames produces unique .bench identifiers for every gate.
func benchNames(c *Circuit) []string {
	names := make([]string, len(c.Gates))
	used := map[string]bool{}
	for id, g := range c.Gates {
		base := g.Name
		if base == "" {
			base = fmt.Sprintf("n%d", id)
		}
		base = strings.Map(func(r rune) rune {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
				return r
			default:
				return '_'
			}
		}, base)
		name := base
		for i := 2; used[name]; i++ {
			name = fmt.Sprintf("%s_%d", base, i)
		}
		used[name] = true
		names[id] = name
	}
	return names
}

// ReadBench parses an ISCAS89 .bench description. DFFs are supported;
// a "# reset: <name>" comment (as emitted by WriteBench) restores the
// reset line.
func ReadBench(r io.Reader) (*Circuit, error) {
	type rawGate struct {
		op   string
		args []string
	}
	defs := map[string]rawGate{}
	var inputs, outputs []string
	var defOrder []string
	resetName := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if rest, ok := strings.CutPrefix(text, "# reset:"); ok {
				resetName = strings.TrimSpace(rest)
			}
			continue
		}
		switch {
		case strings.HasPrefix(text, "INPUT(") && strings.HasSuffix(text, ")"):
			inputs = append(inputs, strings.TrimSuffix(strings.TrimPrefix(text, "INPUT("), ")"))
		case strings.HasPrefix(text, "OUTPUT(") && strings.HasSuffix(text, ")"):
			outputs = append(outputs, strings.TrimSuffix(strings.TrimPrefix(text, "OUTPUT("), ")"))
		default:
			name, rhs, ok := strings.Cut(text, "=")
			if !ok {
				return nil, fmt.Errorf("bench line %d: expected assignment", line)
			}
			name = strings.TrimSpace(name)
			rhs = strings.TrimSpace(rhs)
			open := strings.Index(rhs, "(")
			if open < 0 || !strings.HasSuffix(rhs, ")") {
				return nil, fmt.Errorf("bench line %d: malformed gate %q", line, rhs)
			}
			op := strings.ToUpper(strings.TrimSpace(rhs[:open]))
			var args []string
			for _, a := range strings.Split(rhs[open+1:len(rhs)-1], ",") {
				args = append(args, strings.TrimSpace(a))
			}
			if _, dup := defs[name]; dup {
				return nil, fmt.Errorf("bench line %d: %s defined twice", line, name)
			}
			defs[name] = rawGate{op, args}
			defOrder = append(defOrder, name)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	typeOf := map[string]GateType{
		"BUFF": Buf, "BUF": Buf, "NOT": Not, "AND": And, "OR": Or,
		"NAND": Nand, "NOR": Nor, "XOR": Xor, "XNOR": Xnor, "DFF": DFF,
	}
	c := New("bench")
	ids := map[string]int{}
	for _, n := range inputs {
		ids[n] = c.AddGate(Input, n)
	}
	// Signals referenced but never defined and not inputs are an error;
	// collect definitions first (two passes because .bench allows use
	// before definition).
	for _, n := range defOrder {
		g := defs[n]
		t, ok := typeOf[g.op]
		if !ok {
			return nil, fmt.Errorf("bench: unknown operation %q", g.op)
		}
		ids[n] = c.AddGate(t, n)
	}
	for _, n := range defOrder {
		g := defs[n]
		fanin := make([]int, len(g.args))
		for i, a := range g.args {
			id, ok := ids[a]
			if !ok {
				return nil, fmt.Errorf("bench: signal %q used but never defined", a)
			}
			fanin[i] = id
		}
		c.Gates[ids[n]].Fanin = fanin
	}
	// OUTPUT() lines become Output gates observing the named signal;
	// deterministic order as listed.
	for _, n := range outputs {
		id, ok := ids[n]
		if !ok {
			return nil, fmt.Errorf("bench: output %q never defined", n)
		}
		c.AddGate(Output, n+"_po", id)
	}
	if resetName != "" {
		id, ok := ids[resetName]
		if !ok || c.Gates[id].Type != Input {
			return nil, fmt.Errorf("bench: reset %q is not an input", resetName)
		}
		c.ResetPI = id
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}
