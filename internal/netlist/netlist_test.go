package netlist

import "testing"

// buildToggle returns a 1-input circuit: a DFF whose D input is
// XOR(in, Q) and a PO observing Q — a toggle flip-flop enable.
func buildToggle(t *testing.T) *Circuit {
	t.Helper()
	c := New("toggle")
	in := c.AddGate(Input, "in")
	// DFF fanin patched after the XOR exists (self-loop through logic).
	ff := c.AddGate(DFF, "q", 0)
	x := c.AddGate(Xor, "x", in, ff)
	c.Gates[ff].Fanin[0] = x
	c.AddGate(Output, "out", ff)
	if err := c.Validate(); err != nil {
		t.Fatalf("toggle invalid: %v", err)
	}
	return c
}

func TestAddGateBookkeeping(t *testing.T) {
	c := buildToggle(t)
	if len(c.PIs) != 1 || len(c.POs) != 1 || len(c.DFFs) != 1 {
		t.Errorf("bookkeeping: %d PIs %d POs %d DFFs", len(c.PIs), len(c.POs), len(c.DFFs))
	}
	if c.NumDFFs() != 1 || c.NumGates() != 4 {
		t.Errorf("counts: %d gates %d dffs", c.NumGates(), c.NumDFFs())
	}
}

func TestTopoOrderCutsAtDFF(t *testing.T) {
	c := buildToggle(t)
	order, err := c.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 4 {
		t.Fatalf("order has %d gates, want 4", len(order))
	}
	pos := make(map[int]int)
	for i, id := range order {
		pos[id] = i
	}
	// XOR must come after both its fanins (input and DFF-as-source).
	if pos[2] < pos[0] || pos[2] < pos[1] {
		t.Error("xor ordered before its fanins")
	}
}

func TestCombinationalCycleDetected(t *testing.T) {
	c := New("cyc")
	c.AddGate(Input, "in")
	a := c.AddGate(And, "a", 0, 0)
	b := c.AddGate(And, "b", a, 0)
	c.Gates[a].Fanin[1] = b // a <-> b cycle with no DFF
	if _, err := c.TopoOrder(); err == nil {
		t.Error("expected cycle detection")
	}
	if err := c.Validate(); err == nil {
		t.Error("Validate must also reject the cycle")
	}
}

func TestValidateArity(t *testing.T) {
	c := New("bad")
	in := c.AddGate(Input, "in")
	c.AddGate(Not, "n", in, in) // NOT with 2 fanins
	if err := c.Validate(); err == nil {
		t.Error("expected arity violation")
	}

	c2 := New("bad2")
	i2 := c2.AddGate(Input, "in")
	c2.AddGate(And, "a", i2, i2, i2, i2, i2) // fanin 5 > MaxFanin
	if err := c2.Validate(); err == nil {
		t.Error("expected MaxFanin violation")
	}
}

func TestValidateOutputNotReadable(t *testing.T) {
	c := New("bad3")
	in := c.AddGate(Input, "in")
	o := c.AddGate(Output, "o", in)
	c.AddGate(Buf, "b", o)
	if err := c.Validate(); err == nil {
		t.Error("reading from an Output gate must be rejected")
	}
}

func TestFanouts(t *testing.T) {
	c := buildToggle(t)
	f := c.Fanouts()
	// The DFF feeds the XOR and the Output.
	if len(f[1]) != 2 {
		t.Errorf("DFF fanouts = %v", f[1])
	}
	// The XOR feeds only the DFF D input.
	if len(f[2]) != 1 || f[2][0] != 1 {
		t.Errorf("XOR fanouts = %v", f[2])
	}
}

func TestLevelsAndStats(t *testing.T) {
	c := buildToggle(t)
	lv, err := c.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if lv[2] != 1 { // XOR one level above sources
		t.Errorf("xor level = %d, want 1", lv[2])
	}
	lib := DefaultLibrary()
	s, err := c.ComputeStats(lib)
	if err != nil {
		t.Fatal(err)
	}
	if s.Gates != 1 || s.DFFs != 1 {
		t.Errorf("stats counts: %+v", s)
	}
	if s.Delay <= 0 || s.Area <= 0 {
		t.Errorf("stats area/delay: %+v", s)
	}
}

func TestCloneIndependence(t *testing.T) {
	c := buildToggle(t)
	d := c.Clone()
	d.Gates[2].Fanin[0] = 1
	if c.Gates[2].Fanin[0] == 1 {
		t.Error("clone shares fanin storage")
	}
	d.AddGate(Input, "extra")
	if len(c.PIs) != 1 {
		t.Error("clone shares PI list")
	}
}

func TestResetValidation(t *testing.T) {
	c := buildToggle(t)
	c.ResetPI = 2 // XOR, not an input
	if err := c.Validate(); err == nil {
		t.Error("non-input reset must be rejected")
	}
	c.ResetPI = 0
	if err := c.Validate(); err != nil {
		t.Errorf("input reset rejected: %v", err)
	}
}

func TestLibraryLookups(t *testing.T) {
	lib := DefaultLibrary()
	if lib.Area(Nand, 2) >= lib.Area(Nand, 4) {
		t.Error("wider NAND should cost more area")
	}
	if lib.Delay(Nor, 2) >= lib.Delay(Nor, 4) {
		t.Error("wider NOR should be slower")
	}
	// Unknown combinations fall back to defaults, not panic.
	if lib.Area(And, 9) <= 0 {
		t.Error("default area must be positive")
	}
}
