package netlist

import (
	"bytes"
	"testing"
)

// FuzzRead throws arbitrary bytes at both circuit readers. Neither may
// ever panic: they return an error or a circuit that passes Validate
// and survives a write/read round trip. (The readers are the only part
// of the system that consumes untrusted input — everything downstream
// assumes a validated circuit.)
func FuzzRead(f *testing.F) {
	f.Add([]byte(".name t\n.reset 0\n0 INPUT rst\n1 INPUT a\n2 NOT n 1\n3 DFF q 2\n4 OUTPUT o 3\n.end\n"))
	f.Add([]byte("# demo\n# reset: rst\nINPUT(rst)\nINPUT(a)\nOUTPUT(o)\nq = DFF(n)\nn = NOT(a)\no = AND(q, rst)\n"))
	f.Add([]byte(".reset -5\n0 INPUT a\n"))
	f.Add([]byte("INPUT(a)\na = AND(a, a)\n"))
	f.Add([]byte("0 NAND x 0 0\n"))
	f.Add([]byte("# reset: nowhere\nINPUT(a)\n"))
	f.Add([]byte("\x00\xff="))
	f.Fuzz(func(t *testing.T, data []byte) {
		if c, err := Read(bytes.NewReader(data)); err == nil {
			roundTrip(t, c, "exchange")
		}
		if c, err := ReadBench(bytes.NewReader(data)); err == nil {
			var buf bytes.Buffer
			if err := WriteBench(&buf, c); err != nil {
				t.Fatalf("WriteBench rejected a circuit ReadBench produced: %v", err)
			}
			c2, err := ReadBench(&buf)
			if err != nil {
				t.Fatalf("bench round trip failed: %v\n%s", err, buf.String())
			}
			if len(c2.PIs) != len(c.PIs) || len(c2.DFFs) != len(c.DFFs) {
				t.Fatalf("bench round trip changed shape: %d/%d PIs, %d/%d DFFs",
					len(c.PIs), len(c2.PIs), len(c.DFFs), len(c2.DFFs))
			}
		}
	})
}

// roundTrip checks Write∘Read is the identity on valid circuits.
func roundTrip(t *testing.T, c *Circuit, what string) {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatalf("%s: Write failed on a circuit Read accepted: %v", what, err)
	}
	c2, err := Read(&buf)
	if err != nil {
		t.Fatalf("%s round trip failed: %v\n%s", what, err, buf.String())
	}
	if len(c2.Gates) != len(c.Gates) || c2.ResetPI != c.ResetPI {
		t.Fatalf("%s round trip changed the circuit: %d->%d gates, reset %d->%d",
			what, len(c.Gates), len(c2.Gates), c.ResetPI, c2.ResetPI)
	}
	for i := range c.Gates {
		g, g2 := c.Gates[i], c2.Gates[i]
		if g.Type != g2.Type || len(g.Fanin) != len(g2.Fanin) {
			t.Fatalf("%s round trip changed gate %d: %+v -> %+v", what, i, g, g2)
		}
	}
}
