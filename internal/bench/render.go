package bench

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
)

// RenderFigure3 draws the fault-efficiency-versus-budget curves as an
// ASCII chart, one row per circuit, echoing the paper's Figure 3. The
// x axis is the budget sweep (log-spaced by construction); the y axis
// is fault efficiency.
func RenderFigure3(points []Figure3Point) string {
	if len(points) == 0 {
		return "(no data)\n"
	}
	byCircuit := map[string][]Figure3Point{}
	var order []string
	for _, p := range points {
		if _, ok := byCircuit[p.Name]; !ok {
			order = append(order, p.Name)
		}
		byCircuit[p.Name] = append(byCircuit[p.Name], p)
	}
	const width = 56
	var buf bytes.Buffer
	fmt.Fprintln(&buf, "fault efficiency vs effort budget (each curve: low -> high budget)")
	fmt.Fprintln(&buf, strings.Repeat("-", width+24))
	for _, name := range order {
		pts := byCircuit[name]
		sort.Slice(pts, func(i, j int) bool { return pts[i].Budget < pts[j].Budget })
		fmt.Fprintf(&buf, "%-18s |", name)
		// One glyph column per sample, spaced across the width.
		cols := make([]rune, width)
		for i := range cols {
			cols[i] = ' '
		}
		for i, p := range pts {
			pos := 0
			if len(pts) > 1 {
				pos = i * (width - 1) / (len(pts) - 1)
			}
			// Mark the sample with its FE decile.
			glyphs := []rune("0123456789X")
			idx := int(p.FE / 10)
			if idx < 0 {
				idx = 0
			}
			if idx >= len(glyphs) {
				idx = len(glyphs) - 1
			}
			cols[pos] = glyphs[idx]
		}
		buf.WriteString(string(cols))
		last := pts[len(pts)-1]
		fmt.Fprintf(&buf, "| FE %.1f%% @%g\n", last.FE, float64(last.Budget))
	}
	fmt.Fprintln(&buf, strings.Repeat("-", width+24))
	fmt.Fprintln(&buf, "glyphs are FE deciles (0 = <10%, 9 = 90-99%, X = 100%)")
	return buf.String()
}
