package bench

import (
	"bytes"
	"fmt"
	"text/tabwriter"

	"seqatpg/internal/reach"
	"seqatpg/internal/synth"
)

// AblationDC compares synthesis with and without the unreachable-state
// don't-cares (the SIS extract_seq_dc analog). Removing the don't-cares
// is the classic way to see how much the minimizer exploits invalid
// states: the circuits grow, while the valid-state set (a function of
// the machine, not the logic) stays put.
func (s *Suite) AblationDC() (string, error) {
	var buf bytes.Buffer
	w := tabwriter.NewWriter(&buf, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "%s\n", "circuit\tgates(dc)\tgates(nodc)\tarea(dc)\tarea(nodc)\tdensity")
	for _, name := range []string{"dk16", "pma", "s820"} {
		m, err := s.Machine(name)
		if err != nil {
			return "", err
		}
		spec := PairSpecs()[0]
		for _, sp := range PairSpecs() {
			if sp.FSM == name {
				spec = sp
				break
			}
		}
		withDC, err := synth.Synthesize(m, synth.Options{
			Algorithm: spec.Alg, Script: spec.Script, UseUnreachableDC: true,
		})
		if err != nil {
			return "", err
		}
		withoutDC, err := synth.Synthesize(m, synth.Options{
			Algorithm: spec.Alg, Script: spec.Script, UseUnreachableDC: false,
		})
		if err != nil {
			return "", err
		}
		sa, err := withDC.Circuit.ComputeStats(s.Lib)
		if err != nil {
			return "", err
		}
		sb, err := withoutDC.Circuit.ComputeStats(s.Lib)
		if err != nil {
			return "", err
		}
		ra, err := reach.Analyze(withDC.Circuit, reach.Options{FlushCycles: 1})
		if err != nil {
			return "", err
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%.0f\t%.0f\t%.2g\n",
			spec.Name(), sa.Gates, sb.Gates, sa.Area, sb.Area, ra.Density)
	}
	w.Flush()
	return buf.String(), nil
}

// AblationLearning isolates the SEST learning ladder: the same
// deterministic core with no learning, per-fault learning, and the
// cross-fault shared justification cache, on one original/retimed
// pair. The paper's Section 5 observation is that learning buys an
// order of magnitude on some circuits but cannot remove the
// density-of-encoding penalty — sharing the cache across faults
// amortizes the re-proving, not the density.
func (s *Suite) AblationLearning() (string, error) {
	specByName := map[string]PairSpec{}
	for _, spec := range PairSpecs() {
		specByName[spec.Name()] = spec
	}
	p, err := s.Pair(specByName["dk16.ji.sd"])
	if err != nil {
		return "", err
	}
	var buf bytes.Buffer
	w := tabwriter.NewWriter(&buf, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "%s\n", "circuit\tengine\t%FC\t%FE\teffort")
	rows := []struct {
		label string
		f     func() (*RunRecord, error)
	}{
		{p.Orig.Circuit.Name + "\thitec (no learning)", func() (*RunRecord, error) { return s.Run("hitec", p.Orig.Circuit, 1) }},
		{p.Orig.Circuit.Name + "\tsest (learning)", func() (*RunRecord, error) { return s.Run("sest", p.Orig.Circuit, 1) }},
		{p.Orig.Circuit.Name + "\tsest-shared (shared cache)", func() (*RunRecord, error) { return s.Run("sest-shared", p.Orig.Circuit, 1) }},
		{p.Orig.Circuit.Name + "\tsest-cdcl (conflict-driven)", func() (*RunRecord, error) { return s.Run("sest-cdcl", p.Orig.Circuit, 1) }},
		{p.Re.Circuit.Name + "\thitec (no learning)", func() (*RunRecord, error) { return s.Run("hitec", p.Re.Circuit, p.Re.FlushCycles) }},
		{p.Re.Circuit.Name + "\tsest (learning)", func() (*RunRecord, error) { return s.Run("sest", p.Re.Circuit, p.Re.FlushCycles) }},
		{p.Re.Circuit.Name + "\tsest-shared (shared cache)", func() (*RunRecord, error) { return s.Run("sest-shared", p.Re.Circuit, p.Re.FlushCycles) }},
		{p.Re.Circuit.Name + "\tsest-cdcl (conflict-driven)", func() (*RunRecord, error) { return s.Run("sest-cdcl", p.Re.Circuit, p.Re.FlushCycles) }},
	}
	for _, row := range rows {
		rec, err := row.f()
		if err != nil {
			return "", err
		}
		st := rec.Result.Stats
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%d\n", row.label, st.FC(), st.FE(), st.Effort)
	}
	w.Flush()
	return buf.String(), nil
}
