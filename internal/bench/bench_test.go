package bench

import (
	"strings"
	"testing"
)

// tinyBudget is even smaller than QuickBudget so the whole-suite shape
// tests stay fast in CI.
func tinyBudget() Budget {
	return Budget{
		EffortScale: 500, MaxFaults: 80, RetimedCap: 40_000_000,
		BigGates: 4000, BigEffortScale: 80, BigMaxFaults: 40, BigCap: 60_000_000,
	}
}

func TestPairSpecsMatchPaper(t *testing.T) {
	specs := PairSpecs()
	if len(specs) != 16 {
		t.Fatalf("expected the paper's 16 pairs, got %d", len(specs))
	}
	wantFirst, wantLast := "dk16.ji.sd", "scf.jo.sd"
	if specs[0].Name() != wantFirst || specs[len(specs)-1].Name() != wantLast {
		t.Errorf("pair order: got %s..%s, want %s..%s",
			specs[0].Name(), specs[len(specs)-1].Name(), wantFirst, wantLast)
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.Name()] {
			t.Errorf("duplicate pair %s", s.Name())
		}
		seen[s.Name()] = true
	}
}

func TestTable1Shape(t *testing.T) {
	s := NewSuite(tinyBudget())
	out, err := s.Table1()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"dk16", "pma", "s510", "s820", "s832", "scf"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %s:\n%s", want, out)
		}
	}
}

func TestPairConstruction(t *testing.T) {
	s := NewSuite(tinyBudget())
	spec := PairSpecs()[0] // dk16.ji.sd
	p, err := s.Pair(spec)
	if err != nil {
		t.Fatal(err)
	}
	if p.Orig.Circuit.NumDFFs() != 5 {
		t.Errorf("dk16 original has %d DFFs, want 5 (paper Table 2)", p.Orig.Circuit.NumDFFs())
	}
	if p.Re.Circuit.NumDFFs() <= p.Orig.Circuit.NumDFFs() {
		t.Errorf("retimed circuit must have more DFFs: %d vs %d",
			p.Re.Circuit.NumDFFs(), p.Orig.Circuit.NumDFFs())
	}
	if p.Re.FlushCycles < 1 {
		t.Errorf("flush cycles = %d", p.Re.FlushCycles)
	}
	// Caching: same pointer on the second request.
	p2, err := s.Pair(spec)
	if err != nil {
		t.Fatal(err)
	}
	if p2 != p {
		t.Error("pair cache miss")
	}
}

func TestRunMemoization(t *testing.T) {
	s := NewSuite(tinyBudget())
	p, err := s.Pair(PairSpecs()[0])
	if err != nil {
		t.Fatal(err)
	}
	r1, err := s.Run("hitec", p.Orig.Circuit, 1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Run("hitec", p.Orig.Circuit, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("run cache miss")
	}
}

// TestHeadlinePairShape is the core qualitative claim on one pair under
// a small budget: the retimed circuit costs more effort per point of
// coverage and ends with lower coverage.
func TestHeadlinePairShape(t *testing.T) {
	s := NewSuite(tinyBudget())
	p, err := s.Pair(PairSpecs()[0]) // dk16.ji.sd
	if err != nil {
		t.Fatal(err)
	}
	orig, err := s.Run("hitec", p.Orig.Circuit, 1)
	if err != nil {
		t.Fatal(err)
	}
	re, err := s.Run("hitec", p.Re.Circuit, p.Re.FlushCycles)
	if err != nil {
		t.Fatal(err)
	}
	so, sr := orig.Result.Stats, re.Result.Stats
	if sr.FC() >= so.FC() {
		t.Errorf("retimed FC %.1f should be below original FC %.1f", sr.FC(), so.FC())
	}
	if sr.Effort <= so.Effort {
		t.Errorf("retimed effort %d should exceed original effort %d", sr.Effort, so.Effort)
	}
	t.Logf("orig FC=%.1f effort=%d | re FC=%.1f effort=%d (ratio %.1f)",
		so.FC(), so.Effort, sr.FC(), sr.Effort, float64(sr.Effort)/float64(so.Effort))
}

func TestSampleFaults(t *testing.T) {
	s := NewSuite(tinyBudget())
	p, err := s.Pair(PairSpecs()[0])
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run("hitec", p.Orig.Circuit, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Faults) > tinyBudget().MaxFaults {
		t.Errorf("fault sample %d exceeds cap %d", len(r.Faults), tinyBudget().MaxFaults)
	}
}

func TestBudgetClassSelection(t *testing.T) {
	b := FullBudget()
	small := b.perFault(300)
	big := b.perFault(10000)
	if small != 12000*300 {
		t.Errorf("small per-fault = %d", small)
	}
	if big != 2500*10000 {
		t.Errorf("big per-fault = %d", big)
	}
	if b.maxFaults(300) != 700 || b.maxFaults(10000) != 350 {
		t.Error("maxFaults class selection wrong")
	}
	if b.totalCap(300, false) != 0 {
		t.Error("small originals must be uncapped")
	}
	if b.totalCap(300, true) != b.RetimedCap {
		t.Error("small retimed must use RetimedCap")
	}
	if b.totalCap(10000, false) != b.BigCap {
		t.Error("big circuits must use BigCap")
	}
}

// TestTable7LadderShape: monotone register growth and density decay
// down the ladder (reachability runs are cheap on s510-sized circuits).
func TestTable7LadderShape(t *testing.T) {
	if testing.Short() {
		t.Skip("ladder construction is a few seconds")
	}
	s := NewSuite(tinyBudget())
	rows, _, err := s.Table7()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("ladder has %d rungs, want 4 (original + v1..v3)", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].DFFs < rows[i-1].DFFs {
			t.Errorf("rung %d: DFFs shrank %d -> %d", i, rows[i-1].DFFs, rows[i].DFFs)
		}
		if rows[i].Density > rows[i-1].Density {
			t.Errorf("rung %d: density rose %.3g -> %.3g", i, rows[i-1].Density, rows[i].Density)
		}
	}
}

func TestAblationDC(t *testing.T) {
	s := NewSuite(tinyBudget())
	out, err := s.AblationDC()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "dk16") || !strings.Contains(out, "gates(nodc)") {
		t.Errorf("ablation output malformed:\n%s", out)
	}
}

func TestAblationLearning(t *testing.T) {
	s := NewSuite(tinyBudget())
	out, err := s.AblationLearning()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "sest (learning)") {
		t.Errorf("ablation output malformed:\n%s", out)
	}
}

func TestRenderFigure3(t *testing.T) {
	pts := []Figure3Point{
		{Name: "orig", Budget: 100, FE: 45.7},
		{Name: "orig", Budget: 400, FE: 96.6},
		{Name: "re.v1", Budget: 100, FE: 0},
		{Name: "re.v1", Budget: 400, FE: 18.1},
	}
	out := RenderFigure3(pts)
	for _, want := range []string{"orig", "re.v1", "FE 96.6%", "FE 18.1%"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	if RenderFigure3(nil) != "(no data)\n" {
		t.Error("empty chart handling")
	}
}

// TestAllTableDriversTiny exercises every table driver end to end under
// the tiny budget — an integration smoke of the full harness.
func TestAllTableDriversTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("harness-scale test (minutes)")
	}
	s := NewSuite(tinyBudget())
	rows2, out2, err := s.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows2) != 32 || !strings.Contains(out2, "dk16.ji.sd.re") {
		t.Fatalf("table 2 shape: %d rows", len(rows2))
	}
	// Every odd row is a retimed circuit with a ratio.
	for i := 1; i < len(rows2); i += 2 {
		if rows2[i].EffortRatio <= 0 {
			t.Errorf("row %s has no ratio", rows2[i].Name)
		}
	}
	rows6, _, err := s.Table6()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows6) != 32 {
		t.Fatalf("table 6 shape: %d rows", len(rows6))
	}
	for i := 0; i < len(rows6); i += 2 {
		orig, re := rows6[i], rows6[i+1]
		if re.Density >= orig.Density {
			t.Errorf("%s: density did not drop (%.3g -> %.3g)", orig.Name, orig.Density, re.Density)
		}
	}
	rows8, _, err := s.Table8()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows8) != 4 {
		t.Fatalf("table 8 shape: %d rows", len(rows8))
	}
	for _, r := range rows8 {
		if r.FCOrigSet < r.FC {
			t.Logf("note: %s orig-set FC %.1f below ATPG FC %.1f (tiny budgets)", r.Name, r.FCOrigSet, r.FC)
		}
	}
}
