// Package bench drives the reproduction experiments: it synthesizes the
// paper's circuit suite (every FSM × encoding × script combination of
// Table 2, each with its retimed counterpart), runs the three ATPG
// engines under deterministic effort budgets, and regenerates every
// table and figure of the paper's evaluation section.
package bench

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"

	"seqatpg/internal/atpg"
	"seqatpg/internal/atpg/attest"
	"seqatpg/internal/atpg/hitec"
	"seqatpg/internal/atpg/sest"
	"seqatpg/internal/encode"
	"seqatpg/internal/fault"
	"seqatpg/internal/fsm"
	"seqatpg/internal/netlist"
	"seqatpg/internal/retime"
	"seqatpg/internal/synth"
)

// PairSpec names one original/retimed circuit pair of the paper's
// Table 2.
type PairSpec struct {
	FSM    string
	Alg    encode.Algorithm
	Script synth.Script
	// Rounds is the number of backward atomic-move sweeps used to
	// create the retimed version.
	Rounds int
}

// Name renders the paper's circuit naming convention (e.g. dk16.ji.sd).
func (p PairSpec) Name() string {
	return fmt.Sprintf("%s.%s.%s", p.FSM, p.Alg, p.Script)
}

// PairSpecs returns the 16 circuit pairs of Table 2 in paper order.
func PairSpecs() []PairSpec {
	ji, jo, jc := encode.InputDominant, encode.OutputDominant, encode.Combined
	sd, sr := synth.Delay, synth.Rugged
	return []PairSpec{
		{"dk16", ji, sd, 2},
		{"pma", jo, sd, 2},
		{"s510", jc, sd, 2},
		{"s510", jc, sr, 2},
		{"s510", ji, sd, 2},
		{"s510", ji, sr, 2},
		{"s510", jo, sr, 2},
		{"s820", jc, sd, 2},
		{"s820", jc, sr, 2},
		{"s820", ji, sr, 2},
		{"s820", jo, sd, 2},
		{"s820", jo, sr, 2},
		{"s832", jc, sr, 2},
		{"s832", jo, sr, 2},
		{"scf", ji, sd, 1},
		{"scf", jo, sd, 1},
	}
}

// Pair is a constructed original/retimed circuit pair.
type Pair struct {
	Spec PairSpec
	Orig *synth.Result
	Re   *retime.Result
}

// Budget classifies how much effort the engines may spend; Quick is for
// tests and smoke runs, Full approximates the paper's CPU allowances.
// Large circuits (the scf class) get their own scaled-down knobs, and
// retimed circuits get an absolute whole-run cap — the reproduction of
// the paper's manual halt ("HITEC was manually halted after at least 12
// CPU hours had expired without a single additional fault being
// detected").
type Budget struct {
	// EffortScale: per-fault budget = EffortScale × gate count.
	EffortScale int64
	// MaxFaults caps the (deterministically sampled) fault list size; 0
	// means no cap.
	MaxFaults int
	// RetimedCap is the absolute whole-run effort cap applied to
	// retimed circuits (0 = none).
	RetimedCap int64
	// BigGates is the gate count above which the Big* overrides apply.
	BigGates       int
	BigEffortScale int64
	BigMaxFaults   int
	BigCap         int64 // applied to big runs, original or retimed
}

// FullBudget approximates the paper's generous CPU allowance, scaled to
// a single modern core.
func FullBudget() Budget {
	return Budget{
		EffortScale: 12000, MaxFaults: 700, RetimedCap: 5_000_000_000,
		BigGates: 4000, BigEffortScale: 2500, BigMaxFaults: 350, BigCap: 8_000_000_000,
	}
}

// QuickBudget is for tests and smoke runs: small but large enough to
// show the retiming effect.
func QuickBudget() Budget {
	return Budget{
		EffortScale: 800, MaxFaults: 120, RetimedCap: 100_000_000,
		BigGates: 4000, BigEffortScale: 150, BigMaxFaults: 60, BigCap: 150_000_000,
	}
}

// perFault returns the per-fault effort budget for a circuit.
func (b Budget) perFault(gates int) int64 {
	if b.BigGates > 0 && gates > b.BigGates {
		return b.BigEffortScale * int64(gates)
	}
	return b.EffortScale * int64(gates)
}

// maxFaults returns the sampled fault-list bound for a circuit.
func (b Budget) maxFaults(gates int) int {
	if b.BigGates > 0 && gates > b.BigGates {
		return b.BigMaxFaults
	}
	return b.MaxFaults
}

// totalCap returns the whole-run cap (0 = none). Retimed circuits are
// identified by their ".re" name suffix.
func (b Budget) totalCap(gates int, retimed bool) int64 {
	if b.BigGates > 0 && gates > b.BigGates && b.BigCap > 0 {
		return b.BigCap
	}
	if retimed {
		return b.RetimedCap
	}
	return 0
}

// ErrInterrupted reports that an ATPG run stopped because the suite's
// context was cancelled (deadline or signal). Callers distinguish it
// from real failures with errors.Is.
var ErrInterrupted = errors.New("bench: run interrupted")

// Suite lazily builds circuits and memoizes ATPG runs so the tables can
// share them.
type Suite struct {
	Lib    *netlist.Library
	Budget Budget

	ctx      context.Context
	mu       sync.Mutex
	machines map[string]*fsm.FSM
	pairs    map[string]*Pair
	runs     map[string]*RunRecord
}

// NewSuite creates a suite with the given budget.
func NewSuite(b Budget) *Suite {
	return NewSuiteCtx(context.Background(), b)
}

// NewSuiteCtx creates a suite whose ATPG runs stop cooperatively when
// ctx is cancelled; an interrupted run surfaces as an error wrapping
// ErrInterrupted rather than a silently truncated table.
func NewSuiteCtx(ctx context.Context, b Budget) *Suite {
	return &Suite{
		Lib:      netlist.DefaultLibrary(),
		Budget:   b,
		ctx:      ctx,
		machines: map[string]*fsm.FSM{},
		pairs:    map[string]*Pair{},
		runs:     map[string]*RunRecord{},
	}
}

// context tolerates zero-value Suites built without a constructor.
func (s *Suite) context() context.Context {
	if s.ctx == nil {
		return context.Background()
	}
	return s.ctx
}

// Machine returns the (minimized) benchmark FSM by name.
func (s *Suite) Machine(name string) (*fsm.FSM, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m, ok := s.machines[name]; ok {
		return m, nil
	}
	for _, b := range fsm.Suite() {
		if b.Spec.Name != name {
			continue
		}
		raw, err := fsm.Generate(b.Spec)
		if err != nil {
			return nil, err
		}
		min, err := fsm.Minimize(raw)
		if err != nil {
			return nil, err
		}
		s.machines[name] = min
		return min, nil
	}
	return nil, fmt.Errorf("bench: unknown benchmark FSM %q", name)
}

// Pair synthesizes (and caches) one circuit pair.
func (s *Suite) Pair(spec PairSpec) (*Pair, error) {
	key := spec.Name()
	s.mu.Lock()
	if p, ok := s.pairs[key]; ok {
		s.mu.Unlock()
		return p, nil
	}
	s.mu.Unlock()

	m, err := s.Machine(spec.FSM)
	if err != nil {
		return nil, err
	}
	orig, err := synth.Synthesize(m, synth.Options{
		Algorithm: spec.Alg, Script: spec.Script, UseUnreachableDC: true,
	})
	if err != nil {
		return nil, err
	}
	re, err := retime.Backward(orig.Circuit, s.Lib, spec.Rounds)
	if err != nil {
		return nil, err
	}
	p := &Pair{Spec: spec, Orig: orig, Re: re}
	s.mu.Lock()
	s.pairs[key] = p
	s.mu.Unlock()
	return p, nil
}

// RunRecord is one memoized ATPG run.
type RunRecord struct {
	Circuit *netlist.Circuit
	Engine  string
	Result  *atpg.Result
	Faults  []fault.Fault // the (possibly sampled) fault list used
}

// sampleFaults deterministically thins a fault list to at most max.
func sampleFaults(faults []fault.Fault, max int) []fault.Fault {
	if max <= 0 || len(faults) <= max {
		return faults
	}
	out := make([]fault.Fault, 0, max)
	stride := float64(len(faults)) / float64(max)
	for i := 0; i < max; i++ {
		out = append(out, faults[int(float64(i)*stride)])
	}
	return out
}

// engineConfig builds the engine configuration for a circuit under the
// suite budget.
func (s *Suite) engineConfig(engine string, c *netlist.Circuit, flush int) (atpg.Config, error) {
	gates := c.NumGates()
	perFault := s.Budget.perFault(gates)
	var cfg atpg.Config
	switch engine {
	case "hitec":
		cfg = hitec.DefaultConfig(flush, perFault)
	case "attest":
		cfg = attest.DefaultConfig(flush, perFault)
	case "sest":
		cfg = sest.DefaultConfig(flush, perFault)
	case "sest-shared":
		cfg = sest.SharedConfig(flush, perFault)
	case "sest-cdcl":
		cfg = sest.CdclConfig(flush, perFault)
	default:
		return cfg, fmt.Errorf("bench: unknown engine %q", engine)
	}
	cfg.TotalBudget = s.Budget.totalCap(gates, strings.Contains(c.Name, ".re"))
	return cfg, nil
}

// Run executes (and caches) one engine over one circuit.
func (s *Suite) Run(engine string, c *netlist.Circuit, flush int) (*RunRecord, error) {
	key := engine + "/" + c.Name
	s.mu.Lock()
	if r, ok := s.runs[key]; ok {
		s.mu.Unlock()
		return r, nil
	}
	s.mu.Unlock()

	cfg, err := s.engineConfig(engine, c, flush)
	if err != nil {
		return nil, err
	}
	e, err := atpg.New(c, cfg)
	if err != nil {
		return nil, err
	}
	faults := sampleFaults(fault.CollapsedUniverse(c), s.Budget.maxFaults(c.NumGates()))
	res, err := e.RunFaultsCtx(s.context(), faults)
	if err != nil {
		return nil, err
	}
	if res.Interrupted {
		return nil, fmt.Errorf("%w: %s on %s", ErrInterrupted, engine, c.Name)
	}
	rec := &RunRecord{Circuit: c, Engine: engine, Result: res, Faults: faults}
	s.mu.Lock()
	s.runs[key] = rec
	s.mu.Unlock()
	return rec, nil
}

// newEngine builds an engine directly from a config (used by the
// Figure 3 sweep, which varies the budget outside the memo cache).
func newEngine(rc *retime.Result, cfg atpg.Config) (*atpg.Engine, error) {
	return atpg.New(rc.Circuit, cfg)
}

// runJob names one (engine, circuit, flush) work item for Warm.
type runJob struct {
	engine string
	c      *netlist.Circuit
	flush  int
}

// Warm executes the given runs on a worker pool sized to the machine,
// so subsequent table assembly hits the memo cache. The first error is
// returned (remaining jobs still finish).
func (s *Suite) warm(jobs []runJob) error {
	workers := runtime.NumCPU()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}
	ch := make(chan runJob)
	errs := make(chan error, len(jobs))
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				if _, err := s.Run(j.engine, j.c, j.flush); err != nil {
					errs <- err
				}
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}
	return nil
}

// WarmPairs builds every pair and pre-runs the engine over each
// original and retimed circuit in parallel.
func (s *Suite) WarmPairs(engine string, specs []PairSpec) error {
	var jobs []runJob
	for _, spec := range specs {
		p, err := s.Pair(spec)
		if err != nil {
			return err
		}
		jobs = append(jobs,
			runJob{engine, p.Orig.Circuit, 1},
			runJob{engine, p.Re.Circuit, p.Re.FlushCycles})
	}
	return s.warm(jobs)
}
