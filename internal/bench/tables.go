package bench

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"text/tabwriter"

	"seqatpg/internal/analyze"
	"seqatpg/internal/fault"
	"seqatpg/internal/fsm"
	"seqatpg/internal/reach"
	"seqatpg/internal/retime"
	"seqatpg/internal/sim"
)

// Table1 reports the benchmark FSM suite (paper Table 1).
func (s *Suite) Table1() (string, error) {
	var buf bytes.Buffer
	w := tabwriter.NewWriter(&buf, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "FSM\tPI\tPO\tstates\tminimized")
	for _, b := range fsm.Suite() {
		m, err := fsm.Generate(b.Spec)
		if err != nil {
			return "", err
		}
		min, err := s.Machine(b.Spec.Name)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\n",
			b.Spec.Name, m.NumInputs, m.NumOutputs, m.NumStates(), min.NumStates())
	}
	w.Flush()
	return buf.String(), nil
}

// Table2Row is one original/retimed HITEC comparison.
type Table2Row struct {
	Name        string
	DFFs        int
	FC, FE      float64
	Effort      int64
	EffortRatio float64 // retimed rows only
}

// Table2 runs the HITEC-style engine on every pair (paper Table 2).
// Effort (deterministic gate-frame evaluations) stands in for the
// paper's DECstation CPU seconds; the reproduced quantity is the
// retimed/original ratio.
func (s *Suite) Table2() ([]Table2Row, string, error) {
	if err := s.WarmPairs("hitec", PairSpecs()); err != nil {
		return nil, "", err
	}
	var rows []Table2Row
	for _, spec := range PairSpecs() {
		p, err := s.Pair(spec)
		if err != nil {
			return nil, "", err
		}
		orig, err := s.Run("hitec", p.Orig.Circuit, 1)
		if err != nil {
			return nil, "", err
		}
		re, err := s.Run("hitec", p.Re.Circuit, p.Re.FlushCycles)
		if err != nil {
			return nil, "", err
		}
		so, sr := orig.Result.Stats, re.Result.Stats
		rows = append(rows,
			Table2Row{Name: spec.Name(), DFFs: p.Orig.Circuit.NumDFFs(),
				FC: so.FC(), FE: so.FE(), Effort: so.Effort},
			Table2Row{Name: spec.Name() + ".re", DFFs: p.Re.Circuit.NumDFFs(),
				FC: sr.FC(), FE: sr.FE(), Effort: sr.Effort,
				EffortRatio: float64(sr.Effort) / float64(so.Effort)})
	}
	var buf bytes.Buffer
	w := tabwriter.NewWriter(&buf, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "%s\n", "circuit\t#DFF\t%FC\t%FE\teffort\tratio")
	for _, r := range rows {
		ratio := ""
		if r.EffortRatio > 0 {
			ratio = fmt.Sprintf("%.1f", r.EffortRatio)
		}
		fmt.Fprintf(w, "%s\t%d\t%.1f\t%.1f\t%d\t%s\n", r.Name, r.DFFs, r.FC, r.FE, r.Effort, ratio)
	}
	w.Flush()
	return rows, buf.String(), nil
}

// confirmRow is a row of Tables 3 and 4.
type confirmRow struct {
	Name           string
	FCOrig, FEOrig float64
	FCRe, FERe     float64
	Ratio          float64
}

// table34 runs a confirming engine over the paper's selected pairs.
func (s *Suite) table34(engine string, names []string) ([]confirmRow, string, error) {
	specByName := map[string]PairSpec{}
	for _, spec := range PairSpecs() {
		specByName[spec.Name()] = spec
	}
	var warmSpecs []PairSpec
	for _, n := range names {
		spec, ok := specByName[n]
		if !ok {
			return nil, "", fmt.Errorf("bench: unknown pair %q", n)
		}
		warmSpecs = append(warmSpecs, spec)
	}
	if err := s.WarmPairs(engine, warmSpecs); err != nil {
		return nil, "", err
	}
	var rows []confirmRow
	for _, n := range names {
		spec := specByName[n]
		p, err := s.Pair(spec)
		if err != nil {
			return nil, "", err
		}
		orig, err := s.Run(engine, p.Orig.Circuit, 1)
		if err != nil {
			return nil, "", err
		}
		re, err := s.Run(engine, p.Re.Circuit, p.Re.FlushCycles)
		if err != nil {
			return nil, "", err
		}
		so, sr := orig.Result.Stats, re.Result.Stats
		rows = append(rows, confirmRow{
			Name: n, FCOrig: so.FC(), FEOrig: so.FE(),
			FCRe: sr.FC(), FERe: sr.FE(),
			Ratio: float64(sr.Effort) / float64(so.Effort),
		})
	}
	var buf bytes.Buffer
	w := tabwriter.NewWriter(&buf, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "%s\n", "circuit\t%FC(orig)\t%FE(orig)\t%FC(re)\t%FE(re)\tratio")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\n",
			r.Name, r.FCOrig, r.FEOrig, r.FCRe, r.FERe, r.Ratio)
	}
	w.Flush()
	return rows, buf.String(), nil
}

// Table3 is the Attest confirmation subset (paper Table 3).
func (s *Suite) Table3() ([]confirmRow, string, error) {
	return s.table34("attest",
		[]string{"dk16.ji.sd", "pma.jo.sd", "s510.jc.sd", "s510.ji.sr", "s510.jo.sr"})
}

// Table4 is the SEST confirmation subset (paper Table 4).
func (s *Suite) Table4() ([]confirmRow, string, error) {
	return s.table34("sest",
		[]string{"dk16.ji.sd", "pma.jo.sd", "s510.jc.sd", "s510.ji.sd", "s510.jo.sr"})
}

// Table5Row holds structural attributes of one pair.
type Table5Row struct {
	Name     string
	Orig, Re analyze.Attributes
}

// Table5 computes the structural attributes (paper Table 5): maximum
// sequential depth and maximum cycle length are invariant (Theorems 2
// and 4) while the Lioy-style cycle count grows.
func (s *Suite) Table5() ([]Table5Row, string, error) {
	var rows []Table5Row
	for _, spec := range PairSpecs() {
		p, err := s.Pair(spec)
		if err != nil {
			return nil, "", err
		}
		ao, err := analyze.Analyze(p.Orig.Circuit)
		if err != nil {
			return nil, "", err
		}
		ar, err := analyze.Analyze(p.Re.Circuit)
		if err != nil {
			return nil, "", err
		}
		rows = append(rows, Table5Row{Name: spec.Name(), Orig: ao, Re: ar})
	}
	var buf bytes.Buffer
	w := tabwriter.NewWriter(&buf, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "circuit\tdepth(orig)\tmaxcyc(orig)\t#cyc(orig)\tdepth(re)\tmaxcyc(re)\t#cyc(re)")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%s\t%d\t%d\t%s\n", r.Name,
			r.Orig.MaxSeqDepth, r.Orig.MaxCycleLength, countStr(r.Orig),
			r.Re.MaxSeqDepth, r.Re.MaxCycleLength, countStr(r.Re))
	}
	w.Flush()
	return rows, buf.String(), nil
}

func countStr(a analyze.Attributes) string {
	if a.Truncated {
		return fmt.Sprintf("≥%d", a.NumCycles)
	}
	return fmt.Sprint(a.NumCycles)
}

// Table6Row is the state-traversal instrumentation of one circuit.
type Table6Row struct {
	Name        string
	Traversed   int
	Valid       float64
	PctValidTrv float64
	Total       float64
	Density     float64
}

// Table6 combines the HITEC runs with symbolic reachability (paper
// Table 6): the traversed-state counts, valid-state counts, and the
// density of encoding.
func (s *Suite) Table6() ([]Table6Row, string, error) {
	var rows []Table6Row
	add := func(name string, c *RunRecord, flush int) error {
		ra, err := reach.Analyze(c.Circuit, reach.Options{FlushCycles: flush})
		if err != nil {
			return err
		}
		trav := len(c.Result.Stats.StatesTraversed)
		pct := 0.0
		if ra.ValidStates > 0 {
			pct = 100 * float64(trav) / ra.ValidStates
		}
		rows = append(rows, Table6Row{
			Name: name, Traversed: trav, Valid: ra.ValidStates,
			PctValidTrv: pct, Total: ra.TotalStates, Density: ra.Density,
		})
		return nil
	}
	for _, spec := range PairSpecs() {
		p, err := s.Pair(spec)
		if err != nil {
			return nil, "", err
		}
		orig, err := s.Run("hitec", p.Orig.Circuit, 1)
		if err != nil {
			return nil, "", err
		}
		if err := add(spec.Name(), orig, 1); err != nil {
			return nil, "", err
		}
		re, err := s.Run("hitec", p.Re.Circuit, p.Re.FlushCycles)
		if err != nil {
			return nil, "", err
		}
		if err := add(spec.Name()+".re", re, p.Re.FlushCycles); err != nil {
			return nil, "", err
		}
	}
	var buf bytes.Buffer
	w := tabwriter.NewWriter(&buf, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "%s\n", "circuit\t#trav\t#valid\t%valid trav\ttotal\tdensity")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%.0f\t%.0f\t%.3g\t%.2g\n",
			r.Name, r.Traversed, r.Valid, r.PctValidTrv, r.Total, r.Density)
	}
	w.Flush()
	return rows, buf.String(), nil
}

// Table7Row is one rung of the density-sensitivity ladder.
type Table7Row struct {
	Name    string
	Delay   float64
	DFFs    int
	Valid   float64
	Total   float64
	Density float64
	Flush   int
}

// ladderBase is the circuit the paper uses for the sensitivity analysis.
const ladderBase = "s510.jo.sr"

// Table7 builds the graded retiming ladder of the paper's Table 7:
// several retimed versions of one circuit with increasing register
// counts and decreasing density of encoding.
func (s *Suite) Table7() ([]Table7Row, string, error) {
	specByName := map[string]PairSpec{}
	for _, spec := range PairSpecs() {
		specByName[spec.Name()] = spec
	}
	base, err := s.Pair(specByName[ladderBase])
	if err != nil {
		return nil, "", err
	}
	type rung struct {
		name   string
		c      *retime.Result
		rounds int
	}
	var rungs []rung
	origPeriod, err := retime.CurrentPeriod(base.Orig.Circuit, s.Lib)
	if err != nil {
		return nil, "", err
	}
	rungs = append(rungs, rung{name: ladderBase, c: &retime.Result{
		Circuit: base.Orig.Circuit, Period: origPeriod, FlushCycles: 1}})
	// Three graded retimings (the paper's v1/v2/v3 plus the full .re;
	// beyond three sweeps the symbolic valid-state analysis becomes
	// intractable, so the ladder tops out at three).
	for i, rounds := range []int{1, 2, 3} {
		r, err := retime.Backward(base.Orig.Circuit, s.Lib, rounds)
		if err != nil {
			return nil, "", err
		}
		r.Circuit.Name = fmt.Sprintf("%s.re.v%d", ladderBase, i+1)
		rungs = append(rungs, rung{name: r.Circuit.Name, c: r, rounds: rounds})
	}

	var rows []Table7Row
	for _, r := range rungs {
		ra, err := reach.Analyze(r.c.Circuit, reach.Options{FlushCycles: r.c.FlushCycles})
		if err != nil {
			return nil, "", err
		}
		rows = append(rows, Table7Row{
			Name: r.name, Delay: r.c.Period, DFFs: r.c.Circuit.NumDFFs(),
			Valid: ra.ValidStates, Total: ra.TotalStates, Density: ra.Density,
			Flush: r.c.FlushCycles,
		})
	}
	var buf bytes.Buffer
	w := tabwriter.NewWriter(&buf, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "circuit\tdelay\t#DFF\t#valid\ttotal\tdensity")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.2f\t%d\t%.0f\t%.3g\t%.2g\n",
			r.Name, r.Delay, r.DFFs, r.Valid, r.Total, r.Density)
	}
	w.Flush()
	return rows, buf.String(), nil
}

// Table8Row reports the original-test-set fault simulation experiment.
type Table8Row struct {
	Name        string
	FC, FE      float64 // the ATPG's own results on the retimed circuit
	TravATPG    int
	Valid       float64
	TravOrigSet int
	FCOrigSet   float64
}

// table8Circuits mirrors the paper's four worst retimed circuits.
var table8Circuits = []string{"s510.jc.sr", "s510.jo.sr", "s832.jc.sr", "scf.ji.sd"}

// Table8 fault-simulates the test set generated for each original
// circuit on the corresponding retimed circuit (sound by Theorem 1 once
// the flush prefix replaces the original reset cycle) and compares
// state traversal and coverage with what the ATPG managed directly.
func (s *Suite) Table8() ([]Table8Row, string, error) {
	specByName := map[string]PairSpec{}
	for _, spec := range PairSpecs() {
		specByName[spec.Name()] = spec
	}
	var rows []Table8Row
	for _, name := range table8Circuits {
		p, err := s.Pair(specByName[name])
		if err != nil {
			return nil, "", err
		}
		orig, err := s.Run("hitec", p.Orig.Circuit, 1)
		if err != nil {
			return nil, "", err
		}
		re, err := s.Run("hitec", p.Re.Circuit, p.Re.FlushCycles)
		if err != nil {
			return nil, "", err
		}
		ra, err := reach.Analyze(p.Re.Circuit, reach.Options{FlushCycles: p.Re.FlushCycles})
		if err != nil {
			return nil, "", err
		}
		// Adapt each original test: replace its 1-cycle reset prefix by
		// the retimed circuit's flush prefix (the P∪T construction).
		flush := make([][]sim.Val, p.Re.FlushCycles)
		for k := range flush {
			vec := make([]sim.Val, len(p.Re.Circuit.PIs))
			for i, id := range p.Re.Circuit.PIs {
				if id == p.Re.Circuit.ResetPI {
					vec[i] = sim.V1
				} else {
					vec[i] = sim.V0
				}
			}
			flush[k] = vec
		}
		fs, err := fault.NewSimulator(p.Re.Circuit)
		if err != nil {
			return nil, "", err
		}
		detected := make([]bool, len(re.Faults))
		travOrig := map[uint64]bool{}
		for _, seq := range orig.Result.Tests {
			adapted := append(append([][]sim.Val{}, flush...), seq[1:]...)
			det, err := fs.DetectsParallel(context.Background(), adapted, re.Faults, runtime.GOMAXPROCS(0))
			if err != nil {
				return nil, "", err
			}
			for i, d := range det {
				detected[i] = detected[i] || d
			}
			states, err := fault.StateTrace(p.Re.Circuit, adapted)
			if err != nil {
				return nil, "", err
			}
			for st := range states {
				travOrig[st] = true
			}
		}
		cov := fault.Summarize(detected)
		sr := re.Result.Stats
		rows = append(rows, Table8Row{
			Name: name + ".re", FC: sr.FC(), FE: sr.FE(),
			TravATPG: len(sr.StatesTraversed), Valid: ra.ValidStates,
			TravOrigSet: len(travOrig), FCOrigSet: cov.FC(),
		})
	}
	var buf bytes.Buffer
	w := tabwriter.NewWriter(&buf, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "%s\n", "circuit\t%FC\t%FE\t#trav ATPG\t#valid\t#trav orig set\t%FC orig set")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%d\t%.0f\t%d\t%.1f\n",
			r.Name, r.FC, r.FE, r.TravATPG, r.Valid, r.TravOrigSet, r.FCOrigSet)
	}
	w.Flush()
	return rows, buf.String(), nil
}

// Figure3Point is one (budget, fault efficiency) sample of one ladder
// circuit.
type Figure3Point struct {
	Name   string
	Budget int64
	FE     float64
	Effort int64
}

// Figure3 sweeps the total effort budget over the Table 7 ladder and
// records the fault efficiency reached — the paper's Figure 3: the
// lower the density of encoding, the more effort a given fault
// efficiency costs.
func (s *Suite) Figure3() ([]Figure3Point, string, error) {
	rows, _, err := s.Table7()
	if err != nil {
		return nil, "", err
	}
	specByName := map[string]PairSpec{}
	for _, spec := range PairSpecs() {
		specByName[spec.Name()] = spec
	}
	base, err := s.Pair(specByName[ladderBase])
	if err != nil {
		return nil, "", err
	}
	// Rebuild the ladder circuits (cheap; retime is deterministic).
	circuits := []*retime.Result{{Circuit: base.Orig.Circuit, FlushCycles: 1}}
	for _, rounds := range []int{1, 2, 3} {
		r, err := retime.Backward(base.Orig.Circuit, s.Lib, rounds)
		if err != nil {
			return nil, "", err
		}
		circuits = append(circuits, r)
	}
	var points []Figure3Point
	scales := []int64{4, 16, 64, 220}
	for i, rc := range circuits {
		name := rows[i].Name
		perFault := s.Budget.EffortScale * int64(rc.Circuit.NumGates())
		faults := sampleFaults(fault.CollapsedUniverse(rc.Circuit), s.Budget.MaxFaults)
		for _, scale := range scales {
			cfg, err := s.engineConfig("hitec", rc.Circuit, rc.FlushCycles)
			if err != nil {
				return nil, "", err
			}
			cfg.TotalBudget = scale * perFault
			e, err := newEngine(rc, cfg)
			if err != nil {
				return nil, "", err
			}
			res, err := e.RunFaultsCtx(s.context(), faults)
			if err != nil {
				return nil, "", err
			}
			if res.Interrupted {
				return nil, "", fmt.Errorf("%w: figure 3 sweep on %s", ErrInterrupted, name)
			}
			points = append(points, Figure3Point{
				Name: name, Budget: cfg.TotalBudget,
				FE: res.Stats.FE(), Effort: res.Stats.Effort,
			})
		}
	}
	var buf bytes.Buffer
	w := tabwriter.NewWriter(&buf, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "%s\n", "circuit\tbudget\teffort\t%FE")
	for _, p := range points {
		fmt.Fprintf(w, "%s\t%d\t%d\t%.1f\n", p.Name, p.Budget, p.Effort, p.FE)
	}
	w.Flush()
	buf.WriteString("\n")
	buf.WriteString(RenderFigure3(points))
	return points, buf.String(), nil
}
