package bench

import "testing"

// TestWarmPairsRace exercises the parallel warm-up under the race
// detector.
func TestWarmPairsRace(t *testing.T) {
	s := NewSuite(Budget{EffortScale: 100, MaxFaults: 20, RetimedCap: 5_000_000,
		BigGates: 4000, BigEffortScale: 30, BigMaxFaults: 10, BigCap: 5_000_000})
	if err := s.WarmPairs("hitec", PairSpecs()[:4]); err != nil {
		t.Fatal(err)
	}
}
