package predict

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"seqatpg/internal/encode"
	"seqatpg/internal/fault"
	"seqatpg/internal/fsm"
	"seqatpg/internal/netlist"
	"seqatpg/internal/retime"
	"seqatpg/internal/synth"
)

func synthC(t *testing.T, states int, seed int64) *netlist.Circuit {
	t.Helper()
	m, err := fsm.Generate(fsm.GenSpec{Name: "pr", Inputs: 3, Outputs: 2, States: states, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	r, err := synth.Synthesize(m, synth.Options{
		Algorithm: encode.Combined, Script: synth.Rugged, UseUnreachableDC: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r.Circuit
}

// TestExtractDeterminism is the load-bearing property: the coordinator
// and every worker recompute features independently and must arrive at
// byte-identical vectors — across repeated runs and across a netlist
// serialization round-trip.
func TestExtractDeterminism(t *testing.T) {
	orig := synthC(t, 9, 12)
	re, err := retime.Backward(orig, netlist.DefaultLibrary(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []*netlist.Circuit{orig, re.Circuit} {
		faults := fault.CollapsedUniverse(c)
		opt := Options{WithDensity: true}
		first, err := Extract(c, faults, opt)
		if err != nil {
			t.Fatal(err)
		}
		ref := Encode(first)
		for i := 0; i < 3; i++ {
			fs, err := Extract(c, faults, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(Encode(fs), ref) {
				t.Fatalf("%s: extraction run %d produced different bytes", c.Name, i)
			}
		}
		// Round-trip the netlist through its exchange format.
		var b strings.Builder
		if err := netlist.Write(&b, c); err != nil {
			t.Fatal(err)
		}
		rt, err := netlist.Read(strings.NewReader(b.String()))
		if err != nil {
			t.Fatal(err)
		}
		fs, err := Extract(rt, faults, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(Encode(fs), ref) {
			t.Fatalf("%s: features diverge after netlist round-trip", c.Name)
		}
		// Scores are a pure function of the features.
		p := Default()
		for i := range faults {
			if p.Score(first, i) != p.Score(fs, i) {
				t.Fatalf("%s: score %d not reproducible", c.Name, i)
			}
		}
	}
}

// TestFeatureShape sanity-checks that the features carry the signal
// the paper predicts: retiming (sparser valid-state encoding, deeper
// registers) makes the circuit look harder.
func TestFeatureShape(t *testing.T) {
	orig := synthC(t, 9, 12)
	re, err := retime.Backward(orig, netlist.DefaultLibrary(), 2)
	if err != nil {
		t.Fatal(err)
	}
	fo, err := Extract(orig, fault.CollapsedUniverse(orig), Options{WithDensity: true})
	if err != nil {
		t.Fatal(err)
	}
	fr, err := Extract(re.Circuit, fault.CollapsedUniverse(re.Circuit), Options{WithDensity: true, FlushCycles: re.FlushCycles})
	if err != nil {
		t.Fatal(err)
	}
	if !fo.Density.Known || !fr.Density.Known {
		t.Fatalf("density unknown on small circuits: orig %v retimed %v", fo.Density, fr.Density)
	}
	if fr.Density.Value >= fo.Density.Value {
		t.Errorf("retiming did not lower valid-state density: %.4g -> %.4g", fo.Density.Value, fr.Density.Value)
	}
	if !fo.SCOAPConverged {
		t.Error("SCOAP did not converge on the original circuit")
	}
	mean := func(fs *FeatureSet) (m float64) {
		p := Default()
		for i := range fs.Faults {
			m += p.Score(fs, i)
		}
		return m / float64(len(fs.Faults))
	}
	if mean(fr) <= mean(fo) {
		t.Errorf("mean predicted cost did not rise under retiming: %.4g -> %.4g", mean(fo), mean(fr))
	}
}

// TestDensityFallback: a BDD bound too small to finish must degrade to
// the neutral signal, never error or hang.
func TestDensityFallback(t *testing.T) {
	c := synthC(t, 9, 12)
	d := CircuitDensity(c, 1, 2)
	if d.Known || d.Value != 1 {
		t.Errorf("blown-up analysis did not fall back to neutral: %+v", d)
	}
	// And a circuit without a reset line has no density to compute.
	nc := netlist.New("plain")
	in := nc.AddGate(netlist.Input, "in")
	nc.AddGate(netlist.Output, "out", in)
	if d := CircuitDensity(nc, 1, 0); d.Known {
		t.Errorf("reset-less circuit reported known density: %+v", d)
	}
}

type fixedScores struct{ s []float64 }

func (f fixedScores) Name() string                        { return "fixed" }
func (f fixedScores) Score(fs *FeatureSet, i int) float64 { return f.s[i] }

// TestPlanRungs pins rung assignment and the job estimate's clamping.
func TestPlanRungs(t *testing.T) {
	fs := &FeatureSet{Faults: make([]Features, 5)}
	p := fixedScores{s: []float64{10, 150, 900, 1e12, 50}}
	plan := NewPlan(fs, p, 100, 2)
	wantRungs := []int{0, 1, 2, 2, 0}
	wantHard := []bool{false, true, true, true, false}
	for i := range wantRungs {
		if plan.Rungs[i] != wantRungs[i] {
			t.Errorf("rung[%d] = %d, want %d", i, plan.Rungs[i], wantRungs[i])
		}
		if plan.Hard[i] != wantHard[i] {
			t.Errorf("hard[%d] = %v, want %v", i, plan.Hard[i], wantHard[i])
		}
	}
	// Estimate clamps each fault to the ladder's final budget (400).
	if got := plan.EstimateEvals(100, 2); got != 10+150+400+400+50 {
		t.Errorf("EstimateEvals = %d, want 1010", got)
	}
	// Unbounded budget: raw scores pass through.
	if got := plan.EstimateEvals(0, 2); got != 10+150+900+1e12+50 {
		t.Errorf("unbounded EstimateEvals = %d", got)
	}
	// Overflow edges saturate instead of wrapping.
	if got := ladderCap(math.MaxInt64/2, 4); got != math.MaxInt64 {
		t.Errorf("ladderCap overflow = %d", got)
	}
	huge := fixedScores{s: []float64{math.MaxInt64, math.MaxInt64, math.MaxInt64}}
	hp := NewPlan(&FeatureSet{Faults: make([]Features, 3)}, huge, 0, 0)
	if got := hp.EstimateEvals(0, 0); got != math.MaxInt64 {
		t.Errorf("summed overflow = %d, want MaxInt64", got)
	}
}

// TestBalancedIndices pins the LPT packing: every index lands exactly
// once, bins are ascending, the packing is deterministic, and the
// spread beats round-robin on a skewed load.
func TestBalancedIndices(t *testing.T) {
	scores := []float64{100, 1, 1, 1, 100, 1, 1, 1}
	idxs := BalancedIndices(scores, 2)
	if len(idxs) != 2 {
		t.Fatalf("got %d bins", len(idxs))
	}
	seen := map[int]bool{}
	loads := make([]float64, 2)
	for k, bin := range idxs {
		for i, fi := range bin {
			if seen[fi] {
				t.Fatalf("index %d assigned twice", fi)
			}
			seen[fi] = true
			loads[k] += scores[fi]
			if i > 0 && bin[i-1] >= fi {
				t.Fatalf("bin %d not ascending: %v", k, bin)
			}
		}
	}
	if len(seen) != len(scores) {
		t.Fatalf("%d of %d indices assigned", len(seen), len(scores))
	}
	// The two 100s must land in different bins.
	if loads[0] != loads[1] {
		t.Errorf("skewed load not balanced: %v", loads)
	}
	// Deterministic.
	again := BalancedIndices(scores, 2)
	for k := range idxs {
		if len(again[k]) != len(idxs[k]) {
			t.Fatal("packing not deterministic")
		}
		for i := range idxs[k] {
			if again[k][i] != idxs[k][i] {
				t.Fatal("packing not deterministic")
			}
		}
	}
	// More shards than faults: the extras stay empty, nothing is lost.
	sparse := BalancedIndices([]float64{5, 3}, 4)
	total := 0
	for _, bin := range sparse {
		total += len(bin)
	}
	if total != 2 {
		t.Errorf("sparse packing covers %d of 2", total)
	}
}
