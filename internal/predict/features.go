// Package predict estimates per-fault sequential-ATPG cost from cheap
// structural features, before any search effort is paid. The paper's
// thesis — density of valid-state encoding predicts ATPG complexity —
// makes cost predictable up front; this package turns that into
// numbers the campaign scheduler, the service admission layer and the
// fabric placer can act on.
//
// The soundness rule every consumer must respect: prediction may only
// REORDER work and BUDGET work, never decide verdicts. A fault's
// detected/redundant/aborted outcome remains a pure function of
// (circuit, engine config, fault); a misprediction costs latency, not
// correctness.
package predict

import (
	"bytes"
	"fmt"

	"seqatpg/internal/atpg"
	"seqatpg/internal/fault"
	"seqatpg/internal/netlist"
	"seqatpg/internal/sim"
)

// Features is one fault's structural feature vector. All fields are
// derived from the netlist alone — no simulation, no search.
type Features struct {
	// CC0/CC1 are the SCOAP controllability estimates of the faulty
	// line (the driver for an input-pin fault, the gate itself for an
	// output stem fault).
	CC0, CC1 int
	// CCAct is the controllability of the activation value: setting
	// the line opposite to the stuck value.
	CCAct int
	// Obs is the fanout-edge distance from the fault's host gate to
	// the nearest primary output (atpg.CCCap if unobservable).
	Obs int
	// SeqDepth is the minimum number of DFFs between the faulty line
	// and the primary inputs — how many time frames the justification
	// has to reach back through.
	SeqDepth int
	// FFRRoot is the gate id of the fanout-free-region stem the fault
	// feeds; FFRSize is that region's gate count. Faults inside one
	// FFR share a propagation bottleneck.
	FFRRoot, FFRSize int
	// Fanout is the host gate's fanout count (reconvergence proxy).
	Fanout int
}

// FeatureSet is the extraction result for one circuit + fault list.
type FeatureSet struct {
	Circuit string
	Gates   int
	DFFs    int
	// SCOAPConverged reports whether the controllability fixpoint
	// settled within its pass budget; when false the CC magnitudes are
	// upper bounds and predictors should discount them.
	SCOAPConverged bool
	SCOAPPasses    int
	// Density is the per-circuit valid-state-density signal (with
	// Known=false when the bounded BDD analysis gave up).
	Density Density
	Faults  []Features
}

// Options tunes extraction.
type Options struct {
	// SCOAPPasses is the controllability fixpoint pass budget
	// (0 = the engine default).
	SCOAPPasses int
	// WithDensity enables the valid-state-density signal: a bounded
	// symbolic reachability via internal/reach that falls back to
	// Density{Known: false} when the BDD blows past DensityMaxNodes.
	WithDensity bool
	// DensityMaxNodes bounds the BDD (0 = defaultDensityMaxNodes).
	// Deliberately far below reach's own default: prediction must stay
	// cheap relative to the search it is predicting.
	DensityMaxNodes int
	// FlushCycles is the reset-hold prefix for the density traversal
	// (0 = 1 cycle).
	FlushCycles int
}

// depth of sequential-depth fixpoint passes; like SCOAP, values only
// decrease and real circuits settle in a handful of passes.
const seqDepthPasses = 16

// Extract computes the feature set for faults over c. It never
// simulates and never searches; cost is a few linear passes over the
// gate list (plus the optional bounded density analysis). Extraction
// is deterministic: the same circuit and fault list produce the same
// FeatureSet, byte-for-byte under Encode — the property that lets a
// coordinator and its workers derive identical balanced partitions
// independently.
func Extract(c *netlist.Circuit, faults []fault.Fault, opt Options) (*FeatureSet, error) {
	if _, err := c.TopoOrder(); err != nil {
		return nil, fmt.Errorf("predict: %w", err)
	}
	sc := atpg.ComputeSCOAP(c, opt.SCOAPPasses)
	obs := atpg.ObserveDistance(c)
	depth := seqDepth(c)
	root, size := ffr(c)
	fanouts := c.Fanouts()

	fs := &FeatureSet{
		Circuit:        c.Name,
		Gates:          c.NumGates(),
		DFFs:           c.NumDFFs(),
		SCOAPConverged: sc.Converged,
		SCOAPPasses:    sc.Passes,
		Density:        Density{Known: false, Value: 1},
		Faults:         make([]Features, len(faults)),
	}
	if opt.WithDensity {
		fs.Density = CircuitDensity(c, opt.FlushCycles, opt.DensityMaxNodes)
	}

	for i, f := range faults {
		if f.Gate < 0 || f.Gate >= len(c.Gates) {
			return nil, fmt.Errorf("predict: fault %d site gate %d out of range", i, f.Gate)
		}
		line := f.Gate // output stem: the line is the gate's own output
		if f.Pin >= 0 {
			if f.Pin >= len(c.Gates[f.Gate].Fanin) {
				return nil, fmt.Errorf("predict: fault %d pin %d out of range for gate %d", i, f.Pin, f.Gate)
			}
			line = c.Gates[f.Gate].Fanin[f.Pin]
		}
		ft := Features{
			CC0:      sc.CC0[line],
			CC1:      sc.CC1[line],
			Obs:      obs[f.Gate],
			SeqDepth: depth[line],
			FFRRoot:  root[f.Gate],
			Fanout:   len(fanouts[f.Gate]),
		}
		ft.FFRSize = size[ft.FFRRoot]
		// Activating stuck-at-v requires driving the line to ¬v.
		if f.SA == sim.V0 {
			ft.CCAct = ft.CC1
		} else {
			ft.CCAct = ft.CC0
		}
		fs.Faults[i] = ft
	}
	return fs, nil
}

// seqDepth computes, per gate, the minimum number of DFFs on any path
// back to a primary input or constant — the time-frame reach-back a
// justification needs. Fixpoint over the cyclic graph, monotone
// decreasing, bounded passes (unsettled gates keep a saturated bound,
// which is sound: they only look harder).
func seqDepth(c *netlist.Circuit) []int {
	n := len(c.Gates)
	depth := make([]int, n)
	for i := range depth {
		depth[i] = atpg.CCCap
	}
	order, _ := c.TopoOrder()
	for pass := 0; pass < seqDepthPasses; pass++ {
		changed := false
		for _, id := range order {
			g := c.Gates[id]
			var d int
			switch g.Type {
			case netlist.Input, netlist.Const0, netlist.Const1:
				d = 0
			default:
				d = atpg.CCCap
				for _, f := range g.Fanin {
					if depth[f] < d {
						d = depth[f]
					}
				}
				if g.Type == netlist.DFF && d < atpg.CCCap {
					d++
				}
			}
			if d < depth[id] {
				depth[id] = d
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return depth
}

// ffr assigns each gate its fanout-free-region root: the first gate
// reached through single-fanout combinational edges whose output is a
// stem (fanout != 1), feeds a sequential or output element, or drives
// nothing. size[r] counts the gates in root r's region.
func ffr(c *netlist.Circuit) (root, size []int) {
	n := len(c.Gates)
	fanouts := c.Fanouts()
	root = make([]int, n)
	size = make([]int, n)
	order, _ := c.TopoOrder()
	// Reverse topological order so a gate's consumer is resolved first.
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		root[id] = id
		fo := fanouts[id]
		if len(fo) != 1 {
			continue
		}
		next := fo[0]
		switch c.Gates[next].Type {
		case netlist.DFF, netlist.Output:
			// Region boundary: the stem ends here.
		default:
			root[id] = root[next]
		}
	}
	for id := 0; id < n; id++ {
		size[root[id]]++
	}
	return root, size
}

// Encode renders a FeatureSet in a canonical byte form: the vehicle
// for the determinism property (same circuit ⇒ identical bytes across
// runs, processes and netlist round-trips) and for content-addressing
// prediction inputs.
func Encode(fs *FeatureSet) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "predict-features v1\ncircuit %s gates %d dffs %d\n", fs.Circuit, fs.Gates, fs.DFFs)
	fmt.Fprintf(&b, "scoap converged %v passes %d\n", fs.SCOAPConverged, fs.SCOAPPasses)
	fmt.Fprintf(&b, "density known %v value %.9g states %.9g\n", fs.Density.Known, fs.Density.Value, fs.Density.ValidStates)
	for i, f := range fs.Faults {
		fmt.Fprintf(&b, "%d cc0 %d cc1 %d act %d obs %d seq %d ffr %d/%d fan %d\n",
			i, f.CC0, f.CC1, f.CCAct, f.Obs, f.SeqDepth, f.FFRRoot, f.FFRSize, f.Fanout)
	}
	return b.Bytes()
}
