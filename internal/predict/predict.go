package predict

import (
	"math"
	"sort"
)

// Predictor scores one fault's expected charged search effort, in gate
// evaluations, from its structural features. Implementations must be
// pure functions of the FeatureSet — the scheduler, the admission
// layer and the fabric placer all recompute scores independently and
// rely on getting identical numbers.
type Predictor interface {
	// Name identifies the predictor in logs and plan dumps.
	Name() string
	// Score estimates the gate evaluations needed to resolve fault i
	// of fs. Higher means harder; the absolute scale should be
	// comparable to engine FaultBudget values.
	Score(fs *FeatureSet, i int) float64
}

// Weights parameterizes the default structural predictor.
type Weights struct {
	// PerProbe is the evaluation cost of one search probe, as a
	// multiple of the gate count (an incremental window probe touches
	// a cone, not the whole circuit).
	PerProbe float64
	// Act scales the activation-controllability term, Obs the
	// observability-distance term: together they estimate how many
	// probes the PODEM descent needs.
	Act float64
	Obs float64
	// Seq scales the sequential-depth multiplier — each DFF between
	// the fault and the inputs multiplies the time-frame work.
	Seq float64
	// DensityExp shapes the circuit-level boost (1/density)^DensityExp
	// applied when the valid-state density is known; DensityCap bounds
	// the boost so near-empty encodings don't dominate every other
	// feature.
	DensityExp float64
	DensityCap float64
	// StaleCap bounds the activation/observability terms when the
	// SCOAP fixpoint did not converge: unconverged magnitudes are
	// upper bounds, so magnitude-sensitive terms are discounted while
	// relative order is kept.
	StaleCap float64
}

// DefaultWeights calibrates the structural predictor against the
// repo's benchmark pair (see BENCH_sched.json): ranks correlate with
// actual charged effort and the absolute scale lands in the same
// decade as engine budgets on mid-size circuits.
func DefaultWeights() Weights {
	return Weights{
		PerProbe:   0.25,
		Act:        1.0,
		Obs:        2.0,
		Seq:        0.5,
		DensityExp: 0.5,
		DensityCap: 8,
		StaleCap:   256,
	}
}

// Structural is the default predictor: a calibrated combination of
// SCOAP activation cost, observability distance, sequential depth and
// the circuit's valid-state density.
type Structural struct {
	W Weights
}

// Default returns the structural predictor with default weights.
func Default() Structural { return Structural{W: DefaultWeights()} }

func (p Structural) Name() string { return "structural" }

// Score implements Predictor.
func (p Structural) Score(fs *FeatureSet, i int) float64 {
	f := fs.Faults[i]
	w := p.W
	act := float64(f.CCAct)
	obs := float64(f.Obs)
	if !fs.SCOAPConverged && w.StaleCap > 0 {
		// Unconverged measures: trust order, discount magnitude.
		act = math.Min(act, w.StaleCap)
		obs = math.Min(obs, w.StaleCap)
	}
	probes := 1 + w.Act*act + w.Obs*obs
	seq := 1 + w.Seq*float64(f.SeqDepth)
	boost := 1.0
	if fs.Density.Known && fs.Density.Value > 0 {
		boost = math.Min(math.Pow(1/fs.Density.Value, w.DensityExp), w.DensityCap)
	}
	return w.PerProbe * float64(fs.Gates) * probes * seq * boost
}

// Plan is a scored fault list plus the scheduling decisions derived
// from it against a concrete budget ladder. The plan reorders and
// budgets; it never touches verdicts.
type Plan struct {
	Predictor string
	// Scores are the per-fault predicted gate evaluations.
	Scores []float64
	// Rungs assigns each fault its starting rung on the retry ladder:
	// rung q means "start at FaultBudget << q with the remaining
	// escalation passes", chosen as the smallest rung whose budget
	// covers the predicted cost. Rung 0 is the normal ladder start.
	Rungs []int
	// Hard marks faults whose predicted cost exceeds the base budget —
	// the ones routed to the big-budget queue so they cannot serialize
	// ahead of easy faults.
	Hard []bool
}

// NewPlan scores every fault and assigns ladder rungs for a campaign
// whose ladder starts at baseBudget and escalates 2x for maxRung
// retry passes.
func NewPlan(fs *FeatureSet, p Predictor, baseBudget int64, maxRung int) *Plan {
	if p == nil {
		p = Default()
	}
	if maxRung < 0 {
		maxRung = 0
	}
	n := len(fs.Faults)
	plan := &Plan{
		Predictor: p.Name(),
		Scores:    make([]float64, n),
		Rungs:     make([]int, n),
		Hard:      make([]bool, n),
	}
	for i := 0; i < n; i++ {
		s := p.Score(fs, i)
		plan.Scores[i] = s
		plan.Hard[i] = baseBudget > 0 && s > float64(baseBudget)
		rung := 0
		for b := baseBudget; rung < maxRung && b > 0 && s > float64(b); rung++ {
			b <<= 1
		}
		plan.Rungs[i] = rung
	}
	return plan
}

// EstimateEvals sums the plan's per-fault predictions, each clamped to
// the ladder's final budget (baseBudget << retries) — the engine never
// charges a fault more than that, so neither should the estimate.
func (p *Plan) EstimateEvals(baseBudget int64, retries int) int64 {
	var total int64
	for _, s := range p.Scores {
		ev := ClampEval(s, baseBudget, retries)
		if total > math.MaxInt64-ev {
			return math.MaxInt64
		}
		total += ev
	}
	return total
}

// ClampEval converts one predicted score into charged gate evaluations,
// clamped to [1, baseBudget << retries] — the engine never charges a
// fault more than the ladder's final budget. A baseBudget of 0 means
// unbounded search and leaves the score unclamped.
func ClampEval(score float64, baseBudget int64, retries int) int64 {
	// Converting a float at or above MaxInt64 to int64 is
	// implementation-defined; saturate explicitly.
	ev := int64(math.MaxInt64)
	if score < float64(math.MaxInt64) {
		ev = int64(score)
	}
	if ev < 1 {
		ev = 1
	}
	if cap := ladderCap(baseBudget, retries); cap > 0 && ev > cap {
		ev = cap
	}
	return ev
}

// ladderCap is baseBudget << retries saturated at MaxInt64; 0 (no
// per-fault budget) stays 0, meaning unbounded.
func ladderCap(baseBudget int64, retries int) int64 {
	if baseBudget <= 0 {
		return 0
	}
	b := baseBudget
	for i := 0; i < retries; i++ {
		if b > math.MaxInt64/2 {
			return math.MaxInt64
		}
		b <<= 1
	}
	return b
}

// BalancedIndices packs fault indices into shards bins balanced by
// predicted cost — longest-processing-time greedy: faults in
// descending score order each land in the currently lightest bin.
// Deterministic (ties break on lowest index, then lowest bin), so a
// coordinator and its workers derive identical partitions from the
// same scores. Each bin comes back in ascending fault order, the same
// intra-shard execution order campaign.ShardIndices produces.
func BalancedIndices(scores []float64, shards int) [][]int {
	if shards < 1 {
		shards = 1
	}
	order := make([]int, len(scores))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if scores[order[a]] != scores[order[b]] {
			return scores[order[a]] > scores[order[b]]
		}
		return order[a] < order[b]
	})
	idxs := make([][]int, shards)
	load := make([]float64, shards)
	for _, fi := range order {
		best := 0
		for k := 1; k < shards; k++ {
			if load[k] < load[best] {
				best = k
			}
		}
		idxs[best] = append(idxs[best], fi)
		load[best] += scores[fi]
	}
	for k := range idxs {
		sort.Ints(idxs[k])
	}
	return idxs
}
