package predict

import (
	"bytes"
	"testing"

	"seqatpg/internal/fault"
	"seqatpg/internal/netlist"
)

// FuzzPredictFeatures throws arbitrary netlists at feature extraction.
// Any circuit the validated readers accept — degenerate, cyclic
// through DFFs, reset-less, constant-riddled — must extract without
// panicking, and extraction must be deterministic (the property the
// fabric's independently-computed balanced partitions stand on).
func FuzzPredictFeatures(f *testing.F) {
	f.Add([]byte(".name t\n.reset 0\n0 INPUT rst\n1 INPUT a\n2 NOT n 1\n3 DFF q 2\n4 OUTPUT o 3\n.end\n"))
	f.Add([]byte(".name fb\n.reset -1\n0 INPUT a\n1 DFF d 2\n2 XOR x 0 1\n3 OUTPUT o 1\n.end\n"))
	f.Add([]byte(".name k\n.reset -1\n0 CONST0 z\n1 OUTPUT o 0\n.end\n"))
	f.Add([]byte("INPUT(rst)\nINPUT(a)\nOUTPUT(o)\nq = DFF(n)\nn = NOT(a)\no = AND(q, rst)\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := netlist.Read(bytes.NewReader(data))
		if err != nil {
			c, err = netlist.ReadBench(bytes.NewReader(data))
			if err != nil {
				return
			}
		}
		faults := fault.FullUniverse(c)
		// Tiny density bound: the fallback path must be as panic-free
		// as the happy path, and fuzzing cannot afford real traversals.
		opt := Options{WithDensity: true, DensityMaxNodes: 64, SCOAPPasses: 2}
		fs, err := Extract(c, faults, opt)
		if err != nil {
			return
		}
		fs2, err := Extract(c, faults, opt)
		if err != nil {
			t.Fatalf("second extraction errored after the first succeeded: %v", err)
		}
		if !bytes.Equal(Encode(fs), Encode(fs2)) {
			t.Fatal("extraction is not deterministic")
		}
		p := Default()
		for i := range faults {
			s := p.Score(fs, i)
			if s != s || s < 0 { // NaN or negative
				t.Fatalf("score %d is %v", i, s)
			}
		}
		if plan := NewPlan(fs, nil, 1000, 3); len(plan.Rungs) != len(faults) {
			t.Fatal("plan shape mismatch")
		}
		idxs := BalancedIndices(NewPlan(fs, nil, 0, 0).Scores, 3)
		n := 0
		for _, bin := range idxs {
			n += len(bin)
		}
		if n != len(faults) {
			t.Fatalf("balanced partition covers %d of %d", n, len(faults))
		}
	})
}
