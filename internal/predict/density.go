package predict

import (
	"seqatpg/internal/netlist"
	"seqatpg/internal/reach"
)

// Density is the per-circuit valid-state-density signal: the fraction
// of the 2^DFFs state space reachable after flush. The paper's central
// measure — sparse encodings (retimed circuits) make justification
// walk long corridors of invalid states, so low density predicts high
// per-fault cost across the whole circuit.
type Density struct {
	// Known is false when the signal could not be computed within the
	// effort bound (BDD blow-up, no reset line, analysis error). The
	// fallback is neutral: Value 1, no circuit-level hardness boost —
	// prediction degrades gracefully instead of stalling admission
	// behind an expensive symbolic traversal.
	Known bool
	// Value is ValidStates / 2^DFFs in (0, 1]; 1 when not Known.
	Value       float64
	ValidStates float64
	DFFs        int
}

// defaultDensityMaxNodes bounds the prediction-time BDD far below
// reach's own 4M-node analysis default: the predictor must stay cheap
// relative to the search it is predicting, and a circuit whose
// reachability blows past this bound is exactly the kind of circuit
// whose density signal we can afford to lose.
const defaultDensityMaxNodes = 250_000

// CircuitDensity computes the valid-state density with a bounded
// symbolic traversal, falling back to the neutral signal on any
// failure. It never returns an error: a predictor input that cannot be
// computed is a missing feature, not a fault of the submission.
func CircuitDensity(c *netlist.Circuit, flushCycles, maxNodes int) Density {
	if maxNodes <= 0 {
		maxNodes = defaultDensityMaxNodes
	}
	if c.ResetPI < 0 || len(c.DFFs) == 0 {
		return Density{Known: false, Value: 1, DFFs: len(c.DFFs)}
	}
	an, err := reach.Analyze(c, reach.Options{FlushCycles: flushCycles, MaxNodes: maxNodes})
	if err != nil {
		return Density{Known: false, Value: 1, DFFs: len(c.DFFs)}
	}
	d := an.Density
	if !(d > 0) || d > 1 {
		// A degenerate traversal (empty valid set, numeric overflow on
		// huge registers) carries no ranking information.
		return Density{Known: false, Value: 1, DFFs: an.NumDFFs}
	}
	return Density{Known: true, Value: d, ValidStates: an.ValidStates, DFFs: an.NumDFFs}
}
