package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"seqatpg/internal/netlist"
)

func TestThreeValuedOps(t *testing.T) {
	if AndV(V1, VX) != VX || AndV(V0, VX) != V0 || AndV(V1, V1) != V1 {
		t.Error("AndV table wrong")
	}
	if OrV(V0, VX) != VX || OrV(V1, VX) != V1 || OrV(V0, V0) != V0 {
		t.Error("OrV table wrong")
	}
	if XorV(V1, V0) != V1 || XorV(V1, V1) != V0 || XorV(V1, VX) != VX {
		t.Error("XorV table wrong")
	}
	if NotV(VX) != VX || NotV(V0) != V1 {
		t.Error("NotV table wrong")
	}
}

// toggle builds a T-flip-flop: q' = in XOR q, out = q.
func toggle(t *testing.T) *netlist.Circuit {
	t.Helper()
	c := netlist.New("toggle")
	in := c.AddGate(netlist.Input, "in")
	ff := c.AddGate(netlist.DFF, "q", 0)
	x := c.AddGate(netlist.Xor, "x", in, ff)
	c.Gates[ff].Fanin[0] = x
	c.AddGate(netlist.Output, "out", ff)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSimulatorToggle(t *testing.T) {
	c := toggle(t)
	s, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	// Power-up is X; with in=1 the XOR of X stays X.
	outs, err := s.Step([]Val{V1})
	if err != nil {
		t.Fatal(err)
	}
	if outs[0] != VX {
		t.Errorf("powered-up output = %v, want X", outs[0])
	}
	// Force a known state, then toggle twice.
	if err := s.SetState([]Val{V0}); err != nil {
		t.Fatal(err)
	}
	outs, _ = s.Step([]Val{V1})
	if outs[0] != V0 {
		t.Errorf("out = %v, want 0 before the edge", outs[0])
	}
	outs, _ = s.Step([]Val{V1})
	if outs[0] != V1 {
		t.Errorf("out = %v, want 1 after one toggle", outs[0])
	}
	outs, _ = s.Step([]Val{V0})
	if outs[0] != V0 {
		t.Errorf("out = %v, want 0 after two toggles", outs[0])
	}
	// in=0 holds the state.
	outs, _ = s.Step([]Val{V0})
	if outs[0] != V0 {
		t.Errorf("out = %v, want held 0", outs[0])
	}
}

func TestStateBits(t *testing.T) {
	c := toggle(t)
	s, _ := NewSimulator(c)
	if _, ok := s.StateBits(); ok {
		t.Error("all-X state must not pack")
	}
	s.SetState([]Val{V1})
	bits, ok := s.StateBits()
	if !ok || bits != 1 {
		t.Errorf("StateBits = %d,%v", bits, ok)
	}
	if !s.StateKnown() {
		t.Error("state should be known")
	}
}

func TestEvalDoesNotClock(t *testing.T) {
	c := toggle(t)
	s, _ := NewSimulator(c)
	s.SetState([]Val{V0})
	s.Eval([]Val{V1})
	if s.State()[0] != V0 {
		t.Error("Eval must not clock the DFFs")
	}
}

func TestSimulatorWidthErrors(t *testing.T) {
	c := toggle(t)
	s, _ := NewSimulator(c)
	if _, err := s.Step([]Val{V1, V0}); err == nil {
		t.Error("wrong input width must error")
	}
	if err := s.SetState([]Val{V0, V0}); err == nil {
		t.Error("wrong state width must error")
	}
}

// randomComb builds a random combinational circuit over nIn inputs with
// nGates gates, one output observing the last gate.
func randomComb(rng *rand.Rand, nIn, nGates int) *netlist.Circuit {
	c := netlist.New("rand")
	for i := 0; i < nIn; i++ {
		c.AddGate(netlist.Input, "")
	}
	last := 0
	for i := 0; i < nGates; i++ {
		types := []netlist.GateType{netlist.And, netlist.Or, netlist.Nand, netlist.Nor, netlist.Xor, netlist.Not}
		gt := types[rng.Intn(len(types))]
		n := 2
		if gt == netlist.Not {
			n = 1
		}
		fanin := make([]int, n)
		for k := range fanin {
			fanin[k] = rng.Intn(len(c.Gates))
		}
		last = c.AddGate(gt, "", fanin...)
	}
	c.AddGate(netlist.Output, "o", last)
	return c
}

// Property: parallel simulation agrees with 64 scalar simulations.
func TestParallelMatchesScalar(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomComb(rng, 4, 12)
		if err := c.Validate(); err != nil {
			return true // skip rare invalid randoms (shouldn't happen)
		}
		ps, err := NewPSim(c)
		if err != nil {
			return false
		}
		// 64 random scalar input vectors, packed.
		scalarIn := make([][]Val, 64)
		packed := make([]PVal, 4)
		for p := 0; p < 64; p++ {
			scalarIn[p] = make([]Val, 4)
			for i := 0; i < 4; i++ {
				v := Val(rng.Intn(3))
				scalarIn[p][i] = v
				packed[i].Set(uint(p), v)
			}
		}
		pouts, err := ps.Step(packed)
		if err != nil {
			return false
		}
		for p := 0; p < 64; p++ {
			s, err := NewSimulator(c)
			if err != nil {
				return false
			}
			souts, err := s.Step(scalarIn[p])
			if err != nil {
				return false
			}
			if pouts[0].Get(uint(p)) != souts[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPValEncoding(t *testing.T) {
	var p PVal
	p.Set(3, V1)
	p.Set(5, V0)
	if p.Get(3) != V1 || p.Get(5) != V0 || p.Get(0) != VX {
		t.Error("PVal set/get broken")
	}
	p.Set(3, V0)
	if p.Get(3) != V0 {
		t.Error("PVal overwrite broken")
	}
	p.Set(3, VX)
	if p.Get(3) != VX {
		t.Error("PVal X overwrite broken")
	}
}

// Property: two-rail gates never produce the illegal both-bits state.
func TestTwoRailNeverIllegal(t *testing.T) {
	f := func(a0, a1, b0, b1 uint64) bool {
		a := PVal{Zero: a0 &^ a1, One: a1 &^ a0}
		b := PVal{Zero: b0 &^ b1, One: b1 &^ b0}
		for _, r := range []PVal{pand(a, b), por(a, b), pxor(a, b), pnot(a)} {
			if r.Zero&r.One != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParallelSequentialStreams(t *testing.T) {
	c := toggle(t)
	ps, err := NewPSim(c)
	if err != nil {
		t.Fatal(err)
	}
	ps.PowerUp()
	// Stream 0: state=0, in=1 (toggles to 1). Stream 1: state=1, in=0
	// (holds 1). Stream 2 stays X.
	st := ps.State()
	st[0].Set(0, V0)
	st[0].Set(1, V1)
	if err := ps.SetState(st); err != nil {
		t.Fatal(err)
	}
	var in PVal
	in.Set(0, V1)
	in.Set(1, V0)
	in.Set(2, V1)
	if _, err := ps.Step([]PVal{in}); err != nil {
		t.Fatal(err)
	}
	got := ps.State()[0]
	if got.Get(0) != V1 || got.Get(1) != V1 || got.Get(2) != VX {
		t.Errorf("stream states = %v %v %v", got.Get(0), got.Get(1), got.Get(2))
	}
}

func TestPSimStateIsCopy(t *testing.T) {
	c := toggle(t)
	ps, _ := NewPSim(c)
	st := ps.State()
	st[0].Set(0, V1)
	if ps.State()[0].Get(0) != VX {
		t.Error("State must return a copy")
	}
}

// TestEvalGateAllTypes pins the full 3-valued gate semantics.
func TestEvalGateAllTypes(t *testing.T) {
	cases := []struct {
		t    netlist.GateType
		in   []Val
		want Val
	}{
		{netlist.Buf, []Val{V1}, V1},
		{netlist.Not, []Val{V0}, V1},
		{netlist.And, []Val{V1, V1, V1}, V1},
		{netlist.And, []Val{V1, VX, V0}, V0},
		{netlist.Nand, []Val{V1, V1}, V0},
		{netlist.Nand, []Val{VX, V1}, VX},
		{netlist.Or, []Val{V0, V0}, V0},
		{netlist.Nor, []Val{V0, V0}, V1},
		{netlist.Nor, []Val{VX, V0}, VX},
		{netlist.Xor, []Val{V1, V1}, V0},
		{netlist.Xnor, []Val{V1, V0}, V0},
		{netlist.Xnor, []Val{V1, V1}, V1},
		{netlist.Const0, nil, V0},
		{netlist.Const1, nil, V1},
		{netlist.DFF, []Val{VX}, VX},
		{netlist.Output, []Val{V1}, V1},
	}
	for _, c := range cases {
		if got := EvalGate(c.t, c.in); got != c.want {
			t.Errorf("EvalGate(%v, %v) = %v, want %v", c.t, c.in, got, c.want)
		}
	}
}

// TestEvalGatePConsistent cross-checks the parallel evaluator against
// the scalar one for every gate type over all 2-input combinations.
func TestEvalGatePConsistent(t *testing.T) {
	types := []netlist.GateType{
		netlist.And, netlist.Or, netlist.Nand, netlist.Nor, netlist.Xor, netlist.Xnor,
	}
	vals := []Val{V0, V1, VX}
	for _, gt := range types {
		for _, a := range vals {
			for _, b := range vals {
				want := EvalGate(gt, []Val{a, b})
				var pa, pb PVal
				pa.Set(5, a)
				pb.Set(5, b)
				got := EvalGateP(gt, []PVal{pa, pb}).Get(5)
				if got != want {
					t.Errorf("%v(%v,%v): parallel %v, scalar %v", gt, a, b, got, want)
				}
			}
		}
	}
}
