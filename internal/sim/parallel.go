package sim

import (
	"fmt"

	"seqatpg/internal/netlist"
)

// PVal is a 64-way parallel three-valued word in two-rail encoding:
// bit i of Zero means pattern i is 0, bit i of One means pattern i is 1,
// neither bit set means X. (Both set is illegal.)
type PVal struct {
	Zero, One uint64
}

// PX returns a word of 64 X values.
func PX() PVal { return PVal{} }

// PConst returns a word with all 64 patterns at the same binary value.
func PConst(v Val) PVal {
	switch v {
	case V0:
		return PVal{Zero: ^uint64(0)}
	case V1:
		return PVal{One: ^uint64(0)}
	default:
		return PVal{}
	}
}

// Get extracts pattern i's value from the word.
func (p PVal) Get(i uint) Val {
	switch {
	case (p.Zero>>i)&1 == 1:
		return V0
	case (p.One>>i)&1 == 1:
		return V1
	default:
		return VX
	}
}

// Set assigns pattern i's value in the word.
func (p *PVal) Set(i uint, v Val) {
	p.Zero &^= 1 << i
	p.One &^= 1 << i
	switch v {
	case V0:
		p.Zero |= 1 << i
	case V1:
		p.One |= 1 << i
	}
}

// pnot, pand, por, pxor are the two-rail gate evaluations.
func pnot(a PVal) PVal { return PVal{Zero: a.One, One: a.Zero} }

func pand(a, b PVal) PVal {
	return PVal{Zero: a.Zero | b.Zero, One: a.One & b.One}
}

func por(a, b PVal) PVal {
	return PVal{Zero: a.Zero & b.Zero, One: a.One | b.One}
}

func pxor(a, b PVal) PVal {
	known := (a.Zero | a.One) & (b.Zero | b.One)
	ones := (a.One & b.Zero) | (a.Zero & b.One)
	return PVal{Zero: known &^ ones, One: ones}
}

// EvalGateP computes a gate's parallel output from its fanin words.
func EvalGateP(t netlist.GateType, in []PVal) PVal {
	switch t {
	case netlist.Buf, netlist.Output, netlist.DFF:
		return in[0]
	case netlist.Not:
		return pnot(in[0])
	case netlist.And, netlist.Nand:
		acc := PConst(V1)
		for _, v := range in {
			acc = pand(acc, v)
		}
		if t == netlist.Nand {
			return pnot(acc)
		}
		return acc
	case netlist.Or, netlist.Nor:
		acc := PConst(V0)
		for _, v := range in {
			acc = por(acc, v)
		}
		if t == netlist.Nor {
			return pnot(acc)
		}
		return acc
	case netlist.Xor, netlist.Xnor:
		acc := PConst(V0)
		for _, v := range in {
			acc = pxor(acc, v)
		}
		if t == netlist.Xnor {
			return pnot(acc)
		}
		return acc
	case netlist.Const0:
		return PConst(V0)
	case netlist.Const1:
		return PConst(V1)
	default:
		return PX()
	}
}

// PSim is a 64-way parallel-pattern sequential simulator: 64 independent
// pattern streams advance in lockstep through the same circuit.
type PSim struct {
	c     *netlist.Circuit
	order []int
	vals  []PVal
	state []PVal
}

// NewPSim builds a parallel simulator with all 64 streams powered up at X.
func NewPSim(c *netlist.Circuit) (*PSim, error) {
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	return &PSim{
		c:     c,
		order: order,
		vals:  make([]PVal, len(c.Gates)),
		state: make([]PVal, len(c.DFFs)),
	}, nil
}

// PowerUp resets all 64 streams to the all-X state.
func (s *PSim) PowerUp() {
	for i := range s.state {
		s.state[i] = PX()
	}
}

// Step advances all streams one cycle and returns PO words.
func (s *PSim) Step(inputs []PVal) ([]PVal, error) {
	if len(inputs) != len(s.c.PIs) {
		return nil, fmt.Errorf("sim: %d parallel inputs, want %d", len(inputs), len(s.c.PIs))
	}
	for i, id := range s.c.PIs {
		s.vals[id] = inputs[i]
	}
	for i, id := range s.c.DFFs {
		s.vals[id] = s.state[i]
	}
	for _, id := range s.order {
		g := s.c.Gates[id]
		switch g.Type {
		case netlist.Input, netlist.DFF:
			continue
		default:
			in := make([]PVal, len(g.Fanin))
			for k, f := range g.Fanin {
				in[k] = s.vals[f]
			}
			s.vals[id] = EvalGateP(g.Type, in)
		}
	}
	outs := make([]PVal, len(s.c.POs))
	for i, id := range s.c.POs {
		outs[i] = s.vals[id]
	}
	for i, id := range s.c.DFFs {
		s.state[i] = s.vals[s.c.Gates[id].Fanin[0]]
	}
	return outs, nil
}

// State returns a copy of the parallel DFF words.
func (s *PSim) State() []PVal { return append([]PVal(nil), s.state...) }

// SetState forces the parallel DFF words (must match NumDFFs in length).
func (s *PSim) SetState(vals []PVal) error {
	if len(vals) != len(s.state) {
		return fmt.Errorf("sim: parallel state width %d, want %d", len(vals), len(s.state))
	}
	copy(s.state, vals)
	return nil
}
