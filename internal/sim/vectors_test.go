package sim

import (
	"bytes"
	"strings"
	"testing"
)

func TestVectorsRoundTrip(t *testing.T) {
	seqs := [][][]Val{
		{{V1, V0, VX}, {V0, V0, V1}},
		{{V0, V1, V1}},
	}
	var buf bytes.Buffer
	if err := WriteVectors(&buf, seqs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadVectors(&buf, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || len(back[0]) != 2 || len(back[1]) != 1 {
		t.Fatalf("shape changed: %v", back)
	}
	for s := range seqs {
		for v := range seqs[s] {
			for i := range seqs[s][v] {
				if back[s][v][i] != seqs[s][v][i] {
					t.Fatalf("seq %d vec %d bit %d changed", s, v, i)
				}
			}
		}
	}
}

func TestReadVectorsErrors(t *testing.T) {
	if _, err := ReadVectors(strings.NewReader("01"), 3); err == nil {
		t.Error("width mismatch must error")
	}
	if _, err := ReadVectors(strings.NewReader("01z"), 3); err == nil {
		t.Error("bad character must error")
	}
}

func TestReadVectorsCommentsAndBlanks(t *testing.T) {
	src := "# header\n10\n01\n\n# second\n11\n"
	seqs, err := ReadVectors(strings.NewReader(src), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 || len(seqs[0]) != 2 || len(seqs[1]) != 1 {
		t.Fatalf("shape: %v", seqs)
	}
}

func TestDumpVCD(t *testing.T) {
	c := toggle(t)
	seq := [][]Val{{V1}, {V1}, {V0}}
	var buf bytes.Buffer
	if err := DumpVCD(&buf, c, seq); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"$enddefinitions", "$var wire 1", "#0", "#2", "$scope module toggle"} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q:\n%s", want, out)
		}
	}
	// The toggle's input changes 1 -> 0 at cycle 2: some value change
	// must be emitted after #2.
	idx := strings.Index(out, "#2")
	if !strings.ContainsAny(out[idx:], "01x") {
		t.Error("no value changes after #2")
	}
}
