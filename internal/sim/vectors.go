package sim

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteVectors serializes test sequences in the project's plain vector
// format: one line of 0/1/X characters per clock cycle (one character
// per primary input, in PI order), with a blank line between sequences
// and '#' comments.
func WriteVectors(w io.Writer, seqs [][][]Val) error {
	bw := bufio.NewWriter(w)
	for s, seq := range seqs {
		if s > 0 {
			fmt.Fprintln(bw)
		}
		fmt.Fprintf(bw, "# sequence %d (%d cycles)\n", s+1, len(seq))
		for _, vec := range seq {
			for _, v := range vec {
				bw.WriteString(v.String())
			}
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// ReadVectors parses the vector format written by WriteVectors. Every
// line must have width characters; sequences are separated by blank
// lines.
func ReadVectors(r io.Reader, width int) ([][][]Val, error) {
	var seqs [][][]Val
	var cur [][]Val
	flush := func() {
		if len(cur) > 0 {
			seqs = append(seqs, cur)
			cur = nil
		}
	}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			flush()
			continue
		}
		if strings.HasPrefix(text, "#") {
			continue
		}
		if len(text) != width {
			return nil, fmt.Errorf("vectors line %d: width %d, want %d", line, len(text), width)
		}
		vec := make([]Val, width)
		for i, ch := range text {
			switch ch {
			case '0':
				vec[i] = V0
			case '1':
				vec[i] = V1
			case 'x', 'X', '-':
				vec[i] = VX
			default:
				return nil, fmt.Errorf("vectors line %d: bad character %q", line, ch)
			}
		}
		cur = append(cur, vec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	flush()
	return seqs, nil
}
