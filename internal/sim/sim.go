// Package sim provides sequential logic simulation for netlist circuits:
// a scalar three-valued (0/1/X) simulator used for initialization and
// test application, and a 64-way bit-parallel pattern simulator used by
// the random phases of the ATPG engines.
package sim

import (
	"fmt"

	"seqatpg/internal/netlist"
)

// Val is a three-valued logic value.
type Val byte

// Three-valued logic constants.
const (
	V0 Val = iota
	V1
	VX
)

// String returns "0", "1" or "X".
func (v Val) String() string {
	switch v {
	case V0:
		return "0"
	case V1:
		return "1"
	default:
		return "X"
	}
}

// NotV returns three-valued NOT.
func NotV(a Val) Val {
	switch a {
	case V0:
		return V1
	case V1:
		return V0
	default:
		return VX
	}
}

// AndV returns three-valued AND over the operands.
func AndV(vals ...Val) Val {
	sawX := false
	for _, v := range vals {
		switch v {
		case V0:
			return V0
		case VX:
			sawX = true
		}
	}
	if sawX {
		return VX
	}
	return V1
}

// OrV returns three-valued OR over the operands.
func OrV(vals ...Val) Val {
	sawX := false
	for _, v := range vals {
		switch v {
		case V1:
			return V1
		case VX:
			sawX = true
		}
	}
	if sawX {
		return VX
	}
	return V0
}

// XorV returns three-valued XOR over the operands.
func XorV(vals ...Val) Val {
	parity := V0
	for _, v := range vals {
		if v == VX {
			return VX
		}
		if v == V1 {
			parity = NotV(parity)
		}
	}
	return parity
}

// EvalGate computes a gate's output from its fanin values.
func EvalGate(t netlist.GateType, in []Val) Val {
	switch t {
	case netlist.Buf, netlist.Output, netlist.DFF:
		return in[0]
	case netlist.Not:
		return NotV(in[0])
	case netlist.And:
		return AndV(in...)
	case netlist.Nand:
		return NotV(AndV(in...))
	case netlist.Or:
		return OrV(in...)
	case netlist.Nor:
		return NotV(OrV(in...))
	case netlist.Xor:
		return XorV(in...)
	case netlist.Xnor:
		return NotV(XorV(in...))
	case netlist.Const0:
		return V0
	case netlist.Const1:
		return V1
	default:
		return VX
	}
}

// Simulator is a scalar three-valued sequential simulator. State lives
// in the DFFs; Step evaluates one clock cycle.
type Simulator struct {
	c     *netlist.Circuit
	order []int
	vals  []Val // per-gate value of the current evaluation
	state []Val // per-DFF Q value (indexed like c.DFFs)
}

// NewSimulator builds a simulator; the circuit must be valid. All DFFs
// power up at X.
func NewSimulator(c *netlist.Circuit) (*Simulator, error) {
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	s := &Simulator{
		c:     c,
		order: order,
		vals:  make([]Val, len(c.Gates)),
		state: make([]Val, len(c.DFFs)),
	}
	s.PowerUp()
	return s, nil
}

// PowerUp sets every DFF to X (the unknown power-on state).
func (s *Simulator) PowerUp() {
	for i := range s.state {
		s.state[i] = VX
	}
}

// SetState forces the DFF values (must match NumDFFs in length).
func (s *Simulator) SetState(vals []Val) error {
	if len(vals) != len(s.state) {
		return fmt.Errorf("sim: state width %d, want %d", len(vals), len(s.state))
	}
	copy(s.state, vals)
	return nil
}

// State returns a copy of the current DFF values.
func (s *Simulator) State() []Val {
	return append([]Val(nil), s.state...)
}

// StateKnown reports whether every DFF holds a binary value.
func (s *Simulator) StateKnown() bool {
	for _, v := range s.state {
		if v == VX {
			return false
		}
	}
	return true
}

// StateBits packs a fully known state into a bit vector (bit i = DFF i).
// The second result is false when any DFF is X.
func (s *Simulator) StateBits() (uint64, bool) {
	var out uint64
	for i, v := range s.state {
		switch v {
		case V1:
			out |= 1 << uint(i)
		case VX:
			return 0, false
		}
	}
	return out, true
}

// Eval evaluates the combinational logic for the given PI values without
// clocking the DFFs, and returns the PO values.
func (s *Simulator) Eval(inputs []Val) ([]Val, error) {
	if len(inputs) != len(s.c.PIs) {
		return nil, fmt.Errorf("sim: %d inputs, want %d", len(inputs), len(s.c.PIs))
	}
	for i, id := range s.c.PIs {
		s.vals[id] = inputs[i]
	}
	for i, id := range s.c.DFFs {
		s.vals[id] = s.state[i]
	}
	for _, id := range s.order {
		g := s.c.Gates[id]
		switch g.Type {
		case netlist.Input, netlist.DFF:
			continue
		default:
			in := make([]Val, len(g.Fanin))
			for k, f := range g.Fanin {
				in[k] = s.vals[f]
			}
			s.vals[id] = EvalGate(g.Type, in)
		}
	}
	outs := make([]Val, len(s.c.POs))
	for i, id := range s.c.POs {
		outs[i] = s.vals[id]
	}
	return outs, nil
}

// Step evaluates one clock cycle: combinational evaluation at the given
// inputs, then a simultaneous DFF update. Returns the PO values sampled
// before the clock edge.
func (s *Simulator) Step(inputs []Val) ([]Val, error) {
	outs, err := s.Eval(inputs)
	if err != nil {
		return nil, err
	}
	next := make([]Val, len(s.c.DFFs))
	for i, id := range s.c.DFFs {
		next[i] = s.vals[s.c.Gates[id].Fanin[0]]
	}
	copy(s.state, next)
	return outs, nil
}

// Value returns the value of gate id from the latest evaluation.
func (s *Simulator) Value(id int) Val { return s.vals[id] }
